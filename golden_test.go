package socialads_test

import (
	"reflect"
	"testing"

	socialads "repro"
)

// goldenOpts is the configuration the pinned allocations below were
// captured under.
func goldenOpts(soft bool) socialads.TIRMOptions {
	return socialads.TIRMOptions{Eps: 0.3, MinTheta: 2000, MaxTheta: 20000, SoftCoverage: soft}
}

func goldenInstance() *socialads.Instance {
	return socialads.NewFlixster(socialads.DatasetOptions{Seed: 1, Scale: 0.01, Kappa: 1})
}

// goldenHardSeeds / goldenSoftSeeds are the exact allocations produced by
// AllocateTIRM(inst, 42, goldenOpts(·)) on the FLIXSTER analogue
// (seed 1, scale 0.01, κ=1) by the pointer-based [][]int32 representation
// that predates the flat-arena (CSR) refactor. The deterministic block
// stream guarantees the sample is a pure function of (graph, probs, seed,
// position), so any storage-layout change must reproduce these allocations
// byte for byte — if this test fails, the refactor changed behavior, not
// just layout.
var goldenHardSeeds = [][]int32{
	{97, 549, 515, 254, 376, 8, 206, 323, 86, 410, 63, 344, 182, 279, 165, 474, 487, 448},
	{122, 90, 479},
	{136, 385, 280, 434, 390, 384, 571, 560, 185, 266, 341, 153},
	{548, 594, 241, 274, 64, 593, 476, 596, 32, 342, 567, 134, 532, 281, 66, 492, 576},
	{530, 15, 270, 172, 2, 67, 514},
	{228, 490, 58, 526},
	{485, 458, 166, 599, 168, 181, 232, 481, 144, 470, 546, 366, 484, 231},
	{542, 505},
	{271, 375, 163, 260},
	{100, 383, 461, 240, 130, 36, 94, 212, 598, 432, 300, 553, 497, 27, 239, 127, 125, 437, 554, 285, 360},
}

var goldenSoftSeeds = [][]int32{
	{97, 549, 254, 515, 376, 8, 206, 323, 63, 512, 86, 410, 182, 74, 165},
	{122, 90, 479},
	{136, 385, 280, 434, 390, 571, 185, 239, 560, 384},
	{548, 594, 274, 241, 64, 476, 195, 593, 146, 32, 208, 342, 596, 329, 175},
	{530, 15, 295, 270, 172},
	{228, 490, 58, 127},
	{485, 458, 599, 166, 168, 232, 481, 181, 532, 144, 470, 366, 494},
	{542, 505},
	{271, 375, 163, 260},
	{100, 383, 59, 461, 130, 240, 36, 300, 94, 134, 598, 212, 497, 536, 432},
}

// TestAllocationPinnedAcrossRepresentations is the equivalence regression
// for the arena refactor: for a fixed seed, TIRM's allocation must be
// byte-identical to the pre-refactor representation's output, in both
// coverage modes, and AllocateFromIndex on a prebuilt index must agree.
func TestAllocationPinnedAcrossRepresentations(t *testing.T) {
	inst := goldenInstance()
	for _, tc := range []struct {
		name string
		soft bool
		want [][]int32
	}{
		{"hard", false, goldenHardSeeds},
		{"soft", true, goldenSoftSeeds},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := socialads.AllocateTIRM(inst, 42, goldenOpts(tc.soft))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Alloc.Seeds, tc.want) {
				t.Fatalf("allocation diverged from the pinned pre-refactor output:\n got %v\nwant %v",
					res.Alloc.Seeds, tc.want)
			}
			idx, err := socialads.BuildIndex(inst, 42, goldenOpts(tc.soft))
			if err != nil {
				t.Fatal(err)
			}
			warm, err := socialads.AllocateFromIndex(idx, socialads.AllocRequest{Opts: goldenOpts(tc.soft)})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(warm.Alloc.Seeds, tc.want) {
				t.Fatal("warm allocation diverged from the pinned output")
			}
		})
	}
}
