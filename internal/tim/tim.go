// Package tim implements Two-phase Influence Maximization (Tang et al.,
// SIGMOD 2014 [25]), the state-of-the-art RR-set algorithm the paper builds
// TIRM on. Phase 1 (KPT estimation) derives a lower bound on OPT_s — the
// maximum expected IC spread of any s-node seed set — which sizes the RR
// sample via Eq. 5; phase 2 greedily solves max-s-cover over the sample.
//
// TIM returns a (1 − 1/e − ε)-approximation to OPT_s with probability
// ≥ 1 − n^(−ℓ) (Proposition 2). The repository uses TIM both as a
// standalone influence maximizer (tests, examples) and as the source of the
// sample-size machinery TIRM shares.
package tim

import (
	"math"

	"repro/internal/rrset"
	"repro/internal/xrand"
)

// Options configures TIM and KPT estimation.
type Options struct {
	// Eps is the approximation slack ε (paper experiments use 0.1 quality /
	// 0.2 scalability). Default 0.1.
	Eps float64
	// Ell sets the failure probability n^(−ℓ). Default 1.
	Ell float64
	// MinTheta floors the sample size so tiny instances stay statistically
	// meaningful. Default 1024.
	MinTheta int
	// MaxTheta caps the sample size (0 = uncapped). The paper-scale bound
	// can demand tens of millions of sets; the cap trades guarantee slack
	// for memory on scaled-down runs.
	MaxTheta int
}

func (o Options) withDefaults() Options {
	if o.Eps <= 0 {
		o.Eps = 0.1
	}
	if o.Ell <= 0 {
		o.Ell = 1
	}
	if o.MinTheta <= 0 {
		o.MinTheta = 1024
	}
	return o
}

// EstimateKPT runs TIM's phase-1 statistical test (Algorithm 2 of [25]) and
// returns a lower-bound estimate of OPT_s: for rounds i = 1 … log2(n)−1 it
// draws c_i = (6ℓ·ln n + 6·ln log2 n)·2^i RR-sets, computes the width
// statistic κ(R) = 1 − (1 − ω(R)/m)^s, and stops when the round mean
// exceeds 2^(−i), returning n·mean/2. The result is floored at s (any
// s-node set has IC spread ≥ s) and at 1.
func EstimateKPT(s *rrset.Sampler, seedSize int, rng *xrand.Rand, opts Options) float64 {
	opts = opts.withDefaults()
	g := s.Graph()
	n := int64(g.N())
	m := g.M()
	if n == 0 || m == 0 || seedSize <= 0 {
		return math.Max(1, float64(seedSize))
	}
	log2n := math.Log2(float64(n))
	rounds := int(log2n) - 1
	if rounds < 1 {
		rounds = 1
	}
	base := 6*opts.Ell*math.Log(float64(n)) + 6*math.Log(math.Max(log2n, 1.0000001))
	var salt uint64
	for i := 1; i <= rounds; i++ {
		ci := int(math.Ceil(base * math.Pow(2, float64(i))))
		if ci < 16 {
			ci = 16
		}
		if opts.MaxTheta > 0 && ci > opts.MaxTheta {
			ci = opts.MaxTheta
		}
		sets := s.SampleBatchRR(ci, rng, salt)
		salt += uint64(ci)
		var sum float64
		for _, set := range sets {
			w := rrset.Width(g, set)
			kappa := 1 - math.Pow(1-float64(w)/float64(m), float64(seedSize))
			sum += kappa
		}
		mean := sum / float64(ci)
		if mean > 1/math.Pow(2, float64(i)) {
			kpt := float64(n) * mean / 2
			return math.Max(kpt, float64(seedSize))
		}
		if opts.MaxTheta > 0 && ci >= opts.MaxTheta {
			break // cannot afford larger rounds; fall through to floor
		}
	}
	return math.Max(1, float64(seedSize))
}

// Result reports what Maximize computed.
type Result struct {
	// Seeds are the selected nodes, in selection order.
	Seeds []int32
	// EstSpread is n·F_R(Seeds), the RR-sample spread estimate.
	EstSpread float64
	// Theta is the number of RR-sets sampled in phase 2.
	Theta int
	// KPT is the phase-1 lower bound on OPT_s.
	KPT float64
}

// Maximize selects up to k seeds maximizing expected IC spread over the
// sampler's graph/probabilities (classical influence maximization; no CTPs
// and no attention bounds — those belong to the regret layer).
func Maximize(s *rrset.Sampler, k int, rng *xrand.Rand, opts Options) Result {
	opts = opts.withDefaults()
	g := s.Graph()
	n := int64(g.N())
	if k <= 0 || n == 0 {
		return Result{}
	}
	if int64(k) > n {
		k = int(n)
	}
	kpt := EstimateKPT(s, k, rng.Split(0x7a11), opts)
	theta := rrset.Theta(n, int64(k), opts.Eps, opts.Ell, kpt, opts.MinTheta, opts.MaxTheta)
	col := rrset.NewCollection(int(n))
	col.AddFamily(s.SampleBatchRRFamily(theta, rng, 0x5eed).View())

	res := Result{Theta: theta, KPT: kpt}
	for len(res.Seeds) < k {
		u, _, ok := col.BestNode(nil)
		if !ok {
			break
		}
		col.CoverNode(u)
		col.Drop(u)
		res.Seeds = append(res.Seeds, u)
	}
	res.EstSpread = float64(n) * float64(col.NumCovered()) / float64(theta)
	return res
}
