package tim

import (
	"math"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/rrset"
	"repro/internal/topic"
	"repro/internal/xrand"
)

func fig1(t testing.TB) (*graph.Graph, []float32) {
	t.Helper()
	b := graph.NewBuilder(6)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(2, 4)
	b.AddEdge(3, 5)
	b.AddEdge(4, 5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, []float32{0.2, 0.2, 0.5, 0.5, 0.1, 0.1}
}

// exactBestK brute-forces the optimal IC spread over all k-subsets.
func exactBestK(t *testing.T, g *graph.Graph, probs []float32, k int) (best float64, bestSet []int32) {
	t.Helper()
	sim := diffusion.NewSimulator(g, topic.ItemParams{Probs: probs, CTPs: topic.ConstCTP{Nodes: g.N(), P: 1}})
	n := g.N()
	var rec func(start int, cur []int32)
	rec = func(start int, cur []int32) {
		if len(cur) == k {
			sp := diffusion.ExactSpreadIC(sim, cur)
			if sp > best {
				best = sp
				bestSet = append([]int32{}, cur...)
			}
			return
		}
		for v := start; v < n; v++ {
			rec(v+1, append(cur, int32(v)))
		}
	}
	rec(0, nil)
	return best, bestSet
}

func TestMaximizeK1PicksHub(t *testing.T) {
	g, probs := fig1(t)
	s := rrset.NewSampler(g, probs, nil)
	res := Maximize(s, 1, xrand.New(1), Options{Eps: 0.1, MinTheta: 50000})
	if len(res.Seeds) != 1 || res.Seeds[0] != 2 {
		t.Fatalf("k=1 seeds = %v, want [2] (the hub v3)", res.Seeds)
	}
	// Exact σ_ic({v3}) = 1 + 0.5 + 0.5 + (1 − 0.95²) = 2.0975.
	if math.Abs(res.EstSpread-2.0975) > 0.05 {
		t.Errorf("estimated spread %.4f, want ≈2.0975", res.EstSpread)
	}
}

func TestMaximizeNearOptimal(t *testing.T) {
	g, probs := fig1(t)
	for k := 1; k <= 3; k++ {
		opt, _ := exactBestK(t, g, probs, k)
		s := rrset.NewSampler(g, probs, nil)
		res := Maximize(s, k, xrand.New(uint64(k)), Options{Eps: 0.1, MinTheta: 50000})
		if len(res.Seeds) != k {
			t.Fatalf("k=%d: got %d seeds", k, len(res.Seeds))
		}
		sim := diffusion.NewSimulator(g, topic.ItemParams{Probs: probs, CTPs: topic.ConstCTP{Nodes: g.N(), P: 1}})
		got := diffusion.ExactSpreadIC(sim, res.Seeds)
		// TIM guarantees (1−1/e−ε)·OPT; on this tiny graph greedy is
		// near-exact, so check a generous 0.8·OPT.
		if got < 0.8*opt {
			t.Errorf("k=%d: TIM spread %.4f < 0.8·OPT (%.4f)", k, got, opt)
		}
	}
}

func TestMaximizeKLargerThanN(t *testing.T) {
	g, probs := fig1(t)
	s := rrset.NewSampler(g, probs, nil)
	res := Maximize(s, 100, xrand.New(2), Options{MinTheta: 5000})
	if len(res.Seeds) > 6 {
		t.Fatalf("selected %d seeds from a 6-node graph", len(res.Seeds))
	}
}

func TestMaximizeK0(t *testing.T) {
	g, probs := fig1(t)
	s := rrset.NewSampler(g, probs, nil)
	res := Maximize(s, 0, xrand.New(3), Options{})
	if len(res.Seeds) != 0 || res.EstSpread != 0 {
		t.Fatalf("k=0 result %+v", res)
	}
}

func TestEstimateKPTBounds(t *testing.T) {
	g, probs := fig1(t)
	s := rrset.NewSampler(g, probs, nil)
	// OPT_1 = 2.0975 (hub); KPT must be a sane lower bound: ≥ 1, and not
	// wildly above OPT_1.
	kpt := EstimateKPT(s, 1, xrand.New(4), Options{})
	if kpt < 1 {
		t.Errorf("KPT %.4f < 1", kpt)
	}
	if kpt > 2.0975*1.5 {
		t.Errorf("KPT %.4f far above OPT_1 = 2.0975", kpt)
	}
	// For s = n the spread is at most n.
	kptN := EstimateKPT(s, 6, xrand.New(5), Options{})
	if kptN < 6 || kptN > 6.5 {
		// OPT_6 = 6 (all nodes seeded); floor at s guarantees ≥ 6.
		t.Errorf("KPT(s=6) = %.4f, want ≈6", kptN)
	}
}

func TestEstimateKPTDegenerate(t *testing.T) {
	g := graph.NewBuilder(4).MustBuild() // no edges
	s := rrset.NewSampler(g, nil, nil)
	if kpt := EstimateKPT(s, 2, xrand.New(6), Options{}); kpt != 2 {
		t.Errorf("edgeless KPT = %v, want floor 2", kpt)
	}
	if kpt := EstimateKPT(s, 0, xrand.New(7), Options{}); kpt != 1 {
		t.Errorf("s=0 KPT = %v, want 1", kpt)
	}
}

func TestMaximizeDeterministic(t *testing.T) {
	g, probs := fig1(t)
	s := rrset.NewSampler(g, probs, nil)
	a := Maximize(s, 2, xrand.New(9), Options{MinTheta: 20000})
	b := Maximize(s, 2, xrand.New(9), Options{MinTheta: 20000})
	if len(a.Seeds) != len(b.Seeds) || a.EstSpread != b.EstSpread {
		t.Fatal("Maximize not deterministic")
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatal("Maximize seed order not deterministic")
		}
	}
}

func TestMaxThetaCap(t *testing.T) {
	g, probs := fig1(t)
	s := rrset.NewSampler(g, probs, nil)
	res := Maximize(s, 2, xrand.New(10), Options{MinTheta: 100, MaxTheta: 200})
	if res.Theta > 200 {
		t.Errorf("theta %d exceeds cap", res.Theta)
	}
}
