package shard

import (
	"context"

	"repro/internal/core"
)

// LocalClient is the in-process transport: it calls a Shard in the same
// address space directly, with zero serialization. Replies may alias
// shard-internal buffers exactly as the Client contract allows.
type LocalClient struct {
	// S is the shard this client fronts.
	S *Shard
}

// Info implements Client.
func (c LocalClient) Info(context.Context) (ShardInfo, error) { return c.S.Info(), nil }

// Pilot implements Client.
func (c LocalClient) Pilot(_ context.Context, req PilotRequest) (PilotReply, error) {
	return c.S.Pilot(req)
}

// Ensure implements Client.
func (c LocalClient) Ensure(_ context.Context, req EnsureRequest) (EnsureReply, error) {
	return c.S.Ensure(req)
}

// Start implements Client.
func (c LocalClient) Start(_ context.Context, req StartRequest) (StartReply, error) {
	return c.S.Start(req)
}

// Commit implements Client.
func (c LocalClient) Commit(_ context.Context, req CommitRequest) (CommitReply, error) {
	return c.S.Commit(req)
}

// Credit implements Client.
func (c LocalClient) Credit(_ context.Context, req CreditRequest) (CommitReply, error) {
	return c.S.Credit(req)
}

// Grow implements Client.
func (c LocalClient) Grow(_ context.Context, req GrowRequest) (GrowReply, error) {
	return c.S.Grow(req)
}

// Gains implements Client.
func (c LocalClient) Gains(_ context.Context, req GainsRequest) (GainsReply, error) {
	return c.S.Gains(req)
}

// End implements Client.
func (c LocalClient) End(_ context.Context, runID string) error {
	c.S.End(runID)
	return nil
}

// AddAd implements Client.
func (c LocalClient) AddAd(_ context.Context, req AddAdRequest) (MutateReply, error) {
	return c.S.AddAd(req)
}

// RemoveAd implements Client.
func (c LocalClient) RemoveAd(_ context.Context, req RemoveAdRequest) (MutateReply, error) {
	return c.S.RemoveAd(req)
}

// SyncEstimates implements Client.
func (c LocalClient) SyncEstimates(_ context.Context, req SyncEstimatesRequest) error {
	return c.S.SyncEstimates(req)
}

// NewLocalCluster builds K in-process shards over roster.Ads[:initialAds]
// (0 = all) and a coordinator fronting them — the single-process form of
// the sharded topology, used by internal/sim's lifecycle runs, the golden
// equivalence tests, and the sharded benchmarks.
func NewLocalCluster(roster *core.Instance, initialAds int, seed uint64, k int, cfg Config) (*Coordinator, []*Shard, error) {
	p, err := NewPartitioner(k)
	if err != nil {
		return nil, nil, err
	}
	shards := make([]*Shard, k)
	clients := make([]Client, k)
	for i := 0; i < k; i++ {
		s, err := NewShard(roster, initialAds, seed, p.Range(i))
		if err != nil {
			return nil, nil, err
		}
		shards[i] = s
		clients[i] = LocalClient{S: s}
	}
	cfg.Roster = roster
	cfg.InitialAds = initialAds
	coord, err := NewCoordinator(context.Background(), clients, cfg)
	if err != nil {
		return nil, nil, err
	}
	return coord, shards, nil
}

// NewReplicaCluster builds K partition ranges with r in-process replicas
// each and a coordinator fronting the K ReplicaSets. wrap, when non-nil,
// decorates each replica's client (slot-major: replica rep of slot) — the
// hook the fault tests and internal/sim's chaos mode use to splice
// FaultClient/RetryClient stacks under the replica layer. The returned
// shards are slot-major: shards[slot*r+rep].
func NewReplicaCluster(roster *core.Instance, initialAds int, seed uint64, k, r int, cfg Config, wrap func(slot, rep int, cl Client) Client) (*Coordinator, []*ReplicaSet, []*Shard, error) {
	if r <= 0 {
		r = 1
	}
	p, err := NewPartitioner(k)
	if err != nil {
		return nil, nil, nil, err
	}
	ctx := context.Background()
	shards := make([]*Shard, 0, k*r)
	sets := make([]*ReplicaSet, k)
	clients := make([]Client, k)
	for slot := 0; slot < k; slot++ {
		reps := make([]Client, r)
		for rep := 0; rep < r; rep++ {
			s, err := NewShard(roster, initialAds, seed, p.Range(slot))
			if err != nil {
				return nil, nil, nil, err
			}
			shards = append(shards, s)
			var cl Client = LocalClient{S: s}
			if wrap != nil {
				cl = wrap(slot, rep, cl)
			}
			reps[rep] = cl
		}
		set, err := NewReplicaSet(ctx, reps, ReplicaSetConfig{Slot: slot, Metrics: cfg.Metrics, Logf: cfg.Logf})
		if err != nil {
			return nil, nil, nil, err
		}
		sets[slot] = set
		clients[slot] = set
	}
	cfg.Roster = roster
	cfg.InitialAds = initialAds
	coord, err := NewCoordinator(ctx, clients, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return coord, sets, shards, nil
}
