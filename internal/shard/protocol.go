// The shard RPC protocol: the coverage / marginal-gain / commit steps of a
// distributed selection run, plus shard lifecycle (info, epoch-synced
// campaign mutations, drain). Every payload field is an integer — widths,
// set counts, coverage counts, sparse decrement vectors — so a reply's
// bytes carry no floating-point representation at all, and the in-process
// and HTTP/JSON transports are interchangeable bit for bit.

package shard

import (
	"context"
	"errors"

	"repro/internal/bandit"
)

// Wire-level sentinel errors. The HTTP transport maps them onto status
// codes and back, so coordinator retry logic behaves identically over
// either transport.
var (
	// ErrStaleEpoch reports that the shard's campaign epoch moved past the
	// one the request was prepared for (mirrors core.ErrStaleEpoch).
	ErrStaleEpoch = errors.New("shard: campaign epoch changed since the request was prepared")
	// ErrUnknownRun reports an RPC against a run id the shard does not
	// hold — never opened, already ended, or reaped after idling.
	ErrUnknownRun = errors.New("shard: unknown run id")
	// ErrDraining reports that the shard refuses new runs while it drains.
	ErrDraining = errors.New("shard: draining, not accepting new runs")
	// ErrBadSeq reports a sequenced run op (Commit/Credit/Grow) whose Seq
	// is neither the next expected value nor an exact replay of the last
	// applied one — the shard's run state has diverged from the caller's
	// op log and must be rebuilt (End + Start + replay) before continuing.
	ErrBadSeq = errors.New("shard: run op out of sequence")
)

// SparseCounts is a sparse per-node integer vector: node Nodes[i] carries
// Counts[i]. It ships initial coverage, growth credits, and commit
// decrements.
type SparseCounts struct {
	// Nodes lists the touched nodes.
	Nodes []int32 `json:"nodes"`
	// Counts holds each node's count, aligned with Nodes.
	Counts []int32 `json:"counts"`
}

// DatasetParams identifies the generated instance a shard daemon was
// launched with, so a coordinator host can rebuild the identical roster
// locally instead of shipping graphs over the wire (identity is still
// enforced by the fingerprint — these are a convenience, not a proof).
type DatasetParams struct {
	// Name is the registered dataset generator.
	Name string `json:"name"`
	// Seed is the generator seed.
	Seed uint64 `json:"seed"`
	// Scale is the dataset scale.
	Scale float64 `json:"scale"`
	// NumAds is the advertiser-count override (0 = dataset default).
	NumAds int `json:"numAds"`
}

// ShardInfo describes one shard — identity, partition slot, campaign
// state, and load — for cluster validation and health reporting.
type ShardInfo struct {
	// Dataset names the generated instance the daemon was launched with
	// (zero value for in-process shards, which share the roster directly).
	Dataset DatasetParams `json:"dataset"`
	// Shard is the partition slot in [0, NumShards).
	Shard int `json:"shard"`
	// NumShards is the cluster's K.
	NumShards int `json:"numShards"`
	// Seed is the stream seed the shard samples under.
	Seed uint64 `json:"seed"`
	// Fingerprint is core.InstanceFingerprint of the shard's full base
	// roster; a coordinator refuses a cluster with mixed fingerprints.
	Fingerprint uint64 `json:"fingerprint"`
	// CampaignFingerprint hashes the shard's *current* campaign set —
	// positions, names, budgets, CPEs, propagation profiles, sampled CTPs
	// (see campaignFingerprint). A coordinator reconstructs its campaign
	// mirror as a roster prefix, which is only valid while no mutations
	// have landed; this fingerprint lets it detect a mutated live cluster
	// and refuse to mirror it wrongly.
	CampaignFingerprint uint64 `json:"campaignFingerprint"`
	// Epoch is the shard's current campaign epoch.
	Epoch uint64 `json:"epoch"`
	// NumAds is the current campaign size.
	NumAds int `json:"numAds"`
	// RosterAds is the size of the full base roster the shard was built
	// from (campaign arrivals activate roster positions).
	RosterAds int `json:"rosterAds"`
	// SetsSampled counts local RR-sets drawn over the shard's lifetime.
	SetsSampled int64 `json:"setsSampled"`
	// MemBytes is the exact footprint of the shard's stored sample.
	MemBytes int64 `json:"memBytes"`
	// OpenRuns is the number of live selection runs.
	OpenRuns int `json:"openRuns"`
	// Draining reports whether the shard refuses new runs.
	Draining bool `json:"draining"`
}

// PilotRequest asks for the shard's slices of per-ad pilot widths: for
// each listed ad, the widths of its local sets below the global prefix
// Want, growing samples as needed.
type PilotRequest struct {
	// Epoch pins the campaign epoch the ad positions refer to.
	Epoch uint64 `json:"epoch"`
	// Ads lists the ad positions to pilot.
	Ads []int `json:"ads"`
	// Want is the global pilot size (TIRMOptions.MinTheta after defaults).
	Want int `json:"want"`
	// SkipWidths elides the width payload from the reply: the shard still
	// grows every listed ad's sample to the pilot prefix (so Fresh/Have
	// accounting is identical), but ships no widths — the coordinator
	// already holds them cached, and pilot widths are immutable for a
	// given (epoch, ad, want).
	SkipWidths bool `json:"skipWidths,omitempty"`
}

// PilotReply carries per-ad local pilot widths, aligned with the request's
// Ads. Have reports each ad's local set count before this call grew
// anything (the warm-start baseline), Fresh the local sets drawn by it.
type PilotReply struct {
	// Widths[i] are the local widths of request ad i, ascending global order.
	Widths [][]int64 `json:"widths"`
	// Have[i] is request ad i's pre-call local set count.
	Have []int `json:"have"`
	// Fresh is the total local sets this call drew.
	Fresh int64 `json:"fresh"`
}

// StartRequest opens a selection run: the shard builds one local coverage
// collection per listed ad over its slice of the global prefix
// [0, Thetas[i]). Start is level-triggered on RunID — re-opening an
// already-open run id rebuilds it from scratch (deterministic streams make
// the rebuilt state identical), so a retried or replayed Start is safe.
type StartRequest struct {
	// RunID names the run for subsequent Commit/Credit/Grow/Gains/End.
	RunID string `json:"runId"`
	// Epoch pins the campaign epoch; the whole run stays on it.
	Epoch uint64 `json:"epoch"`
	// Ads lists the participating ad positions.
	Ads []int `json:"ads"`
	// Thetas holds each ad's global θ, aligned with Ads.
	Thetas []int `json:"thetas"`
	// Kernel selects the coverage kernel the shard's local collections run
	// on, with core.Request.Kernel semantics: "" or "auto" auto-selects per
	// ad by the density heuristic, "sparse"/"bitset" force. Kernels change
	// only local sweep cost — every reply integer is kernel-independent.
	Kernel string `json:"kernel,omitempty"`
}

// StartReply reports each ad's initial local coverage.
type StartReply struct {
	// Cov[i] is request ad i's initial per-node local coverage (nodes with
	// nonzero counts only).
	Cov []SparseCounts `json:"cov"`
	// LocalSets[i] is how many local sets back request ad i's collection.
	LocalSets []int `json:"localSets"`
	// Kernels[i] is the rrset.KernelID request ad i's local collection
	// actually activated (a forced "bitset" always activates; "auto"
	// follows each shard slice's own density).
	Kernels []uint8 `json:"kernels,omitempty"`
	// Fresh is the total local sets this call drew.
	Fresh int64 `json:"fresh"`
}

// CommitRequest retires seed Node's residual local coverage for one ad —
// the shard half of Algorithm 2's commit step.
type CommitRequest struct {
	// RunID names the run.
	RunID string `json:"runId"`
	// Ad is the ad position within the run.
	Ad int `json:"ad"`
	// Node is the committed seed.
	Node int32 `json:"node"`
	// Seq, when > 0, makes the op level-triggered: the shard applies it
	// only if Seq is exactly one past the run's last applied sequence
	// number, answers an exact replay (Seq equal to the last applied) with
	// the cached reply without re-applying, and rejects anything else with
	// ErrBadSeq. 0 disables the guard (single-attempt callers).
	Seq int64 `json:"seq,omitempty"`
}

// CommitReply reports a commit's (or credit's) local effect: Covered newly
// covered local sets and the sparse per-node coverage decrements. Summed
// across the cluster these reproduce the single-node effect exactly.
// Slices may alias shard-internal buffers that are reused by the next call
// for the same run — consume before issuing it.
type CommitReply struct {
	// Covered is the number of local sets newly covered.
	Covered int `json:"covered"`
	// Delta holds the per-node residual-coverage decrements.
	Delta SparseCounts `json:"delta"`
}

// CreditRequest re-credits an existing seed with coverage among sets
// appended at or past a global stream position (Algorithm 4's
// UpdateEstimates, restricted to the growth window).
type CreditRequest struct {
	// RunID names the run.
	RunID string `json:"runId"`
	// Ad is the ad position within the run.
	Ad int `json:"ad"`
	// Node is the already-committed seed being re-credited.
	Node int32 `json:"node"`
	// FromGlobal is the global stream position growth started at.
	FromGlobal int `json:"fromGlobal"`
	// Seq is the run op sequence number (CommitRequest.Seq semantics).
	Seq int64 `json:"seq,omitempty"`
}

// GrowRequest extends one ad's run collection with the shard's slice of
// global stream sets [FromGlobal, ToGlobal) — θ rose mid-run.
type GrowRequest struct {
	// RunID names the run.
	RunID string `json:"runId"`
	// Ad is the ad position within the run.
	Ad int `json:"ad"`
	// FromGlobal is the ad's current global θ.
	FromGlobal int `json:"fromGlobal"`
	// ToGlobal is the new global θ.
	ToGlobal int `json:"toGlobal"`
	// Seq is the run op sequence number (CommitRequest.Seq semantics).
	Seq int64 `json:"seq,omitempty"`
}

// GrowReply reports the growth's local effect.
type GrowReply struct {
	// Added holds the appended sets' per-node coverage counts.
	Added SparseCounts `json:"added"`
	// LocalSets is how many local sets the growth appended.
	LocalSets int `json:"localSets"`
	// Fresh is the local sets freshly drawn (0 when the sample already
	// held the window).
	Fresh int64 `json:"fresh"`
}

// GainsRequest reads the residual local coverage of candidate nodes — the
// per-shard marginal-gain contributions of a frontier. The coordinator's
// optional verify mode scatter-gathers these each round and checks the
// sums against its aggregate counters, catching shard drift in flight.
type GainsRequest struct {
	// RunID names the run.
	RunID string `json:"runId"`
	// Ad is the ad position within the run.
	Ad int `json:"ad"`
	// Nodes lists the frontier candidates to score.
	Nodes []int32 `json:"nodes"`
}

// GainsReply carries the candidates' residual local coverage, aligned with
// the request's Nodes.
type GainsReply struct {
	// Cov[i] is the residual local coverage of request node i.
	Cov []int32 `json:"cov"`
}

// AdSpec describes an advertiser to add by template cloning: the new ad
// shares the Template position's mixed edge probabilities with its own
// budget, CPE, and optionally a uniform CTP (0 keeps the template's
// vector) — the same shape internal/serve's POST /ads accepts, chosen
// because arbitrary per-edge vectors have no JSON-sized representation.
type AdSpec struct {
	// Name labels the new ad (must be unique in the campaign).
	Name string `json:"name"`
	// Budget is the ad's budget B_i.
	Budget float64 `json:"budget"`
	// CPE is the ad's cost-per-engagement.
	CPE float64 `json:"cpe"`
	// CTP, when > 0, is a uniform click-through probability.
	CTP float64 `json:"ctp,omitempty"`
	// Template is the campaign position whose propagation profile the new
	// ad clones.
	Template int `json:"template,omitempty"`
}

// AddAdRequest appends an advertiser to the shard's campaign set. Exactly
// one of the two forms is used: Base ≥ 0 activates that position of the
// shard's full generated roster (how simulated arrivals join), Base < 0
// clones Spec from a live campaign ad.
type AddAdRequest struct {
	// Epoch pins the campaign epoch the mutation applies to.
	Epoch uint64 `json:"epoch"`
	// Base is the roster position to activate, or -1 for Spec.
	Base int `json:"base"`
	// Spec is the template-cloned form (Base < 0).
	Spec AdSpec `json:"spec"`
}

// RemoveAdRequest retires the advertiser at a campaign position.
type RemoveAdRequest struct {
	// Epoch pins the campaign epoch the mutation applies to.
	Epoch uint64 `json:"epoch"`
	// Pos is the campaign position to remove.
	Pos int `json:"pos"`
}

// MutateReply reports the campaign set after a mutation.
type MutateReply struct {
	// Epoch is the shard's campaign epoch after the mutation.
	Epoch uint64 `json:"epoch"`
	// Position is the added ad's campaign position (AddAd only).
	Position int `json:"position"`
	// NumAds is the campaign size after the mutation.
	NumAds int `json:"numAds"`
}

// SyncEstimatesRequest broadcasts a full bandit estimator snapshot to a
// shard. The payload is bandit.State — impression/click counts, an event
// counter, and the UCB exploration constant in 16.16 fixed point, all
// integers — so the snapshot survives the JSON transport bit for bit and
// every replica that restores it computes identical effective-CPE
// overrides. The coordinator pushes a fresh snapshot after each feedback
// batch; shards keep only the latest (Events is monotone, so stale
// rebroadcasts are ignored).
type SyncEstimatesRequest struct {
	// State is the integer-only estimator snapshot, cells sorted by
	// (Ad, Bucket).
	State bandit.State `json:"state"`
}

// EnsureRequest grows one ad's sample to cover the global prefix
// [0, Want) and syncs its inverted index — coordinator-driven warm-up, the
// distributed equivalent of BuildIndex's presampling.
type EnsureRequest struct {
	// Epoch pins the campaign epoch the ad position refers to.
	Epoch uint64 `json:"epoch"`
	// Ad is the ad position to warm.
	Ad int `json:"ad"`
	// Want is the global prefix the sample must cover.
	Want int `json:"want"`
}

// EnsureReply reports warm-up growth.
type EnsureReply struct {
	// Fresh is the local sets freshly drawn.
	Fresh int64 `json:"fresh"`
}

// Client is the coordinator's view of one shard, over any transport. The
// in-process LocalClient calls the Shard directly; HTTPClient speaks the
// same protocol as JSON over the shard daemon's /shard/ endpoints. Reply
// buffers of Commit/Credit may be reused by the next call against the same
// run — the coordinator consumes each reply before the next RPC.
type Client interface {
	// Info reports the shard's identity and state.
	Info(ctx context.Context) (ShardInfo, error)
	// Pilot returns per-ad local pilot widths.
	Pilot(ctx context.Context, req PilotRequest) (PilotReply, error)
	// Ensure warms one ad's sample to a global prefix.
	Ensure(ctx context.Context, req EnsureRequest) (EnsureReply, error)
	// Start opens a selection run and returns initial coverage.
	Start(ctx context.Context, req StartRequest) (StartReply, error)
	// Commit retires a committed seed's residual local coverage.
	Commit(ctx context.Context, req CommitRequest) (CommitReply, error)
	// Credit re-credits a seed within a growth window.
	Credit(ctx context.Context, req CreditRequest) (CommitReply, error)
	// Grow extends a run collection with a stream window.
	Grow(ctx context.Context, req GrowRequest) (GrowReply, error)
	// Gains reads frontier candidates' residual local coverage.
	Gains(ctx context.Context, req GainsRequest) (GainsReply, error)
	// End closes a run and frees its state.
	End(ctx context.Context, runID string) error
	// AddAd appends an advertiser to the campaign set.
	AddAd(ctx context.Context, req AddAdRequest) (MutateReply, error)
	// RemoveAd retires the advertiser at a campaign position.
	RemoveAd(ctx context.Context, req RemoveAdRequest) (MutateReply, error)
	// SyncEstimates replaces the shard's bandit estimator snapshot.
	SyncEstimates(ctx context.Context, req SyncEstimatesRequest) error
}
