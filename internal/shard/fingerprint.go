package shard

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"repro/internal/core"
)

// campaignFingerprint hashes one campaign set precisely enough that a
// coordinator's mirror (a roster prefix) can be validated against a live
// shard's current campaign: ad count and, per ad in position order, the
// name, budget, and CPE, three sampled CTP values (first, middle, last
// node — enough to distinguish a uniform-CTP clone from its template's
// vector), all folded over core.InstanceFingerprint (graph topology +
// per-ad propagation profiles). Computed identically shard-side (Info)
// and coordinator-side (NewCoordinator), so any campaign the mirror
// cannot represent — a mutated live cluster fronted by a freshly
// restarted coordinator — is detected instead of silently mis-priced.
func campaignFingerprint(inst *core.Instance) uint64 {
	h := fnv.New64a()
	var b8 [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		h.Write(b8[:])
	}
	w64(core.InstanceFingerprint(inst))
	w64(uint64(len(inst.Ads)))
	n := inst.G.N()
	probes := []int32{0, int32(n / 2), int32(n - 1)}
	for _, ad := range inst.Ads {
		h.Write([]byte(ad.Name))
		h.Write([]byte{0})
		w64(math.Float64bits(ad.Budget))
		w64(math.Float64bits(ad.CPE))
		for _, u := range probes {
			w64(math.Float64bits(ad.Params.CTPs.At(u)))
		}
	}
	return h.Sum64()
}
