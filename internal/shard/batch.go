// Batched distributed allocation: many selection runs against one pinned
// cluster epoch (the scatter-gather mirror of core.AllocateBatch).
//
// The per-item cost a naive loop pays K times over is the pilot round:
// every allocation needs each active ad's merged global pilot widths, and
// a cold width cache re-ships MinTheta int64s per ad per item. AllocateBatch
// therefore primes the cache with ONE pilot scatter-gather round covering
// the union of ads the whole batch touches, then fans the items out under a
// bounded worker budget — steady state, each item's own pilot round ships
// no width payload at all (SkipWidths), and the batch pays one width
// transfer total. Each item still runs the ordinary Allocate, so its
// result is byte-identical to the sequential call (golden-pinned).

package shard

import (
	"context"
	"runtime"
	"sort"

	"repro/internal/core"
	"repro/internal/rrset"
)

// AllocateBatch evaluates many requests against one pinned cluster epoch
// and returns one core.BatchResult per request, in request order. The
// epoch is captured once: items that do not pin their own Request.Epoch
// are pinned to it, so a campaign mutation landing mid-batch fails the
// remaining items with core.ErrStaleEpoch instead of silently splitting
// the batch across campaign sets. Items fail independently; one bad
// request never poisons its siblings.
func (c *Coordinator) AllocateBatch(ctx context.Context, reqs []core.Request) []core.BatchResult {
	out := make([]core.BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	c.mu.RLock()
	inst, epoch := c.inst, c.epoch
	c.mu.RUnlock()
	c.primePilots(ctx, inst, epoch, reqs)
	run := func(i int) {
		req := reqs[i]
		if req.Epoch == 0 {
			req.Epoch = epoch
		}
		out[i].Res, out[i].Err = c.Allocate(ctx, req)
	}
	workers := batchWorkers(len(reqs))
	if workers <= 1 {
		for i := range reqs {
			run(i)
		}
		return out
	}
	work := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for i := range work {
				run(i)
				done <- struct{}{}
			}
		}()
	}
	for i := range reqs {
		work <- i
	}
	close(work)
	for range reqs {
		<-done
	}
	return out
}

// batchWorkers bounds a batch's concurrent distributed runs: the same
// operator knob that caps sampling and selection parallelism
// (rrset.SetMaxWorkers, GOMAXPROCS by default), additionally capped well
// below maxOpenRuns so one batch cannot starve a shard's run table.
func batchWorkers(limit int) int {
	w := rrset.MaxWorkers()
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > maxOpenRuns/4 {
		w = maxOpenRuns / 4
	}
	if w > limit {
		w = limit
	}
	if w < 1 {
		w = 1
	}
	return w
}

// primePilots warms the width cache with one pilot scatter-gather round
// per distinct pilot size in the batch (one round total when every item
// shares MinTheta): the union of ads the items activate, full widths,
// merged and stored. Purely a prefetch — errors are swallowed and bad
// requests skipped, because each item re-validates and re-fetches on its
// own; priming never changes any allocation's content.
func (c *Coordinator) primePilots(ctx context.Context, inst *core.Instance, epoch uint64, reqs []core.Request) {
	groups := map[int]map[int]bool{}
	for i := range reqs {
		req := reqs[i]
		if req.Epoch != 0 && req.Epoch != epoch {
			continue
		}
		adIDs, _, _, err := req.Resolve(inst)
		if err != nil {
			continue
		}
		want := req.Opts.WithDefaults().MinTheta
		g := groups[want]
		if g == nil {
			g = make(map[int]bool, len(adIDs))
			groups[want] = g
		}
		for _, j := range adIDs {
			g[j] = true
		}
	}
	wants := make([]int, 0, len(groups))
	for want := range groups {
		wants = append(wants, want)
	}
	sort.Ints(wants)
	for _, want := range wants {
		ads := make([]int, 0, len(groups[want]))
		for j := range groups[want] {
			if !c.hasWidths(epoch, j, want) {
				ads = append(ads, j)
			}
		}
		if len(ads) == 0 {
			continue
		}
		sort.Ints(ads)
		pilots := make([]PilotReply, len(c.clients))
		rctx, round := c.roundStart(ctx, "pilot")
		err := c.scatter(func(k int, cl Client) error {
			var err error
			pilots[k], err = cl.Pilot(rctx, PilotRequest{Epoch: epoch, Ads: ads, Want: want})
			return err
		})
		c.roundDone("pilot", round)
		if err != nil {
			return
		}
		for i, j := range ads {
			perShard := make([][]int64, len(c.clients))
			for k := range c.clients {
				perShard[k] = pilots[k].Widths[i]
			}
			merged, err := c.mergeWidths(perShard, want)
			if err != nil {
				continue
			}
			c.storeWidths(epoch, j, want, merged)
		}
	}
}

// hasWidths reports whether one ad's merged pilot is already cached.
func (c *Coordinator) hasWidths(epoch uint64, ad, want int) bool {
	c.widthMu.Lock()
	defer c.widthMu.Unlock()
	if c.widthEpoch != epoch {
		return false
	}
	_, ok := c.widthCache[widthKey{ad: ad, want: want}]
	return ok
}
