package shard

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bandit"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rrset"
	"repro/internal/topic"
)

// Config shapes a Coordinator.
type Config struct {
	// Roster is the full generated instance the cluster was built from;
	// campaign arrivals activate its positions. Required.
	Roster *core.Instance
	// InitialAds is how many roster positions are live at cluster start
	// (0 = all). It must match how the shards were built; NewLocalCluster
	// wires both sides.
	InitialAds int
	// Verify turns on the per-round cross-check: every frontier's
	// marginal gains are scatter-gathered from all shards and compared
	// against the coordinator's aggregate counters, so shard drift (a
	// mis-sampled block, a lost commit) fails the run instead of skewing
	// the allocation. Costs one extra RPC round-trip per ad per
	// iteration — on by default in tests, off in serving.
	Verify bool
	// Logf receives operational messages (default log.Printf).
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives scatter-gather round timings (the
	// per-RPC metrics come from wrapping clients with InstrumentClient —
	// usually against the same Metrics).
	Metrics *Metrics
}

// Coordinator runs distributed CELF over a cluster of K shards: it owns
// the selection loop — candidate ranking, regret drops, attention bounds,
// seed-target estimation, every float — while shards own the RR sets and
// answer integer coverage RPCs. Allocations are byte-identical to
// core.AllocateFromIndex over a single-node index at any K (see package
// comment); campaign mutations broadcast to every shard in lockstep.
//
// Safe for concurrent use: allocations run under distinct run ids, and
// mutations serialize against them only at the epoch snapshot.
type Coordinator struct {
	clients []Client
	part    Partitioner
	verify  bool
	roster  *core.Instance
	logf    func(format string, args ...any)
	metrics *Metrics
	id      string
	runSeq  atomic.Uint64

	mu    sync.RWMutex // guards inst/epoch (mutations swap them)
	inst  *core.Instance
	epoch uint64

	// Pilot-width cache: an ad's merged global pilot widths are immutable
	// for a given (epoch, ad position, pilot size), and every allocation
	// needs them, so steady traffic should not re-ship MinTheta int64s
	// per ad per request. Cleared wholesale when the epoch moves.
	widthMu    sync.Mutex
	widthEpoch uint64
	widthCache map[widthKey][]int64
}

// widthKey identifies one cached merged pilot within an epoch.
type widthKey struct {
	ad   int
	want int
}

// NewCoordinator validates a cluster and fronts it: every client must
// report the same K, seed, roster fingerprint, epoch, and campaign size,
// and client i must hold partition slot i. The coordinator's campaign
// mirror starts as the roster prefix the shards report; a cluster whose
// live campaign has diverged from that prefix (in-memory mutations
// survive on running shards across a coordinator restart) is refused via
// the campaign fingerprint rather than silently mis-priced. ctx bounds
// the validation probes.
func NewCoordinator(ctx context.Context, clients []Client, cfg Config) (*Coordinator, error) {
	if len(clients) == 0 {
		return nil, errors.New("shard: coordinator needs at least one shard")
	}
	if cfg.Roster == nil {
		return nil, errors.New("shard: coordinator needs the cluster's roster instance")
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	part, err := NewPartitioner(len(clients))
	if err != nil {
		return nil, err
	}
	fp := core.InstanceFingerprint(cfg.Roster)
	var first ShardInfo
	for i, cl := range clients {
		info, err := cl.Info(ctx)
		if err != nil {
			return nil, fmt.Errorf("shard: shard %d unreachable: %w", i, err)
		}
		if info.NumShards != len(clients) || info.Shard != i {
			return nil, fmt.Errorf("shard: client %d reports slice %d/%d, cluster has %d shards",
				i, info.Shard, info.NumShards, len(clients))
		}
		if info.Fingerprint != fp {
			return nil, fmt.Errorf("shard: shard %d fingerprint %#x does not match roster %#x", i, info.Fingerprint, fp)
		}
		if i == 0 {
			first = info
			continue
		}
		if info.Seed != first.Seed || info.Epoch != first.Epoch || info.NumAds != first.NumAds ||
			info.CampaignFingerprint != first.CampaignFingerprint {
			return nil, fmt.Errorf("shard: shard %d state (seed %d, epoch %d, %d ads) diverges from shard 0 (seed %d, epoch %d, %d ads)",
				i, info.Seed, info.Epoch, info.NumAds, first.Seed, first.Epoch, first.NumAds)
		}
	}
	if first.NumAds > len(cfg.Roster.Ads) {
		return nil, fmt.Errorf("shard: cluster campaign has %d ads, roster only %d", first.NumAds, len(cfg.Roster.Ads))
	}
	inst := *cfg.Roster
	inst.Ads = append([]core.Ad(nil), cfg.Roster.Ads[:first.NumAds]...)
	if got := campaignFingerprint(&inst); got != first.CampaignFingerprint {
		return nil, fmt.Errorf("shard: cluster campaign (fingerprint %#x) is not the roster prefix this coordinator would mirror (%#x) — in-memory mutations survived on the shards; restart them (snapshots restore the as-built campaign) or the whole cluster",
			first.CampaignFingerprint, got)
	}
	return &Coordinator{
		clients:    clients,
		part:       part,
		verify:     cfg.Verify,
		roster:     cfg.Roster,
		logf:       cfg.Logf,
		metrics:    cfg.Metrics,
		id:         fmt.Sprintf("run-%x", time.Now().UnixNano()),
		inst:       &inst,
		epoch:      first.Epoch,
		widthEpoch: first.Epoch,
		widthCache: map[widthKey][]int64{},
	}, nil
}

// NumShards returns the cluster's K.
func (c *Coordinator) NumShards() int { return c.part.NumShards() }

// Inst returns the coordinator's current campaign instance (a stable
// snapshot; mutations swap in a fresh one).
func (c *Coordinator) Inst() *core.Instance {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.inst
}

// Epoch returns the cluster's current campaign epoch.
func (c *Coordinator) Epoch() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epoch
}

// EpochInst returns the current epoch and its instance as one consistent
// pair.
func (c *Coordinator) EpochInst() (uint64, *core.Instance) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epoch, c.inst
}

// Infos polls every shard's Info — the health probe behind the serve
// layer's shard-aware /healthz and /stats.
func (c *Coordinator) Infos(ctx context.Context) ([]ShardInfo, []error) {
	infos := make([]ShardInfo, len(c.clients))
	errs := make([]error, len(c.clients))
	c.scatter(func(k int, cl Client) error {
		infos[k], errs[k] = cl.Info(ctx)
		return nil
	})
	return infos, errs
}

// SetsSampled sums the shards' lifetime sample counts (the distributed
// equivalent of Index.SetsSampled).
func (c *Coordinator) SetsSampled(ctx context.Context) (int64, error) {
	infos, errs := c.Infos(ctx)
	var total int64
	for k, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("shard: shard %d unreachable: %w", k, err)
		}
		total += infos[k].SetsSampled
	}
	return total, nil
}

// scatter runs fn against every shard concurrently (inline for K = 1) and
// returns the first error in shard order. Replies land in caller-owned
// per-shard slots; callers apply them sequentially in shard order, which
// keeps every aggregate's evolution canonical.
func (c *Coordinator) scatter(fn func(k int, cl Client) error) error {
	if len(c.clients) == 1 {
		return fn(0, c.clients[0])
	}
	errs := make([]error, len(c.clients))
	var wg sync.WaitGroup
	for k, cl := range c.clients {
		wg.Add(1)
		go func(k int, cl Client) {
			defer wg.Done()
			errs[k] = fn(k, cl)
		}(k, cl)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// roundToken pairs one scatter-gather round's metric clock (read only
// when round metrics are on) with its span (open only when the request is
// traced); roundStart/roundDone bracket every round with it.
type roundToken struct {
	start time.Time
	span  *obs.Span
}

// roundStart opens one scatter-gather round: a "round.<phase>" child span
// when the request carries one (the returned context parents the round's
// shard RPCs under it), plus the metric clock behind the nil check.
func (c *Coordinator) roundStart(ctx context.Context, phase string) (context.Context, roundToken) {
	var tok roundToken
	if c.metrics != nil {
		tok.start = time.Now()
	}
	ctx, tok.span = obs.StartSpan(ctx, "round."+phase)
	return ctx, tok
}

// roundDone books one scatter round under its phase label and ends its
// span.
func (c *Coordinator) roundDone(phase string, tok roundToken) {
	if c.metrics != nil {
		c.metrics.roundSeconds.With(phase).Observe(time.Since(tok.start).Seconds())
	}
	tok.span.End()
}

// coordAd is the coordinator's per-advertiser selection state — the
// distributed mirror of core's per-ad slot, with the coverage collection
// replaced by an aggregate counter collection.
type coordAd struct {
	j         int
	cpe       float64
	budget    float64
	ctps      topic.CTP
	col       *rrset.Collection // counter mode: shard-summed coverage
	widths    []int64           // global pilot widths, merged across shards
	theta     int
	sTarget   int
	have      int // Σ per-shard pre-run local sets (warm baseline)
	revenue   float64
	seeds     []int32
	seedMass  []float64
	saturated bool
	powMemo   map[int64]float64
	nodes     []int32
	covs      []int
	candOK    bool
	candU     int32
	candScore float64
	candMg    float64
	candDrop  float64
}

// errDrift wraps cross-shard inconsistencies: a shard answered with state
// that cannot belong to the same deterministic stream the others hold.
var errDrift = errors.New("shard: cluster state drifted across shards")

// Allocate runs one distributed selection — the scatter-gather form of
// core.AllocateFromIndex, byte-identical to it for the same request at any
// shard count. SoftCoverage is not supported (its float masses do not
// re-associate across shards); Request.Pool is ignored (the transient
// state lives on the coordinator). A campaign mutation racing the run
// fails it with core.ErrStaleEpoch, like Request.Epoch pinning.
func (c *Coordinator) Allocate(ctx context.Context, req core.Request) (*core.TIRMResult, error) {
	// Every distributed allocation carries a trace id: reuse the caller's
	// (the serve middleware put it in ctx) or stamp a fresh one, so each
	// shard RPC's X-Trace-Id ties the whole scatter-gather fan-out to one
	// request in every daemon's logs.
	if obs.Trace(ctx) == "" {
		ctx = obs.WithTrace(ctx, obs.NewTraceID())
	}
	c.mu.RLock()
	inst, epoch := c.inst, c.epoch
	c.mu.RUnlock()
	if req.Epoch != 0 && req.Epoch != epoch {
		return nil, fmt.Errorf("%w: request prepared for epoch %d, cluster is at %d", core.ErrStaleEpoch, req.Epoch, epoch)
	}
	opts := req.Opts.WithDefaults()
	if opts.SoftCoverage {
		return nil, errors.New("shard: soft coverage is not supported by sharded allocation (weighted masses do not re-associate across shards)")
	}
	adIDs, lambda, kappa, err := req.Resolve(inst)
	if err != nil {
		return nil, err
	}
	g := inst.G
	n, m, h := g.N(), g.M(), len(inst.Ads)
	maxSeeds := opts.MaxSeedsPerAd
	if maxSeeds <= 0 {
		maxSeeds = n
	}

	res := &core.TIRMResult{
		Alloc:           core.NewAllocation(h),
		EstRevenue:      make([]float64, h),
		FinalTheta:      make([]int, h),
		FinalSeedTarget: make([]int, h),
	}

	// Per-ad setup mirrors core's: residual-depleted ads are fully served
	// and never reach a shard.
	var ads []*coordAd
	for _, j := range adIDs {
		spec := inst.Ads[j]
		cpe, budget := spec.CPE, spec.Budget
		if req.Budgets != nil {
			budget = req.Budgets[j]
		}
		if req.CPEs != nil {
			cpe = req.CPEs[j]
		}
		if req.SpentBudget != nil {
			budget -= req.SpentBudget[j]
			if budget <= 0 {
				continue
			}
		}
		ads = append(ads, &coordAd{
			j: j, cpe: cpe, budget: budget, ctps: spec.Params.CTPs,
			sTarget: 1, powMemo: make(map[int64]float64, 128),
		})
	}
	if len(ads) == 0 {
		return res, nil
	}
	activeIDs := make([]int, len(ads))
	for i, a := range ads {
		activeIDs[i] = a.j
	}
	runID := fmt.Sprintf("%s-%d", c.id, c.runSeq.Add(1))

	// Per-phase timing mirrors core's: accumulated on the stack behind nil
	// checks, delivered in one ObserveAllocation call on success.
	observer := req.Observer
	var timings core.PhaseTimings
	var phaseStart time.Time
	var explain core.ExplainObserver
	if observer != nil {
		phaseStart = time.Now()
		if req.Explain {
			explain, _ = observer.(core.ExplainObserver)
		}
	}

	// Phase 1 — pilot scatter-gather: each shard ships its slice of every
	// ad's pilot widths; merging them in global stream order reconstructs
	// the exact pilot a single node would hold, so KPT and the θ targets
	// come out bit-identical. Merged pilots are immutable per (epoch, ad,
	// size) and cached, so steady traffic skips the width payload
	// entirely (shards still grow pilots and report Have/Fresh, keeping
	// the accounting identical to a cold coordinator).
	cachedWidths := c.lookupWidths(epoch, activeIDs, opts.MinTheta)
	pilots := make([]PilotReply, len(c.clients))
	rctx, round := c.roundStart(ctx, "pilot")
	err = c.scatter(func(k int, cl Client) error {
		var err error
		pilots[k], err = cl.Pilot(rctx, PilotRequest{
			Epoch: epoch, Ads: activeIDs, Want: opts.MinTheta, SkipWidths: cachedWidths != nil,
		})
		return err
	})
	c.roundDone("pilot", round)
	if err != nil {
		return nil, wrapEpochErr(err)
	}
	thetas := make([]int, len(ads))
	for i, a := range ads {
		if cachedWidths != nil {
			a.widths = cachedWidths[i]
		} else {
			perShard := make([][]int64, len(c.clients))
			for k := range c.clients {
				perShard[k] = pilots[k].Widths[i]
			}
			a.widths, err = c.mergeWidths(perShard, opts.MinTheta)
			if err != nil {
				return nil, fmt.Errorf("%w: ad %d pilot: %v", errDrift, a.j, err)
			}
			c.storeWidths(epoch, a.j, opts.MinTheta, a.widths)
		}
		for k := range c.clients {
			a.have += pilots[k].Have[i]
		}
		kpt := core.KPTFromWidths(a.widths, 1, n, m, a.powMemo)
		a.theta = rrset.Theta(int64(n), 1, opts.Eps, opts.Ell, kpt, opts.MinTheta, opts.MaxTheta)
		thetas[i] = a.theta
	}
	for k := range c.clients {
		res.TotalSetsSampled += pilots[k].Fresh
	}

	// Phase 2 — start scatter-gather: shards build their local coverage
	// collections; the coordinator sums the initial counts into one
	// counter collection per ad. All integers, applied in shard order.
	starts := make([]StartReply, len(c.clients))
	rctx, round = c.roundStart(ctx, "start")
	err = c.scatter(func(k int, cl Client) error {
		var err error
		starts[k], err = cl.Start(rctx, StartRequest{RunID: runID, Epoch: epoch, Ads: activeIDs, Thetas: thetas, Kernel: req.Kernel})
		return err
	})
	c.roundDone("start", round)
	if err != nil {
		c.endRun(runID)
		return nil, wrapEpochErr(err)
	}
	defer c.endRun(runID)
	for i, a := range ads {
		a.col = rrset.NewCounterCollection(n)
		for k := range c.clients {
			sc := starts[k].Cov[i]
			a.col.AddCounts(sc.Nodes, sc.Counts, starts[k].LocalSets[i])
		}
		if a.col.NumSets() != a.theta {
			return nil, fmt.Errorf("%w: ad %d shards hold %d sets for θ=%d", errDrift, a.j, a.col.NumSets(), a.theta)
		}
		// Distributed runs hold K local collections per ad; KernelCounts
		// tallies each of them (so it sums to ads×K, not ads — "auto" may
		// legitimately pick different kernels on differently dense slices).
		for k := range c.clients {
			if i < len(starts[k].Kernels) && int(starts[k].Kernels[i]) < rrset.NumKernels {
				res.KernelCounts[starts[k].Kernels[i]]++
			}
		}
	}
	for k := range c.clients {
		res.TotalSetsSampled += starts[k].Fresh
	}
	if observer != nil {
		timings.Phase[core.PhaseEstimate] = time.Since(phaseStart)
	}

	attention := core.NewAttention(n, kappa)
	eligible := attention.CanTake

	// Main loop — Algorithm 2 lines 4–19 with the commit step distributed:
	// scan locally over the aggregate counters, pick the winner with the
	// existing tie-break order, broadcast the commit, and fold the
	// gathered per-shard decrements back into the aggregates.
	active := make([]*coordAd, 0, len(ads))
	for {
		if observer != nil {
			phaseStart = time.Now()
		}
		active = active[:0]
		for _, a := range ads {
			if !a.saturated {
				active = append(active, a)
			}
		}
		for _, a := range active {
			c.scanAd(a, n, lambda, opts.CandidateDepth, eligible)
			if c.verify && len(a.nodes) > 0 {
				if err := c.verifyGains(ctx, runID, a); err != nil {
					return nil, err
				}
			}
		}
		var best *coordAd
		for _, a := range active {
			if !a.candOK {
				continue
			}
			if best == nil || a.candDrop > best.candDrop {
				best = a
			}
		}
		if observer != nil {
			timings.Phase[core.PhaseScan] += time.Since(phaseStart)
		}
		if best == nil {
			break
		}
		if observer != nil {
			phaseStart = time.Now()
		}

		a := best
		bestU, bestMg := a.candU, a.candMg
		rctx, round = c.roundStart(ctx, "commit")
		covered, err := c.scatterCover(rctx, a, func(cl Client) (CommitReply, error) {
			return cl.Commit(rctx, CommitRequest{RunID: runID, Ad: a.j, Node: bestU})
		})
		c.roundDone("commit", round)
		if err != nil {
			return nil, err
		}
		if a.col.Coverage(bestU) != 0 {
			return nil, fmt.Errorf("%w: residual coverage of %d nonzero after cluster commit", errDrift, bestU)
		}
		delta := a.ctps.At(bestU)
		mass := delta * float64(covered)
		a.col.Drop(bestU)
		attention.Take(bestU)
		a.seeds = append(a.seeds, bestU)
		a.seedMass = append(a.seedMass, mass)
		a.revenue += bestMg
		res.Iterations++
		if diff := mass - delta*a.candScore; diff > 1e-6*(1+mass) || diff < -1e-6*(1+mass) {
			return nil, fmt.Errorf("%w: commit mass %g disagrees with scanned score %g", errDrift, mass, delta*a.candScore)
		}
		if observer != nil {
			timings.Phase[core.PhaseCommit] += time.Since(phaseStart)
			timings.Rounds++
		}
		if explain != nil {
			explain.ObserveCommit(core.CommitEvent{
				Round:    res.Iterations,
				Ad:       a.j,
				Node:     bestU,
				Gain:     bestMg,
				Residual: a.budget - a.revenue,
			})
		}

		if len(a.seeds) >= maxSeeds {
			a.saturated = true
			continue
		}

		// Iterative seed-set-size estimation (lines 14–18), θ growth, and
		// UpdateEstimates — same math as core, with growth and credits
		// scatter-gathered.
		if len(a.seeds) == a.sTarget {
			gap := a.budget - a.revenue
			if gap <= 0 || bestMg <= 0 {
				continue
			}
			growth := int(math.Floor(gap / bestMg))
			if growth < 1 {
				continue
			}
			a.sTarget += growth
			kpt := core.KPTFromWidths(a.widths, a.sTarget, n, m, a.powMemo)
			achieved := float64(n) * float64(a.col.NumCovered()) / float64(a.theta) * (1 - opts.Eps)
			optLB := math.Max(kpt, achieved)
			want := rrset.Theta(int64(n), int64(a.sTarget), opts.Eps, opts.Ell, optLB, opts.MinTheta, opts.MaxTheta)
			if want > a.theta {
				if observer != nil {
					phaseStart = time.Now()
				}
				boundary := a.col.NumSets()
				grows := make([]GrowReply, len(c.clients))
				rctx, round = c.roundStart(ctx, "grow")
				err = c.scatter(func(k int, cl Client) error {
					var err error
					grows[k], err = cl.Grow(rctx, GrowRequest{RunID: runID, Ad: a.j, FromGlobal: a.theta, ToGlobal: want})
					return err
				})
				c.roundDone("grow", round)
				if err != nil {
					return nil, err
				}
				grown := 0
				for k := range c.clients {
					a.col.AddCounts(grows[k].Added.Nodes, grows[k].Added.Counts, grows[k].LocalSets)
					grown += grows[k].LocalSets
					res.TotalSetsSampled += grows[k].Fresh
				}
				if grown != want-a.theta {
					return nil, fmt.Errorf("%w: ad %d growth appended %d sets for window %d", errDrift, a.j, grown, want-a.theta)
				}
				a.theta = want
				a.revenue = 0
				for s, seed := range a.seeds {
					rctx, round = c.roundStart(ctx, "credit")
					covered, err := c.scatterCover(rctx, a, func(cl Client) (CommitReply, error) {
						return cl.Credit(rctx, CreditRequest{RunID: runID, Ad: a.j, Node: seed, FromGlobal: boundary})
					})
					c.roundDone("credit", round)
					if err != nil {
						return nil, err
					}
					a.seedMass[s] += a.ctps.At(seed) * float64(covered)
					a.revenue += a.cpe * float64(n) * a.seedMass[s] / float64(a.theta)
				}
				if observer != nil {
					timings.Phase[core.PhaseGrow] += time.Since(phaseStart)
				}
			}
		}
	}

	for _, a := range ads {
		res.Alloc.Seeds[a.j] = a.seeds
		res.EstRevenue[a.j] = a.revenue
		res.FinalTheta[a.j] = a.theta
		res.FinalSeedTarget[a.j] = a.sTarget
		res.MemBytes += a.col.MemBytes()
		reused := int64(a.theta)
		if int64(a.have) < reused {
			reused = int64(a.have)
		}
		res.SetsReused += reused
	}
	if observer != nil {
		observer.ObserveAllocation(timings)
	}
	return res, nil
}

// scanAd evaluates one ad's frontier candidates against the aggregate
// counters — SelectBestNode over the shard-summed coverage, with scores
// and comparisons identical to the single-node scan.
func (c *Coordinator) scanAd(a *coordAd, n int, lambda float64, depth int, eligible func(int32) bool) {
	a.nodes, a.covs = a.col.TopNodesInto(depth, eligible, a.nodes, a.covs)
	if len(a.nodes) == 0 {
		a.saturated = true
		a.candOK = false
		return
	}
	a.candOK = false
	for ci, u := range a.nodes {
		score := float64(a.covs[ci])
		mg := a.cpe * float64(n) * a.ctps.At(u) * score / float64(a.theta)
		d := core.RegretDrop(a.budget-a.revenue, mg, lambda)
		if d <= 0 {
			continue
		}
		if !a.candOK || d > a.candDrop {
			a.candU, a.candScore, a.candMg, a.candDrop = u, score, mg, d
		}
		a.candOK = true
	}
	if !a.candOK {
		a.saturated = true
	}
}

// scatterCover broadcasts one commit-shaped RPC, folds every shard's
// decrements into the ad's aggregate counters in shard order, and returns
// the cluster-wide covered count.
func (c *Coordinator) scatterCover(ctx context.Context, a *coordAd, call func(cl Client) (CommitReply, error)) (int, error) {
	if len(c.clients) == 1 {
		reply, err := call(c.clients[0])
		if err != nil {
			return 0, err
		}
		a.col.ApplyCover(reply.Covered, reply.Delta.Nodes, reply.Delta.Counts)
		return reply.Covered, nil
	}
	replies := make([]CommitReply, len(c.clients))
	err := c.scatter(func(k int, cl Client) error {
		var err error
		replies[k], err = call(cl)
		return err
	})
	if err != nil {
		return 0, err
	}
	covered := 0
	for k := range c.clients {
		a.col.ApplyCover(replies[k].Covered, replies[k].Delta.Nodes, replies[k].Delta.Counts)
		covered += replies[k].Covered
	}
	return covered, nil
}

// verifyGains scatter-gathers the frontier candidates' per-shard marginal
// gains and checks their sums against the aggregate counters — the
// Verify-mode drift detector.
func (c *Coordinator) verifyGains(ctx context.Context, runID string, a *coordAd) error {
	sums := make([]int32, len(a.nodes))
	gains := make([]GainsReply, len(c.clients))
	rctx, round := c.roundStart(ctx, "gains")
	err := c.scatter(func(k int, cl Client) error {
		var err error
		gains[k], err = cl.Gains(rctx, GainsRequest{RunID: runID, Ad: a.j, Nodes: a.nodes})
		return err
	})
	c.roundDone("gains", round)
	if err != nil {
		return err
	}
	for k := range c.clients {
		if len(gains[k].Cov) != len(a.nodes) {
			return fmt.Errorf("%w: shard %d scored %d of %d candidates", errDrift, k, len(gains[k].Cov), len(a.nodes))
		}
		for i, g := range gains[k].Cov {
			sums[i] += g
		}
	}
	for i, u := range a.nodes {
		if int(sums[i]) != a.covs[i] {
			return fmt.Errorf("%w: candidate %d gain sums to %d across shards, coordinator holds %d", errDrift, u, sums[i], a.covs[i])
		}
	}
	return nil
}

// lookupWidths returns the cached merged pilots for every listed ad at
// the given size, or nil if any is missing (the caller then requests full
// widths for all of them). The cache is scoped to one epoch — mutations
// reshuffle the position↔stream mapping, so it resets when the epoch
// moves.
func (c *Coordinator) lookupWidths(epoch uint64, ads []int, want int) [][]int64 {
	c.widthMu.Lock()
	defer c.widthMu.Unlock()
	if c.widthEpoch != epoch {
		c.widthEpoch = epoch
		c.widthCache = map[widthKey][]int64{}
		return nil
	}
	out := make([][]int64, len(ads))
	for i, j := range ads {
		w, ok := c.widthCache[widthKey{ad: j, want: want}]
		if !ok {
			return nil
		}
		out[i] = w
	}
	return out
}

// storeWidths caches one ad's merged pilot (read-only from here on).
func (c *Coordinator) storeWidths(epoch uint64, ad, want int, widths []int64) {
	c.widthMu.Lock()
	defer c.widthMu.Unlock()
	if c.widthEpoch != epoch {
		return
	}
	c.widthCache[widthKey{ad: ad, want: want}] = widths
}

// mergeWidths interleaves per-shard pilot width slices back into global
// stream order: position g of the merged pilot comes from the shard owning
// block g/StreamBlockSize. Integer widths merge exactly; the order matters
// because KPT sums them as floats.
func (c *Coordinator) mergeWidths(perShard [][]int64, want int) ([]int64, error) {
	for k := range perShard {
		if need := c.part.Range(k).LocalCount(want); len(perShard[k]) != need {
			return nil, fmt.Errorf("shard %d shipped %d pilot widths, its slice of %d is %d", k, len(perShard[k]), want, need)
		}
	}
	merged := make([]int64, 0, want)
	cursors := make([]int, len(perShard))
	for g := 0; g < want; g++ {
		k := (g / rrset.StreamBlockSize) % c.part.NumShards()
		merged = append(merged, perShard[k][cursors[k]])
		cursors[k]++
	}
	return merged, nil
}

// endRun closes a run on every shard, best-effort.
func (c *Coordinator) endRun(runID string) {
	ctx := context.Background()
	c.scatter(func(k int, cl Client) error {
		cl.End(ctx, runID)
		return nil
	})
}

// wrapEpochErr translates a shard-side stale-epoch rejection into
// core.ErrStaleEpoch so callers (serve's 409 path, epoch-pinned clients)
// handle distributed and single-node races identically.
func wrapEpochErr(err error) error {
	if errors.Is(err, ErrStaleEpoch) {
		return fmt.Errorf("%w: %v", core.ErrStaleEpoch, err)
	}
	return err
}

// specToAd materializes a template-cloned AdSpec against a campaign
// instance — shared by the shard-side mutation and the coordinator's
// campaign mirror so both construct bit-identical advertisers.
func specToAd(inst *core.Instance, spec AdSpec) (core.Ad, error) {
	if spec.Name == "" {
		return core.Ad{}, errors.New("shard: ad name required")
	}
	for _, a := range inst.Ads {
		if a.Name == spec.Name {
			return core.Ad{}, fmt.Errorf("shard: ad %q already exists", spec.Name)
		}
	}
	if spec.Template < 0 || spec.Template >= len(inst.Ads) {
		return core.Ad{}, fmt.Errorf("shard: template %d out of range (campaign has %d ads)", spec.Template, len(inst.Ads))
	}
	if spec.CTP < 0 || spec.CTP > 1 {
		return core.Ad{}, fmt.Errorf("shard: ctp %g must be in [0, 1]", spec.CTP)
	}
	tmpl := inst.Ads[spec.Template]
	ctps := tmpl.Params.CTPs
	if spec.CTP > 0 {
		ctps = topic.ConstCTP{Nodes: inst.G.N(), P: spec.CTP}
	}
	return core.Ad{
		Name:   spec.Name,
		Budget: spec.Budget,
		CPE:    spec.CPE,
		Params: topic.ItemParams{Probs: tmpl.Params.Probs, CTPs: ctps},
	}, nil
}

// Warm presamples the whole cluster to the depth a single-node BuildIndex
// would: per ad, the global pilot plus the first Eq. 5 target from the
// pilot's KPT estimate. Like its single-node counterpart it only changes
// how much is sampled ahead of traffic, never any allocation's content.
func (c *Coordinator) Warm(ctx context.Context, opts core.TIRMOptions) error {
	c.mu.RLock()
	numAds := len(c.inst.Ads)
	c.mu.RUnlock()
	for j := 0; j < numAds; j++ {
		if err := c.warmAd(ctx, j, opts); err != nil {
			return err
		}
	}
	return nil
}

// warmAd presamples one ad cluster-wide (the distributed mirror of core's
// per-ad presample): global pilot → KPT at s = 1 → θ → ensure.
func (c *Coordinator) warmAd(ctx context.Context, j int, opts core.TIRMOptions) error {
	opts = opts.WithDefaults()
	c.mu.RLock()
	inst, epoch := c.inst, c.epoch
	c.mu.RUnlock()
	n, m := inst.G.N(), inst.G.M()
	pilots := make([]PilotReply, len(c.clients))
	err := c.scatter(func(k int, cl Client) error {
		var err error
		pilots[k], err = cl.Pilot(ctx, PilotRequest{Epoch: epoch, Ads: []int{j}, Want: opts.MinTheta})
		return err
	})
	if err != nil {
		return wrapEpochErr(err)
	}
	perShard := make([][]int64, len(c.clients))
	for k := range c.clients {
		perShard[k] = pilots[k].Widths[0]
	}
	widths, err := c.mergeWidths(perShard, opts.MinTheta)
	if err != nil {
		return fmt.Errorf("%w: ad %d pilot: %v", errDrift, j, err)
	}
	kpt := core.KPTFromWidths(widths, 1, n, m, nil)
	want := rrset.Theta(int64(n), 1, opts.Eps, opts.Ell, kpt, opts.MinTheta, opts.MaxTheta)
	return wrapEpochErr(c.scatter(func(k int, cl Client) error {
		_, err := cl.Ensure(ctx, EnsureRequest{Epoch: epoch, Ad: j, Want: want})
		return err
	}))
}

// AddAdBase activates roster position base on every shard (how simulated
// arrivals join a sharded campaign), advances the epoch, and warms the new
// ad to the same depth a single-node AddAd presamples. Returns the new
// ad's campaign position.
func (c *Coordinator) AddAdBase(ctx context.Context, base int, opts core.TIRMOptions) (int, error) {
	if base < 0 || base >= len(c.roster.Ads) {
		return 0, fmt.Errorf("shard: roster position %d out of range (roster has %d)", base, len(c.roster.Ads))
	}
	return c.addAd(ctx, AddAdRequest{Base: base}, c.roster.Ads[base], opts)
}

// AddAdSpec adds a template-cloned advertiser on every shard — the
// sharded form of the serve layer's POST /ads.
func (c *Coordinator) AddAdSpec(ctx context.Context, spec AdSpec, opts core.TIRMOptions) (int, error) {
	c.mu.RLock()
	inst := c.inst
	c.mu.RUnlock()
	ad, err := specToAd(inst, spec)
	if err != nil {
		return 0, err
	}
	return c.addAd(ctx, AddAdRequest{Base: -1, Spec: spec}, ad, opts)
}

// addAd broadcasts one campaign addition, keeps the coordinator's mirror
// in lockstep, and warms the new ad.
func (c *Coordinator) addAd(ctx context.Context, req AddAdRequest, ad core.Ad, opts core.TIRMOptions) (int, error) {
	c.mu.Lock()
	req.Epoch = c.epoch
	var pos int
	for k, cl := range c.clients {
		reply, err := cl.AddAd(ctx, req)
		if err != nil {
			c.mu.Unlock()
			return 0, fmt.Errorf("shard: add ad on shard %d: %w (cluster epochs may have diverged; restart the cluster)", k, wrapEpochErr(err))
		}
		if k == 0 {
			pos = reply.Position
			c.epoch = reply.Epoch
		} else if reply.Epoch != c.epoch || reply.Position != pos {
			c.mu.Unlock()
			return 0, fmt.Errorf("%w: shard %d reports epoch %d pos %d, shard 0 epoch %d pos %d — restart the cluster",
				errDrift, k, reply.Epoch, reply.Position, c.epoch, pos)
		}
	}
	inst := *c.inst
	inst.Ads = append(append([]core.Ad(nil), c.inst.Ads...), ad)
	c.inst = &inst
	c.mu.Unlock()
	// The mutation is committed cluster-wide at this point; warm-up is a
	// prefetch that never changes allocation content, so its failure is
	// logged rather than reported — selection simply samples on demand.
	if err := c.warmAd(ctx, pos, opts); err != nil {
		c.logf("shard: warm-up of new ad %d failed (selection will sample on demand): %v", pos, err)
	}
	return pos, nil
}

// RemoveAd retires the campaign position on every shard, keeping the
// mirror and epoch in lockstep.
func (c *Coordinator) RemoveAd(ctx context.Context, pos int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if pos < 0 || pos >= len(c.inst.Ads) {
		return fmt.Errorf("shard: remove ad %d, campaign has %d", pos, len(c.inst.Ads))
	}
	req := RemoveAdRequest{Epoch: c.epoch, Pos: pos}
	for k, cl := range c.clients {
		reply, err := cl.RemoveAd(ctx, req)
		if err != nil {
			return fmt.Errorf("shard: remove ad on shard %d: %w (cluster epochs may have diverged; restart the cluster)", k, wrapEpochErr(err))
		}
		if k == 0 {
			c.epoch = reply.Epoch
		} else if reply.Epoch != c.epoch {
			return fmt.Errorf("%w: shard %d epoch %d after removal, shard 0 at %d — restart the cluster", errDrift, k, reply.Epoch, c.epoch)
		}
	}
	inst := *c.inst
	inst.Ads = append(append([]core.Ad(nil), c.inst.Ads[:pos]...), c.inst.Ads[pos+1:]...)
	c.inst = &inst
	return nil
}

// SyncEstimates broadcasts a bandit estimator snapshot to every shard,
// concurrently, so sharded allocation and any shard-local consumer see
// the same integer estimate table. Unlike campaign mutations it carries
// no epoch pin — estimator state is name-keyed and epoch-free — so a
// failed shard can simply be retried with the next (monotone) snapshot.
func (c *Coordinator) SyncEstimates(ctx context.Context, st bandit.State) error {
	req := SyncEstimatesRequest{State: st}
	return c.scatter(func(k int, cl Client) error {
		if err := cl.SyncEstimates(ctx, req); err != nil {
			return fmt.Errorf("shard: sync estimates on shard %d: %w", k, err)
		}
		return nil
	})
}
