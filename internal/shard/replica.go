// Replica sets: R interchangeable shards serving one partition range. A
// ReplicaSet is itself a Client, so the coordinator is replication-blind —
// it sees K clients exactly as before, while each of them routes to a
// preferred replica and fails over on error.
//
// The correctness invariant is the partition determinism the golden tests
// pin: replicas of the same (seed, range) derive identical RR-set streams,
// so every integer protocol reply is replica-independent and failing over
// mid-run cannot change an allocation's bytes. Run *state* (per-run
// coverage collections) lives on whichever replica served Start, so the
// set keeps a per-run op log — the StartRequest plus every sequenced
// Commit/Credit/Grow — and rebuilds a run on a fresh replica by replaying
// it (End + Start + ops, in order). The shard-side sequence guard
// (CommitRequest.Seq) makes replays level-triggered: an op the replica
// already applied answers from cache instead of double-applying.
//
// Campaign mutations and estimator snapshots broadcast to every healthy
// replica in lockstep; a replica that misses one is marked unhealthy and
// re-warmed by Probe — epoch-bridging mutation replay plus the latest
// estimator snapshot — before rejoining.

package shard

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/obs"
)

// ErrPartitionUnavailable reports that every replica of one partition
// range failed an operation — the cluster cannot currently serve. The
// serve layer maps it to 503 with the degraded ranges in /healthz.
var ErrPartitionUnavailable = errors.New("shard: all replicas of partition range unavailable")

// ReplicaSetConfig shapes a ReplicaSet.
type ReplicaSetConfig struct {
	// Slot is the partition range's slot, for error text and metric
	// labels (defaults to what the replicas report).
	Slot int
	// FailThreshold is how many consecutive failures mark a replica
	// unhealthy (default 1). Unhealthy replicas are deprioritized, not
	// abandoned: an op that exhausts the healthy replicas still sweeps
	// them before declaring the range unavailable.
	FailThreshold int
	// Metrics, when non-nil, books failovers and per-replica health.
	Metrics *Metrics
	// Logf receives failover and revive messages (nil = silent).
	Logf func(format string, args ...any)
}

// ReplicaSet fronts R replicas of one partition range as a single Client.
// Safe for concurrent use under the same contract as Shard: distinct runs
// may proceed concurrently, one run's ops are sequential.
type ReplicaSet struct {
	replicas []Client
	slot     int
	thresh   int
	metrics  *Metrics
	logf     func(format string, args ...any)

	mutMu sync.Mutex // serializes mutation broadcasts (log order = epoch order)

	mu      sync.Mutex
	healthy []bool
	fails   []int
	runs    map[string]*replicaRun
	muts    []replicaMutation
	est     *SyncEstimatesRequest
}

// replicaRun is the op log that makes one run rebuildable on any replica.
type replicaRun struct {
	owner int // replica currently holding the run's coverage state
	start StartRequest
	seq   int64
	ops   []repOp
}

// repOp is one logged sequenced run op.
type repOp struct {
	kind   uint8
	commit CommitRequest
	credit CreditRequest
	grow   GrowRequest
}

// replicaMutation is one logged campaign mutation, kept so a revived
// replica can be walked forward to the current epoch.
type replicaMutation struct {
	add    *AddAdRequest
	remove *RemoveAdRequest
	epoch  uint64 // epoch after applying
}

// NewReplicaSet validates R replicas of one range and fronts them. Every
// reachable replica must agree on slot, cluster size, seed, fingerprints,
// epoch, and campaign; unreachable ones start unhealthy and may be revived
// later by Probe. At least one replica must be reachable. ctx bounds the
// validation probes.
func NewReplicaSet(ctx context.Context, replicas []Client, cfg ReplicaSetConfig) (*ReplicaSet, error) {
	if len(replicas) == 0 {
		return nil, errors.New("shard: replica set needs at least one replica")
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 1
	}
	r := &ReplicaSet{
		replicas: replicas,
		slot:     cfg.Slot,
		thresh:   cfg.FailThreshold,
		metrics:  cfg.Metrics,
		logf:     cfg.Logf,
		healthy:  make([]bool, len(replicas)),
		fails:    make([]int, len(replicas)),
		runs:     map[string]*replicaRun{},
	}
	var ref *ShardInfo
	for i, cl := range replicas {
		info, err := cl.Info(ctx)
		if err != nil {
			r.healthy[i] = false
			r.fails[i] = cfg.FailThreshold
			continue
		}
		if ref == nil {
			c := info
			ref = &c
			r.slot = info.Shard
		} else if err := replicaAgrees(*ref, info); err != nil {
			return nil, fmt.Errorf("shard: replica %d of range %d: %w", i, r.slot, err)
		}
		r.healthy[i] = true
	}
	if ref == nil {
		return nil, fmt.Errorf("shard: no replica of range %d reachable", cfg.Slot)
	}
	r.publishHealth()
	return r, nil
}

// replicaAgrees checks that two replicas serve the same range of the same
// cluster in the same state.
func replicaAgrees(ref, got ShardInfo) error {
	switch {
	case got.Shard != ref.Shard || got.NumShards != ref.NumShards:
		return fmt.Errorf("serves range %d/%d, set is %d/%d", got.Shard, got.NumShards, ref.Shard, ref.NumShards)
	case got.Seed != ref.Seed:
		return fmt.Errorf("seed %d diverges from %d", got.Seed, ref.Seed)
	case got.Fingerprint != ref.Fingerprint:
		return fmt.Errorf("instance fingerprint %#x diverges from %#x", got.Fingerprint, ref.Fingerprint)
	case got.Dataset != ref.Dataset:
		return fmt.Errorf("dataset %+v diverges from %+v", got.Dataset, ref.Dataset)
	case got.Epoch != ref.Epoch || got.NumAds != ref.NumAds || got.CampaignFingerprint != ref.CampaignFingerprint:
		return fmt.Errorf("campaign (epoch %d, %d ads, fingerprint %#x) diverges from (epoch %d, %d ads, %#x)",
			got.Epoch, got.NumAds, got.CampaignFingerprint, ref.Epoch, ref.NumAds, ref.CampaignFingerprint)
	}
	return nil
}

// NumReplicas returns R.
func (r *ReplicaSet) NumReplicas() int { return len(r.replicas) }

// Slot returns the partition range this set serves.
func (r *ReplicaSet) Slot() int { return r.slot }

// HealthyCount returns how many replicas are currently marked healthy.
func (r *ReplicaSet) HealthyCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, h := range r.healthy {
		if h {
			n++
		}
	}
	return n
}

// candidates returns replica indices in routing order: healthy ascending
// (index 0 is the preferred replica), then unhealthy ascending — a down
// replica is the last resort, never skipped outright, so the range only
// reports unavailable after every replica actually failed this op.
func (r *ReplicaSet) candidates() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.replicas))
	for i, h := range r.healthy {
		if h {
			out = append(out, i)
		}
	}
	for i, h := range r.healthy {
		if !h {
			out = append(out, i)
		}
	}
	return out
}

// markSuccess resets a replica's failure streak and restores it to
// healthy.
func (r *ReplicaSet) markSuccess(i int) {
	r.mu.Lock()
	changed := !r.healthy[i]
	r.fails[i] = 0
	r.healthy[i] = true
	r.mu.Unlock()
	if changed {
		r.publishHealth()
		if r.logf != nil {
			r.logf("shard: range %d replica %d back to healthy", r.slot, i)
		}
	}
}

// markFailure books one failure; crossing the threshold marks the replica
// unhealthy.
func (r *ReplicaSet) markFailure(i int, err error) {
	r.mu.Lock()
	r.fails[i]++
	changed := r.healthy[i] && r.fails[i] >= r.thresh
	if changed {
		r.healthy[i] = false
	}
	r.mu.Unlock()
	if changed {
		r.publishHealth()
		if r.logf != nil {
			r.logf("shard: range %d replica %d marked unhealthy: %v", r.slot, i, err)
		}
	}
}

// publishHealth refreshes the shard_replica_healthy gauge.
func (r *ReplicaSet) publishHealth() {
	if r.metrics == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, h := range r.healthy {
		v := 0.0
		if h {
			v = 1
		}
		r.metrics.replicaHealthy.With(strconv.Itoa(r.slot), strconv.Itoa(i)).Set(v)
	}
}

// notifyFailover books one failover on the range: metric, log line, and —
// when the request carries a span — a "failover" event that flags the
// whole trace for tail-retention (a request that changed replicas is
// always worth keeping).
func (r *ReplicaSet) notifyFailover(ctx context.Context, from, to int) {
	if r.metrics != nil {
		r.metrics.failovers.With(strconv.Itoa(r.slot)).Inc()
	}
	if r.logf != nil {
		r.logf("shard: range %d failed over from replica %d to %d", r.slot, from, to)
	}
	if span := obs.ContextSpan(ctx); span != nil {
		span.Event("failover",
			obs.Int("range", int64(r.slot)),
			obs.Int("from", int64(from)),
			obs.Int("to", int64(to)))
		span.Retain(obs.RetainFailover)
	}
}

// unavailable wraps the range's total failure.
func (r *ReplicaSet) unavailable(last error) error {
	return fmt.Errorf("%w: range %d: last error: %v", ErrPartitionUnavailable, r.slot, last)
}

// sweep runs fn against candidates in routing order until one succeeds.
// Terminal failures propagate immediately (the request is the problem, not
// the replica); other failures mark the replica and move on.
func (r *ReplicaSet) sweep(ctx context.Context, fn func(i int, cl Client) error) error {
	var lastErr error
	first := -1
	for _, i := range r.candidates() {
		if first < 0 {
			first = i
		}
		err := fn(i, r.replicas[i])
		if err == nil {
			r.markSuccess(i)
			if i != first {
				r.notifyFailover(ctx, first, i)
			}
			return nil
		}
		if Classify(err) == ClassTerminal {
			return err
		}
		r.markFailure(i, err)
		lastErr = err
	}
	return r.unavailable(lastErr)
}

// Info implements Client: the canonical view of the range, served by the
// first answering replica.
func (r *ReplicaSet) Info(ctx context.Context) (ShardInfo, error) {
	var out ShardInfo
	err := r.sweep(ctx, func(_ int, cl Client) error {
		var err error
		out, err = cl.Info(ctx)
		return err
	})
	return out, err
}

// Pilot implements Client. Pilots are stateless and deterministic — any
// replica answers identically (sampling accounting aside), growing its own
// sample lazily as needed.
func (r *ReplicaSet) Pilot(ctx context.Context, req PilotRequest) (PilotReply, error) {
	var out PilotReply
	err := r.sweep(ctx, func(_ int, cl Client) error {
		var err error
		out, err = cl.Pilot(ctx, req)
		return err
	})
	return out, err
}

// Ensure implements Client. Warm-up is best spread to every healthy
// replica — a failover target that presampled serves its first run
// without a cold sampling burst — but only the canonical (first
// answering) reply's accounting is reported.
func (r *ReplicaSet) Ensure(ctx context.Context, req EnsureRequest) (EnsureReply, error) {
	var out EnsureReply
	got := false
	var lastErr error
	for _, i := range r.candidates() {
		reply, err := r.replicas[i].Ensure(ctx, req)
		if err != nil {
			if Classify(err) == ClassTerminal {
				return EnsureReply{}, err
			}
			r.markFailure(i, err)
			lastErr = err
			continue
		}
		r.markSuccess(i)
		if !got {
			out, got = reply, true
		}
	}
	if !got {
		return EnsureReply{}, r.unavailable(lastErr)
	}
	return out, nil
}

// Start implements Client: it opens the run on one replica (the run's
// owner) and logs the request for failover replays.
func (r *ReplicaSet) Start(ctx context.Context, req StartRequest) (StartReply, error) {
	run := &replicaRun{start: req}
	var out StartReply
	err := r.sweep(ctx, func(i int, cl Client) error {
		reply, err := cl.Start(ctx, req)
		if err != nil {
			return err
		}
		out = reply
		run.owner = i
		return nil
	})
	if err != nil {
		return StartReply{}, err
	}
	r.mu.Lock()
	r.runs[req.RunID] = run
	r.mu.Unlock()
	return out, nil
}

// lookupRun resolves a run's op log.
func (r *ReplicaSet) lookupRun(runID string) (*replicaRun, error) {
	r.mu.Lock()
	run, ok := r.runs[runID]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRun, runID)
	}
	return run, nil
}

// applyOp issues one logged op against a client.
func applyOp(ctx context.Context, cl Client, op repOp) (CommitReply, GrowReply, error) {
	switch op.kind {
	case opCommit:
		cr, err := cl.Commit(ctx, op.commit)
		return cr, GrowReply{}, err
	case opCredit:
		cr, err := cl.Credit(ctx, op.credit)
		return cr, GrowReply{}, err
	default:
		gr, err := cl.Grow(ctx, op.grow)
		return CommitReply{}, gr, err
	}
}

// adopt rebuilds a run on replica i — End (clear any stale state), Start
// from the logged request, replay every logged op in order — and returns
// the final op's reply. The deterministic stream makes the rebuilt state
// byte-identical to the lost one, and the sequence guard makes any op the
// replica had already applied a cached no-op.
func (r *ReplicaSet) adopt(ctx context.Context, i int, run *replicaRun) (CommitReply, GrowReply, error) {
	cl := r.replicas[i]
	cl.End(ctx, run.start.RunID)
	if _, err := cl.Start(ctx, run.start); err != nil {
		return CommitReply{}, GrowReply{}, err
	}
	var cr CommitReply
	var gr GrowReply
	for _, op := range run.ops {
		var err error
		cr, gr, err = applyOp(ctx, cl, op)
		if err != nil {
			return CommitReply{}, GrowReply{}, err
		}
	}
	return cr, gr, nil
}

// runOp executes the run's latest logged op: fast path on the owner,
// failover by adoption anywhere else.
func (r *ReplicaSet) runOp(ctx context.Context, run *replicaRun) (CommitReply, GrowReply, error) {
	op := run.ops[len(run.ops)-1]
	owner := run.owner
	cr, gr, err := applyOp(ctx, r.replicas[owner], op)
	if err == nil {
		r.markSuccess(owner)
		return cr, gr, nil
	}
	if Classify(err) == ClassTerminal {
		return CommitReply{}, GrowReply{}, err
	}
	ownerRetryable := Classify(err) == ClassRetryable
	if ownerRetryable {
		// Connectivity-style failure (retries already exhausted below us):
		// the replica is suspect. Failover-class errors (unknown run, bad
		// seq) leave health alone — the replica is up, just out of sync,
		// and adoption below may land right back on it.
		r.markFailure(owner, err)
	}
	lastErr := err
	for _, i := range r.candidates() {
		if i == owner && ownerRetryable {
			continue
		}
		cr, gr, err := r.adopt(ctx, i, run)
		if err == nil {
			r.markSuccess(i)
			if i != owner {
				r.notifyFailover(ctx, owner, i)
				run.owner = i
			}
			return cr, gr, nil
		}
		if Classify(err) == ClassTerminal {
			return CommitReply{}, GrowReply{}, err
		}
		r.markFailure(i, err)
		lastErr = err
	}
	return CommitReply{}, GrowReply{}, r.unavailable(lastErr)
}

// Commit implements Client: the op is sequenced, logged, and executed with
// failover.
func (r *ReplicaSet) Commit(ctx context.Context, req CommitRequest) (CommitReply, error) {
	run, err := r.lookupRun(req.RunID)
	if err != nil {
		return CommitReply{}, err
	}
	run.seq++
	req.Seq = run.seq
	run.ops = append(run.ops, repOp{kind: opCommit, commit: req})
	cr, _, err := r.runOp(ctx, run)
	return cr, err
}

// Credit implements Client.
func (r *ReplicaSet) Credit(ctx context.Context, req CreditRequest) (CommitReply, error) {
	run, err := r.lookupRun(req.RunID)
	if err != nil {
		return CommitReply{}, err
	}
	run.seq++
	req.Seq = run.seq
	run.ops = append(run.ops, repOp{kind: opCredit, credit: req})
	cr, _, err := r.runOp(ctx, run)
	return cr, err
}

// Grow implements Client.
func (r *ReplicaSet) Grow(ctx context.Context, req GrowRequest) (GrowReply, error) {
	run, err := r.lookupRun(req.RunID)
	if err != nil {
		return GrowReply{}, err
	}
	run.seq++
	req.Seq = run.seq
	run.ops = append(run.ops, repOp{kind: opGrow, grow: req})
	_, gr, err := r.runOp(ctx, run)
	return gr, err
}

// Gains implements Client: read-only, so it routes to the owner and, on
// failure, adopts the run elsewhere before reading.
func (r *ReplicaSet) Gains(ctx context.Context, req GainsRequest) (GainsReply, error) {
	run, err := r.lookupRun(req.RunID)
	if err != nil {
		return GainsReply{}, err
	}
	out, err := r.replicas[run.owner].Gains(ctx, req)
	if err == nil {
		r.markSuccess(run.owner)
		return out, nil
	}
	if Classify(err) == ClassTerminal {
		return GainsReply{}, err
	}
	owner := run.owner
	ownerRetryable := Classify(err) == ClassRetryable
	if ownerRetryable {
		r.markFailure(owner, err)
	}
	lastErr := err
	for _, i := range r.candidates() {
		if i == owner && ownerRetryable {
			continue
		}
		if _, _, err := r.adopt(ctx, i, run); err != nil {
			if Classify(err) == ClassTerminal {
				return GainsReply{}, err
			}
			r.markFailure(i, err)
			lastErr = err
			continue
		}
		out, err := r.replicas[i].Gains(ctx, req)
		if err != nil {
			if Classify(err) == ClassTerminal {
				return GainsReply{}, err
			}
			r.markFailure(i, err)
			lastErr = err
			continue
		}
		r.markSuccess(i)
		if i != owner {
			r.notifyFailover(ctx, owner, i)
			run.owner = i
		}
		return out, nil
	}
	return GainsReply{}, r.unavailable(lastErr)
}

// End implements Client: the op log is dropped and the run closed on every
// healthy replica (a dead replica's copy is reaped by the shard's own run
// TTL — waiting out its timeouts here would stall the caller).
func (r *ReplicaSet) End(ctx context.Context, runID string) error {
	r.mu.Lock()
	delete(r.runs, runID)
	healthy := append([]bool(nil), r.healthy...)
	r.mu.Unlock()
	var lastErr error
	ok := false
	for i, cl := range r.replicas {
		if !healthy[i] {
			continue
		}
		if err := cl.End(ctx, runID); err != nil {
			lastErr = err
		} else {
			ok = true
		}
	}
	if ok || lastErr == nil {
		return nil
	}
	return lastErr
}

// broadcastMutation applies one campaign mutation to every healthy replica
// in lockstep and logs it for revives. Replicas that fail (or disagree
// with the first successful reply) are marked unhealthy and walked forward
// by Probe; the mutation fails only when no replica accepted it.
func (r *ReplicaSet) broadcastMutation(ctx context.Context, mut replicaMutation, call func(cl Client) (MutateReply, error)) (MutateReply, error) {
	r.mutMu.Lock()
	defer r.mutMu.Unlock()
	var reply MutateReply
	applied := false
	var lastErr error
	for _, i := range r.candidates() {
		rep, err := call(r.replicas[i])
		if err != nil {
			r.markFailure(i, err)
			lastErr = err
			continue
		}
		if !applied {
			reply, applied = rep, true
			r.markSuccess(i)
			continue
		}
		if rep != reply {
			r.markFailure(i, fmt.Errorf("mutation reply %+v diverges from %+v", rep, reply))
			continue
		}
		r.markSuccess(i)
	}
	if !applied {
		if lastErr != nil && Classify(lastErr) == ClassTerminal {
			return MutateReply{}, lastErr
		}
		return MutateReply{}, r.unavailable(lastErr)
	}
	mut.epoch = reply.Epoch
	r.mu.Lock()
	r.muts = append(r.muts, mut)
	r.mu.Unlock()
	return reply, nil
}

// AddAd implements Client.
func (r *ReplicaSet) AddAd(ctx context.Context, req AddAdRequest) (MutateReply, error) {
	return r.broadcastMutation(ctx, replicaMutation{add: &req}, func(cl Client) (MutateReply, error) {
		return cl.AddAd(ctx, req)
	})
}

// RemoveAd implements Client.
func (r *ReplicaSet) RemoveAd(ctx context.Context, req RemoveAdRequest) (MutateReply, error) {
	return r.broadcastMutation(ctx, replicaMutation{remove: &req}, func(cl Client) (MutateReply, error) {
		return cl.RemoveAd(ctx, req)
	})
}

// SyncEstimates implements Client: the snapshot broadcasts to every
// healthy replica and is kept for revives. Sync succeeds if any replica
// accepted — the estimator is monotone (shards ignore stale Events), so a
// replica that missed a snapshot heals on the next broadcast or revive.
func (r *ReplicaSet) SyncEstimates(ctx context.Context, req SyncEstimatesRequest) error {
	r.mu.Lock()
	r.est = &req
	healthy := append([]bool(nil), r.healthy...)
	r.mu.Unlock()
	var lastErr error
	ok := false
	for i, cl := range r.replicas {
		if !healthy[i] {
			continue
		}
		if err := cl.SyncEstimates(ctx, req); err != nil {
			r.markFailure(i, err)
			lastErr = err
		} else {
			r.markSuccess(i)
			ok = true
		}
	}
	if ok {
		return nil
	}
	return r.unavailable(lastErr)
}

// ReplicaStatus is one replica's health line, as reported by Probe.
type ReplicaStatus struct {
	// Replica is the index within the set.
	Replica int
	// Healthy reports whether the replica is in the routing rotation.
	Healthy bool
	// Reachable reports whether this probe's Info succeeded.
	Reachable bool
	// Info is the probe result (zero when unreachable).
	Info ShardInfo
	// Err is the probe failure, if any.
	Err error
}

// Probe checks every replica's health with one Info round and revives
// unhealthy replicas that check out: the replica must be the same process
// identity (range, seed, instance fingerprint), is walked forward through
// any campaign mutations it missed, gets the latest estimator snapshot,
// and must then match a healthy reference exactly. Call it periodically
// (the serve layer's prober) or on demand (/healthz).
func (r *ReplicaSet) Probe(ctx context.Context) []ReplicaStatus {
	out := make([]ReplicaStatus, len(r.replicas))
	infos := make([]*ShardInfo, len(r.replicas))
	for i, cl := range r.replicas {
		info, err := cl.Info(ctx)
		out[i] = ReplicaStatus{Replica: i, Reachable: err == nil, Err: err}
		if err == nil {
			out[i].Info = info
			infos[i] = &info
		}
	}
	// Reference: the first reachable replica that is currently healthy.
	r.mu.Lock()
	healthy := append([]bool(nil), r.healthy...)
	r.mu.Unlock()
	var ref *ShardInfo
	for i := range r.replicas {
		if healthy[i] && infos[i] != nil {
			ref = infos[i]
			break
		}
	}
	for i := range r.replicas {
		switch {
		case infos[i] == nil:
			r.markFailure(i, out[i].Err)
		case healthy[i]:
			r.markSuccess(i)
		case ref == nil:
			// No healthy reference to validate against; leave as is.
		default:
			if err := r.revive(ctx, i, *infos[i], *ref); err != nil {
				out[i].Err = err
				if r.logf != nil {
					r.logf("shard: range %d replica %d not revivable yet: %v", r.slot, i, err)
				}
			}
		}
	}
	r.mu.Lock()
	for i := range out {
		out[i].Healthy = r.healthy[i]
	}
	r.mu.Unlock()
	return out
}

// revive walks an unhealthy-but-reachable replica forward to the
// reference state and returns it to the rotation.
func (r *ReplicaSet) revive(ctx context.Context, i int, got, ref ShardInfo) error {
	if got.Shard != ref.Shard || got.NumShards != ref.NumShards || got.Seed != ref.Seed || got.Fingerprint != ref.Fingerprint {
		return fmt.Errorf("shard: replica %d is not an instance of range %d (range %d/%d seed %d fp %#x, want %d/%d seed %d fp %#x)",
			i, r.slot, got.Shard, got.NumShards, got.Seed, got.Fingerprint, ref.Shard, ref.NumShards, ref.Seed, ref.Fingerprint)
	}
	cl := r.replicas[i]
	if got.Epoch < ref.Epoch {
		r.mu.Lock()
		muts := append([]replicaMutation(nil), r.muts...)
		r.mu.Unlock()
		for _, mut := range muts {
			if mut.epoch <= got.Epoch {
				continue
			}
			var err error
			switch {
			case mut.add != nil:
				_, err = cl.AddAd(ctx, *mut.add)
			case mut.remove != nil:
				_, err = cl.RemoveAd(ctx, *mut.remove)
			}
			if err != nil {
				return fmt.Errorf("shard: replaying mutation to epoch %d on replica %d: %w", mut.epoch, i, err)
			}
		}
		var err error
		if got, err = cl.Info(ctx); err != nil {
			return err
		}
	}
	if err := replicaAgrees(ref, got); err != nil {
		return fmt.Errorf("shard: replica %d still diverges after replay: %w", i, err)
	}
	r.mu.Lock()
	est := r.est
	r.mu.Unlock()
	if est != nil {
		if err := cl.SyncEstimates(ctx, *est); err != nil {
			return fmt.Errorf("shard: re-syncing estimator on replica %d: %w", i, err)
		}
	}
	r.markSuccess(i)
	if r.logf != nil {
		r.logf("shard: range %d replica %d revived at epoch %d", r.slot, i, got.Epoch)
	}
	return nil
}

// Interface compliance.
var _ Client = (*ReplicaSet)(nil)
