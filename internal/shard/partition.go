package shard

import (
	"fmt"

	"repro/internal/rrset"
)

// Partitioner splits the deterministic RR block stream into K disjoint
// shard slices. Blocks are assigned round-robin (block b belongs to shard
// b mod K — see rrset.StreamPartition), which keeps every shard's share of
// a growing stream balanced at every prefix length; the union of the K
// slices is byte-identical to the single-node stream at any θ.
type Partitioner struct {
	k int
}

// NewPartitioner creates a K-way partitioner (K ≥ 1; K = 1 is the
// single-node identity split).
func NewPartitioner(k int) (Partitioner, error) {
	if k < 1 {
		return Partitioner{}, fmt.Errorf("shard: partitioner needs K ≥ 1, got %d", k)
	}
	return Partitioner{k: k}, nil
}

// NumShards returns K.
func (p Partitioner) NumShards() int { return p.k }

// Range returns shard k's slice of the stream — the partition a
// BuildShardIndex shard samples with.
func (p Partitioner) Range(k int) rrset.StreamPartition {
	return rrset.StreamPartition{NumShards: p.k, Shard: k}
}
