package shard

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/bandit"
)

// snapshotAt builds a bandit snapshot with the given event total, plus
// one observed cell so Restore has something to validate.
func snapshotAt(t *testing.T, events int64) bandit.State {
	t.Helper()
	est, err := bandit.New(bandit.PolicyUCB, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < events; i++ {
		if err := est.Observe(bandit.Event{Ad: "a0", Impressions: 10, Clicks: 4}); err != nil {
			t.Fatal(err)
		}
	}
	return est.Snapshot()
}

// TestSyncEstimatesTransports pins transport equivalence for estimator
// sync: the same snapshot pushed through a LocalClient and an HTTPClient
// is stored byte-identically on both shards — the payload is integer
// counts, so JSON cannot perturb it.
func TestSyncEstimatesTransports(t *testing.T) {
	inst := testInstance()
	const seed = 42

	p, err := NewPartitioner(2)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*Shard, 2)
	for i := range shards {
		s, err := NewShard(inst, 0, seed, p.Range(i))
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = s
	}
	ts := httptest.NewServer(shards[1].Handler())
	defer ts.Close()
	clients := []Client{LocalClient{S: shards[0]}, NewHTTPClient(ts.URL)}

	st := snapshotAt(t, 3)
	ctx := context.Background()
	for i, cl := range clients {
		if err := cl.SyncEstimates(ctx, SyncEstimatesRequest{State: st}); err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	got0, ok0 := shards[0].Estimates()
	got1, ok1 := shards[1].Estimates()
	if !ok0 || !ok1 {
		t.Fatalf("estimates missing after sync: ok0=%v ok1=%v", ok0, ok1)
	}
	if !reflect.DeepEqual(got0, st) {
		t.Errorf("local transport stored %+v, want %+v", got0, st)
	}
	if !reflect.DeepEqual(got0, got1) {
		t.Errorf("transports diverge: local %+v, http %+v", got0, got1)
	}
}

// TestSyncEstimatesMonotoneGuard pins the out-of-order rebroadcast
// defence: a snapshot whose event total does not exceed the stored one
// is acknowledged but ignored, so delayed retries cannot roll a shard's
// estimate table backwards.
func TestSyncEstimatesMonotoneGuard(t *testing.T) {
	inst := testInstance()
	p1, err := NewPartitioner(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewShard(inst, 0, 42, p1.Range(0))
	if err != nil {
		t.Fatal(err)
	}
	newer := snapshotAt(t, 5)
	older := snapshotAt(t, 2)

	if err := s.SyncEstimates(SyncEstimatesRequest{State: newer}); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncEstimates(SyncEstimatesRequest{State: older}); err != nil {
		t.Fatalf("stale snapshot should be ignored, not rejected: %v", err)
	}
	got, ok := s.Estimates()
	if !ok {
		t.Fatal("estimates missing")
	}
	if got.Events != newer.Events {
		t.Errorf("stale rebroadcast rolled back events: got %d, want %d", got.Events, newer.Events)
	}

	// Equal event totals are also ignored (idempotent rebroadcast).
	if err := s.SyncEstimates(SyncEstimatesRequest{State: newer}); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Estimates(); got.Events != newer.Events {
		t.Errorf("events after idempotent rebroadcast: got %d, want %d", got.Events, newer.Events)
	}
}

// TestSyncEstimatesRejectsMalformed pins validation: a snapshot that
// bandit.Restore would refuse is rejected without touching stored state.
func TestSyncEstimatesRejectsMalformed(t *testing.T) {
	inst := testInstance()
	p1, err := NewPartitioner(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewShard(inst, 0, 42, p1.Range(0))
	if err != nil {
		t.Fatal(err)
	}
	good := snapshotAt(t, 1)
	if err := s.SyncEstimates(SyncEstimatesRequest{State: good}); err != nil {
		t.Fatal(err)
	}

	bad := snapshotAt(t, 4)
	bad.Policy = "nope"
	if err := s.SyncEstimates(SyncEstimatesRequest{State: bad}); err == nil {
		t.Error("malformed snapshot accepted")
	}
	got, ok := s.Estimates()
	if !ok || got.Events != good.Events {
		t.Errorf("stored state perturbed by rejected snapshot: ok=%v events=%d", ok, got.Events)
	}
}

// TestCoordinatorSyncEstimatesBroadcast pins the coordinator fan-out:
// one SyncEstimates call lands the snapshot on every shard.
func TestCoordinatorSyncEstimatesBroadcast(t *testing.T) {
	inst := testInstance()
	const k = 3
	coord, shards, err := NewLocalCluster(inst, 0, 42, k, Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := snapshotAt(t, 2)
	if err := coord.SyncEstimates(context.Background(), st); err != nil {
		t.Fatal(err)
	}
	for i, s := range shards {
		got, ok := s.Estimates()
		if !ok {
			t.Fatalf("shard %d missing estimates", i)
		}
		if !reflect.DeepEqual(got, st) {
			t.Errorf("shard %d stored %+v, want %+v", i, got, st)
		}
	}
}
