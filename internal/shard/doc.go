// Package shard distributes the RR-set index and its selection loop across
// K processes — the sharding step of the ROADMAP's production north star.
//
// RR sets are i.i.d. samples, so both halves of TIRM decompose over a
// disjoint partition of the sample: a node's residual coverage is the sum
// of its per-shard coverages, and committing a seed retires per-shard sets
// whose effects sum to the global effect. The package exploits exactly
// that decomposition:
//
//   - A Partitioner splits the deterministic block stream round-robin into
//     K disjoint slices (rrset.StreamPartition); shard k samples exactly
//     its blocks, and the union across shards is byte-identical to the
//     single-node stream.
//   - A Shard owns a per-range core.Index epoch — one slice of every ad's
//     sample — and answers coverage / marginal-gain / commit RPCs over an
//     in-process transport (LocalClient) or HTTP/JSON (HTTPClient, served
//     by Shard.Handler via cmd/adshard).
//   - A Coordinator runs distributed CELF: it merges per-shard pilot
//     widths into the global pilot (sizing θ exactly as a single node
//     would), scatter-gathers per-shard coverage into aggregate counter
//     collections, scans candidates and picks each round's winner with the
//     existing tie-break order, and broadcasts every commit, applying the
//     gathered integer deltas. Campaign mutations (AddAd/RemoveAd) and the
//     epoch counter broadcast the same way, in lockstep across the
//     cluster.
//
// Every quantity that crosses the wire is an integer (set counts, widths,
// coverage counts, sparse decrement vectors); all floating-point
// arithmetic — KPT, marginal gains, regret drops — happens on the
// coordinator. Together with the counter collection reusing the exact
// candidate-heap code of rrset.Collection, that makes the coordinator's
// allocation byte-identical to core.AllocateFromIndex on a single-node
// index at any K and over either transport (pinned by the golden tests).
// The one unsupported mode is SoftCoverage: its weighted masses are float
// sums in set order, which do not re-associate exactly across shards.
//
// See DESIGN.md §7 for the partitioning invariant, the determinism
// argument, and the failure modes.
package shard
