// HTTP/JSON transport for the shard protocol. Every payload field is an
// integer (see protocol.go), so JSON round-trips are exact and a
// coordinator over HTTP produces bit-identical allocations to one over the
// in-process transport — pinned by the golden tests. Sentinel errors map
// onto status codes (409 stale epoch, 404 unknown run, 412 bad sequence,
// 503 draining) and back, and every other non-200 decodes into a typed
// RPCError carrying the status, so retry classification is
// transport-blind.

package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// Handler returns the shard daemon's HTTP routes (mounted by cmd/adshard):
//
//	GET  /healthz       — liveness
//	GET  /shard/info    — ShardInfo
//	POST /shard/pilot   — PilotRequest  → PilotReply
//	POST /shard/ensure  — EnsureRequest → EnsureReply
//	POST /shard/start   — StartRequest  → StartReply
//	POST /shard/commit  — CommitRequest → CommitReply
//	POST /shard/credit  — CreditRequest → CommitReply
//	POST /shard/grow    — GrowRequest   → GrowReply
//	POST /shard/gains   — GainsRequest  → GainsReply
//	POST /shard/end     — {"runId": …}  → {}
//	POST /shard/ads     — AddAdRequest  → MutateReply
//	POST /shard/remove  — RemoveAdRequest → MutateReply
//	POST /shard/estimates — SyncEstimatesRequest → {}
//	POST /shard/drain   — {} (refuse new runs from now on)
//	GET  /metrics       — Prometheus text exposition
//
// Every route is wrapped in the obs middleware: per-endpoint request
// metrics, X-Trace-Id extraction/echo (so a coordinator's trace id ties
// its RPC fan-out together in the logs of every daemon), and — when
// Shard.Logf is set — one structured key=value log line per request.
func (s *Shard) Handler() http.Handler {
	reg, httpMetrics := s.observability()
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/traces", s.obsTracer.Handler())
	mux.Handle("/debug/traces/", s.obsTracer.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		shardWriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/shard/info", func(w http.ResponseWriter, r *http.Request) {
		shardWriteJSON(w, http.StatusOK, s.Info())
	})
	mux.HandleFunc("/shard/pilot", rpc(func(req PilotRequest) (PilotReply, error) { return s.Pilot(req) }))
	mux.HandleFunc("/shard/ensure", rpc(func(req EnsureRequest) (EnsureReply, error) { return s.Ensure(req) }))
	mux.HandleFunc("/shard/start", rpc(func(req StartRequest) (StartReply, error) { return s.Start(req) }))
	mux.HandleFunc("/shard/commit", rpc(func(req CommitRequest) (CommitReply, error) { return s.Commit(req) }))
	mux.HandleFunc("/shard/credit", rpc(func(req CreditRequest) (CommitReply, error) { return s.Credit(req) }))
	mux.HandleFunc("/shard/grow", rpc(func(req GrowRequest) (GrowReply, error) { return s.Grow(req) }))
	mux.HandleFunc("/shard/gains", rpc(func(req GainsRequest) (GainsReply, error) { return s.Gains(req) }))
	mux.HandleFunc("/shard/end", rpc(func(req endRequest) (struct{}, error) {
		s.End(req.RunID)
		return struct{}{}, nil
	}))
	mux.HandleFunc("/shard/ads", rpc(func(req AddAdRequest) (MutateReply, error) { return s.AddAd(req) }))
	mux.HandleFunc("/shard/remove", rpc(func(req RemoveAdRequest) (MutateReply, error) { return s.RemoveAd(req) }))
	mux.HandleFunc("/shard/estimates", rpc(func(req SyncEstimatesRequest) (struct{}, error) {
		return struct{}{}, s.SyncEstimates(req)
	}))
	mux.HandleFunc("/shard/drain", rpc(func(req struct{}) (struct{}, error) {
		s.Drain()
		return struct{}{}, nil
	}))
	return obs.Instrument(mux, httpMetrics, obs.InstrumentOptions{
		Component: "adshard",
		Logf:      s.Logf,
		// RPC routes all share the "shard" first path segment; label by the
		// full (bounded) route so per-operation latency stays visible.
		Endpoint: shardEndpoint,
		Tracer:   s.obsTracer,
	})
}

// shardEndpoint maps a daemon route onto its metric label: the full path
// with slashes flattened ("/shard/commit" → "shard_commit"). The route set
// is fixed by the mux, so cardinality is bounded.
func shardEndpoint(r *http.Request) string {
	p := strings.Trim(r.URL.Path, "/")
	if p == "" {
		return "root"
	}
	return strings.ReplaceAll(p, "/", "_")
}

// endRequest is the wire form of End.
type endRequest struct {
	// RunID names the run to close.
	RunID string `json:"runId"`
}

// shardErrorBody is the wire form of an RPC error.
type shardErrorBody struct {
	// Error is the message; sentinel identity travels in the status code.
	Error string `json:"error"`
}

// statusOf maps sentinel errors onto HTTP status codes.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrStaleEpoch):
		return http.StatusConflict
	case errors.Is(err, ErrUnknownRun):
		return http.StatusNotFound
	case errors.Is(err, ErrBadSeq):
		return http.StatusPreconditionFailed
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// RPCError is a non-sentinel RPC failure with its HTTP status preserved,
// so the retry layer can classify what the sentinels don't cover: 5xx
// (the shard or a proxy in front of it failed — retryable) versus 4xx
// (the request itself is wrong — terminal).
type RPCError struct {
	// Status is the HTTP status code the shard answered with.
	Status int
	// Msg is the error body.
	Msg string
}

// Error implements error.
func (e *RPCError) Error() string {
	return fmt.Sprintf("shard: rpc failed (%d): %s", e.Status, e.Msg)
}

// errOf is statusOf's inverse on the client side.
func errOf(status int, msg string) error {
	switch status {
	case http.StatusConflict:
		return fmt.Errorf("%w: %s", ErrStaleEpoch, msg)
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", ErrUnknownRun, msg)
	case http.StatusPreconditionFailed:
		return fmt.Errorf("%w: %s", ErrBadSeq, msg)
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w: %s", ErrDraining, msg)
	default:
		return &RPCError{Status: status, Msg: msg}
	}
}

// rpc adapts one typed shard operation into a POST JSON handler.
func rpc[Req, Reply any](fn func(Req) (Reply, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			shardWriteJSON(w, http.StatusMethodNotAllowed, shardErrorBody{Error: "use POST"})
			return
		}
		var req Req
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
		if err := dec.Decode(&req); err != nil {
			shardWriteJSON(w, http.StatusBadRequest, shardErrorBody{Error: fmt.Sprintf("bad request body: %v", err)})
			return
		}
		reply, err := fn(req)
		if err != nil {
			shardWriteJSON(w, statusOf(err), shardErrorBody{Error: err.Error()})
			return
		}
		shardWriteJSON(w, http.StatusOK, reply)
	}
}

func shardWriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// HTTPClient speaks the shard protocol to a remote shard daemon.
type HTTPClient struct {
	base string
	hc   *http.Client

	// CallTimeout, when > 0, bounds each RPC that arrives without a
	// context deadline of its own. A caller-supplied deadline always wins
	// (the retry layer sets per-attempt, per-op deadlines), and Drain is
	// exempt — draining a loaded shard may legitimately take long. It
	// replaces the old flat 5-minute http.Client timeout, which capped
	// every call including ones whose context asked for longer.
	CallTimeout time.Duration
}

// NewHTTPClient creates a client for a shard daemon at addr
// ("host:port" or a full http:// base URL). RPCs are unbounded unless the
// caller's context carries a deadline or CallTimeout is set.
func NewHTTPClient(addr string) *HTTPClient {
	if !strings.HasPrefix(addr, "http://") && !strings.HasPrefix(addr, "https://") {
		addr = "http://" + addr
	}
	return &HTTPClient{
		base: strings.TrimRight(addr, "/"),
		hc:   &http.Client{},
	}
}

// withDeadline applies CallTimeout when ctx has no deadline of its own.
func (c *HTTPClient) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.CallTimeout <= 0 {
		return ctx, func() {}
	}
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.CallTimeout)
}

// call POSTs one JSON request and decodes the reply into out, under the
// default deadline policy.
func (c *HTTPClient) call(ctx context.Context, path string, in, out any) error {
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	return c.post(ctx, path, in, out)
}

// post POSTs one JSON request and decodes the reply into out.
func (c *HTTPClient) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	obs.Inject(ctx, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb shardErrorBody
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 16<<10))
		if json.Unmarshal(msg, &eb) == nil && eb.Error != "" {
			return errOf(resp.StatusCode, eb.Error)
		}
		return errOf(resp.StatusCode, string(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Info implements Client.
func (c *HTTPClient) Info(ctx context.Context) (ShardInfo, error) {
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/shard/info", nil)
	if err != nil {
		return ShardInfo{}, err
	}
	obs.Inject(ctx, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return ShardInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 16<<10))
		return ShardInfo{}, errOf(resp.StatusCode, string(msg))
	}
	var info ShardInfo
	return info, json.NewDecoder(resp.Body).Decode(&info)
}

// Pilot implements Client.
func (c *HTTPClient) Pilot(ctx context.Context, req PilotRequest) (PilotReply, error) {
	var out PilotReply
	return out, c.call(ctx, "/shard/pilot", req, &out)
}

// Ensure implements Client.
func (c *HTTPClient) Ensure(ctx context.Context, req EnsureRequest) (EnsureReply, error) {
	var out EnsureReply
	return out, c.call(ctx, "/shard/ensure", req, &out)
}

// Start implements Client.
func (c *HTTPClient) Start(ctx context.Context, req StartRequest) (StartReply, error) {
	var out StartReply
	return out, c.call(ctx, "/shard/start", req, &out)
}

// Commit implements Client.
func (c *HTTPClient) Commit(ctx context.Context, req CommitRequest) (CommitReply, error) {
	var out CommitReply
	return out, c.call(ctx, "/shard/commit", req, &out)
}

// Credit implements Client.
func (c *HTTPClient) Credit(ctx context.Context, req CreditRequest) (CommitReply, error) {
	var out CommitReply
	return out, c.call(ctx, "/shard/credit", req, &out)
}

// Grow implements Client.
func (c *HTTPClient) Grow(ctx context.Context, req GrowRequest) (GrowReply, error) {
	var out GrowReply
	return out, c.call(ctx, "/shard/grow", req, &out)
}

// Gains implements Client.
func (c *HTTPClient) Gains(ctx context.Context, req GainsRequest) (GainsReply, error) {
	var out GainsReply
	return out, c.call(ctx, "/shard/gains", req, &out)
}

// End implements Client.
func (c *HTTPClient) End(ctx context.Context, runID string) error {
	var out struct{}
	return c.call(ctx, "/shard/end", endRequest{RunID: runID}, &out)
}

// AddAd implements Client.
func (c *HTTPClient) AddAd(ctx context.Context, req AddAdRequest) (MutateReply, error) {
	var out MutateReply
	return out, c.call(ctx, "/shard/ads", req, &out)
}

// RemoveAd implements Client.
func (c *HTTPClient) RemoveAd(ctx context.Context, req RemoveAdRequest) (MutateReply, error) {
	var out MutateReply
	return out, c.call(ctx, "/shard/remove", req, &out)
}

// SyncEstimates implements Client.
func (c *HTTPClient) SyncEstimates(ctx context.Context, req SyncEstimatesRequest) error {
	var out struct{}
	return c.call(ctx, "/shard/estimates", req, &out)
}

// Drain asks the daemon to refuse new runs (not part of the coordinator's
// Client surface — an operator action). Drain ignores CallTimeout — it is
// bounded only by the caller's context, since draining a loaded shard may
// take longer than any per-RPC deadline.
func (c *HTTPClient) Drain(ctx context.Context) error {
	var out struct{}
	return c.post(ctx, "/shard/drain", struct{}{}, &out)
}

// Interface compliance.
var (
	_ Client = LocalClient{}
	_ Client = (*HTTPClient)(nil)
)
