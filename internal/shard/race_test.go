package shard

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestCoordinatorConcurrentAllocate exercises the coordinator under
// concurrent allocations interleaved with campaign mutations (run with
// -race in CI): every successful allocation must be internally consistent,
// and races with mutations must surface as clean core.ErrStaleEpoch
// failures, never as drift or corruption.
func TestCoordinatorConcurrentAllocate(t *testing.T) {
	inst := testInstance()
	opts := testOpts()
	ctx := context.Background()
	coord, _, err := NewLocalCluster(inst, 8, 3, 2, Config{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Warm(ctx, opts); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := coord.Allocate(ctx, core.Request{Opts: opts}); err != nil &&
					!errors.Is(err, core.ErrStaleEpoch) {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := coord.AddAdBase(ctx, 8, opts); err != nil {
			errc <- err
			return
		}
		if err := coord.RemoveAd(ctx, 0); err != nil {
			errc <- err
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// After the dust settles, the cluster must still agree with a fresh
	// single-node index over the same mutation history.
	epoch, ci := coord.EpochInst()
	if epoch != 3 {
		t.Fatalf("epoch %d after two mutations, want 3", epoch)
	}
	res, err := coord.Allocate(ctx, core.Request{Opts: opts, Epoch: epoch})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alloc.Seeds) != len(ci.Ads) {
		t.Fatalf("allocation covers %d ads, campaign has %d", len(res.Alloc.Seeds), len(ci.Ads))
	}
}
