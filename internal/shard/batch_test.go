package shard

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/rrset"
)

// TestShardedKernelGolden pins cross-kernel determinism through the
// distributed path: for K ∈ {1, 4}, forcing the sparse or bitset kernel on
// every shard's local collections (or leaving auto-selection on) must
// reproduce the single-node allocation byte for byte — kernels change only
// local sweep cost, and the protocol's integers are kernel-independent.
func TestShardedKernelGolden(t *testing.T) {
	inst := testInstance()
	opts := testOpts()
	const seed = 42
	ctx := context.Background()

	idx, err := core.BuildIndex(inst, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.AllocateFromIndex(idx, core.Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{1, 4} {
		coord, _, err := NewLocalCluster(inst, 0, seed, k, Config{Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.Warm(ctx, opts); err != nil {
			t.Fatal(err)
		}
		for _, kernel := range []string{"sparse", "bitset", "auto", ""} {
			got, err := coord.Allocate(ctx, core.Request{Opts: opts, Kernel: kernel})
			if err != nil {
				t.Fatalf("K=%d kernel=%q: %v", k, kernel, err)
			}
			mustEqualResults(t, "kernel "+kernel, want, got)
			var total int
			for _, c := range got.KernelCounts {
				total += c
			}
			if total != len(inst.Ads)*k {
				t.Errorf("K=%d kernel=%q: KernelCounts sums to %d, want %d (ads×K)", k, kernel, total, len(inst.Ads)*k)
			}
			switch kernel {
			case "bitset":
				if got.KernelCounts[rrset.KernelBitset] != len(inst.Ads)*k {
					t.Errorf("K=%d forced bitset: KernelCounts = %v", k, got.KernelCounts)
				}
			case "sparse":
				if got.KernelCounts[rrset.KernelSparse] != len(inst.Ads)*k {
					t.Errorf("K=%d forced sparse: KernelCounts = %v", k, got.KernelCounts)
				}
			}
		}
		if _, err := coord.Allocate(ctx, core.Request{Opts: opts, Kernel: "no-such"}); err == nil {
			t.Errorf("K=%d: unknown kernel name accepted", k)
		}
	}
}

// TestShardedBatchGolden pins the distributed batch contract at K ∈ {1, 4}:
// every item of a mixed batch must return exactly what the sequential
// single-node AllocateFromIndex returns for the same request, bad items
// fail alone, and the whole batch observes one epoch.
func TestShardedBatchGolden(t *testing.T) {
	inst := testInstance()
	opts := testOpts()
	const seed = 42
	ctx := context.Background()

	idx, err := core.BuildIndex(inst, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	lambda := 0.25
	reqs := []core.Request{
		{Opts: opts},
		{Opts: opts, Kernel: "bitset"},
		{Opts: opts, Ads: []int{0, 2, 4, 6, 8}},
		{Opts: opts, Kernel: "no-such-kernel"}, // must fail alone
		{Opts: opts, Budgets: []float64{9, 8, 7, 6, 5, 9, 8, 7, 6, 5}, Lambda: &lambda},
	}
	want := make([]core.BatchResult, len(reqs))
	for i := range reqs {
		want[i].Res, want[i].Err = core.AllocateFromIndex(idx, reqs[i])
	}

	for _, k := range []int{1, 4} {
		coord, _, err := NewLocalCluster(inst, 0, seed, k, Config{Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.Warm(ctx, opts); err != nil {
			t.Fatal(err)
		}
		got := coord.AllocateBatch(ctx, reqs)
		if len(got) != len(reqs) {
			t.Fatalf("K=%d: batch returned %d results for %d requests", k, len(got), len(reqs))
		}
		for i := range got {
			if (got[i].Err != nil) != (want[i].Err != nil) {
				t.Fatalf("K=%d item %d: batch err %v vs single-node err %v", k, i, got[i].Err, want[i].Err)
			}
			if got[i].Err != nil {
				continue
			}
			mustEqualResults(t, "batch item", want[i].Res, got[i].Res)
		}
		if got[3].Err == nil {
			t.Errorf("K=%d: bad request in slot 3 did not fail", k)
		}
		if out := coord.AllocateBatch(ctx, nil); len(out) != 0 {
			t.Errorf("K=%d: empty batch returned %d results", k, len(out))
		}
	}
}

// TestShardedBatchStaleEpoch: an item pinned to a bygone cluster epoch
// fails with core.ErrStaleEpoch while current-epoch siblings succeed.
func TestShardedBatchStaleEpoch(t *testing.T) {
	inst := testInstance()
	opts := testOpts()
	ctx := context.Background()
	coord, _, err := NewLocalCluster(inst, 6, 5, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Warm(ctx, opts); err != nil {
		t.Fatal(err)
	}
	old := coord.Epoch()
	if _, err := coord.AddAdBase(ctx, 6, opts); err != nil {
		t.Fatal(err)
	}
	out := coord.AllocateBatch(ctx, []core.Request{
		{Opts: opts, Epoch: old},
		{Opts: opts},
	})
	if !errors.Is(out[0].Err, core.ErrStaleEpoch) {
		t.Errorf("stale item: err = %v, want core.ErrStaleEpoch", out[0].Err)
	}
	if out[1].Err != nil {
		t.Errorf("current-epoch item failed: %v", out[1].Err)
	}
}
