// Deterministic fault injection for the shard fabric. FaultClient wraps
// any Client with a scriptable per-op fault plan: rules fire by op name,
// call index, and (optionally) a seeded coin flip, injecting errors,
// delays, deadline blocks, or drop-after-send (the op executes, its reply
// is discarded) — the failure modes a real network exhibits, reproduced
// bit-for-bit under a fixed seed. The golden fault tests and internal/
// sim's chaos mode drive replicated clusters through these plans and pin
// the allocations byte-identical to fault-free single-node runs.

package shard

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/xrand"
)

// ErrInjected is the error FaultError and FaultDropAfterSend rules return.
// It classifies as retryable (it stands in for a transport failure).
var ErrInjected = errors.New("shard: injected fault")

// FaultKind selects what a matching rule does to the call.
type FaultKind int

const (
	// FaultError fails the call immediately without invoking the
	// underlying client — a connection that never got through.
	FaultError FaultKind = iota
	// FaultDelay sleeps Delay (bounded by the context), then calls
	// through — a slow replica.
	FaultDelay
	// FaultTimeout blocks until the context expires (or Delay passes,
	// when set) without invoking the underlying client, then fails — a
	// black-holed request.
	FaultTimeout
	// FaultDropAfterSend invokes the underlying client, discards its
	// reply, and fails — the request applied server-side but the reply
	// was lost, the case the sequence guard exists for.
	FaultDropAfterSend
)

// FaultRule is one entry of a fault plan.
type FaultRule struct {
	// Op names the RPC the rule applies to ("commit", "pilot", …, the
	// InstrumentClient op labels); "*" matches every op.
	Op string
	// From is the 0-based per-op call index the rule arms at (calls are
	// counted per op name across the client's lifetime; "*" rules count
	// against the total).
	From int
	// Count caps how many times the rule fires; 0 means no cap.
	Count int
	// Kind is what the rule does when it fires.
	Kind FaultKind
	// Delay is the sleep for FaultDelay and the optional unblock bound
	// for FaultTimeout.
	Delay time.Duration
	// Prob, when in (0, 1), gates each firing on a deterministic seeded
	// coin flip; 0 (or ≥ 1) fires unconditionally.
	Prob float64
}

// FaultClient wraps a Client with a deterministic fault plan. Safe for
// concurrent use; rule matching and the coin-flip stream are serialized,
// so a fixed (seed, call order) reproduces the same faults.
type FaultClient struct {
	cl Client

	mu    sync.Mutex
	rng   *xrand.Rand
	rules []FaultRule
	fired []int          // per-rule firing counts
	calls map[string]int // per-op call counts
}

// NewFaultClient wraps cl with a plan. seed drives the Prob coin flips.
func NewFaultClient(cl Client, seed uint64, rules ...FaultRule) *FaultClient {
	return &FaultClient{
		cl:    cl,
		rng:   xrand.New(seed),
		rules: rules,
		fired: make([]int, len(rules)),
		calls: map[string]int{},
	}
}

// Fired returns how many times each rule has fired, aligned with the
// constructor's rules — test assertions that a plan actually exercised
// the paths it scripted.
func (c *FaultClient) Fired() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.fired...)
}

// match books one call against op and returns the first armed matching
// rule, if any.
func (c *FaultClient) match(op string) (FaultRule, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := c.calls[op]
	c.calls[op]++
	total := c.calls["*"]
	c.calls["*"]++
	for i, r := range c.rules {
		at := idx
		if r.Op == "*" {
			at = total
		} else if r.Op != op {
			continue
		}
		if at < r.From {
			continue
		}
		if r.Count > 0 && c.fired[i] >= r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && !c.rng.Bernoulli(r.Prob) {
			continue
		}
		c.fired[i]++
		return r, true
	}
	return FaultRule{}, false
}

// apply runs one call under the plan. fn invokes the underlying client.
func (c *FaultClient) apply(ctx context.Context, op string, fn func() error) error {
	r, ok := c.match(op)
	if !ok {
		return fn()
	}
	switch r.Kind {
	case FaultError:
		return ErrInjected
	case FaultDelay:
		if !faultSleep(ctx, r.Delay) {
			return ctx.Err()
		}
		return fn()
	case FaultTimeout:
		if r.Delay > 0 {
			if !faultSleep(ctx, r.Delay) {
				return ctx.Err()
			}
			return ErrInjected
		}
		<-ctx.Done()
		return ctx.Err()
	case FaultDropAfterSend:
		fn()
		return ErrInjected
	default:
		return ErrInjected
	}
}

// faultSleep sleeps d bounded by ctx; false means the context won.
func faultSleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Info implements Client.
func (c *FaultClient) Info(ctx context.Context) (ShardInfo, error) {
	var out ShardInfo
	err := c.apply(ctx, "info", func() error {
		var err error
		out, err = c.cl.Info(ctx)
		return err
	})
	return out, err
}

// Pilot implements Client.
func (c *FaultClient) Pilot(ctx context.Context, req PilotRequest) (PilotReply, error) {
	var out PilotReply
	err := c.apply(ctx, "pilot", func() error {
		var err error
		out, err = c.cl.Pilot(ctx, req)
		return err
	})
	return out, err
}

// Ensure implements Client.
func (c *FaultClient) Ensure(ctx context.Context, req EnsureRequest) (EnsureReply, error) {
	var out EnsureReply
	err := c.apply(ctx, "ensure", func() error {
		var err error
		out, err = c.cl.Ensure(ctx, req)
		return err
	})
	return out, err
}

// Start implements Client.
func (c *FaultClient) Start(ctx context.Context, req StartRequest) (StartReply, error) {
	var out StartReply
	err := c.apply(ctx, "start", func() error {
		var err error
		out, err = c.cl.Start(ctx, req)
		return err
	})
	return out, err
}

// Commit implements Client.
func (c *FaultClient) Commit(ctx context.Context, req CommitRequest) (CommitReply, error) {
	var out CommitReply
	err := c.apply(ctx, "commit", func() error {
		var err error
		out, err = c.cl.Commit(ctx, req)
		return err
	})
	return out, err
}

// Credit implements Client.
func (c *FaultClient) Credit(ctx context.Context, req CreditRequest) (CommitReply, error) {
	var out CommitReply
	err := c.apply(ctx, "credit", func() error {
		var err error
		out, err = c.cl.Credit(ctx, req)
		return err
	})
	return out, err
}

// Grow implements Client.
func (c *FaultClient) Grow(ctx context.Context, req GrowRequest) (GrowReply, error) {
	var out GrowReply
	err := c.apply(ctx, "grow", func() error {
		var err error
		out, err = c.cl.Grow(ctx, req)
		return err
	})
	return out, err
}

// Gains implements Client.
func (c *FaultClient) Gains(ctx context.Context, req GainsRequest) (GainsReply, error) {
	var out GainsReply
	err := c.apply(ctx, "gains", func() error {
		var err error
		out, err = c.cl.Gains(ctx, req)
		return err
	})
	return out, err
}

// End implements Client.
func (c *FaultClient) End(ctx context.Context, runID string) error {
	return c.apply(ctx, "end", func() error {
		return c.cl.End(ctx, runID)
	})
}

// AddAd implements Client.
func (c *FaultClient) AddAd(ctx context.Context, req AddAdRequest) (MutateReply, error) {
	var out MutateReply
	err := c.apply(ctx, "addAd", func() error {
		var err error
		out, err = c.cl.AddAd(ctx, req)
		return err
	})
	return out, err
}

// RemoveAd implements Client.
func (c *FaultClient) RemoveAd(ctx context.Context, req RemoveAdRequest) (MutateReply, error) {
	var out MutateReply
	err := c.apply(ctx, "removeAd", func() error {
		var err error
		out, err = c.cl.RemoveAd(ctx, req)
		return err
	})
	return out, err
}

// SyncEstimates implements Client.
func (c *FaultClient) SyncEstimates(ctx context.Context, req SyncEstimatesRequest) error {
	return c.apply(ctx, "syncEstimates", func() error {
		return c.cl.SyncEstimates(ctx, req)
	})
}

// Interface compliance.
var _ Client = (*FaultClient)(nil)
