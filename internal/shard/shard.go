package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bandit"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rrset"
)

// maxOpenRuns bounds concurrent selection runs per shard; each run holds
// per-ad coverage collections, so an unbounded count would let a stuck or
// malicious coordinator grow the process without limit.
const maxOpenRuns = 64

// runTTL is how long an idle run survives before being reaped — the
// backstop for a coordinator that died mid-run and never sent End.
const runTTL = 10 * time.Minute

// Shard hosts one slice of the partitioned RR-set universe: a per-range
// core.Index epoch (samples of exactly this shard's blocks of every ad's
// stream) plus the per-run coverage collections distributed selection runs
// mutate. It implements the full RPC surface of Client transport-side; use
// LocalClient for in-process access or Handler for HTTP.
//
// Concurrency: distinct runs may proceed concurrently (each owns its
// collections), but the RPCs of one run must be issued sequentially — the
// coordinator's loop is sequential per run by construction, and reply
// buffers are reused across a run's calls.
type Shard struct {
	part   rrset.StreamPartition
	roster *core.Instance // full generated roster; arrivals activate positions
	idx    *core.Index
	// Dataset optionally names the generated instance for Info (set by the
	// daemon before serving; never read by the shard runtime itself).
	Dataset DatasetParams
	// Logf, when set before Handler is called, receives one structured
	// key=value line per HTTP request (component=adshard, trace id, method,
	// path, status, duration). Nil disables request logging; metrics and
	// trace propagation run either way. cmd/adshard sets it to log.Printf.
	Logf func(format string, args ...any)
	// DefaultKernel, when non-empty, is the coverage kernel this shard's
	// local collections run on when a StartRequest leaves the choice open
	// ("auto", "sparse", or "bitset"); explicit request values win. Kernels
	// change only local sweep cost — every reply integer is
	// kernel-independent, so shards of one cluster may safely differ.
	DefaultKernel string
	// Tracing shapes the daemon's span tracer (ring capacity, latency
	// threshold, head-sample rate); set before Handler is first called.
	// The zero value uses the obs defaults — tracing is always on for the
	// HTTP surface, since span cost is per-request and bounded.
	Tracing obs.TracerConfig

	lifeMu sync.Mutex // serializes campaign mutations with their epoch checks

	mu       sync.Mutex
	runs     map[string]*shardRun
	draining atomic.Bool

	// estMu guards est, the latest bandit estimator snapshot broadcast by
	// the coordinator (see SyncEstimates). Separate from mu: estimator
	// syncs arrive between selection runs and must never contend with the
	// run-table hot path.
	estMu sync.Mutex
	est   *bandit.State

	runsOpened atomic.Int64
	commits    atomic.Int64

	// obsOnce guards the lazily built /metrics registry (Handler's first
	// call); tests that never serve HTTP pay nothing for it.
	obsOnce   sync.Once
	obsReg    *obs.Registry
	obsHTTP   *obs.HTTPMetrics
	obsTracer *obs.Tracer
}

// Run op kinds for the sequence guard's replay cache.
const (
	opCommit = iota + 1
	opCredit
	opGrow
)

// shardRun is one distributed selection run's shard-local state.
type shardRun struct {
	ep       core.EpochView
	ads      map[int]*shardRunAd
	lastUsed atomic.Int64 // unix nanos; written by run ops, read by the reaper

	// opMu serializes the run's state-mutating ops. The coordinator is
	// sequential per run by contract, but a retried RPC whose first
	// attempt timed out client-side may still be executing here when the
	// retry arrives — the lock makes the late duplicate queue behind it,
	// where the sequence guard then answers it from cache.
	opMu sync.Mutex

	// Sequence guard (CommitRequest.Seq semantics): the last applied
	// sequence number, its op kind, and a deep copy of its reply — an
	// exact replay returns the copy without touching coverage state, so a
	// retried commit whose first reply was lost is a no-op.
	lastSeq    int64
	lastKind   uint8
	lastCommit CommitReply
	lastGrow   GrowReply

	// Per-call scratch, shared across the run's ads (run RPCs are
	// sequential): stamp/pos drive sparse-count accumulation, nodes/counts
	// back the replies.
	stamp    []uint64
	stampGen uint64
	pos      []int32
	nodes    []int32
	counts   []int32
}

// checkSeq gates one sequenced op: proceed (apply it), replay (answer from
// cache), or fail with ErrBadSeq. Caller holds opMu. Seq 0 disables the
// guard.
func (r *shardRun) checkSeq(seq int64, kind uint8) (replay bool, err error) {
	switch {
	case seq == 0:
		return false, nil
	case seq == r.lastSeq:
		if r.lastKind != kind {
			return false, fmt.Errorf("%w: replay of seq %d with op kind %d, applied kind was %d", ErrBadSeq, seq, kind, r.lastKind)
		}
		return true, nil
	case seq == r.lastSeq+1:
		return false, nil
	default:
		return false, fmt.Errorf("%w: got seq %d, run is at %d", ErrBadSeq, seq, r.lastSeq)
	}
}

// storeCommit records an applied Commit/Credit under the sequence guard,
// deep-copying the reply (the live one aliases the run's reusable scratch
// buffers). Caller holds opMu.
func (r *shardRun) storeCommit(seq int64, kind uint8, reply CommitReply) {
	if seq == 0 {
		return
	}
	r.lastSeq, r.lastKind = seq, kind
	r.lastCommit = CommitReply{Covered: reply.Covered, Delta: copySparse(reply.Delta, r.lastCommit.Delta)}
}

// storeGrow is storeCommit for Grow replies. Caller holds opMu.
func (r *shardRun) storeGrow(seq int64, reply GrowReply) {
	if seq == 0 {
		return
	}
	r.lastSeq, r.lastKind = seq, opGrow
	r.lastGrow = GrowReply{
		Added:     copySparse(reply.Added, r.lastGrow.Added),
		LocalSets: reply.LocalSets,
		Fresh:     reply.Fresh,
	}
}

// copySparse deep-copies src into dst's backing arrays (grown as needed).
func copySparse(src, dst SparseCounts) SparseCounts {
	return SparseCounts{
		Nodes:  append(dst.Nodes[:0], src.Nodes...),
		Counts: append(dst.Counts[:0], src.Counts...),
	}
}

// shardRunAd is one ad's coverage state within a run.
type shardRunAd struct {
	col   *rrset.Collection
	theta int // global θ the collection's local sets correspond to
}

// NewShard builds a shard over roster.Ads[:initialAds] (0 = all): a
// per-range index that samples only part's blocks. No presampling happens
// here — the coordinator warms the cluster globally (Pilot + Ensure) so θ
// targets are sized from whole-stream pilots exactly as a single node
// would.
func NewShard(roster *core.Instance, initialAds int, seed uint64, part rrset.StreamPartition) (*Shard, error) {
	if initialAds <= 0 || initialAds > len(roster.Ads) {
		initialAds = len(roster.Ads)
	}
	base := *roster
	base.Ads = append([]core.Ad(nil), roster.Ads[:initialAds]...)
	idx, err := core.BuildShardIndex(&base, seed, part)
	if err != nil {
		return nil, err
	}
	return newShard(roster, idx), nil
}

// NewShardFromIndex wraps a shard index restored by
// core.LoadShardIndexSnapshot (or built elsewhere). roster supplies the
// full arrival roster; the index's instance must be a positional prefix of
// it for Base adds to stay meaningful.
func NewShardFromIndex(roster *core.Instance, idx *core.Index) (*Shard, error) {
	if idx.NumAds() > len(roster.Ads) {
		return nil, fmt.Errorf("shard: index has %d ads, roster only %d", idx.NumAds(), len(roster.Ads))
	}
	return newShard(roster, idx), nil
}

func newShard(roster *core.Instance, idx *core.Index) *Shard {
	return &Shard{
		part:   idx.Partition(),
		roster: roster,
		idx:    idx,
		runs:   map[string]*shardRun{},
	}
}

// Index exposes the shard's per-range index (snapshot persistence in
// cmd/adshard writes through it).
func (s *Shard) Index() *core.Index { return s.idx }

// observability lazily builds the daemon's /metrics registry: the HTTP
// request metrics the Handler middleware records plus scrape-time views
// over the shard state Info already reports (epoch, campaign size, sample
// counts and footprint, open runs, commits, drain flag).
func (s *Shard) observability() (*obs.Registry, *obs.HTTPMetrics) {
	s.obsOnce.Do(func() {
		reg := obs.NewRegistry()
		s.obsHTTP = obs.NewHTTPMetrics(reg, "adshard")
		s.obsTracer = obs.NewTracer(s.Tracing)
		s.obsTracer.EnableMetrics(reg, "adshard")
		obs.BuildInfo(reg, "adshard")
		reg.GaugeFunc("adshard_epoch",
			"Campaign epoch the shard currently serves.",
			func() float64 { return float64(s.idx.CurrentEpoch().Version()) })
		reg.GaugeFunc("adshard_campaign_ads",
			"Advertisers in the shard's current campaign set.",
			func() float64 { return float64(s.idx.CurrentEpoch().NumAds()) })
		reg.CounterFunc("adshard_sets_sampled_total",
			"Local RR sets drawn over the shard's lifetime.",
			func() uint64 { return uint64(s.idx.SetsSampled()) })
		reg.GaugeFunc("adshard_index_mem_bytes",
			"Stored-sample footprint of the shard's per-range index in bytes.",
			func() float64 { return float64(s.idx.MemBytes()) })
		reg.GaugeFunc("adshard_open_runs",
			"Live distributed selection runs holding state on this shard.",
			func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return float64(len(s.runs))
			})
		reg.CounterFunc("adshard_runs_opened_total",
			"Selection runs opened on this shard over its lifetime.",
			func() uint64 { return uint64(s.runsOpened.Load()) })
		reg.CounterFunc("adshard_commits_total",
			"Seed commits applied on this shard over its lifetime.",
			func() uint64 { return uint64(s.commits.Load()) })
		reg.GaugeFunc("adshard_draining",
			"1 when the shard refuses new runs, 0 otherwise.",
			func() float64 {
				if s.draining.Load() {
					return 1
				}
				return 0
			})
		s.obsReg = reg
	})
	return s.obsReg, s.obsHTTP
}

// Drain makes the shard refuse new runs; in-flight runs finish normally.
// There is no undrain — a drained shard is on its way out.
func (s *Shard) Drain() { s.draining.Store(true) }

// Info implements the Client surface shard-side.
func (s *Shard) Info() ShardInfo {
	s.mu.Lock()
	open := len(s.runs)
	s.mu.Unlock()
	ep := s.idx.CurrentEpoch()
	return ShardInfo{
		Dataset:             s.Dataset,
		Shard:               s.part.Shard,
		NumShards:           s.part.Size(),
		Seed:                s.idx.Seed(),
		Fingerprint:         core.InstanceFingerprint(s.roster),
		CampaignFingerprint: campaignFingerprint(ep.Inst()),
		Epoch:               ep.Version(),
		NumAds:              ep.NumAds(),
		RosterAds:           len(s.roster.Ads),
		SetsSampled:         s.idx.SetsSampled(),
		MemBytes:            s.idx.MemBytes(),
		OpenRuns:            open,
		Draining:            s.draining.Load(),
	}
}

// epochView resolves the current epoch and checks it against the pinned
// one a request carries.
func (s *Shard) epochView(epoch uint64) (core.EpochView, error) {
	ep := s.idx.CurrentEpoch()
	if epoch != 0 && epoch != ep.Version() {
		return core.EpochView{}, fmt.Errorf("%w: request prepared for epoch %d, shard is at %d",
			ErrStaleEpoch, epoch, ep.Version())
	}
	return ep, nil
}

// checkAds validates ad positions against an epoch.
func checkAds(ep core.EpochView, ads []int) error {
	for _, j := range ads {
		if j < 0 || j >= ep.NumAds() {
			return fmt.Errorf("shard: ad %d out of range (campaign has %d)", j, ep.NumAds())
		}
	}
	return nil
}

// Pilot implements the Client surface shard-side.
func (s *Shard) Pilot(req PilotRequest) (PilotReply, error) {
	ep, err := s.epochView(req.Epoch)
	if err != nil {
		return PilotReply{}, err
	}
	if err := checkAds(ep, req.Ads); err != nil {
		return PilotReply{}, err
	}
	reply := PilotReply{
		Have: make([]int, len(req.Ads)),
	}
	if !req.SkipWidths {
		reply.Widths = make([][]int64, len(req.Ads))
	}
	for i, j := range req.Ads {
		reply.Have[i] = ep.AdHave(j)
		widths, fresh := ep.AdPilot(j, req.Want)
		if !req.SkipWidths {
			reply.Widths[i] = widths
		}
		reply.Fresh += fresh
	}
	return reply, nil
}

// Ensure implements the Client surface shard-side.
func (s *Shard) Ensure(req EnsureRequest) (EnsureReply, error) {
	ep, err := s.epochView(req.Epoch)
	if err != nil {
		return EnsureReply{}, err
	}
	if err := checkAds(ep, []int{req.Ad}); err != nil {
		return EnsureReply{}, err
	}
	return EnsureReply{Fresh: ep.AdEnsure(req.Ad, req.Want)}, nil
}

// Start implements the Client surface shard-side.
func (s *Shard) Start(req StartRequest) (StartReply, error) {
	if s.draining.Load() {
		return StartReply{}, ErrDraining
	}
	ep, err := s.epochView(req.Epoch)
	if err != nil {
		return StartReply{}, err
	}
	if err := checkAds(ep, req.Ads); err != nil {
		return StartReply{}, err
	}
	if len(req.Thetas) != len(req.Ads) {
		return StartReply{}, fmt.Errorf("shard: %d thetas for %d ads", len(req.Thetas), len(req.Ads))
	}
	kernel := req.Kernel
	if kernel == "" {
		kernel = s.DefaultKernel
	}
	wantKernel, forceBits := rrset.KernelBitset, false
	switch kernel {
	case "", "auto":
	case "sparse":
		wantKernel = rrset.KernelSparse
	case "bitset":
		forceBits = true
	default:
		return StartReply{}, fmt.Errorf("shard: unknown coverage kernel %q (want auto, sparse, or bitset)", kernel)
	}
	run := &shardRun{ep: ep, ads: make(map[int]*shardRunAd, len(req.Ads))}
	run.lastUsed.Store(time.Now().UnixNano())

	s.mu.Lock()
	s.reapLocked(time.Now())
	if _, dup := s.runs[req.RunID]; !dup && len(s.runs) >= maxOpenRuns {
		s.mu.Unlock()
		return StartReply{}, fmt.Errorf("shard: %d runs already open", maxOpenRuns)
	}
	// Level-triggered: re-opening an existing run id replaces its state
	// wholesale. The replacement is byte-identical to the original (the
	// deterministic stream re-derives the same sets), so a retried Start —
	// or a replica-set replay rebuilding a run after failover — is safe.
	s.runs[req.RunID] = run
	s.mu.Unlock()

	n := ep.Inst().G.N()
	reply := StartReply{
		Cov:       make([]SparseCounts, len(req.Ads)),
		LocalSets: make([]int, len(req.Ads)),
		Kernels:   make([]uint8, len(req.Ads)),
	}
	for i, j := range req.Ads {
		v, inv, fresh := ep.AdView(j, req.Thetas[i])
		reply.Fresh += fresh
		if forceBits {
			inv.PrepareCoverBits()
		}
		col := rrset.NewCollectionFromFamily(n, v, inv)
		reply.Kernels[i] = uint8(col.UseKernel(wantKernel))
		run.ads[j] = &shardRunAd{col: col, theta: req.Thetas[i]}
		var sc SparseCounts
		for u := 0; u < n; u++ {
			if c := col.Coverage(int32(u)); c > 0 {
				sc.Nodes = append(sc.Nodes, int32(u))
				sc.Counts = append(sc.Counts, int32(c))
			}
		}
		reply.Cov[i] = sc
		reply.LocalSets[i] = v.Len()
	}
	s.runsOpened.Add(1)
	return reply, nil
}

// run resolves a run and one of its ads.
func (s *Shard) run(runID string, ad int) (*shardRun, *shardRunAd, error) {
	s.mu.Lock()
	r, ok := s.runs[runID]
	s.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownRun, runID)
	}
	r.lastUsed.Store(time.Now().UnixNano())
	ra, ok := r.ads[ad]
	if !ok {
		return nil, nil, fmt.Errorf("shard: run %q has no ad %d", runID, ad)
	}
	return r, ra, nil
}

// Commit implements the Client surface shard-side.
func (s *Shard) Commit(req CommitRequest) (CommitReply, error) {
	r, ra, err := s.run(req.RunID, req.Ad)
	if err != nil {
		return CommitReply{}, err
	}
	r.opMu.Lock()
	defer r.opMu.Unlock()
	replay, err := r.checkSeq(req.Seq, opCommit)
	if err != nil {
		return CommitReply{}, err
	}
	if replay {
		return r.lastCommit, nil
	}
	covered, nodes, decs := ra.col.CoverNodeDelta(req.Node, r.nodes, r.counts)
	r.nodes, r.counts = nodes, decs
	s.commits.Add(1)
	reply := CommitReply{Covered: covered, Delta: SparseCounts{Nodes: nodes, Counts: decs}}
	r.storeCommit(req.Seq, opCommit, reply)
	return reply, nil
}

// Credit implements the Client surface shard-side.
func (s *Shard) Credit(req CreditRequest) (CommitReply, error) {
	r, ra, err := s.run(req.RunID, req.Ad)
	if err != nil {
		return CommitReply{}, err
	}
	r.opMu.Lock()
	defer r.opMu.Unlock()
	replay, err := r.checkSeq(req.Seq, opCredit)
	if err != nil {
		return CommitReply{}, err
	}
	if replay {
		return r.lastCommit, nil
	}
	localFirst := s.part.LocalCount(req.FromGlobal)
	covered, nodes, decs := ra.col.CountAndCoverFromDelta(req.Node, localFirst, r.nodes, r.counts)
	r.nodes, r.counts = nodes, decs
	reply := CommitReply{Covered: covered, Delta: SparseCounts{Nodes: nodes, Counts: decs}}
	r.storeCommit(req.Seq, opCredit, reply)
	return reply, nil
}

// Grow implements the Client surface shard-side.
func (s *Shard) Grow(req GrowRequest) (GrowReply, error) {
	r, ra, err := s.run(req.RunID, req.Ad)
	if err != nil {
		return GrowReply{}, err
	}
	r.opMu.Lock()
	defer r.opMu.Unlock()
	replay, err := r.checkSeq(req.Seq, opGrow)
	if err != nil {
		return GrowReply{}, err
	}
	if replay {
		return r.lastGrow, nil
	}
	if req.FromGlobal != ra.theta {
		return GrowReply{}, fmt.Errorf("shard: grow from θ=%d, run ad is at %d", req.FromGlobal, ra.theta)
	}
	v, fresh := r.ep.AdWindow(req.Ad, req.FromGlobal, req.ToGlobal)
	added := r.sparseFromView(r.ep.Inst().G.N(), v)
	ra.col.AddFamily(v)
	ra.theta = req.ToGlobal
	reply := GrowReply{Added: added, LocalSets: v.Len(), Fresh: fresh}
	r.storeGrow(req.Seq, reply)
	return reply, nil
}

// sparseFromView accumulates a view's per-node membership counts into the
// run's reusable sparse buffers.
func (r *shardRun) sparseFromView(n int, v rrset.FamilyView) SparseCounts {
	if len(r.stamp) < n {
		r.stamp = make([]uint64, n)
		r.pos = make([]int32, n)
	}
	r.stampGen++
	gen := r.stampGen
	r.nodes, r.counts = r.nodes[:0], r.counts[:0]
	for i := 0; i < v.Len(); i++ {
		for _, u := range v.Set(i) {
			if r.stamp[u] == gen {
				r.counts[r.pos[u]]++
				continue
			}
			r.stamp[u] = gen
			r.pos[u] = int32(len(r.nodes))
			r.nodes = append(r.nodes, u)
			r.counts = append(r.counts, 1)
		}
	}
	return SparseCounts{Nodes: r.nodes, Counts: r.counts}
}

// Gains implements the Client surface shard-side.
func (s *Shard) Gains(req GainsRequest) (GainsReply, error) {
	r, ra, err := s.run(req.RunID, req.Ad)
	if err != nil {
		return GainsReply{}, err
	}
	r.opMu.Lock()
	defer r.opMu.Unlock()
	out := make([]int32, len(req.Nodes))
	for i, u := range req.Nodes {
		out[i] = int32(ra.col.Coverage(u))
	}
	return GainsReply{Cov: out}, nil
}

// End implements the Client surface shard-side. Ending an unknown run is a
// no-op (the coordinator ends best-effort on error paths).
func (s *Shard) End(runID string) {
	s.mu.Lock()
	delete(s.runs, runID)
	s.mu.Unlock()
}

// reapLocked drops runs idle past runTTL. Caller holds s.mu.
func (s *Shard) reapLocked(now time.Time) {
	for id, r := range s.runs {
		if now.UnixNano()-r.lastUsed.Load() > int64(runTTL) {
			delete(s.runs, id)
		}
	}
}

// AddAd implements the Client surface shard-side: it appends the requested
// advertiser (roster activation or template clone) to the campaign set,
// advancing the epoch. The coordinator broadcasts the identical mutation
// to every shard, so stream-id assignment — and with it every future
// sample — stays in lockstep across the cluster.
func (s *Shard) AddAd(req AddAdRequest) (MutateReply, error) {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	ep, err := s.epochView(req.Epoch)
	if err != nil {
		return MutateReply{}, err
	}
	var ad core.Ad
	if req.Base >= 0 {
		if req.Base >= len(s.roster.Ads) {
			return MutateReply{}, fmt.Errorf("shard: roster position %d out of range (roster has %d)", req.Base, len(s.roster.Ads))
		}
		ad = s.roster.Ads[req.Base]
	} else {
		if ad, err = specToAd(ep.Inst(), req.Spec); err != nil {
			return MutateReply{}, err
		}
	}
	pos, err := s.idx.AddAd(ad, core.TIRMOptions{})
	if err != nil {
		return MutateReply{}, err
	}
	return MutateReply{Epoch: s.idx.Epoch(), Position: pos, NumAds: s.idx.NumAds()}, nil
}

// RemoveAd implements the Client surface shard-side.
func (s *Shard) RemoveAd(req RemoveAdRequest) (MutateReply, error) {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if _, err := s.epochView(req.Epoch); err != nil {
		return MutateReply{}, err
	}
	if err := s.idx.RemoveAd(req.Pos); err != nil {
		return MutateReply{}, err
	}
	return MutateReply{Epoch: s.idx.Epoch(), NumAds: s.idx.NumAds()}, nil
}

// SyncEstimates implements the Client surface shard-side: it validates
// and stores the broadcast bandit estimator snapshot. Estimator state is
// name-keyed and epoch-free (feedback survives campaign churn), so the
// sync carries no epoch pin. A snapshot with an Events count at or below
// the stored one is ignored — out-of-order rebroadcasts cannot roll the
// shard's view backwards.
func (s *Shard) SyncEstimates(req SyncEstimatesRequest) error {
	if _, err := bandit.Restore(req.State); err != nil {
		return fmt.Errorf("shard: bad estimator snapshot: %w", err)
	}
	s.estMu.Lock()
	defer s.estMu.Unlock()
	if s.est != nil && req.State.Events <= s.est.Events {
		return nil
	}
	st := req.State
	s.est = &st
	return nil
}

// Estimates returns the latest synced bandit estimator snapshot, with ok
// reporting whether one has arrived.
func (s *Shard) Estimates() (st bandit.State, ok bool) {
	s.estMu.Lock()
	defer s.estMu.Unlock()
	if s.est == nil {
		return bandit.State{}, false
	}
	return *s.est, true
}
