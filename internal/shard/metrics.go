// RPC-level telemetry for the shard fabric, recorded coordinator-side: an
// instrumented Client decorator meters every RPC (count, latency, outcome)
// per operation and shard slot over either transport, and the coordinator
// times its scatter-gather rounds per phase. One Metrics is shared by all
// of a cluster's clients so the host exposes a single family; internal/
// serve wires it into the adserver registry in ConnectShards.

package shard

import (
	"context"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Metrics is the shard-fabric telemetry surface: per-RPC counters and
// latency histograms (recorded by InstrumentClient) plus coordinator
// scatter-round timings (recorded when Config.Metrics is set).
type Metrics struct {
	rpcs           *obs.CounterVec   // op, shard, outcome
	rpcSeconds     *obs.HistogramVec // op, shard
	roundSeconds   *obs.HistogramVec // phase
	retries        *obs.CounterVec   // op, reason (RetryClient)
	failovers      *obs.CounterVec   // range (ReplicaSet)
	replicaHealthy *obs.GaugeVec     // range, replica (ReplicaSet)
}

// NewMetrics registers the fabric metrics on r under
// prefix_shard_rpcs_total, prefix_shard_rpc_seconds,
// prefix_coordinator_round_seconds, prefix_shard_rpc_retries_total,
// prefix_shard_failovers_total, and prefix_shard_replica_healthy.
func NewMetrics(r *obs.Registry, prefix string) *Metrics {
	return &Metrics{
		rpcs: r.CounterVec(prefix+"_shard_rpcs_total",
			"Shard RPCs by operation, shard slot, and outcome (ok or error).",
			"op", "shard", "outcome"),
		rpcSeconds: r.HistogramVec(prefix+"_shard_rpc_seconds",
			"Shard RPC round-trip latency in seconds by operation and shard slot.",
			obs.DefBuckets, "op", "shard"),
		roundSeconds: r.HistogramVec(prefix+"_coordinator_round_seconds",
			"Coordinator scatter-gather round wall time in seconds by phase (pilot, start, commit, grow, credit, gains).",
			obs.DefBuckets, "phase"),
		retries: r.CounterVec(prefix+"_shard_rpc_retries_total",
			"Shard RPC retries by operation and reason (timeout, draining, server, connection).",
			"op", "reason"),
		failovers: r.CounterVec(prefix+"_shard_failovers_total",
			"Replica failovers by partition range: ops served by a non-preferred replica after the owner failed.",
			"range"),
		replicaHealthy: r.GaugeVec(prefix+"_shard_replica_healthy",
			"Per-replica health (1 healthy, 0 unhealthy) by partition range and replica index.",
			"range", "replica"),
	}
}

// record books one finished RPC.
func (m *Metrics) record(op, shard string, start time.Time, err error) {
	outcome := "ok"
	if err != nil {
		outcome = "error"
	}
	m.rpcs.With(op, shard, outcome).Inc()
	m.rpcSeconds.With(op, shard).Observe(time.Since(start).Seconds())
}

// InstrumentClient wraps cl so every RPC against shard slot `shard` is
// metered into m. Transport-blind: wrap a LocalClient or an HTTPClient the
// same way. A nil m returns cl unchanged.
func InstrumentClient(cl Client, shard int, m *Metrics) Client {
	if m == nil {
		return cl
	}
	return &instrumentedClient{cl: cl, shard: strconv.Itoa(shard), m: m}
}

// instrumentedClient decorates a Client with per-RPC telemetry.
type instrumentedClient struct {
	cl    Client
	shard string
	m     *Metrics
}

// Info implements Client.
func (c *instrumentedClient) Info(ctx context.Context) (ShardInfo, error) {
	start := time.Now()
	out, err := c.cl.Info(ctx)
	c.m.record("info", c.shard, start, err)
	return out, err
}

// Pilot implements Client.
func (c *instrumentedClient) Pilot(ctx context.Context, req PilotRequest) (PilotReply, error) {
	start := time.Now()
	out, err := c.cl.Pilot(ctx, req)
	c.m.record("pilot", c.shard, start, err)
	return out, err
}

// Ensure implements Client.
func (c *instrumentedClient) Ensure(ctx context.Context, req EnsureRequest) (EnsureReply, error) {
	start := time.Now()
	out, err := c.cl.Ensure(ctx, req)
	c.m.record("ensure", c.shard, start, err)
	return out, err
}

// Start implements Client.
func (c *instrumentedClient) Start(ctx context.Context, req StartRequest) (StartReply, error) {
	start := time.Now()
	out, err := c.cl.Start(ctx, req)
	c.m.record("start", c.shard, start, err)
	return out, err
}

// Commit implements Client.
func (c *instrumentedClient) Commit(ctx context.Context, req CommitRequest) (CommitReply, error) {
	start := time.Now()
	out, err := c.cl.Commit(ctx, req)
	c.m.record("commit", c.shard, start, err)
	return out, err
}

// Credit implements Client.
func (c *instrumentedClient) Credit(ctx context.Context, req CreditRequest) (CommitReply, error) {
	start := time.Now()
	out, err := c.cl.Credit(ctx, req)
	c.m.record("credit", c.shard, start, err)
	return out, err
}

// Grow implements Client.
func (c *instrumentedClient) Grow(ctx context.Context, req GrowRequest) (GrowReply, error) {
	start := time.Now()
	out, err := c.cl.Grow(ctx, req)
	c.m.record("grow", c.shard, start, err)
	return out, err
}

// Gains implements Client.
func (c *instrumentedClient) Gains(ctx context.Context, req GainsRequest) (GainsReply, error) {
	start := time.Now()
	out, err := c.cl.Gains(ctx, req)
	c.m.record("gains", c.shard, start, err)
	return out, err
}

// End implements Client.
func (c *instrumentedClient) End(ctx context.Context, runID string) error {
	start := time.Now()
	err := c.cl.End(ctx, runID)
	c.m.record("end", c.shard, start, err)
	return err
}

// AddAd implements Client.
func (c *instrumentedClient) AddAd(ctx context.Context, req AddAdRequest) (MutateReply, error) {
	start := time.Now()
	out, err := c.cl.AddAd(ctx, req)
	c.m.record("addAd", c.shard, start, err)
	return out, err
}

// RemoveAd implements Client.
func (c *instrumentedClient) RemoveAd(ctx context.Context, req RemoveAdRequest) (MutateReply, error) {
	start := time.Now()
	out, err := c.cl.RemoveAd(ctx, req)
	c.m.record("removeAd", c.shard, start, err)
	return out, err
}

// SyncEstimates implements Client.
func (c *instrumentedClient) SyncEstimates(ctx context.Context, req SyncEstimatesRequest) error {
	start := time.Now()
	err := c.cl.SyncEstimates(ctx, req)
	c.m.record("syncEstimates", c.shard, start, err)
	return err
}

// Interface compliance.
var _ Client = (*instrumentedClient)(nil)
