// Tests for replica sets and deterministic fault injection: allocations
// under scripted fault plans stay byte-identical to fault-free single-node
// runs (the tentpole invariant), the sequence guard makes replayed run ops
// level-triggered, a fully dead range surfaces ErrPartitionUnavailable
// instead of hanging, and revived replicas are walked forward through
// missed mutations before rejoining.

package shard

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

// mustEqualSemantic is mustEqualResults minus the sampling accounting:
// failover legitimately re-samples on the adopting replica, so
// TotalSetsSampled/SetsReused are replica-local bookkeeping while seeds,
// revenues, θ evolution, and iteration count must not move by a bit.
func mustEqualSemantic(t *testing.T, label string, want, got *core.TIRMResult) {
	t.Helper()
	if !reflect.DeepEqual(want.Alloc.Seeds, got.Alloc.Seeds) {
		t.Fatalf("%s: seeds diverged\n want %v\n  got %v", label, want.Alloc.Seeds, got.Alloc.Seeds)
	}
	if !reflect.DeepEqual(want.EstRevenue, got.EstRevenue) {
		t.Fatalf("%s: revenues diverged\n want %v\n  got %v", label, want.EstRevenue, got.EstRevenue)
	}
	if !reflect.DeepEqual(want.FinalTheta, got.FinalTheta) {
		t.Fatalf("%s: θ diverged\n want %v\n  got %v", label, want.FinalTheta, got.FinalTheta)
	}
	if !reflect.DeepEqual(want.FinalSeedTarget, got.FinalSeedTarget) {
		t.Fatalf("%s: seed targets diverged\n want %v\n  got %v", label, want.FinalSeedTarget, got.FinalSeedTarget)
	}
	if want.Iterations != got.Iterations {
		t.Fatalf("%s: iterations %d vs %d", label, want.Iterations, got.Iterations)
	}
}

// TestReplicaClusterGoldenNoFaults pins the baseline: a replicated cluster
// with nothing injected matches the single node exactly, accounting
// included (no failovers means no divergence at all).
func TestReplicaClusterGoldenNoFaults(t *testing.T) {
	inst := testInstance()
	opts := testOpts()
	const seed = 42

	idx, err := core.BuildIndex(inst, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.AllocateFromIndex(idx, core.Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4} {
		coord, sets, _, err := NewReplicaCluster(inst, 0, seed, k, 2, Config{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.Warm(context.Background(), opts); err != nil {
			t.Fatal(err)
		}
		got, err := coord.Allocate(context.Background(), core.Request{Opts: opts})
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		mustEqualResults(t, "replicated no-fault", want, got)
		for slot, set := range sets {
			if set.HealthyCount() != 2 {
				t.Fatalf("K=%d slot %d: %d healthy replicas, want 2", k, slot, set.HealthyCount())
			}
		}
	}
}

// TestReplicaFaultGolden is the tentpole acceptance pin: a K ∈ {2, 4}
// cluster with R = 2 replicas per range, driven through a scripted fault
// plan — dead connections, lost replies after the op applied, delays, and
// deadline blackholes on specific calls of specific replicas — produces an
// allocation semantically byte-identical to the fault-free single-node
// run. Replica 0 of every range is wrapped directly under the ReplicaSet
// (failover adoption path); the plan fires on errors, drop-after-send, a
// delay, and a bounded timeout.
func TestReplicaFaultGolden(t *testing.T) {
	inst := testInstance()
	opts := testOpts()
	const seed = 42

	idx, err := core.BuildIndex(inst, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.AllocateFromIndex(idx, core.Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{2, 4} {
		// Only the preferred replica of each range faults, finitely, so the
		// secondary is always a clean failover target (there is no retry
		// layer in this variant — a single op must find a working replica).
		var faults []*FaultClient
		wrap := func(slot, rep int, cl Client) Client {
			if rep != 0 {
				return cl
			}
			var rules []FaultRule
			switch slot {
			case 0:
				// Loses a commit reply after applying it, then refuses two
				// gains sweeps — mid-run adoption with a lost-reply replay.
				rules = []FaultRule{
					{Op: "commit", From: 1, Count: 1, Kind: FaultDropAfterSend},
					{Op: "gains", From: 3, Count: 2, Kind: FaultError},
				}
			case 1:
				// Answers one gains slowly, then blackholes a pilot for 2ms.
				rules = []FaultRule{
					{Op: "gains", From: 2, Count: 1, Kind: FaultDelay, Delay: time.Millisecond},
					{Op: "pilot", From: 1, Count: 1, Kind: FaultTimeout, Delay: 2 * time.Millisecond},
				}
			case 2:
				rules = []FaultRule{{Op: "credit", From: 0, Count: 1, Kind: FaultError}}
			case 3:
				rules = []FaultRule{{Op: "start", From: 1, Count: 1, Kind: FaultError}}
			}
			fc := NewFaultClient(cl, uint64(1000+slot*10+rep), rules...)
			faults = append(faults, fc)
			return fc
		}
		coord, _, _, err := NewReplicaCluster(inst, 0, seed, k, 2, Config{}, wrap)
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.Warm(context.Background(), opts); err != nil {
			t.Fatal(err)
		}
		got, err := coord.Allocate(context.Background(), core.Request{Opts: opts})
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		mustEqualSemantic(t, "faulted", want, got)
		fired := 0
		for _, fc := range faults {
			for _, n := range fc.Fired() {
				fired += n
			}
		}
		if fired == 0 {
			t.Fatalf("K=%d: fault plan never fired — the test exercised nothing", k)
		}
	}
}

// TestReplicaDropAfterSendWithRetry pins the sequence guard end to end:
// with the retry layer under the replica layer, a lost commit reply is
// replayed against the same replica, the shard answers from its cached
// reply instead of double-applying, and the allocation still matches the
// single node bit for bit — including sampling accounting, because no
// failover ever happens.
func TestReplicaDropAfterSendWithRetry(t *testing.T) {
	inst := testInstance()
	opts := testOpts()
	const seed, k = 42, 2

	idx, err := core.BuildIndex(inst, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.AllocateFromIndex(idx, core.Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}

	var drops []*FaultClient
	wrap := func(slot, rep int, cl Client) Client {
		if rep != 0 {
			return cl
		}
		fc := NewFaultClient(cl, uint64(slot+1),
			FaultRule{Op: "commit", From: 1, Count: 2, Kind: FaultDropAfterSend},
			FaultRule{Op: "credit", From: 0, Count: 1, Kind: FaultDropAfterSend},
		)
		drops = append(drops, fc)
		return NewRetryClient(fc, RetryPolicy{
			MaxAttempts: 3,
			BaseBackoff: time.Microsecond,
			MaxBackoff:  time.Microsecond,
		}, nil)
	}
	coord, sets, _, err := NewReplicaCluster(inst, 0, seed, k, 2, Config{}, wrap)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Warm(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	got, err := coord.Allocate(context.Background(), core.Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "drop-after-send with retry", want, got)
	fired := 0
	for _, fc := range drops {
		for _, n := range fc.Fired() {
			fired += n
		}
	}
	if fired == 0 {
		t.Fatal("no drop-after-send fault fired")
	}
	// Replays healed in place: the owner never changed, so every replica is
	// still healthy.
	for slot, set := range sets {
		if set.HealthyCount() != 2 {
			t.Fatalf("slot %d: %d healthy, want 2", slot, set.HealthyCount())
		}
	}
}

// TestShardSeqGuard unit-tests the level-triggered sequence window on a
// run's op log: first-time seqs apply, an exact replay of the last applied
// (same kind) answers without re-applying, a replay with a different op
// kind and any gap or rewind are ErrBadSeq, and seq 0 disables the guard.
func TestShardSeqGuard(t *testing.T) {
	r := &shardRun{}
	check := func(seq int64, kind uint8, wantReplay bool, wantErr bool) {
		t.Helper()
		replay, err := r.checkSeq(seq, kind)
		if (err != nil) != wantErr {
			t.Fatalf("checkSeq(%d, %d): err = %v, wantErr %v", seq, kind, err, wantErr)
		}
		if err != nil && !errors.Is(err, ErrBadSeq) {
			t.Fatalf("checkSeq(%d, %d): err %v is not ErrBadSeq", seq, kind, err)
		}
		if replay != wantReplay {
			t.Fatalf("checkSeq(%d, %d): replay = %v, want %v", seq, kind, replay, wantReplay)
		}
	}
	check(0, opCommit, false, false) // guard disabled
	check(1, opCommit, false, false) // next in sequence
	r.storeCommit(1, opCommit, CommitReply{Covered: 7})
	check(1, opCommit, true, false)  // exact replay
	check(1, opCredit, false, true)  // replay with wrong kind
	check(3, opCommit, false, true)  // gap
	check(0, opGrow, false, false)   // unsequenced op rides along
	check(2, opCredit, false, false) // next applies
	r.lastSeq, r.lastKind = 2, opCredit
	check(1, opCommit, false, true) // rewind

	// The cached reply must be a deep copy: mutating the stored source
	// after the fact must not corrupt the replay answer.
	src := CommitReply{Covered: 9, Delta: SparseCounts{Nodes: []int32{1, 2}, Counts: []int32{3, 4}}}
	r.storeCommit(3, opCommit, src)
	src.Delta.Nodes[0] = 99
	if r.lastCommit.Delta.Nodes[0] != 1 {
		t.Fatal("cached commit reply aliases the caller's buffers")
	}
}

// TestStartReplacesOpenRun pins Start's level-trigger: re-sending a
// StartRequest for an already-open run id rebuilds the run instead of
// erroring, which is what makes a retried or replayed Start harmless.
func TestStartReplacesOpenRun(t *testing.T) {
	inst := testInstance()
	opts := testOpts()
	coord, _, shards, err := NewReplicaCluster(inst, 0, 42, 1, 1, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Warm(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	s := shards[0]
	req := StartRequest{RunID: "run-a", Epoch: s.Info().Epoch, Ads: []int{0}, Thetas: []int{64}}
	if _, err := s.Start(req); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start(req); err != nil {
		t.Fatalf("duplicate Start must replace, got %v", err)
	}
	if got := s.Info().OpenRuns; got != 1 {
		t.Fatalf("open runs = %d, want 1 (replace, not accumulate)", got)
	}
	s.End("run-a")
}

// TestPartitionUnavailable pins total-loss semantics: when every replica
// of one range fails, the allocation surfaces ErrPartitionUnavailable
// promptly (no hang), and other ranges' health is untouched.
func TestPartitionUnavailable(t *testing.T) {
	inst := testInstance()
	opts := testOpts()
	const seed, k = 42, 2

	// Both replicas of range 0 refuse every selection op; Info stays alive
	// so construction succeeds (the failure is at op time, the hard case).
	wrap := func(slot, rep int, cl Client) Client {
		if slot != 0 {
			return cl
		}
		return NewFaultClient(cl, uint64(rep+1),
			FaultRule{Op: "pilot", Kind: FaultError},
			FaultRule{Op: "ensure", Kind: FaultError},
			FaultRule{Op: "start", Kind: FaultError},
		)
	}
	coord, sets, _, err := NewReplicaCluster(inst, 0, seed, k, 2, Config{}, wrap)
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.Allocate(context.Background(), core.Request{Opts: opts})
	if !errors.Is(err, ErrPartitionUnavailable) {
		t.Fatalf("err = %v, want ErrPartitionUnavailable", err)
	}
	if sets[1].HealthyCount() != 2 {
		t.Fatalf("range 1 health collateral damage: %d healthy, want 2", sets[1].HealthyCount())
	}
}

// TestReplicaSetRejectsDivergentReplica pins registration validation: two
// shards of the same range built from different seeds are different
// deterministic universes and must be refused at construction.
func TestReplicaSetRejectsDivergentReplica(t *testing.T) {
	inst := testInstance()
	p, err := NewPartitioner(2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewShard(inst, 0, 42, p.Range(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewShard(inst, 0, 43, p.Range(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReplicaSet(context.Background(), []Client{LocalClient{S: a}, LocalClient{S: b}}, ReplicaSetConfig{}); err == nil {
		t.Fatal("replica set accepted replicas with divergent seeds")
	}
	c, err := NewShard(inst, 0, 42, p.Range(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReplicaSet(context.Background(), []Client{LocalClient{S: a}, LocalClient{S: c}}, ReplicaSetConfig{}); err == nil {
		t.Fatal("replica set accepted replicas serving different ranges")
	}
}

// TestReplicaMutationRevive pins the re-warm path: a replica that misses a
// campaign mutation is dropped from the rotation, and a Probe walks it
// forward through the logged mutation and returns it — after which the
// cluster still matches a single-node index with the identical history.
func TestReplicaMutationRevive(t *testing.T) {
	inst := testInstance()
	opts := testOpts()
	const seed, k = 7, 2
	ctx := context.Background()

	// Single node: 6 initial ads, then activate ad 6.
	base := *inst
	base.Ads = append([]core.Ad(nil), inst.Ads[:6]...)
	idx, err := core.BuildIndex(&base, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.AddAd(inst.Ads[6], opts); err != nil {
		t.Fatal(err)
	}
	want, err := core.AllocateFromIndex(idx, core.Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}

	// Replica 1 of range 0 fails its first addAd broadcast.
	var dropper *FaultClient
	wrap := func(slot, rep int, cl Client) Client {
		if slot == 0 && rep == 1 {
			dropper = NewFaultClient(cl, 9, FaultRule{Op: "addAd", Count: 1, Kind: FaultError})
			return dropper
		}
		return cl
	}
	coord, sets, _, err := NewReplicaCluster(inst, 6, seed, k, 2, Config{}, wrap)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Warm(ctx, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.AddAdBase(ctx, 6, opts); err != nil {
		t.Fatal(err)
	}
	if sets[0].HealthyCount() != 1 {
		t.Fatalf("range 0 healthy = %d, want 1 (replica 1 missed the mutation)", sets[0].HealthyCount())
	}
	if n := dropper.Fired()[0]; n != 1 {
		t.Fatalf("addAd fault fired %d times, want 1", n)
	}

	// Probe replays the missed mutation and revives the replica.
	statuses := sets[0].Probe(ctx)
	for _, st := range statuses {
		if !st.Healthy {
			t.Fatalf("replica %d still unhealthy after probe: %v", st.Replica, st.Err)
		}
	}

	got, err := coord.Allocate(ctx, core.Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "post-revive", want, got)

	// The revived replica can carry the range alone: kill replica 0
	// outright and allocate again.
	killed := 0
	coord2, sets2, _, err := NewReplicaCluster(inst, 6, seed, k, 2, Config{}, func(slot, rep int, cl Client) Client {
		if slot == 0 && rep == 0 {
			killed++
			return NewFaultClient(cl, 11, FaultRule{Op: "*", From: 30, Kind: FaultError})
		}
		return cl
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord2.Warm(ctx, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := coord2.AddAdBase(ctx, 6, opts); err != nil {
		t.Fatal(err)
	}
	got2, err := coord2.Allocate(ctx, core.Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	mustEqualSemantic(t, "mid-life replica death", want, got2)
	_ = killed
	if sets2[0].HealthyCount() < 1 {
		t.Fatal("range 0 lost all replicas")
	}
}
