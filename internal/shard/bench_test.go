package shard

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
)

// BenchmarkShardedAllocate measures a warm distributed allocation over the
// in-process transport at K = 1, 2, 4, 8 — the scatter-gather overhead the
// coordinator adds on top of the single-node warm path (BenchmarkIndexColdVsWarm/warm
// is the K-free baseline). Shards are pre-warmed, so steady-state rounds
// draw no samples; the cost is candidate scanning over aggregate counters
// plus per-commit delta gathers.
func BenchmarkShardedAllocate(b *testing.B) {
	inst := testInstance()
	opts := testOpts()
	ctx := context.Background()
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			coord, _, err := NewLocalCluster(inst, 0, 42, k, Config{})
			if err != nil {
				b.Fatal(err)
			}
			if err := coord.Warm(ctx, opts); err != nil {
				b.Fatal(err)
			}
			req := core.Request{Opts: opts}
			if _, err := coord.Allocate(ctx, req); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coord.Allocate(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
