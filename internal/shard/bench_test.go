package shard

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
)

// BenchmarkShardedAllocate measures a warm distributed allocation over the
// in-process transport at K = 1, 2, 4, 8 — the scatter-gather overhead the
// coordinator adds on top of the single-node warm path (BenchmarkIndexColdVsWarm/warm
// is the K-free baseline). Shards are pre-warmed, so steady-state rounds
// draw no samples; the cost is candidate scanning over aggregate counters
// plus per-commit delta gathers.
// BenchmarkAllocateBatch measures batched warm allocation at batch sizes
// 1, 8, and 64 — single-node (core.AllocateBatch over one index) and
// distributed at K = 4 (Coordinator.AllocateBatch, one pilot prime round
// per batch). ns/op is per BATCH, so the per-request cost at B=64 against
// 64× the B=1 number is what batching buys: shared epoch resolution,
// shared pilot widths, and parallel fan-out.
func BenchmarkAllocateBatch(b *testing.B) {
	inst := testInstance()
	opts := testOpts()
	ctx := context.Background()
	sizes := []int{1, 8, 64}
	batch := func(n int) []core.Request {
		reqs := make([]core.Request, n)
		for i := range reqs {
			reqs[i] = core.Request{Opts: opts}
		}
		return reqs
	}

	b.Run("single", func(b *testing.B) {
		idx, err := core.BuildIndex(inst, 42, opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range sizes {
			b.Run(fmt.Sprintf("B=%d", n), func(b *testing.B) {
				reqs := batch(n)
				for _, r := range core.AllocateBatch(idx, reqs) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					core.AllocateBatch(idx, reqs)
				}
			})
		}
	})

	b.Run("K=4", func(b *testing.B) {
		coord, _, err := NewLocalCluster(inst, 0, 42, 4, Config{})
		if err != nil {
			b.Fatal(err)
		}
		if err := coord.Warm(ctx, opts); err != nil {
			b.Fatal(err)
		}
		for _, n := range sizes {
			b.Run(fmt.Sprintf("B=%d", n), func(b *testing.B) {
				reqs := batch(n)
				for _, r := range coord.AllocateBatch(ctx, reqs) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					coord.AllocateBatch(ctx, reqs)
				}
			})
		}
	})
}

func BenchmarkShardedAllocate(b *testing.B) {
	inst := testInstance()
	opts := testOpts()
	ctx := context.Background()
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			coord, _, err := NewLocalCluster(inst, 0, 42, k, Config{})
			if err != nil {
				b.Fatal(err)
			}
			if err := coord.Warm(ctx, opts); err != nil {
				b.Fatal(err)
			}
			req := core.Request{Opts: opts}
			if _, err := coord.Allocate(ctx, req); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coord.Allocate(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
