package shard

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func testInstance() *core.Instance {
	return gen.Flixster(gen.Options{Seed: 1, Scale: 0.01, Kappa: 1})
}

func testOpts() core.TIRMOptions {
	return core.TIRMOptions{Eps: 0.3, MinTheta: 2000, MaxTheta: 20000}
}

// mustEqualResults asserts two allocation results agree on every
// semantically pinned field (MemBytes differs by construction: K inverted
// indexes over slices are not one index over the union).
func mustEqualResults(t *testing.T, label string, want, got *core.TIRMResult) {
	t.Helper()
	if !reflect.DeepEqual(want.Alloc.Seeds, got.Alloc.Seeds) {
		t.Fatalf("%s: seeds diverged\n want %v\n  got %v", label, want.Alloc.Seeds, got.Alloc.Seeds)
	}
	if !reflect.DeepEqual(want.EstRevenue, got.EstRevenue) {
		t.Fatalf("%s: revenues diverged\n want %v\n  got %v", label, want.EstRevenue, got.EstRevenue)
	}
	if !reflect.DeepEqual(want.FinalTheta, got.FinalTheta) {
		t.Fatalf("%s: θ diverged\n want %v\n  got %v", label, want.FinalTheta, got.FinalTheta)
	}
	if !reflect.DeepEqual(want.FinalSeedTarget, got.FinalSeedTarget) {
		t.Fatalf("%s: seed targets diverged\n want %v\n  got %v", label, want.FinalSeedTarget, got.FinalSeedTarget)
	}
	if want.Iterations != got.Iterations {
		t.Fatalf("%s: iterations %d vs %d", label, want.Iterations, got.Iterations)
	}
	if want.TotalSetsSampled != got.TotalSetsSampled {
		t.Fatalf("%s: sets sampled %d vs %d", label, want.TotalSetsSampled, got.TotalSetsSampled)
	}
	if want.SetsReused != got.SetsReused {
		t.Fatalf("%s: sets reused %d vs %d", label, want.SetsReused, got.SetsReused)
	}
}

// TestShardedAllocationGolden is the tentpole's acceptance pin: for
// K ∈ {1, 2, 4, 8}, the coordinator's scatter-gather allocation over the
// in-process transport is byte-identical to core.AllocateFromIndex on a
// single-node index — seeds, revenue estimates, θ evolution, iteration
// count, and sampling/reuse accounting — across request shapes (defaults,
// budget overrides, ad subsets, residual budgets, deeper candidate
// search). Verify mode is on, so every frontier's per-shard gains are also
// cross-checked against the aggregates in flight.
func TestShardedAllocationGolden(t *testing.T) {
	inst := testInstance()
	opts := testOpts()
	const seed = 42

	idx, err := core.BuildIndex(inst, seed, opts)
	if err != nil {
		t.Fatal(err)
	}

	lambda := 0.25
	requests := map[string]core.Request{
		"defaults": {Opts: opts},
		"overrides": {
			Opts:    core.TIRMOptions{Eps: 0.3, MinTheta: 2000, MaxTheta: 20000, CandidateDepth: 2},
			Budgets: []float64{9, 8, 7, 6, 5, 9, 8, 7, 6, 5},
			Lambda:  &lambda,
			Kappa:   core.ConstKappa(2),
		},
		"subset-residual": {
			Opts:        opts,
			Ads:         []int{0, 2, 4, 6, 8},
			SpentBudget: []float64{0, 0, 3, 0, 1e9, 0, 0.5, 0, 0, 0},
		},
	}

	for name, req := range requests {
		want, err := core.AllocateFromIndex(idx, req)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 4, 8} {
			coord, _, err := NewLocalCluster(inst, 0, seed, k, Config{Verify: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := coord.Warm(context.Background(), opts); err != nil {
				t.Fatal(err)
			}
			got, err := coord.Allocate(context.Background(), req)
			if err != nil {
				t.Fatalf("%s K=%d: %v", name, k, err)
			}
			mustEqualResults(t, name+": K="+string(rune('0'+k)), want, got)
		}
	}
}

// TestShardedAllocationHTTPGolden pins transport equivalence: a K=2
// cluster spoken to over HTTP/JSON produces the same bytes as the
// in-process transport (and therefore as the single node) — the protocol
// carries only integers, so serialization cannot perturb the result.
func TestShardedAllocationHTTPGolden(t *testing.T) {
	inst := testInstance()
	opts := testOpts()
	const seed, k = 42, 2

	idx, err := core.BuildIndex(inst, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.AllocateFromIndex(idx, core.Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}

	p, err := NewPartitioner(k)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]Client, k)
	for i := 0; i < k; i++ {
		s, err := NewShard(inst, 0, seed, p.Range(i))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		clients[i] = NewHTTPClient(ts.URL)
	}
	coord, err := NewCoordinator(context.Background(), clients, Config{Roster: inst, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Warm(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	got, err := coord.Allocate(context.Background(), core.Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "http K=2", want, got)
}

// TestShardedLifecycleGolden pins mutation lockstep: after broadcast
// AddAd (roster activation and template clone) and RemoveAd mutations, a
// sharded cluster's allocation still matches a single-node index that
// underwent the identical mutation history — stream-id assignment stays
// aligned shard by shard.
func TestShardedLifecycleGolden(t *testing.T) {
	inst := testInstance()
	opts := testOpts()
	const seed, k = 7, 3
	ctx := context.Background()

	// Single node: start with 6 of the 10 ads, add two, remove one, clone
	// one from a template.
	base := *inst
	base.Ads = append([]core.Ad(nil), inst.Ads[:6]...)
	idx, err := core.BuildIndex(&base, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.AddAd(inst.Ads[6], opts); err != nil {
		t.Fatal(err)
	}
	if err := idx.RemoveAd(2); err != nil {
		t.Fatal(err)
	}
	if _, err := idx.AddAd(inst.Ads[7], opts); err != nil {
		t.Fatal(err)
	}
	spec := AdSpec{Name: "clone", Budget: 7.5, CPE: 2.5, CTP: 0.05, Template: 1}
	cloned, err := specToAd(idx.Inst(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.AddAd(cloned, opts); err != nil {
		t.Fatal(err)
	}
	want, err := core.AllocateFromIndex(idx, core.Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}

	coord, shards, err := NewLocalCluster(inst, 6, seed, k, Config{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Warm(ctx, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.AddAdBase(ctx, 6, opts); err != nil {
		t.Fatal(err)
	}
	if err := coord.RemoveAd(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.AddAdBase(ctx, 7, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.AddAdSpec(ctx, spec, opts); err != nil {
		t.Fatal(err)
	}
	if coord.Epoch() != idx.Epoch() {
		t.Fatalf("cluster epoch %d, single-node %d", coord.Epoch(), idx.Epoch())
	}
	for i, s := range shards {
		if got := s.Index().Epoch(); got != idx.Epoch() {
			t.Fatalf("shard %d epoch %d, single-node %d", i, got, idx.Epoch())
		}
	}
	got, err := coord.Allocate(ctx, core.Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "lifecycle K=3", want, got)

	// The coordinator's campaign mirror must match the single node's
	// instance ad for ad (names and budgets drive serve-layer reporting).
	mi, si := coord.Inst(), idx.Inst()
	if len(mi.Ads) != len(si.Ads) {
		t.Fatalf("mirror has %d ads, single-node %d", len(mi.Ads), len(si.Ads))
	}
	for i := range mi.Ads {
		if mi.Ads[i].Name != si.Ads[i].Name || mi.Ads[i].Budget != si.Ads[i].Budget {
			t.Fatalf("mirror ad %d = %q/%g, single-node %q/%g",
				i, mi.Ads[i].Name, mi.Ads[i].Budget, si.Ads[i].Name, si.Ads[i].Budget)
		}
	}
}

// TestShardedSoftCoverageRejected pins the documented limitation.
func TestShardedSoftCoverageRejected(t *testing.T) {
	inst := testInstance()
	coord, _, err := NewLocalCluster(inst, 0, 1, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	opts := testOpts()
	opts.SoftCoverage = true
	if _, err := coord.Allocate(context.Background(), core.Request{Opts: opts}); err == nil {
		t.Fatal("soft coverage must be rejected by sharded allocation")
	}
}

// TestCoordinatorRefusesMutatedCluster pins the restart-safety check: a
// fresh coordinator mirrors the campaign as a roster prefix, so fronting
// a live cluster whose campaign has been mutated (positions no longer the
// roster prefix) must be refused via the campaign fingerprint instead of
// silently mis-pricing ads.
func TestCoordinatorRefusesMutatedCluster(t *testing.T) {
	inst := testInstance()
	opts := testOpts()
	ctx := context.Background()
	coord, shards, err := NewLocalCluster(inst, 6, 5, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.AddAdBase(ctx, 6, opts); err != nil {
		t.Fatal(err)
	}
	if err := coord.RemoveAd(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// A "restarted" coordinator over the same (still-mutated) shards:
	clients := make([]Client, len(shards))
	for i, s := range shards {
		clients[i] = LocalClient{S: s}
	}
	if _, err := NewCoordinator(ctx, clients, Config{Roster: inst}); err == nil {
		t.Fatal("coordinator accepted a mutated cluster it cannot mirror")
	}
}
