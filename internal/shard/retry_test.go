// Tests for the deadline/retry/backoff layer: error classification over
// every wire code, deterministic seeded backoff, retry-until-healed and
// never-retry-terminal behavior, and the retry metrics.

package shard

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrorClass
	}{
		{"canceled", context.Canceled, ClassTerminal},
		{"staleEpoch", ErrStaleEpoch, ClassTerminal},
		{"staleEpochWrapped", fmt.Errorf("shard 3: %w", ErrStaleEpoch), ClassTerminal},
		{"unknownRun", ErrUnknownRun, ClassFailover},
		{"badSeq", ErrBadSeq, ClassFailover},
		{"draining", ErrDraining, ClassFailover},
		{"deadline", context.DeadlineExceeded, ClassRetryable},
		{"deadlineWrapped", fmt.Errorf("post: %w", context.DeadlineExceeded), ClassRetryable},
		{"rpc500", &RPCError{Status: 500, Msg: "boom"}, ClassRetryable},
		{"rpc503", &RPCError{Status: 503, Msg: "overloaded"}, ClassRetryable},
		{"rpc400", &RPCError{Status: 400, Msg: "bad body"}, ClassTerminal},
		{"rpc404", &RPCError{Status: 404, Msg: "no route"}, ClassTerminal},
		{"injected", ErrInjected, ClassRetryable},
		{"connection", errors.New("dial tcp: connection refused"), ClassRetryable},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%s) = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestClassifyWireCodes walks the full HTTP error mapping: every 4xx the
// transport can hand back must be terminal or failover — never blind-retried
// against the same replica — and plain 5xx must stay retryable.
func TestClassifyWireCodes(t *testing.T) {
	for status := 400; status < 500; status++ {
		if got := Classify(errOf(status, "x")); got == ClassRetryable {
			t.Errorf("status %d classified retryable", status)
		}
	}
	for _, status := range []int{500, 502, 504} {
		if got := Classify(errOf(status, "x")); got != ClassRetryable {
			t.Errorf("status %d classified %d, want retryable", status, got)
		}
	}
	// 503 is the drain signal: another replica can serve, the same one won't.
	if got := Classify(errOf(503, "draining")); got != ClassFailover {
		t.Errorf("status 503 classified %d, want failover", got)
	}
}

// FuzzRetryClassification asserts the wire-blind invariant the retry loop
// depends on: no 4xx response, whatever its body, ever classifies as
// retryable (a client-side bug would otherwise hammer a shard with a
// request it already rejected).
func FuzzRetryClassification(f *testing.F) {
	for _, status := range []int{400, 404, 409, 412, 422, 404, 451, 499, 500, 503} {
		f.Add(status, "some error body")
	}
	f.Fuzz(func(t *testing.T, status int, msg string) {
		if status < 400 || status > 599 {
			t.Skip()
		}
		err := errOf(status, msg)
		if status < 500 && Classify(err) == ClassRetryable {
			t.Fatalf("status %d (%q) classified retryable", status, msg)
		}
	})
}

func TestBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Seed: 7}
	a := NewRetryClient(nil, p, nil).(*retryClient)
	b := NewRetryClient(nil, p, nil).(*retryClient)
	other := NewRetryClient(nil, RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Seed: 8}, nil).(*retryClient)
	var seqA, seqB, seqO []time.Duration
	for i := 1; i <= 8; i++ {
		seqA = append(seqA, a.backoff(i))
		seqB = append(seqB, b.backoff(i))
		seqO = append(seqO, other.backoff(i))
	}
	same := true
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, seqA[i], seqB[i])
		}
		if seqA[i] != seqO[i] {
			same = false
		}
		// Bounds: jitter is [½, 1)× the capped exponential.
		cap := p.BaseBackoff << uint(i)
		if cap <= 0 || cap > p.MaxBackoff {
			cap = p.MaxBackoff
		}
		if seqA[i] < cap/4 || seqA[i] >= cap {
			t.Errorf("backoff(%d) = %v out of (%v, %v)", i+1, seqA[i], cap/4, cap)
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

// errorClient fails one op a fixed number of times, then delegates.
type errorClient struct {
	Client
	err   error
	fails int
	calls int
}

func (c *errorClient) Info(ctx context.Context) (ShardInfo, error) {
	c.calls++
	if c.calls <= c.fails || c.fails < 0 {
		return ShardInfo{}, c.err
	}
	return ShardInfo{Shard: 0, NumShards: 1}, nil
}

func TestRetryHealsTransientFailures(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg, "test")
	ec := &errorClient{err: &RPCError{Status: 500, Msg: "transient"}, fails: 2}
	cl := NewRetryClient(ec, RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond}, m)
	if _, err := cl.Info(context.Background()); err != nil {
		t.Fatalf("Info after 2 transient failures: %v", err)
	}
	if ec.calls != 3 {
		t.Fatalf("calls = %d, want 3", ec.calls)
	}
	if got := m.retries.With("info", "server").Value(); got != 2 {
		t.Fatalf("retries{info,server} = %d, want 2", got)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	ec := &errorClient{err: errors.New("connection refused"), fails: -1}
	cl := NewRetryClient(ec, RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond}, nil)
	if _, err := cl.Info(context.Background()); err == nil {
		t.Fatal("expected error after exhausting attempts")
	}
	if ec.calls != 3 {
		t.Fatalf("calls = %d, want 3", ec.calls)
	}
}

func TestRetryNeverRetriesTerminal(t *testing.T) {
	for _, terminal := range []error{ErrStaleEpoch, &RPCError{Status: 400, Msg: "bad"}} {
		ec := &errorClient{err: terminal, fails: -1}
		cl := NewRetryClient(ec, RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond}, nil)
		if _, err := cl.Info(context.Background()); err == nil {
			t.Fatal("expected terminal error to propagate")
		}
		if ec.calls != 1 {
			t.Fatalf("terminal %v retried: %d calls", terminal, ec.calls)
		}
	}
}

func TestRetryStopsOnCallerCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ec := &errorClient{err: errors.New("refused"), fails: -1}
	cl := NewRetryClient(ec, RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond}, nil)
	if _, err := cl.Info(ctx); err == nil {
		t.Fatal("expected error under cancelled context")
	}
	if ec.calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retries past caller cancellation)", ec.calls)
	}
}
