// Deadline/retry/backoff decorator for shard clients. RetryClient is a
// transport-blind sibling of InstrumentClient: every RPC gets a per-attempt
// deadline sized to its op class (fast coverage ops vs sampling-heavy
// ones), transient failures retry under capped exponential backoff with
// deterministic seeded jitter, and terminal failures (stale epoch, bad
// request, sequence gap) propagate immediately. Retrying a Commit/Credit/
// Grow is safe because the requests carry sequence numbers and the shard's
// run state is level-triggered (see CommitRequest.Seq): a replayed op whose
// first attempt applied returns the cached reply instead of re-applying.
// Pilot/Ensure/Start/Gains/Info are naturally idempotent — deterministic
// streams make repeated sampling converge to identical state.

package shard

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/xrand"
)

// ErrorClass buckets RPC failures for the retry and failover layers.
type ErrorClass int

const (
	// ClassRetryable marks transient failures — timeouts, connection
	// errors, 5xx — worth retrying against the same replica.
	ClassRetryable ErrorClass = iota
	// ClassFailover marks failures the same replica cannot heal (it is
	// draining, missing the run, or out of sequence) but another replica
	// of the range can serve, possibly after a state replay.
	ClassFailover
	// ClassTerminal marks failures no retry or failover fixes: the request
	// itself is stale or malformed (stale epoch, 4xx, cancellation).
	ClassTerminal
)

// Classify buckets an RPC error. Transport-blind: sentinels and RPCError
// survive the HTTP mapping (see errOf), and anything unrecognized — raw
// connection errors, unexpected transport failures — defaults to
// retryable, the safe bucket now that sequenced run ops are replay-proof.
func Classify(err error) ErrorClass {
	switch {
	case err == nil:
		return ClassRetryable
	case errors.Is(err, context.Canceled):
		return ClassTerminal
	case errors.Is(err, ErrStaleEpoch):
		return ClassTerminal
	case errors.Is(err, ErrUnknownRun), errors.Is(err, ErrBadSeq), errors.Is(err, ErrDraining):
		return ClassFailover
	case errors.Is(err, context.DeadlineExceeded):
		return ClassRetryable
	default:
		var rpc *RPCError
		if errors.As(err, &rpc) {
			if rpc.Status >= 500 {
				return ClassRetryable
			}
			return ClassTerminal
		}
		return ClassRetryable
	}
}

// retryReason labels a retry for the shard_rpc_retries_total metric with
// bounded cardinality: timeout, draining, server (5xx), or connection
// (anything else transient).
func retryReason(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, ErrDraining):
		return "draining"
	default:
		var rpc *RPCError
		if errors.As(err, &rpc) {
			return "server"
		}
		return "connection"
	}
}

// RetryPolicy shapes a RetryClient. The zero value is usable: every field
// defaults via WithDefaults.
type RetryPolicy struct {
	// MaxAttempts is the total tries per RPC, first attempt included
	// (default 3).
	MaxAttempts int
	// Timeout is the per-attempt deadline for fast ops — info, commit,
	// credit, gains, end, removeAd, syncEstimates (default 30s).
	Timeout time.Duration
	// SamplingTimeout is the per-attempt deadline for ops that may draw
	// fresh RR sets — pilot, ensure, start, grow, addAd — whose cost
	// scales with θ (default 10× Timeout).
	SamplingTimeout time.Duration
	// BaseBackoff is the first retry's backoff ceiling; attempt i waits
	// BaseBackoff·2^(i-1) capped at MaxBackoff, jittered into
	// [½, 1)× deterministically (default 25ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 2s).
	MaxBackoff time.Duration
	// Seed seeds the jitter stream; a fixed seed makes the whole backoff
	// sequence deterministic (default 1).
	Seed uint64
	// Label tags this client's RPC spans with a replica identity
	// ("range/replica", e.g. "0/1") so a waterfall shows which replica
	// served each attempt loop. Empty adds no attribute.
	Label string
}

// WithDefaults fills unset fields with the documented defaults.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.Timeout <= 0 {
		p.Timeout = 30 * time.Second
	}
	if p.SamplingTimeout <= 0 {
		p.SamplingTimeout = 10 * p.Timeout
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 25 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// NewRetryClient wraps cl with the policy's deadline/retry/backoff
// behavior. m, when non-nil, books each retry under
// prefix_shard_rpc_retries_total{op,reason}. Wrap order in a replicated
// stack is ReplicaSet(RetryClient(InstrumentClient(transport))): the
// instrument layer then meters every attempt individually.
func NewRetryClient(cl Client, p RetryPolicy, m *Metrics) Client {
	return &retryClient{cl: cl, p: p.WithDefaults(), m: m, rng: xrand.New(p.WithDefaults().Seed)}
}

// retryClient decorates a Client with deadlines, retries, and backoff.
type retryClient struct {
	cl Client
	p  RetryPolicy
	m  *Metrics

	mu  sync.Mutex // guards rng: concurrent RPCs share the jitter stream
	rng *xrand.Rand
}

// backoff returns the wait before retry `attempt` (1-based): capped
// exponential with deterministic jitter in [½, 1)× the cap.
func (c *retryClient) backoff(attempt int) time.Duration {
	d := c.p.BaseBackoff << uint(attempt-1)
	if d <= 0 || d > c.p.MaxBackoff {
		d = c.p.MaxBackoff
	}
	c.mu.Lock()
	f := 0.5 + 0.5*c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// do runs one RPC under the retry loop. sampling selects the deadline
// class. One span ("rpc.<op>") covers the whole attempt loop — retries
// land on it as "retry.<reason>" events (and flag the trace for
// tail-retention), so a retry storm is visible inside the very trace it
// slowed down.
func (c *retryClient) do(ctx context.Context, op string, sampling bool, fn func(ctx context.Context) error) error {
	timeout := c.p.Timeout
	if sampling {
		timeout = c.p.SamplingTimeout
	}
	ctx, span := obs.StartSpan(ctx, "rpc."+op)
	if span != nil && c.p.Label != "" {
		span.SetStr("replica", c.p.Label)
	}
	var err error
	for attempt := 1; ; attempt++ {
		actx, cancel := context.WithTimeout(ctx, timeout)
		err = fn(actx)
		cancel()
		if err == nil {
			span.End()
			return nil
		}
		if ctx.Err() != nil {
			// The caller's own context expired or was cancelled — not the
			// per-attempt deadline. Never retry past it.
			span.EndErr(err)
			return err
		}
		if Classify(err) != ClassRetryable || attempt >= c.p.MaxAttempts {
			span.EndErr(err)
			return err
		}
		reason := retryReason(err)
		if c.m != nil {
			c.m.retries.With(op, reason).Inc()
		}
		span.Event("retry."+reason, obs.Int("attempt", int64(attempt)))
		span.Retain(obs.RetainRetry)
		select {
		case <-time.After(c.backoff(attempt)):
		case <-ctx.Done():
			span.EndErr(err)
			return err
		}
	}
}

// Info implements Client.
func (c *retryClient) Info(ctx context.Context) (ShardInfo, error) {
	var out ShardInfo
	err := c.do(ctx, "info", false, func(ctx context.Context) error {
		var err error
		out, err = c.cl.Info(ctx)
		return err
	})
	return out, err
}

// Pilot implements Client.
func (c *retryClient) Pilot(ctx context.Context, req PilotRequest) (PilotReply, error) {
	var out PilotReply
	err := c.do(ctx, "pilot", true, func(ctx context.Context) error {
		var err error
		out, err = c.cl.Pilot(ctx, req)
		return err
	})
	return out, err
}

// Ensure implements Client.
func (c *retryClient) Ensure(ctx context.Context, req EnsureRequest) (EnsureReply, error) {
	var out EnsureReply
	err := c.do(ctx, "ensure", true, func(ctx context.Context) error {
		var err error
		out, err = c.cl.Ensure(ctx, req)
		return err
	})
	return out, err
}

// Start implements Client.
func (c *retryClient) Start(ctx context.Context, req StartRequest) (StartReply, error) {
	var out StartReply
	err := c.do(ctx, "start", true, func(ctx context.Context) error {
		var err error
		out, err = c.cl.Start(ctx, req)
		return err
	})
	return out, err
}

// Commit implements Client.
func (c *retryClient) Commit(ctx context.Context, req CommitRequest) (CommitReply, error) {
	var out CommitReply
	err := c.do(ctx, "commit", false, func(ctx context.Context) error {
		var err error
		out, err = c.cl.Commit(ctx, req)
		return err
	})
	return out, err
}

// Credit implements Client.
func (c *retryClient) Credit(ctx context.Context, req CreditRequest) (CommitReply, error) {
	var out CommitReply
	err := c.do(ctx, "credit", false, func(ctx context.Context) error {
		var err error
		out, err = c.cl.Credit(ctx, req)
		return err
	})
	return out, err
}

// Grow implements Client.
func (c *retryClient) Grow(ctx context.Context, req GrowRequest) (GrowReply, error) {
	var out GrowReply
	err := c.do(ctx, "grow", true, func(ctx context.Context) error {
		var err error
		out, err = c.cl.Grow(ctx, req)
		return err
	})
	return out, err
}

// Gains implements Client.
func (c *retryClient) Gains(ctx context.Context, req GainsRequest) (GainsReply, error) {
	var out GainsReply
	err := c.do(ctx, "gains", false, func(ctx context.Context) error {
		var err error
		out, err = c.cl.Gains(ctx, req)
		return err
	})
	return out, err
}

// End implements Client.
func (c *retryClient) End(ctx context.Context, runID string) error {
	return c.do(ctx, "end", false, func(ctx context.Context) error {
		return c.cl.End(ctx, runID)
	})
}

// AddAd implements Client.
func (c *retryClient) AddAd(ctx context.Context, req AddAdRequest) (MutateReply, error) {
	var out MutateReply
	err := c.do(ctx, "addAd", true, func(ctx context.Context) error {
		var err error
		out, err = c.cl.AddAd(ctx, req)
		return err
	})
	return out, err
}

// RemoveAd implements Client.
func (c *retryClient) RemoveAd(ctx context.Context, req RemoveAdRequest) (MutateReply, error) {
	var out MutateReply
	err := c.do(ctx, "removeAd", false, func(ctx context.Context) error {
		var err error
		out, err = c.cl.RemoveAd(ctx, req)
		return err
	})
	return out, err
}

// SyncEstimates implements Client.
func (c *retryClient) SyncEstimates(ctx context.Context, req SyncEstimatesRequest) error {
	return c.do(ctx, "syncEstimates", false, func(ctx context.Context) error {
		return c.cl.SyncEstimates(ctx, req)
	})
}

// Interface compliance.
var _ Client = (*retryClient)(nil)
