// Package sim runs deterministic campaign-lifecycle workloads against the
// reusable RR-set index: advertisers join and leave over discrete rounds,
// engagements accrue and deplete budgets (scored by the neutral eval
// layer), and the host periodically re-allocates against the residual
// budgets B_i − spent_i. The output is a regret-over-time trace — the
// paper's Eq. 3/4 objective replayed as an online process, which is the
// workload the ROADMAP's "serve continuous traffic" north star asks for
// and the follow-up literature (adaptive/online social advertising)
// studies directly.
//
// Everything is a pure function of (instance, seed, Config): events draw
// from a split of the seed, each round's Monte Carlo engagement scoring
// from another, and allocation inherits the index stream's determinism —
// so a trace is bit-reproducible at any GOMAXPROCS, which the tests pin.
package sim

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bandit"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/xrand"
)

// Config shapes a lifecycle run. The zero value gets the defaults noted on
// each field.
type Config struct {
	// InitialAds is how many of the instance's ads are live at round 1;
	// the rest queue as future arrivals (default: half, at least 1).
	InitialAds int
	// Rounds is the number of simulated rounds (default 24).
	Rounds int
	// ReallocEvery re-allocates every k rounds even without campaign
	// churn (default 4). Churn rounds always re-allocate.
	ReallocEvery int
	// ArrivalProb is the per-round probability that the next queued ad
	// joins (default 0.3; ignored once the queue is empty; negative
	// disables arrivals).
	ArrivalProb float64
	// DepartProb is the per-round probability that a uniformly chosen
	// live ad leaves (default 0.08; never drops the last ad; negative
	// disables departures).
	DepartProb float64
	// EngagementRate converts each round's Monte Carlo revenue estimate
	// into budget depletion: spent_i += rate·Π̂_i, capped at B_i
	// (default 0.2).
	EngagementRate float64
	// EvalRuns is the Monte Carlo cascade count per ad per round
	// (default 400).
	EvalRuns int
	// Opts are the TIRM options for index presampling and every
	// re-allocation.
	Opts core.TIRMOptions
	// Kernel selects the coverage kernel every re-allocation runs on
	// (core.Request.Kernel semantics: "" or "auto" picks by density,
	// "sparse"/"bitset" force). The trace is kernel-independent — kernels
	// change sweep cost, never an allocation's content.
	Kernel string
	// Shards, when ≥ 2, runs the whole lifecycle against an in-process
	// sharded cluster (internal/shard): K shard indexes behind a
	// scatter-gather coordinator, with campaign churn broadcast in
	// lockstep. The trace is bit-identical to the single-node run — the
	// distributed hot path replayed under the exact same workload, which
	// TestLifecycleShardedMatchesSingleNode pins.
	Shards int
	// Replicas, when > 1 (with Shards ≥ 2), serves every partition range
	// with that many in-process replicas behind failover ReplicaSets. The
	// semantic trace (allocations, revenues, regret) stays bit-identical;
	// only sampling accounting may shift when chaos forces failovers.
	Replicas int
	// ChaosSeed, when nonzero (with Shards ≥ 2), splices a deterministic
	// fault injector under every replica client: each RPC fails with
	// probability 5% from a stream seeded by (ChaosSeed, slot, replica),
	// healed by the retry layer and replica failover. The semantic trace
	// must match the fault-free run — TestLifecycleChaosMatches pins it.
	ChaosSeed uint64
	// Bandit, when non-empty, runs the lifecycle in online-CPE-learning
	// mode with the named bandit policy ("ucb", "thompson", or the
	// never-update baseline "frozen"). Each ad gets a hidden true
	// engagement rate q_j (a deterministic function of its name); the
	// Monte Carlo engagement events of every round feed a
	// bandit.Estimator, re-allocations consume the estimator's
	// effective-CPE overrides, and each round additionally scores a
	// known-CPE oracle allocation (CPE_j·q_j) on the same paired eval
	// stream. The trace then carries the cumulative regret of the
	// learning policy against that oracle — bit-reproducible at any
	// Shards setting. Empty keeps the classic known-CPE lifecycle,
	// byte-identical to previous releases.
	Bandit string
	// Tracer, when non-nil (with Shards ≥ 2), opens one "sim.allocate"
	// root span per sharded allocation so lifecycle runs leave
	// inspectable span trees: retry and failover events raised inside
	// the coordinator's round/RPC layers flag their trace for tail
	// retention, which is how a chaos run proves its failovers were
	// traced. Nil traces nothing; the semantic trace is identical
	// either way.
	Tracer *obs.Tracer
}

func (c Config) withDefaults(numAds int) Config {
	if c.InitialAds <= 0 {
		c.InitialAds = (numAds + 1) / 2
	}
	if c.InitialAds > numAds {
		c.InitialAds = numAds
	}
	if c.Rounds <= 0 {
		c.Rounds = 24
	}
	if c.ReallocEvery <= 0 {
		c.ReallocEvery = 4
	}
	if c.ArrivalProb == 0 {
		c.ArrivalProb = 0.3
	}
	if c.DepartProb == 0 {
		c.DepartProb = 0.08
	}
	if c.EngagementRate <= 0 {
		c.EngagementRate = 0.2
	}
	if c.EvalRuns <= 0 {
		c.EvalRuns = 400
	}
	return c
}

// RoundReport is one round of the trace.
type RoundReport struct {
	// Round numbers from 1.
	Round int
	// Events lists campaign churn this round ("join:name", "leave:name").
	Events []string
	// NumAds is the live campaign count after churn.
	NumAds int
	// Epoch is the index epoch after churn (see core.Index.Epoch).
	Epoch uint64
	// Reallocated reports whether the host re-ran selection this round.
	Reallocated bool
	// SetsSampled counts RR-sets freshly drawn by this round's
	// re-allocation (0 on warm rounds — the steady state).
	SetsSampled int64
	// TotalSeeds is Σ|S_i| of the standing allocation.
	TotalSeeds int
	// Revenue is the round's Monte Carlo estimate of Σ Π_i(S_i).
	Revenue float64
	// SpendDelta is the budget spent this round across ads.
	SpendDelta float64
	// SpentTotal is cumulative spend across live ads.
	SpentTotal float64
	// ResidualBudget is Σ max(B_i − spent_i, 0) over live ads.
	ResidualBudget float64
	// Regret is Σ |(B_i − spent_i) − Π̂_i(S_i)| + λ|S_i| — Eq. 3 against
	// the residual budgets, the quantity re-allocation minimizes.
	Regret float64
	// RegretOverBudget is Regret / Σ B_i over live ads (the paper's
	// reporting unit).
	RegretOverBudget float64
	// OracleRevenue is the round's q-scaled revenue of the known-CPE
	// oracle allocation (bandit mode only; 0 otherwise).
	OracleRevenue float64
	// OracleRegret is the oracle allocation's Eq. 3 score this round
	// (bandit mode only).
	OracleRegret float64
	// BanditRegret is the cumulative learning regret through this round:
	// Σ over rounds of (Regret − OracleRegret). Bandit mode only.
	BanditRegret float64
}

// AdFate is one advertiser's end-of-run bookkeeping.
type AdFate struct {
	// Name is the ad's name.
	Name string
	// Budget is B_i.
	Budget float64
	// Spent is the cumulative engagement spend when the run ended (or the
	// ad departed).
	Spent float64
	// Joined is the round the ad went live (0 = live from the start).
	Joined int
	// Departed is the round the ad left (0 = still live at the end).
	Departed int
}

// Result is a full lifecycle trace.
type Result struct {
	// Trace has one entry per round.
	Trace []RoundReport
	// Ads reports every advertiser that was ever live.
	Ads []AdFate
	// FinalEpoch is the index epoch after the last round.
	FinalEpoch uint64
	// TotalSetsSampled counts every RR-set drawn over the run (initial
	// build plus all re-allocation growth).
	TotalSetsSampled int64
	// Reallocations counts selection runs.
	Reallocations int
	// CumulativeRegret is the final cumulative learning regret against
	// the known-CPE oracle (bandit mode only; 0 otherwise).
	CumulativeRegret float64
	// Estimator is the final estimator snapshot (nil unless bandit mode).
	Estimator *bandit.State
}

// engine abstracts where the lifecycle's index lives: a single-node
// core.Index or a sharded cluster behind a coordinator. Both are driven by
// the identical event stream, and both produce the identical trace.
type engine interface {
	// Inst returns the current campaign instance.
	Inst() *core.Instance
	// EpochInst returns the current epoch and instance as one pair.
	EpochInst() (uint64, *core.Instance)
	// Epoch returns the current campaign epoch.
	Epoch() uint64
	// AddAd activates the arrival at roster position rosterPos (= the
	// index the ad had in the full instance).
	AddAd(rosterPos int, ad core.Ad, opts core.TIRMOptions) error
	// RemoveAd retires the campaign position.
	RemoveAd(pos int) error
	// Allocate runs one selection.
	Allocate(req core.Request) (*core.TIRMResult, error)
	// SetsSampled reports lifetime RR-sets drawn.
	SetsSampled() (int64, error)
}

// coreEngine drives a single-node index.
type coreEngine struct {
	idx  *core.Index
	pool *core.WorkspacePool
}

func (e *coreEngine) Inst() *core.Instance                { return e.idx.Inst() }
func (e *coreEngine) EpochInst() (uint64, *core.Instance) { return e.idx.EpochInst() }
func (e *coreEngine) Epoch() uint64                       { return e.idx.Epoch() }
func (e *coreEngine) AddAd(_ int, ad core.Ad, opts core.TIRMOptions) error {
	_, err := e.idx.AddAd(ad, opts)
	return err
}
func (e *coreEngine) RemoveAd(pos int) error { return e.idx.RemoveAd(pos) }
func (e *coreEngine) Allocate(req core.Request) (*core.TIRMResult, error) {
	req.Pool = e.pool
	return core.AllocateFromIndex(e.idx, req)
}
func (e *coreEngine) SetsSampled() (int64, error) { return e.idx.SetsSampled(), nil }

// shardEngine drives an in-process sharded cluster. A non-nil tracer
// roots every allocation in a span so coordinator-level retry/failover
// events have a trace to retain.
type shardEngine struct {
	coord  *shard.Coordinator
	tracer *obs.Tracer
}

func (e *shardEngine) Inst() *core.Instance                { return e.coord.Inst() }
func (e *shardEngine) EpochInst() (uint64, *core.Instance) { return e.coord.EpochInst() }
func (e *shardEngine) Epoch() uint64                       { return e.coord.Epoch() }
func (e *shardEngine) AddAd(rosterPos int, _ core.Ad, opts core.TIRMOptions) error {
	_, err := e.coord.AddAdBase(context.Background(), rosterPos, opts)
	return err
}
func (e *shardEngine) RemoveAd(pos int) error { return e.coord.RemoveAd(context.Background(), pos) }
func (e *shardEngine) Allocate(req core.Request) (*core.TIRMResult, error) {
	ctx := context.Background()
	if e.tracer == nil {
		return e.coord.Allocate(ctx, req)
	}
	ctx, span := e.tracer.StartSpan(ctx, "sim.allocate")
	res, err := e.coord.Allocate(ctx, req)
	span.EndErr(err)
	return res, err
}
func (e *shardEngine) SetsSampled() (int64, error) {
	return e.coord.SetsSampled(context.Background())
}

// chaosWrap builds the replica-client decorator for chaos mode: a
// deterministic fault injector (5% of RPCs fail, from a per-replica
// stream split off chaosSeed) under a fast retry layer, so the lifecycle
// exercises retry + failover on every run while staying bit-reproducible.
// A zero chaosSeed returns nil — plain replication, no faults.
func chaosWrap(chaosSeed uint64) func(slot, rep int, cl shard.Client) shard.Client {
	if chaosSeed == 0 {
		return nil
	}
	return func(slot, rep int, cl shard.Client) shard.Client {
		sub := xrand.New(chaosSeed).Split(uint64(slot)).Split(uint64(rep)).Seed()
		fc := shard.NewFaultClient(cl, sub, shard.FaultRule{Op: "*", Kind: shard.FaultError, Prob: 0.05})
		// In-process: backoff time is pure overhead, so keep it microscopic;
		// determinism comes from the seeds, not the clock.
		return shard.NewRetryClient(fc, shard.RetryPolicy{
			BaseBackoff: time.Microsecond,
			MaxBackoff:  time.Microsecond,
			Seed:        sub + 1,
		}, nil)
	}
}

// banditState carries the online-learning side of a bandit-mode run: the
// estimator under test, the feedback event stream, and the oracle's
// standing allocation for the regret comparison.
type banditState struct {
	est         bandit.Estimator
	fbRoot      *xrand.Rand
	oracleSeeds map[string][]int32
	cum         float64
}

// trueEngagementRate is the hidden per-ad engagement probability q_j a
// bandit-mode run must learn: a deterministic hash of the ad name spread
// over [0.35, 0.95], so the workload mixes strong and weak campaigns
// without any extra configuration or RNG draw.
func trueEngagementRate(name string) float64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	return 0.35 + 0.6*float64(h%10000)/10000
}

// trueCPEs returns the oracle's effective CPEs, CPE_j·q_j.
func trueCPEs(curr *core.Instance) []float64 {
	out := make([]float64, len(curr.Ads))
	for j, ad := range curr.Ads {
		out[j] = ad.CPE * trueEngagementRate(ad.Name)
	}
	return out
}

// learnedCPEs returns the estimator's effective CPEs, CPE_j·index_j.
func (bs *banditState) learnedCPEs(curr *core.Instance) []float64 {
	names := make([]string, len(curr.Ads))
	base := make([]float64, len(curr.Ads))
	for j, ad := range curr.Ads {
		names[j] = ad.Name
		base[j] = ad.CPE
	}
	return bs.est.Overrides(names, base)
}

// Run simulates the lifecycle workload over inst's advertisers: the first
// Config.InitialAds are live at round 1, the rest arrive in order as the
// event stream fires. Deterministic for a fixed (inst, seed, cfg) — at any
// Config.Shards setting.
func Run(inst *core.Instance, seed uint64, cfg Config) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(len(inst.Ads))

	initial := make([]core.Ad, cfg.InitialAds)
	copy(initial, inst.Ads[:cfg.InitialAds])
	queue := inst.Ads[cfg.InitialAds:]
	var idx engine
	if cfg.Shards >= 2 {
		var coord *shard.Coordinator
		var err error
		if cfg.Replicas > 1 || cfg.ChaosSeed != 0 {
			coord, _, _, err = shard.NewReplicaCluster(inst, cfg.InitialAds, seed, cfg.Shards,
				cfg.Replicas, shard.Config{}, chaosWrap(cfg.ChaosSeed))
		} else {
			coord, _, err = shard.NewLocalCluster(inst, cfg.InitialAds, seed, cfg.Shards, shard.Config{})
		}
		if err != nil {
			return nil, err
		}
		// Warm mirrors BuildIndex's presampling, so round-by-round growth
		// accounting matches the single-node trace exactly.
		if err := coord.Warm(context.Background(), cfg.Opts); err != nil {
			return nil, err
		}
		idx = &shardEngine{coord: coord, tracer: cfg.Tracer}
	} else {
		base := *inst
		base.Ads = initial
		built, err := core.BuildIndex(&base, seed, cfg.Opts)
		if err != nil {
			return nil, err
		}
		// One pool for the whole run: every periodic/churn re-allocation
		// after the first recycles its selection workspace, which is what
		// keeps the lifecycle loop's steady-state rounds allocation-quiet.
		idx = &coreEngine{idx: built, pool: &core.WorkspacePool{}}
	}

	events := xrand.New(seed).Split(0xe7e)
	evalRoot := xrand.New(seed).Split(0x5c0)
	nextRoster := cfg.InitialAds // roster position of the next arrival

	// Bandit mode: all extra streams and state are split off up front, so
	// the classic (Bandit == "") event and eval streams are untouched and
	// existing traces replay byte-identically.
	var bs *banditState
	if cfg.Bandit != "" {
		est, err := bandit.New(cfg.Bandit, xrand.New(seed).Split(0xba4d17).Seed())
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		bs = &banditState{
			est:         est,
			fbRoot:      xrand.New(seed).Split(0xfeedb4),
			oracleSeeds: map[string][]int32{},
		}
	}

	res := &Result{Trace: make([]RoundReport, 0, cfg.Rounds)}
	fates := make(map[string]*AdFate, len(inst.Ads))
	var fateOrder []string
	for _, ad := range initial {
		fates[ad.Name] = &AdFate{Name: ad.Name, Budget: ad.Budget}
		fateOrder = append(fateOrder, ad.Name)
	}
	spent := map[string]float64{} // live ads only, by name
	seeds := map[string][]int32{} // standing allocation, by name
	needRealloc := true

	for r := 1; r <= cfg.Rounds; r++ {
		rep := RoundReport{Round: r}

		// Campaign churn: at most one departure and one arrival per round,
		// drawn from the event stream in a fixed order.
		if curr := idx.Inst(); len(curr.Ads) > 1 && events.Bernoulli(cfg.DepartProb) {
			pos := events.IntN(len(curr.Ads))
			name := curr.Ads[pos].Name
			if err := idx.RemoveAd(pos); err != nil {
				return nil, fmt.Errorf("sim: round %d remove %q: %w", r, name, err)
			}
			fates[name].Spent = spent[name]
			fates[name].Departed = r
			delete(spent, name)
			delete(seeds, name)
			if bs != nil {
				delete(bs.oracleSeeds, name)
			}
			rep.Events = append(rep.Events, "leave:"+name)
			needRealloc = true
		}
		if len(queue) > 0 && events.Bernoulli(cfg.ArrivalProb) {
			ad := queue[0]
			queue = queue[1:]
			if err := idx.AddAd(nextRoster, ad, cfg.Opts); err != nil {
				return nil, fmt.Errorf("sim: round %d add %q: %w", r, ad.Name, err)
			}
			nextRoster++
			fates[ad.Name] = &AdFate{Name: ad.Name, Budget: ad.Budget, Joined: r}
			fateOrder = append(fateOrder, ad.Name)
			rep.Events = append(rep.Events, "join:"+ad.Name)
			needRealloc = true
		}

		epoch, curr := idx.EpochInst()
		rep.Epoch = epoch
		rep.NumAds = len(curr.Ads)

		// Periodic (and churn-triggered) re-allocation against residual
		// budgets: the regret-minimizing replay of Eq. 3.
		if needRealloc || (r-1)%cfg.ReallocEvery == 0 {
			spentVec := make([]float64, len(curr.Ads))
			for j, ad := range curr.Ads {
				spentVec[j] = spent[ad.Name]
			}
			var cpes []float64
			if bs != nil {
				// The known-CPE oracle allocates first against CPE_j·q_j —
				// the benchmark the learning policy's regret is measured
				// against. It runs through the same engine (and so grows
				// the index identically at any shard count) but never
				// becomes the standing allocation.
				oracle, err := idx.Allocate(core.Request{
					Opts:        cfg.Opts,
					CPEs:        trueCPEs(curr),
					SpentBudget: spentVec,
					Epoch:       epoch,
					Kernel:      cfg.Kernel,
				})
				if err != nil {
					return nil, fmt.Errorf("sim: round %d oracle allocation: %w", r, err)
				}
				for j, ad := range curr.Ads {
					bs.oracleSeeds[ad.Name] = oracle.Alloc.Seeds[j]
				}
				rep.SetsSampled += oracle.TotalSetsSampled
				cpes = bs.learnedCPEs(curr)
			}
			out, err := idx.Allocate(core.Request{
				Opts:        cfg.Opts,
				CPEs:        cpes,
				SpentBudget: spentVec,
				Epoch:       epoch,
				Kernel:      cfg.Kernel,
			})
			if err != nil {
				return nil, fmt.Errorf("sim: round %d re-allocation: %w", r, err)
			}
			for j, ad := range curr.Ads {
				seeds[ad.Name] = out.Alloc.Seeds[j]
			}
			rep.Reallocated = true
			rep.SetsSampled += out.TotalSetsSampled
			res.Reallocations++
			needRealloc = false
		}

		// Engagements: score the standing allocation with neutral Monte
		// Carlo cascades and convert a fraction into budget depletion.
		alloc := &core.Allocation{Seeds: make([][]int32, len(curr.Ads))}
		for j, ad := range curr.Ads {
			alloc.Seeds[j] = seeds[ad.Name]
		}
		out := eval.Evaluate(curr, alloc, cfg.EvalRuns, evalRoot.Split(uint64(r)))
		// In bandit mode the oracle's standing allocation is scored on the
		// same Split(r) eval stream — Split is a pure function of (seed,
		// idx), so both evaluations see identical cascades and the regret
		// difference isolates allocation quality from Monte Carlo noise.
		var oracleOut *eval.Outcome
		if bs != nil {
			oalloc := &core.Allocation{Seeds: make([][]int32, len(curr.Ads))}
			for j, ad := range curr.Ads {
				oalloc.Seeds[j] = bs.oracleSeeds[ad.Name]
			}
			oracleOut = eval.Evaluate(curr, oalloc, cfg.EvalRuns, evalRoot.Split(uint64(r)))
		}
		for j, ad := range curr.Ads {
			rev := out.Ads[j].Revenue
			if bs != nil {
				// Realized value scales by the hidden engagement rate: a
				// spread impression only pays out when it engages.
				rev *= trueEngagementRate(ad.Name)
			}
			ds := cfg.EngagementRate * rev
			if room := ad.Budget - spent[ad.Name]; ds > room {
				ds = room
			}
			if ds > 0 {
				spent[ad.Name] += ds
				rep.SpendDelta += ds
			}
			residual := ad.Budget - spent[ad.Name]
			if residual > 0 {
				rep.ResidualBudget += residual
			}
			rep.SpentTotal += spent[ad.Name]
			rep.Revenue += rev
			rep.Regret += regretTerm(residual, rev, curr.Lambda, len(alloc.Seeds[j]))
			rep.TotalSeeds += len(alloc.Seeds[j])
			if bs != nil {
				orev := oracleOut.Ads[j].Revenue * trueEngagementRate(ad.Name)
				rep.OracleRevenue += orev
				rep.OracleRegret += regretTerm(residual, orev, curr.Lambda, len(bs.oracleSeeds[ad.Name]))
			}
		}
		if bs != nil {
			bs.cum += rep.Regret - rep.OracleRegret
			rep.BanditRegret = bs.cum

			// Feedback: every Monte Carlo cascade run is an impression of
			// the ad's seed set; each engages with probability q_j. The
			// estimator only sees these observable events — never q_j.
			fb := bs.fbRoot.Split(uint64(r))
			for j, ad := range curr.Ads {
				rj := fb.Split(uint64(j))
				q := trueEngagementRate(ad.Name)
				var clicks int64
				for i := 0; i < cfg.EvalRuns; i++ {
					if rj.Bernoulli(q) {
						clicks++
					}
				}
				if err := bs.est.Observe(bandit.Event{
					Ad:          ad.Name,
					Impressions: int64(cfg.EvalRuns),
					Clicks:      clicks,
				}); err != nil {
					return nil, fmt.Errorf("sim: round %d feedback: %w", r, err)
				}
			}
		}
		var totalBudget float64
		for _, ad := range curr.Ads {
			totalBudget += ad.Budget
		}
		if totalBudget > 0 {
			rep.RegretOverBudget = rep.Regret / totalBudget
		}
		res.Trace = append(res.Trace, rep)
	}

	res.Ads = make([]AdFate, len(fateOrder))
	for i, name := range fateOrder {
		f := fates[name]
		if f.Departed == 0 {
			f.Spent = spent[name]
		}
		res.Ads[i] = *f
	}
	res.FinalEpoch = idx.Epoch()
	sampled, err := idx.SetsSampled()
	if err != nil {
		return nil, fmt.Errorf("sim: final sample count: %w", err)
	}
	res.TotalSetsSampled = sampled
	if bs != nil {
		res.CumulativeRegret = bs.cum
		st := bs.est.Snapshot()
		res.Estimator = &st
	}
	return res, nil
}

// regretTerm is core.RegretTerm with a clamped residual: once an ad's
// budget is fully spent its residual target is 0, not negative.
func regretTerm(residual, revenue, lambda float64, numSeeds int) float64 {
	if residual < 0 {
		residual = 0
	}
	return core.RegretTerm(residual, revenue, lambda, numSeeds)
}
