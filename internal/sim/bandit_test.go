package sim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/bandit"
)

// banditCfg pins the golden bandit workload: a static campaign set (the
// learning dynamics, not churn, are under test) re-allocating every other
// round so the estimator's overrides steer several selections.
func banditCfg(policy string) Config {
	cfg := fastCfg()
	cfg.InitialAds = 6
	cfg.ArrivalProb = -1
	cfg.DepartProb = -1
	cfg.ReallocEvery = 2
	cfg.Bandit = policy
	return cfg
}

// TestBanditTraceDeterminism pins the tentpole's acceptance criterion:
// the cumulative-regret-vs-oracle trace is bit-identical across runs for
// a fixed seed, for both learning policies — and the two policies
// genuinely differ.
func TestBanditTraceDeterminism(t *testing.T) {
	traces := map[string]*Result{}
	for _, policy := range []string{bandit.PolicyUCB, bandit.PolicyThompson} {
		a, err := Run(flixsterTiny(), 11, banditCfg(policy))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(flixsterTiny(), 11, banditCfg(policy))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Trace, b.Trace) {
			t.Fatalf("%s: traces diverged for the same seed", policy)
		}
		if a.CumulativeRegret != b.CumulativeRegret {
			t.Fatalf("%s: cumulative regret diverged: %v vs %v",
				policy, a.CumulativeRegret, b.CumulativeRegret)
		}
		if !reflect.DeepEqual(a.Estimator, b.Estimator) {
			t.Fatalf("%s: estimator snapshots diverged", policy)
		}
		if a.Estimator == nil || a.Estimator.Policy != policy {
			t.Fatalf("%s: estimator snapshot missing or mislabeled: %+v", policy, a.Estimator)
		}
		// The trace must actually carry the regret curve.
		last := a.Trace[len(a.Trace)-1]
		if last.BanditRegret != a.CumulativeRegret {
			t.Fatalf("%s: final trace regret %v != result %v",
				policy, last.BanditRegret, a.CumulativeRegret)
		}
		if last.OracleRevenue == 0 || last.OracleRegret == 0 {
			t.Fatalf("%s: oracle columns empty in final round: %+v", policy, last)
		}
		traces[policy] = a
	}
	if reflect.DeepEqual(traces[bandit.PolicyUCB].Trace, traces[bandit.PolicyThompson].Trace) {
		t.Fatal("UCB and Thompson produced identical traces")
	}
}

// TestBanditShardedMatchesSingleNode: the bandit-mode trace is
// bit-identical when the identical workload runs against an in-process
// K=2 sharded cluster — estimator overrides flow through the coordinator
// exactly as through the single-node allocator.
func TestBanditShardedMatchesSingleNode(t *testing.T) {
	for _, policy := range []string{bandit.PolicyUCB, bandit.PolicyThompson} {
		single, err := Run(flixsterTiny(), 11, banditCfg(policy))
		if err != nil {
			t.Fatal(err)
		}
		cfg := banditCfg(policy)
		cfg.Shards = 2
		sharded, err := Run(flixsterTiny(), 11, cfg)
		if err != nil {
			t.Fatalf("%s K=2: %v", policy, err)
		}
		if !reflect.DeepEqual(single.Trace, sharded.Trace) {
			t.Fatalf("%s K=2: trace diverged from single-node run", policy)
		}
		if single.CumulativeRegret != sharded.CumulativeRegret {
			t.Fatalf("%s K=2: cumulative regret %v vs %v",
				policy, single.CumulativeRegret, sharded.CumulativeRegret)
		}
		if !reflect.DeepEqual(single.Estimator, sharded.Estimator) {
			t.Fatalf("%s K=2: estimator snapshots diverged", policy)
		}
	}
}

// TestBanditUCBBeatsFrozenBaseline: on the pinned workload, learning the
// engagement rates accumulates less regret against the known-CPE oracle
// than the never-update baseline that keeps allocating by base CPE.
func TestBanditUCBBeatsFrozenBaseline(t *testing.T) {
	ucb, err := Run(flixsterTiny(), 11, banditCfg(bandit.PolicyUCB))
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := Run(flixsterTiny(), 11, banditCfg(bandit.PolicyFrozen))
	if err != nil {
		t.Fatal(err)
	}
	if ucb.CumulativeRegret >= frozen.CumulativeRegret {
		t.Fatalf("UCB cumulative regret %v did not beat frozen baseline %v",
			ucb.CumulativeRegret, frozen.CumulativeRegret)
	}
	// The baseline still observes feedback — it just never acts on it.
	if frozen.Estimator.Events == 0 {
		t.Fatal("frozen baseline recorded no feedback events")
	}
}

// TestBanditEstimatesConverge: after the run, the estimator's smoothed
// mean for every always-live ad sits near its hidden engagement rate
// (thousands of Bernoulli impressions pin it tightly).
func TestBanditEstimatesConverge(t *testing.T) {
	res, err := Run(flixsterTiny(), 11, banditCfg(bandit.PolicyUCB))
	if err != nil {
		t.Fatal(err)
	}
	est, err := bandit.Restore(*res.Estimator)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Ads {
		q := trueEngagementRate(f.Name)
		if got := est.Mean(f.Name); math.Abs(got-q) > 0.05 {
			t.Errorf("ad %s learned mean %.4f, true rate %.4f", f.Name, got, q)
		}
	}
}

// TestBanditModeOff: the classic lifecycle carries no bandit columns and
// no estimator — the zero-value config stays byte-compatible.
func TestBanditModeOff(t *testing.T) {
	res, err := Run(flixsterTiny(), 11, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimator != nil || res.CumulativeRegret != 0 {
		t.Fatalf("classic run grew bandit state: %+v", res.Estimator)
	}
	for _, rep := range res.Trace {
		if rep.OracleRevenue != 0 || rep.OracleRegret != 0 || rep.BanditRegret != 0 {
			t.Fatalf("classic round %d has bandit columns: %+v", rep.Round, rep)
		}
	}
}

func TestBanditUnknownPolicy(t *testing.T) {
	cfg := fastCfg()
	cfg.Bandit = "egreedy"
	if _, err := Run(flixsterTiny(), 11, cfg); err == nil {
		t.Fatal("unknown bandit policy accepted")
	}
}
