package sim

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
)

// fastCfg keeps the workload cheap enough for -race CI runs.
func fastCfg() Config {
	return Config{
		Rounds:   10,
		EvalRuns: 200,
		Opts:     core.TIRMOptions{MinTheta: 1024, MaxTheta: 4096},
	}
}

func flixsterTiny() *core.Instance {
	return gen.Flixster(gen.Options{Seed: 3, Scale: 0.02, NumAds: 6})
}

// TestLifecycleDeterminism pins the acceptance criterion: the full
// regret-over-time trace is bit-identical across runs for a fixed seed.
func TestLifecycleDeterminism(t *testing.T) {
	a, err := Run(flixsterTiny(), 11, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(flixsterTiny(), 11, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Trace, b.Trace) {
		t.Fatal("traces diverged for the same seed")
	}
	if !reflect.DeepEqual(a.Ads, b.Ads) {
		t.Fatal("ad fates diverged for the same seed")
	}
	if a.FinalEpoch != b.FinalEpoch || a.TotalSetsSampled != b.TotalSetsSampled {
		t.Fatalf("run stats diverged: epoch %d vs %d, sets %d vs %d",
			a.FinalEpoch, b.FinalEpoch, a.TotalSetsSampled, b.TotalSetsSampled)
	}

	c, err := Run(flixsterTiny(), 12, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Trace, c.Trace) {
		t.Fatal("different seeds produced identical traces")
	}

	// Forcing either coverage kernel replays the identical trace: kernels
	// change re-allocation sweep cost, never the allocations the
	// lifecycle's spend and regret accounting are built from.
	for _, kernel := range []string{"sparse", "bitset"} {
		cfg := fastCfg()
		cfg.Kernel = kernel
		k, err := Run(flixsterTiny(), 11, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Trace, k.Trace) {
			t.Fatalf("kernel %q diverged the lifecycle trace", kernel)
		}
	}
}

// TestLifecycleChurn: with certain arrivals every queued ad joins, each
// join advances the epoch and triggers a re-allocation, and the trace
// records the events.
func TestLifecycleChurn(t *testing.T) {
	cfg := fastCfg()
	cfg.InitialAds = 2
	cfg.ArrivalProb = 1
	cfg.DepartProb = -1
	res, err := Run(flixsterTiny(), 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	joins := 0
	for _, rep := range res.Trace {
		for _, ev := range rep.Events {
			if strings.HasPrefix(ev, "join:") {
				joins++
				if !rep.Reallocated {
					t.Errorf("round %d had churn but no re-allocation", rep.Round)
				}
			}
		}
	}
	if joins != 4 {
		t.Errorf("recorded %d joins, want 4 (queue of 6−2 ads, certain arrivals)", joins)
	}
	last := res.Trace[len(res.Trace)-1]
	if last.NumAds != 6 {
		t.Errorf("final campaign count %d, want 6", last.NumAds)
	}
	if res.FinalEpoch != 1+4 {
		t.Errorf("final epoch %d, want 5 (1 + 4 joins)", res.FinalEpoch)
	}
	if len(res.Ads) != 6 {
		t.Errorf("ad fates cover %d ads, want 6", len(res.Ads))
	}
}

// TestLifecycleDepletion: with a static campaign set, engagement spend is
// monotone, residual budget is non-increasing, and spend never exceeds an
// ad's budget.
func TestLifecycleDepletion(t *testing.T) {
	cfg := fastCfg()
	cfg.Rounds = 8
	cfg.ArrivalProb = -1
	cfg.DepartProb = -1
	cfg.InitialAds = 6
	cfg.EngagementRate = 0.5
	res, err := Run(flixsterTiny(), 7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prevResidual := res.Trace[0].ResidualBudget
	prevSpent := res.Trace[0].SpentTotal
	for _, rep := range res.Trace[1:] {
		if rep.ResidualBudget > prevResidual+1e-9 {
			t.Errorf("round %d residual budget grew %.4f → %.4f with no arrivals",
				rep.Round, prevResidual, rep.ResidualBudget)
		}
		if rep.SpentTotal < prevSpent-1e-9 {
			t.Errorf("round %d cumulative spend shrank %.4f → %.4f", rep.Round, prevSpent, rep.SpentTotal)
		}
		prevResidual, prevSpent = rep.ResidualBudget, rep.SpentTotal
	}
	for _, f := range res.Ads {
		if f.Spent > f.Budget+1e-9 {
			t.Errorf("ad %s spent %.4f over budget %.4f", f.Name, f.Spent, f.Budget)
		}
	}
}

// TestLifecycleReallocationCadence: quiet rounds re-allocate on the
// configured period only, and warm re-allocations stop sampling once the
// index has absorbed the workload's θ.
func TestLifecycleReallocationCadence(t *testing.T) {
	cfg := fastCfg()
	cfg.Rounds = 9
	cfg.ReallocEvery = 4
	cfg.ArrivalProb = -1
	cfg.DepartProb = -1
	cfg.InitialAds = 4
	res, err := Run(flixsterTiny(), 9, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range res.Trace {
		want := (rep.Round-1)%cfg.ReallocEvery == 0
		if rep.Reallocated != want {
			t.Errorf("round %d reallocated=%v, want %v", rep.Round, rep.Reallocated, want)
		}
		if rep.Reallocated && rep.Round > 1 && rep.SetsSampled != 0 {
			t.Errorf("round %d warm re-allocation drew %d sets", rep.Round, rep.SetsSampled)
		}
	}
	if res.Reallocations != 3 {
		t.Errorf("%d re-allocations over 9 rounds at cadence 4, want 3", res.Reallocations)
	}
}

func BenchmarkLifecycleSim(b *testing.B) {
	inst := flixsterTiny()
	cfg := fastCfg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(inst, 11, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Trace) != cfg.Rounds {
			b.Fatalf("trace has %d rounds", len(res.Trace))
		}
	}
}

// TestLifecycleShardedMatchesSingleNode pins the distributed hot path
// under the full lifecycle workload: running the identical event stream
// against an in-process sharded cluster (K = 2 and 3) reproduces the
// single-node trace bit for bit — every round's epoch, allocation-derived
// revenue, spend, regret, and growth accounting.
func TestLifecycleShardedMatchesSingleNode(t *testing.T) {
	single, err := Run(flixsterTiny(), 11, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 3} {
		cfg := fastCfg()
		cfg.Shards = k
		sharded, err := Run(flixsterTiny(), 11, cfg)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if !reflect.DeepEqual(single.Trace, sharded.Trace) {
			t.Fatalf("K=%d: trace diverged from single-node run", k)
		}
		if !reflect.DeepEqual(single.Ads, sharded.Ads) {
			t.Fatalf("K=%d: ad fates diverged from single-node run", k)
		}
		if single.FinalEpoch != sharded.FinalEpoch || single.TotalSetsSampled != sharded.TotalSetsSampled ||
			single.Reallocations != sharded.Reallocations {
			t.Fatalf("K=%d: run stats diverged: epoch %d vs %d, sets %d vs %d, reallocs %d vs %d",
				k, single.FinalEpoch, sharded.FinalEpoch,
				single.TotalSetsSampled, sharded.TotalSetsSampled,
				single.Reallocations, sharded.Reallocations)
		}
	}
}

// TestLifecycleChaosMatches pins the robustness claim end to end: a
// replicated cluster (K = 2, R = 2) with 5% of all RPCs failing from a
// seeded chaos stream still reproduces the fault-free single-node
// lifecycle trace in every semantic field — epochs, allocations, revenue,
// spend, regret, churn events. Only the sampling accounting may move
// (failover re-samples on the adopting replica), so SetsSampled is zeroed
// on both sides before comparing.
func TestLifecycleChaosMatches(t *testing.T) {
	single, err := Run(flixsterTiny(), 11, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg()
	cfg.Shards = 2
	cfg.Replicas = 2
	cfg.ChaosSeed = 77
	chaos, err := Run(flixsterTiny(), 11, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scrub := func(trace []RoundReport) []RoundReport {
		out := append([]RoundReport(nil), trace...)
		for i := range out {
			out[i].SetsSampled = 0
		}
		return out
	}
	if !reflect.DeepEqual(scrub(single.Trace), scrub(chaos.Trace)) {
		t.Fatal("chaos trace diverged from fault-free single-node run in a semantic field")
	}
	if !reflect.DeepEqual(single.Ads, chaos.Ads) {
		t.Fatal("chaos ad fates diverged from fault-free single-node run")
	}
	if single.FinalEpoch != chaos.FinalEpoch || single.Reallocations != chaos.Reallocations {
		t.Fatalf("chaos run stats diverged: epoch %d vs %d, reallocs %d vs %d",
			single.FinalEpoch, chaos.FinalEpoch, single.Reallocations, chaos.Reallocations)
	}

	// Chaos is itself deterministic: the same chaos seed replays the same
	// fault schedule and the same (accounting included) result.
	again, err := Run(flixsterTiny(), 11, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(chaos.Trace, again.Trace) || chaos.TotalSetsSampled != again.TotalSetsSampled {
		t.Fatal("chaos run is not reproducible for a fixed chaos seed")
	}
}

// TestChaosRunRetainsTailTraces pins the observability claim of a chaos
// run: with a tracer attached and every volume-based retention rule
// disabled (unreachable latency threshold, effectively-off head
// sampling), the only traces that survive are the ones the tail rules
// flag — and a 5% RPC fault stream over a replicated cluster must leave
// retry-retained traces whose spans carry the healed attempts as
// retry.* events. (Deterministic failover retention is pinned at the
// serve layer, where a replica can be killed outright.) The semantic
// result must not move an inch under tracing.
func TestChaosRunRetainsTailTraces(t *testing.T) {
	cfg := fastCfg()
	cfg.Shards = 2
	cfg.Replicas = 2
	cfg.ChaosSeed = 77
	bare, err := Run(flixsterTiny(), 11, cfg)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTracer(obs.TracerConfig{
		Capacity:         64,
		LatencyThreshold: time.Hour,
		SampleEvery:      1 << 30,
	})
	cfg.Tracer = tr
	traced, err := Run(flixsterTiny(), 11, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare.Trace, traced.Trace) || !reflect.DeepEqual(bare.Ads, traced.Ads) {
		t.Fatal("attaching a tracer changed the lifecycle result")
	}

	sums := tr.Summaries(0, false, 0)
	if len(sums) == 0 {
		t.Fatal("chaos run retained no traces at all")
	}
	retryTraces, retryEvents, heads := 0, 0, 0
	for _, sum := range sums {
		switch sum.Reason {
		case "failover", "retry", "error":
		case "head":
			// The deterministic head sample always keeps the first
			// unremarkable trace; with SampleEvery this large there can
			// be only one.
			if heads++; heads > 1 {
				t.Fatalf("trace %s head-sampled twice with SampleEvery maxed out", sum.ID)
			}
		default:
			t.Fatalf("trace %s retained for %q; only tail reasons possible here", sum.ID, sum.Reason)
		}
		if sum.Reason != "retry" {
			continue
		}
		retryTraces++
		td, ok := tr.Get(sum.ID)
		if !ok {
			t.Fatalf("summary lists %s but Get misses it", sum.ID)
		}
		if td.Root != "sim.allocate" {
			t.Fatalf("trace %s rooted at %q, want sim.allocate", sum.ID, td.Root)
		}
		for _, s := range td.Spans {
			for _, ev := range s.Events {
				if strings.HasPrefix(ev.Name, "retry.") {
					retryEvents++
					if _, ok := ev.Attrs["attempt"]; !ok {
						t.Fatalf("retry event missing attempt attr: %+v", ev)
					}
				}
			}
		}
	}
	if retryTraces == 0 || retryEvents == 0 {
		t.Fatalf("chaos run retained %d retry traces with %d retry events; want both > 0 (reasons: %v)",
			retryTraces, retryEvents, sums)
	}

	// A fault-free traced run retains at most the single head sample:
	// tail retention stays quiet when nothing goes wrong.
	quietTr := obs.NewTracer(obs.TracerConfig{
		Capacity:         64,
		LatencyThreshold: time.Hour,
		SampleEvery:      1 << 30,
	})
	quiet := fastCfg()
	quiet.Shards = 2
	quiet.Tracer = quietTr
	if _, err := Run(flixsterTiny(), 11, quiet); err != nil {
		t.Fatal(err)
	}
	for _, sum := range quietTr.Summaries(0, false, 0) {
		if sum.Reason != "head" {
			t.Fatalf("fault-free run retained trace %s for %q, want head only", sum.ID, sum.Reason)
		}
	}
}
