// Counter mode and delta-capturing covers: the two halves of sharded
// coverage state. When RR-sets are partitioned across shards (see
// StreamPartition), a node's global residual coverage is the sum of its
// per-shard coverages, and committing a seed decomposes into per-shard
// covers whose per-node decrements sum to the global effect. The shard
// side runs ordinary Collections over its local sets and *captures* each
// cover's sparse decrement vector (CoverNodeDelta / CountAndCoverFromDelta)
// so it can be shipped; the coordinator side holds a segment-less "counter"
// Collection whose counters are maintained purely by applying those summed
// integer deltas (NewCounterCollection / AddCounts / ApplyCover).
//
// The counter collection reuses the exact heap code of the ordinary
// Collection, and every mutation syncs the lazily rebuilt heap at the same
// points CoverNode/CountAndCoverFrom/AddFamily do — so candidate ordering,
// including tie-breaking among equal-coverage nodes, evolves bit-for-bit as
// it would on a single node holding the union of all shards' sets. That,
// plus the fact that every shipped quantity is an integer (float math never
// leaves the coordinator), is the determinism argument for sharded
// allocation (DESIGN.md §7).

package rrset

import "fmt"

// NewCounterCollection creates a segment-less coverage collection over n
// nodes for externally maintained counters: it supports Coverage, Drop,
// BestNode and TopNodes exactly like a set-backed Collection, but its
// counters change only through AddCounts and ApplyCover. Calling CoverNode
// or CountAndCoverFrom on a counter collection is a bug (it holds no sets).
func NewCounterCollection(n int) *Collection {
	c := NewCollection(n)
	c.stale = true
	return c
}

// AddCounts credits freshly appended sets to the counters: nodes[i] gains
// counts[i] residual coverage, and the collection's set count grows by
// addedSets. Like AddFamily it marks the candidate heap for a deferred
// rebuild, so interleaving growth and queries keeps the heap's evolution
// identical to the set-backed path.
func (c *Collection) AddCounts(nodes []int32, counts []int32, addedSets int) {
	for i, u := range nodes {
		c.cov[u] += counts[i]
	}
	c.numSets += addedSets
	c.stale = true
}

// ApplyCover applies one externally computed cover outcome: covered sets
// became covered, and nodes[i] loses decs[i] residual coverage. It syncs
// the deferred heap rebuild first — exactly where CoverNode and
// CountAndCoverFrom do — so a counter collection's heap sees the same
// coverage vector at the same moments as a set-backed one.
func (c *Collection) ApplyCover(covered int, nodes []int32, decs []int32) {
	c.syncHeap()
	for i, u := range nodes {
		c.cov[u] -= decs[i]
	}
	c.ncov += covered
}

// deltaScratch grows the per-node delta position index used by the
// delta-capturing covers.
func (c *Collection) deltaScratch() []int32 {
	if len(c.dpos) < c.n {
		c.dpos = make([]int32, c.n)
	}
	return c.dpos
}

// CoverNodeDelta is CoverNode that additionally records the cover's effect
// as a sparse decrement vector: appended to nodes/decs (reused, returned
// re-sliced), node outNodes[i] lost outDecs[i] residual coverage. Summed
// across the shards of a partition these deltas reproduce exactly the
// coverage change a single-node CoverNode of the union would make. Unlike
// CoverNode it does not sync the candidate heap: a sharded collection's
// candidates are ranked by the coordinator's counter collection, never by
// the shard's own heap, so the (still lazy, still correct) rebuild is
// deferred until someone actually queries it.
func (c *Collection) CoverNodeDelta(u int32, nodes []int32, decs []int32) (covered int, outNodes []int32, outDecs []int32) {
	s := c.newDeltaSink(nodes, decs)
	covered = c.kernel().coverDelta(c, u, 0, s)
	c.ncov += covered
	if c.cov[u] != 0 {
		panic(fmt.Sprintf("rrset: residual coverage of %d nonzero after CoverNodeDelta", u))
	}
	outNodes, outDecs = s.nodes, s.decs
	s.nodes, s.decs = nil, nil // buffers are caller-owned; do not pin them
	return covered, outNodes, outDecs
}

// CountAndCoverFromDelta is CountAndCoverFrom with the same sparse delta
// capture (and deferred heap sync) as CoverNodeDelta, restricted to sets
// with id ≥ firstID (local ids of this collection).
func (c *Collection) CountAndCoverFromDelta(u int32, firstID int, nodes []int32, decs []int32) (covered int, outNodes []int32, outDecs []int32) {
	s := c.newDeltaSink(nodes, decs)
	covered = c.kernel().coverDelta(c, u, firstID, s)
	c.ncov += covered
	outNodes, outDecs = s.nodes, s.decs
	s.nodes, s.decs = nil, nil // buffers are caller-owned; do not pin them
	return covered, outNodes, outDecs
}
