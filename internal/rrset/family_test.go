package rrset

import (
	"reflect"
	"testing"

	"repro/internal/xrand"
)

func TestSetFamilyBasics(t *testing.T) {
	f := NewSetFamily()
	if f.Len() != 0 || f.NumMembers() != 0 {
		t.Fatalf("empty family: %d sets, %d members", f.Len(), f.NumMembers())
	}
	f.Append([]int32{3, 1})
	f.Append(nil)
	f.Append([]int32{2})
	if f.Len() != 3 || f.NumMembers() != 3 {
		t.Fatalf("family: %d sets, %d members", f.Len(), f.NumMembers())
	}
	if got := f.Set(0); !reflect.DeepEqual(got, []int32{3, 1}) {
		t.Fatalf("Set(0) = %v", got)
	}
	if got := f.Set(1); len(got) != 0 {
		t.Fatalf("Set(1) = %v, want empty", got)
	}
	if got := f.Set(2); !reflect.DeepEqual(got, []int32{2}) {
		t.Fatalf("Set(2) = %v", got)
	}
	sets := f.Sets()
	if sets[1] != nil {
		t.Fatal("empty set materialized non-nil")
	}
	if f.MemBytes() != 3*4+4*8 {
		t.Fatalf("MemBytes = %d", f.MemBytes())
	}
}

func TestFamilyFromSetsRoundTrip(t *testing.T) {
	in := [][]int32{{5, 0}, nil, {1}, {2, 3, 4}}
	f := FamilyFromSets(in)
	out := f.Sets()
	if len(out) != len(in) {
		t.Fatalf("Len %d", len(out))
	}
	for i := range in {
		if len(in[i]) == 0 && out[i] == nil {
			continue
		}
		if !reflect.DeepEqual(in[i], out[i]) {
			t.Fatalf("set %d: %v vs %v", i, in[i], out[i])
		}
	}
}

func TestFamilyAppendFamilyAndWindows(t *testing.T) {
	a := FamilyFromSets([][]int32{{0, 1}, {2}})
	b := FamilyFromSets([][]int32{{3}, {4, 5}})
	a.AppendFamily(b)
	if a.Len() != 4 || a.NumMembers() != 6 {
		t.Fatalf("merged: %d sets, %d members", a.Len(), a.NumMembers())
	}
	w := a.Window(1, 3)
	if w.Len() != 2 || w.NumMembers() != 2 {
		t.Fatalf("window: %d sets, %d members", w.Len(), w.NumMembers())
	}
	if !reflect.DeepEqual(w.Set(0), []int32{2}) || !reflect.DeepEqual(w.Set(1), []int32{3}) {
		t.Fatalf("window sets %v %v", w.Set(0), w.Set(1))
	}
}

// TestFamilyViewsSurviveGrowth is the stability contract concurrent
// allocations rely on: a view taken before appends keeps reading the same
// bytes afterwards.
func TestFamilyViewsSurviveGrowth(t *testing.T) {
	f := FamilyFromSets([][]int32{{0, 1}, {2}})
	v := f.View()
	want := v.Sets()
	for i := 0; i < 10000; i++ {
		f.Append([]int32{int32(i % 7)})
	}
	if !reflect.DeepEqual(v.Sets(), want) {
		t.Fatal("view changed under growth")
	}
	if v.Len() != 2 {
		t.Fatalf("view grew to %d sets", v.Len())
	}
}

func TestBuildInverted(t *testing.T) {
	f := FamilyFromSets([][]int32{{0, 2}, {2}, nil, {1, 2}})
	inv := BuildInverted(4, f.View(), 0)
	wantRows := [][]int32{{0}, {3}, {0, 1, 3}, nil}
	for u := int32(0); u < 4; u++ {
		got := inv.IDs(u)
		if len(got) == 0 && len(wantRows[u]) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, wantRows[u]) {
			t.Fatalf("IDs(%d) = %v, want %v", u, got, wantRows[u])
		}
		if inv.Count(u) != len(wantRows[u]) {
			t.Fatalf("Count(%d) = %d", u, inv.Count(u))
		}
	}
	// base offset shifts every id.
	inv = BuildInverted(4, f.View(), 100)
	if got := inv.IDs(2); !reflect.DeepEqual(got, []int32{100, 101, 103}) {
		t.Fatalf("based IDs(2) = %v", got)
	}
}

// TestSampleRangeRRIntoMatchesSlices: the arena-producing sampler draws the
// exact same stream as the slice-shaped surface, for any worker cap.
func TestSampleRangeRRIntoMatchesSlices(t *testing.T) {
	s := streamTestSampler(t)
	want := s.SampleRangeRR(0, 4*StreamBlockSize, xrand.New(7))
	for _, cap := range []int{0, 1, 3} {
		SetMaxWorkers(cap)
		fam := NewSetFamily()
		s.SampleRangeRRInto(0, 2*StreamBlockSize, xrand.New(7), fam)
		s.SampleRangeRRInto(2*StreamBlockSize, 4*StreamBlockSize, xrand.New(7), fam)
		if got := fam.Sets(); !reflect.DeepEqual(got, want) {
			t.Fatalf("arena stream diverged from slice stream at worker cap %d", cap)
		}
	}
	SetMaxWorkers(0)
}

// TestSampleBatchRRFamilyMatchesSlices: the arena-shaped batch sampler
// draws the exact sets SampleBatchRR draws (same chunking, same rng use).
func TestSampleBatchRRFamilyMatchesSlices(t *testing.T) {
	s := streamTestSampler(t)
	for _, count := range []int{0, 1, 7, 1000} {
		want := s.SampleBatchRR(count, xrand.New(9), 42)
		fam := s.SampleBatchRRFamily(count, xrand.New(9), 42)
		if fam.Len() != count {
			t.Fatalf("count %d: family has %d sets", count, fam.Len())
		}
		if count > 0 && !reflect.DeepEqual(fam.Sets(), want) {
			t.Fatalf("count %d: family batch diverged from slice batch", count)
		}
	}
}

func TestSetMaxWorkers(t *testing.T) {
	defer SetMaxWorkers(0)
	SetMaxWorkers(2)
	if MaxWorkers() != 2 || samplingWorkers(8) != 2 || samplingWorkers(1) != 1 {
		t.Fatalf("cap 2: MaxWorkers=%d workers(8)=%d workers(1)=%d", MaxWorkers(), samplingWorkers(8), samplingWorkers(1))
	}
	SetMaxWorkers(-5)
	if MaxWorkers() != 0 {
		t.Fatalf("negative cap not normalized: %d", MaxWorkers())
	}
	if samplingWorkers(1) != 1 {
		t.Fatal("workers(1) != 1 at default cap")
	}
}
