// Coverage kernels: pluggable implementations of the count-and-cover
// sweeps at the heart of the greedy allocation loop. Every committed seed
// must discover the not-yet-covered sets containing it and decrement the
// residual coverage of their members; that inner loop dominates a warm
// allocation's profile. Two implementations share one contract:
//
//   - sparse: the historical cover-join / inverted-row scan — one record
//     stream (or id row + arena hop) per node, cost proportional to the
//     node's membership count. Right for sparse instances, growth
//     segments, and hand-built collections.
//   - bitset: per-node RR-set membership packed as uint64 words (see
//     coverBits), so discovering newly covered sets is a word-wise
//     AND-NOT + popcount sweep with an unrolled 4-words-per-iteration
//     inner loop and no data-dependent branches until a word actually
//     holds new sets. Right for dense instances where inverted rows
//     approach the set count.
//
// Kernels differ only in how covered sets are *discovered*; sets are then
// retired in ascending id order with identical per-member updates either
// way, so heap evolution, tie-breaking, float summation order — and
// therefore the final allocation — are byte-identical across kernels
// (pinned by FuzzKernelEquivalence and the golden tests).

package rrset

import mbits "math/bits"

// KernelID identifies a coverage-kernel implementation; the zero value is
// the sparse kernel.
type KernelID uint8

const (
	// KernelSparse is the cover-join / inverted-row scan — the default,
	// and the only kernel usable on growth segments and counter
	// collections.
	KernelSparse KernelID = iota
	// KernelBitset is the dense branch-free kernel over packed per-node
	// membership words (requires PrepareCoverBits on the inverted index).
	KernelBitset
	// NumKernels counts the kernel implementations (array-sizing aid for
	// per-kernel tallies).
	NumKernels int = iota
)

// kernelNames maps KernelID to its registry name.
var kernelNames = [NumKernels]string{"sparse", "bitset"}

// String returns the kernel's registry name ("sparse", "bitset").
func (k KernelID) String() string {
	if int(k) < len(kernelNames) {
		return kernelNames[k]
	}
	return "unknown"
}

// KernelByName resolves a registry name to its KernelID.
func KernelByName(name string) (KernelID, bool) {
	for id, n := range kernelNames {
		if n == name {
			return KernelID(id), true
		}
	}
	return 0, false
}

// CoverKernel is one coverage-kernel implementation. The exported surface
// is the identity pair (Name/ID); the sweep operations are internal —
// callers select a kernel per collection with UseKernel and keep using the
// ordinary Collection / WeightedCollection methods, which dispatch here.
type CoverKernel interface {
	// Name returns the kernel's registry name.
	Name() string
	// ID returns the kernel's identifier.
	ID() KernelID

	// coverNode discovers and retires every uncovered set containing u,
	// returning the count (CoverNode minus heap sync and bookkeeping).
	coverNode(c *Collection, u int32) int
	// countAndCoverFrom is coverNode restricted to sets with id ≥ firstID.
	countAndCoverFrom(c *Collection, u int32, firstID int) int
	// coverDelta is countAndCoverFrom capturing per-node decrements into
	// the sink (firstID 0 reproduces CoverNodeDelta).
	coverDelta(c *Collection, u int32, firstID int, s *deltaSink) int
	// commitFrom applies a weighted commit over sets with id ≥ firstID.
	commitFrom(c *WeightedCollection, u int32, delta float64, firstID int) float64
}

// Kernels holds the kernel implementations indexed by KernelID.
var Kernels = [NumKernels]CoverKernel{sparseKernel{}, bitsetKernel{}}

// sparseKernel walks cover-join record streams (or inverted rows + arena
// hops) — the historical implementation, factored behind the interface.
type sparseKernel struct{}

// Name returns "sparse".
func (sparseKernel) Name() string { return kernelNames[KernelSparse] }

// ID returns KernelSparse.
func (sparseKernel) ID() KernelID { return KernelSparse }

func (sparseKernel) coverNode(c *Collection, u int32) int {
	return sparseCoverSegs(c, u, c.segs)
}

func (sparseKernel) countAndCoverFrom(c *Collection, u int32, firstID int) int {
	return sparseCountFromSegs(c, u, firstID, c.segs)
}

func (sparseKernel) coverDelta(c *Collection, u int32, firstID int, s *deltaSink) int {
	return sparseDeltaSegs(c, u, firstID, c.segs, s)
}

func (sparseKernel) commitFrom(c *WeightedCollection, u int32, delta float64, firstID int) float64 {
	return sparseCommitSegs(c, u, delta, firstID, c.segs)
}

// bitsetKernel sweeps packed membership words for the collection's first
// (shared, base-0) segment and falls back to the sparse walk for growth
// segments, whose id ranges start past the bitmap. Segment id ranges are
// disjoint and ascending, so the combined covering order is still
// ascending by id — identical to the sparse kernel's.
type bitsetKernel struct{}

// Name returns "bitset".
func (bitsetKernel) Name() string { return kernelNames[KernelBitset] }

// ID returns KernelBitset.
func (bitsetKernel) ID() KernelID { return KernelBitset }

func (bitsetKernel) coverNode(c *Collection, u int32) int {
	covered := c.bitsetCover(u)
	if len(c.segs) > 1 {
		covered += sparseCoverSegs(c, u, c.segs[1:])
	}
	return covered
}

func (bitsetKernel) countAndCoverFrom(c *Collection, u int32, firstID int) int {
	covered := c.bitsetCountFrom(u, firstID)
	if len(c.segs) > 1 {
		covered += sparseCountFromSegs(c, u, firstID, c.segs[1:])
	}
	return covered
}

func (bitsetKernel) coverDelta(c *Collection, u int32, firstID int, s *deltaSink) int {
	covered := c.bitsetDeltaFrom(u, firstID, s)
	if len(c.segs) > 1 {
		covered += sparseDeltaSegs(c, u, firstID, c.segs[1:], s)
	}
	return covered
}

func (bitsetKernel) commitFrom(c *WeightedCollection, u int32, delta float64, firstID int) float64 {
	total := c.bitsetCommitFrom(u, delta, firstID)
	if len(c.segs) > 1 {
		total += sparseCommitSegs(c, u, delta, firstID, c.segs[1:])
	}
	return total
}

// sparseCoverSegs is the sparse CoverNode walk over the given segments:
// prefer the prepared cover join's sequential record stream, fall back to
// the inverted row + arena hop. Record order equals id order, so the
// covering sequence is the historical one.
func sparseCoverSegs(c *Collection, u int32, segs []covSegment) int {
	covered := 0
	cov, cvd := c.cov, c.covered
	for si := range segs {
		seg := &segs[si]
		base := seg.base
		offs, mem := seg.view.offsets, seg.view.members
		if j := seg.inv.preparedJoin(); j != nil {
			limit := int32(seg.end())
			row := j.row(u)
			for p := 0; p < len(row); {
				id, sz := row[p], row[p+1]
				if id >= limit {
					break
				}
				var members []int32
				if sz == joinSpill {
					p += 2
					if cvd[id] {
						continue
					}
					i := int(id - base)
					members = mem[offs[i]:offs[i+1]]
				} else {
					members = row[p+2 : p+2+int(sz)]
					p += 2 + int(sz)
					if cvd[id] {
						continue
					}
				}
				cvd[id] = true
				covered++
				for _, w := range members {
					cov[w]--
				}
			}
			continue
		}
		for _, id := range seg.idsOf(u) {
			if cvd[id] {
				continue
			}
			cvd[id] = true
			covered++
			i := int(id - base)
			for _, w := range mem[offs[i]:offs[i+1]] {
				cov[w]--
			}
		}
	}
	return covered
}

// sparseCountFromSegs is the sparse CountAndCoverFrom walk over the given
// segments (inverted rows + arena hops; the credit path is rare enough
// that the join adds nothing).
func sparseCountFromSegs(c *Collection, u int32, firstID int, segs []covSegment) int {
	covered := 0
	cov, cvd := c.cov, c.covered
	for si := range segs {
		seg := &segs[si]
		if seg.end() <= firstID {
			continue
		}
		base := seg.base
		offs, mem := seg.view.offsets, seg.view.members
		for _, id := range seg.idsOf(u) {
			if int(id) < firstID || cvd[id] {
				continue
			}
			cvd[id] = true
			covered++
			i := int(id - base)
			for _, w := range mem[offs[i]:offs[i+1]] {
				cov[w]--
			}
		}
	}
	return covered
}

// sparseDeltaSegs is sparseCountFromSegs additionally recording every
// per-member decrement into the sink (the sharded delta-capture path).
func sparseDeltaSegs(c *Collection, u int32, firstID int, segs []covSegment, s *deltaSink) int {
	covered := 0
	cov, cvd := c.cov, c.covered
	for si := range segs {
		seg := &segs[si]
		if seg.end() <= firstID {
			continue
		}
		base := seg.base
		offs, mem := seg.view.offsets, seg.view.members
		for _, id := range seg.idsOf(u) {
			if int(id) < firstID || cvd[id] {
				continue
			}
			cvd[id] = true
			covered++
			i := int(id - base)
			for _, w := range mem[offs[i]:offs[i+1]] {
				cov[w]--
				s.record(w)
			}
		}
	}
	return covered
}

// sparseCommitSegs is the sparse weighted commit walk over the given
// segments (WeightedCollection.commitFrom's historical body).
func sparseCommitSegs(c *WeightedCollection, u int32, delta float64, firstID int, segs []covSegment) float64 {
	var total float64
	wcov, weight := c.wcov, c.weight
	for si := range segs {
		seg := &segs[si]
		if seg.end() <= firstID {
			continue
		}
		base := seg.base
		offs, mem := seg.view.offsets, seg.view.members
		if j := seg.inv.preparedJoin(); j != nil {
			// Sequential record-stream walk — see Collection.CoverNode for
			// why this beats the per-set arena hop on the commit path.
			limit := int32(seg.end())
			first := int32(firstID)
			row := j.row(u)
			for p := 0; p < len(row); {
				id, sz := row[p], row[p+1]
				if id >= limit {
					break
				}
				var members []int32
				if sz == joinSpill {
					p += 2
					i := int(id - base)
					members = mem[offs[i]:offs[i+1]]
				} else {
					members = row[p+2 : p+2+int(sz)]
					p += 2 + int(sz)
				}
				if id < first {
					continue
				}
				w := weight[id]
				if w == 0 {
					continue
				}
				dec := w * delta
				weight[id] = w - dec
				c.claimed += dec
				total += dec
				for _, x := range members {
					wcov[x] -= dec
					if wcov[x] < 0 {
						wcov[x] = 0 // clamp float drift
					}
				}
			}
			continue
		}
		for _, id := range seg.idsOf(u) {
			if int(id) < firstID {
				continue
			}
			w := weight[id]
			if w == 0 {
				continue
			}
			dec := w * delta
			weight[id] = w - dec
			c.claimed += dec
			total += dec
			i := int(id - base)
			for _, x := range mem[offs[i]:offs[i+1]] {
				wcov[x] -= dec
				if wcov[x] < 0 {
					wcov[x] = 0 // clamp float drift
				}
			}
		}
	}
	return total
}

// bitsetCover is the dense CoverNode sweep over the first segment: new
// sets are row AND-NOT covered-words, four words per iteration; only a
// word actually holding new sets takes the extraction branch. covw's
// excess tail bits are pre-set by UseKernel, so no per-word masking is
// needed.
func (c *Collection) bitsetCover(u int32) int {
	row := c.bits.row(u)
	covw := c.covw
	seg := &c.segs[0]
	offs, mem := seg.view.offsets, seg.view.members
	covered := 0
	kw := len(covw)
	w := 0
	for ; w+4 <= kw; w += 4 {
		n0 := row[w] &^ covw[w]
		n1 := row[w+1] &^ covw[w+1]
		n2 := row[w+2] &^ covw[w+2]
		n3 := row[w+3] &^ covw[w+3]
		if n0|n1|n2|n3 == 0 {
			continue
		}
		if n0 != 0 {
			covered += c.coverWord(w, n0, offs, mem)
		}
		if n1 != 0 {
			covered += c.coverWord(w+1, n1, offs, mem)
		}
		if n2 != 0 {
			covered += c.coverWord(w+2, n2, offs, mem)
		}
		if n3 != 0 {
			covered += c.coverWord(w+3, n3, offs, mem)
		}
	}
	for ; w < kw; w++ {
		if nw := row[w] &^ covw[w]; nw != 0 {
			covered += c.coverWord(w, nw, offs, mem)
		}
	}
	return covered
}

// coverWord retires the sets in one word of new coverage: mark them
// covered (bitmap and bool array both, keeping the sparse walk's view
// truthful for growth segments and credit passes) and decrement their
// members' residual coverage. Bits extract in ascending order, so sets
// retire ascending by id exactly as the sparse walk would.
func (c *Collection) coverWord(w int, nw uint64, offs []int64, mem []int32) int {
	c.covw[w] |= nw
	cov, cvd := c.cov, c.covered
	base := int32(w << 6)
	covered := 0
	for nw != 0 {
		id := base + int32(mbits.TrailingZeros64(nw))
		nw &= nw - 1
		cvd[id] = true
		covered++
		for _, x := range mem[offs[id]:offs[id+1]] {
			cov[x]--
		}
	}
	return covered
}

// bitsetCountFrom is bitsetCover restricted to sets with id ≥ firstID:
// the start word is masked once, the rest of the sweep is the plain loop
// (the credit path is far off the per-iteration hot loop).
func (c *Collection) bitsetCountFrom(u int32, firstID int) int {
	covw := c.covw
	kw := len(covw)
	fw := firstID >> 6
	if fw >= kw {
		return 0
	}
	row := c.bits.row(u)
	seg := &c.segs[0]
	offs, mem := seg.view.offsets, seg.view.members
	covered := 0
	if nw := row[fw] &^ covw[fw] & (^uint64(0) << uint(firstID&63)); nw != 0 {
		covered += c.coverWord(fw, nw, offs, mem)
	}
	for w := fw + 1; w < kw; w++ {
		if nw := row[w] &^ covw[w]; nw != 0 {
			covered += c.coverWord(w, nw, offs, mem)
		}
	}
	return covered
}

// bitsetDeltaFrom is bitsetCountFrom recording per-member decrements into
// the sink (firstID 0 covers the CoverNodeDelta case).
func (c *Collection) bitsetDeltaFrom(u int32, firstID int, s *deltaSink) int {
	covw := c.covw
	kw := len(covw)
	fw := firstID >> 6
	if fw >= kw {
		return 0
	}
	row := c.bits.row(u)
	seg := &c.segs[0]
	offs, mem := seg.view.offsets, seg.view.members
	covered := 0
	if nw := row[fw] &^ covw[fw] & (^uint64(0) << uint(firstID&63)); nw != 0 {
		covered += c.coverWordDelta(fw, nw, offs, mem, s)
	}
	for w := fw + 1; w < kw; w++ {
		if nw := row[w] &^ covw[w]; nw != 0 {
			covered += c.coverWordDelta(w, nw, offs, mem, s)
		}
	}
	return covered
}

// coverWordDelta is coverWord with sink recording.
func (c *Collection) coverWordDelta(w int, nw uint64, offs []int64, mem []int32, s *deltaSink) int {
	c.covw[w] |= nw
	cov, cvd := c.cov, c.covered
	base := int32(w << 6)
	covered := 0
	for nw != 0 {
		id := base + int32(mbits.TrailingZeros64(nw))
		nw &= nw - 1
		cvd[id] = true
		covered++
		for _, x := range mem[offs[id]:offs[id+1]] {
			cov[x]--
			s.record(x)
		}
	}
	return covered
}

// bitsetCommitFrom is the dense weighted commit over the first segment:
// live sets are row AND-NOT zero-weight-words (a set's bit moves to zerow
// exactly when its weight reaches 0, which the sparse walk's w == 0 skip
// mirrors), so the per-set weight math runs in the same ascending order
// with bit-identical float accumulation.
func (c *WeightedCollection) bitsetCommitFrom(u int32, delta float64, firstID int) float64 {
	zerow := c.zerow
	kw := len(zerow)
	fw := firstID >> 6
	if fw >= kw {
		return 0
	}
	row := c.bits.row(u)
	seg := &c.segs[0]
	offs, mem := seg.view.offsets, seg.view.members
	var total float64
	if firstID == 0 {
		w := 0
		for ; w+4 <= kw; w += 4 {
			l0 := row[w] &^ zerow[w]
			l1 := row[w+1] &^ zerow[w+1]
			l2 := row[w+2] &^ zerow[w+2]
			l3 := row[w+3] &^ zerow[w+3]
			if l0|l1|l2|l3 == 0 {
				continue
			}
			if l0 != 0 {
				c.commitWord(w, l0, delta, offs, mem, &total)
			}
			if l1 != 0 {
				c.commitWord(w+1, l1, delta, offs, mem, &total)
			}
			if l2 != 0 {
				c.commitWord(w+2, l2, delta, offs, mem, &total)
			}
			if l3 != 0 {
				c.commitWord(w+3, l3, delta, offs, mem, &total)
			}
		}
		for ; w < kw; w++ {
			if lw := row[w] &^ zerow[w]; lw != 0 {
				c.commitWord(w, lw, delta, offs, mem, &total)
			}
		}
		return total
	}
	if lw := row[fw] &^ zerow[fw] & (^uint64(0) << uint(firstID&63)); lw != 0 {
		c.commitWord(fw, lw, delta, offs, mem, &total)
	}
	for w := fw + 1; w < kw; w++ {
		if lw := row[w] &^ zerow[w]; lw != 0 {
			c.commitWord(w, lw, delta, offs, mem, &total)
		}
	}
	return total
}

// commitWord applies the weighted commit to the live sets of one word,
// ascending by id, moving exactly-zeroed weights into the zerow mask. The
// running total accumulates through the pointer so the float summation
// stays one linear chain in set-id order — bit-identical to the sparse
// walk's (per-word partial sums would re-associate the additions).
func (c *WeightedCollection) commitWord(w int, lw uint64, delta float64, offs []int64, mem []int32, total *float64) {
	wcov, weight := c.wcov, c.weight
	base := int32(w << 6)
	for lw != 0 {
		b := mbits.TrailingZeros64(lw)
		lw &= lw - 1
		id := base + int32(b)
		wt := weight[id]
		dec := wt * delta
		weight[id] = wt - dec
		c.claimed += dec
		*total += dec
		if weight[id] == 0 {
			c.zerow[w] |= 1 << uint(b)
		}
		for _, x := range mem[offs[id]:offs[id+1]] {
			wcov[x] -= dec
			if wcov[x] < 0 {
				wcov[x] = 0 // clamp float drift
			}
		}
	}
}

// deltaSink accumulates one cover's sparse per-node decrement vector (see
// CoverNodeDelta): first touch of a node appends it, repeats bump its
// count in place via the dpos index. A struct, not a closure pair, so the
// capture allocates nothing on the shard commit path.
type deltaSink struct {
	c     *Collection
	gen   uint64
	nodes []int32
	decs  []int32
}

// newDeltaSink prepares the collection's per-call dedup stamps and wraps
// the (re-sliced) output buffers in the collection-resident sink (see the
// dsink field: returning &c.dsink keeps the interface call escape-free).
func (c *Collection) newDeltaSink(nodes, decs []int32) *deltaSink {
	if len(c.seen) < c.n {
		c.seen = make([]uint64, c.n)
	}
	c.deltaScratch()
	c.seenGen++
	c.dsink = deltaSink{c: c, gen: c.seenGen, nodes: nodes[:0], decs: decs[:0]}
	return &c.dsink
}

// record notes one residual-coverage decrement of node w.
func (s *deltaSink) record(w int32) {
	c := s.c
	if c.seen[w] == s.gen {
		s.decs[c.dpos[w]]++
		return
	}
	c.seen[w] = s.gen
	c.dpos[w] = int32(len(s.nodes))
	s.nodes = append(s.nodes, w)
	s.decs = append(s.decs, 1)
}
