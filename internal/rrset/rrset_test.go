package rrset

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/topic"
	"repro/internal/xrand"
)

// fig1 builds the paper's Figure 1 gadget (see diffusion tests).
func fig1(t testing.TB) (*graph.Graph, []float32) {
	t.Helper()
	b := graph.NewBuilder(6)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(2, 4)
	b.AddEdge(3, 5)
	b.AddEdge(4, 5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, []float32{0.2, 0.2, 0.5, 0.5, 0.1, 0.1}
}

// TestRRUnbiased verifies Proposition 1: n·E[F_R(S)] = σ_ic(S), using the
// exact IC spread on the Figure 1 gadget as ground truth.
func TestRRUnbiased(t *testing.T) {
	g, probs := fig1(t)
	s := NewSampler(g, probs, nil)
	sets := s.SampleBatchRR(200000, xrand.New(1), 0)

	sim := diffusion.NewSimulator(g, topic.ItemParams{Probs: probs, CTPs: topic.ConstCTP{Nodes: 6, P: 1}})
	for _, seeds := range [][]int32{{2}, {0, 1}, {0, 1, 2, 3, 4, 5}, {5}} {
		exact := diffusion.ExactSpreadIC(sim, seeds)
		est := float64(g.N()) * FracCovered(sets, seeds, g.N())
		if math.Abs(est-exact) > 0.03 {
			t.Errorf("seeds %v: RR estimate %.4f vs exact IC spread %.4f", seeds, est, exact)
		}
	}
}

// TestRRCUnbiased verifies Lemma 2: n·E[F_Q(S)] = σ_icctp(S) (IC with CTP
// coins on seeds), again against exact enumeration.
func TestRRCUnbiased(t *testing.T) {
	g, probs := fig1(t)
	ctp := topic.ConstCTP{Nodes: 6, P: 0.6}
	s := NewSampler(g, probs, ctp)
	sets := s.SampleBatchRRC(300000, xrand.New(2), 0)

	sim := diffusion.NewSimulator(g, topic.ItemParams{Probs: probs, CTPs: ctp})
	for _, seeds := range [][]int32{{2}, {0, 1}, {0, 1, 2, 3, 4, 5}} {
		exact := diffusion.ExactSpread(sim, seeds)
		est := float64(g.N()) * FracCovered(sets, seeds, g.N())
		if math.Abs(est-exact) > 0.03 {
			t.Errorf("seeds %v: RRC estimate %.4f vs exact CTP spread %.4f", seeds, est, exact)
		}
	}
}

// TestTheorem5 verifies that the δ-scaled RR marginal equals the RRC
// marginal in expectation: δ(u)(E[F_R(S∪u)]−E[F_R(S)]) = E[F_Q(S∪u)]−E[F_Q(S)],
// for the first-seed case where the identity is exact (S = ∅), and checks
// the lower-bound direction for a non-empty S.
func TestTheorem5(t *testing.T) {
	g, probs := fig1(t)
	ctp := topic.ConstCTP{Nodes: 6, P: 0.5}
	s := NewSampler(g, probs, ctp)
	rr := s.SampleBatchRR(300000, xrand.New(3), 0)
	rrc := s.SampleBatchRRC(300000, xrand.New(4), 0)

	u := int32(2) // v3, the hub
	// S = ∅: exact identity.
	lhs := 0.5 * (FracCovered(rr, []int32{u}, 6) - 0)
	rhs := FracCovered(rrc, []int32{u}, 6) - 0
	if math.Abs(lhs-rhs) > 0.005 {
		t.Errorf("Theorem 5 (S=∅): δ·RR marginal %.5f vs RRC marginal %.5f", lhs, rhs)
	}
	// S = {0,1}: δ-scaled RR marginal must not exceed the RRC marginal
	// (it is a lower bound when earlier seeds carry CTP coins).
	S := []int32{0, 1}
	SU := []int32{0, 1, u}
	lhs = 0.5 * (FracCovered(rr, SU, 6) - FracCovered(rr, S, 6))
	rhs = FracCovered(rrc, SU, 6) - FracCovered(rrc, S, 6)
	if lhs > rhs+0.005 {
		t.Errorf("Theorem 5 (S≠∅): δ·RR marginal %.5f exceeds RRC marginal %.5f", lhs, rhs)
	}
}

func TestSampleDeterministic(t *testing.T) {
	g, probs := fig1(t)
	s := NewSampler(g, probs, nil)
	a := s.SampleBatchRR(500, xrand.New(5), 7)
	b := s.SampleBatchRR(500, xrand.New(5), 7)
	if len(a) != len(b) {
		t.Fatal("batch sizes differ")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("set %d differs in size", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("set %d element %d differs", i, j)
			}
		}
	}
	// Different salts must give different batches.
	c := s.SampleBatchRR(500, xrand.New(5), 8)
	same := 0
	for i := range a {
		if len(a[i]) == len(c[i]) {
			same++
		}
	}
	if same == 500 {
		t.Error("salted batches suspiciously identical in shape")
	}
}

func TestSampleRRContainsRoot(t *testing.T) {
	// With all probabilities zero every RR-set is exactly its root.
	g, _ := fig1(t)
	probs := make([]float32, g.M())
	s := NewSampler(g, probs, nil)
	r := xrand.New(6)
	for i := 0; i < 200; i++ {
		set := s.SampleRR(r)
		if len(set) != 1 {
			t.Fatalf("zero-prob RR-set has %d nodes", len(set))
		}
	}
}

func TestSampleRRFullProbs(t *testing.T) {
	// With all probabilities one, the RR-set is the full ancestor closure.
	g, _ := fig1(t)
	probs := make([]float32, g.M())
	for i := range probs {
		probs[i] = 1
	}
	s := NewSampler(g, probs, nil)
	r := xrand.New(7)
	for i := 0; i < 200; i++ {
		set := s.SampleRR(r)
		root := set[0]
		// Ancestors per the gadget topology.
		wantSize := map[int32]int{0: 1, 1: 1, 2: 3, 3: 4, 4: 4, 5: 6}[root]
		if len(set) != wantSize {
			t.Fatalf("root %d: set size %d, want %d", root, len(set), wantSize)
		}
	}
}

func TestRRCPanicsWithoutCTP(t *testing.T) {
	g, probs := fig1(t)
	s := NewSampler(g, probs, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.SampleRRC(xrand.New(1))
}

func TestNewSamplerValidation(t *testing.T) {
	g, probs := fig1(t)
	t.Run("probs", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewSampler(g, probs[:3], nil)
	})
	t.Run("ctp", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewSampler(g, probs, topic.ConstCTP{Nodes: 3, P: 1})
	})
}

func TestWidth(t *testing.T) {
	g, _ := fig1(t)
	// indegrees: v1,v2:0, v3:2, v4,v5:1, v6:2
	if w := Width(g, []int32{0, 1}); w != 0 {
		t.Errorf("width of sources = %d", w)
	}
	if w := Width(g, []int32{2, 5}); w != 4 {
		t.Errorf("width of {v3,v6} = %d, want 4", w)
	}
}

func TestFracCoveredEdges(t *testing.T) {
	if f := FracCovered(nil, []int32{1}, 5); f != 0 {
		t.Errorf("empty family coverage %v", f)
	}
	sets := [][]int32{{0, 1}, {2}, {3, 4}}
	if f := FracCovered(sets, nil, 5); f != 0 {
		t.Errorf("empty seed coverage %v", f)
	}
	if f := FracCovered(sets, []int32{2, 3}, 5); math.Abs(f-2.0/3) > 1e-12 {
		t.Errorf("coverage %v, want 2/3", f)
	}
}

func TestCollectionGreedyMaxCover(t *testing.T) {
	c := NewCollection(5)
	c.AddBatch([][]int32{{0, 1}, {0, 2}, {3}, {0}, {3, 4}})
	if c.NumSets() != 5 {
		t.Fatalf("NumSets %d", c.NumSets())
	}
	u, cov, ok := c.BestNode(nil)
	if !ok || u != 0 || cov != 3 {
		t.Fatalf("BestNode = %d,%d,%v; want node 0 cov 3", u, cov, ok)
	}
	covered := c.CoverNode(u)
	c.Drop(u)
	if covered != 3 || c.NumCovered() != 3 {
		t.Fatalf("CoverNode covered %d (total %d)", covered, c.NumCovered())
	}
	// Residuals: node1:0, node2:0, node3:2, node4:1.
	u, cov, ok = c.BestNode(nil)
	if !ok || u != 3 || cov != 2 {
		t.Fatalf("second BestNode = %d,%d,%v; want node 3 cov 2", u, cov, ok)
	}
	c.CoverNode(u)
	c.Drop(u)
	if _, _, ok := c.BestNode(nil); ok {
		t.Fatal("expected no remaining coverage")
	}
	if c.NumCovered() != 5 {
		t.Fatalf("NumCovered %d, want 5", c.NumCovered())
	}
}

func TestCollectionEligibilityFilter(t *testing.T) {
	c := NewCollection(4)
	c.AddBatch([][]int32{{0, 1}, {0, 1}, {1, 2}})
	blocked := map[int32]bool{0: true, 1: true}
	u, cov, ok := c.BestNode(func(v int32) bool { return !blocked[v] })
	if !ok || u != 2 || cov != 1 {
		t.Fatalf("filtered BestNode = %d,%d,%v", u, cov, ok)
	}
	// Filter drop is permanent: even with an always-true filter now, 0 and 1
	// remain dead (the caller contract is monotone ineligibility).
	c.CoverNode(2)
	c.Drop(2)
	if _, _, ok := c.BestNode(nil); ok {
		t.Fatal("dropped nodes resurfaced")
	}
}

func TestCollectionGrowth(t *testing.T) {
	c := NewCollection(3)
	c.Add([]int32{0})
	u, _, _ := c.BestNode(nil)
	if u != 0 {
		t.Fatalf("BestNode %d", u)
	}
	c.CoverNode(0)
	// Append two more sets; node 0 gains residual coverage again and the
	// heap must see the refreshed value.
	boundary := c.NumSets()
	c.AddBatch([][]int32{{0, 2}, {0}, {1}})
	u, cov, ok := c.BestNode(nil)
	if !ok || u != 0 || cov != 2 {
		t.Fatalf("after growth BestNode = %d,%d,%v; want 0,2", u, cov, ok)
	}
	// UpdateEstimates path: credit node 0 with new sets only.
	got := c.CountAndCoverFrom(0, boundary)
	if got != 2 {
		t.Fatalf("CountAndCoverFrom = %d, want 2", got)
	}
	u, cov, ok = c.BestNode(nil)
	if !ok || u != 1 || cov != 1 {
		t.Fatalf("after credit BestNode = %d,%d,%v; want 1,1", u, cov, ok)
	}
}

// TestCollectionMatchesBruteForce cross-checks the lazy-heap greedy against
// a brute-force max-cover on random inputs (property test).
func TestCollectionMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 4 + r.IntN(6)
		numSets := 1 + r.IntN(30)
		sets := make([][]int32, numSets)
		for i := range sets {
			sz := 1 + r.IntN(3)
			s := map[int32]bool{}
			for len(s) < sz {
				s[int32(r.IntN(n))] = true
			}
			for u := range s {
				sets[i] = append(sets[i], u)
			}
		}
		c := NewCollection(n)
		c.AddBatch(sets)
		coveredBrute := make([]bool, numSets)
		for step := 0; step < 3; step++ {
			// Brute-force best.
			bestCov := 0
			for u := 0; u < n; u++ {
				cov := 0
				for i, s := range sets {
					if coveredBrute[i] {
						continue
					}
					for _, w := range s {
						if int(w) == u {
							cov++
							break
						}
					}
				}
				if cov > bestCov {
					bestCov = cov
				}
			}
			u, cov, ok := c.BestNode(nil)
			if bestCov == 0 {
				return !ok
			}
			if !ok || cov != bestCov {
				return false
			}
			// Apply the heap's choice to both sides.
			c.CoverNode(u)
			c.Drop(u)
			for i, s := range sets {
				if coveredBrute[i] {
					continue
				}
				for _, w := range s {
					if w == u {
						coveredBrute[i] = true
						break
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLnChoose(t *testing.T) {
	// ln C(10, 3) = ln 120
	if got := LnChoose(10, 3); math.Abs(got-math.Log(120)) > 1e-9 {
		t.Errorf("LnChoose(10,3) = %v", got)
	}
	if got := LnChoose(5, 0); got != 0 {
		t.Errorf("LnChoose(5,0) = %v", got)
	}
	if got := LnChoose(5, 5); got != 0 {
		t.Errorf("LnChoose(5,5) = %v", got)
	}
	if got := LnChoose(5, 6); !math.IsInf(got, -1) {
		t.Errorf("LnChoose(5,6) = %v", got)
	}
	// Symmetry C(n,s) = C(n,n-s).
	if a, b := LnChoose(100, 30), LnChoose(100, 70); math.Abs(a-b) > 1e-6 {
		t.Errorf("LnChoose symmetry: %v vs %v", a, b)
	}
}

func TestLFormula(t *testing.T) {
	// Hand-evaluate Eq. 5 for n=1000, s=10, eps=0.1, ell=1, OPT=50.
	n, s := int64(1000), int64(10)
	eps, ell, opt := 0.1, 1.0, 50.0
	want := (8 + 2*eps) * 1000 * (ell*math.Log(1000) + LnChoose(n, s) + math.Ln2) / (opt * eps * eps)
	if got := L(n, s, eps, ell, opt); math.Abs(got-want) > 1e-6 {
		t.Errorf("L = %v, want %v", got, want)
	}
	// Larger OPT ⇒ fewer samples; larger s ⇒ more samples.
	if L(n, s, eps, ell, 100) >= L(n, s, eps, ell, 50) {
		t.Error("L not decreasing in OPT")
	}
	if L(n, 20, eps, ell, opt) <= L(n, 10, eps, ell, opt) {
		t.Error("L not increasing in s")
	}
	if L(0, 5, eps, ell, opt) != 0 || L(n, 0, eps, ell, opt) != 0 {
		t.Error("degenerate L not zero")
	}
}

func TestTheta(t *testing.T) {
	th := Theta(1000, 10, 0.1, 1, 50, 100, 0)
	if th < 100 {
		t.Errorf("Theta below floor: %d", th)
	}
	if got := Theta(10, 1, 10, 1, 1e12, 50, 0); got != 50 {
		t.Errorf("floor not applied: %d", got)
	}
	if got := Theta(1000, 10, 0.01, 1, 1, 1, 500); got != 500 {
		t.Errorf("ceiling not applied: %d", got)
	}
}

func TestCollectionTopNodes(t *testing.T) {
	c := NewCollection(5)
	c.AddBatch([][]int32{{0, 1}, {0, 2}, {0}, {3}, {3, 4}, {1}})
	nodes, covs := c.TopNodes(3, nil)
	if len(nodes) != 3 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	// Coverage: node0=3, node3=2, node1=2 (ties broken arbitrarily).
	if nodes[0] != 0 || covs[0] != 3 {
		t.Fatalf("top = (%d,%d), want node 0 cov 3", nodes[0], covs[0])
	}
	for i := 1; i < len(covs); i++ {
		if covs[i] > covs[i-1] {
			t.Fatalf("covs not sorted: %v", covs)
		}
	}
	// Heap intact: BestNode still works and agrees.
	u, cov, ok := c.BestNode(nil)
	if !ok || u != 0 || cov != 3 {
		t.Fatalf("BestNode after TopNodes = %d,%d,%v", u, cov, ok)
	}
	// Repeated call yields the same answer (no destructive pops).
	nodes2, _ := c.TopNodes(3, nil)
	if nodes2[0] != nodes[0] {
		t.Fatal("TopNodes not repeatable")
	}
	// k larger than distinct nodes.
	all, _ := c.TopNodes(100, nil)
	if len(all) != 5 {
		t.Fatalf("TopNodes(100) returned %d nodes", len(all))
	}
}

func TestWeightedTopNodes(t *testing.T) {
	c := NewWeightedCollection(4)
	c.AddBatch([][]int32{{0, 1}, {0}, {2}, {2}, {2}})
	nodes, wcovs := c.TopNodes(2, nil)
	if len(nodes) != 2 || nodes[0] != 2 || wcovs[0] != 3 {
		t.Fatalf("top = %v %v", nodes, wcovs)
	}
	c.Commit(2, 0.9)
	c.Drop(2)
	nodes, wcovs = c.TopNodes(2, nil)
	if nodes[0] != 0 || wcovs[0] != 2 {
		t.Fatalf("after commit top = %v %v", nodes, wcovs)
	}
}

func TestTopNodesEligibility(t *testing.T) {
	c := NewCollection(3)
	c.AddBatch([][]int32{{0}, {0}, {1}, {2}})
	nodes, _ := c.TopNodes(3, func(u int32) bool { return u != 0 })
	for _, u := range nodes {
		if u == 0 {
			t.Fatal("ineligible node returned")
		}
	}
	if len(nodes) != 2 {
		t.Fatalf("got %d nodes", len(nodes))
	}
}
