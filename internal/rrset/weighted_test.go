package rrset

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestWeightedDegeneratesToHardWithUnitCTP(t *testing.T) {
	// With δ = 1 the weighted index must replay Collection's behaviour.
	sets := [][]int32{{0, 1}, {0, 2}, {3}, {0}, {3, 4}}
	hard := NewCollection(5)
	hard.AddBatch(sets)
	soft := NewWeightedCollection(5)
	soft.AddBatch(sets)

	for step := 0; step < 3; step++ {
		hu, hc, hok := hard.BestNode(nil)
		su, sc, sok := soft.BestNode(nil)
		if hok != sok {
			t.Fatalf("step %d: ok mismatch", step)
		}
		if !hok {
			break
		}
		if hu != su || math.Abs(float64(hc)-sc) > 1e-9 {
			t.Fatalf("step %d: hard (%d,%d) vs soft (%d,%v)", step, hu, hc, su, sc)
		}
		hcov := hard.CoverNode(hu)
		hard.Drop(hu)
		smass := soft.Commit(su, 1)
		soft.Drop(su)
		if math.Abs(float64(hcov)-smass) > 1e-9 {
			t.Fatalf("step %d: covered %d vs mass %v", step, hcov, smass)
		}
		if math.Abs(float64(hard.NumCovered())-soft.CoveredMass()) > 1e-9 {
			t.Fatalf("step %d: covered totals diverge", step)
		}
	}
}

func TestWeightedCommitDecay(t *testing.T) {
	// One set {0,1}; committing 0 with δ=0.25 leaves weight 0.75.
	c := NewWeightedCollection(2)
	c.Add([]int32{0, 1})
	if got := c.WeightedCoverage(1); got != 1 {
		t.Fatalf("initial wcov %v", got)
	}
	mass := c.Commit(0, 0.25)
	if math.Abs(mass-0.25) > 1e-12 {
		t.Fatalf("claimed %v, want 0.25", mass)
	}
	if got := c.WeightedCoverage(1); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("wcov after decay %v, want 0.75", got)
	}
	// Committing 1 with δ=0.5 claims 0.5·0.75.
	mass = c.Commit(1, 0.5)
	if math.Abs(mass-0.375) > 1e-12 {
		t.Fatalf("claimed %v, want 0.375", mass)
	}
	if math.Abs(c.CoveredMass()-0.625) > 1e-12 {
		t.Fatalf("covered mass %v, want 1−0.75·0.5", c.CoveredMass())
	}
}

// TestWeightedCoveredMassExact verifies Σ(1−w_R) = Σ_R [1 − Π_{u∈S∩R}(1−δ_u)]
// against a brute-force recomputation on random inputs.
func TestWeightedCoveredMassExact(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 4 + r.IntN(5)
		numSets := 1 + r.IntN(20)
		sets := make([][]int32, numSets)
		for i := range sets {
			sz := 1 + r.IntN(3)
			m := map[int32]bool{}
			for len(m) < sz {
				m[int32(r.IntN(n))] = true
			}
			for u := range m {
				sets[i] = append(sets[i], u)
			}
		}
		c := NewWeightedCollection(n)
		c.AddBatch(sets)
		deltas := map[int32]float64{}
		var committed []int32
		for step := 0; step < 3; step++ {
			u := int32(r.IntN(n))
			if _, dup := deltas[u]; dup {
				continue
			}
			d := r.Uniform(0, 1)
			deltas[u] = d
			committed = append(committed, u)
			c.Commit(u, d)
		}
		// Brute-force recomputation.
		var want float64
		for _, set := range sets {
			w := 1.0
			for _, u := range set {
				if d, ok := deltas[u]; ok {
					w *= 1 - d
				}
			}
			want += 1 - w
		}
		_ = committed
		return math.Abs(c.CoveredMass()-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedBestNodeTracksDecay(t *testing.T) {
	// Sets {0,1} ×3 and {2} ×2: node 0 leads; after committing 0 with a
	// high δ node 2 takes over.
	c := NewWeightedCollection(3)
	c.AddBatch([][]int32{{0, 1}, {0, 1}, {0, 1}, {2}, {2}})
	u, w, ok := c.BestNode(nil)
	if !ok || u != 0 || math.Abs(w-3) > 1e-9 {
		t.Fatalf("BestNode = %d,%v,%v", u, w, ok)
	}
	c.Commit(0, 0.9)
	c.Drop(0)
	u, w, ok = c.BestNode(nil)
	if !ok || u != 2 || math.Abs(w-2) > 1e-9 {
		t.Fatalf("after decay BestNode = %d,%v,%v; want node 2, wcov 2", u, w, ok)
	}
	// Node 1 still has residual 3·0.1.
	if math.Abs(c.WeightedCoverage(1)-0.3) > 1e-9 {
		t.Fatalf("residual wcov %v", c.WeightedCoverage(1))
	}
}

func TestWeightedCreditFrom(t *testing.T) {
	c := NewWeightedCollection(2)
	c.Add([]int32{0})
	c.Commit(0, 0.5)
	boundary := c.NumSets()
	c.AddBatch([][]int32{{0}, {0, 1}})
	// Re-crediting seed 0 on the new sets claims 0.5·(1+1).
	got := c.CreditFrom(0, 0.5, boundary)
	if math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("CreditFrom %v, want 1.0", got)
	}
	// Old set untouched by the re-credit: total mass 0.5 + 1.0.
	if math.Abs(c.CoveredMass()-1.5) > 1e-12 {
		t.Fatalf("covered mass %v", c.CoveredMass())
	}
	// Node 1's view decayed only via the new set.
	if math.Abs(c.WeightedCoverage(1)-0.5) > 1e-12 {
		t.Fatalf("wcov(1) %v", c.WeightedCoverage(1))
	}
}

func TestWeightedEligibilityAndGrowth(t *testing.T) {
	c := NewWeightedCollection(3)
	c.AddBatch([][]int32{{0}, {0}, {1}})
	u, _, _ := c.BestNode(func(v int32) bool { return v != 0 })
	if u != 1 {
		t.Fatalf("filtered best %d", u)
	}
	// Node 0 was dropped permanently by the filter; growth re-ranks 1.
	c.AddBatch([][]int32{{1}, {2}})
	u, w, ok := c.BestNode(nil)
	if !ok || u != 1 || math.Abs(w-2) > 1e-9 {
		t.Fatalf("after growth best = %d,%v,%v", u, w, ok)
	}
}

func TestWeightedCommitPanicsOnBadDelta(t *testing.T) {
	c := NewWeightedCollection(1)
	c.Add([]int32{0})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Commit(0, 1.5)
}

func TestWeightedMemBytes(t *testing.T) {
	c := NewWeightedCollection(10)
	if c.MemBytes() <= 0 {
		t.Fatal("empty index reports nonpositive memory")
	}
	before := c.MemBytes()
	c.AddBatch([][]int32{{0, 1, 2}, {3, 4}})
	if c.MemBytes() <= before {
		t.Fatal("memory estimate did not grow")
	}
}
