// Binary snapshot encoding for RR-set families. A long-lived allocation
// service (internal/serve) persists each dataset's per-ad samples so that a
// restarted process starts warm — loading a snapshot is pure I/O, orders of
// magnitude cheaper than re-running the reverse-BFS sampling that dominates
// TIRM's cost. The format is little-endian and versioned; core.Index
// composes per-ad sections written with EncodeSets into one index file.
package rrset

import (
	"encoding/binary"
	"fmt"
	"io"
)

// setsMagic guards each encoded set family ("RRS" + version 1).
const setsMagic = uint32(0x52525331) // "RRS1"

// EncodeSets writes one RR-set family to w: magic, set count, then each
// set's length and members as uint32s. Sections are exactly delimited, so
// several families can be concatenated on one stream and decoded back.
func EncodeSets(w io.Writer, sets [][]int32) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], setsMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(sets)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var buf []byte
	for _, set := range sets {
		need := 4 + 4*len(set)
		if cap(buf) < need {
			buf = make([]byte, need)
		}
		buf = buf[:need]
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(set)))
		for i, u := range set {
			binary.LittleEndian.PutUint32(buf[4+4*i:], uint32(u))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// DecodeSets reads one family written by EncodeSets, consuming exactly its
// section of the stream (wrap the source in a bufio.Reader for performance
// — DecodeSets deliberately never reads ahead, so families can be decoded
// back to back from one reader). n is the node-universe size; every member
// must lie in [0, n) and no set may exceed n members, which bounds the
// damage a truncated or corrupt snapshot can do.
func DecodeSets(r io.Reader, n int) ([][]int32, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("rrset: snapshot header: %w", err)
	}
	if magic := binary.LittleEndian.Uint32(hdr[:4]); magic != setsMagic {
		return nil, fmt.Errorf("rrset: bad snapshot magic %#x", magic)
	}
	count := binary.LittleEndian.Uint32(hdr[4:])
	// Cap the preallocation and grow with the bytes actually read: a
	// corrupt count field must fail at the truncated stream, not OOM the
	// process up front.
	prealloc := int(count)
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	sets := make([][]int32, 0, prealloc)
	var buf []byte
	for i := 0; i < int(count); i++ {
		var szb [4]byte
		if _, err := io.ReadFull(r, szb[:]); err != nil {
			return nil, fmt.Errorf("rrset: set %d length: %w", i, err)
		}
		sz := binary.LittleEndian.Uint32(szb[:])
		if int(sz) > n {
			return nil, fmt.Errorf("rrset: set %d has %d members, universe is %d", i, sz, n)
		}
		need := 4 * int(sz)
		if cap(buf) < need {
			buf = make([]byte, need)
		}
		buf = buf[:need]
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("rrset: set %d members: %w", i, err)
		}
		set := make([]int32, sz)
		for k := range set {
			v := binary.LittleEndian.Uint32(buf[4*k:])
			if int(v) >= n {
				return nil, fmt.Errorf("rrset: set %d member %d out of range", i, v)
			}
			set[k] = int32(v)
		}
		sets = append(sets, set)
	}
	return sets, nil
}
