// Binary snapshot encoding for RR-set families. A long-lived allocation
// service (internal/serve) persists each dataset's per-ad samples so that a
// restarted process starts warm — loading a snapshot is pure I/O, orders of
// magnitude cheaper than re-running the reverse-BFS sampling that dominates
// TIRM's cost. The format is little-endian and versioned; core.Index
// composes per-ad sections written with EncodeSetFamily into one index
// file.
//
// Format-version policy: each section self-describes via its magic, and
// DecodeSetFamily accepts every version ever shipped — snapshots written by
// old builds must keep loading forever. Writers always emit the newest
// version. Versions:
//
//   - "RRS1": one length-prefixed record per set. Simple, but decoding is a
//     read per set and the layout forces per-set slices.
//   - "RRS2" (current): the family's flat CSR arrays (set lengths, then the
//     member arena) written in bulk, guarded by a CRC32 (IEEE) footer over
//     the section payload. Encoding and decoding are a handful of large
//     reads/writes, and the decoded family is two allocations.
//
// Bump the version (never reinterpret an existing magic) when the layout
// changes; add the new decoder beside the old ones.
package rrset

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// setsMagicV1 guards a version-1 encoded set family ("RRS1").
	setsMagicV1 = uint32(0x52525331)
	// setsMagicV2 guards a version-2 (flat CSR + CRC32) family ("RRS2").
	setsMagicV2 = uint32(0x52525332)
)

// codecChunk bounds the scratch buffer of the bulk codec (in uint32
// values): sections stream through fixed-size chunks, so a corrupt header
// can never force a huge upfront allocation.
const codecChunk = 1 << 14

// EncodeSets writes one RR-set family to w in the legacy v1 layout: magic,
// set count, then each set's length and members as uint32s. Retained so
// back-compat tests (and tools that need to fabricate old snapshots) can
// produce v1 sections; new code should write EncodeSetFamily's v2 layout.
func EncodeSets(w io.Writer, sets [][]int32) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], setsMagicV1)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(sets)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var buf []byte
	for _, set := range sets {
		need := 4 + 4*len(set)
		if cap(buf) < need {
			buf = make([]byte, need)
		}
		buf = buf[:need]
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(set)))
		for i, u := range set {
			binary.LittleEndian.PutUint32(buf[4+4*i:], uint32(u))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// EncodeSetFamily writes one RR-set family section in the current (v2)
// layout: magic, set count, total member count, the per-set lengths, the
// flat member arena, and a CRC32 footer over everything after the magic.
// All arrays are emitted in large chunks straight from the CSR arena — no
// per-set framing. Sections are exactly delimited, so several families can
// be concatenated on one stream and decoded back.
func EncodeSetFamily(w io.Writer, v FamilyView) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], setsMagicV2)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)

	k := v.Len()
	var meta [12]byte
	binary.LittleEndian.PutUint32(meta[:4], uint32(k))
	binary.LittleEndian.PutUint64(meta[4:], uint64(v.NumMembers()))
	if _, err := mw.Write(meta[:]); err != nil {
		return err
	}

	buf := make([]byte, 4*codecChunk)
	// Lengths, chunked.
	for i := 0; i < k; {
		n := 0
		for ; i < k && n < codecChunk; i, n = i+1, n+1 {
			binary.LittleEndian.PutUint32(buf[4*n:], uint32(v.offsets[i+1]-v.offsets[i]))
		}
		if _, err := mw.Write(buf[:4*n]); err != nil {
			return err
		}
	}
	// Member arena, chunked. (k == 0 also covers the zero-value view, whose
	// offsets slice is nil and must not be indexed.)
	var arena []int32
	if k > 0 {
		arena = v.members[v.offsets[0]:v.offsets[k]]
	}
	for len(arena) > 0 {
		n := len(arena)
		if n > codecChunk {
			n = codecChunk
		}
		for j := 0; j < n; j++ {
			binary.LittleEndian.PutUint32(buf[4*j:], uint32(arena[j]))
		}
		if _, err := w.Write(buf[:4*n]); err != nil {
			return err
		}
		crc.Write(buf[:4*n])
		arena = arena[n:]
	}

	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], crc.Sum32())
	_, err := w.Write(foot[:])
	return err
}

// DecodeSetFamily reads one family section written by EncodeSetFamily (v2)
// or the legacy EncodeSets (v1), consuming exactly its bytes of the stream
// (wrap the source in a bufio.Reader for performance — the decoder never
// reads ahead, so families decode back to back from one reader). n is the
// node-universe size; every member must lie in [0, n) and no set may
// exceed n members, which bounds the damage a truncated or corrupt
// snapshot can do. v2 sections additionally fail on CRC32 mismatch, so a
// bit-flipped member is caught even when it stays in range.
func DecodeSetFamily(r io.Reader, n int) (*SetFamily, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("rrset: snapshot header: %w", err)
	}
	switch magic := binary.LittleEndian.Uint32(hdr[:]); magic {
	case setsMagicV1:
		return decodeFamilyV1(r, n)
	case setsMagicV2:
		return decodeFamilyV2(r, n)
	default:
		return nil, fmt.Errorf("rrset: bad snapshot magic %#x", magic)
	}
}

// DecodeSets is DecodeSetFamily materialized as [][]int32 (views into the
// decoded arena; nil for empty sets) — the slice-shaped compatibility
// surface.
func DecodeSets(r io.Reader, n int) ([][]int32, error) {
	fam, err := DecodeSetFamily(r, n)
	if err != nil {
		return nil, err
	}
	return fam.Sets(), nil
}

// decodeFamilyV1 reads the body of a v1 section (magic already consumed).
func decodeFamilyV1(r io.Reader, n int) (*SetFamily, error) {
	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, fmt.Errorf("rrset: snapshot header: %w", err)
	}
	count := binary.LittleEndian.Uint32(cnt[:])
	// Cap the preallocation and grow with the bytes actually read: a
	// corrupt count field must fail at the truncated stream, not OOM the
	// process up front.
	prealloc := int(count)
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	fam := &SetFamily{offsets: make([]int64, 1, prealloc+1)}
	var buf []byte
	for i := 0; i < int(count); i++ {
		var szb [4]byte
		if _, err := io.ReadFull(r, szb[:]); err != nil {
			return nil, fmt.Errorf("rrset: set %d length: %w", i, err)
		}
		sz := binary.LittleEndian.Uint32(szb[:])
		if int(sz) > n {
			return nil, fmt.Errorf("rrset: set %d has %d members, universe is %d", i, sz, n)
		}
		need := 4 * int(sz)
		if cap(buf) < need {
			buf = make([]byte, need)
		}
		buf = buf[:need]
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("rrset: set %d members: %w", i, err)
		}
		for k := 0; k < int(sz); k++ {
			v := binary.LittleEndian.Uint32(buf[4*k:])
			if int(v) >= n {
				return nil, fmt.Errorf("rrset: set %d member %d out of range", i, v)
			}
			fam.members = append(fam.members, int32(v))
		}
		fam.offsets = append(fam.offsets, int64(len(fam.members)))
	}
	return fam, nil
}

// decodeFamilyV2 reads the body of a v2 section (magic already consumed):
// bulk lengths, bulk members, CRC32 footer. Every read streams through
// bounded chunks and is validated as it arrives, so corrupt counts fail at
// the truncated stream instead of allocating their claimed size.
func decodeFamilyV2(r io.Reader, n int) (*SetFamily, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)

	var meta [12]byte
	if _, err := io.ReadFull(tr, meta[:]); err != nil {
		return nil, fmt.Errorf("rrset: snapshot header: %w", err)
	}
	count := int(binary.LittleEndian.Uint32(meta[:4]))
	total := binary.LittleEndian.Uint64(meta[4:])
	if total > uint64(count)*uint64(n) {
		return nil, fmt.Errorf("rrset: snapshot claims %d members for %d sets over universe %d", total, count, n)
	}

	preSets := count
	if preSets > 1<<20 {
		preSets = 1 << 20
	}
	preMembers := int64(total)
	if preMembers > 1<<22 {
		preMembers = 1 << 22
	}
	fam := &SetFamily{
		offsets: make([]int64, 1, preSets+1),
		members: make([]int32, 0, preMembers),
	}

	buf := make([]byte, 4*codecChunk)
	var sum uint64
	for i := 0; i < count; {
		chunk := count - i
		if chunk > codecChunk {
			chunk = codecChunk
		}
		if _, err := io.ReadFull(tr, buf[:4*chunk]); err != nil {
			return nil, fmt.Errorf("rrset: set lengths at %d: %w", i, err)
		}
		for j := 0; j < chunk; j++ {
			sz := binary.LittleEndian.Uint32(buf[4*j:])
			if int(sz) > n {
				return nil, fmt.Errorf("rrset: set %d has %d members, universe is %d", i+j, sz, n)
			}
			sum += uint64(sz)
			fam.offsets = append(fam.offsets, int64(sum))
		}
		i += chunk
	}
	if sum != total {
		return nil, fmt.Errorf("rrset: set lengths sum to %d, header claims %d", sum, total)
	}

	for read := uint64(0); read < total; {
		chunk := total - read
		if chunk > codecChunk {
			chunk = codecChunk
		}
		if _, err := io.ReadFull(tr, buf[:4*chunk]); err != nil {
			return nil, fmt.Errorf("rrset: members at %d: %w", read, err)
		}
		for j := uint64(0); j < chunk; j++ {
			v := binary.LittleEndian.Uint32(buf[4*j:])
			if int(v) >= n {
				return nil, fmt.Errorf("rrset: member %d out of range", v)
			}
			fam.members = append(fam.members, int32(v))
		}
		read += chunk
	}

	var foot [4]byte
	if _, err := io.ReadFull(r, foot[:]); err != nil {
		return nil, fmt.Errorf("rrset: snapshot footer: %w", err)
	}
	if got, want := crc.Sum32(), binary.LittleEndian.Uint32(foot[:]); got != want {
		return nil, fmt.Errorf("rrset: snapshot CRC mismatch: computed %#x, stored %#x", got, want)
	}
	return fam, nil
}
