package rrset

import (
	"testing"

	"repro/internal/xrand"
)

// randomKernelFamily draws k random sets over n nodes with roughly avg
// members each (distinct members, ascending within a set is not required
// by any kernel and deliberately not enforced here).
func randomKernelFamily(rng *xrand.Rand, n, k, avg int) *SetFamily {
	f := NewSetFamily()
	seen := make([]int, n)
	gen := 0
	var set []int32
	for i := 0; i < k; i++ {
		gen++
		sz := 1 + rng.IntN(2*avg-1)
		if sz > n {
			sz = n
		}
		set = set[:0]
		for len(set) < sz {
			u := rng.IntN(n)
			if seen[u] == gen {
				continue
			}
			seen[u] = gen
			set = append(set, int32(u))
		}
		f.Append(set)
	}
	return f
}

// kernelPair builds a sparse- and a bitset-kernel collection over the same
// prepared family, failing the test if the bitset kernel does not
// activate.
func kernelPair(t testing.TB, n int, f *SetFamily) (sp, bt *Collection) {
	t.Helper()
	v := f.View()
	inv := BuildInverted(n, v, 0)
	inv.PrepareCover()
	inv.PrepareCoverBits()
	sp = NewCollectionFromFamily(n, v, inv)
	bt = NewCollectionFromFamily(n, v, inv)
	if got := bt.UseKernel(KernelBitset); got != KernelBitset {
		t.Fatalf("UseKernel(bitset) = %v, want bitset", got)
	}
	if got := sp.Kernel(); got != KernelSparse {
		t.Fatalf("default kernel = %v, want sparse", got)
	}
	return sp, bt
}

// compareCollections verifies the two collections expose identical
// observable coverage state.
func compareCollections(t *testing.T, sp, bt *Collection, tag string) {
	t.Helper()
	if sp.NumCovered() != bt.NumCovered() {
		t.Fatalf("%s: NumCovered sparse=%d bitset=%d", tag, sp.NumCovered(), bt.NumCovered())
	}
	for u := 0; u < sp.N(); u++ {
		if sp.Coverage(int32(u)) != bt.Coverage(int32(u)) {
			t.Fatalf("%s: Coverage(%d) sparse=%d bitset=%d", tag, u, sp.Coverage(int32(u)), bt.Coverage(int32(u)))
		}
	}
	sn, sc := sp.TopNodes(8, nil)
	bn, bc := bt.TopNodes(8, nil)
	if len(sn) != len(bn) {
		t.Fatalf("%s: TopNodes len sparse=%d bitset=%d", tag, len(sn), len(bn))
	}
	for i := range sn {
		if sn[i] != bn[i] || sc[i] != bc[i] {
			t.Fatalf("%s: TopNodes[%d] sparse=(%d,%d) bitset=(%d,%d)", tag, i, sn[i], sc[i], bn[i], bc[i])
		}
	}
}

// TestKernelEquivalenceCover drives identical greedy cover sequences
// through the sparse and bitset kernels — including credit passes and
// post-activation growth segments — and requires byte-identical coverage
// state and candidate ordering throughout.
func TestKernelEquivalenceCover(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		rng := xrand.New(seed)
		n := 48 + rng.IntN(80)
		k := 100 + rng.IntN(400)
		f := randomKernelFamily(rng, n, k, 6)
		sp, bt := kernelPair(t, n, f)
		compareCollections(t, sp, bt, "init")

		for it := 0; it < 6; it++ {
			u, cov, ok := sp.BestNode(nil)
			bu, bcov, bok := bt.BestNode(nil)
			if u != bu || cov != bcov || ok != bok {
				t.Fatalf("BestNode sparse=(%d,%d,%v) bitset=(%d,%d,%v)", u, cov, ok, bu, bcov, bok)
			}
			if !ok {
				break
			}
			if got, want := bt.CoverNode(u), sp.CoverNode(u); got != want {
				t.Fatalf("CoverNode(%d) sparse=%d bitset=%d", u, want, got)
			}
			sp.Drop(u)
			bt.Drop(u)
			compareCollections(t, sp, bt, "cover")
		}

		// Credit pass over a mid-stream boundary.
		boundary := k / 3
		for u := 0; u < n; u += 7 {
			if got, want := bt.CountAndCoverFrom(int32(u), boundary), sp.CountAndCoverFrom(int32(u), boundary); got != want {
				t.Fatalf("CountAndCoverFrom(%d,%d) sparse=%d bitset=%d", u, boundary, want, got)
			}
		}
		compareCollections(t, sp, bt, "credit")

		// Growth after activation: the new segment takes the sparse walk
		// in both collections.
		g := randomKernelFamily(rng, n, 40, 5)
		sp.AddFamily(g.View())
		bt.AddFamily(g.View())
		u, _, ok := sp.BestNode(nil)
		bu, _, bok := bt.BestNode(nil)
		if u != bu || ok != bok {
			t.Fatalf("post-growth BestNode sparse=(%d,%v) bitset=(%d,%v)", u, ok, bu, bok)
		}
		if ok {
			if got, want := bt.CoverNode(u), sp.CoverNode(u); got != want {
				t.Fatalf("post-growth CoverNode(%d) sparse=%d bitset=%d", u, want, got)
			}
		}
		compareCollections(t, sp, bt, "growth")
	}
}

// TestKernelEquivalenceDelta checks the sharded delta-capture path: both
// kernels must emit the same covered counts and the same sparse decrement
// vectors in the same order.
func TestKernelEquivalenceDelta(t *testing.T) {
	rng := xrand.New(11)
	n := 64
	k := 300
	f := randomKernelFamily(rng, n, k, 6)
	sp, bt := kernelPair(t, n, f)

	var sn, sd, bn, bd []int32
	for it := 0; it < 5; it++ {
		u, cov, ok := sp.BestNode(nil)
		bu, bcov, bok := bt.BestNode(nil)
		if u != bu || cov != bcov || ok != bok {
			t.Fatalf("BestNode sparse=(%d,%d,%v) bitset=(%d,%d,%v)", u, cov, ok, bu, bcov, bok)
		}
		if !ok {
			break
		}
		var sc, bc int
		sc, sn, sd = sp.CoverNodeDelta(u, sn, sd)
		bc, bn, bd = bt.CoverNodeDelta(u, bn, bd)
		if sc != bc || len(sn) != len(bn) {
			t.Fatalf("CoverNodeDelta(%d): covered %d/%d, nodes %d/%d", u, sc, bc, len(sn), len(bn))
		}
		for i := range sn {
			if sn[i] != bn[i] || sd[i] != bd[i] {
				t.Fatalf("CoverNodeDelta(%d)[%d]: sparse=(%d,%d) bitset=(%d,%d)", u, i, sn[i], sd[i], bn[i], bd[i])
			}
		}
		sp.Drop(u)
		bt.Drop(u)
	}

	boundary := k / 2
	for u := 0; u < n; u += 5 {
		var sc, bc int
		sc, sn, sd = sp.CountAndCoverFromDelta(int32(u), boundary, sn, sd)
		bc, bn, bd = bt.CountAndCoverFromDelta(int32(u), boundary, bn, bd)
		if sc != bc || len(sn) != len(bn) {
			t.Fatalf("CountAndCoverFromDelta(%d): covered %d/%d, nodes %d/%d", u, sc, bc, len(sn), len(bn))
		}
		for i := range sn {
			if sn[i] != bn[i] || sd[i] != bd[i] {
				t.Fatalf("CountAndCoverFromDelta(%d)[%d]: sparse=(%d,%d) bitset=(%d,%d)", u, i, sn[i], sd[i], bn[i], bd[i])
			}
		}
	}
	compareCollections(t, sp, bt, "delta")
}

// TestKernelEquivalenceWeighted checks the soft-coverage commit: claimed
// mass, per-node weighted coverages, and candidate order must match the
// sparse kernel bit for bit (identical float operation order).
func TestKernelEquivalenceWeighted(t *testing.T) {
	rng := xrand.New(23)
	n := 56
	k := 250
	f := randomKernelFamily(rng, n, k, 6)
	v := f.View()
	inv := BuildInverted(n, v, 0)
	inv.PrepareCover()
	inv.PrepareCoverBits()
	sp := NewWeightedCollectionFromFamily(n, v, inv)
	bt := NewWeightedCollectionFromFamily(n, v, inv)
	if got := bt.UseKernel(KernelBitset); got != KernelBitset {
		t.Fatalf("UseKernel(bitset) = %v, want bitset", got)
	}

	deltas := []float64{1, 0.5, 0.25, 0.75, 1, 0.1}
	for it, delta := range deltas {
		u, wc, ok := sp.BestNode(nil)
		bu, bwc, bok := bt.BestNode(nil)
		if u != bu || wc != bwc || ok != bok {
			t.Fatalf("iter %d: BestNode sparse=(%d,%g,%v) bitset=(%d,%g,%v)", it, u, wc, ok, bu, bwc, bok)
		}
		if !ok {
			break
		}
		st := sp.Commit(u, delta)
		bb := bt.Commit(u, delta)
		if st != bb {
			t.Fatalf("iter %d: Commit(%d,%g) sparse=%v bitset=%v", it, u, delta, st, bb)
		}
		if sp.CoveredMass() != bt.CoveredMass() {
			t.Fatalf("iter %d: CoveredMass sparse=%v bitset=%v", it, sp.CoveredMass(), bt.CoveredMass())
		}
		for w := 0; w < n; w++ {
			if sp.WeightedCoverage(int32(w)) != bt.WeightedCoverage(int32(w)) {
				t.Fatalf("iter %d: WeightedCoverage(%d) sparse=%v bitset=%v", it, w, sp.WeightedCoverage(int32(w)), bt.WeightedCoverage(int32(w)))
			}
		}
		sp.Drop(u)
		bt.Drop(u)
	}

	// Credit pass and growth mirror the hard-mode test.
	if st, bb := sp.CreditFrom(3, 0.5, k/2), bt.CreditFrom(3, 0.5, k/2); st != bb {
		t.Fatalf("CreditFrom sparse=%v bitset=%v", st, bb)
	}
	g := randomKernelFamily(rng, n, 30, 5)
	sp.AddFamily(g.View())
	bt.AddFamily(g.View())
	if st, bb := sp.Commit(5, 0.5), bt.Commit(5, 0.5); st != bb {
		t.Fatalf("post-growth Commit sparse=%v bitset=%v", st, bb)
	}
	for w := 0; w < n; w++ {
		if sp.WeightedCoverage(int32(w)) != bt.WeightedCoverage(int32(w)) {
			t.Fatalf("post-growth WeightedCoverage(%d) sparse=%v bitset=%v", w, sp.WeightedCoverage(int32(w)), bt.WeightedCoverage(int32(w)))
		}
	}
}

// TestKernelDensityHeuristic checks that PrepareCover builds the bitmap
// exactly when 64·memberships ≥ n·k, and that UseKernel degrades to sparse
// when the bitmap is absent or the collection shape disqualifies it.
func TestKernelDensityHeuristic(t *testing.T) {
	rng := xrand.New(5)

	// Dense: 64 sets of ~16 members over 32 nodes → memberships·64 ≫ n·k.
	dense := randomKernelFamily(rng, 32, 64, 16)
	dv := dense.View()
	dinv := BuildInverted(32, dv, 0)
	dinv.PrepareCover()
	if !dinv.HasCoverBits() {
		t.Fatal("dense sample: PrepareCover did not build the bitmap")
	}

	// Sparse: 4096 sets of ~2 members over 2048 nodes → far below the gate.
	sparse := randomKernelFamily(rng, 2048, 4096, 2)
	sv := sparse.View()
	sinv := BuildInverted(2048, sv, 0)
	sinv.PrepareCover()
	if sinv.HasCoverBits() {
		t.Fatal("sparse sample: PrepareCover built the bitmap against the density gate")
	}
	c := NewCollectionFromFamily(2048, sv, sinv)
	if got := c.UseKernel(KernelBitset); got != KernelSparse {
		t.Fatalf("UseKernel without bitmap = %v, want sparse fallback", got)
	}

	// Counter collections hold no segments and must stay sparse.
	cc := NewCounterCollection(16)
	if got := cc.UseKernel(KernelBitset); got != KernelSparse {
		t.Fatalf("counter UseKernel = %v, want sparse", got)
	}

	// Mid-run switches are refused: coverage already happened.
	mid := NewCollectionFromFamily(32, dv, dinv)
	u, _, _ := mid.BestNode(nil)
	mid.CoverNode(u)
	if got := mid.UseKernel(KernelBitset); got != KernelSparse {
		t.Fatalf("mid-run UseKernel = %v, want sparse", got)
	}

	// KernelByName round-trips the registry.
	for id := 0; id < NumKernels; id++ {
		got, ok := KernelByName(KernelID(id).String())
		if !ok || got != KernelID(id) {
			t.Fatalf("KernelByName(%q) = %v,%v", KernelID(id).String(), got, ok)
		}
	}
	if _, ok := KernelByName("dense"); ok {
		t.Fatal("KernelByName accepted an unknown name")
	}
}

// FuzzKernelEquivalence fuzzes random families and cover/commit sequences
// through both kernels — hard coverage, soft coverage, and counter-mode
// deltas — requiring identical coverage counts, heap orders, and sparse
// decrement vectors.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(16), uint8(3))
	f.Add(uint64(99), uint8(32), uint8(200), uint8(7))
	f.Add(uint64(123456), uint8(64), uint8(255), uint8(12))
	f.Fuzz(func(t *testing.T, seed uint64, nn, kk, avg uint8) {
		n := 4 + int(nn)%96
		k := 8 + int(kk)
		a := 1 + int(avg)%10
		if a >= n {
			a = n - 1
		}
		rng := xrand.New(seed)
		fam := randomKernelFamily(rng, n, k, a)
		v := fam.View()
		inv := BuildInverted(n, v, 0)
		inv.PrepareCover()
		inv.PrepareCoverBits()

		sp := NewCollectionFromFamily(n, v, inv)
		bt := NewCollectionFromFamily(n, v, inv)
		if bt.UseKernel(KernelBitset) != KernelBitset {
			t.Skip("bitset kernel unavailable")
		}
		wsp := NewWeightedCollectionFromFamily(n, v, inv)
		wbt := NewWeightedCollectionFromFamily(n, v, inv)
		if wbt.UseKernel(KernelBitset) != KernelBitset {
			t.Skip("bitset kernel unavailable")
		}
		var sn, sd, bn, bd []int32
		for it := 0; it < 8; it++ {
			u := int32(rng.IntN(n))
			switch it % 4 {
			case 0:
				if got, want := bt.CoverNode(u), sp.CoverNode(u); got != want {
					t.Fatalf("CoverNode(%d) sparse=%d bitset=%d", u, want, got)
				}
			case 1:
				boundary := rng.IntN(k + 4)
				if got, want := bt.CountAndCoverFrom(u, boundary), sp.CountAndCoverFrom(u, boundary); got != want {
					t.Fatalf("CountAndCoverFrom(%d,%d) sparse=%d bitset=%d", u, boundary, want, got)
				}
			case 2:
				boundary := rng.IntN(k + 4)
				var sc, bc int
				sc, sn, sd = sp.CountAndCoverFromDelta(u, boundary, sn, sd)
				bc, bn, bd = bt.CountAndCoverFromDelta(u, boundary, bn, bd)
				if sc != bc || len(sn) != len(bn) {
					t.Fatalf("delta(%d,%d): covered %d/%d nodes %d/%d", u, boundary, sc, bc, len(sn), len(bn))
				}
				for i := range sn {
					if sn[i] != bn[i] || sd[i] != bd[i] {
						t.Fatalf("delta(%d)[%d] mismatch", u, i)
					}
				}
			case 3:
				delta := float64(1+rng.IntN(4)) / 4
				if st, bb := wsp.Commit(u, delta), wbt.Commit(u, delta); st != bb {
					t.Fatalf("Commit(%d,%g) sparse=%v bitset=%v", u, delta, st, bb)
				}
			}
		}
		for u := 0; u < n; u++ {
			if sp.Coverage(int32(u)) != bt.Coverage(int32(u)) {
				t.Fatalf("Coverage(%d) sparse=%d bitset=%d", u, sp.Coverage(int32(u)), bt.Coverage(int32(u)))
			}
			if wsp.WeightedCoverage(int32(u)) != wbt.WeightedCoverage(int32(u)) {
				t.Fatalf("WeightedCoverage(%d) mismatch", u)
			}
		}
		if sp.NumCovered() != bt.NumCovered() || wsp.CoveredMass() != wbt.CoveredMass() {
			t.Fatal("aggregate coverage mismatch")
		}
		sN, sC := sp.TopNodes(5, nil)
		bN, bC := bt.TopNodes(5, nil)
		if len(sN) != len(bN) {
			t.Fatal("TopNodes length mismatch")
		}
		for i := range sN {
			if sN[i] != bN[i] || sC[i] != bC[i] {
				t.Fatal("TopNodes order mismatch")
			}
		}
	})
}

// BenchmarkKernels compares the cover kernels on a greedy commit loop
// across instance densities. The dense configuration is the one the
// bitset kernel is accountable for (≥1.5× over sparse); the sparse
// configuration documents the regime the density heuristic keeps on the
// sparse kernel (the bitmap would not pay for itself).
func BenchmarkKernels(b *testing.B) {
	type cfg struct {
		name    string
		n, k, a int
	}
	configs := []cfg{
		// Dense: avg row length k·a/n ≈ 937 vs k/64 = 192 words/row.
		{name: "dense", n: 512, k: 12288, a: 39},
		// Sparse: avg row length ≈ 18 — far below k/64 = 128.
		{name: "sparse", n: 4096, k: 8192, a: 9},
	}
	for _, cf := range configs {
		rng := xrand.New(1)
		fam := randomKernelFamily(rng, cf.n, cf.k, cf.a)
		v := fam.View()
		inv := BuildInverted(cf.n, v, 0)
		inv.PrepareCover()
		inv.PrepareCoverBits()
		ws := NewWorkspace()
		for kid := 0; kid < NumKernels; kid++ {
			id := KernelID(kid)
			b.Run(cf.name+"/"+id.String(), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					c := ws.Collection(cf.n, v, inv)
					c.UseKernel(id)
					// Cover every node: the first few commits retire
					// nearly all sets, the rest are scan-dominated — the
					// regime the greedy loop spends its iterations in
					// once seeds accumulate, where kernels differ most.
					for u := 0; u < cf.n; u++ {
						c.CoverNode(int32(u))
					}
				}
			})
		}
	}
}
