package rrset

import (
	"math"
)

// WeightedCollection is the soft-coverage variant of Collection (the
// repository's TIRM-W extension, see DESIGN.md ablation ABL-SOFT).
//
// The paper's Algorithm 2 removes an RR-set once any seed covers it, so its
// revenue estimate credits each set to the *first* covering seed only:
// Π̂ = Σ_j cpe·n·δ_j·cov_j/θ. That underestimates the true IC-CTP revenue —
// a set whose first seed declines its CTP coin (probability 1−δ ≈ 0.98 at
// realistic CTPs) can still be claimed by a later seed. The exact
// expectation over node coins is per set R:
//
//	Pr[R covered] = 1 − Π_{u ∈ S∩R} (1 − δ_u),
//
// so WeightedCollection maintains a live weight w_R = Π_{u∈S∩R}(1−δ_u) per
// set and weighted node scores wcov[u] = Σ_{R∋u} w_R. The marginal revenue
// of a candidate u is then cpe·n·δ_u·wcov[u]/θ — an unbiased estimator of
// the true TIC-CTP marginal (it equals the RRC-set estimator in
// expectation, without the 1/δ sample blow-up). Committing u multiplies
// each covering set's weight by (1−δ_u).
//
// With δ = 1 this degenerates exactly to Collection's hard semantics.
//
// Storage is the same flat CSR segment layout as Collection (covSegment);
// the only per-set state beyond the shared arenas is the weight vector.
// The candidate heap is rebuilt lazily exactly as in Collection.
type WeightedCollection struct {
	n       int
	segs    []covSegment
	numSets int
	weight  []float64 // set id -> Π(1−δ) over committed members
	wcov    []float64 // node -> Σ weights of sets containing it
	claimed float64   // Σ_R (1 − w_R)
	pq      wcovHeap
	stale   bool
	dead    []bool

	cut     []int32     // reusable cut-vector backing for Reset
	aside   []wcovEntry // TopNodes scratch
	seen    []uint64    // TopNodes per-call dedup stamps
	seenGen uint64

	kern  CoverKernel // active cover kernel; nil means sparse
	bits  *coverBits  // first segment's membership bitmap (bitset kernel)
	zerow []uint64    // zero-weight-set mask over the first segment (bitset kernel)
}

// NewWeightedCollection creates an empty weighted index over n nodes.
func NewWeightedCollection(n int) *WeightedCollection {
	return &WeightedCollection{
		n:    n,
		wcov: make([]float64, n),
		dead: make([]bool, n),
	}
}

// initHeap rebuilds the lazy max-heap with one fresh entry per node of
// positive weighted coverage.
func (c *WeightedCollection) initHeap() {
	c.pq = c.pq[:0]
	for u := 0; u < c.n; u++ {
		if c.wcov[u] > 0 && !c.dead[u] {
			c.pq = append(c.pq, wcovEntry{node: int32(u), wcov: c.wcov[u]})
		}
	}
	c.pq.init()
}

// syncHeap performs the deferred heap rebuild, if one is pending.
func (c *WeightedCollection) syncHeap() {
	if c.stale {
		c.initHeap()
		c.stale = false
	}
}

// N returns the node-universe size.
func (c *WeightedCollection) N() int { return c.n }

// NumSets returns the number of sets added so far.
func (c *WeightedCollection) NumSets() int { return c.numSets }

// CoveredMass returns Σ_R (1 − w_R): the expected number of covered sets
// under the committed seeds' CTP coins. n·CoveredMass/θ estimates the
// seeds' joint IC-CTP spread.
func (c *WeightedCollection) CoveredMass() float64 { return c.claimed }

// Add appends one RR-set with weight 1. Like Collection.Add this is a
// convenience for tests and toy universes; hot paths use AddBatch or
// AddFamily.
func (c *WeightedCollection) Add(set []int32) {
	c.AddBatch([][]int32{set})
}

// AddBatch appends many sets — the slice-shaped compatibility wrapper over
// AddFamily.
func (c *WeightedCollection) AddBatch(sets [][]int32) {
	if len(sets) == 0 {
		return
	}
	c.AddFamily(FamilyFromSets(sets).View())
}

// AddFamily appends a CSR view of fresh sets as one segment with weight 1
// each, building its inverted index in one counting pass and deferring the
// heap rebuild to the next use (see Collection.AddFamily).
func (c *WeightedCollection) AddFamily(v FamilyView) {
	k := v.Len()
	if k == 0 {
		return
	}
	base := int32(c.numSets)
	inv := BuildInverted(c.n, v, base)
	c.segs = append(c.segs, covSegment{base: base, view: v, inv: inv})
	c.numSets += k
	for i := 0; i < k; i++ {
		c.weight = append(c.weight, 1)
	}
	for u := 0; u < c.n; u++ {
		c.wcov[u] += float64(inv.Count(int32(u)))
	}
	c.stale = true
}

// Reset mirrors Collection.Reset for the soft-coverage mode: reinitialize
// over a shared view and inverted index recycling every backing array
// (weights included), so a steady-state reset allocates nothing.
func (c *WeightedCollection) Reset(n int, v FamilyView, inv *Inverted) {
	k := v.Len()
	c.n = n
	c.numSets = k
	c.claimed = 0
	if cap(c.weight) < k {
		c.weight = make([]float64, k)
	}
	c.weight = c.weight[:k]
	for i := range c.weight {
		c.weight[i] = 1
	}
	c.dead = grownBools(c.dead, n)
	c.cut = clipInvertedInto(inv, k, c.cut)
	if cap(c.wcov) < n {
		c.wcov = make([]float64, n)
	}
	c.wcov = c.wcov[:n]
	for u := 0; u < n; u++ {
		c.wcov[u] = float64(c.cut[u])
	}
	c.segs = append(c.segs[:0], covSegment{base: 0, view: v, inv: inv, cut: c.cut})
	c.pq = c.pq[:0]
	c.stale = true
	c.kern = nil
	c.bits = nil
}

// Kernel returns the identifier of the collection's active cover kernel.
func (c *WeightedCollection) Kernel() KernelID {
	if c.kern != nil {
		return c.kern.ID()
	}
	return KernelSparse
}

// kernel resolves the active kernel implementation (sparse by default).
func (c *WeightedCollection) kernel() CoverKernel {
	if c.kern != nil {
		return c.kern
	}
	return Kernels[KernelSparse]
}

// UseKernel selects the cover kernel, mirroring Collection.UseKernel's
// contract for the soft-coverage mode: KernelBitset activates only on a
// fresh warm-start collection (one base-0 segment, prepared bitmap, no
// mass claimed yet) and the zero-weight-word mask recycles its backing
// array; anything else keeps the sparse kernel. Returns the kernel
// actually activated.
func (c *WeightedCollection) UseKernel(id KernelID) KernelID {
	if id != KernelBitset {
		c.kern = nil
		c.bits = nil
		return KernelSparse
	}
	if len(c.segs) != 1 || c.segs[0].base != 0 || c.claimed != 0 {
		return c.Kernel()
	}
	cb := c.segs[0].inv.preparedBits()
	if cb == nil || cb.sets < c.numSets {
		return c.Kernel()
	}
	k := c.numSets
	kw := (k + 63) / 64
	if cap(c.zerow) < kw {
		c.zerow = make([]uint64, kw)
	}
	c.zerow = c.zerow[:kw]
	for i := range c.zerow {
		c.zerow[i] = 0
	}
	// Pre-set the bits past the view's set count so the sweep needs no
	// tail masking: ids ≥ k read as zero-weight.
	if r := uint(k) & 63; r != 0 {
		c.zerow[kw-1] = ^uint64(0) << r
	}
	c.kern = Kernels[KernelBitset]
	c.bits = cb
	return KernelBitset
}

// NewWeightedCollectionFromFamily mirrors rrset.NewCollectionFromFamily for
// the soft-coverage mode: O(n log d) construction over a shared sample view
// and inverted index (same row-clipping contract).
func NewWeightedCollectionFromFamily(n int, v FamilyView, inv *Inverted) *WeightedCollection {
	c := &WeightedCollection{}
	c.Reset(n, v, inv)
	return c
}

// WeightedCoverage returns wcov[u] = Σ_{R∋u} w_R.
func (c *WeightedCollection) WeightedCoverage(u int32) float64 { return c.wcov[u] }

// floatSlack absorbs float drift in the lazy-heap staleness check: an entry
// is considered fresh if it matches the current value this closely in
// relative terms.
const floatSlack = 1e-9

// BestNode returns the eligible node with maximum weighted coverage.
// Semantics mirror Collection.BestNode: ineligible nodes are dropped
// permanently (monotone eligibility), stale heap entries are refreshed
// lazily — valid because wcov only decreases between Adds.
func (c *WeightedCollection) BestNode(eligible func(int32) bool) (node int32, wcov float64, ok bool) {
	c.syncHeap()
	for len(c.pq) > 0 {
		top := c.pq[0]
		if c.dead[top.node] {
			c.pq.pop()
			continue
		}
		cur := c.wcov[top.node]
		if math.Abs(top.wcov-cur) > floatSlack*(1+math.Abs(cur)) {
			c.pq.pop()
			if cur > 0 {
				c.pq.push(wcovEntry{node: top.node, wcov: cur})
			}
			continue
		}
		if cur <= 0 {
			c.pq.pop()
			continue
		}
		if eligible != nil && !eligible(top.node) {
			c.dead[top.node] = true
			c.pq.pop()
			continue
		}
		return top.node, cur, true
	}
	return 0, 0, false
}

// Drop permanently removes a node from BestNode consideration.
func (c *WeightedCollection) Drop(u int32) { c.dead[u] = true }

// TopNodes returns up to k eligible nodes in decreasing weighted-coverage
// order (see Collection.TopNodes). Allocation-free callers use
// TopNodesInto.
func (c *WeightedCollection) TopNodes(k int, eligible func(int32) bool) (nodes []int32, wcovs []float64) {
	return c.TopNodesInto(k, eligible, nil, nil)
}

// TopNodesInto is TopNodes appending into caller-provided buffers (which
// may be nil) — see Collection.TopNodesInto for the contract.
func (c *WeightedCollection) TopNodesInto(k int, eligible func(int32) bool, nodes []int32, wcovs []float64) ([]int32, []float64) {
	c.syncHeap()
	nodes, wcovs = nodes[:0], wcovs[:0]
	aside := c.aside[:0]
	if len(c.seen) < c.n {
		c.seen = make([]uint64, c.n)
	}
	c.seenGen++
	gen := c.seenGen
	for len(c.pq) > 0 && len(nodes) < k {
		top := c.pq[0]
		if c.seen[top.node] == gen {
			// Stale-refresh cycles can leave duplicate fresh entries for a
			// node; collect each node at most once per call.
			c.pq.pop()
			continue
		}
		if c.dead[top.node] {
			c.pq.pop()
			continue
		}
		cur := c.wcov[top.node]
		if math.Abs(top.wcov-cur) > floatSlack*(1+math.Abs(cur)) {
			c.pq.pop()
			if cur > 0 {
				c.pq.push(wcovEntry{node: top.node, wcov: cur})
			}
			continue
		}
		if cur <= 0 {
			c.pq.pop()
			continue
		}
		if eligible != nil && !eligible(top.node) {
			c.dead[top.node] = true
			c.pq.pop()
			continue
		}
		c.pq.pop()
		aside = append(aside, top)
		c.seen[top.node] = gen
		nodes = append(nodes, top.node)
		wcovs = append(wcovs, cur)
	}
	for _, e := range aside {
		c.pq.push(e)
	}
	c.aside = aside[:0]
	return nodes, wcovs
}

// Commit records u as a seed with CTP delta: every set containing u has its
// weight multiplied by (1−delta), and the weighted coverages of all its
// members drop accordingly. Returns the mass u claims, δ·Σ_{R∋u} w_R —
// exactly the marginal estimate BestNode's score implies.
func (c *WeightedCollection) Commit(u int32, delta float64) float64 {
	return c.commitFrom(u, delta, 0)
}

// CreditFrom is Commit restricted to sets with id ≥ firstID — TIRM-W's
// UpdateEstimates path after appending fresh samples (new sets arrive with
// weight 1; each already-committed seed re-applies its coin to them).
func (c *WeightedCollection) CreditFrom(u int32, delta float64, firstID int) float64 {
	return c.commitFrom(u, delta, firstID)
}

func (c *WeightedCollection) commitFrom(u int32, delta float64, firstID int) float64 {
	if delta < 0 || delta > 1 {
		panic("rrset: CTP out of [0,1]")
	}
	c.syncHeap()
	return c.kernel().commitFrom(c, u, delta, firstID)
}

// MemBytes mirrors Collection.MemBytes for Table 4 instrumentation: the
// exact data footprint of the segments plus weights, coverages, flags, and
// live heap entries.
func (c *WeightedCollection) MemBytes() int64 {
	var total int64
	for i := range c.segs {
		total += c.segs[i].memBytes()
	}
	return total +
		int64(len(c.weight))*8 +
		int64(c.n)*9 + // wcov + dead
		int64(len(c.pq))*16 +
		int64(len(c.zerow))*8 // bitset kernel's zero-weight mask
}

type wcovEntry struct {
	node int32
	wcov float64
}

// wcovHeap is covHeap's float-scored sibling: a max-heap with concrete
// push/pop replicating container/heap's sift algorithm bit for bit.
type wcovHeap []wcovEntry

func (h wcovHeap) less(i, j int) bool { return h[i].wcov > h[j].wcov }

// init establishes the heap invariant over the full slice.
func (h wcovHeap) init() {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		h.down(i, n)
	}
}

// push appends e and sifts it up.
func (h *wcovHeap) push(e wcovEntry) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

// pop removes and returns the max entry.
func (h *wcovHeap) pop() wcovEntry {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	old.down(0, n)
	e := old[n]
	*h = old[:n]
	return e
}

func (h wcovHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h wcovHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2
		}
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}
