package rrset

import (
	"container/heap"
	"math"
)

// WeightedCollection is the soft-coverage variant of Collection (the
// repository's TIRM-W extension, see DESIGN.md ablation ABL-SOFT).
//
// The paper's Algorithm 2 removes an RR-set once any seed covers it, so its
// revenue estimate credits each set to the *first* covering seed only:
// Π̂ = Σ_j cpe·n·δ_j·cov_j/θ. That underestimates the true IC-CTP revenue —
// a set whose first seed declines its CTP coin (probability 1−δ ≈ 0.98 at
// realistic CTPs) can still be claimed by a later seed. The exact
// expectation over node coins is per set R:
//
//	Pr[R covered] = 1 − Π_{u ∈ S∩R} (1 − δ_u),
//
// so WeightedCollection maintains a live weight w_R = Π_{u∈S∩R}(1−δ_u) per
// set and weighted node scores wcov[u] = Σ_{R∋u} w_R. The marginal revenue
// of a candidate u is then cpe·n·δ_u·wcov[u]/θ — an unbiased estimator of
// the true TIC-CTP marginal (it equals the RRC-set estimator in
// expectation, without the 1/δ sample blow-up). Committing u multiplies
// each covering set's weight by (1−δ_u).
//
// With δ = 1 this degenerates exactly to Collection's hard semantics.
//
// Storage is the same flat CSR segment layout as Collection (covSegment);
// the only per-set state beyond the shared arenas is the weight vector.
type WeightedCollection struct {
	n       int
	segs    []covSegment
	numSets int
	weight  []float64 // set id -> Π(1−δ) over committed members
	wcov    []float64 // node -> Σ weights of sets containing it
	claimed float64   // Σ_R (1 − w_R)
	pq      wcovHeap
	dead    []bool
}

// NewWeightedCollection creates an empty weighted index over n nodes.
func NewWeightedCollection(n int) *WeightedCollection {
	return &WeightedCollection{
		n:    n,
		wcov: make([]float64, n),
		dead: make([]bool, n),
	}
}

// initHeap rebuilds the lazy max-heap with one fresh entry per node of
// positive weighted coverage.
func (c *WeightedCollection) initHeap() {
	c.pq = c.pq[:0]
	for u := 0; u < c.n; u++ {
		if c.wcov[u] > 0 && !c.dead[u] {
			c.pq = append(c.pq, wcovEntry{node: int32(u), wcov: c.wcov[u]})
		}
	}
	heap.Init(&c.pq)
}

// N returns the node-universe size.
func (c *WeightedCollection) N() int { return c.n }

// NumSets returns the number of sets added so far.
func (c *WeightedCollection) NumSets() int { return c.numSets }

// CoveredMass returns Σ_R (1 − w_R): the expected number of covered sets
// under the committed seeds' CTP coins. n·CoveredMass/θ estimates the
// seeds' joint IC-CTP spread.
func (c *WeightedCollection) CoveredMass() float64 { return c.claimed }

// Add appends one RR-set with weight 1. Like Collection.Add this is a
// convenience for tests and toy universes — each call costs O(n); hot
// paths use AddBatch or AddFamily.
func (c *WeightedCollection) Add(set []int32) {
	c.AddBatch([][]int32{set})
}

// AddBatch appends many sets — the slice-shaped compatibility wrapper over
// AddFamily.
func (c *WeightedCollection) AddBatch(sets [][]int32) {
	if len(sets) == 0 {
		return
	}
	c.AddFamily(FamilyFromSets(sets).View())
}

// AddFamily appends a CSR view of fresh sets as one segment with weight 1
// each, building its inverted index in one counting pass and refreshing the
// heap once (see Collection.AddFamily).
func (c *WeightedCollection) AddFamily(v FamilyView) {
	k := v.Len()
	if k == 0 {
		return
	}
	base := int32(c.numSets)
	inv := BuildInverted(c.n, v, base)
	c.segs = append(c.segs, covSegment{base: base, view: v, inv: inv})
	c.numSets += k
	for i := 0; i < k; i++ {
		c.weight = append(c.weight, 1)
	}
	for u := 0; u < c.n; u++ {
		c.wcov[u] += float64(inv.Count(int32(u)))
	}
	c.initHeap()
}

// NewWeightedCollectionFromFamily mirrors rrset.NewCollectionFromFamily for
// the soft-coverage mode: O(n log d) construction over a shared sample view
// and inverted index (same row-clipping contract).
func NewWeightedCollectionFromFamily(n int, v FamilyView, inv *Inverted) *WeightedCollection {
	c := &WeightedCollection{
		n:       n,
		numSets: v.Len(),
		weight:  make([]float64, v.Len()),
		wcov:    make([]float64, n),
		dead:    make([]bool, n),
	}
	for i := range c.weight {
		c.weight[i] = 1
	}
	cut := clipInverted(inv, v.Len())
	for u := 0; u < n; u++ {
		c.wcov[u] = float64(cut[u])
	}
	c.segs = []covSegment{{base: 0, view: v, inv: inv, cut: cut}}
	c.initHeap()
	return c
}

// WeightedCoverage returns wcov[u] = Σ_{R∋u} w_R.
func (c *WeightedCollection) WeightedCoverage(u int32) float64 { return c.wcov[u] }

// floatSlack absorbs float drift in the lazy-heap staleness check: an entry
// is considered fresh if it matches the current value this closely in
// relative terms.
const floatSlack = 1e-9

// BestNode returns the eligible node with maximum weighted coverage.
// Semantics mirror Collection.BestNode: ineligible nodes are dropped
// permanently (monotone eligibility), stale heap entries are refreshed
// lazily — valid because wcov only decreases between Adds.
func (c *WeightedCollection) BestNode(eligible func(int32) bool) (node int32, wcov float64, ok bool) {
	for c.pq.Len() > 0 {
		top := c.pq.peek()
		if c.dead[top.node] {
			heap.Pop(&c.pq)
			continue
		}
		cur := c.wcov[top.node]
		if math.Abs(top.wcov-cur) > floatSlack*(1+math.Abs(cur)) {
			heap.Pop(&c.pq)
			if cur > 0 {
				heap.Push(&c.pq, wcovEntry{node: top.node, wcov: cur})
			}
			continue
		}
		if cur <= 0 {
			heap.Pop(&c.pq)
			continue
		}
		if eligible != nil && !eligible(top.node) {
			c.dead[top.node] = true
			heap.Pop(&c.pq)
			continue
		}
		return top.node, cur, true
	}
	return 0, 0, false
}

// Drop permanently removes a node from BestNode consideration.
func (c *WeightedCollection) Drop(u int32) { c.dead[u] = true }

// TopNodes returns up to k eligible nodes in decreasing weighted-coverage
// order (see Collection.TopNodes).
func (c *WeightedCollection) TopNodes(k int, eligible func(int32) bool) (nodes []int32, wcovs []float64) {
	var aside []wcovEntry
	seen := map[int32]bool{}
	for c.pq.Len() > 0 && len(nodes) < k {
		top := c.pq.peek()
		if seen[top.node] {
			// Stale-refresh cycles can leave duplicate fresh entries for a
			// node; collect each node at most once per call.
			heap.Pop(&c.pq)
			continue
		}
		if c.dead[top.node] {
			heap.Pop(&c.pq)
			continue
		}
		cur := c.wcov[top.node]
		if math.Abs(top.wcov-cur) > floatSlack*(1+math.Abs(cur)) {
			heap.Pop(&c.pq)
			if cur > 0 {
				heap.Push(&c.pq, wcovEntry{node: top.node, wcov: cur})
			}
			continue
		}
		if cur <= 0 {
			heap.Pop(&c.pq)
			continue
		}
		if eligible != nil && !eligible(top.node) {
			c.dead[top.node] = true
			heap.Pop(&c.pq)
			continue
		}
		heap.Pop(&c.pq)
		aside = append(aside, top)
		seen[top.node] = true
		nodes = append(nodes, top.node)
		wcovs = append(wcovs, cur)
	}
	for _, e := range aside {
		heap.Push(&c.pq, e)
	}
	return nodes, wcovs
}

// Commit records u as a seed with CTP delta: every set containing u has its
// weight multiplied by (1−delta), and the weighted coverages of all its
// members drop accordingly. Returns the mass u claims, δ·Σ_{R∋u} w_R —
// exactly the marginal estimate BestNode's score implies.
func (c *WeightedCollection) Commit(u int32, delta float64) float64 {
	return c.commitFrom(u, delta, 0)
}

// CreditFrom is Commit restricted to sets with id ≥ firstID — TIRM-W's
// UpdateEstimates path after appending fresh samples (new sets arrive with
// weight 1; each already-committed seed re-applies its coin to them).
func (c *WeightedCollection) CreditFrom(u int32, delta float64, firstID int) float64 {
	return c.commitFrom(u, delta, firstID)
}

func (c *WeightedCollection) commitFrom(u int32, delta float64, firstID int) float64 {
	if delta < 0 || delta > 1 {
		panic("rrset: CTP out of [0,1]")
	}
	var total float64
	for si := range c.segs {
		seg := &c.segs[si]
		if seg.end() <= firstID {
			continue
		}
		for _, id := range seg.idsOf(u) {
			if int(id) < firstID {
				continue
			}
			w := c.weight[id]
			if w == 0 {
				continue
			}
			dec := w * delta
			c.weight[id] = w - dec
			c.claimed += dec
			total += dec
			for _, x := range seg.set(id) {
				c.wcov[x] -= dec
				if c.wcov[x] < 0 {
					c.wcov[x] = 0 // clamp float drift
				}
			}
		}
	}
	return total
}

// MemBytes mirrors Collection.MemBytes for Table 4 instrumentation: the
// exact data footprint of the segments plus weights, coverages, flags, and
// live heap entries.
func (c *WeightedCollection) MemBytes() int64 {
	var total int64
	for i := range c.segs {
		total += c.segs[i].memBytes()
	}
	return total +
		int64(len(c.weight))*8 +
		int64(c.n)*9 + // wcov + dead
		int64(len(c.pq))*16
}

type wcovEntry struct {
	node int32
	wcov float64
}

type wcovHeap []wcovEntry

func (h wcovHeap) Len() int            { return len(h) }
func (h wcovHeap) Less(i, j int) bool  { return h[i].wcov > h[j].wcov }
func (h wcovHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *wcovHeap) Push(x interface{}) { *h = append(*h, x.(wcovEntry)) }
func (h *wcovHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
func (h wcovHeap) peek() wcovEntry { return h[0] }
