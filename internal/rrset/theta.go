package rrset

import "math"

// LnChoose returns ln C(n, s) computed via log-gamma, stable for the large
// n (millions) and s (thousands) the scalability experiments reach.
func LnChoose(n int64, s int64) float64 {
	if s < 0 || s > n {
		return math.Inf(-1)
	}
	if s == 0 || s == n {
		return 0
	}
	lg := func(x float64) float64 {
		v, _ := math.Lgamma(x)
		return v
	}
	return lg(float64(n)+1) - lg(float64(s)+1) - lg(float64(n-s)+1)
}

// L evaluates Eq. 5 of the paper (Tang et al.'s sample-size bound):
//
//	L(s, ε) = (8 + 2ε) · n · (ℓ·ln n + ln C(n,s) + ln 2) / (OPT_s · ε²)
//
// optLB must be a lower bound on OPT_s (the best IC spread achievable with
// s seeds); KPT estimation (package tim) provides one. Sampling at least
// ⌈L⌉ RR-sets makes n·F_R(S) an (ε/2·OPT_s)-accurate spread estimate for
// every |S| ≤ s with probability ≥ 1 − n^−ℓ / C(n,s) (Proposition 2).
func L(n int64, s int64, eps, ell, optLB float64) float64 {
	if n <= 0 || s <= 0 {
		return 0
	}
	if optLB < 1 {
		optLB = 1 // spread of any nonempty seed set is ≥ 1 under IC
	}
	ln := math.Log(float64(n))
	num := (8 + 2*eps) * float64(n) * (ell*ln + LnChoose(n, s) + math.Ln2)
	return num / (optLB * eps * eps)
}

// Theta returns ⌈L(s,ε)⌉ clamped into [minTheta, maxTheta]. TIRM grows the
// per-ad sample lazily, so the floor keeps tiny instances statistically
// sane and the ceiling protects against degenerate optLB values.
func Theta(n int64, s int64, eps, ell, optLB float64, minTheta, maxTheta int) int {
	v := L(n, s, eps, ell, optLB)
	th := int(math.Ceil(v))
	if th < minTheta {
		th = minTheta
	}
	if maxTheta > 0 && th > maxTheta {
		th = maxTheta
	}
	return th
}
