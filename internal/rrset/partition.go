// Sharding the deterministic RR stream. The block stream of
// SampleRangeRRInto makes every set a pure function of (graph, probs, seed,
// position); a StreamPartition assigns each block to exactly one of K
// shards, so shard k can sample exactly its blocks and the union across
// shards is byte-identical to the single-node stream. Blocks are assigned
// round-robin (block b belongs to shard b mod K) rather than in contiguous
// halves: the stream grows on demand as θ targets rise, and an interleaved
// assignment keeps every shard's share balanced at every prefix length —
// a contiguous split would put all early (always-sampled) blocks on one
// shard and leave the rest idle until θ grows past its range.

package rrset

import "fmt"

// StreamPartition identifies one shard's slice of the deterministic RR
// block stream: of the global blocks, this shard owns those with
// id ≡ Shard (mod NumShards). The zero value (and any NumShards ≤ 1) is
// the identity partition that owns every block — a single-node stream.
type StreamPartition struct {
	// NumShards is K, the total number of disjoint slices.
	NumShards int
	// Shard is this slice's index in [0, NumShards).
	Shard int
}

// Size returns the effective shard count K (the identity partition — any
// NumShards ≤ 1 — is K = 1).
func (p StreamPartition) Size() int {
	if p.NumShards <= 1 {
		return 1
	}
	return p.NumShards
}

// k is Size, short-form for the arithmetic below.
func (p StreamPartition) k() int { return p.Size() }

// IsIdentity reports whether the partition owns the whole stream.
func (p StreamPartition) IsIdentity() bool { return p.k() == 1 }

// Validate checks the partition's shape.
func (p StreamPartition) Validate() error {
	if p.NumShards < 0 || p.Shard < 0 || p.Shard >= p.k() {
		return fmt.Errorf("rrset: stream partition shard %d of %d is invalid", p.Shard, p.NumShards)
	}
	return nil
}

// Owner returns the shard that owns global block b.
func (p StreamPartition) Owner(block int) int { return block % p.k() }

// ownedBlocksBelow returns how many of the global blocks [0, numBlocks)
// this shard owns.
func (p StreamPartition) ownedBlocksBelow(numBlocks int) int {
	if numBlocks <= p.Shard {
		return 0
	}
	return (numBlocks - p.Shard + p.k() - 1) / p.k()
}

// LocalCount returns how many of the global stream positions [0, theta)
// this shard owns — the length of the shard-local prefix that corresponds
// to a global prefix of theta sets. For the identity partition it is theta
// itself.
func (p StreamPartition) LocalCount(theta int) int {
	if theta <= 0 {
		return 0
	}
	full := theta / StreamBlockSize
	count := p.ownedBlocksBelow(full) * StreamBlockSize
	if rem := theta % StreamBlockSize; rem > 0 && p.Owner(full) == p.Shard {
		count += rem
	}
	return count
}

// GlobalID returns the global stream position of this shard's local set
// `local` (local sets are the shard's owned blocks concatenated in
// ascending global order).
func (p StreamPartition) GlobalID(local int) int {
	block := local / StreamBlockSize
	r := local % StreamBlockSize
	return (p.Shard+block*p.k())*StreamBlockSize + r
}

// Resume returns the canonical global block-aligned prefix position to
// resume sampling from when this shard already holds localSets sets
// (a multiple of StreamBlockSize): one global block past the shard's last
// sampled block. Growth from this position samples exactly the shard's
// not-yet-drawn blocks — none twice, none skipped.
func (p StreamPartition) Resume(localSets int) int {
	blocks := localSets / StreamBlockSize
	if blocks == 0 {
		return 0
	}
	return (p.Shard + (blocks-1)*p.k() + 1) * StreamBlockSize
}
