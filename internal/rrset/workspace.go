// Workspace: the recyclable per-ad state of a warm selection run. A warm
// core.AllocateFromIndex builds one coverage collection per ad per request;
// at serving rates the construction garbage (coverage counters, dead
// bitmaps, per-set flags and weights, cut vectors, heap backing) dominates
// the allocation profile even though every array has the same shape on
// every request against the same index. A Workspace owns one Collection
// and one WeightedCollection whose backing arrays survive across runs —
// resetting them is a handful of memclr-style loops, and a pool of
// Workspaces makes the steady-state request allocation-free.

package rrset

// Workspace bundles one ad's reusable coverage state: a hard-mode
// Collection and a soft-mode WeightedCollection that recycle their backing
// arrays across Reset calls. A Workspace serves one ad of one selection
// run at a time (collections hand out interior pointers); recycle it — via
// sync.Pool or ad-hoc — only after the run has consumed its results. The
// zero value is ready to use.
type Workspace struct {
	col  Collection
	wcol WeightedCollection
}

// NewWorkspace returns an empty workspace. Buffers are grown on first use
// and kept forever after, so a pooled workspace reaches its steady-state
// shape after one request.
func NewWorkspace() *Workspace {
	return &Workspace{}
}

// Collection resets and returns the workspace's hard-coverage collection
// over a shared sample view and inverted index — equivalent to
// NewCollectionFromFamily(n, v, inv) but allocation-free once the
// workspace has warmed up. The returned collection is valid until the next
// Collection or Release call on this workspace.
func (w *Workspace) Collection(n int, v FamilyView, inv *Inverted) *Collection {
	w.col.Reset(n, v, inv)
	return &w.col
}

// Weighted resets and returns the workspace's soft-coverage collection —
// the WeightedCollection counterpart of Collection.
func (w *Workspace) Weighted(n int, v FamilyView, inv *Inverted) *WeightedCollection {
	w.wcol.Reset(n, v, inv)
	return &w.wcol
}

// Release drops every reference the workspace holds into index-owned
// memory (sample views, inverted indexes, growth segments) while keeping
// the workspace-owned backing arrays for reuse. Pools call it before
// parking a workspace so an idle pool never pins a retired index's arenas
// live.
func (w *Workspace) Release() {
	releaseSegs(w.col.segs)
	releaseSegs(w.wcol.segs)
	w.col.segs = w.col.segs[:0]
	w.wcol.segs = w.wcol.segs[:0]
	w.col.numSets = 0
	w.wcol.numSets = 0
	w.col.pq = w.col.pq[:0]
	w.wcol.pq = w.wcol.pq[:0]
	w.col.stale = false
	w.wcol.stale = false
	// Kernel state: the membership bitmap belongs to the index and must
	// not be pinned by a parked workspace; the covered/zero-weight word
	// masks are workspace-owned and stay for reuse.
	w.col.kern, w.col.bits = nil, nil
	w.wcol.kern, w.wcol.bits = nil, nil
}

// releaseSegs zeroes segment slots so the retained backing array holds no
// stale views or inverted-index pointers.
func releaseSegs(segs []covSegment) {
	for i := range segs {
		segs[i] = covSegment{}
	}
}
