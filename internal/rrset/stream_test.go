package rrset

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func streamTestSampler(t testing.TB) *Sampler {
	t.Helper()
	b := graph.NewBuilder(40)
	r := xrand.New(123)
	for e := 0; e < 160; e++ {
		u, v := int32(r.IntN(40)), int32(r.IntN(40))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.MustBuild()
	probs := make([]float32, g.M())
	for i := range probs {
		probs[i] = 0.3
	}
	return NewSampler(g, probs, nil)
}

// TestSampleRangeRRBatchInvariance is the contract the reusable index
// rests on: set i depends only on its stream position, never on how the
// range was partitioned into grow calls.
func TestSampleRangeRRBatchInvariance(t *testing.T) {
	s := streamTestSampler(t)
	rng := xrand.New(7)
	whole := s.SampleRangeRR(0, 4*StreamBlockSize, rng)
	first := s.SampleRangeRR(0, StreamBlockSize, xrand.New(7))
	rest := s.SampleRangeRR(StreamBlockSize, 4*StreamBlockSize, xrand.New(7))
	pieced := append(append([][]int32{}, first...), rest...)
	if !reflect.DeepEqual(whole, pieced) {
		t.Fatal("stream content depends on growth boundaries")
	}
	again := s.SampleRangeRR(0, 4*StreamBlockSize, xrand.New(7))
	if !reflect.DeepEqual(whole, again) {
		t.Fatal("stream not deterministic")
	}
}

func TestSampleRangeRRAlignment(t *testing.T) {
	s := streamTestSampler(t)
	for _, r := range [][2]int{{1, StreamBlockSize}, {0, StreamBlockSize + 1}, {StreamBlockSize, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("range [%d,%d) accepted", r[0], r[1])
				}
			}()
			s.SampleRangeRR(r[0], r[1], xrand.New(1))
		}()
	}
	if got := s.SampleRangeRR(StreamBlockSize, StreamBlockSize, xrand.New(1)); got != nil {
		t.Errorf("empty range returned %d sets", len(got))
	}
}

func TestStreamCeil(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 0}, {-3, 0}, {1, StreamBlockSize}, {StreamBlockSize, StreamBlockSize},
		{StreamBlockSize + 1, 2 * StreamBlockSize},
	} {
		if got := StreamCeil(tc.in); got != tc.want {
			t.Errorf("StreamCeil(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := streamTestSampler(t)
	sets := s.SampleRangeRR(0, 2*StreamBlockSize, xrand.New(3))
	var buf bytes.Buffer
	if err := EncodeSets(&buf, sets); err != nil {
		t.Fatal(err)
	}
	// A second family on the same stream must decode back to back.
	more := s.SampleRangeRR(0, StreamBlockSize, xrand.New(4))
	if err := EncodeSets(&buf, more); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	got, err := DecodeSets(r, s.Graph().N())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(canonSets(sets), canonSets(got)) {
		t.Fatal("first family did not round-trip")
	}
	got2, err := DecodeSets(r, s.Graph().N())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(canonSets(more), canonSets(got2)) {
		t.Fatal("second family did not round-trip")
	}
}

// canonSets maps nil/empty distinctions away (empty sets round-trip as
// empty, not nil).
func canonSets(sets [][]int32) [][][]int32 {
	out := make([][][]int32, len(sets))
	for i, s := range sets {
		if len(s) == 0 {
			out[i] = nil
			continue
		}
		out[i] = [][]int32{s}
	}
	return out
}

func TestDecodeSetsRejectsCorruption(t *testing.T) {
	sets := [][]int32{{1, 2}, {3}}
	var buf bytes.Buffer
	if err := EncodeSets(&buf, sets); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	bad := append([]byte{}, raw...)
	bad[0] ^= 0xff
	if _, err := DecodeSets(bytes.NewReader(bad), 10); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := DecodeSets(bytes.NewReader(raw[:len(raw)-2]), 10); err == nil {
		t.Error("truncated stream accepted")
	}
	// Universe too small: member 3 out of range.
	if _, err := DecodeSets(bytes.NewReader(raw), 3); err == nil {
		t.Error("out-of-range member accepted")
	}
	// Universe of 1 makes set 0's length itself invalid.
	if _, err := DecodeSets(bytes.NewReader(raw), 1); err == nil {
		t.Error("oversized set accepted")
	}
	// A corrupted count field must fail at the truncated stream, fast,
	// instead of preallocating gigabytes.
	huge := append([]byte{}, raw...)
	huge[4], huge[5], huge[6], huge[7] = 0xff, 0xff, 0xff, 0xff
	if _, err := DecodeSets(bytes.NewReader(huge), 10); err == nil {
		t.Error("absurd set count accepted")
	}
}

// TestCollectionFromFamilyMatchesAddBatch: the warm-start constructor
// must behave exactly like incremental insertion — including when the
// shared inverted index covers more sets than the view (the clip path).
func TestCollectionFromFamilyMatchesAddBatch(t *testing.T) {
	s := streamTestSampler(t)
	fam := NewSetFamily()
	s.SampleRangeRRInto(0, 2*StreamBlockSize, xrand.New(5), fam)
	sets := fam.Prefix(StreamBlockSize).Sets()
	n := s.Graph().N()

	inc := NewCollection(n)
	inc.AddBatch(sets)
	// The inverted index spans both blocks; the view only the first — the
	// constructor must clip the rows.
	inv := BuildInverted(n, fam.View(), 0)
	bulk := NewCollectionFromFamily(n, fam.Prefix(StreamBlockSize), inv)

	for u := int32(0); u < int32(n); u++ {
		if inc.Coverage(u) != bulk.Coverage(u) {
			t.Fatalf("coverage of %d: %d vs %d", u, inc.Coverage(u), bulk.Coverage(u))
		}
	}
	// Greedy runs over both must claim identical coverage masses.
	for k := 0; k < 5; k++ {
		u1, c1, ok1 := inc.BestNode(nil)
		u2, c2, ok2 := bulk.BestNode(nil)
		if ok1 != ok2 || c1 != c2 {
			t.Fatalf("step %d: best (%d,%d,%v) vs (%d,%d,%v)", k, u1, c1, ok1, u2, c2, ok2)
		}
		if !ok1 {
			break
		}
		// Ties may order differently between heap layouts; commit each
		// collection's own pick and compare the claimed count.
		if inc.CoverNode(u1) != bulk.CoverNode(u2) {
			t.Fatalf("step %d: claimed counts differ", k)
		}
		inc.Drop(u1)
		bulk.Drop(u2)
	}
}

// TestCollectionClonesAreIndependent: the clone path (fresh collections
// over one shared sample + inverted index) must give each selection run
// identical, isolated state — one run's covers and drops leak into no
// other.
func TestCollectionClonesAreIndependent(t *testing.T) {
	s := streamTestSampler(t)
	fam := NewSetFamily()
	s.SampleRangeRRInto(0, StreamBlockSize, xrand.New(6), fam)
	n := s.Graph().N()
	inv := BuildInverted(n, fam.View(), 0)

	run := func(c *Collection) (picks []int32, covs []int) {
		for k := 0; k < 4; k++ {
			u, cov, ok := c.BestNode(nil)
			if !ok {
				break
			}
			c.CoverNode(u)
			c.Drop(u)
			picks = append(picks, u)
			covs = append(covs, cov)
		}
		return
	}
	first := NewCollectionFromFamily(n, fam.View(), inv)
	p1, c1 := run(first)
	if first.NumCovered() == 0 {
		t.Fatal("first run covered nothing")
	}
	second := NewCollectionFromFamily(n, fam.View(), inv)
	if second.NumCovered() != 0 {
		t.Fatalf("fresh clone starts with %d covered sets", second.NumCovered())
	}
	p2, c2 := run(second)
	if !reflect.DeepEqual(p1, p2) || !reflect.DeepEqual(c1, c2) {
		t.Fatalf("clone run diverged: %v/%v vs %v/%v", p1, c1, p2, c2)
	}
}

func TestWeightedCollectionFromFamily(t *testing.T) {
	s := streamTestSampler(t)
	fam := NewSetFamily()
	s.SampleRangeRRInto(0, StreamBlockSize, xrand.New(8), fam)
	n := s.Graph().N()
	inv := BuildInverted(n, fam.View(), 0)

	inc := NewWeightedCollection(n)
	inc.AddBatch(fam.Sets())
	c := NewWeightedCollectionFromFamily(n, fam.View(), inv)
	for u := int32(0); u < int32(n); u++ {
		if inc.WeightedCoverage(u) != c.WeightedCoverage(u) {
			t.Fatalf("wcov of %d: %v vs %v", u, inc.WeightedCoverage(u), c.WeightedCoverage(u))
		}
	}

	run := func(c *WeightedCollection) (mass float64) {
		for k := 0; k < 4; k++ {
			u, _, ok := c.BestNode(nil)
			if !ok {
				break
			}
			mass += c.Commit(u, 0.5)
			c.Drop(u)
		}
		return
	}
	m1 := run(c)
	if m1 <= 0 {
		t.Fatal("first run claimed no mass")
	}
	clone := NewWeightedCollectionFromFamily(n, fam.View(), inv)
	if clone.CoveredMass() != 0 {
		t.Fatalf("fresh clone starts with claimed mass %v", clone.CoveredMass())
	}
	if m2 := run(clone); m1 != m2 {
		t.Fatalf("clone run claimed %v, want %v", m2, m1)
	}
}
