// Flat arena storage for RR-set families. The repo's hot structures — the
// per-ad sample held by core.Index, the coverage collections TIRM selects
// against, and the inverted node→sets indexes — all store "a growing family
// of small int32 sets". Representing that as [][]int32 costs one heap
// allocation plus a 24-byte header per set and leaves the GC millions of
// pointers to trace. SetFamily packs the same data as two flat arrays in
// CSR (compressed sparse row) form: every member of every set back to back
// in one arena, plus one offset per set. Appends touch only the arena tail,
// snapshots can serialize the arrays in bulk, and a family of ten million
// sets is two allocations instead of ten million.

package rrset

import (
	"sync"
	"sync/atomic"
)

// SetFamily is an append-only family of int32 sets in CSR layout:
// set i occupies members[offsets[i]:offsets[i+1]]. The zero value is not
// usable; create with NewSetFamily or FamilyFromSets.
//
// Appending never mutates previously written elements, so a FamilyView
// taken before an append (Prefix/Window/View) stays valid while the family
// keeps growing — appends either write past every view's length or move the
// tail to a reallocated arena, leaving the viewed prefix untouched. This is
// the property core.Index relies on to let concurrent allocations read
// stable prefixes while the sample grows.
type SetFamily struct {
	offsets []int64 // len = Len()+1, offsets[0] == 0, non-decreasing
	members []int32 // arena of all members, set after set
}

// NewSetFamily creates an empty family.
func NewSetFamily() *SetFamily {
	return &SetFamily{offsets: make([]int64, 1, 64)}
}

// FamilyFromSets copies a pointer-heavy [][]int32 family into a fresh
// arena (the compatibility bridge for callers still producing slices).
func FamilyFromSets(sets [][]int32) *SetFamily {
	var total int
	for _, s := range sets {
		total += len(s)
	}
	f := &SetFamily{
		offsets: make([]int64, 1, len(sets)+1),
		members: make([]int32, 0, total),
	}
	for _, s := range sets {
		f.Append(s)
	}
	return f
}

// Len returns the number of sets.
func (f *SetFamily) Len() int { return len(f.offsets) - 1 }

// NumMembers returns the total member count across all sets.
func (f *SetFamily) NumMembers() int64 { return int64(len(f.members)) }

// Set returns set i as a slice into the arena. The slice must not be
// mutated or appended to.
func (f *SetFamily) Set(i int) []int32 {
	return f.members[f.offsets[i]:f.offsets[i+1]]
}

// Append adds one set (copying its members into the arena).
func (f *SetFamily) Append(set []int32) {
	f.members = append(f.members, set...)
	f.offsets = append(f.offsets, int64(len(f.members)))
}

// AppendFamily bulk-appends every set of g (two memmoves plus an offset
// rebase — how per-block scratch arenas merge into the stream arena).
func (f *SetFamily) AppendFamily(g *SetFamily) {
	base := int64(len(f.members)) - g.offsets[0]
	f.members = append(f.members, g.members[g.offsets[0]:]...)
	for _, off := range g.offsets[1:] {
		f.offsets = append(f.offsets, base+off)
	}
}

// Reserve grows capacity for sets more sets and members more members, so a
// known-size bulk load appends without re-allocation.
func (f *SetFamily) Reserve(sets int, members int64) {
	if need := len(f.offsets) + sets; need > cap(f.offsets) {
		grown := make([]int64, len(f.offsets), need)
		copy(grown, f.offsets)
		f.offsets = grown
	}
	if need := int64(len(f.members)) + members; need > int64(cap(f.members)) {
		grown := make([]int32, len(f.members), need)
		copy(grown, f.members)
		f.members = grown
	}
}

// View returns a stable view of the current sets.
func (f *SetFamily) View() FamilyView { return f.Prefix(f.Len()) }

// Prefix returns a stable view of the first k sets.
func (f *SetFamily) Prefix(k int) FamilyView { return f.Window(0, k) }

// Window returns a stable view of sets [from, to). Views survive later
// appends (see the type comment).
func (f *SetFamily) Window(from, to int) FamilyView {
	end := f.offsets[to]
	return FamilyView{
		offsets: f.offsets[from : to+1 : to+1],
		members: f.members[:end:end],
	}
}

// Sets materializes the family as [][]int32 views into the arena (nil for
// empty sets, matching the sampler's historical convention). Compatibility
// surface only — hot paths should stay in CSR.
func (f *SetFamily) Sets() [][]int32 { return f.View().Sets() }

// MemBytes returns the family's exact data footprint: 4 bytes per member
// plus 8 per offset.
func (f *SetFamily) MemBytes() int64 {
	return 4*int64(len(f.members)) + 8*int64(len(f.offsets))
}

// FamilyView is an immutable window over a SetFamily: sets [from, to) with
// local ids 0..Len()-1. Offsets stay absolute (members is the arena prefix
// up to the window's end), so taking a view is two slice headers — no
// copying, no rebasing.
type FamilyView struct {
	offsets []int64 // len = Len()+1, absolute arena offsets
	members []int32 // arena prefix covering offsets[Len()]
}

// Len returns the number of sets in the view.
func (v FamilyView) Len() int {
	if len(v.offsets) == 0 {
		return 0
	}
	return len(v.offsets) - 1
}

// NumMembers returns the total member count across the view's sets.
func (v FamilyView) NumMembers() int64 {
	if len(v.offsets) == 0 {
		return 0
	}
	return v.offsets[len(v.offsets)-1] - v.offsets[0]
}

// Set returns set i (local id) as a slice into the arena. Read-only.
func (v FamilyView) Set(i int) []int32 {
	return v.members[v.offsets[i]:v.offsets[i+1]]
}

// Sets materializes the view as [][]int32 (nil for empty sets).
func (v FamilyView) Sets() [][]int32 {
	k := v.Len()
	out := make([][]int32, k)
	for i := 0; i < k; i++ {
		if s := v.Set(i); len(s) > 0 {
			out[i] = s
		}
	}
	return out
}

// MemBytes returns the view's exact data footprint (members + offsets).
func (v FamilyView) MemBytes() int64 {
	return 4*v.NumMembers() + 8*int64(len(v.offsets))
}

// Inverted is a CSR inverted index over a set family: node u's row lists,
// in ascending order, the ids of the sets containing u. Built in one
// counting pass — no per-node append lists, two allocations total.
// Immutable once built; growth replaces the whole index (cheap next to the
// reverse-BFS cost of sampling the new sets, and it gives concurrent
// readers a stable snapshot for free). The optional cover join (see
// coverJoin) is derived data built at most once behind a sync.Once, so
// concurrent readers stay race-free.
type Inverted struct {
	off  []int64 // len = n+1
	ids  []int32 // set ids, ascending within each node's row
	src  FamilyView
	base int32

	joinMu sync.Mutex // serializes the one-time join build
	join   atomic.Pointer[coverJoin]

	bitsMu sync.Mutex // serializes the one-time bitmap build
	bits   atomic.Pointer[coverBits]
}

// BuildInverted indexes v over an n-node universe. Set i of the view gets
// id base+i, letting a segment's local view carry global stream ids.
func BuildInverted(n int, v FamilyView, base int32) *Inverted {
	off := make([]int64, n+1)
	k := v.Len()
	if k == 0 {
		return &Inverted{off: off, src: v, base: base}
	}
	arena := v.members[v.offsets[0]:v.offsets[k]]
	for _, u := range arena {
		off[u+1]++
	}
	for u := 0; u < n; u++ {
		off[u+1] += off[u]
	}
	ids := make([]int32, len(arena))
	cur := make([]int64, n)
	copy(cur, off[:n])
	for i := 0; i < k; i++ {
		id := base + int32(i)
		for _, u := range v.Set(i) {
			ids[cur[u]] = id
			cur[u]++
		}
	}
	return &Inverted{off: off, ids: ids, src: v, base: base}
}

// NumNodes returns the node-universe size.
func (ix *Inverted) NumNodes() int { return len(ix.off) - 1 }

// IDs returns the ids of the sets containing u, ascending. Read-only.
func (ix *Inverted) IDs(u int32) []int32 { return ix.ids[ix.off[u]:ix.off[u+1]] }

// Count returns how many sets contain u.
func (ix *Inverted) Count(u int32) int { return int(ix.off[u+1] - ix.off[u]) }

// MemBytes returns the index's exact data footprint (including the cover
// join and membership bitmap once built; this never triggers the builds).
func (ix *Inverted) MemBytes() int64 {
	total := 4*int64(len(ix.ids)) + 8*int64(len(ix.off))
	if j := ix.join.Load(); j != nil {
		total += j.memBytes()
	}
	if b := ix.bits.Load(); b != nil {
		total += b.memBytes()
	}
	return total
}

// joinInlineCap bounds the member count a cover-join record stores inline.
// Covered-set size distributions are dominated by tiny sets (the measured
// FLIXSTER warm workload covers 82% sets of ≤4 members), which is exactly
// where a random arena fetch per set costs more than the members
// themselves; sets above the cap spill to the arena, where fetching is
// amortized over many members anyway. The cap also bounds join memory at
// (2+cap)·memberships in the worst (all-tiny) case.
const joinInlineCap = 8

// joinSpill marks a spilled record: the set's members stay in the arena.
const joinSpill = int32(-1)

// coverJoin is the inverted index joined with its sets' member lists: node
// u's row is a flat stream of records [id, size, members...] (or
// [id, joinSpill] past the inline cap), ascending by id. CoverNode and the
// weighted commit walk it instead of hopping id → offsets → arena per
// covered set: the hot commit loop becomes one sequential scan, which on
// the measured serving workload is the difference between a cache miss per
// tiny set and streaming bandwidth. Records carry global ids, and rows are
// ascending, so a collection clips a too-long row by breaking at its
// segment's end id — no cut vector needed.
type coverJoin struct {
	off  []int64 // len = n+1, entry offsets into data
	data []int32
}

// row returns u's record stream.
func (j *coverJoin) row(u int32) []int32 { return j.data[j.off[u]:j.off[u+1]] }

// memBytes returns the join's exact data footprint.
func (j *coverJoin) memBytes() int64 {
	return 4*int64(len(j.data)) + 8*int64(len(j.off))
}

// PrepareCover builds the inverted index's cover join ahead of time — the
// warm-up hook core.Index uses so the first allocation against a fresh or
// snapshot-loaded sample does not pay the one-time join construction on
// the request path. Idempotent and safe for concurrent use. Commit loops
// never build the join themselves (see preparedJoin): an index that was
// not prepared — a per-request growth segment, a hand-built collection —
// keeps the plain arena-hop path, which is the right trade for state too
// short-lived to amortize the build.
//
// On dense samples it additionally builds the packed membership bitmap the
// bitset coverage kernel sweeps (see coverBits). The density heuristic
// compares the average inverted-row length to the set count: the bitmap
// costs n·⌈k/64⌉ words, so it is built exactly when 64·memberships ≥ n·k —
// i.e. when the bitmap is at most twice the size of the id rows it
// shadows, which is also the regime where AND-NOT word sweeps beat
// per-membership scans. Sparse samples skip the build and collections fall
// back to the sparse kernel; PrepareCoverBits forces the build regardless
// (the Request-level kernel override).
func (ix *Inverted) PrepareCover() {
	ix.coverJoin()
	n := ix.NumNodes()
	k := ix.src.Len()
	if k > 0 && n > 0 && int64(len(ix.ids))*64 >= int64(n)*int64(k) {
		ix.coverBits()
	}
}

// PrepareCoverBits builds the packed membership bitmap unconditionally —
// the hook behind a "bitset" kernel override, paying the dense
// representation even where the density heuristic would not. Idempotent
// and safe for concurrent use.
func (ix *Inverted) PrepareCoverBits() { ix.coverBits() }

// HasCoverBits reports whether the membership bitmap has been built (a
// lock-free peek that never constructs).
func (ix *Inverted) HasCoverBits() bool { return ix.bits.Load() != nil }

// preparedBits returns the membership bitmap if a Prepare call has built
// it, nil otherwise — never constructs.
func (ix *Inverted) preparedBits() *coverBits { return ix.bits.Load() }

// coverBits is per-node RR-set membership as packed words: node u's row is
// wpr uint64 words in which bit i (local set id) is set iff set base+i
// contains u — the dense mirror of the inverted index's id rows that the
// bitset coverage kernel AND-NOTs against a covered-set mask instead of
// scanning ids one at a time. Immutable once built, derived data of the
// Inverted exactly like coverJoin.
type coverBits struct {
	words []uint64 // n rows of wpr words each
	wpr   int      // words per row = ⌈sets/64⌉
	sets  int      // number of sets the bitmap covers
}

// row returns u's membership words.
func (b *coverBits) row(u int32) []uint64 {
	s := int(u) * b.wpr
	return b.words[s : s+b.wpr]
}

// memBytes returns the bitmap's exact data footprint.
func (b *coverBits) memBytes() int64 { return 8 * int64(len(b.words)) }

// coverBits returns the membership bitmap, building it at most once (nil
// for an empty index). Safe for concurrent use: readers load an atomic
// pointer, the build is serialized by bitsMu.
func (ix *Inverted) coverBits() *coverBits {
	if b := ix.bits.Load(); b != nil {
		return b
	}
	k := ix.src.Len()
	if k == 0 || len(ix.ids) == 0 {
		return nil
	}
	ix.bitsMu.Lock()
	defer ix.bitsMu.Unlock()
	if b := ix.bits.Load(); b != nil {
		return b
	}
	n := ix.NumNodes()
	wpr := (k + 63) / 64
	words := make([]uint64, n*wpr)
	for u := 0; u < n; u++ {
		row := words[u*wpr : (u+1)*wpr]
		for _, id := range ix.ids[ix.off[u]:ix.off[u+1]] {
			lb := uint32(id - ix.base)
			row[lb>>6] |= 1 << (lb & 63)
		}
	}
	b := &coverBits{words: words, wpr: wpr, sets: k}
	ix.bits.Store(b)
	return b
}

// preparedJoin returns the cover join if PrepareCover has built it, nil
// otherwise — a lock-free peek that never constructs.
func (ix *Inverted) preparedJoin() *coverJoin { return ix.join.Load() }

// coverJoin returns the join, building it at most once (nil for an empty
// index). Safe for concurrent use: readers load an atomic pointer, the
// build is serialized by joinMu.
func (ix *Inverted) coverJoin() *coverJoin {
	if j := ix.join.Load(); j != nil {
		return j
	}
	if len(ix.ids) == 0 {
		return nil
	}
	ix.joinMu.Lock()
	defer ix.joinMu.Unlock()
	if j := ix.join.Load(); j != nil {
		return j
	}
	n := ix.NumNodes()
	v := ix.src
	k := v.Len()
	// Counting pass: each set R adds 2+min(|R|, cap) entries (or 2 when
	// spilled) to every member's row.
	rowLen := make([]int64, n+1)
	for i := 0; i < k; i++ {
		set := v.Set(i)
		rec := int64(2)
		if len(set) <= joinInlineCap {
			rec += int64(len(set))
		}
		for _, u := range set {
			rowLen[u+1] += rec
		}
	}
	for u := 0; u < n; u++ {
		rowLen[u+1] += rowLen[u]
	}
	data := make([]int32, rowLen[n])
	cur := make([]int64, n)
	copy(cur, rowLen[:n])
	for i := 0; i < k; i++ {
		set := v.Set(i)
		id := ix.base + int32(i)
		inline := len(set) <= joinInlineCap
		for _, u := range set {
			p := cur[u]
			data[p] = id
			if inline {
				data[p+1] = int32(len(set))
				copy(data[p+2:], set)
				cur[u] = p + 2 + int64(len(set))
			} else {
				data[p+1] = joinSpill
				cur[u] = p + 2
			}
		}
	}
	j := &coverJoin{off: rowLen, data: data}
	ix.join.Store(j)
	return j
}
