package rrset

import (
	"container/heap"
	"fmt"
	"sort"
)

// covSegment is one contiguous run of sets inside a coverage collection:
// a CSR view of the sets (local ids 0..view.Len()-1, global ids start at
// base) plus a CSR inverted index over them. The first segment of a
// warm-start collection shares its view and inverted index with the
// long-lived core.Index; growth segments own both. cut, when non-nil,
// limits each node's inverted row to its first cut[u] ids — how a shared
// inverted index covering more sets than the view is clipped without
// copying (the index's rows are ascending, so a prefix is exactly "ids
// below the view's length").
type covSegment struct {
	base int32
	view FamilyView
	inv  *Inverted
	cut  []int32
}

// idsOf returns the (global, ascending) ids of this segment's sets that
// contain u.
func (s *covSegment) idsOf(u int32) []int32 {
	ids := s.inv.IDs(u)
	if s.cut != nil {
		ids = ids[:s.cut[u]]
	}
	return ids
}

// set returns the members of the set with global id.
func (s *covSegment) set(id int32) []int32 { return s.view.Set(int(id - s.base)) }

// end returns the first global id past this segment.
func (s *covSegment) end() int { return int(s.base) + s.view.Len() }

// memBytes is the segment's exact data footprint (view + inverted + cut).
// For a shared segment this counts the index's arrays once per collection
// holding them; callers wanting process-level accounting should count the
// core.Index separately.
func (s *covSegment) memBytes() int64 {
	total := s.view.MemBytes() + s.inv.MemBytes()
	if s.cut != nil {
		total += 4 * int64(len(s.cut))
	}
	return total
}

// clipInverted computes the per-node prefix lengths of inv's rows that fall
// below k — the cut vector aligning a shared inverted index with a k-set
// view. Rows are ascending, so each cut is one binary search (skipped for
// the common row that lies entirely below k).
func clipInverted(inv *Inverted, k int) []int32 {
	n := inv.NumNodes()
	cut := make([]int32, n)
	w := int32(k)
	for u := 0; u < n; u++ {
		ids := inv.IDs(int32(u))
		c := len(ids)
		if c > 0 && ids[c-1] >= w {
			c = sort.Search(c, func(i int) bool { return ids[i] >= w })
		}
		cut[u] = int32(c)
	}
	return cut
}

// Collection is a mutable coverage index over a growing family of RR-sets.
// It supports the operations TIM's phase 2 and TIRM's main loop need:
//
//   - Add / AddBatch / AddFamily: append newly sampled sets (θ grows over
//     time in TIRM);
//   - BestNode: argmax residual coverage subject to a caller-supplied
//     eligibility filter (attention bounds) — implemented with a lazy
//     max-heap, valid because residual coverage only decreases between
//     additions and additions rebuild the heap;
//   - CoverNode: mark every residual set containing a node as covered
//     (Algorithm 2 line 12) and return how many sets that covered;
//   - CountAndCoverFrom: credit an existing seed with sets appended after a
//     given boundary (Algorithm 4, UpdateEstimates).
//
// Sets live in flat CSR segments (see covSegment): per-set state is three
// flat arrays and the heap, so a collection over millions of sets is a
// handful of allocations and GC-quiet.
type Collection struct {
	n       int
	segs    []covSegment
	numSets int
	covered []bool  // set id -> already covered by a chosen seed
	cov     []int32 // node -> residual coverage (uncovered sets containing it)
	ncov    int     // number of covered sets
	pq      covHeap
	dead    []bool // node -> permanently ineligible (dropped from heap)
}

// NewCollection creates an empty index over n nodes.
func NewCollection(n int) *Collection {
	return &Collection{
		n:    n,
		cov:  make([]int32, n),
		dead: make([]bool, n),
	}
}

// initHeap rebuilds the lazy max-heap with one fresh entry per node of
// positive residual coverage.
func (c *Collection) initHeap() {
	c.pq = c.pq[:0]
	for u := 0; u < c.n; u++ {
		if c.cov[u] > 0 && !c.dead[u] {
			c.pq = append(c.pq, covEntry{node: int32(u), cov: c.cov[u]})
		}
	}
	heap.Init(&c.pq)
}

// N returns the node-universe size.
func (c *Collection) N() int { return c.n }

// MemBytes reports the index's exact resident footprint: CSR member
// arenas, CSR inverted indexes, coverage counters, per-set flags, and live
// heap entries. TIRM reports it for the paper's Table 4 (memory usage),
// measuring the structure that actually dominates RR-set algorithms'
// memory. Shared segments (warm starts over a core.Index) count the shared
// arrays here too — the footprint reachable from this collection.
func (c *Collection) MemBytes() int64 {
	var total int64
	for i := range c.segs {
		total += c.segs[i].memBytes()
	}
	return total +
		int64(len(c.covered)) + // covered flags
		int64(c.n)*5 + // cov counters + dead flags
		int64(len(c.pq))*8
}

// NumSets returns the total number of sets ever added.
func (c *Collection) NumSets() int { return c.numSets }

// NumCovered returns the number of sets already covered by chosen seeds.
func (c *Collection) NumCovered() int { return c.ncov }

// Add appends one RR-set and updates coverage counts. Convenience surface
// for tests and toy universes only: each call builds a one-set segment and
// rebuilds the heap (O(n)), so looped Adds are quadratic — hot paths
// append whole batches via AddBatch or AddFamily.
func (c *Collection) Add(set []int32) {
	c.AddBatch([][]int32{set})
}

// AddBatch appends many sets — the slice-shaped compatibility wrapper over
// AddFamily (members are copied into a fresh arena segment).
func (c *Collection) AddBatch(sets [][]int32) {
	if len(sets) == 0 {
		return
	}
	c.AddFamily(FamilyFromSets(sets).View())
}

// AddFamily appends a CSR view of freshly sampled sets as one segment,
// building its inverted index in a single counting pass and refreshing the
// candidate heap once (one entry per live node) — O(members + n) per
// growth, with no per-membership allocation at all.
func (c *Collection) AddFamily(v FamilyView) {
	k := v.Len()
	if k == 0 {
		return
	}
	base := int32(c.numSets)
	inv := BuildInverted(c.n, v, base)
	c.segs = append(c.segs, covSegment{base: base, view: v, inv: inv})
	c.numSets += k
	c.covered = append(c.covered, make([]bool, k)...)
	for u := 0; u < c.n; u++ {
		c.cov[u] += int32(inv.Count(int32(u)))
	}
	c.initHeap()
}

// NewCollectionFromFamily builds a collection over a prebuilt sample view
// and its prebuilt inverted index, the warm-start fast path of
// core.AllocateFromIndex: construction touches O(n log d) state (one
// binary-searched row clip per node) instead of every membership. inv must
// index, with global ids ascending per node, a family of which v is the
// prefix — rows may extend past v.Len() (the shared index usually holds
// more sets than this run's θ); the excess is clipped, not copied.
func NewCollectionFromFamily(n int, v FamilyView, inv *Inverted) *Collection {
	c := &Collection{
		n:       n,
		numSets: v.Len(),
		covered: make([]bool, v.Len()),
		cov:     make([]int32, n),
		dead:    make([]bool, n),
	}
	cut := clipInverted(inv, v.Len())
	for u := 0; u < n; u++ {
		c.cov[u] = cut[u]
	}
	c.segs = []covSegment{{base: 0, view: v, inv: inv, cut: cut}}
	c.initHeap()
	return c
}

// Coverage returns the residual coverage of u: the number of not-yet-covered
// sets that contain u. n·cov/θ estimates u's marginal IC spread w.r.t. the
// already-chosen seeds.
func (c *Collection) Coverage(u int32) int { return int(c.cov[u]) }

// BestNode returns the eligible node with maximum residual coverage, or
// ok=false if no eligible node has positive coverage. eligible==nil means
// every node is eligible. Nodes reported ineligible are dropped permanently
// (callers use this for exhausted attention bounds, which never recover).
func (c *Collection) BestNode(eligible func(int32) bool) (node int32, cov int, ok bool) {
	for c.pq.Len() > 0 {
		top := c.pq.peek()
		if c.dead[top.node] {
			heap.Pop(&c.pq)
			continue
		}
		cur := c.cov[top.node]
		if top.cov != cur {
			// Stale entry: refresh in place.
			heap.Pop(&c.pq)
			if cur > 0 {
				heap.Push(&c.pq, covEntry{node: top.node, cov: cur})
			}
			continue
		}
		if cur == 0 {
			heap.Pop(&c.pq)
			continue
		}
		if eligible != nil && !eligible(top.node) {
			c.dead[top.node] = true
			heap.Pop(&c.pq)
			continue
		}
		return top.node, int(cur), true
	}
	return 0, 0, false
}

// Drop permanently removes a node from BestNode consideration (e.g. a node
// already chosen as a seed for this ad).
func (c *Collection) Drop(u int32) { c.dead[u] = true }

// TopNodes returns up to k eligible nodes in decreasing residual-coverage
// order (the candidates TIRM's CandidateDepth extension scores by regret
// drop). Like BestNode it refreshes stale heap entries lazily and drops
// ineligible nodes permanently; the heap is left intact.
func (c *Collection) TopNodes(k int, eligible func(int32) bool) (nodes []int32, covs []int) {
	var aside []covEntry
	seen := map[int32]bool{}
	for c.pq.Len() > 0 && len(nodes) < k {
		top := c.pq.peek()
		if seen[top.node] {
			// Stale-refresh cycles can leave duplicate fresh entries for a
			// node; collect each node at most once per call.
			heap.Pop(&c.pq)
			continue
		}
		if c.dead[top.node] {
			heap.Pop(&c.pq)
			continue
		}
		cur := c.cov[top.node]
		if top.cov != cur {
			heap.Pop(&c.pq)
			if cur > 0 {
				heap.Push(&c.pq, covEntry{node: top.node, cov: cur})
			}
			continue
		}
		if cur == 0 {
			heap.Pop(&c.pq)
			continue
		}
		if eligible != nil && !eligible(top.node) {
			c.dead[top.node] = true
			heap.Pop(&c.pq)
			continue
		}
		heap.Pop(&c.pq)
		aside = append(aside, top)
		seen[top.node] = true
		nodes = append(nodes, top.node)
		covs = append(covs, int(cur))
	}
	for _, e := range aside {
		heap.Push(&c.pq, e)
	}
	return nodes, covs
}

// CoverNode marks all residual sets containing u as covered, decrementing
// the coverage of their other members, and returns the number of sets newly
// covered (u's residual coverage before the call). Segments are walked in
// id order, so covering order matches the historical flat-list behavior
// exactly.
func (c *Collection) CoverNode(u int32) int {
	covered := 0
	for si := range c.segs {
		seg := &c.segs[si]
		for _, id := range seg.idsOf(u) {
			if c.covered[id] {
				continue
			}
			c.covered[id] = true
			c.ncov++
			covered++
			for _, w := range seg.set(id) {
				c.cov[w]--
			}
		}
	}
	if c.cov[u] != 0 {
		panic(fmt.Sprintf("rrset: residual coverage of %d nonzero after CoverNode", u))
	}
	return covered
}

// CountAndCoverFrom counts the residual sets with id >= firstID that
// contain u, marks them covered, and returns the count. TIRM's
// UpdateEstimates uses it to re-credit already-chosen seeds with coverage
// in freshly appended samples without double-counting across seeds.
func (c *Collection) CountAndCoverFrom(u int32, firstID int) int {
	covered := 0
	for si := range c.segs {
		seg := &c.segs[si]
		if seg.end() <= firstID {
			continue
		}
		for _, id := range seg.idsOf(u) {
			if int(id) < firstID || c.covered[id] {
				continue
			}
			c.covered[id] = true
			c.ncov++
			covered++
			for _, w := range seg.set(id) {
				c.cov[w]--
			}
		}
	}
	return covered
}

// covEntry is a (possibly stale) heap record.
type covEntry struct {
	node int32
	cov  int32
}

type covHeap []covEntry

func (h covHeap) Len() int            { return len(h) }
func (h covHeap) Less(i, j int) bool  { return h[i].cov > h[j].cov }
func (h covHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *covHeap) Push(x interface{}) { *h = append(*h, x.(covEntry)) }
func (h *covHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
func (h covHeap) peek() covEntry { return h[0] }
