package rrset

import (
	"container/heap"
	"fmt"
)

// Collection is a mutable coverage index over a growing family of RR-sets.
// It supports the operations TIM's phase 2 and TIRM's main loop need:
//
//   - Add / AddBatch: append newly sampled sets (θ grows over time in TIRM);
//   - BestNode: argmax residual coverage subject to a caller-supplied
//     eligibility filter (attention bounds) — implemented with a lazy
//     max-heap, valid because residual coverage only decreases between
//     additions and additions push refreshed entries;
//   - CoverNode: mark every residual set containing a node as covered
//     (Algorithm 2 line 12) and return how many sets that covered;
//   - CountAndCoverFrom: credit an existing seed with sets appended after a
//     given boundary (Algorithm 4, UpdateEstimates).
type Collection struct {
	n       int
	sets    [][]int32 // set id -> member nodes
	nodeIn  [][]int32 // node -> ids of sets containing it
	covered []bool    // set id -> already covered by a chosen seed
	cov     []int32   // node -> residual coverage (uncovered sets containing it)
	ncov    int       // number of covered sets
	pq      covHeap
	dead    []bool // node -> permanently ineligible (dropped from heap)
}

// NewCollection creates an empty index over n nodes.
func NewCollection(n int) *Collection {
	return &Collection{
		n:      n,
		nodeIn: make([][]int32, n),
		cov:    make([]int32, n),
		dead:   make([]bool, n),
	}
}

// initHeap rebuilds the lazy max-heap with one fresh entry per node of
// positive residual coverage.
func (c *Collection) initHeap() {
	c.pq = c.pq[:0]
	for u := 0; u < c.n; u++ {
		if c.cov[u] > 0 && !c.dead[u] {
			c.pq = append(c.pq, covEntry{node: int32(u), cov: c.cov[u]})
		}
	}
	heap.Init(&c.pq)
}

// N returns the node-universe size.
func (c *Collection) N() int { return c.n }

// MemBytes estimates the index's resident footprint: member lists, inverted
// index, coverage counters and per-set flags. TIRM reports it for the
// paper's Table 4 (memory usage), measuring the structure that actually
// dominates RR-set algorithms' memory.
func (c *Collection) MemBytes() int64 {
	var members int64
	for _, s := range c.sets {
		members += int64(len(s))
	}
	// Each member appears once in sets and once in nodeIn (4 bytes each),
	// plus slice headers (24B per set and per node), covered flags (1B per
	// set), coverage counters (4B per node), dead flags (1B per node), and
	// live heap entries (8B each).
	return members*8 +
		int64(len(c.sets))*25 +
		int64(c.n)*29 +
		int64(len(c.pq))*8
}

// NumSets returns the total number of sets ever added.
func (c *Collection) NumSets() int { return len(c.sets) }

// NumCovered returns the number of sets already covered by chosen seeds.
func (c *Collection) NumCovered() int { return c.ncov }

// Add appends one RR-set and updates coverage counts.
func (c *Collection) Add(set []int32) {
	id := int32(len(c.sets))
	c.sets = append(c.sets, set)
	c.covered = append(c.covered, false)
	for _, u := range set {
		c.nodeIn[u] = append(c.nodeIn[u], id)
		c.cov[u]++
		if !c.dead[u] {
			heap.Push(&c.pq, covEntry{node: u, cov: c.cov[u]})
		}
	}
}

// AddBatch appends many sets. Unlike repeated Add it refreshes the
// candidate heap once at the end (one entry per live node) instead of
// pushing one entry per membership — the difference between O(members·log)
// and O(members + n) when TIRM grows θ by tens of thousands of sets.
func (c *Collection) AddBatch(sets [][]int32) {
	if len(sets) == 0 {
		return
	}
	for _, set := range sets {
		id := int32(len(c.sets))
		c.sets = append(c.sets, set)
		c.covered = append(c.covered, false)
		for _, u := range set {
			c.nodeIn[u] = append(c.nodeIn[u], id)
			c.cov[u]++
		}
	}
	c.initHeap()
}

// NewCollectionFromSharedIndex builds a collection over a prebuilt sample
// and its prebuilt inverted index, the warm-start fast path of
// core.AllocateFromIndex: construction touches O(n) state instead of every
// membership. nodeIn[u] must list, in increasing order, exactly the ids of
// sets (in `sets`) containing u, and both sets and every per-node slice
// must be capacity-clipped by the caller (cap == len) so post-construction
// Adds copy instead of scribbling on the shared backing arrays.
func NewCollectionFromSharedIndex(n int, sets [][]int32, nodeIn [][]int32) *Collection {
	c := &Collection{
		n:       n,
		sets:    sets[:len(sets):len(sets)],
		nodeIn:  nodeIn,
		covered: make([]bool, len(sets)),
		cov:     make([]int32, n),
		dead:    make([]bool, n),
	}
	for u, ids := range nodeIn {
		c.cov[u] = int32(len(ids))
	}
	c.initHeap()
	return c
}

// Coverage returns the residual coverage of u: the number of not-yet-covered
// sets that contain u. n·cov/θ estimates u's marginal IC spread w.r.t. the
// already-chosen seeds.
func (c *Collection) Coverage(u int32) int { return int(c.cov[u]) }

// BestNode returns the eligible node with maximum residual coverage, or
// ok=false if no eligible node has positive coverage. eligible==nil means
// every node is eligible. Nodes reported ineligible are dropped permanently
// (callers use this for exhausted attention bounds, which never recover);
// use BestNodeKeep if eligibility can change.
func (c *Collection) BestNode(eligible func(int32) bool) (node int32, cov int, ok bool) {
	for c.pq.Len() > 0 {
		top := c.pq.peek()
		if c.dead[top.node] {
			heap.Pop(&c.pq)
			continue
		}
		cur := c.cov[top.node]
		if top.cov != cur {
			// Stale entry: refresh in place.
			heap.Pop(&c.pq)
			if cur > 0 {
				heap.Push(&c.pq, covEntry{node: top.node, cov: cur})
			}
			continue
		}
		if cur == 0 {
			heap.Pop(&c.pq)
			continue
		}
		if eligible != nil && !eligible(top.node) {
			c.dead[top.node] = true
			heap.Pop(&c.pq)
			continue
		}
		return top.node, int(cur), true
	}
	return 0, 0, false
}

// Drop permanently removes a node from BestNode consideration (e.g. a node
// already chosen as a seed for this ad).
func (c *Collection) Drop(u int32) { c.dead[u] = true }

// TopNodes returns up to k eligible nodes in decreasing residual-coverage
// order (the candidates TIRM's CandidateDepth extension scores by regret
// drop). Like BestNode it refreshes stale heap entries lazily and drops
// ineligible nodes permanently; the heap is left intact.
func (c *Collection) TopNodes(k int, eligible func(int32) bool) (nodes []int32, covs []int) {
	var aside []covEntry
	seen := map[int32]bool{}
	for c.pq.Len() > 0 && len(nodes) < k {
		top := c.pq.peek()
		if seen[top.node] {
			// Stale-refresh cycles can leave duplicate fresh entries for a
			// node; collect each node at most once per call.
			heap.Pop(&c.pq)
			continue
		}
		if c.dead[top.node] {
			heap.Pop(&c.pq)
			continue
		}
		cur := c.cov[top.node]
		if top.cov != cur {
			heap.Pop(&c.pq)
			if cur > 0 {
				heap.Push(&c.pq, covEntry{node: top.node, cov: cur})
			}
			continue
		}
		if cur == 0 {
			heap.Pop(&c.pq)
			continue
		}
		if eligible != nil && !eligible(top.node) {
			c.dead[top.node] = true
			heap.Pop(&c.pq)
			continue
		}
		heap.Pop(&c.pq)
		aside = append(aside, top)
		seen[top.node] = true
		nodes = append(nodes, top.node)
		covs = append(covs, int(cur))
	}
	for _, e := range aside {
		heap.Push(&c.pq, e)
	}
	return nodes, covs
}

// CoverNode marks all residual sets containing u as covered, decrementing
// the coverage of their other members, and returns the number of sets newly
// covered (u's residual coverage before the call).
func (c *Collection) CoverNode(u int32) int {
	covered := 0
	for _, id := range c.nodeIn[u] {
		if c.covered[id] {
			continue
		}
		c.covered[id] = true
		c.ncov++
		covered++
		for _, w := range c.sets[id] {
			c.cov[w]--
		}
	}
	if c.cov[u] != 0 {
		panic(fmt.Sprintf("rrset: residual coverage of %d nonzero after CoverNode", u))
	}
	return covered
}

// CountAndCoverFrom counts the residual sets with id >= firstID that
// contain u, marks them covered, and returns the count. TIRM's
// UpdateEstimates uses it to re-credit already-chosen seeds with coverage
// in freshly appended samples without double-counting across seeds.
func (c *Collection) CountAndCoverFrom(u int32, firstID int) int {
	covered := 0
	for _, id := range c.nodeIn[u] {
		if int(id) < firstID || c.covered[id] {
			continue
		}
		c.covered[id] = true
		c.ncov++
		covered++
		for _, w := range c.sets[id] {
			c.cov[w]--
		}
	}
	return covered
}

// covEntry is a (possibly stale) heap record.
type covEntry struct {
	node int32
	cov  int32
}

type covHeap []covEntry

func (h covHeap) Len() int            { return len(h) }
func (h covHeap) Less(i, j int) bool  { return h[i].cov > h[j].cov }
func (h covHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *covHeap) Push(x interface{}) { *h = append(*h, x.(covEntry)) }
func (h *covHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
func (h covHeap) peek() covEntry { return h[0] }
