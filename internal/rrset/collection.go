package rrset

import (
	"fmt"
	"sort"
)

// covSegment is one contiguous run of sets inside a coverage collection:
// a CSR view of the sets (local ids 0..view.Len()-1, global ids start at
// base) plus a CSR inverted index over them. The first segment of a
// warm-start collection shares its view and inverted index with the
// long-lived core.Index; growth segments own both. cut, when non-nil,
// limits each node's inverted row to its first cut[u] ids — how a shared
// inverted index covering more sets than the view is clipped without
// copying (the index's rows are ascending, so a prefix is exactly "ids
// below the view's length").
type covSegment struct {
	base int32
	view FamilyView
	inv  *Inverted
	cut  []int32
}

// idsOf returns the (global, ascending) ids of this segment's sets that
// contain u.
func (s *covSegment) idsOf(u int32) []int32 {
	ids := s.inv.IDs(u)
	if s.cut != nil {
		ids = ids[:s.cut[u]]
	}
	return ids
}

// set returns the members of the set with global id.
func (s *covSegment) set(id int32) []int32 { return s.view.Set(int(id - s.base)) }

// end returns the first global id past this segment.
func (s *covSegment) end() int { return int(s.base) + s.view.Len() }

// memBytes is the segment's exact data footprint (view + inverted + cut).
// For a shared segment this counts the index's arrays once per collection
// holding them; callers wanting process-level accounting should count the
// core.Index separately.
func (s *covSegment) memBytes() int64 {
	total := s.view.MemBytes() + s.inv.MemBytes()
	if s.cut != nil {
		total += 4 * int64(len(s.cut))
	}
	return total
}

// clipInverted computes the per-node prefix lengths of inv's rows that fall
// below k — the cut vector aligning a shared inverted index with a k-set
// view. Rows are ascending, so each cut is one binary search (skipped for
// the common row that lies entirely below k).
func clipInverted(inv *Inverted, k int) []int32 {
	return clipInvertedInto(inv, k, nil)
}

// clipInvertedInto is clipInverted writing into a reusable buffer (grown
// when too small — every element is overwritten, so no clearing is needed).
func clipInvertedInto(inv *Inverted, k int, cut []int32) []int32 {
	n := inv.NumNodes()
	if cap(cut) < n {
		cut = make([]int32, n)
	}
	cut = cut[:n]
	w := int32(k)
	for u := 0; u < n; u++ {
		ids := inv.IDs(int32(u))
		c := len(ids)
		if c > 0 && ids[c-1] >= w {
			c = sort.Search(c, func(i int) bool { return ids[i] >= w })
		}
		cut[u] = int32(c)
	}
	return cut
}

// grownBools returns buf resized to n with every element false, reusing the
// backing array when it is large enough (the clearing loop compiles to a
// memclr).
func grownBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

// Collection is a mutable coverage index over a growing family of RR-sets.
// It supports the operations TIM's phase 2 and TIRM's main loop need:
//
//   - Add / AddBatch / AddFamily: append newly sampled sets (θ grows over
//     time in TIRM);
//   - BestNode: argmax residual coverage subject to a caller-supplied
//     eligibility filter (attention bounds) — implemented with a lazy
//     max-heap, valid because residual coverage only decreases between
//     additions and additions rebuild the heap;
//   - CoverNode: mark every residual set containing a node as covered
//     (Algorithm 2 line 12) and return how many sets that covered;
//   - CountAndCoverFrom: credit an existing seed with sets appended after a
//     given boundary (Algorithm 4, UpdateEstimates).
//
// Sets live in flat CSR segments (see covSegment): per-set state is three
// flat arrays and the heap, so a collection over millions of sets is a
// handful of allocations and GC-quiet.
//
// The candidate heap is built lazily: construction, Reset, and AddFamily
// only mark it stale, and the rebuild happens on the first operation that
// observes or depends on it (BestNode/TopNodes, or a coverage mutation —
// rebuilding before mutations keeps the heap's evolution, and therefore
// tie-breaking among equal-coverage nodes, byte-identical to the historical
// rebuild-on-add behavior). A collection that is built and thrown away
// unqueried pays nothing for its heap.
type Collection struct {
	n       int
	segs    []covSegment
	numSets int
	covered []bool  // set id -> already covered by a chosen seed
	cov     []int32 // node -> residual coverage (uncovered sets containing it)
	ncov    int     // number of covered sets
	pq      covHeap
	stale   bool   // heap needs a rebuild before its next use
	dead    []bool // node -> permanently ineligible (dropped from heap)

	cut     []int32    // reusable cut-vector backing for Reset
	aside   []covEntry // TopNodes scratch
	seen    []uint64   // TopNodes / delta-cover per-call dedup stamps
	seenGen uint64
	dpos    []int32 // delta-cover per-node output positions (counter.go)

	kern CoverKernel // active cover kernel; nil means sparse
	bits *coverBits  // first segment's membership bitmap (bitset kernel)
	covw []uint64    // covered-set mask over the first segment (bitset kernel)

	// dsink is the delta-capture sink reused across CoverNodeDelta /
	// CountAndCoverFromDelta calls. Living on the (already heap-resident)
	// collection, its address can cross the CoverKernel interface without
	// forcing a fresh heap escape per cover — the sharded commit path
	// stays allocation-free. Its buffer fields are caller-owned and niled
	// after every call, so the collection never pins them.
	dsink deltaSink
}

// NewCollection creates an empty index over n nodes.
func NewCollection(n int) *Collection {
	return &Collection{
		n:    n,
		cov:  make([]int32, n),
		dead: make([]bool, n),
	}
}

// initHeap rebuilds the lazy max-heap with one fresh entry per node of
// positive residual coverage.
func (c *Collection) initHeap() {
	c.pq = c.pq[:0]
	for u := 0; u < c.n; u++ {
		if c.cov[u] > 0 && !c.dead[u] {
			c.pq = append(c.pq, covEntry{node: int32(u), cov: c.cov[u]})
		}
	}
	c.pq.init()
}

// syncHeap performs the deferred heap rebuild, if one is pending.
func (c *Collection) syncHeap() {
	if c.stale {
		c.initHeap()
		c.stale = false
	}
}

// N returns the node-universe size.
func (c *Collection) N() int { return c.n }

// MemBytes reports the index's exact resident footprint: CSR member
// arenas, CSR inverted indexes, coverage counters, per-set flags, and live
// heap entries. TIRM reports it for the paper's Table 4 (memory usage),
// measuring the structure that actually dominates RR-set algorithms'
// memory. Shared segments (warm starts over a core.Index) count the shared
// arrays here too — the footprint reachable from this collection.
func (c *Collection) MemBytes() int64 {
	var total int64
	for i := range c.segs {
		total += c.segs[i].memBytes()
	}
	return total +
		int64(len(c.covered)) + // covered flags
		int64(c.n)*5 + // cov counters + dead flags
		int64(len(c.pq))*8 +
		int64(len(c.covw))*8 // bitset kernel's covered-word mask
}

// NumSets returns the total number of sets ever added.
func (c *Collection) NumSets() int { return c.numSets }

// NumCovered returns the number of sets already covered by chosen seeds.
func (c *Collection) NumCovered() int { return c.ncov }

// Add appends one RR-set and updates coverage counts. Convenience surface
// for tests and toy universes only: each call builds a one-set segment
// (hot paths append whole batches via AddBatch or AddFamily); the heap
// rebuild is deferred, so looped Adds cost O(members) each, not O(n).
func (c *Collection) Add(set []int32) {
	c.AddBatch([][]int32{set})
}

// AddBatch appends many sets — the slice-shaped compatibility wrapper over
// AddFamily (members are copied into a fresh arena segment).
func (c *Collection) AddBatch(sets [][]int32) {
	if len(sets) == 0 {
		return
	}
	c.AddFamily(FamilyFromSets(sets).View())
}

// AddFamily appends a CSR view of freshly sampled sets as one segment,
// building its inverted index in a single counting pass and marking the
// candidate heap for a deferred one-shot rebuild — O(members + n) per
// growth, with no per-membership allocation and no heap work until the
// next query needs it.
func (c *Collection) AddFamily(v FamilyView) {
	k := v.Len()
	if k == 0 {
		return
	}
	base := int32(c.numSets)
	inv := BuildInverted(c.n, v, base)
	c.segs = append(c.segs, covSegment{base: base, view: v, inv: inv})
	c.numSets += k
	c.covered = append(c.covered, make([]bool, k)...)
	for u := 0; u < c.n; u++ {
		c.cov[u] += int32(inv.Count(int32(u)))
	}
	c.stale = true
}

// Reset reinitializes c as a warm-start collection over a shared sample
// view and its prebuilt inverted index — the same state
// NewCollectionFromFamily constructs, but recycling every backing array
// (coverage counters, per-set flags, cut vector, heap and scratch
// buffers), so a steady-state reset allocates nothing. All state from the
// previous run, including views of a previous index, is dropped. inv must
// satisfy the same prefix contract as in NewCollectionFromFamily.
func (c *Collection) Reset(n int, v FamilyView, inv *Inverted) {
	k := v.Len()
	c.n = n
	c.numSets = k
	c.ncov = 0
	c.covered = grownBools(c.covered, k)
	c.dead = grownBools(c.dead, n)
	c.cut = clipInvertedInto(inv, k, c.cut)
	if cap(c.cov) < n {
		c.cov = make([]int32, n)
	}
	c.cov = c.cov[:n]
	copy(c.cov, c.cut)
	c.segs = append(c.segs[:0], covSegment{base: 0, view: v, inv: inv, cut: c.cut})
	c.pq = c.pq[:0]
	c.stale = true
	c.kern = nil
	c.bits = nil
}

// Kernel returns the identifier of the collection's active cover kernel.
func (c *Collection) Kernel() KernelID {
	if c.kern != nil {
		return c.kern.ID()
	}
	return KernelSparse
}

// kernel resolves the active kernel implementation (sparse by default).
func (c *Collection) kernel() CoverKernel {
	if c.kern != nil {
		return c.kern
	}
	return Kernels[KernelSparse]
}

// UseKernel selects the cover kernel for this collection and returns the
// kernel actually activated. Requesting KernelBitset succeeds only when
// the collection is a fresh warm-start over one shared base-0 segment
// whose inverted index has its membership bitmap prepared (PrepareCover's
// density heuristic or PrepareCoverBits) and no set has been covered yet;
// otherwise — counter collections, hand-grown collections, unprepared
// indexes, mid-run switches — the sparse kernel stays active. Call it
// right after Reset / NewCollectionFromFamily, before any cover
// operation. The covered-word mask recycles its backing array across
// Reset cycles, so steady-state activation allocates nothing.
func (c *Collection) UseKernel(id KernelID) KernelID {
	if id != KernelBitset {
		c.kern = nil
		c.bits = nil
		return KernelSparse
	}
	if len(c.segs) != 1 || c.segs[0].base != 0 || c.ncov != 0 {
		return c.Kernel()
	}
	cb := c.segs[0].inv.preparedBits()
	if cb == nil || cb.sets < c.numSets {
		return c.Kernel()
	}
	k := c.numSets
	kw := (k + 63) / 64
	if cap(c.covw) < kw {
		c.covw = make([]uint64, kw)
	}
	c.covw = c.covw[:kw]
	for i := range c.covw {
		c.covw[i] = 0
	}
	// Pre-set the bits past the view's set count so the sweep needs no
	// tail masking: ids ≥ k read as already covered.
	if r := uint(k) & 63; r != 0 {
		c.covw[kw-1] = ^uint64(0) << r
	}
	c.kern = Kernels[KernelBitset]
	c.bits = cb
	return KernelBitset
}

// NewCollectionFromFamily builds a collection over a prebuilt sample view
// and its prebuilt inverted index, the warm-start fast path of
// core.AllocateFromIndex: construction touches O(n log d) state (one
// binary-searched row clip per node) instead of every membership. inv must
// index, with global ids ascending per node, a family of which v is the
// prefix — rows may extend past v.Len() (the shared index usually holds
// more sets than this run's θ); the excess is clipped, not copied.
func NewCollectionFromFamily(n int, v FamilyView, inv *Inverted) *Collection {
	c := &Collection{}
	c.Reset(n, v, inv)
	return c
}

// Coverage returns the residual coverage of u: the number of not-yet-covered
// sets that contain u. n·cov/θ estimates u's marginal IC spread w.r.t. the
// already-chosen seeds.
func (c *Collection) Coverage(u int32) int { return int(c.cov[u]) }

// BestNode returns the eligible node with maximum residual coverage, or
// ok=false if no eligible node has positive coverage. eligible==nil means
// every node is eligible. Nodes reported ineligible are dropped permanently
// (callers use this for exhausted attention bounds, which never recover).
func (c *Collection) BestNode(eligible func(int32) bool) (node int32, cov int, ok bool) {
	c.syncHeap()
	for len(c.pq) > 0 {
		top := c.pq[0]
		if c.dead[top.node] {
			c.pq.pop()
			continue
		}
		cur := c.cov[top.node]
		if top.cov != cur {
			// Stale entry: refresh in place.
			c.pq.pop()
			if cur > 0 {
				c.pq.push(covEntry{node: top.node, cov: cur})
			}
			continue
		}
		if cur == 0 {
			c.pq.pop()
			continue
		}
		if eligible != nil && !eligible(top.node) {
			c.dead[top.node] = true
			c.pq.pop()
			continue
		}
		return top.node, int(cur), true
	}
	return 0, 0, false
}

// Drop permanently removes a node from BestNode consideration (e.g. a node
// already chosen as a seed for this ad).
func (c *Collection) Drop(u int32) { c.dead[u] = true }

// TopNodes returns up to k eligible nodes in decreasing residual-coverage
// order (the candidates TIRM's CandidateDepth extension scores by regret
// drop). Like BestNode it refreshes stale heap entries lazily and drops
// ineligible nodes permanently; the heap is left intact. Allocation-free
// callers use TopNodesInto.
func (c *Collection) TopNodes(k int, eligible func(int32) bool) (nodes []int32, covs []int) {
	return c.TopNodesInto(k, eligible, nil, nil)
}

// TopNodesInto is TopNodes appending into caller-provided buffers (which
// may be nil) instead of allocating fresh result slices — the serving hot
// path calls it once per ad per greedy iteration, so the per-call garbage
// of the convenience form (result slices plus a dedup map) would dominate a
// warm allocation's profile. Scratch state lives on the collection;
// returned slices alias the (possibly grown) buffers.
func (c *Collection) TopNodesInto(k int, eligible func(int32) bool, nodes []int32, covs []int) ([]int32, []int) {
	c.syncHeap()
	nodes, covs = nodes[:0], covs[:0]
	aside := c.aside[:0]
	if len(c.seen) < c.n {
		c.seen = make([]uint64, c.n)
	}
	c.seenGen++
	gen := c.seenGen
	for len(c.pq) > 0 && len(nodes) < k {
		top := c.pq[0]
		if c.seen[top.node] == gen {
			// Stale-refresh cycles can leave duplicate fresh entries for a
			// node; collect each node at most once per call.
			c.pq.pop()
			continue
		}
		if c.dead[top.node] {
			c.pq.pop()
			continue
		}
		cur := c.cov[top.node]
		if top.cov != cur {
			c.pq.pop()
			if cur > 0 {
				c.pq.push(covEntry{node: top.node, cov: cur})
			}
			continue
		}
		if cur == 0 {
			c.pq.pop()
			continue
		}
		if eligible != nil && !eligible(top.node) {
			c.dead[top.node] = true
			c.pq.pop()
			continue
		}
		c.pq.pop()
		aside = append(aside, top)
		c.seen[top.node] = gen
		nodes = append(nodes, top.node)
		covs = append(covs, int(cur))
	}
	for _, e := range aside {
		c.pq.push(e)
	}
	c.aside = aside[:0]
	return nodes, covs
}

// CoverNode marks all residual sets containing u as covered, decrementing
// the coverage of their other members, and returns the number of sets newly
// covered (u's residual coverage before the call). Segments are walked in
// id order, so covering order matches the historical flat-list behavior
// exactly.
//
// This is the single hottest loop of a warm allocation — every committed
// seed retires its covered sets here — so the walk itself is delegated to
// the collection's active cover kernel (see CoverKernel): the sparse
// kernel prefers the inverted index's cover join (one sequential record
// stream per node, members inlined; see coverJoin), falling back to the
// arena hop for spilled sets and for segments whose join was never
// prepared — per-request θ-growth segments and hand-built collections,
// state too short-lived to amortize a join build; the bitset kernel sweeps
// packed membership words. Either way sets retire in ascending id order,
// so the covering sequence — and with it every downstream estimate — is
// unchanged.
func (c *Collection) CoverNode(u int32) int {
	c.syncHeap()
	covered := c.kernel().coverNode(c, u)
	c.ncov += covered
	if c.cov[u] != 0 {
		panic(fmt.Sprintf("rrset: residual coverage of %d nonzero after CoverNode", u))
	}
	return covered
}

// CountAndCoverFrom counts the residual sets with id >= firstID that
// contain u, marks them covered, and returns the count. TIRM's
// UpdateEstimates uses it to re-credit already-chosen seeds with coverage
// in freshly appended samples without double-counting across seeds.
func (c *Collection) CountAndCoverFrom(u int32, firstID int) int {
	c.syncHeap()
	covered := c.kernel().countAndCoverFrom(c, u, firstID)
	c.ncov += covered
	return covered
}

// covEntry is a (possibly stale) heap record.
type covEntry struct {
	node int32
	cov  int32
}

// covHeap is a max-heap of coverage entries with concrete push/pop — the
// same sift algorithm as container/heap (so heap layout, and therefore
// tie-breaking among equal-coverage nodes, is bit-compatible with the
// historical container/heap implementation) without the interface{}
// boxing that allocated on every stale-entry refresh.
type covHeap []covEntry

func (h covHeap) less(i, j int) bool { return h[i].cov > h[j].cov }

// init establishes the heap invariant over the full slice (container/heap
// Init).
func (h covHeap) init() {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		h.down(i, n)
	}
}

// push appends e and sifts it up (container/heap Push).
func (h *covHeap) push(e covEntry) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

// pop removes and returns the max entry (container/heap Pop).
func (h *covHeap) pop() covEntry {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	old.down(0, n)
	e := old[n]
	*h = old[:n]
	return e
}

func (h covHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h covHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2
		}
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}
