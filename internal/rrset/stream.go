package rrset

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/xrand"
)

// StreamBlockSize is the block granularity of the deterministic RR stream
// (see SampleRangeRR). Index growth always rounds up to a block boundary so
// every block is drawn in full from the start of its derived rng — no
// partially consumed streams ever need to be persisted or reconstructed.
const StreamBlockSize = 256

// StreamCeil rounds count up to the next StreamBlockSize multiple.
func StreamCeil(count int) int {
	if count <= 0 {
		return 0
	}
	return (count + StreamBlockSize - 1) / StreamBlockSize * StreamBlockSize
}

// SampleRangeRR draws sets [from, to) of the sampler's deterministic RR
// stream under rng. Set i belongs to block i/StreamBlockSize, and block b is
// drawn sequentially from the derived stream rng.Split(b), so the i-th set
// is a pure function of (graph, probs, rng seed, i) — independent of batch
// boundaries, growth history, and GOMAXPROCS. This is the contract that
// lets a long-lived RR-set index (core.Index) grow on demand under any
// interleaving of allocation requests, or restart from a disk snapshot, and
// still produce byte-identical samples.
//
// Unlike SampleBatchRR — whose chunk decomposition (and therefore output)
// depends on the batch size — the stream position alone decides each set's
// randomness. Blocks are sampled in parallel. from and to must be multiples
// of StreamBlockSize with from ≤ to.
func (s *Sampler) SampleRangeRR(from, to int, rng *xrand.Rand) [][]int32 {
	if from%StreamBlockSize != 0 || to%StreamBlockSize != 0 || from > to {
		panic(fmt.Sprintf("rrset: SampleRangeRR range [%d,%d) not block-aligned", from, to))
	}
	if from == to {
		return nil
	}
	out := make([][]int32, to-from)
	firstBlock := from / StreamBlockSize
	numBlocks := (to - from) / StreamBlockSize
	workers := runtime.GOMAXPROCS(0)
	if workers > numBlocks {
		workers = numBlocks
	}
	next := make(chan int, numBlocks)
	for b := 0; b < numBlocks; b++ {
		next <- b
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := s.newScratch()
			for b := range next {
				brng := rng.Split(uint64(firstBlock + b))
				base := b * StreamBlockSize
				for i := 0; i < StreamBlockSize; i++ {
					out[base+i] = s.sampleInto(sc, brng, false)
				}
			}
		}()
	}
	wg.Wait()
	return out
}
