package rrset

import (
	"fmt"
	"sync"

	"repro/internal/xrand"
)

// StreamBlockSize is the block granularity of the deterministic RR stream
// (see SampleRangeRRInto). Index growth always rounds up to a block
// boundary so every block is drawn in full from the start of its derived
// rng — no partially consumed streams ever need to be persisted or
// reconstructed.
const StreamBlockSize = 256

// StreamCeil rounds count up to the next StreamBlockSize multiple.
func StreamCeil(count int) int {
	if count <= 0 {
		return 0
	}
	return (count + StreamBlockSize - 1) / StreamBlockSize * StreamBlockSize
}

// SampleRangeRRInto draws sets [from, to) of the sampler's deterministic RR
// stream under rng, appending them to the fam arena. Set i belongs to block
// i/StreamBlockSize, and block b is drawn sequentially from the derived
// stream rng.Split(b), so the i-th set is a pure function of (graph, probs,
// rng seed, i) — independent of batch boundaries, growth history, and
// worker count. This is the contract that lets a long-lived RR-set index
// (core.Index) grow on demand under any interleaving of allocation
// requests, or restart from a disk snapshot, and still produce
// byte-identical samples.
//
// Blocks are sampled in parallel into per-block scratch arenas and merged
// into fam in block order, so the arena layout is as deterministic as the
// stream itself. from and to must be multiples of StreamBlockSize with
// from ≤ to; the number of appended sets is to−from.
func (s *Sampler) SampleRangeRRInto(from, to int, rng *xrand.Rand, fam *SetFamily) {
	if from%StreamBlockSize != 0 || to%StreamBlockSize != 0 || from > to {
		panic(fmt.Sprintf("rrset: SampleRangeRR range [%d,%d) not block-aligned", from, to))
	}
	if from == to {
		return
	}
	firstBlock := from / StreamBlockSize
	numBlocks := (to - from) / StreamBlockSize
	blockIDs := make([]int, numBlocks)
	for b := range blockIDs {
		blockIDs[b] = firstBlock + b
	}
	s.sampleBlocksInto(blockIDs, rng, fam)
}

// SampleShardRangeRRInto draws the part-owned subset of stream sets
// [from, to), appending them to fam in ascending global order. Block
// ownership never changes which rng a block derives from, so the sets a
// shard draws are bit-identical to the ones a single-node sampler would
// place at the same global positions — the union of all shards' local
// arenas over the same range is exactly the single-node stream. from and
// to must be block-aligned with from ≤ to; the identity partition is
// exactly SampleRangeRRInto.
func (s *Sampler) SampleShardRangeRRInto(part StreamPartition, from, to int, rng *xrand.Rand, fam *SetFamily) {
	if from%StreamBlockSize != 0 || to%StreamBlockSize != 0 || from > to {
		panic(fmt.Sprintf("rrset: SampleShardRangeRR range [%d,%d) not block-aligned", from, to))
	}
	firstBlock, lastBlock := from/StreamBlockSize, to/StreamBlockSize
	var blockIDs []int
	for b := firstBlock; b < lastBlock; b++ {
		if part.Owner(b) == part.Shard {
			blockIDs = append(blockIDs, b)
		}
	}
	s.sampleBlocksInto(blockIDs, rng, fam)
}

// sampleBlocksInto draws the listed global blocks in parallel into
// per-block scratch arenas and merges them into fam in list order — the
// shared engine of SampleRangeRRInto and SampleShardRangeRRInto. Block b
// always samples from the derived stream rng.Split(b), independent of
// which blocks accompany it or which worker draws it.
func (s *Sampler) sampleBlocksInto(blockIDs []int, rng *xrand.Rand, fam *SetFamily) {
	numBlocks := len(blockIDs)
	if numBlocks == 0 {
		return
	}
	blocks := make([]*SetFamily, numBlocks)
	workers := samplingWorkers(numBlocks)
	next := make(chan int, numBlocks)
	for b := 0; b < numBlocks; b++ {
		next <- b
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := s.newScratch()
			for b := range next {
				bf := &SetFamily{
					offsets: make([]int64, 1, StreamBlockSize+1),
					members: make([]int32, 0, 4*StreamBlockSize),
				}
				brng := rng.Split(uint64(blockIDs[b]))
				for i := 0; i < StreamBlockSize; i++ {
					bf.Append(s.sampleScratch(sc, brng, false))
				}
				blocks[b] = bf
			}
		}()
	}
	wg.Wait()
	var total int64
	for _, bf := range blocks {
		total += bf.NumMembers()
	}
	fam.Reserve(numBlocks*StreamBlockSize, total)
	for _, bf := range blocks {
		fam.AppendFamily(bf)
	}
}

// SampleRangeRR is SampleRangeRRInto materialized as [][]int32 views over a
// fresh arena — the slice-shaped compatibility surface (the i-th returned
// set is stream set from+i).
func (s *Sampler) SampleRangeRR(from, to int, rng *xrand.Rand) [][]int32 {
	if from == to {
		if from%StreamBlockSize != 0 {
			panic(fmt.Sprintf("rrset: SampleRangeRR range [%d,%d) not block-aligned", from, to))
		}
		return nil
	}
	fam := NewSetFamily()
	s.SampleRangeRRInto(from, to, rng, fam)
	return fam.Sets()
}
