// Package rrset is the reverse-reachable-set substrate the allocation
// algorithms run on: RR-set sampling by reverse BFS (Sampler), the
// deterministic block stream that makes samples growable and restartable
// (SampleRangeRRInto, StreamBlockSize), flat-arena set storage and
// inverted indexes in CSR form (SetFamily, FamilyView, Inverted), the
// residual-coverage collections TIRM's greedy selection queries
// (Collection for the paper's hard removal, WeightedCollection for the
// soft-CTP TIRM-W extension), the θ sample-size bound of Eq. 5 (L, Theta),
// and the versioned binary snapshot codec (EncodeSetFamily,
// DecodeSetFamily).
//
// Two properties carry the whole serving layer above it. First,
// determinism: set i of a stream is a pure function of (graph,
// probabilities, seed, i), independent of batch boundaries, growth
// history, and worker count, so a long-lived sample can grow under any
// request interleaving — or reload from disk — and stay byte-identical.
// Second, stable views: arenas are append-only and FamilyViews taken
// before an append remain valid while the family grows, which is what lets
// concurrent selection runs read consistent prefixes of a sample that is
// still being extended. See DESIGN.md §3 and §6.
package rrset
