package rrset

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/xrand"
)

// TestEncodeSetFamilyRoundTrip: v2 sections round-trip and concatenate on
// one stream, including empty sets and an empty family.
func TestEncodeSetFamilyRoundTrip(t *testing.T) {
	for _, fam := range []*SetFamily{
		FamilyFromSets([][]int32{{1, 2}, nil, {0, 3, 9}, {5}}),
		NewSetFamily(),
	} {
		var buf bytes.Buffer
		if err := EncodeSetFamily(&buf, fam.View()); err != nil {
			t.Fatal(err)
		}
		if err := EncodeSetFamily(&buf, fam.View()); err != nil {
			t.Fatal(err)
		}
		r := bytes.NewReader(buf.Bytes())
		for k := 0; k < 2; k++ {
			got, err := DecodeSetFamily(r, 10)
			if err != nil {
				t.Fatalf("section %d: %v", k, err)
			}
			if !reflect.DeepEqual(canonSets(fam.Sets()), canonSets(got.Sets())) {
				t.Fatalf("section %d did not round-trip", k)
			}
		}
		if r.Len() != 0 {
			t.Fatalf("%d trailing bytes", r.Len())
		}
	}
}

// TestEncodeZeroValueView: the zero-value FamilyView encodes as an empty
// family instead of panicking (the rest of the FamilyView API treats the
// zero value as empty).
func TestEncodeZeroValueView(t *testing.T) {
	var v FamilyView
	var buf bytes.Buffer
	if err := EncodeSetFamily(&buf, v); err != nil {
		t.Fatal(err)
	}
	fam, err := DecodeSetFamily(bytes.NewReader(buf.Bytes()), 10)
	if err != nil {
		t.Fatal(err)
	}
	if fam.Len() != 0 || fam.NumMembers() != 0 {
		t.Fatalf("decoded %d sets, %d members", fam.Len(), fam.NumMembers())
	}
}

// TestDecodeAcceptsBothVersions: a v1 section (legacy writer) and a v2
// section decode to the same family through the one entry point.
func TestDecodeAcceptsBothVersions(t *testing.T) {
	sets := [][]int32{{1, 2}, {3}, nil, {0, 4}}
	var v1, v2 bytes.Buffer
	if err := EncodeSets(&v1, sets); err != nil {
		t.Fatal(err)
	}
	if err := EncodeSetFamily(&v2, FamilyFromSets(sets).View()); err != nil {
		t.Fatal(err)
	}
	f1, err := DecodeSetFamily(bytes.NewReader(v1.Bytes()), 5)
	if err != nil {
		t.Fatalf("v1: %v", err)
	}
	f2, err := DecodeSetFamily(bytes.NewReader(v2.Bytes()), 5)
	if err != nil {
		t.Fatalf("v2: %v", err)
	}
	if !reflect.DeepEqual(canonSets(f1.Sets()), canonSets(f2.Sets())) {
		t.Fatal("v1 and v2 decode differently")
	}
	if !reflect.DeepEqual(canonSets(sets), canonSets(f1.Sets())) {
		t.Fatal("decode does not match input")
	}
}

func TestDecodeSetFamilyV2RejectsCorruption(t *testing.T) {
	fam := FamilyFromSets([][]int32{{1, 2}, {3}, {0, 4, 2}})
	var buf bytes.Buffer
	if err := EncodeSetFamily(&buf, fam.View()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	flip := func(i int) []byte {
		bad := append([]byte{}, raw...)
		bad[i] ^= 0x01
		return bad
	}
	// A member bit-flip that stays in range is exactly what the CRC footer
	// exists to catch: member arena starts after magic+meta+lengths.
	memberOff := 4 + 12 + 4*3
	if _, err := DecodeSetFamily(bytes.NewReader(flip(memberOff)), 10); err == nil {
		t.Error("in-range member corruption accepted (CRC must catch it)")
	}
	// Footer corruption.
	if _, err := DecodeSetFamily(bytes.NewReader(flip(len(raw)-1)), 10); err == nil {
		t.Error("corrupt CRC footer accepted")
	}
	// Truncations at every boundary.
	for _, cut := range []int{2, 4, 10, 4 + 12 + 2, len(raw) - 2} {
		if _, err := DecodeSetFamily(bytes.NewReader(raw[:cut]), 10); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Universe too small for a member / for a length.
	if _, err := DecodeSetFamily(bytes.NewReader(raw), 4); err == nil {
		t.Error("out-of-range member accepted")
	}
	if _, err := DecodeSetFamily(bytes.NewReader(raw), 2); err == nil {
		t.Error("oversized set accepted")
	}
	// An absurd count/total must fail fast, not preallocate.
	huge := append([]byte{}, raw...)
	for i := 4; i < 16; i++ {
		huge[i] = 0xff
	}
	if _, err := DecodeSetFamily(bytes.NewReader(huge), 10); err == nil {
		t.Error("absurd header accepted")
	}
}

// FuzzDecodeSets hammers the one decode entry point with arbitrary bytes;
// it must never panic or over-allocate, and anything it accepts must
// re-encode to a decodable v2 section. Seeds cover clean v1 and v2
// sections, truncations, and a CRC flip.
func FuzzDecodeSets(f *testing.F) {
	sets := [][]int32{{1, 2}, {3}, nil, {0, 4, 5}}
	var v1, v2 bytes.Buffer
	if err := EncodeSets(&v1, sets); err != nil {
		f.Fatal(err)
	}
	if err := EncodeSetFamily(&v2, FamilyFromSets(sets).View()); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v1.Bytes()[:5])
	f.Add(v2.Bytes()[:9])
	crcFlip := append([]byte{}, v2.Bytes()...)
	crcFlip[len(crcFlip)-2] ^= 0xff
	f.Add(crcFlip)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 8
		fam, err := DecodeSetFamily(bytes.NewReader(data), n)
		if err != nil {
			return
		}
		for i := 0; i < fam.Len(); i++ {
			set := fam.Set(i)
			if len(set) > n {
				t.Fatalf("accepted set %d with %d members (universe %d)", i, len(set), n)
			}
			for _, u := range set {
				if u < 0 || int(u) >= n {
					t.Fatalf("accepted out-of-range member %d", u)
				}
			}
		}
		var out bytes.Buffer
		if err := EncodeSetFamily(&out, fam.View()); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := DecodeSetFamily(bytes.NewReader(out.Bytes()), n)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(canonSets(fam.Sets()), canonSets(back.Sets())) {
			t.Fatal("re-encode round trip diverged")
		}
	})
}

// codecBenchFamily builds a synthetic ≥100k-set family shaped like a real
// RR sample (small, skewed sets).
func codecBenchFamily(numSets, n int) *SetFamily {
	r := xrand.New(99)
	fam := NewSetFamily()
	fam.Reserve(numSets, int64(numSets)*6)
	var scratch []int32
	for i := 0; i < numSets; i++ {
		sz := 1 + r.IntN(10)
		scratch = scratch[:0]
		for j := 0; j < sz; j++ {
			scratch = append(scratch, int32(r.IntN(n)))
		}
		fam.Append(scratch)
	}
	return fam
}

// BenchmarkSnapshotCodec compares the legacy per-set v1 codec against the
// bulk v2 codec on a 128k-set family (encode+decode round trip per op).
func BenchmarkSnapshotCodec(b *testing.B) {
	const numSets, n = 128 * 1024, 30000
	fam := codecBenchFamily(numSets, n)
	sets := fam.Sets()
	b.Run("v1", func(b *testing.B) {
		b.ReportAllocs()
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := EncodeSets(&buf, sets); err != nil {
				b.Fatal(err)
			}
			if _, err := DecodeSetFamily(bytes.NewReader(buf.Bytes()), n); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(buf.Len()))
	})
	b.Run("v2", func(b *testing.B) {
		b.ReportAllocs()
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := EncodeSetFamily(&buf, fam.View()); err != nil {
				b.Fatal(err)
			}
			if _, err := DecodeSetFamily(bytes.NewReader(buf.Bytes()), n); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(buf.Len()))
	})
}

// BenchmarkBuildInverted measures the one-pass CSR inverted-index build
// that replaced per-node append lists.
func BenchmarkBuildInverted(b *testing.B) {
	const numSets, n = 64 * 1024, 30000
	fam := codecBenchFamily(numSets, n)
	v := fam.View()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildInverted(n, v, 0)
	}
}
