package exp

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
)

// PrintQuality renders Fig. 3 / Fig. 4 / Table 3 rows as an aligned table:
// one line per (λ, κ) with a column per algorithm — the same series the
// paper plots.
func PrintQuality(w io.Writer, title string, rows []QualityRow, column func(QualityRow) string) {
	fmt.Fprintf(w, "== %s ==\n", title)
	algos := map[Algo]bool{}
	type key struct {
		lambda float64
		kappa  int
	}
	cells := map[key]map[Algo]string{}
	var keys []key
	for _, r := range rows {
		k := key{r.Lambda, r.Kappa}
		if cells[k] == nil {
			cells[k] = map[Algo]string{}
			keys = append(keys, k)
		}
		cells[k][r.Algo] = column(r)
		algos[r.Algo] = true
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].lambda != keys[j].lambda {
			return keys[i].lambda < keys[j].lambda
		}
		return keys[i].kappa < keys[j].kappa
	})
	var order []Algo
	for _, a := range AllAlgos {
		if algos[a] {
			order = append(order, a)
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "lambda\tkappa")
	for _, a := range order {
		fmt.Fprintf(tw, "\t%s", a)
	}
	fmt.Fprintln(tw)
	for _, k := range keys {
		fmt.Fprintf(tw, "%.1f\t%d", k.lambda, k.kappa)
		for _, a := range order {
			fmt.Fprintf(tw, "\t%s", cells[k][a])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// RegretColumn formats total regret (and % of budget) for PrintQuality.
func RegretColumn(r QualityRow) string {
	return fmt.Sprintf("%.1f (%.1f%%)", r.TotalRegret, 100*r.RegretOverBudget)
}

// TargetedColumn formats the distinct-targeted-node count (Table 3).
func TargetedColumn(r QualityRow) string { return fmt.Sprintf("%d", r.DistinctTargeted) }

// PrintFig5 renders the per-ad overshoot distribution.
func PrintFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "== FIG5: per-ad revenue − budget (λ=0, κ=5) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\talgo\tad\tbudget\trevenue\trev−budget\tseeds")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.1f\t%.1f\t%+.1f\t%d\n",
			r.Dataset, r.Algo, r.Ad, r.Budget, r.Revenue, r.Overshoot, r.Seeds)
	}
	tw.Flush()
	for _, algo := range []Algo{AlgoGreedyIRIE, AlgoTIRM} {
		if s := Fig5Skew(rows, algo); !math.IsInf(s, 1) {
			fmt.Fprintf(w, "%s max/min |rev−budget| skew: %.1f\n", algo, s)
		}
	}
}

// PrintTable1 renders dataset statistics.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "== TABLE1: dataset statistics ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\t#nodes\t#edges\ttype\tmax outdeg\tavg outdeg\tgiant comp")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%d\t%.1f\t%.1f%%\n",
			r.Dataset, r.Nodes, r.Edges, r.Type, r.Stats.MaxOutDeg, r.Stats.AvgOutDeg, 100*r.GiantFrac)
	}
	tw.Flush()
}

// PrintTable2 renders advertiser budget/CPE summaries.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "== TABLE2: advertiser budgets and cost-per-engagement ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tbudget mean\tmin\tmax\tcpe mean\tmin\tmax")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.2f\t%.2f\t%.2f\n",
			r.Dataset, r.BudgetMean, r.BudgetMin, r.BudgetMax, r.CPEMean, r.CPEMin, r.CPEMax)
	}
	tw.Flush()
}

// PrintScale renders Fig. 6 / Table 4 rows.
func PrintScale(w io.Writer, title string, rows []ScaleRow) {
	fmt.Fprintf(w, "== %s ==\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\talgo\th\tbudget\ttime (s)\tmem (MB)\tseeds\tRR-sets")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.0f\t%.2f\t%.1f\t%d\t%d\n",
			r.Dataset, r.Algo, r.H, r.Budget, r.WallSeconds,
			float64(r.MemBytes)/1e6, r.Seeds, r.SetsSampled)
	}
	tw.Flush()
}

// PrintFig1 renders the toy-example rows.
func PrintFig1(w io.Writer, rows []Fig1Row) {
	fmt.Fprintln(w, "== FIG1/EXAMPLES 1–2: toy instance regrets ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "allocation\tlambda\tregret (MC)\tpaper")
	for _, r := range rows {
		paper := "—"
		if !math.IsNaN(r.PaperValue) {
			paper = fmt.Sprintf("%.1f", r.PaperValue)
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.3f\t%s\n", r.Allocation, r.Lambda, r.TotalRegret, paper)
	}
	tw.Flush()
}

// PrintBoost renders the budget-boosting ablation.
func PrintBoost(w io.Writer, rows []BoostRow) {
	fmt.Fprintln(w, "== BOOST: B' = (1+β)·B ablation (TIRM, λ=0, κ=1) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tbeta\trevenue\tregret\tundershoot\tovershoot\tseeds")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%+.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%d\n",
			r.Dataset, r.Beta, r.TotalRevenue, r.TotalRegret, r.Undershoot, r.Overshoot, r.Seeds)
	}
	tw.Flush()
}
