package exp

import (
	"repro/internal/core"
	"repro/internal/gen"
)

// BoostRow is one point of the budget-boosting ablation (§3 Discussion):
// the host artificially boosts each budget to B'_i = (1+β)·B_i before
// allocating, trading some free service for extra revenue. Regret is
// evaluated against the *original* budgets, split into undershoot and
// overshoot mass so the trade-off is visible.
type BoostRow struct {
	Dataset Dataset
	Beta    float64
	// TotalRevenue is the MC revenue summed over ads.
	TotalRevenue float64
	// TotalRegret is Σ|B_i − Π_i| (λ = 0) w.r.t. the original budgets.
	TotalRegret float64
	// Undershoot is Σ max(0, B_i − Π_i); Overshoot is Σ max(0, Π_i − B_i)
	// ("free service").
	Undershoot, Overshoot float64
	Seeds                 int
}

// Boost runs TIRM with boosted budgets B' = (1+β)B for each β and scores
// the result against the original budgets.
func Boost(ds Dataset, cfg Config, betas []float64) ([]BoostRow, error) {
	cfg = cfg.withDefaults()
	if len(betas) == 0 {
		betas = []float64{-0.2, -0.1, 0, 0.1, 0.2}
	}
	base, err := Generate(ds, cfg, gen.Options{Kappa: 1, Lambda: 0})
	if err != nil {
		return nil, err
	}
	var rows []BoostRow
	for _, beta := range betas {
		boosted := *base
		boosted.Ads = append([]core.Ad{}, base.Ads...)
		for i := range boosted.Ads {
			boosted.Ads[i].Budget = (1 + beta) * base.Ads[i].Budget
		}
		alloc, _, err := RunAlgo(&boosted, AlgoTIRM, cfg)
		if err != nil {
			return nil, err
		}
		out := EvaluateAlloc(base, alloc, cfg) // score vs original budgets
		row := BoostRow{Dataset: ds, Beta: beta, TotalRegret: out.TotalRegret, Seeds: out.TotalSeeds}
		for _, ao := range out.Ads {
			row.TotalRevenue += ao.Revenue
			if ao.Overshoot > 0 {
				row.Overshoot += ao.Overshoot
			} else {
				row.Undershoot += -ao.Overshoot
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
