package exp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gen"
)

// QualityRow is one point of the Fig. 3 / Fig. 4 sweeps: the MC-evaluated
// total regret of one algorithm at one (κ, λ) setting.
type QualityRow struct {
	Dataset          Dataset
	Algo             Algo
	Kappa            int
	Lambda           float64
	TotalRegret      float64
	RegretOverBudget float64
	Seeds            int
	DistinctTargeted int
	Wall             float64 // seconds
}

// QualitySweep runs the paper's four algorithms over a (κ, λ) grid on one
// quality dataset and MC-evaluates every allocation. Fig. 3 uses
// λ ∈ {0, 0.5} × κ ∈ 1..5; Fig. 4 uses λ ∈ {0, 0.1, 0.5, 1} × κ ∈ {1, 5};
// Table 3 reads the DistinctTargeted column at λ = 0.
func QualitySweep(ds Dataset, cfg Config, kappas []int, lambdas []float64, algos []Algo) ([]QualityRow, error) {
	cfg = cfg.withDefaults()
	if len(algos) == 0 {
		algos = AllAlgos
	}
	var rows []QualityRow
	for _, lambda := range lambdas {
		for _, kappa := range kappas {
			inst, err := Generate(ds, cfg, gen.Options{Kappa: kappa, Lambda: lambda})
			if err != nil {
				return nil, err
			}
			for _, algo := range algos {
				alloc, stats, err := RunAlgo(inst, algo, cfg)
				if err != nil {
					return nil, err
				}
				if err := alloc.Validate(inst); err != nil {
					return nil, fmt.Errorf("exp: %s produced invalid allocation: %v", algo, err)
				}
				out := EvaluateAlloc(inst, alloc, cfg)
				rows = append(rows, QualityRow{
					Dataset:          ds,
					Algo:             algo,
					Kappa:            kappa,
					Lambda:           lambda,
					TotalRegret:      out.TotalRegret,
					RegretOverBudget: out.RegretOverBudget,
					Seeds:            out.TotalSeeds,
					DistinctTargeted: out.DistinctTargeted,
					Wall:             stats.Wall.Seconds(),
				})
				cfg.log("%s %s κ=%d λ=%.1f: regret=%.1f (%.1f%%)\n",
					ds, algo, kappa, lambda, out.TotalRegret, 100*out.RegretOverBudget)
			}
		}
	}
	return rows, nil
}

// Fig3 regenerates Figure 3: total regret vs κ ∈ 1..5 for λ ∈ {0, 0.5}.
func Fig3(ds Dataset, cfg Config) ([]QualityRow, error) {
	return QualitySweep(ds, cfg, []int{1, 2, 3, 4, 5}, []float64{0, 0.5}, nil)
}

// Fig4 regenerates Figure 4: total regret vs λ ∈ {0, 0.1, 0.5, 1} for
// κ ∈ {1, 5}.
func Fig4(ds Dataset, cfg Config) ([]QualityRow, error) {
	return QualitySweep(ds, cfg, []int{1, 5}, []float64{0, 0.1, 0.5, 1}, nil)
}

// Table3 regenerates Table 3: distinct targeted nodes vs κ at λ = 0.
func Table3(ds Dataset, cfg Config) ([]QualityRow, error) {
	return QualitySweep(ds, cfg, []int{1, 2, 3, 4, 5}, []float64{0}, nil)
}

// Fig5Row is one bar of Figure 5: an advertiser's signed budget-regret
// (revenue − budget) under one algorithm, at λ = 0, κ = 5.
type Fig5Row struct {
	Dataset Dataset
	Algo    Algo
	Ad      string
	Budget  float64
	Revenue float64
	// Overshoot = Revenue − Budget (the paper plots this per ad).
	Overshoot float64
	Seeds     int
}

// Fig5 regenerates Figure 5: the per-ad distribution of revenue − budget
// for TIRM and GREEDY-IRIE (λ = 0, κ = 5).
func Fig5(ds Dataset, cfg Config) ([]Fig5Row, error) {
	cfg = cfg.withDefaults()
	inst, err := Generate(ds, cfg, gen.Options{Kappa: 5, Lambda: 0})
	if err != nil {
		return nil, err
	}
	var rows []Fig5Row
	for _, algo := range []Algo{AlgoGreedyIRIE, AlgoTIRM} {
		alloc, _, err := RunAlgo(inst, algo, cfg)
		if err != nil {
			return nil, err
		}
		out := EvaluateAlloc(inst, alloc, cfg)
		for _, ao := range out.Ads {
			rows = append(rows, Fig5Row{
				Dataset:   ds,
				Algo:      algo,
				Ad:        ao.Name,
				Budget:    ao.Budget,
				Revenue:   ao.Revenue,
				Overshoot: ao.Overshoot,
				Seeds:     ao.Seeds,
			})
		}
	}
	return rows, nil
}

// Fig5Skew summarizes a Fig. 5 series: the max/min |overshoot| ratio the
// paper uses to argue TIRM's distribution is "much more uniform" than
// GREEDY-IRIE's.
func Fig5Skew(rows []Fig5Row, algo Algo) float64 {
	lo, hi := math.Inf(1), 0.0
	for _, r := range rows {
		if r.Algo != algo {
			continue
		}
		a := math.Abs(r.Overshoot)
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	if lo == 0 || math.IsInf(lo, 1) {
		return math.Inf(1)
	}
	return hi / lo
}

// Table2Row summarizes one dataset's advertiser parameters (Table 2).
type Table2Row struct {
	Dataset                          Dataset
	BudgetMean, BudgetMin, BudgetMax float64
	CPEMean, CPEMin, CPEMax          float64
}

// Table2 regenerates Table 2 for the quality datasets.
func Table2(cfg Config) ([]Table2Row, error) {
	cfg = cfg.withDefaults()
	var rows []Table2Row
	for _, ds := range QualityDatasets {
		inst, err := Generate(ds, cfg, gen.Options{})
		if err != nil {
			return nil, err
		}
		row := Table2Row{Dataset: ds, BudgetMin: math.Inf(1), CPEMin: math.Inf(1)}
		for _, ad := range inst.Ads {
			row.BudgetMean += ad.Budget
			row.CPEMean += ad.CPE
			row.BudgetMin = math.Min(row.BudgetMin, ad.Budget)
			row.BudgetMax = math.Max(row.BudgetMax, ad.Budget)
			row.CPEMin = math.Min(row.CPEMin, ad.CPE)
			row.CPEMax = math.Max(row.CPEMax, ad.CPE)
		}
		row.BudgetMean /= float64(len(inst.Ads))
		row.CPEMean /= float64(len(inst.Ads))
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig1Row reports the toy example: one allocation's exact regret.
type Fig1Row struct {
	Allocation  string
	Lambda      float64
	TotalRegret float64
	// PaperValue is the number reported in Examples 1–2 (rounded).
	PaperValue float64
}

// Fig1 reproduces the running example: exact regrets of allocations A and
// B at λ = 0 (Example 1) and λ = 0.1 (Example 2), plus what Greedy
// (Algorithm 1, exact oracle) finds on the same instance.
func Fig1(cfg Config) ([]Fig1Row, error) {
	var rows []Fig1Row
	for _, lam := range []float64{0, 0.1} {
		inst := gen.Fig1Instance(lam)
		for _, tc := range []struct {
			name  string
			alloc *core.Allocation
			paper float64
		}{
			{"A (myopic)", gen.Fig1AllocationA(), map[float64]float64{0: 6.6, 0.1: 7.2}[lam]},
			{"B (virality-aware)", gen.Fig1AllocationB(), map[float64]float64{0: 2.7, 0.1: 3.3}[lam]},
		} {
			out := EvaluateAlloc(inst, tc.alloc, cfg.withDefaults())
			rows = append(rows, Fig1Row{
				Allocation:  tc.name,
				Lambda:      lam,
				TotalRegret: out.TotalRegret,
				PaperValue:  tc.paper,
			})
		}
		res, err := core.Greedy(inst, core.NewExactFactory(inst), core.GreedyOptions{})
		if err != nil {
			return nil, err
		}
		out := EvaluateAlloc(inst, res.Alloc, cfg.withDefaults())
		rows = append(rows, Fig1Row{
			Allocation:  "Greedy (Algorithm 1)",
			Lambda:      lam,
			TotalRegret: out.TotalRegret,
			PaperValue:  math.NaN(),
		})
	}
	return rows, nil
}
