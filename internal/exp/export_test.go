package exp

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseFormat(t *testing.T) {
	for _, s := range []string{"", "table", "json", "csv"} {
		if _, err := ParseFormat(s); err != nil {
			t.Errorf("ParseFormat(%q): %v", s, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestWriteJSON(t *testing.T) {
	rows := []QualityRow{{Dataset: Flixster, Algo: AlgoTIRM, Kappa: 2, TotalRegret: 12.5}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "fig3", rows); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment string       `json:"experiment"`
		Rows       []QualityRow `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Experiment != "fig3" || len(doc.Rows) != 1 || doc.Rows[0].TotalRegret != 12.5 {
		t.Errorf("round trip lost data: %+v", doc)
	}
}

func TestWriteQualityCSV(t *testing.T) {
	rows := []QualityRow{
		{Dataset: Flixster, Algo: AlgoTIRM, Kappa: 1, Lambda: 0.5, TotalRegret: 10, RegretOverBudget: 0.25, Seeds: 42, DistinctTargeted: 40, Wall: 1.5},
		{Dataset: Epinions, Algo: AlgoMyopic, Kappa: 5, TotalRegret: 99},
	}
	var buf bytes.Buffer
	if err := WriteQualityCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0][0] != "dataset" || recs[1][1] != "TIRM" || recs[2][0] != "EPINIONS" {
		t.Errorf("csv content wrong: %v", recs)
	}
}

func TestWriteScaleCSV(t *testing.T) {
	rows := []ScaleRow{{Dataset: DBLP, Algo: AlgoTIRM, H: 5, Budget: 250, WallSeconds: 1.5, MemBytes: 1 << 20, Seeds: 100, SetsSampled: 5000}}
	var buf bytes.Buffer
	if err := WriteScaleCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "DBLP") || !strings.Contains(out, "1048576") {
		t.Errorf("csv content wrong:\n%s", out)
	}
}

func TestWriteFig5CSV(t *testing.T) {
	rows := []Fig5Row{{Dataset: Flixster, Algo: AlgoGreedyIRIE, Ad: "ad03", Budget: 10, Revenue: 12, Overshoot: 2, Seeds: 7}}
	var buf bytes.Buffer
	if err := WriteFig5CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ad03") {
		t.Errorf("csv content wrong:\n%s", buf.String())
	}
}
