package exp

import (
	"repro/internal/gen"
	"repro/internal/graph"
)

// Table1Row is one dataset's statistics (Table 1).
type Table1Row struct {
	Dataset Dataset
	Nodes   int
	Edges   int64
	Type    string // "directed" / "undirected (both directions)"
	Stats   graph.Stats
	// GiantFrac is the fraction of nodes in the largest weakly connected
	// component — a sanity statistic for the synthetic analogues (a
	// shattered graph would trivialize the influence experiments).
	GiantFrac float64
}

// Table1 regenerates Table 1 at the configured scale. LiveJournal is
// generated at a quarter of the configured scale so the row stays cheap
// (documented scale note, DESIGN.md §4).
func Table1(cfg Config) ([]Table1Row, error) {
	cfg = cfg.withDefaults()
	kinds := []struct {
		ds    Dataset
		typ   string
		scale float64
	}{
		{Flixster, "directed", cfg.Scale},
		{Epinions, "directed", cfg.Scale},
		{DBLP, "undirected (both directions)", cfg.Scale},
		{LiveJournal, "directed", cfg.Scale / 4},
	}
	var rows []Table1Row
	for _, k := range kinds {
		inst, err := Generate(k.ds, cfg, gen.Options{Scale: k.scale})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Dataset:   k.ds,
			Nodes:     inst.G.N(),
			Edges:     inst.G.M(),
			Type:      k.typ,
			Stats:     inst.G.Stats(),
			GiantFrac: graph.GiantComponentFrac(inst.G),
		})
	}
	return rows, nil
}

// ScaleRow is one point of the Fig. 6 / Table 4 scalability experiments.
type ScaleRow struct {
	Dataset Dataset
	Algo    Algo
	// H is the number of advertisers; Budget the per-ad budget (pre-scale).
	H      int
	Budget float64
	// WallSeconds is the allocation running time (Fig. 6).
	WallSeconds float64
	// MemBytes is the dominant-structure footprint (Table 4).
	MemBytes int64
	Seeds    int
	// SetsSampled is TIRM's θ total.
	SetsSampled int64
}

// scaleFor shrinks LiveJournal relative to the other datasets: at Scale s
// the DBLP analogue keeps s but the LJ analogue runs at s/4 (4.8M nodes is
// 15× DBLP's 317K; the quarter scale keeps the "largest configuration"
// spirit without paper-scale memory).
func scaleFor(ds Dataset, cfg Config) float64 {
	if ds == LiveJournal {
		return cfg.Scale / 4
	}
	return cfg.Scale
}

// Fig6VaryH regenerates Fig. 6(a)/(c): running time vs number of
// advertisers h, per-ad budget fixed at the dataset default (5K for DBLP,
// 80K for LiveJournal, scaled). The paper runs TIRM and GREEDY-IRIE on
// DBLP and TIRM only on LiveJournal (GREEDY-IRIE did not finish there for
// h ≥ 5); pass the algos you can afford.
func Fig6VaryH(ds Dataset, cfg Config, hs []int, algos []Algo) ([]ScaleRow, error) {
	cfg = cfg.withDefaults()
	if len(hs) == 0 {
		hs = []int{1, 5, 10, 15, 20}
	}
	if len(algos) == 0 {
		algos = []Algo{AlgoTIRM, AlgoGreedyIRIE}
	}
	var rows []ScaleRow
	for _, h := range hs {
		inst, err := Generate(ds, cfg, gen.Options{
			Scale:  scaleFor(ds, cfg),
			NumAds: h,
			Kappa:  1,
		})
		if err != nil {
			return nil, err
		}
		// §6.2: α = 0.7 for IRIE, ε = 0.2 for TIRM.
		runCfg := cfg
		runCfg.IRIE.Alpha = 0.7
		for _, algo := range algos {
			alloc, stats, err := RunAlgo(inst, algo, runCfg)
			if err != nil {
				return nil, err
			}
			if err := alloc.Validate(inst); err != nil {
				return nil, err
			}
			rows = append(rows, ScaleRow{
				Dataset:     ds,
				Algo:        algo,
				H:           h,
				Budget:      inst.Ads[0].Budget,
				WallSeconds: stats.Wall.Seconds(),
				MemBytes:    stats.MemBytes,
				Seeds:       stats.Seeds,
				SetsSampled: stats.SetsSampled,
			})
			cfg.log("%s %s h=%d: %.2fs %d seeds %.1f MB\n",
				ds, algo, h, stats.Wall.Seconds(), stats.Seeds, float64(stats.MemBytes)/1e6)
		}
	}
	return rows, nil
}

// Fig6VaryBudget regenerates Fig. 6(b)/(d): running time vs per-ad budget
// with h = 5 advertisers. budgets are pre-scale values (the DBLP panel
// sweeps up to 30K, the LiveJournal panel up to 250K).
func Fig6VaryBudget(ds Dataset, cfg Config, budgets []float64, algos []Algo) ([]ScaleRow, error) {
	cfg = cfg.withDefaults()
	if len(budgets) == 0 {
		if ds == LiveJournal {
			budgets = []float64{50000, 100000, 150000, 200000, 250000}
		} else {
			budgets = []float64{5000, 10000, 15000, 20000, 25000, 30000}
		}
	}
	if len(algos) == 0 {
		algos = []Algo{AlgoTIRM, AlgoGreedyIRIE}
	}
	var rows []ScaleRow
	for _, b := range budgets {
		inst, err := Generate(ds, cfg, gen.Options{
			Scale:          scaleFor(ds, cfg),
			NumAds:         5,
			BudgetOverride: b,
			Kappa:          1,
		})
		if err != nil {
			return nil, err
		}
		runCfg := cfg
		runCfg.IRIE.Alpha = 0.7
		for _, algo := range algos {
			alloc, stats, err := RunAlgo(inst, algo, runCfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, ScaleRow{
				Dataset:     ds,
				Algo:        algo,
				H:           5,
				Budget:      b,
				WallSeconds: stats.Wall.Seconds(),
				MemBytes:    stats.MemBytes,
				Seeds:       alloc.NumSeeds(),
				SetsSampled: stats.SetsSampled,
			})
			cfg.log("%s %s B=%.0f: %.2fs %d seeds\n", ds, algo, b, stats.Wall.Seconds(), alloc.NumSeeds())
		}
	}
	return rows, nil
}

// Table4 regenerates Table 4 (memory usage vs h): it reuses the Fig6VaryH
// machinery and reports the MemBytes column.
func Table4(ds Dataset, cfg Config, hs []int, algos []Algo) ([]ScaleRow, error) {
	return Fig6VaryH(ds, cfg, hs, algos)
}
