package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// fastCfg keeps harness tests quick: tiny datasets, small MC budgets.
func fastCfg() Config {
	return Config{
		Seed:     1,
		Scale:    0.02,
		EvalRuns: 300,
		TIRM:     core.TIRMOptions{Eps: 0.3, MinTheta: 4000, MaxTheta: 30000},
	}
}

func TestGenerateAllDatasets(t *testing.T) {
	cfg := fastCfg()
	for _, ds := range []Dataset{Flixster, Epinions, DBLP, LiveJournal} {
		inst, err := Generate(ds, cfg, gen.Options{Scale: 0.01})
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		if err := inst.Validate(); err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
	}
	if _, err := Generate(Dataset("nope"), cfg, gen.Options{}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunAlgoAllAlgorithms(t *testing.T) {
	cfg := fastCfg()
	inst, err := Generate(Flixster, cfg, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range AllAlgos {
		alloc, stats, err := RunAlgo(inst, algo, cfg)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := alloc.Validate(inst); err != nil {
			t.Fatalf("%s invalid: %v", algo, err)
		}
		if stats.Wall <= 0 {
			t.Errorf("%s: no wall time", algo)
		}
		if algo == AlgoTIRM && stats.SetsSampled == 0 {
			t.Error("TIRM reported no RR-sets")
		}
	}
	if _, _, err := RunAlgo(inst, Algo("nope"), cfg); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// TestQualityShape is the headline reproduction check: on a small
// FLIXSTER analogue, the MC-evaluated regret ordering of the paper's
// Fig. 3 must hold — TIRM and GREEDY-IRIE beat MYOPIC and MYOPIC+, and
// TIRM is the overall winner.
func TestQualityShape(t *testing.T) {
	cfg := fastCfg()
	cfg.EvalRuns = 500
	rows, err := QualitySweep(Flixster, cfg, []int{1}, []float64{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	regret := map[Algo]float64{}
	for _, r := range rows {
		regret[r.Algo] = r.TotalRegret
	}
	if regret[AlgoTIRM] >= regret[AlgoMyopic] || regret[AlgoTIRM] >= regret[AlgoMyopicPlus] {
		t.Errorf("TIRM (%.1f) does not beat MYOPIC (%.1f) / MYOPIC+ (%.1f)",
			regret[AlgoTIRM], regret[AlgoMyopic], regret[AlgoMyopicPlus])
	}
	if regret[AlgoGreedyIRIE] >= regret[AlgoMyopic] {
		t.Errorf("GREEDY-IRIE (%.1f) does not beat MYOPIC (%.1f)",
			regret[AlgoGreedyIRIE], regret[AlgoMyopic])
	}
}

func TestFig1Experiment(t *testing.T) {
	cfg := fastCfg()
	cfg.EvalRuns = 100000
	rows, err := Fig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.PaperValue) {
			continue // greedy row has no paper value
		}
		if math.Abs(r.TotalRegret-r.PaperValue) > 0.15 {
			t.Errorf("%s λ=%.1f: regret %.3f vs paper %.1f", r.Allocation, r.Lambda, r.TotalRegret, r.PaperValue)
		}
	}
}

func TestTable1(t *testing.T) {
	cfg := fastCfg()
	rows, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Nodes <= 0 || r.Edges <= 0 {
			t.Errorf("%s: empty graph", r.Dataset)
		}
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "FLIXSTER") {
		t.Error("PrintTable1 missing dataset name")
	}
}

func TestTable2(t *testing.T) {
	cfg := fastCfg()
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.BudgetMin > r.BudgetMean || r.BudgetMean > r.BudgetMax {
			t.Errorf("%s: budget stats disordered: %+v", r.Dataset, r)
		}
		if r.CPEMin > r.CPEMean || r.CPEMean > r.CPEMax {
			t.Errorf("%s: CPE stats disordered: %+v", r.Dataset, r)
		}
	}
	var buf bytes.Buffer
	PrintTable2(&buf, rows)
	if !strings.Contains(buf.String(), "cpe") {
		t.Error("PrintTable2 missing header")
	}
}

func TestFig5Rows(t *testing.T) {
	cfg := fastCfg()
	rows, err := Fig5(Flixster, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 10 ads × 2 algorithms.
	if len(rows) != 2*gen.QualityAds {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.Overshoot-(r.Revenue-r.Budget)) > 1e-9 {
			t.Error("overshoot identity broken")
		}
	}
	var buf bytes.Buffer
	PrintFig5(&buf, rows)
	if !strings.Contains(buf.String(), "TIRM") {
		t.Error("PrintFig5 missing algorithm")
	}
}

func TestFig6AndTable4(t *testing.T) {
	cfg := fastCfg()
	rows, err := Fig6VaryH(DBLP, cfg, []int{1, 2}, []Algo{AlgoTIRM})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].H != 1 || rows[1].H != 2 {
		t.Error("h column wrong")
	}
	// Table 4 trend: TIRM memory grows with h.
	if rows[1].MemBytes <= rows[0].MemBytes {
		t.Errorf("memory did not grow with h: %d vs %d", rows[0].MemBytes, rows[1].MemBytes)
	}
	bud, err := Fig6VaryBudget(DBLP, cfg, []float64{2000, 5000}, []Algo{AlgoTIRM})
	if err != nil {
		t.Fatal(err)
	}
	if len(bud) != 2 || bud[0].Budget != 2000 {
		t.Fatalf("budget rows wrong: %+v", bud)
	}
	var buf bytes.Buffer
	PrintScale(&buf, "t", rows)
	if !strings.Contains(buf.String(), "TIRM") {
		t.Error("PrintScale missing algorithm")
	}
}

func TestBoostAblation(t *testing.T) {
	cfg := fastCfg()
	rows, err := Boost(Flixster, cfg, []float64{-0.2, 0, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Boosting budgets upward must not reduce revenue.
	if rows[2].TotalRevenue < rows[0].TotalRevenue-1e-9 {
		t.Errorf("β=+0.2 revenue %.2f below β=−0.2 revenue %.2f",
			rows[2].TotalRevenue, rows[0].TotalRevenue)
	}
	// Undershoot mass shrinks (or stays) as β grows.
	if rows[2].Undershoot > rows[0].Undershoot+1e-9 {
		t.Errorf("undershoot grew with β: %.2f -> %.2f", rows[0].Undershoot, rows[2].Undershoot)
	}
	var buf bytes.Buffer
	PrintBoost(&buf, rows)
	if !strings.Contains(buf.String(), "beta") {
		t.Error("PrintBoost missing header")
	}
}

func TestPrintQuality(t *testing.T) {
	rows := []QualityRow{
		{Dataset: Flixster, Algo: AlgoTIRM, Kappa: 1, Lambda: 0, TotalRegret: 10, RegretOverBudget: 0.1, DistinctTargeted: 5},
		{Dataset: Flixster, Algo: AlgoMyopic, Kappa: 1, Lambda: 0, TotalRegret: 50, RegretOverBudget: 0.5, DistinctTargeted: 9},
		{Dataset: Flixster, Algo: AlgoTIRM, Kappa: 2, Lambda: 0, TotalRegret: 8, RegretOverBudget: 0.08, DistinctTargeted: 4},
	}
	var buf bytes.Buffer
	PrintQuality(&buf, "test", rows, RegretColumn)
	s := buf.String()
	if !strings.Contains(s, "TIRM") || !strings.Contains(s, "MYOPIC") {
		t.Errorf("missing columns:\n%s", s)
	}
	buf.Reset()
	PrintQuality(&buf, "test", rows, TargetedColumn)
	if !strings.Contains(buf.String(), "5") {
		t.Error("targeted column missing")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 0.05 || c.EvalRuns != 2000 {
		t.Errorf("defaults %+v", c)
	}
	if c.TIRM.Eps != 0.2 || c.IRIE.Alpha != 0.8 {
		t.Errorf("algo defaults %+v %+v", c.TIRM, c.IRIE)
	}
}

func TestSoftAblation(t *testing.T) {
	cfg := fastCfg()
	rows, err := SoftAblation(Flixster, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Soft || !rows[1].Soft {
		t.Fatalf("rows wrong: %+v", rows)
	}
	// The soft estimator must be better calibrated than the hard one.
	if rows[1].CalibrationErr > rows[0].CalibrationErr+1e-9 {
		t.Errorf("soft calibration error %.2f not below hard %.2f",
			rows[1].CalibrationErr, rows[0].CalibrationErr)
	}
	var buf bytes.Buffer
	PrintSoft(&buf, rows)
	if !strings.Contains(buf.String(), "TIRM-W") {
		t.Error("PrintSoft missing mode label")
	}
}

// TestGreedyMCBeatsBaselines runs the conceptual reference (Algorithm 1
// with MC oracle) on a tiny instance and checks it lands in the winning
// tier with TIRM, ahead of the myopic baselines.
func TestGreedyMCBeatsBaselines(t *testing.T) {
	cfg := fastCfg()
	cfg.Scale = 0.01
	cfg.GreedyMCRuns = 300
	cfg.EvalRuns = 500
	inst, err := Generate(Flixster, cfg, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	regret := map[Algo]float64{}
	for _, algo := range []Algo{AlgoGreedyMC, AlgoMyopic, AlgoMyopicPlus} {
		alloc, _, err := RunAlgo(inst, algo, cfg)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := alloc.Validate(inst); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		regret[algo] = EvaluateAlloc(inst, alloc, cfg).TotalRegret
	}
	if regret[AlgoGreedyMC] >= regret[AlgoMyopic] {
		t.Errorf("GREEDY-MC (%.1f) does not beat MYOPIC (%.1f)", regret[AlgoGreedyMC], regret[AlgoMyopic])
	}
	if regret[AlgoGreedyMC] >= regret[AlgoMyopicPlus] {
		t.Errorf("GREEDY-MC (%.1f) does not beat MYOPIC+ (%.1f)", regret[AlgoGreedyMC], regret[AlgoMyopicPlus])
	}
}
