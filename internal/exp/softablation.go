package exp

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/xrand"
)

// SoftRow is one point of the ABL-SOFT ablation: the paper's Algorithm 2
// (hard first-seed set removal) against the TIRM-W extension (per-set CTP
// weights, rrset.WeightedCollection) on the same instance.
type SoftRow struct {
	Dataset Dataset
	Soft    bool
	// EstRevenue is the algorithm's internal Σ Π̂_i; MCRevenue the neutral
	// evaluation. CalibrationErr = |MCRevenue − EstRevenue| shows the
	// first-seed-credit bias that motivates the extension.
	EstRevenue, MCRevenue, CalibrationErr float64
	TotalRegret                           float64
	RegretOverBudget                      float64
	Seeds                                 int
	WallSeconds                           float64
}

// SoftAblation runs TIRM in both coverage modes on one quality dataset
// (λ = 0, κ = 1) and scores both against the same MC evaluation.
func SoftAblation(ds Dataset, cfg Config) ([]SoftRow, error) {
	cfg = cfg.withDefaults()
	inst, err := Generate(ds, cfg, gen.Options{Kappa: 1, Lambda: 0})
	if err != nil {
		return nil, err
	}
	var rows []SoftRow
	for _, soft := range []bool{false, true} {
		opts := cfg.TIRM
		opts.SoftCoverage = soft
		res, err := core.TIRM(inst, xrand.New(cfg.Seed+77), opts)
		if err != nil {
			return nil, err
		}
		out := EvaluateAlloc(inst, res.Alloc, cfg)
		row := SoftRow{
			Dataset:          ds,
			Soft:             soft,
			TotalRegret:      out.TotalRegret,
			RegretOverBudget: out.RegretOverBudget,
			Seeds:            out.TotalSeeds,
		}
		for i := range inst.Ads {
			row.EstRevenue += res.EstRevenue[i]
			row.MCRevenue += out.Ads[i].Revenue
		}
		row.CalibrationErr = math.Abs(row.MCRevenue - row.EstRevenue)
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintSoft renders the ablation.
func PrintSoft(w io.Writer, rows []SoftRow) {
	fmt.Fprintln(w, "== ABL-SOFT: hard (paper Alg. 2) vs soft CTP-weighted coverage (TIRM-W) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tmode\test revenue\tMC revenue\t|calibration err|\tregret\t% budget\tseeds")
	for _, r := range rows {
		mode := "hard (paper)"
		if r.Soft {
			mode = "soft (TIRM-W)"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f%%\t%d\n",
			r.Dataset, mode, r.EstRevenue, r.MCRevenue, r.CalibrationErr,
			r.TotalRegret, 100*r.RegretOverBudget, r.Seeds)
	}
	tw.Flush()
}
