// Package exp is the experiment harness: one runner per table and figure of
// the paper's evaluation section (§6), each producing the same rows/series
// the paper reports. cmd/exprun prints them; bench_test.go times them.
//
// Experiment index (see DESIGN.md §5 and EXPERIMENTS.md):
//
//	TABLE1  dataset statistics
//	TABLE2  advertiser budgets and CPE values
//	FIG1    the running toy example (allocations A and B)
//	FIG3    total regret vs attention bound κ (λ ∈ {0, 0.5})
//	FIG4    total regret vs λ (κ ∈ {1, 5})
//	FIG5    distribution of individual budget-regrets (λ=0, κ=5)
//	TABLE3  number of distinct targeted nodes vs κ (λ=0)
//	FIG6    running time vs h and vs per-ad budget (scalability datasets)
//	TABLE4  memory usage vs h
//	BOOST   budget-boosting ablation (§3 Discussion, B' = (1+β)·B)
package exp

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/irie"
	"repro/internal/xrand"
)

// Algo names an allocation algorithm (§6 "Algorithms").
type Algo string

// The four algorithms the paper compares, plus the conceptual reference
// GREEDY-MC (Algorithm 1 with Monte Carlo spread estimation — the paper
// dismisses it as "prohibitively expensive and not scalable" in §5, so it
// is only usable on small instances).
const (
	AlgoTIRM       Algo = "TIRM"
	AlgoGreedyIRIE Algo = "GREEDY-IRIE"
	AlgoMyopic     Algo = "MYOPIC"
	AlgoMyopicPlus Algo = "MYOPIC+"
	AlgoGreedyMC   Algo = "GREEDY-MC"
)

// AllAlgos lists the paper's four algorithms in reporting order.
var AllAlgos = []Algo{AlgoMyopic, AlgoMyopicPlus, AlgoGreedyIRIE, AlgoTIRM}

// Dataset names the four evaluation datasets.
type Dataset string

// The datasets of Table 1 (our synthetic analogues).
const (
	Flixster    Dataset = "FLIXSTER"
	Epinions    Dataset = "EPINIONS"
	DBLP        Dataset = "DBLP"
	LiveJournal Dataset = "LIVEJOURNAL"
)

// QualityDatasets are used for §6.1, ScalabilityDatasets for §6.2.
var (
	QualityDatasets     = []Dataset{Flixster, Epinions}
	ScalabilityDatasets = []Dataset{DBLP, LiveJournal}
)

// Config holds harness-wide knobs. The zero value is usable: it selects the
// scaled-down defaults that run on a laptop-class machine.
type Config struct {
	// Seed drives dataset generation and every algorithm's randomness.
	Seed uint64
	// Scale multiplies paper-scale dataset sizes (default 0.05 for quality
	// runs; Fig6/Table4 further scale LiveJournal down, see ScaleFor).
	Scale float64
	// EvalRuns is the MC evaluation budget (paper: 10000; default 2000).
	EvalRuns int
	// TIRM options; zero values pick ε=0.2, MinTheta 10K, MaxTheta 300K —
	// the scaled-run equivalents of the paper's settings.
	TIRM core.TIRMOptions
	// IRIE options; zero values pick α=0.8 (the paper's best quality
	// setting; Fig6 runs use 0.7 per §6.2).
	IRIE irie.Options
	// GreedyMCRuns is the Monte Carlo budget per spread evaluation for
	// AlgoGreedyMC (default 1000). Only viable on small instances.
	GreedyMCRuns int
	// Verbose enables progress lines on stderr via Logf.
	Verbose bool
	Logf    func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.EvalRuns <= 0 {
		c.EvalRuns = 2000
	}
	if c.TIRM.Eps <= 0 {
		c.TIRM.Eps = 0.2
	}
	if c.TIRM.MinTheta <= 0 {
		c.TIRM.MinTheta = 10000
	}
	if c.TIRM.MaxTheta <= 0 {
		c.TIRM.MaxTheta = 300000
	}
	if c.IRIE.Alpha <= 0 {
		c.IRIE.Alpha = 0.8
	}
	if c.GreedyMCRuns <= 0 {
		c.GreedyMCRuns = 1000
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return c
}

func (c Config) log(format string, args ...interface{}) {
	if c.Verbose {
		c.Logf(format, args...)
	}
}

// Generate builds the named dataset analogue at the config's scale.
func Generate(ds Dataset, cfg Config, o gen.Options) (*core.Instance, error) {
	cfg = cfg.withDefaults()
	if o.Scale <= 0 {
		o.Scale = cfg.Scale
	}
	if o.Seed == 0 {
		o.Seed = cfg.Seed + 1
	}
	switch ds {
	case Flixster:
		return gen.Flixster(o), nil
	case Epinions:
		return gen.Epinions(o), nil
	case DBLP:
		return gen.DBLP(o), nil
	case LiveJournal:
		return gen.LiveJournal(o), nil
	}
	return nil, fmt.Errorf("exp: unknown dataset %q", ds)
}

// RunStats instruments one algorithm run.
type RunStats struct {
	Wall time.Duration
	// MemBytes is the algorithm's dominant-structure footprint (RR-set
	// indexes for TIRM; O(h·n) rank state for GREEDY-IRIE; ~0 for the
	// myopic baselines).
	MemBytes int64
	// SetsSampled is TIRM's total RR-set count (0 for others).
	SetsSampled int64
	Seeds       int
}

// RunAlgo executes one algorithm on an instance and returns its allocation
// with timing/memory instrumentation. Deterministic given cfg.Seed.
func RunAlgo(inst *core.Instance, algo Algo, cfg Config) (*core.Allocation, RunStats, error) {
	cfg = cfg.withDefaults()
	rng := xrand.New(cfg.Seed + 77)
	start := time.Now()
	var alloc *core.Allocation
	var stats RunStats
	switch algo {
	case AlgoTIRM:
		res, err := core.TIRM(inst, rng, cfg.TIRM)
		if err != nil {
			return nil, stats, err
		}
		alloc = res.Alloc
		stats.MemBytes = res.MemBytes
		stats.SetsSampled = res.TotalSetsSampled
	case AlgoGreedyIRIE:
		res, err := core.Greedy(inst, func(i int) core.AdEstimator {
			ad := inst.Ads[i]
			return irie.NewEstimator(inst.G, ad.Params.Probs, ad.Params.CTPs, ad.CPE, cfg.IRIE)
		}, core.GreedyOptions{})
		if err != nil {
			return nil, stats, err
		}
		alloc = res.Alloc
		// Rank, AP and scratch vectors per ad: 3 float64 slices of length n.
		stats.MemBytes = int64(len(inst.Ads)) * int64(inst.G.N()) * 24
	case AlgoGreedyMC:
		res, err := core.Greedy(inst, core.NewMCFactory(inst, cfg.GreedyMCRuns, rng), core.GreedyOptions{})
		if err != nil {
			return nil, stats, err
		}
		alloc = res.Alloc
	case AlgoMyopic:
		alloc = baselines.Myopic(inst)
	case AlgoMyopicPlus:
		alloc = baselines.MyopicPlus(inst)
	default:
		return nil, stats, fmt.Errorf("exp: unknown algorithm %q", algo)
	}
	stats.Wall = time.Since(start)
	stats.Seeds = alloc.NumSeeds()
	return alloc, stats, nil
}

// EvaluateAlloc scores an allocation with the config's MC budget.
func EvaluateAlloc(inst *core.Instance, alloc *core.Allocation, cfg Config) *eval.Outcome {
	cfg = cfg.withDefaults()
	return eval.Evaluate(inst, alloc, cfg.EvalRuns, xrand.New(cfg.Seed+999))
}
