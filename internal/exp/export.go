package exp

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Format selects exprun's output encoding.
type Format string

// Supported output encodings.
const (
	FormatTable Format = "table" // aligned human-readable tables
	FormatJSON  Format = "json"  // one JSON document per experiment
	FormatCSV   Format = "csv"   // one CSV table per experiment
)

// ParseFormat validates a -format flag value.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case "", FormatTable:
		return FormatTable, nil
	case FormatJSON:
		return FormatJSON, nil
	case FormatCSV:
		return FormatCSV, nil
	}
	return "", fmt.Errorf("exp: unknown format %q (table|json|csv)", s)
}

// WriteJSON emits any experiment's row slice as an indented JSON document
// wrapped with its experiment id, ready for plotting pipelines.
func WriteJSON(w io.Writer, expID string, rows interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]interface{}{
		"experiment": expID,
		"rows":       rows,
	})
}

// WriteQualityCSV emits Fig3/Fig4/Table3 rows as CSV.
func WriteQualityCSV(w io.Writer, rows []QualityRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "algo", "kappa", "lambda", "total_regret", "regret_over_budget", "seeds", "distinct_targeted", "wall_seconds"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			string(r.Dataset), string(r.Algo),
			strconv.Itoa(r.Kappa), fmtF(r.Lambda),
			fmtF(r.TotalRegret), fmtF(r.RegretOverBudget),
			strconv.Itoa(r.Seeds), strconv.Itoa(r.DistinctTargeted),
			fmtF(r.Wall),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteScaleCSV emits Fig6/Table4 rows as CSV.
func WriteScaleCSV(w io.Writer, rows []ScaleRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "algo", "h", "budget", "wall_seconds", "mem_bytes", "seeds", "rr_sets"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			string(r.Dataset), string(r.Algo),
			strconv.Itoa(r.H), fmtF(r.Budget),
			fmtF(r.WallSeconds), strconv.FormatInt(r.MemBytes, 10),
			strconv.Itoa(r.Seeds), strconv.FormatInt(r.SetsSampled, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig5CSV emits per-ad overshoot rows as CSV.
func WriteFig5CSV(w io.Writer, rows []Fig5Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "algo", "ad", "budget", "revenue", "overshoot", "seeds"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			string(r.Dataset), string(r.Algo), r.Ad,
			fmtF(r.Budget), fmtF(r.Revenue), fmtF(r.Overshoot),
			strconv.Itoa(r.Seeds),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
