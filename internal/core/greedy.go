package core

import "fmt"

// GreedyOptions configures Algorithm 1.
type GreedyOptions struct {
	// MaxSeedsPerAd caps |S_i| as a safety valve (0 = number of nodes).
	MaxSeedsPerAd int
}

// GreedyResult reports what Greedy computed. Revenues are the estimator's
// view; neutral evaluation of the final allocation belongs to package eval.
type GreedyResult struct {
	Alloc      *Allocation
	EstRevenue []float64
	Iterations int
	// Evals counts marginal-revenue evaluations across all ads — the
	// quantity CELF laziness saves (ablation metric).
	Evals int
}

// Greedy implements Algorithm 1: starting from empty seed sets, repeatedly
// find the (user, ad) pair whose assignment yields the largest strict
// decrease in total regret, subject to attention bounds, until no pair
// improves. The revenue oracle is pluggable (Monte Carlo, exact, IRIE);
// CELF-style lazy evaluation keeps the number of oracle calls near-minimal
// while still returning the exact argmax pair each iteration.
func Greedy(inst *Instance, makeEst func(i int) AdEstimator, opts GreedyOptions) (*GreedyResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	n := inst.G.N()
	h := len(inst.Ads)
	maxSeeds := opts.MaxSeedsPerAd
	if maxSeeds <= 0 {
		maxSeeds = n
	}

	ests := make([]AdEstimator, h)
	queues := make([]*celfQueue, h)
	for i := 0; i < h; i++ {
		ests[i] = makeEst(i)
		if ests[i] == nil {
			return nil, fmt.Errorf("core: estimator factory returned nil for ad %d", i)
		}
		queues[i] = newCELFQueue(n)
	}
	attention := NewAttention(n, inst.Kappa)
	eligible := func(u int32) bool { return attention.CanTake(u) }

	res := &GreedyResult{Alloc: NewAllocation(h), EstRevenue: make([]float64, h)}
	saturated := make([]bool, h)
	for {
		bestAd := -1
		var bestU int32
		bestDrop := 0.0
		for i := 0; i < h; i++ {
			if saturated[i] {
				continue
			}
			gap := inst.Ads[i].Budget - ests[i].Revenue()
			if gap <= 0 {
				// Budget met or overshot: every further seed strictly
				// increases |B−Π| (and pays λ), so the ad is done.
				saturated[i] = true
				continue
			}
			u, _, d, ok := queues[i].bestDrop(ests[i], gap, inst.Lambda, eligible)
			if !ok || d <= 0 {
				saturated[i] = true
				continue
			}
			if bestAd < 0 || d > bestDrop {
				bestAd, bestU, bestDrop = i, u, d
			}
		}
		if bestAd < 0 {
			break
		}
		ests[bestAd].Commit(bestU)
		queues[bestAd].remove(bestU)
		queues[bestAd].noteCommit()
		attention.Take(bestU)
		res.Alloc.Seeds[bestAd] = append(res.Alloc.Seeds[bestAd], bestU)
		res.Iterations++
		if len(res.Alloc.Seeds[bestAd]) >= maxSeeds {
			saturated[bestAd] = true
		}
	}
	for i := 0; i < h; i++ {
		res.EstRevenue[i] = ests[i].Revenue()
		res.Evals += queues[i].evals
		queues[i].release()
	}
	return res, nil
}

// EstRegret computes the total regret of a result according to the
// estimator's own revenue estimates (Eq. 4). Neutral MC evaluation lives in
// package eval; this is the algorithm-internal view used in logs and tests.
func (r *GreedyResult) EstRegret(inst *Instance) float64 {
	var total float64
	for i, ad := range inst.Ads {
		total += RegretTerm(ad.Budget, r.EstRevenue[i], inst.Lambda, len(r.Alloc.Seeds[i]))
	}
	return total
}
