package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllocationRoundTrip(t *testing.T) {
	inst := fig1Instance(t, 0)
	alloc := &Allocation{Seeds: [][]int32{{0, 1}, {2}, {3, 4}, nil}}
	meta := AllocationFile{Dataset: "fig1", Seed: 7, Scale: 1, Kappa: 1, Algo: "test"}
	var buf bytes.Buffer
	if err := WriteAllocation(&buf, inst, alloc, meta); err != nil {
		t.Fatal(err)
	}
	got, file, err := ReadAllocation(&buf, inst)
	if err != nil {
		t.Fatal(err)
	}
	if file.Dataset != "fig1" || file.Seed != 7 || file.Algo != "test" {
		t.Errorf("metadata lost: %+v", file)
	}
	for i := range alloc.Seeds {
		if len(got.Seeds[i]) != len(alloc.Seeds[i]) {
			t.Fatalf("ad %d: %v vs %v", i, got.Seeds[i], alloc.Seeds[i])
		}
		for j := range alloc.Seeds[i] {
			if got.Seeds[i][j] != alloc.Seeds[i][j] {
				t.Fatalf("ad %d seed %d differs", i, j)
			}
		}
	}
}

func TestReadAllocationRejectsInvalid(t *testing.T) {
	inst := fig1Instance(t, 0)

	// Attention violation (node 0 in two ads with κ=1).
	bad := &Allocation{Seeds: [][]int32{{0}, {0}, nil, nil}}
	var buf bytes.Buffer
	if err := WriteAllocation(&buf, inst, bad, AllocationFile{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadAllocation(&buf, inst); err == nil {
		t.Error("attention-violating file accepted")
	}

	// Wrong ad count.
	if _, _, err := ReadAllocation(strings.NewReader(`{"format":1,"ads":[{"name":"a","seeds":[]}]}`), inst); err == nil {
		t.Error("short ad list accepted")
	}

	// Wrong format version.
	if _, _, err := ReadAllocation(strings.NewReader(`{"format":99,"ads":[]}`), inst); err == nil {
		t.Error("future format accepted")
	}

	// Garbage JSON.
	if _, _, err := ReadAllocation(strings.NewReader(`{nope`), inst); err == nil {
		t.Error("garbage accepted")
	}

	// Mismatched ad name.
	wrong := `{"format":1,"ads":[{"name":"x","seeds":[]},{"name":"b","seeds":[]},{"name":"c","seeds":[]},{"name":"d","seeds":[]}]}`
	if _, _, err := ReadAllocation(strings.NewReader(wrong), inst); err == nil {
		t.Error("mismatched ad name accepted")
	}
}

func TestWriteAllocationRejectsSizeMismatch(t *testing.T) {
	inst := fig1Instance(t, 0)
	var buf bytes.Buffer
	if err := WriteAllocation(&buf, inst, NewAllocation(2), AllocationFile{}); err == nil {
		t.Error("ad-count mismatch accepted")
	}
}
