package core

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestTIRMSoftCoverageOnFig1(t *testing.T) {
	inst := fig1Instance(t, 0)
	res, err := TIRM(inst, xrand.New(1), TIRMOptions{
		Eps: 0.1, MinTheta: 60000, MaxTheta: 200000, SoftCoverage: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Alloc.Validate(inst); err != nil {
		t.Fatalf("invalid allocation: %v", err)
	}
	regret := exactTotalRegret(inst, res.Alloc)
	if regret > 3.2 {
		t.Errorf("TIRM-soft regret %.4f on Fig1", regret)
	}
}

// TestTIRMSoftCalibration is the extension's core claim: the soft-coverage
// revenue estimate is unbiased, so it must track the exact revenue of the
// chosen seeds much more tightly than the hard (first-seed-credit)
// estimate when seeds overlap. The Fig1 hub structure with high CTPs makes
// the overlap visible even on six nodes.
func TestTIRMSoftCalibration(t *testing.T) {
	inst := fig1Instance(t, 0)
	// Let every ad chase a big budget so seed sets overlap heavily.
	ads := append([]Ad{}, inst.Ads...)
	for i := range ads {
		ads[i].Budget = 5
	}
	inst.Ads = ads
	inst.Kappa = ConstKappa(4)

	var errs [2]float64
	for i, soft := range []bool{false, true} {
		res, err := TIRM(inst, xrand.New(9), TIRMOptions{
			Eps: 0.1, MinTheta: 80000, MaxTheta: 200000, SoftCoverage: soft,
		})
		if err != nil {
			t.Fatal(err)
		}
		var totalErr float64
		for j := range inst.Ads {
			exact := exactRevenue(inst, j, res.Alloc.Seeds[j])
			totalErr += math.Abs(exact - res.EstRevenue[j])
		}
		errs[i] = totalErr
	}
	if errs[1] > errs[0]+1e-9 {
		t.Errorf("soft-coverage estimate error %.4f not below hard %.4f", errs[1], errs[0])
	}
	t.Logf("revenue estimate |error|: hard=%.4f soft=%.4f", errs[0], errs[1])
}

func TestTIRMSoftDeterministic(t *testing.T) {
	inst := fig1Instance(t, 0)
	a, err := TIRM(inst, xrand.New(3), TIRMOptions{MinTheta: 5000, SoftCoverage: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TIRM(inst, xrand.New(3), TIRMOptions{MinTheta: 5000, SoftCoverage: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Alloc.Seeds {
		if len(a.Alloc.Seeds[i]) != len(b.Alloc.Seeds[i]) {
			t.Fatal("non-deterministic")
		}
		for j := range a.Alloc.Seeds[i] {
			if a.Alloc.Seeds[i][j] != b.Alloc.Seeds[i][j] {
				t.Fatal("non-deterministic seeds")
			}
		}
	}
}

func TestTIRMSoftValidOnRandomInstances(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		inst := randomInstance(seed+200, 40, 160, 3, 2, 0.01)
		res, err := TIRM(inst, xrand.New(seed), TIRMOptions{
			MinTheta: 8000, MaxTheta: 40000, SoftCoverage: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Alloc.Validate(inst); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestTIRMSoftNoFewerBudgetsMet checks the allocation-quality direction on
// a denser random instance: soft coverage should not leave more aggregate
// budget-regret than hard coverage (it keeps allocating where hard mode's
// underestimate stops crediting, and stops where hard mode overshoots).
func TestTIRMSoftUsesNoMoreSeeds(t *testing.T) {
	inst := randomInstance(321, 60, 300, 2, 2, 0)
	hard, err := TIRM(inst, xrand.New(5), TIRMOptions{MinTheta: 20000, MaxTheta: 60000})
	if err != nil {
		t.Fatal(err)
	}
	soft, err := TIRM(inst, xrand.New(5), TIRMOptions{MinTheta: 20000, MaxTheta: 60000, SoftCoverage: true})
	if err != nil {
		t.Fatal(err)
	}
	// The unbiased estimator credits overlap, so it reaches the same
	// internal budget with no more seeds.
	if soft.Alloc.NumSeeds() > hard.Alloc.NumSeeds() {
		t.Errorf("soft used %d seeds, hard %d", soft.Alloc.NumSeeds(), hard.Alloc.NumSeeds())
	}
}
