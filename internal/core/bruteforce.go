package core

import (
	"fmt"
	"math"

	"repro/internal/diffusion"
)

// BruteForceOptions bounds the exhaustive search.
type BruteForceOptions struct {
	// MaxStates caps the number of enumerated allocations (default 2^20).
	MaxStates int64
}

// BruteForce enumerates every valid allocation of a tiny instance and
// returns one minimizing the exact total regret (possible-world revenue
// evaluation, so the graph must have ≤ diffusion.MaxExactEdges edges and at
// most 30 nodes). It is the ground-truth oracle used to measure the
// optimality gap of Greedy and TIRM on toy instances and to check the
// premises of Theorems 3–4.
//
// The search assigns each user independently to one of the ≤ C(h, ≤κ_u)
// admissible ad subsets, so the state space is Π_u Σ_{j≤κ_u} C(h,j);
// exact ad revenues are memoized by (ad, seed-set bitmask).
func BruteForce(inst *Instance, opts BruteForceOptions) (*Allocation, float64, error) {
	if err := inst.Validate(); err != nil {
		return nil, 0, err
	}
	n := inst.G.N()
	h := len(inst.Ads)
	if n > 30 {
		return nil, 0, fmt.Errorf("core: BruteForce supports ≤30 nodes, got %d", n)
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = 1 << 20
	}

	// Admissible ad subsets per user: all subsets of size ≤ κ_u.
	subsetsFor := func(kappa int) []uint32 {
		var out []uint32
		for mask := uint32(0); mask < 1<<h; mask++ {
			if popcount32(mask) <= kappa {
				out = append(out, mask)
			}
		}
		return out
	}
	userSubsets := make([][]uint32, n)
	var states float64 = 1
	for u := 0; u < n; u++ {
		userSubsets[u] = subsetsFor(inst.Kappa.At(int32(u)))
		states *= float64(len(userSubsets[u]))
		if states > float64(maxStates) {
			return nil, 0, fmt.Errorf("core: BruteForce state space ~%g exceeds cap %d", states, maxStates)
		}
	}

	// Memoized exact revenue per (ad, seed bitmask).
	sims := make([]*diffusion.Simulator, h)
	for i, ad := range inst.Ads {
		sims[i] = diffusion.NewSimulator(inst.G, ad.Params)
	}
	memo := make([]map[uint32]float64, h)
	for i := range memo {
		memo[i] = map[uint32]float64{0: 0}
	}
	revenue := func(i int, seedMask uint32) float64 {
		if v, ok := memo[i][seedMask]; ok {
			return v
		}
		var seeds []int32
		for u := 0; u < n; u++ {
			if seedMask&(1<<u) != 0 {
				seeds = append(seeds, int32(u))
			}
		}
		v := inst.Ads[i].CPE * diffusion.ExactSpread(sims[i], seeds)
		memo[i][seedMask] = v
		return v
	}

	bestRegret := math.Inf(1)
	var bestMasks []uint32
	cur := make([]uint32, h) // per-ad seed bitmasks
	var rec func(u int)
	rec = func(u int) {
		if u == n {
			var total float64
			for i := 0; i < h; i++ {
				total += RegretTerm(inst.Ads[i].Budget, revenue(i, cur[i]), inst.Lambda, popcount32(cur[i]))
				if total >= bestRegret {
					return // partial sums only grow
				}
			}
			if total < bestRegret {
				bestRegret = total
				bestMasks = append([]uint32{}, cur...)
			}
			return
		}
		for _, adMask := range userSubsets[u] {
			for i := 0; i < h; i++ {
				if adMask&(1<<i) != 0 {
					cur[i] |= 1 << u
				}
			}
			rec(u + 1)
			for i := 0; i < h; i++ {
				if adMask&(1<<i) != 0 {
					cur[i] &^= 1 << u
				}
			}
		}
	}
	rec(0)

	alloc := NewAllocation(h)
	for i, mask := range bestMasks {
		for u := 0; u < n; u++ {
			if mask&(1<<u) != 0 {
				alloc.Seeds[i] = append(alloc.Seeds[i], int32(u))
			}
		}
	}
	return alloc, bestRegret, nil
}

// MinSeedsToReachBudget returns s_opt for one ad: the smallest number of
// seeds whose exact revenue reaches or exceeds the budget, or (0, false) if
// no seed set does. Used to evaluate the seed-regret term of Theorem 2.
func MinSeedsToReachBudget(inst *Instance, adIdx int) (int, bool) {
	n := inst.G.N()
	if n > 20 {
		panic("core: MinSeedsToReachBudget supports ≤20 nodes")
	}
	sim := diffusion.NewSimulator(inst.G, inst.Ads[adIdx].Params)
	budget := inst.Ads[adIdx].Budget
	cpe := inst.Ads[adIdx].CPE
	for size := 1; size <= n; size++ {
		found := false
		var rec func(start int, cur []int32)
		rec = func(start int, cur []int32) {
			if found {
				return
			}
			if len(cur) == size {
				if cpe*diffusion.ExactSpread(sim, cur) >= budget {
					found = true
				}
				return
			}
			for v := start; v < n; v++ {
				rec(v+1, append(cur, int32(v)))
			}
		}
		rec(0, nil)
		if found {
			return size, true
		}
	}
	return 0, false
}

func popcount32(x uint32) int {
	count := 0
	for x != 0 {
		x &= x - 1
		count++
	}
	return count
}
