package core

import (
	"container/heap"
	"math"
)

// celfQueue implements lazy best-candidate selection for one ad (the CELF
// optimization of Leskovec et al., adapted to regret drops). It maintains a
// max-heap of (node, marginal-revenue) entries where stored values may be
// stale; submodularity of Π makes every stale value a valid upper bound, so
// the true argmax of the regret drop can be certified after refreshing only
// a few entries.
//
// The drop of a candidate with marginal revenue mg at budget gap g is
// |g| − |g − mg| − λ ≤ min(mg, |g|) − λ (RegretDrop). The queue pops
// entries in stale-mg order, re-evaluates them, and stops as soon as the
// best refreshed drop is at least the upper bound min(next-stale-mg, |g|) − λ
// of everything still unrefreshed. Because the drop is not monotone in mg
// (an overshooting candidate loses to a smaller one near the budget), the
// queue keeps scanning past fresh entries whose drop is below their own
// bound — this implements Algorithm 1's exact argmax over (user, ad) pairs
// rather than the "largest marginal gain" shortcut.
type celfQueue struct {
	h       mgHeap
	removed []bool
	// freshness: value for node u is current iff freshTag[u] == commits.
	freshTag []int
	freshMg  []float64
	commits  int
	evals    int // total estimator evaluations (ablation metric)
}

func newCELFQueue(n int) *celfQueue {
	q := &celfQueue{
		removed:  make([]bool, n),
		freshTag: make([]int, n),
		freshMg:  make([]float64, n),
	}
	q.h = make(mgHeap, 0, n)
	for u := 0; u < n; u++ {
		q.freshTag[u] = -1
		q.h = append(q.h, mgEntry{node: int32(u), mg: math.Inf(1)})
	}
	// All +Inf: already a valid heap.
	return q
}

// remove permanently excludes a node (committed to this ad, or attention
// bound exhausted — both monotone).
func (q *celfQueue) remove(u int32) { q.removed[u] = true }

// noteCommit invalidates cached evaluations after the ad's seed set grew.
func (q *celfQueue) noteCommit() { q.commits++ }

// bestDrop returns the eligible node maximizing RegretDrop(gap, mg, λ)
// together with its marginal revenue and drop. ok is false when the heap is
// exhausted. Callers must still check drop > 0 before committing.
func (q *celfQueue) bestDrop(est AdEstimator, gap, lambda float64, eligible func(int32) bool) (bestU int32, bestMg, bestDrop float64, ok bool) {
	bestU, bestDrop = -1, math.Inf(-1)
	ubound := func(mg float64) float64 { return math.Min(mg, math.Abs(gap)) - lambda }
	var aside []mgEntry
	for len(q.h) > 0 {
		top := q.h[0]
		if q.removed[top.node] {
			heap.Pop(&q.h)
			continue
		}
		if eligible != nil && !eligible(top.node) {
			q.removed[top.node] = true
			heap.Pop(&q.h)
			continue
		}
		if bestU >= 0 && bestDrop >= ubound(top.mg) {
			break // nothing left can beat the incumbent
		}
		heap.Pop(&q.h)
		mg := top.mg
		if q.freshTag[top.node] != q.commits {
			mg = est.MarginalRevenue(top.node)
			q.evals++
			q.freshTag[top.node] = q.commits
			q.freshMg[top.node] = mg
		}
		if d := RegretDrop(gap, mg, lambda); d > bestDrop {
			bestU, bestMg, bestDrop = top.node, mg, d
		}
		aside = append(aside, mgEntry{node: top.node, mg: mg})
	}
	for _, e := range aside {
		heap.Push(&q.h, e)
	}
	if bestU < 0 {
		return 0, 0, 0, false
	}
	return bestU, bestMg, bestDrop, true
}

type mgEntry struct {
	node int32
	mg   float64
}

type mgHeap []mgEntry

func (h mgHeap) Len() int            { return len(h) }
func (h mgHeap) Less(i, j int) bool  { return h[i].mg > h[j].mg }
func (h mgHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mgHeap) Push(x interface{}) { *h = append(*h, x.(mgEntry)) }
func (h *mgHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
