package core

import (
	"math"
	"sync"
)

// celfQueue implements lazy best-candidate selection for one ad (the CELF
// optimization of Leskovec et al., adapted to regret drops). It maintains a
// max-heap of (node, marginal-revenue) entries where stored values may be
// stale; submodularity of Π makes every stale value a valid upper bound, so
// the true argmax of the regret drop can be certified after refreshing only
// a few entries.
//
// The drop of a candidate with marginal revenue mg at budget gap g is
// |g| − |g − mg| − λ ≤ min(mg, |g|) − λ (RegretDrop). The queue pops
// entries in stale-mg order, re-evaluates them, and stops as soon as the
// best refreshed drop is at least the upper bound min(next-stale-mg, |g|) − λ
// of everything still unrefreshed. Because the drop is not monotone in mg
// (an overshooting candidate loses to a smaller one near the budget), the
// queue keeps scanning past fresh entries whose drop is below their own
// bound — this implements Algorithm 1's exact argmax over (user, ad) pairs
// rather than the "largest marginal gain" shortcut.
//
// Queues recycle their O(n) arrays through a package pool (Greedy runs one
// queue per ad per invocation), and the heap uses concrete push/pop — the
// same sift algorithm as container/heap, without the interface{} boxing
// that allocated on every refresh.
type celfQueue struct {
	h       mgHeap
	removed []bool
	// freshness: value for node u is current iff freshTag[u] == commits.
	freshTag []int
	freshMg  []float64
	commits  int
	evals    int       // total estimator evaluations (ablation metric)
	aside    []mgEntry // bestDrop scratch
}

// celfPool recycles queues across Greedy invocations.
var celfPool sync.Pool

func newCELFQueue(n int) *celfQueue {
	q, ok := celfPool.Get().(*celfQueue)
	if !ok {
		q = &celfQueue{}
	}
	q.reset(n)
	return q
}

// reset reinitializes the queue for a fresh run over n nodes, reusing its
// backing arrays.
func (q *celfQueue) reset(n int) {
	if cap(q.removed) < n {
		q.removed = make([]bool, n)
		q.freshTag = make([]int, n)
		q.freshMg = make([]float64, n)
		q.h = make(mgHeap, 0, n)
	}
	q.removed = q.removed[:n]
	q.freshTag = q.freshTag[:n]
	q.freshMg = q.freshMg[:n]
	q.h = q.h[:0]
	q.commits = 0
	q.evals = 0
	for u := 0; u < n; u++ {
		q.removed[u] = false
		q.freshTag[u] = -1
		q.h = append(q.h, mgEntry{node: int32(u), mg: math.Inf(1)})
	}
	// All +Inf: already a valid heap.
}

// release parks the queue for reuse by a later run.
func (q *celfQueue) release() { celfPool.Put(q) }

// remove permanently excludes a node (committed to this ad, or attention
// bound exhausted — both monotone).
func (q *celfQueue) remove(u int32) { q.removed[u] = true }

// noteCommit invalidates cached evaluations after the ad's seed set grew.
func (q *celfQueue) noteCommit() { q.commits++ }

// bestDrop returns the eligible node maximizing RegretDrop(gap, mg, λ)
// together with its marginal revenue and drop. ok is false when the heap is
// exhausted. Callers must still check drop > 0 before committing.
func (q *celfQueue) bestDrop(est AdEstimator, gap, lambda float64, eligible func(int32) bool) (bestU int32, bestMg, bestDrop float64, ok bool) {
	bestU, bestDrop = -1, math.Inf(-1)
	ubound := func(mg float64) float64 { return math.Min(mg, math.Abs(gap)) - lambda }
	aside := q.aside[:0]
	for len(q.h) > 0 {
		top := q.h[0]
		if q.removed[top.node] {
			q.h.pop()
			continue
		}
		if eligible != nil && !eligible(top.node) {
			q.removed[top.node] = true
			q.h.pop()
			continue
		}
		if bestU >= 0 && bestDrop >= ubound(top.mg) {
			break // nothing left can beat the incumbent
		}
		q.h.pop()
		mg := top.mg
		if q.freshTag[top.node] != q.commits {
			mg = est.MarginalRevenue(top.node)
			q.evals++
			q.freshTag[top.node] = q.commits
			q.freshMg[top.node] = mg
		}
		if d := RegretDrop(gap, mg, lambda); d > bestDrop {
			bestU, bestMg, bestDrop = top.node, mg, d
		}
		aside = append(aside, mgEntry{node: top.node, mg: mg})
	}
	for _, e := range aside {
		q.h.push(e)
	}
	q.aside = aside[:0]
	if bestU < 0 {
		return 0, 0, 0, false
	}
	return bestU, bestMg, bestDrop, true
}

type mgEntry struct {
	node int32
	mg   float64
}

// mgHeap is a max-heap over stale marginal revenues with concrete push/pop
// replicating container/heap's sift algorithm bit for bit (identical heap
// layout, no boxing).
type mgHeap []mgEntry

func (h mgHeap) less(i, j int) bool { return h[i].mg > h[j].mg }

// push appends e and sifts it up.
func (h *mgHeap) push(e mgEntry) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

// pop removes and returns the max entry.
func (h *mgHeap) pop() mgEntry {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	old.down(0, n)
	e := old[n]
	*h = old[:n]
	return e
}

func (h mgHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h mgHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2
		}
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}
