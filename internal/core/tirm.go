package core

import (
	"math"

	"repro/internal/rrset"
	"repro/internal/xrand"
)

// TIRMOptions configures Two-phase Iterative Regret Minimization
// (Algorithm 2).
type TIRMOptions struct {
	// Eps is ε of Eq. 5 (paper: 0.1 quality, 0.2 scalability). Default 0.1.
	Eps float64
	// Ell sets the n^(−ℓ) failure bound. Default 1.
	Ell float64
	// MinTheta floors each ad's RR sample (also the pilot-sample size used
	// for width-based KPT refreshes). Default 4096.
	MinTheta int
	// MaxTheta caps each ad's RR sample (0 = uncapped). Paper-scale θ runs
	// to tens of millions of sets; scaled-down runs cap it to bound memory,
	// trading guarantee slack that does not change who-wins shapes.
	MaxTheta int
	// MaxSeedsPerAd caps |S_i| (0 = number of nodes).
	MaxSeedsPerAd int
	// CandidateDepth extends SelectBestNode (Algorithm 3): instead of
	// scoring only the single max-coverage node per ad, the top
	// CandidateDepth eligible nodes are scored by regret drop and the best
	// one proposed. Depth 1 (default) is the paper's algorithm; deeper
	// search helps near the budget boundary, where the max-coverage node
	// can overshoot while a smaller node still reduces regret (the same
	// non-monotonicity Algorithm 1's exact argmax handles, cf. celfQueue).
	CandidateDepth int
	// SoftCoverage enables the TIRM-W extension: instead of removing an
	// RR-set once any seed covers it (the paper's Algorithm 2, which
	// credits each set to its first seed and therefore underestimates
	// revenue when seeds' reach overlaps), per-set weights Π(1−δ_u) are
	// maintained so marginal gains and revenue match the exact expectation
	// over CTP coins (see rrset.WeightedCollection). Off by default —
	// the paper's semantics — and compared in the ABL-SOFT ablation bench.
	SoftCoverage bool
}

func (o TIRMOptions) withDefaults() TIRMOptions {
	if o.Eps <= 0 {
		o.Eps = 0.1
	}
	if o.Ell <= 0 {
		o.Ell = 1
	}
	if o.MinTheta <= 0 {
		o.MinTheta = 4096
	}
	if o.CandidateDepth <= 0 {
		o.CandidateDepth = 1
	}
	return o
}

// TIRMResult reports the allocation plus the algorithm's internal
// estimates and sampling statistics (Table 4 instrumentation).
type TIRMResult struct {
	Alloc      *Allocation
	EstRevenue []float64
	// FinalTheta is the per-ad RR-sample size at termination.
	FinalTheta []int
	// FinalSeedTarget is the per-ad s_i estimate at termination.
	FinalSeedTarget []int
	// TotalSetsSampled counts RR-sets drawn across all ads.
	TotalSetsSampled int64
	// MemBytes estimates the peak footprint of the per-ad RR-set indexes
	// (Table 4 instrumentation).
	MemBytes   int64
	Iterations int
}

// covIndex abstracts the two coverage-bookkeeping modes: the paper's hard
// removal (rrset.Collection) and the TIRM-W soft weights
// (rrset.WeightedCollection). Scores are in "set mass" units: a candidate's
// marginal revenue is cpe·n·δ(u)·score/θ, and Commit/CreditFrom return the
// δ-scaled mass actually claimed (= δ·score at commit time).
type covIndex interface {
	AddBatch(sets [][]int32)
	NumSets() int
	BestNode(eligible func(int32) bool) (node int32, score float64, ok bool)
	TopNodes(k int, eligible func(int32) bool) (nodes []int32, scores []float64)
	Commit(u int32, delta float64) float64
	CreditFrom(u int32, delta float64, firstID int) float64
	CoveredMass() float64
	Drop(u int32)
	MemBytes() int64
}

// hardIndex adapts rrset.Collection (Algorithm 2 semantics) to covIndex.
type hardIndex struct{ c *rrset.Collection }

func (h hardIndex) AddBatch(sets [][]int32) { h.c.AddBatch(sets) }
func (h hardIndex) NumSets() int            { return h.c.NumSets() }
func (h hardIndex) BestNode(eligible func(int32) bool) (int32, float64, bool) {
	u, cov, ok := h.c.BestNode(eligible)
	return u, float64(cov), ok
}
func (h hardIndex) TopNodes(k int, eligible func(int32) bool) ([]int32, []float64) {
	nodes, covs := h.c.TopNodes(k, eligible)
	scores := make([]float64, len(covs))
	for i, c := range covs {
		scores[i] = float64(c)
	}
	return nodes, scores
}
func (h hardIndex) Commit(u int32, delta float64) float64 {
	return delta * float64(h.c.CoverNode(u))
}
func (h hardIndex) CreditFrom(u int32, delta float64, firstID int) float64 {
	return delta * float64(h.c.CountAndCoverFrom(u, firstID))
}
func (h hardIndex) CoveredMass() float64 { return float64(h.c.NumCovered()) }
func (h hardIndex) Drop(u int32)         { h.c.Drop(u) }
func (h hardIndex) MemBytes() int64      { return h.c.MemBytes() }

// softIndex adapts rrset.WeightedCollection (TIRM-W) to covIndex.
type softIndex struct{ c *rrset.WeightedCollection }

func (s softIndex) AddBatch(sets [][]int32) { s.c.AddBatch(sets) }
func (s softIndex) NumSets() int            { return s.c.NumSets() }
func (s softIndex) BestNode(eligible func(int32) bool) (int32, float64, bool) {
	return s.c.BestNode(eligible)
}
func (s softIndex) TopNodes(k int, eligible func(int32) bool) ([]int32, []float64) {
	return s.c.TopNodes(k, eligible)
}
func (s softIndex) Commit(u int32, delta float64) float64 { return s.c.Commit(u, delta) }
func (s softIndex) CreditFrom(u int32, delta float64, firstID int) float64 {
	return s.c.CreditFrom(u, delta, firstID)
}
func (s softIndex) CoveredMass() float64 { return s.c.CoveredMass() }
func (s softIndex) Drop(u int32)         { s.c.Drop(u) }
func (s softIndex) MemBytes() int64      { return s.c.MemBytes() }

// tirmAd is the per-advertiser state of Algorithm 2.
type tirmAd struct {
	cpe       float64
	budget    float64
	delta     func(u int32) float64
	col       covIndex
	sampler   *rrset.Sampler
	rng       *xrand.Rand
	salt      uint64
	theta     int
	sTarget   int
	widths    []int64 // pilot widths for KPT(s) refreshes
	revenue   float64
	seeds     []int32
	seedMass  []float64 // δ-scaled claimed set mass per seed
	saturated bool
}

// kptFromWidths evaluates TIM's width statistic KPT(s) = n·mean(κ_s(R))/2
// with κ_s(R) = 1 − (1 − ω(R)/m)^s over the fixed pilot sample, floored at
// max(s, 1). The paper sizes θ with L(s, ε) at every seed-target revision;
// re-running full KPT estimation each time would resample from scratch, so
// we keep the pilot widths and recompute the statistic for the new s — the
// same estimator on a fixed sample (documented substitution, DESIGN.md §3.5).
func kptFromWidths(widths []int64, s int, n int, m int64) float64 {
	floor := math.Max(1, float64(s))
	if len(widths) == 0 || m == 0 {
		return floor
	}
	var sum float64
	for _, w := range widths {
		sum += 1 - math.Pow(1-float64(w)/float64(m), float64(s))
	}
	kpt := float64(n) * (sum / float64(len(widths))) / 2
	return math.Max(kpt, floor)
}

// TIRM implements Algorithm 2: per-ad RR-set collections sized by Eq. 5,
// greedy (user, ad) selection by maximum regret drop with marginal revenues
// cpe(i)·n·δ(u,i)·F_R(u) (Theorem 5), iterative seed-set-size estimation
// with sample growth, and UpdateEstimates re-calibration (Algorithm 4).
func TIRM(inst *Instance, rng *xrand.Rand, opts TIRMOptions) (*TIRMResult, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	g := inst.G
	n := g.N()
	m := g.M()
	h := len(inst.Ads)
	maxSeeds := opts.MaxSeedsPerAd
	if maxSeeds <= 0 {
		maxSeeds = n
	}

	res := &TIRMResult{
		Alloc:           NewAllocation(h),
		EstRevenue:      make([]float64, h),
		FinalTheta:      make([]int, h),
		FinalSeedTarget: make([]int, h),
	}

	// Initialization (Algorithm 2 lines 1–3): s_j = 1, θ_j = L(s_j, ε),
	// R_j = Sample(G, γ_j, θ_j). The pilot batch doubles as the width
	// sample for KPT refreshes.
	ads := make([]*tirmAd, h)
	for j := 0; j < h; j++ {
		spec := inst.Ads[j]
		var col covIndex
		if opts.SoftCoverage {
			col = softIndex{rrset.NewWeightedCollection(n)}
		} else {
			col = hardIndex{rrset.NewCollection(n)}
		}
		a := &tirmAd{
			cpe:     spec.CPE,
			budget:  spec.Budget,
			delta:   spec.Params.CTPs.At,
			col:     col,
			sampler: rrset.NewSampler(g, spec.Params.Probs, nil),
			rng:     rng.Split(uint64(j)),
			sTarget: 1,
		}
		pilot := a.sampler.SampleBatchRR(opts.MinTheta, a.rng, a.salt)
		a.salt += uint64(len(pilot))
		a.widths = make([]int64, len(pilot))
		for i, set := range pilot {
			a.widths[i] = rrset.Width(g, set)
		}
		a.col.AddBatch(pilot)
		a.theta = len(pilot)
		res.TotalSetsSampled += int64(len(pilot))

		kpt := kptFromWidths(a.widths, 1, n, m)
		want := rrset.Theta(int64(n), 1, opts.Eps, opts.Ell, kpt, opts.MinTheta, opts.MaxTheta)
		if want > a.theta {
			extra := a.sampler.SampleBatchRR(want-a.theta, a.rng, a.salt)
			a.salt += uint64(len(extra))
			a.col.AddBatch(extra)
			a.theta = want
			res.TotalSetsSampled += int64(len(extra))
		}
		ads[j] = a
	}

	attention := NewAttention(n, inst.Kappa)
	eligible := func(u int32) bool { return attention.CanTake(u) }

	// Main loop (Algorithm 2 lines 4–19).
	for {
		bestAd := -1
		var bestU int32
		var bestScore float64
		var bestMg float64
		bestDrop := 0.0
		for j, a := range ads {
			if a.saturated {
				continue
			}
			// SelectBestNode (Algorithm 3): max residual coverage among
			// eligible nodes — extended to the top CandidateDepth nodes
			// scored by regret drop (depth 1 = the paper).
			nodes, scores := a.col.TopNodes(opts.CandidateDepth, eligible)
			if len(nodes) == 0 {
				a.saturated = true
				continue
			}
			improved := false
			for c, u := range nodes {
				mg := a.cpe * float64(n) * a.delta(u) * scores[c] / float64(a.theta)
				d := RegretDrop(a.budget-a.revenue, mg, inst.Lambda)
				if d <= 0 {
					continue
				}
				improved = true
				if bestAd < 0 || d > bestDrop {
					bestAd, bestU, bestScore, bestMg, bestDrop = j, u, scores[c], mg, d
				}
			}
			if !improved {
				// No strict improvement possible for this ad: its candidate
				// pool only shrinks and Π only changes when it commits, so
				// the saturation is permanent.
				a.saturated = true
				continue
			}
		}
		if bestAd < 0 {
			break // line 14: no (user, ad) pair reduces regret
		}

		// Commit (lines 10–12): allocate, record the claimed mass, and
		// retire it (hard mode removes covered sets; soft mode decays their
		// weights by 1−δ).
		a := ads[bestAd]
		mass := a.col.Commit(bestU, a.delta(bestU))
		a.col.Drop(bestU)
		attention.Take(bestU)
		a.seeds = append(a.seeds, bestU)
		a.seedMass = append(a.seedMass, mass)
		a.revenue += bestMg
		res.Iterations++
		if diff := mass - a.delta(bestU)*bestScore; diff > 1e-6*(1+mass) || diff < -1e-6*(1+mass) {
			// BestNode and Commit disagree only on a bug.
			panic("core: TIRM coverage bookkeeping out of sync")
		}

		if len(a.seeds) >= maxSeeds {
			a.saturated = true
			continue
		}

		// Iterative seed-set-size estimation (lines 14–18): when |S_i|
		// reaches s_i, extend s_i by the regret still outstanding divided
		// by the latest seed's marginal revenue — a lower bound on the
		// seeds still needed, by submodularity — then grow θ_i to L(s_i, ε)
		// and re-calibrate existing seeds on the enlarged sample.
		if len(a.seeds) == a.sTarget {
			gap := a.budget - a.revenue
			if gap <= 0 || bestMg <= 0 {
				continue
			}
			growth := int(math.Floor(gap / bestMg))
			if growth < 1 {
				continue
			}
			a.sTarget += growth
			kpt := kptFromWidths(a.widths, a.sTarget, n, m)
			// The achieved spread n·(covered/θ) is itself a lower bound on
			// OPT_{s_i}; take the larger of the two (conservatively shrunk).
			achieved := float64(n) * a.col.CoveredMass() / float64(a.theta) * (1 - opts.Eps)
			optLB := math.Max(kpt, achieved)
			want := rrset.Theta(int64(n), int64(a.sTarget), opts.Eps, opts.Ell, optLB, opts.MinTheta, opts.MaxTheta)
			if want > a.theta {
				boundary := a.col.NumSets()
				extra := a.sampler.SampleBatchRR(want-a.theta, a.rng, a.salt)
				a.salt += uint64(len(extra))
				a.col.AddBatch(extra)
				a.theta = want
				res.TotalSetsSampled += int64(len(extra))
				// UpdateEstimates (Algorithm 4): credit existing seeds, in
				// selection order, with their coverage among the appended
				// sets (retiring the claimed mass as we go so nothing is
				// double-counted), then recompute Π against the new θ.
				a.revenue = 0
				for k, seed := range a.seeds {
					a.seedMass[k] += a.col.CreditFrom(seed, a.delta(seed), boundary)
					a.revenue += a.cpe * float64(n) * a.seedMass[k] / float64(a.theta)
				}
			}
		}
	}

	for j, a := range ads {
		res.Alloc.Seeds[j] = a.seeds
		res.EstRevenue[j] = a.revenue
		res.FinalTheta[j] = a.theta
		res.FinalSeedTarget[j] = a.sTarget
		res.MemBytes += a.col.MemBytes()
	}
	return res, nil
}

// EstRegret computes total regret under TIRM's own revenue estimates.
func (r *TIRMResult) EstRegret(inst *Instance) float64 {
	var total float64
	for i, ad := range inst.Ads {
		total += RegretTerm(ad.Budget, r.EstRevenue[i], inst.Lambda, len(r.Alloc.Seeds[i]))
	}
	return total
}
