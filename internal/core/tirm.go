package core

import (
	"math"

	"repro/internal/rrset"
	"repro/internal/xrand"
)

// TIRMOptions configures Two-phase Iterative Regret Minimization
// (Algorithm 2).
type TIRMOptions struct {
	// Eps is ε of Eq. 5 (paper: 0.1 quality, 0.2 scalability). Default 0.1.
	Eps float64
	// Ell sets the n^(−ℓ) failure bound. Default 1.
	Ell float64
	// MinTheta floors each ad's RR sample (also the pilot-sample size used
	// for width-based KPT refreshes). Default 4096.
	MinTheta int
	// MaxTheta caps each ad's RR sample (0 = uncapped). Paper-scale θ runs
	// to tens of millions of sets; scaled-down runs cap it to bound memory,
	// trading guarantee slack that does not change who-wins shapes.
	MaxTheta int
	// MaxSeedsPerAd caps |S_i| (0 = number of nodes).
	MaxSeedsPerAd int
	// CandidateDepth extends SelectBestNode (Algorithm 3): instead of
	// scoring only the single max-coverage node per ad, the top
	// CandidateDepth eligible nodes are scored by regret drop and the best
	// one proposed. Depth 1 (default) is the paper's algorithm; deeper
	// search helps near the budget boundary, where the max-coverage node
	// can overshoot while a smaller node still reduces regret (the same
	// non-monotonicity Algorithm 1's exact argmax handles, cf. celfQueue).
	CandidateDepth int
	// SoftCoverage enables the TIRM-W extension: instead of removing an
	// RR-set once any seed covers it (the paper's Algorithm 2, which
	// credits each set to its first seed and therefore underestimates
	// revenue when seeds' reach overlaps), per-set weights Π(1−δ_u) are
	// maintained so marginal gains and revenue match the exact expectation
	// over CTP coins (see rrset.WeightedCollection). Off by default —
	// the paper's semantics — and compared in the ABL-SOFT ablation bench.
	SoftCoverage bool
}

func (o TIRMOptions) withDefaults() TIRMOptions {
	if o.Eps <= 0 {
		o.Eps = 0.1
	}
	if o.Ell <= 0 {
		o.Ell = 1
	}
	if o.MinTheta <= 0 {
		o.MinTheta = 4096
	}
	if o.CandidateDepth <= 0 {
		o.CandidateDepth = 1
	}
	return o
}

// TIRMResult reports the allocation plus the algorithm's internal
// estimates and sampling statistics (Table 4 instrumentation).
type TIRMResult struct {
	Alloc      *Allocation
	EstRevenue []float64
	// FinalTheta is the per-ad RR-sample size at termination.
	FinalTheta []int
	// FinalSeedTarget is the per-ad s_i estimate at termination.
	FinalSeedTarget []int
	// TotalSetsSampled counts RR-sets freshly drawn from the graph during
	// this run. For TIRM it covers the whole sample; for a warm
	// AllocateFromIndex run it is the on-demand growth only (0 when the
	// index already held enough sets).
	TotalSetsSampled int64
	// SetsReused counts sets served from a preexisting index sample
	// instead of being drawn — the work the warm-start path saved.
	SetsReused int64
	// MemBytes estimates the peak footprint of the per-ad RR-set indexes
	// (Table 4 instrumentation).
	MemBytes   int64
	Iterations int
	// KernelCounts tallies, by rrset.KernelID, how many per-ad coverage
	// collections ran on each cover kernel this run (sparse vs bitset —
	// see Request.Kernel). A fixed array, not a map, so the warm path
	// stays allocation-free.
	KernelCounts [rrset.NumKernels]int
}

// kptFromWidths evaluates TIM's width statistic KPT(s) = n·mean(κ_s(R))/2
// with κ_s(R) = 1 − (1 − ω(R)/m)^s over the fixed pilot sample, floored at
// max(s, 1). The paper sizes θ with L(s, ε) at every seed-target revision;
// re-running full KPT estimation each time would resample from scratch, so
// we keep the pilot widths and recompute the statistic for the new s — the
// same estimator on a fixed sample (documented substitution, DESIGN.md §3.5).
//
// This sits on the warm-allocation hot path (every seed-target revision of
// every request re-evaluates it), so the math.Pow per width is sidestepped
// where the result provably cannot change: s == 1 reduces to the Pow
// special case Pow(y, 1) == y, and memo — an optional caller-owned scratch
// map, cleared here — caches the per-width term across the (few dozen)
// distinct width values a pilot sample actually contains. Terms are summed
// in width order with bit-identical values either way, so the result is
// byte-for-byte the historical one.
func kptFromWidths(widths []int64, s int, n int, m int64, memo map[int64]float64) float64 {
	floor := math.Max(1, float64(s))
	if len(widths) == 0 || m == 0 {
		return floor
	}
	var sum float64
	switch {
	case s == 1:
		for _, w := range widths {
			// Pow(y, 1) returns y exactly, so 1 − y is the exact term.
			sum += 1 - (1 - float64(w)/float64(m))
		}
	case memo != nil:
		clear(memo)
		fs := float64(s)
		for _, w := range widths {
			term, ok := memo[w]
			if !ok {
				term = 1 - math.Pow(1-float64(w)/float64(m), fs)
				memo[w] = term
			}
			sum += term
		}
	default:
		fs := float64(s)
		for _, w := range widths {
			sum += 1 - math.Pow(1-float64(w)/float64(m), fs)
		}
	}
	kpt := float64(n) * (sum / float64(len(widths))) / 2
	return math.Max(kpt, floor)
}

// TIRM implements Algorithm 2: per-ad RR-set collections sized by Eq. 5,
// greedy (user, ad) selection by maximum regret drop with marginal revenues
// cpe(i)·n·δ(u,i)·F_R(u) (Theorem 5), iterative seed-set-size estimation
// with sample growth, and UpdateEstimates re-calibration (Algorithm 4).
//
// TIRM is a thin wrapper over the two-stage API: it builds a fresh RR-set
// index (BuildIndex) and immediately runs selection against it
// (AllocateFromIndex). Callers that allocate more than once — what-if
// queries, budget re-negotiations, the internal/serve server — should hold
// on to an Index and call AllocateFromIndex directly: for a fixed seed the
// allocation is identical and the sampling cost is paid only once. Only
// rng's seed matters (streams are derived by pure splits).
func TIRM(inst *Instance, rng *xrand.Rand, opts TIRMOptions) (*TIRMResult, error) {
	idx, err := BuildIndex(inst, rng.Seed(), opts)
	if err != nil {
		return nil, err
	}
	res, err := AllocateFromIndex(idx, Request{Opts: opts})
	if err != nil {
		return nil, err
	}
	// Attribute the build-time presampling to this run: with a throwaway
	// index nothing is reused.
	res.TotalSetsSampled = idx.SetsSampled()
	res.SetsReused = 0
	return res, nil
}

// EstRegret computes total regret under TIRM's own revenue estimates.
func (r *TIRMResult) EstRegret(inst *Instance) float64 {
	var total float64
	for i, ad := range inst.Ads {
		total += RegretTerm(ad.Budget, r.EstRevenue[i], inst.Lambda, len(r.Alloc.Seeds[i]))
	}
	return total
}
