//go:build race

package core

// raceDetectorOn reports whether the race detector is active (see the
// !race twin for why pool-statistics assertions key off it).
const raceDetectorOn = true
