package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/topic"
	"repro/internal/xrand"
)

// TestZeroAttentionAllocatesNothing: with κ_u = 0 everywhere, every valid
// allocation is empty and every algorithm must return one.
func TestZeroAttentionAllocatesNothing(t *testing.T) {
	inst := fig1Instance(t, 0)
	inst.Kappa = VecKappa{0, 0, 0, 0, 0, 0}
	g, err := Greedy(inst, NewExactFactory(inst), GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Alloc.NumSeeds() != 0 {
		t.Errorf("greedy seeded %d users despite κ=0", g.Alloc.NumSeeds())
	}
	tr, err := TIRM(inst, xrand.New(1), TIRMOptions{MinTheta: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Alloc.NumSeeds() != 0 {
		t.Errorf("TIRM seeded %d users despite κ=0", tr.Alloc.NumSeeds())
	}
}

// TestMixedAttention: κ = 0 for some users must exclude exactly them.
func TestMixedAttention(t *testing.T) {
	inst := fig1Instance(t, 0)
	// Only v3 (index 2) may be seeded.
	inst.Kappa = VecKappa{0, 0, 3, 0, 0, 0}
	res, err := TIRM(inst, xrand.New(2), TIRMOptions{MinTheta: 20000})
	if err != nil {
		t.Fatal(err)
	}
	for i, seeds := range res.Alloc.Seeds {
		for _, u := range seeds {
			if u != 2 {
				t.Errorf("ad %d seeded forbidden node %d", i, u)
			}
		}
	}
	if err := res.Alloc.Validate(inst); err != nil {
		t.Fatal(err)
	}
}

// TestSingleNodeGraph: a one-node instance must terminate and either seed
// that node or not, without panicking.
func TestSingleNodeGraph(t *testing.T) {
	g := graph.NewBuilder(1).MustBuild()
	inst := &Instance{
		G: g,
		Ads: []Ad{{
			Name:   "solo",
			Budget: 0.5,
			CPE:    1,
			Params: topic.ItemParams{Probs: nil, CTPs: topic.ConstCTP{Nodes: 1, P: 0.4}},
		}},
		Kappa: ConstKappa(1),
	}
	res, err := TIRM(inst, xrand.New(3), TIRMOptions{MinTheta: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Alloc.Validate(inst); err != nil {
		t.Fatal(err)
	}
	gr, err := Greedy(inst, NewExactFactory(inst), GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Seeding the node gives Π = 0.4, regret 0.1 < 0.5: greedy must take it.
	if gr.Alloc.NumSeeds() != 1 {
		t.Errorf("greedy left the profitable solo node unseeded")
	}
}

// TestOversizedSingleNodeSpread reproduces the paper's §4.1 "practical
// considerations" pathology: when any single seed's revenue more than
// doubles the budget, the empty allocation is optimal and the algorithms
// must return it.
func TestOversizedSingleNodeSpread(t *testing.T) {
	g := graph.NewBuilder(3).MustBuild() // no edges: spread = CTP per seed
	inst := &Instance{
		G: g,
		Ads: []Ad{{
			Name:   "tiny",
			Budget: 0.3,
			CPE:    1,
			Params: topic.ItemParams{Probs: nil, CTPs: topic.ConstCTP{Nodes: 3, P: 1.0}},
		}},
		Kappa: ConstKappa(1),
	}
	// Any seed yields Π = 1 ⇒ |0.3 − 1| = 0.7 > 0.3: worse than empty.
	gr, err := Greedy(inst, NewExactFactory(inst), GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if gr.Alloc.NumSeeds() != 0 {
		t.Errorf("greedy accepted a regret-increasing seed")
	}
	tr, err := TIRM(inst, xrand.New(4), TIRMOptions{MinTheta: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Alloc.NumSeeds() != 0 {
		t.Errorf("TIRM accepted a regret-increasing seed")
	}
}

// TestManyAdsFewUsers: more ads than seedable users — round termination
// and validity under heavy competition.
func TestManyAdsFewUsers(t *testing.T) {
	r := xrand.New(9)
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	probs := []float32{0.3, 0.3, 0.3}
	ads := make([]Ad, 8)
	for i := range ads {
		ads[i] = Ad{
			Name:   string(rune('a' + i)),
			Budget: r.Uniform(0.5, 2),
			CPE:    1,
			Params: topic.ItemParams{Probs: probs, CTPs: topic.ConstCTP{Nodes: 4, P: 0.5}},
		}
	}
	inst := &Instance{G: g, Ads: ads, Kappa: ConstKappa(1)}
	res, err := TIRM(inst, xrand.New(10), TIRMOptions{MinTheta: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Alloc.Validate(inst); err != nil {
		t.Fatal(err)
	}
	if res.Alloc.NumSeeds() > 4 {
		t.Errorf("more seeds than users: %d", res.Alloc.NumSeeds())
	}
}
