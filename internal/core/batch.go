// Batched allocation: many selection runs against one pinned index epoch.
//
// A serving host that evaluates a burst of what-if requests (budget
// renegotiations, per-advertiser scenario sweeps, A/B probes) pays, per
// request, the epoch load, workspace checkout, and KPT re-estimation — and
// risks the campaign set swapping between items, so positional overrides
// stop lining up across the burst. AllocateBatch pins the epoch once and
// fans the items over the bounded worker budget: every item sees the same
// campaign set, workspaces recycle through one pool across items, and the
// per-ad KPT caches (kptCache, powMemo) stay hot from item to item instead
// of re-deriving the same θ sizing per request. Each item is evaluated by
// the ordinary allocateEpoch, so its result is byte-identical to a
// sequential AllocateFromIndex against that epoch (golden-pinned).

package core

import (
	"sync"
	"sync/atomic"
)

// BatchResult is one item's outcome in an AllocateBatch call: exactly the
// (result, error) pair the equivalent AllocateFromIndex call would return.
type BatchResult struct {
	// Res is the item's allocation result (nil when Err is set).
	Res *TIRMResult
	// Err is the item's failure, if any — items fail independently; one
	// bad request never poisons its batch siblings.
	Err error
}

// AllocateBatch evaluates many requests against one pinned epoch of the
// index and returns one BatchResult per request, in request order. All
// items observe the same campaign set even if AddAd/RemoveAd land mid
// batch (requests pinning a different Request.Epoch fail with
// ErrStaleEpoch, exactly as they would alone). Items run concurrently
// under the same scanWorkers budget that bounds per-ad parallelism, and
// each item's allocation is byte-identical to the sequential
// AllocateFromIndex call with the same request against that epoch —
// batching changes cost, never results.
func AllocateBatch(idx *Index, reqs []Request) []BatchResult {
	out := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	ep := idx.curr.Load()
	workers := scanWorkers(len(reqs))
	if workers <= 1 {
		for i := range reqs {
			res, err := allocateEpoch(idx, ep, reqs[i])
			out[i] = BatchResult{Res: res, Err: err}
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				res, err := allocateEpoch(idx, ep, reqs[i])
				out[i] = BatchResult{Res: res, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}
