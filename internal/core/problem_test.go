package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/topic"
	"repro/internal/xrand"
)

// fig1Instance builds the paper's Figure 1 problem: 6 nodes, 4 ads with
// CTPs .9/.8/.7/.6, budgets 4/2/2/1, CPE 1, κ_u = 1.
func fig1Instance(t testing.TB, lambda float64) *Instance {
	t.Helper()
	b := graph.NewBuilder(6)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(2, 4)
	b.AddEdge(3, 5)
	b.AddEdge(4, 5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	probs := []float32{0.2, 0.2, 0.5, 0.5, 0.1, 0.1}
	mk := func(name string, budget, ctp float64) Ad {
		return Ad{
			Name:   name,
			Budget: budget,
			CPE:    1,
			Params: topic.ItemParams{Probs: probs, CTPs: topic.ConstCTP{Nodes: 6, P: ctp}},
		}
	}
	return &Instance{
		G: g,
		Ads: []Ad{
			mk("a", 4, 0.9),
			mk("b", 2, 0.8),
			mk("c", 2, 0.7),
			mk("d", 1, 0.6),
		},
		Kappa:  ConstKappa(1),
		Lambda: lambda,
	}
}

// exactRevenue evaluates Π_i(S_i) by possible-world enumeration.
func exactRevenue(inst *Instance, i int, seeds []int32) float64 {
	sim := diffusion.NewSimulator(inst.G, inst.Ads[i].Params)
	return inst.Ads[i].CPE * diffusion.ExactSpread(sim, seeds)
}

// exactTotalRegret computes R(S) with exact revenues.
func exactTotalRegret(inst *Instance, alloc *Allocation) float64 {
	var total float64
	for i := range inst.Ads {
		rev := exactRevenue(inst, i, alloc.Seeds[i])
		total += RegretTerm(inst.Ads[i].Budget, rev, inst.Lambda, len(alloc.Seeds[i]))
	}
	return total
}

// allocationA assigns every user to ad a (the paper's CTP-maximizing
// allocation); allocationB is the paper's virality-aware example.
func allocationA() *Allocation {
	return &Allocation{Seeds: [][]int32{{0, 1, 2, 3, 4, 5}, nil, nil, nil}}
}

func allocationB() *Allocation {
	return &Allocation{Seeds: [][]int32{{0, 1}, {2}, {3, 4}, {5}}}
}

// TestExample1Regrets reproduces Example 1: with λ = 0 the regrets of
// allocations A and B are ≈6.6 and ≈2.7 (exact: 6.5440725 and 2.6997590).
func TestExample1Regrets(t *testing.T) {
	inst := fig1Instance(t, 0)
	ra := exactTotalRegret(inst, allocationA())
	rb := exactTotalRegret(inst, allocationB())
	if math.Abs(ra-6.5440725) > 1e-6 {
		t.Errorf("regret(A) = %.7f, want 6.5440725", ra)
	}
	if math.Abs(rb-2.6997590) > 1e-6 {
		t.Errorf("regret(B) = %.7f, want 2.6997590", rb)
	}
	// Paper's rounded numbers.
	if math.Abs(ra-6.6) > 0.1 || math.Abs(rb-2.7) > 0.05 {
		t.Errorf("regrets (%.3f, %.3f) too far from the paper's (6.6, 2.7)", ra, rb)
	}
}

// TestExample2Regrets reproduces Example 2: with λ = 0.1 the regrets grow
// by 0.1·6 seeds: ≈7.2 for A and ≈3.3 for B.
func TestExample2Regrets(t *testing.T) {
	inst := fig1Instance(t, 0.1)
	ra := exactTotalRegret(inst, allocationA())
	rb := exactTotalRegret(inst, allocationB())
	if math.Abs(ra-(6.5440725+0.6)) > 1e-6 {
		t.Errorf("regret(A, λ=0.1) = %.7f", ra)
	}
	if math.Abs(rb-(2.6997590+0.6)) > 1e-6 {
		t.Errorf("regret(B, λ=0.1) = %.7f", rb)
	}
}

func TestRegretTerm(t *testing.T) {
	if r := RegretTerm(10, 8, 0, 5); r != 2 {
		t.Errorf("undershoot regret %v", r)
	}
	if r := RegretTerm(10, 13, 0, 5); r != 3 {
		t.Errorf("overshoot regret %v", r)
	}
	if r := RegretTerm(10, 10, 0.5, 4); r != 2 {
		t.Errorf("seed-penalty regret %v", r)
	}
}

func TestRegretDrop(t *testing.T) {
	// Undershoot, no crossover: drop = mg − λ.
	if d := RegretDrop(5, 2, 0.1); math.Abs(d-1.9) > 1e-12 {
		t.Errorf("drop %v", d)
	}
	// Crossover: gap 5, mg 8 → |5|−|−3| = 2, minus λ.
	if d := RegretDrop(5, 8, 0); d != 2 {
		t.Errorf("crossover drop %v", d)
	}
	// Overshoot already: adding always hurts.
	if d := RegretDrop(-1, 2, 0); d != -2 {
		t.Errorf("overshoot drop %v", d)
	}
	// Exact budget hit.
	if d := RegretDrop(3, 3, 0); d != 3 {
		t.Errorf("exact-hit drop %v", d)
	}
}

// TestRegretDropIdentity property-checks drop = R(before) − R(after).
func TestRegretDropIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		budget := r.Uniform(1, 100)
		rev := r.Uniform(0, 150)
		mg := r.Uniform(0, 30)
		lambda := r.Uniform(0, 2)
		k := r.IntN(10)
		before := RegretTerm(budget, rev, lambda, k)
		after := RegretTerm(budget, rev+mg, lambda, k+1)
		return math.Abs(RegretDrop(budget-rev, mg, lambda)-(before-after)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInstanceValidate(t *testing.T) {
	inst := fig1Instance(t, 0)
	if err := inst.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	bad := *inst
	bad.Lambda = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative λ accepted")
	}
	bad = *inst
	bad.Ads = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty ads accepted")
	}
	bad = *inst
	ads := append([]Ad{}, inst.Ads...)
	ads[0].Budget = 0
	bad.Ads = ads
	if err := bad.Validate(); err == nil {
		t.Error("zero budget accepted")
	}
	bad = *inst
	ads = append([]Ad{}, inst.Ads...)
	ads[1].CPE = -2
	bad.Ads = ads
	if err := bad.Validate(); err == nil {
		t.Error("negative CPE accepted")
	}
	bad = *inst
	ads = append([]Ad{}, inst.Ads...)
	ads[2].Params.Probs = ads[2].Params.Probs[:3]
	bad.Ads = ads
	if err := bad.Validate(); err == nil {
		t.Error("short probability vector accepted")
	}
}

func TestTotalBudget(t *testing.T) {
	inst := fig1Instance(t, 0)
	if b := inst.TotalBudget(); b != 9 {
		t.Errorf("total budget %v, want 9", b)
	}
}

func TestAllocationValidate(t *testing.T) {
	inst := fig1Instance(t, 0)
	if err := allocationB().Validate(inst); err != nil {
		t.Errorf("allocation B rejected: %v", err)
	}
	// κ_u = 1, so the same user in two ads is invalid.
	dup := &Allocation{Seeds: [][]int32{{0}, {0}, nil, nil}}
	if err := dup.Validate(inst); err == nil {
		t.Error("attention violation accepted")
	}
	twice := &Allocation{Seeds: [][]int32{{0, 0}, nil, nil, nil}}
	if err := twice.Validate(inst); err == nil {
		t.Error("duplicate seed accepted")
	}
	oob := &Allocation{Seeds: [][]int32{{99}, nil, nil, nil}}
	if err := oob.Validate(inst); err == nil {
		t.Error("out-of-range seed accepted")
	}
	short := &Allocation{Seeds: [][]int32{nil}}
	if err := short.Validate(inst); err == nil {
		t.Error("wrong ad count accepted")
	}
}

func TestAllocationStats(t *testing.T) {
	a := allocationB()
	if a.NumSeeds() != 6 {
		t.Errorf("NumSeeds %d", a.NumSeeds())
	}
	if a.DistinctTargeted() != 6 {
		t.Errorf("DistinctTargeted %d", a.DistinctTargeted())
	}
	overlap := &Allocation{Seeds: [][]int32{{0, 1}, {1, 2}}}
	if overlap.NumSeeds() != 4 || overlap.DistinctTargeted() != 3 {
		t.Errorf("overlap stats %d/%d", overlap.NumSeeds(), overlap.DistinctTargeted())
	}
}

func TestAttention(t *testing.T) {
	at := NewAttention(3, ConstKappa(2))
	if !at.CanTake(0) {
		t.Fatal("fresh node rejected")
	}
	at.Take(0)
	at.Take(0)
	if at.CanTake(0) {
		t.Fatal("bound not enforced")
	}
	if at.Count(0) != 2 || at.Count(1) != 0 {
		t.Fatal("counts wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Take past bound did not panic")
		}
	}()
	at.Take(0)
}

func TestVecKappa(t *testing.T) {
	at := NewAttention(2, VecKappa{0, 3})
	if at.CanTake(0) {
		t.Error("κ=0 node accepted")
	}
	if !at.CanTake(1) {
		t.Error("κ=3 node rejected")
	}
}
