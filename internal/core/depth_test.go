package core

import (
	"testing"

	"repro/internal/xrand"
)

// TestTIRMCandidateDepthFindsSmallerNode reproduces the Algorithm 3
// limitation the extension targets: ad d (budget 1, δ=0.6) overshoots with
// the hub v3 (mg ≈ 1.26, drop ≈ 0.74) but profits more from v1
// (mg ≈ 0.85). Depth-1 TIRM may still allocate v3 to d or saturate d; with
// depth ≥ 4 the allocation regret must be no worse.
func TestTIRMCandidateDepthNoWorse(t *testing.T) {
	inst := fig1Instance(t, 0)
	shallow, err := TIRM(inst, xrand.New(2), TIRMOptions{Eps: 0.1, MinTheta: 60000, MaxTheta: 200000})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := TIRM(inst, xrand.New(2), TIRMOptions{Eps: 0.1, MinTheta: 60000, MaxTheta: 200000, CandidateDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	rs := exactTotalRegret(inst, shallow.Alloc)
	rd := exactTotalRegret(inst, deep.Alloc)
	if rd > rs+0.05 {
		t.Errorf("depth-6 regret %.4f worse than depth-1 %.4f", rd, rs)
	}
	t.Logf("fig1 regret: depth1=%.4f depth6=%.4f", rs, rd)
}

func TestTIRMCandidateDepthValid(t *testing.T) {
	for _, depth := range []int{2, 4} {
		inst := randomInstance(400+uint64(depth), 40, 160, 3, 2, 0.01)
		res, err := TIRM(inst, xrand.New(uint64(depth)), TIRMOptions{
			MinTheta: 8000, MaxTheta: 40000, CandidateDepth: depth,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Alloc.Validate(inst); err != nil {
			t.Errorf("depth %d: %v", depth, err)
		}
	}
}

func TestTIRMCandidateDepthWithSoftCoverage(t *testing.T) {
	// The two extensions compose.
	inst := fig1Instance(t, 0)
	res, err := TIRM(inst, xrand.New(3), TIRMOptions{
		MinTheta: 30000, CandidateDepth: 4, SoftCoverage: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Alloc.Validate(inst); err != nil {
		t.Fatal(err)
	}
	if regret := exactTotalRegret(inst, res.Alloc); regret > 3.2 {
		t.Errorf("combined extensions regret %.4f", regret)
	}
}
