package core

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"repro/internal/rrset"
)

// writeSnapshotV1 emits exactly the index-snapshot layout this repo shipped
// before the flat-arena refactor: version 1 header and per-ad v1 ("RRS1")
// sections. The migration tests use it to fabricate the on-disk files an
// operator upgrading from an old build still has.
func writeSnapshotV1(t *testing.T, w io.Writer, idx *Index) {
	t.Helper()
	var buf [8]byte
	w32 := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[:4], v)
		if _, err := w.Write(buf[:4]); err != nil {
			t.Fatal(err)
		}
	}
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := w.Write(buf[:]); err != nil {
			t.Fatal(err)
		}
	}
	ep := idx.curr.Load()
	w32(indexMagic)
	w32(indexVersionV1)
	w64(idx.seed)
	w64(indexFingerprint(ep.inst))
	w32(uint32(len(ep.ads)))
	for _, a := range ep.ads {
		a.mu.Lock()
		sets := a.fam.Sets()
		a.mu.Unlock()
		if err := rrset.EncodeSets(w, sets); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotV1Migration is the upgrade path end to end: a v1 snapshot
// (written before this refactor) loads, serves, re-saves as v2, and the
// allocations from the original index, the v1 load, and the v2 re-save are
// byte-identical.
func TestSnapshotV1Migration(t *testing.T) {
	inst := randomInstance(90, 40, 160, 2, 1, 0)
	opts := TIRMOptions{MinTheta: 6000, MaxTheta: 30000}
	idx, err := BuildIndex(inst, 21, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := AllocateFromIndex(idx, Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}

	// Write the legacy v1 format, as an old build would have.
	var v1 bytes.Buffer
	writeSnapshotV1(t, &v1, idx)

	// Load it with the current decoder.
	fromV1, err := LoadIndexSnapshot(inst, bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("v1 snapshot no longer loads: %v", err)
	}
	gotV1, err := AllocateFromIndex(fromV1, Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	sameAllocation(t, want.Alloc, gotV1.Alloc)
	if gotV1.TotalSetsSampled != 0 {
		t.Errorf("allocation on v1-loaded index drew %d sets", gotV1.TotalSetsSampled)
	}

	// Re-save: the writer must emit the current version...
	var v2 bytes.Buffer
	if err := fromV1.WriteSnapshot(&v2); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(v2.Bytes()[4:8]); got != indexVersion {
		t.Fatalf("re-saved snapshot has version %d, want %d", got, indexVersion)
	}
	// ...and be smaller or equal (flat layout drops per-set framing) while
	// still loading to the identical allocation.
	fromV2, err := LoadIndexSnapshot(inst, bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	gotV2, err := AllocateFromIndex(fromV2, Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	sameAllocation(t, want.Alloc, gotV2.Alloc)
	for i := range want.EstRevenue {
		if want.EstRevenue[i] != gotV1.EstRevenue[i] || want.EstRevenue[i] != gotV2.EstRevenue[i] {
			t.Errorf("ad %d est revenue diverged: %v vs %v vs %v",
				i, want.EstRevenue[i], gotV1.EstRevenue[i], gotV2.EstRevenue[i])
		}
	}

	// Stored samples must be bit-equal across the three states.
	origAds := idx.curr.Load().ads
	v1Ads := fromV1.curr.Load().ads
	v2Ads := fromV2.curr.Load().ads
	for j := range origAds {
		a, b, c := origAds[j], v1Ads[j], v2Ads[j]
		if a.fam.Len() != b.fam.Len() || a.fam.Len() != c.fam.Len() {
			t.Fatalf("ad %d set counts: %d vs %d vs %d", j, a.fam.Len(), b.fam.Len(), c.fam.Len())
		}
		for i := 0; i < a.fam.Len(); i++ {
			sa, sb, sc := a.fam.Set(i), b.fam.Set(i), c.fam.Set(i)
			if len(sa) != len(sb) || len(sa) != len(sc) {
				t.Fatalf("ad %d set %d lengths differ", j, i)
			}
			for k := range sa {
				if sa[k] != sb[k] || sa[k] != sc[k] {
					t.Fatalf("ad %d set %d member %d differs", j, i, k)
				}
			}
		}
	}
}

// TestSnapshotV1CorruptSection: v1 sections keep their bounds checking
// through the new decoder.
func TestSnapshotV1CorruptSection(t *testing.T) {
	inst := randomInstance(90, 40, 160, 1, 1, 0)
	idx, err := BuildIndex(inst, 3, TIRMOptions{MinTheta: 512, MaxTheta: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var v1 bytes.Buffer
	writeSnapshotV1(t, &v1, idx)
	raw := v1.Bytes()
	if _, err := LoadIndexSnapshot(inst, bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Error("truncated v1 snapshot accepted")
	}
	bad := append([]byte{}, raw...)
	bad[28] ^= 0xff // first section's magic
	if _, err := LoadIndexSnapshot(inst, bytes.NewReader(bad)); err == nil {
		t.Error("corrupt v1 section magic accepted")
	}
}
