package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

// lifecycleOpts keeps the lifecycle tests fast: small pilot, tight cap.
var lifecycleOpts = TIRMOptions{MinTheta: 4000, MaxTheta: 20000}

// TestAddAdMatchesColdBuild pins the acceptance criterion: growing a warm
// index with AddAd must yield byte-identical allocations to a cold
// BuildIndex over the same final ad set and seed, because stream ids equal
// the positions a cold build would assign (no removals in the history).
func TestAddAdMatchesColdBuild(t *testing.T) {
	full := randomInstance(123, 50, 200, 4, 2, 0.005)

	partial := *full
	partial.Ads = full.Ads[:2]
	warm, err := BuildIndex(&partial, 9, lifecycleOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, ad := range full.Ads[2:] {
		if _, err := warm.AddAd(ad, lifecycleOpts); err != nil {
			t.Fatal(err)
		}
	}
	cold, err := BuildIndex(full, 9, lifecycleOpts)
	if err != nil {
		t.Fatal(err)
	}

	req := Request{Opts: lifecycleOpts}
	fromWarm, err := AllocateFromIndex(warm, req)
	if err != nil {
		t.Fatal(err)
	}
	fromCold, err := AllocateFromIndex(cold, req)
	if err != nil {
		t.Fatal(err)
	}
	sameAllocation(t, fromCold.Alloc, fromWarm.Alloc)
	for i := range fromCold.EstRevenue {
		if fromCold.EstRevenue[i] != fromWarm.EstRevenue[i] {
			t.Errorf("ad %d est revenue %v (cold) vs %v (warm+AddAd)", i, fromCold.EstRevenue[i], fromWarm.EstRevenue[i])
		}
		if fromCold.FinalTheta[i] != fromWarm.FinalTheta[i] {
			t.Errorf("ad %d θ %d (cold) vs %d (warm+AddAd)", i, fromCold.FinalTheta[i], fromWarm.FinalTheta[i])
		}
	}
}

// TestRemoveThenAddSameAd: removing an advertiser and re-adding the same
// spec must work, append at the end, advance the epoch, and stay
// deterministic — but the re-added ad draws a fresh stream (ids are never
// reused), so its sample need not match the departed one's.
func TestRemoveThenAddSameAd(t *testing.T) {
	inst := randomInstance(7, 40, 160, 3, 2, 0)
	idx, err := BuildIndex(inst, 3, lifecycleOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Epoch(); got != 1 {
		t.Fatalf("fresh index at epoch %d, want 1", got)
	}
	departed := inst.Ads[1]
	if err := idx.RemoveAd(1); err != nil {
		t.Fatal(err)
	}
	if got := idx.NumAds(); got != 2 {
		t.Fatalf("after removal NumAds = %d, want 2", got)
	}
	pos, err := idx.AddAd(departed, lifecycleOpts)
	if err != nil {
		t.Fatal(err)
	}
	if pos != 2 {
		t.Errorf("re-added ad landed at position %d, want 2 (appended)", pos)
	}
	if got := idx.Epoch(); got != 3 {
		t.Errorf("after remove+add epoch = %d, want 3", got)
	}
	curr := idx.Inst()
	wantNames := []string{inst.Ads[0].Name, inst.Ads[2].Name, departed.Name}
	for j, want := range wantNames {
		if curr.Ads[j].Name != want {
			t.Errorf("ad %d is %q, want %q", j, curr.Ads[j].Name, want)
		}
	}

	req := Request{Opts: lifecycleOpts}
	first, err := AllocateFromIndex(idx, req)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Alloc.Validate(curr); err != nil {
		t.Fatal(err)
	}
	second, err := AllocateFromIndex(idx, req)
	if err != nil {
		t.Fatal(err)
	}
	sameAllocation(t, first.Alloc, second.Alloc)
	if second.TotalSetsSampled != 0 {
		t.Errorf("repeat allocation drew %d sets", second.TotalSetsSampled)
	}
}

// TestAllocationPinnedAcrossEpochSwap: a run that captured an epoch before
// a mutation finishes on exactly that view — same allocation as before the
// swap — and a request pinned with Request.Epoch is refused after the swap.
func TestAllocationPinnedAcrossEpochSwap(t *testing.T) {
	inst := randomInstance(55, 40, 160, 3, 2, 0)
	idx, err := BuildIndex(inst, 17, lifecycleOpts)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Opts: lifecycleOpts}
	pinned := idx.curr.Load()
	before, err := AllocateFromIndex(idx, req)
	if err != nil {
		t.Fatal(err)
	}

	extra := inst.Ads[0]
	extra.Name = "late-arrival"
	if _, err := idx.AddAd(extra, lifecycleOpts); err != nil {
		t.Fatal(err)
	}
	if err := idx.RemoveAd(0); err != nil {
		t.Fatal(err)
	}

	// The captured epoch still serves the pre-mutation campaign set.
	after, err := allocateEpoch(idx, pinned, req)
	if err != nil {
		t.Fatal(err)
	}
	sameAllocation(t, before.Alloc, after.Alloc)
	if len(after.Alloc.Seeds) != len(inst.Ads) {
		t.Errorf("pinned run covers %d ads, want the old epoch's %d", len(after.Alloc.Seeds), len(inst.Ads))
	}

	// A request pinned to the stale epoch is refused, not misapplied.
	stale := req
	stale.Epoch = pinned.version
	if _, err := AllocateFromIndex(idx, stale); !errors.Is(err, ErrStaleEpoch) {
		t.Errorf("stale-epoch request returned %v, want ErrStaleEpoch", err)
	}
	fresh := req
	fresh.Epoch = idx.Epoch()
	if _, err := AllocateFromIndex(idx, fresh); err != nil {
		t.Errorf("current-epoch pinned request failed: %v", err)
	}
}

// TestResidualBudgets: spent = 0 is exactly a fresh request; spending an
// ad's full budget silences it; partial spend targets the residual.
func TestResidualBudgets(t *testing.T) {
	inst := randomInstance(91, 50, 200, 3, 2, 0)
	idx, err := BuildIndex(inst, 13, lifecycleOpts)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Opts: lifecycleOpts}
	fresh, err := AllocateFromIndex(idx, req)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("zero-spend-equivalent", func(t *testing.T) {
		res, err := AllocateFromIndex(idx, Request{Opts: lifecycleOpts, SpentBudget: make([]float64, 3)})
		if err != nil {
			t.Fatal(err)
		}
		sameAllocation(t, fresh.Alloc, res.Alloc)
		for i := range fresh.EstRevenue {
			if fresh.EstRevenue[i] != res.EstRevenue[i] {
				t.Errorf("ad %d est revenue %v vs %v with zero spend", i, fresh.EstRevenue[i], res.EstRevenue[i])
			}
		}
	})

	t.Run("depleted-ad-gets-nothing", func(t *testing.T) {
		spent := []float64{inst.Ads[0].Budget, 0, 0}
		res, err := AllocateFromIndex(idx, Request{Opts: lifecycleOpts, SpentBudget: spent})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Alloc.Seeds[0]) != 0 {
			t.Errorf("fully spent ad 0 still got seeds %v", res.Alloc.Seeds[0])
		}
		if res.FinalTheta[0] != 0 {
			t.Errorf("fully spent ad 0 paid for θ = %d", res.FinalTheta[0])
		}
	})

	t.Run("partial-spend-shrinks", func(t *testing.T) {
		spent := []float64{inst.Ads[0].Budget * 0.75, 0, 0}
		res, err := AllocateFromIndex(idx, Request{Opts: lifecycleOpts, SpentBudget: spent})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Alloc.Seeds[0]) > len(fresh.Alloc.Seeds[0]) {
			t.Errorf("residual budget allocated more seeds (%d) than the full budget (%d)",
				len(res.Alloc.Seeds[0]), len(fresh.Alloc.Seeds[0]))
		}
	})

	t.Run("invalid", func(t *testing.T) {
		if _, err := AllocateFromIndex(idx, Request{Opts: lifecycleOpts, SpentBudget: []float64{1}}); err == nil {
			t.Error("short spent vector accepted")
		}
		if _, err := AllocateFromIndex(idx, Request{Opts: lifecycleOpts, SpentBudget: []float64{-1, 0, 0}}); err == nil {
			t.Error("negative spend accepted")
		}
	})
}

// TestLifecycleSnapshotRoundTrip: a snapshot taken after mutations carries
// the per-ad stream ids (format v3), so the reloaded index serves
// byte-identical allocations without drawing a single set.
func TestLifecycleSnapshotRoundTrip(t *testing.T) {
	inst := randomInstance(31, 40, 160, 3, 2, 0)
	idx, err := BuildIndex(inst, 21, lifecycleOpts)
	if err != nil {
		t.Fatal(err)
	}
	extra := inst.Ads[2]
	extra.Name = "joined-late"
	// Distinct edge probabilities: the fingerprint hashes per-ad probs, so
	// the mutated campaign must not pass for the original one below.
	probs := append([]float32{}, extra.Params.Probs...)
	probs[0] = probs[0]/2 + 0.1
	extra.Params.Probs = probs
	if _, err := idx.AddAd(extra, lifecycleOpts); err != nil {
		t.Fatal(err)
	}
	if err := idx.RemoveAd(1); err != nil {
		t.Fatal(err)
	}
	curr := idx.Inst()

	want, err := AllocateFromIndex(idx, Request{Opts: lifecycleOpts})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndexSnapshot(curr, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := AllocateFromIndex(loaded, Request{Opts: lifecycleOpts})
	if err != nil {
		t.Fatal(err)
	}
	sameAllocation(t, want.Alloc, got.Alloc)
	if got.TotalSetsSampled != 0 {
		t.Errorf("allocation on reloaded mutated index drew %d sets", got.TotalSetsSampled)
	}
	// The mutated instance has its own fingerprint: the base instance must
	// no longer accept the snapshot.
	if _, err := LoadIndexSnapshot(inst, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("mutated-campaign snapshot accepted for the pre-mutation instance")
	}
	// The re-added streams survive another save/load cycle.
	if err := loaded.RemoveAd(0); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := loaded.WriteSnapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndexSnapshot(loaded.Inst(), bytes.NewReader(buf2.Bytes())); err != nil {
		t.Fatalf("second-generation snapshot failed to load: %v", err)
	}
}

// TestLifecycleSnapshotHeaderCorruption: the v3 header CRC catches a
// corrupted stream id — family-section CRCs and the instance fingerprint
// cover neither, and a silently wrong stream id would make post-reload
// growth diverge from the original index undetected.
func TestLifecycleSnapshotHeaderCorruption(t *testing.T) {
	inst := randomInstance(3, 30, 90, 2, 1, 0)
	idx, err := BuildIndex(inst, 9, TIRMOptions{MinTheta: 512, MaxTheta: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndexSnapshot(inst, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	// Header layout: magic(4) version(4) seed(8) fp(8) numAds(4) streams…
	// Byte 30 sits inside ad 0's stream id.
	corrupt := append([]byte{}, buf.Bytes()...)
	corrupt[30] ^= 0x01
	if _, err := LoadIndexSnapshot(inst, bytes.NewReader(corrupt)); err == nil {
		t.Error("snapshot with corrupted stream id accepted")
	}
	// A flipped CRC byte must also fail (CRC sits right after the streams).
	crcOff := 8 + 8 + 8 + 4 + 8*len(inst.Ads)
	corrupt = append([]byte{}, buf.Bytes()...)
	corrupt[crcOff] ^= 0xff
	if _, err := LoadIndexSnapshot(inst, bytes.NewReader(corrupt)); err == nil {
		t.Error("snapshot with corrupted header CRC accepted")
	}
}

// TestLifecycleMutationErrors: structural misuse is refused.
func TestLifecycleMutationErrors(t *testing.T) {
	inst := randomInstance(5, 30, 90, 2, 1, 0)
	idx, err := BuildIndex(inst, 1, TIRMOptions{MinTheta: 512, MaxTheta: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.RemoveAd(5); err == nil {
		t.Error("out-of-range removal accepted")
	}
	bad := inst.Ads[0]
	bad.Budget = -1
	if _, err := idx.AddAd(bad, TIRMOptions{}); err == nil {
		t.Error("invalid ad accepted")
	}
	if err := idx.RemoveAd(0); err != nil {
		t.Fatal(err)
	}
	if err := idx.RemoveAd(0); err == nil {
		t.Error("removing the last ad accepted")
	}
}

// TestLifecycleConcurrency hammers allocations against concurrent campaign
// mutations — the race detector is the assertion (plus: every run must
// return a structurally consistent result for whatever epoch it captured).
func TestLifecycleConcurrency(t *testing.T) {
	inst := randomInstance(77, 40, 160, 3, 2, 0)
	opts := TIRMOptions{MinTheta: 1024, MaxTheta: 4096}
	idx, err := BuildIndex(inst, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				res, err := AllocateFromIndex(idx, Request{Opts: opts})
				if err != nil {
					t.Errorf("concurrent allocation: %v", err)
					return
				}
				if len(res.Alloc.Seeds) < 2 {
					t.Errorf("allocation covers %d ads, want ≥ 2", len(res.Alloc.Seeds))
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			extra := inst.Ads[i%len(inst.Ads)]
			extra.Name = "churn"
			if _, err := idx.AddAd(extra, opts); err != nil {
				t.Errorf("concurrent AddAd: %v", err)
				return
			}
			if err := idx.RemoveAd(idx.NumAds() - 1); err != nil {
				t.Errorf("concurrent RemoveAd: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}
