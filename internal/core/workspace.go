// Workspace pooling and bounded parallelism for the warm allocation path.
//
// AllocateFromIndex is the per-request hot path of internal/serve and the
// inner loop of internal/sim: the index already holds every RR-set, so a
// request is pure selection — and at serving rates the transient state a
// run needs (per-ad coverage collections, attention counters, candidate
// buffers) must be recycled, not reallocated. A WorkspacePool hands each
// run an allocWorkspace whose arrays survive across requests; the runs
// reinitialize them with memclr-style loops and return them on exit.
//
// The same file hosts adRunner, the bounded worker group that fans per-ad
// work (coverage-state initialization, the per-iteration candidate scan)
// out across CPUs. Per-ad work touches only that ad's state, and the
// reduction over per-ad results happens sequentially in ad order, so the
// allocation a parallel run produces is byte-identical to the serial one
// (pinned by TestAllocateFromIndexParallelAndPooled and the golden tests).

package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/rrset"
	"repro/internal/topic"
)

// WorkspacePool recycles the transient per-request state of
// AllocateFromIndex (coverage workspaces, attention counters, candidate
// and scratch buffers) via a sync.Pool, making warm allocations against a
// grown index nearly allocation-free. The zero value is ready to use; a
// pool is safe for concurrent use and can serve any mix of requests and
// indexes, though hit rates (and array-shape reuse) are best when a pool
// is dedicated to one index — internal/serve attaches one to each cache
// entry. Requests that do not name a pool share a process-wide default.
type WorkspacePool struct {
	pool   sync.Pool
	hits   atomic.Int64
	misses atomic.Int64
}

// defaultWorkspacePool serves requests whose Request.Pool is nil, so every
// caller — TIRM, the sim loop, CLI one-shots — gets workspace reuse by
// default.
var defaultWorkspacePool WorkspacePool

// Stats reports how many workspace acquisitions were served from the pool
// (hits) versus freshly constructed (misses). Misses after warm-up mean
// the GC reclaimed parked workspaces or concurrency exceeded the pool's
// retained size.
func (p *WorkspacePool) Stats() (hits, misses int64) {
	return p.hits.Load(), p.misses.Load()
}

// get acquires a workspace, constructing one only when the pool is empty.
func (p *WorkspacePool) get() *allocWorkspace {
	if ws, ok := p.pool.Get().(*allocWorkspace); ok {
		p.hits.Add(1)
		return ws
	}
	p.misses.Add(1)
	return newAllocWorkspace()
}

// put parks a workspace for reuse after dropping every reference it holds
// into index-owned memory (so an idle pool never pins a retired index's
// arenas live).
func (p *WorkspacePool) put(ws *allocWorkspace) {
	ws.release()
	p.pool.Put(ws)
}

// allocWorkspace is the recycled state of one AllocateFromIndex run: one
// selAd slot (with its rrset.Workspace) per ad the run touches, the
// attention tracker, and the scratch lists the main loop iterates over.
// The eligibility closure is built once — it reads the attention tracker
// through a stable pointer — so the hot loop never materializes closures.
type allocWorkspace struct {
	slots     []*selAd
	ads       []*selAd // active ads this run, in request ad order
	active    []*selAd // per-iteration scratch: ads still unsaturated
	attention *Attention
	eligible  func(int32) bool
}

func newAllocWorkspace() *allocWorkspace {
	w := &allocWorkspace{attention: &Attention{}}
	w.eligible = func(u int32) bool { return w.attention.CanTake(u) }
	return w
}

// slot returns the i-th persistent per-ad slot, growing the slot list on
// first use. Slots keep their buffers (coverage workspaces, candidate
// arrays, seed-mass backing) across runs.
func (w *allocWorkspace) slot(i int) *selAd {
	for len(w.slots) <= i {
		w.slots = append(w.slots, &selAd{
			ws:      rrset.NewWorkspace(),
			powMemo: make(map[int64]float64, 128),
		})
	}
	return w.slots[i]
}

// release drops index references (sample handles, CTP vectors, width
// slices, coverage views) while keeping every workspace-owned array.
func (w *allocWorkspace) release() {
	for _, a := range w.slots {
		a.src = nil
		a.ctps = nil
		a.widths = nil
		a.seeds = nil // owned by the returned result now
		a.col.hard = nil
		a.col.soft = nil
		a.ws.Release()
	}
	w.ads = w.ads[:0]
	w.active = w.active[:0]
	w.attention.bounds = nil
}

// reset prepares the attention tracker for a fresh run over n users —
// NewAttention semantics on recycled storage.
func (at *Attention) reset(n int, bounds AttentionBounds) {
	if cap(at.counts) < n {
		at.counts = make([]int32, n)
	}
	at.counts = at.counts[:n]
	for i := range at.counts {
		at.counts[i] = 0
	}
	at.bounds = bounds
}

// scanWorkers resolves how many goroutines a run may fan per-ad work out
// to: the package-wide rrset.SetMaxWorkers cap (so one operator knob
// bounds both sampling and selection parallelism), GOMAXPROCS by default,
// never more than the number of independent work units.
func scanWorkers(limit int) int {
	w := rrset.MaxWorkers()
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > limit {
		w = limit
	}
	if w < 1 {
		w = 1
	}
	return w
}

// adRunner fans per-ad closures out to a bounded worker group that lives
// for one allocation run. Work items are sent over an unbuffered channel
// (no per-iteration goroutine spawning or closure garbage); each barrier
// (`each`) returns only when every dispatched item completed, which also
// sequences the runner's phase-function swaps. With one worker (or one
// ad) it degrades to inline calls — no goroutines at all.
type adRunner struct {
	work chan *selAd
	wg   sync.WaitGroup
	run  func(*selAd)
}

// newAdRunner starts workers sized by scanWorkers(numAds). Callers must
// stop() the runner (workers would otherwise block on the work channel
// forever — a leak when the owning workspace is pooled).
func newAdRunner(numAds int) *adRunner {
	r := &adRunner{}
	workers := scanWorkers(numAds)
	if workers <= 1 {
		return r
	}
	r.work = make(chan *selAd)
	for k := 0; k < workers; k++ {
		go func() {
			for a := range r.work {
				r.run(a)
				r.wg.Done()
			}
		}()
	}
	return r
}

// each runs fn over every ad and returns when all calls completed. fn must
// touch only the given ad's state plus read-only shared inputs; the
// preceding barrier's wg.Wait makes the phase-function swap race-free.
func (r *adRunner) each(ads []*selAd, fn func(*selAd)) {
	if r.work == nil || len(ads) <= 1 {
		for _, a := range ads {
			fn(a)
		}
		return
	}
	r.run = fn
	r.wg.Add(len(ads))
	for _, a := range ads {
		r.work <- a
	}
	r.wg.Wait()
}

// stop terminates the worker group.
func (r *adRunner) stop() {
	if r.work != nil {
		close(r.work)
	}
}

// covState dispatches one ad's coverage bookkeeping to the active mode:
// the paper's hard set removal (rrset.Collection) or the TIRM-W soft
// weights (rrset.WeightedCollection). It replaces an interface pair so the
// hot path pays no boxing, and it owns the candidate result buffers that
// make the per-iteration TopNodes scan allocation-free. Scores are in "set
// mass" units: a candidate's marginal revenue is cpe·n·δ(u)·score/θ, and
// commit/creditFrom return the δ-scaled mass actually claimed (= δ·score
// at commit time).
type covState struct {
	hard   *rrset.Collection
	soft   *rrset.WeightedCollection
	nodes  []int32
	covs   []int
	scores []float64
}

// topNodes returns up to k eligible candidates in decreasing score order,
// reusing the state's buffers; the results are valid until the next call.
func (cs *covState) topNodes(k int, eligible func(int32) bool) ([]int32, []float64) {
	if cs.hard != nil {
		cs.nodes, cs.covs = cs.hard.TopNodesInto(k, eligible, cs.nodes, cs.covs)
		cs.scores = cs.scores[:0]
		for _, c := range cs.covs {
			cs.scores = append(cs.scores, float64(c))
		}
		return cs.nodes, cs.scores
	}
	cs.nodes, cs.scores = cs.soft.TopNodesInto(k, eligible, cs.nodes, cs.scores)
	return cs.nodes, cs.scores
}

// addFamily feeds freshly sampled sets to the coverage state.
func (cs *covState) addFamily(v rrset.FamilyView) {
	if cs.hard != nil {
		cs.hard.AddFamily(v)
		return
	}
	cs.soft.AddFamily(v)
}

// numSets returns the number of sets the state covers.
func (cs *covState) numSets() int {
	if cs.hard != nil {
		return cs.hard.NumSets()
	}
	return cs.soft.NumSets()
}

// commit claims u's residual coverage mass (hard: remove covered sets;
// soft: decay weights by 1−δ).
func (cs *covState) commit(u int32, delta float64) float64 {
	if cs.hard != nil {
		return delta * float64(cs.hard.CoverNode(u))
	}
	return cs.soft.Commit(u, delta)
}

// creditFrom is commit restricted to sets with id ≥ firstID (Algorithm 4).
func (cs *covState) creditFrom(u int32, delta float64, firstID int) float64 {
	if cs.hard != nil {
		return delta * float64(cs.hard.CountAndCoverFrom(u, firstID))
	}
	return cs.soft.CreditFrom(u, delta, firstID)
}

// coveredMass returns the total claimed set mass.
func (cs *covState) coveredMass() float64 {
	if cs.hard != nil {
		return float64(cs.hard.NumCovered())
	}
	return cs.soft.CoveredMass()
}

// drop permanently removes a node from candidate consideration.
func (cs *covState) drop(u int32) {
	if cs.hard != nil {
		cs.hard.Drop(u)
		return
	}
	cs.soft.Drop(u)
}

// memBytes reports the coverage state's exact footprint.
func (cs *covState) memBytes() int64 {
	if cs.hard != nil {
		return cs.hard.MemBytes()
	}
	return cs.soft.MemBytes()
}

// delta returns the ad's click-through probability for u — kept as an
// interface call on the stored topic.CTP rather than a bound-method
// closure, which would allocate per ad per request.
func (a *selAd) delta(u int32) float64 { return a.ctps.At(u) }

// reset prepares a recycled slot for one run's ad.
func (a *selAd) reset(j int, cpe, budget float64, ctps topic.CTP, src *adSample) {
	a.j = j
	a.cpe = cpe
	a.budget = budget
	a.ctps = ctps
	a.src = src
	a.haveBefore = src.size()
	a.widths = nil
	a.theta = 0
	a.sTarget = 1
	a.fresh = 0
	a.revenue = 0
	a.seeds = nil
	a.seedMass = a.seedMass[:0]
	a.saturated = false
	a.candOK = false
	a.kernel = rrset.KernelSparse
}
