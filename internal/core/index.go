package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/rrset"
	"repro/internal/topic"
	"repro/internal/xrand"
)

// Index is a reusable per-ad RR-set sample for one problem instance. It is
// the expensive half of TIRM made into a long-lived asset: building it pays
// the reverse-BFS sampling cost once, and any number of selection runs
// (AllocateFromIndex) with different budgets, λ, κ, options, or ad subsets
// then run against the shared sample.
//
// Every set in the index is drawn from the deterministic block stream of
// rrset.SampleRangeRRInto: set i of the ad with stream id t is a pure
// function of (graph, probs, seed, t, i). The sample therefore grows on
// demand — an allocation needing a larger θ than any before it extends the
// stored prefix — yet stays byte-identical no matter which requests arrived
// in which order, and a snapshot reloaded from disk continues the very same
// stream. Safe for concurrent use by multiple allocations.
//
// The campaign set is mutable: AddAd samples a new advertiser's stream
// without touching the existing ones, and RemoveAd drops an advertiser's
// arena. Mutations swap an immutable epoch (instance + ad-sample list)
// behind an atomic pointer, so every allocation runs start to finish on the
// consistent view it captured, concurrent with any number of epoch swaps
// (see Epoch).
type Index struct {
	seed uint64
	// part is the index's slice of every ad's block stream. The identity
	// partition (single node) owns the whole stream; a shard index
	// (BuildShardIndex) samples only its own blocks, stores them as a
	// contiguous local arena in ascending global order, and answers the
	// global-position queries of EpochView by translating through part.
	// Selection over a non-identity index is meaningless on its own —
	// AllocateFromIndex refuses it; the shard coordinator (internal/shard)
	// aggregates coverage across the full partition instead.
	part    rrset.StreamPartition
	curr    atomic.Pointer[indexEpoch]
	mu      sync.Mutex // serializes AddAd/RemoveAd epoch swaps
	next    uint64     // next ad stream id to assign (guarded by mu)
	sampled atomic.Int64
}

// indexEpoch is one immutable version of the index's campaign set: the
// instance and the per-ad samples, positionally aligned. Mutations build a
// new epoch and swap the pointer; samples shared between epochs are the
// same *adSample (their internal growth is independently synchronized), so
// an in-flight allocation that captured an older epoch keeps a fully
// consistent ad set while later requests see the new one.
type indexEpoch struct {
	version uint64
	inst    *Instance
	ads     []*adSample
}

// ErrStaleEpoch is returned by AllocateFromIndex when Request.Epoch names
// an epoch other than the index's current one — a campaign mutation landed
// between the caller capturing its view and the allocation starting.
var ErrStaleEpoch = errors.New("core: index epoch changed since the request was prepared")

// adSample holds one ad's growable prefix of its RR stream as a flat CSR
// arena (rrset.SetFamily), together with the CSR inverted index
// (node → containing set ids) that coverage collections borrow, so a warm
// selection run never rebuilds per-membership state. The arena makes the
// whole sample a handful of allocations — GC-quiet at tens of millions of
// sets — and snapshots serialize it in bulk.
type adSample struct {
	stream  uint64 // stream id: the Split index of rng under the index seed
	part    rrset.StreamPartition
	mu      sync.Mutex
	sampler *rrset.Sampler
	rng     *xrand.Rand // ad stream root; block b samples from rng.Split(b)
	fam     *rrset.SetFamily
	// streamLen is the global block-aligned stream prefix the local arena
	// covers: every part-owned block below it is sampled. For the identity
	// partition it always equals fam.Len().
	streamLen int
	widths    []int64 // widths[i] = ω(local set i), for KPT refreshes
	inv       *rrset.Inverted
	invLen    int // local sets covered by inv; may lag fam until a view needs it
	// kptCache memoizes kptFromWidths over this ad's immutable pilot
	// widths, keyed by (pilot size, seed target): steady serving traffic
	// revisits the same handful of keys on every request, and each hit
	// saves a full O(pilot) Pow pass. Guarded by mu; bounded (see kptFor).
	kptCache map[kptKey]float64
}

// kptKey identifies one cached KPT evaluation: the pilot-sample size the
// request's MinTheta selected and the seed target s.
type kptKey struct {
	pilot int
	s     int
}

// kptCacheCap bounds each ad's KPT cache; distinct (pilot, s) pairs grow
// with traffic diversity, so past the cap the cache resets wholesale (the
// steady-state working set re-fills in one request).
const kptCacheCap = 256

// kptFor returns kptFromWidths(widths, s, n, m) through the ad's cache.
// widths must be the pilot prefix of this ad's stream (immutable, so the
// cached value is a pure function of the key). memo is the caller's
// scratch for cache misses. The value is computed outside the lock; a
// racing duplicate computation yields the identical float, so last-write
// is harmless.
func (a *adSample) kptFor(widths []int64, s, n int, m int64, memo map[int64]float64) float64 {
	key := kptKey{pilot: len(widths), s: s}
	a.mu.Lock()
	if v, ok := a.kptCache[key]; ok {
		a.mu.Unlock()
		return v
	}
	a.mu.Unlock()
	v := kptFromWidths(widths, s, n, m, memo)
	a.mu.Lock()
	if a.kptCache == nil {
		a.kptCache = make(map[kptKey]float64, 16)
	} else if len(a.kptCache) >= kptCacheCap {
		clear(a.kptCache)
	}
	a.kptCache[key] = v
	a.mu.Unlock()
	return v
}

// ensure extends the sample so the local arena covers the global stream
// prefix [0, want) — i.e. every part-owned set below want (growth rounds up
// to a block boundary, so fresh can exceed the shortfall; for the identity
// partition "covers" means "holds all of it"). The inverted index is
// NOT touched here: prefix/window consumers never need it, so growth stays
// O(new members) and the rebuild is deferred to syncInv. fresh counts local
// sets drawn, which summed across a full partition equals the global
// count. Caller holds a.mu.
func (a *adSample) ensure(want int) (fresh int64) {
	to := rrset.StreamCeil(want)
	if a.part.LocalCount(to) <= a.fam.Len() {
		return 0
	}
	before := a.fam.Len()
	a.sampler.SampleShardRangeRRInto(a.part, a.streamLen, to, a.rng, a.fam)
	a.streamLen = to
	g := a.sampler.Graph()
	for i := before; i < a.fam.Len(); i++ {
		a.widths = append(a.widths, rrset.Width(g, a.fam.Set(i)))
	}
	return int64(a.fam.Len() - before)
}

// syncInv makes the inverted index cover at least the first want sets,
// rebuilding it over the whole arena in one counting pass when it has
// fallen behind — run only when a consumer actually needs that coverage
// (view, or BuildIndex's explicit warm-up), never on plain sample growth.
// An index that already covers want sets is served as is even if the arena
// has grown past it (collections clip rows to their view anyway), so the
// steady-state serving workload — fixed θ_init, mid-run growth through
// window() — triggers no rebuilds at all after the first build; only a
// rising θ_init pays one, and θ targets rise geometrically in practice.
// The previous index is left for concurrent views that captured it
// (immutable, swapped wholesale). Caller holds a.mu.
func (a *adSample) syncInv(want int) {
	if a.inv == nil || a.invLen < want {
		a.inv = rrset.BuildInverted(a.sampler.Graph().N(), a.fam.View(), 0)
		a.invLen = a.fam.Len()
		// Build the commit-path cover join now, while we are already paying
		// an index (re)build, so the first allocation does not construct it
		// inline on the request path.
		a.inv.PrepareCover()
	}
}

// prefix returns a view of the first want sets and their widths, extending
// the sample if needed. The returned view is a stable snapshot: later
// growth appends past its length or reallocates the arena, never touching
// the viewed prefix.
func (a *adSample) prefix(want int) (v rrset.FamilyView, widths []int64, fresh int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	fresh = a.ensure(want)
	lw := a.part.LocalCount(want)
	return a.fam.Prefix(lw), a.widths[:lw:lw], fresh
}

// view is prefix plus the shared inverted index — the O(n log d) warm-start
// handoff to rrset.NewCollectionFromFamily, which clips the index's rows to
// the first want sets without copying. The returned index may cover more
// sets than the view; it is immutable (growth swaps in a rebuilt one), so
// concurrent allocations can keep reading it.
func (a *adSample) view(want int) (v rrset.FamilyView, widths []int64, inv *rrset.Inverted, fresh int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	fresh = a.ensure(want)
	lw := a.part.LocalCount(want)
	a.syncInv(lw)
	return a.fam.Prefix(lw), a.widths[:lw:lw], a.inv, fresh
}

// window returns the local slice of global stream sets [from, to) as a
// stable view, growing the sample if needed — the slice a selection run
// feeds to its coverage state when θ grows mid-run.
func (a *adSample) window(from, to int) (v rrset.FamilyView, fresh int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	fresh = a.ensure(to)
	return a.fam.Window(a.part.LocalCount(from), a.part.LocalCount(to)), fresh
}

// size returns the number of sets currently stored.
func (a *adSample) size() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.fam.Len()
}

// memBytes returns the exact data footprint of the stored sample: member
// arena, offsets, widths, and the inverted index. O(1) — flat arrays know
// their sizes.
func (a *adSample) memBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := a.fam.MemBytes() + 8*int64(len(a.widths))
	if a.inv != nil {
		total += a.inv.MemBytes()
	}
	return total
}

// BuildIndex creates the index for an instance and presamples every ad in
// parallel to the size TIRM's initialization would draw (the MinTheta pilot
// plus the first Eq. 5 target from the pilot's KPT estimate), so that
// subsequent allocations with compatible options rarely need to sample.
// opts only controls how much is presampled — never the content of the
// stream — so an index built with one option set serves allocations under
// any other.
func BuildIndex(inst *Instance, seed uint64, opts TIRMOptions) (*Index, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	idx := newIndexSkeleton(inst, seed, rrset.StreamPartition{})
	ep := idx.curr.Load()
	var wg sync.WaitGroup
	for _, a := range ep.ads {
		wg.Add(1)
		go func(a *adSample) {
			defer wg.Done()
			idx.presample(a, opts)
		}(a)
	}
	wg.Wait()
	return idx, nil
}

// BuildShardIndex creates the index for one shard of a stream partition:
// per-ad samples that hold only the part-owned blocks of every stream, in
// ascending global order. No presampling happens here — a shard cannot
// size θ on its own (KPT needs the pilot widths of the *whole* stream), so
// the shard coordinator drives warm-up globally through EpochView. A
// sharded index refuses AllocateFromIndex; it is a sample store for
// internal/shard.
func BuildShardIndex(inst *Instance, seed uint64, part rrset.StreamPartition) (*Index, error) {
	if err := part.Validate(); err != nil {
		return nil, err
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return newIndexSkeleton(inst, seed, part), nil
}

// presample extends one ad's sample to the size TIRM's initialization would
// draw (pilot + first Eq. 5 target), then builds the inverted index over
// the full presample so the first allocation starts warm instead of paying
// the counting pass on the request path.
func (idx *Index) presample(a *adSample, opts TIRMOptions) {
	g := a.sampler.Graph()
	n, m := g.N(), g.M()
	_, widths, fresh := a.prefix(opts.MinTheta)
	idx.sampled.Add(fresh)
	kpt := a.kptFor(widths, 1, n, m, nil)
	want := rrset.Theta(int64(n), 1, opts.Eps, opts.Ell, kpt, opts.MinTheta, opts.MaxTheta)
	_, _, fresh = a.prefix(want)
	idx.sampled.Add(fresh)
	a.mu.Lock()
	a.syncInv(a.fam.Len())
	a.mu.Unlock()
}

// newIndexSkeleton wires samplers and per-ad streams without sampling. Ad j
// of the initial campaign set gets stream id j, which is what makes a fresh
// build followed by AddAd calls byte-identical to a cold build over the
// final ad set: stream ids always equal the positions a cold BuildIndex
// would assign, as long as no ad was removed in between.
func newIndexSkeleton(inst *Instance, seed uint64, part rrset.StreamPartition) *Index {
	idx := &Index{seed: seed, part: part, next: uint64(len(inst.Ads))}
	ads := make([]*adSample, len(inst.Ads))
	for j, spec := range inst.Ads {
		ads[j] = idx.newAdSample(inst.G, spec.Params.Probs, uint64(j))
	}
	idx.curr.Store(&indexEpoch{version: 1, inst: inst, ads: ads})
	return idx
}

// newAdSample wires one ad's sampler and derived stream root.
func (idx *Index) newAdSample(g *graph.Graph, probs []float32, stream uint64) *adSample {
	return &adSample{
		stream:  stream,
		part:    idx.part,
		sampler: rrset.NewSampler(g, probs, nil),
		rng:     xrand.New(idx.seed).Split(stream),
		fam:     rrset.NewSetFamily(),
	}
}

// AddAd appends a new advertiser to the campaign set, sampling only the new
// ad's block stream (the existing samples are untouched, shared with every
// earlier epoch). The new ad receives the next unused stream id, so on an
// index whose history contains no removals the resulting samples — and
// therefore every allocation — are byte-identical to a cold BuildIndex over
// the same final ad set and seed. opts controls presampling depth only,
// exactly as in BuildIndex. Returns the new ad's position in the updated
// instance.
func (idx *Index) AddAd(ad Ad, opts TIRMOptions) (int, error) {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	old := idx.curr.Load()
	if err := validateAd(old.inst.G, len(old.inst.Ads), ad); err != nil {
		return 0, err
	}
	opts = opts.withDefaults()
	a := idx.newAdSample(old.inst.G, ad.Params.Probs, idx.next)
	idx.next++
	if idx.part.IsIdentity() {
		// A shard cannot presample to a sensible depth on its own (the θ
		// target needs whole-stream pilot widths); the coordinator warms the
		// new ad across the partition after the broadcast instead.
		idx.presample(a, opts)
	}

	specs := make([]Ad, 0, len(old.inst.Ads)+1)
	specs = append(specs, old.inst.Ads...)
	specs = append(specs, ad)
	inst := *old.inst
	inst.Ads = specs
	ads := make([]*adSample, 0, len(old.ads)+1)
	ads = append(ads, old.ads...)
	ads = append(ads, a)
	idx.curr.Store(&indexEpoch{version: old.version + 1, inst: &inst, ads: ads})
	return len(ads) - 1, nil
}

// RemoveAd removes the advertiser at position pos from the campaign set.
// Its arena is dropped from the new epoch without disturbing the other
// samples; allocations already in flight on an older epoch keep reading it
// until they finish, after which the memory is reclaimed. The departed ad's
// stream id is never reused, so the surviving ads' samples stay exactly the
// streams they always were (removal therefore breaks positional equality
// with a cold BuildIndex over the reduced ad set — determinism is preserved,
// cold-build equality is not; see AddAd).
func (idx *Index) RemoveAd(pos int) error {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	old := idx.curr.Load()
	if pos < 0 || pos >= len(old.ads) {
		return fmt.Errorf("core: remove ad %d, index has %d", pos, len(old.ads))
	}
	if len(old.ads) == 1 {
		return fmt.Errorf("core: cannot remove the last ad")
	}
	specs := make([]Ad, 0, len(old.inst.Ads)-1)
	specs = append(specs, old.inst.Ads[:pos]...)
	specs = append(specs, old.inst.Ads[pos+1:]...)
	inst := *old.inst
	inst.Ads = specs
	ads := make([]*adSample, 0, len(old.ads)-1)
	ads = append(ads, old.ads[:pos]...)
	ads = append(ads, old.ads[pos+1:]...)
	idx.curr.Store(&indexEpoch{version: old.version + 1, inst: &inst, ads: ads})
	return nil
}

// Inst returns the instance of the index's current epoch. Mutations swap in
// a fresh instance, so the returned value is a stable snapshot — it never
// changes under the caller.
func (idx *Index) Inst() *Instance { return idx.curr.Load().inst }

// Seed returns the stream seed.
func (idx *Index) Seed() uint64 { return idx.seed }

// Epoch returns the current epoch version. It starts at 1 for a fresh
// build and increments on every AddAd/RemoveAd; pass it in Request.Epoch to
// make an allocation fail with ErrStaleEpoch instead of running against a
// campaign set other than the one the request was prepared for.
func (idx *Index) Epoch() uint64 { return idx.curr.Load().version }

// EpochInst returns the current epoch version and its instance as one
// consistent pair (two separate Epoch/Inst calls could straddle a swap).
func (idx *Index) EpochInst() (uint64, *Instance) {
	ep := idx.curr.Load()
	return ep.version, ep.inst
}

// NumAds returns the number of per-ad samples in the current epoch.
func (idx *Index) NumAds() int { return len(idx.curr.Load().ads) }

// NumSets returns the number of sets currently stored for ad j.
func (idx *Index) NumSets(j int) int { return idx.curr.Load().ads[j].size() }

// SetsSampled returns the total number of RR-sets drawn from the graph over
// the index's lifetime (presampling plus on-demand growth, including ads
// that have since been removed).
func (idx *Index) SetsSampled() int64 { return idx.sampled.Load() }

// MemBytes reports the exact data footprint of the current epoch's stored
// samples: member arenas, offsets, widths, and inverted indexes — flat
// arrays all, so the figure is byte-accurate and O(1) per ad (no
// slice-header estimates). The transient per-allocation coverage state is
// reported separately via TIRMResult.MemBytes.
func (idx *Index) MemBytes() int64 {
	var total int64
	for _, a := range idx.curr.Load().ads {
		total += a.memBytes()
	}
	return total
}

// Request parameterizes one selection run against a prebuilt index. The
// zero value allocates the index's own instance under default TIRMOptions.
type Request struct {
	// Opts are the TIRM options for this run (defaults applied as in TIRM).
	Opts TIRMOptions
	// Ads optionally restricts the run to a subset of ad indices
	// (nil or empty = all ads). Unselected ads get empty seed sets.
	Ads []int
	// Budgets optionally overrides every ad's budget; when non-nil it must
	// have one entry per instance ad (original indexing).
	Budgets []float64
	// CPEs optionally overrides every ad's cost-per-engagement; same
	// shape rule as Budgets.
	CPEs []float64
	// Lambda optionally overrides the instance's seed penalty λ.
	Lambda *float64
	// Kappa optionally overrides the instance's attention bounds.
	Kappa AttentionBounds
	// SpentBudget optionally records engagement spend already accrued per
	// ad; when non-nil it must have one non-negative entry per instance ad.
	// The selection run then targets the residual budget B_i − spent_i —
	// the natural regret-minimizing replay of Eq. 3 as budgets deplete. An
	// ad whose residual is ≤ 0 is fully served and receives no seeds. An
	// all-zero vector is exactly equivalent to omitting it.
	SpentBudget []float64
	// Epoch, when non-zero, pins the run to that index epoch: if a
	// campaign mutation (AddAd/RemoveAd) swapped the epoch since the caller
	// captured it, the allocation fails with ErrStaleEpoch instead of
	// running against a different ad set than the request was shaped for
	// (positional overrides like Budgets and SpentBudget would silently
	// misalign otherwise). Zero accepts whatever epoch is current.
	Epoch uint64
	// Pool optionally names the workspace pool this run recycles its
	// transient selection state through. Hosts serving many indexes attach
	// one pool per index (internal/serve does, per cache entry) so array
	// shapes match across reuses; nil shares a process-wide default pool.
	// Pooling never changes results — allocations are byte-identical with
	// or without a warm workspace.
	Pool *WorkspacePool
	// Observer, when non-nil, receives a per-phase wall-time breakdown of
	// the run (estimation, scan, commit, grow) after the result is
	// assembled. Timing never influences the allocation, and a nil
	// observer skips every clock read — the warm path stays
	// allocation-identical with observation off.
	Observer AllocObserver
	// Explain, when set alongside an Observer implementing
	// ExplainObserver, streams one CommitEvent per selection round (the
	// chosen ad, seed node, marginal gain, and residual budget). Off by
	// default because a run can commit thousands of seeds; explain never
	// changes the allocation, only reports it.
	Explain bool
	// Kernel selects the coverage kernel for this run's per-ad cover
	// sweeps: "" or "auto" lets each ad use the bitset kernel exactly when
	// the index's density heuristic built its membership bitmap (see
	// rrset.Inverted.PrepareCover); "sparse" forces the cover-join scan;
	// "bitset" forces the dense kernel, paying the one-time bitmap build
	// for ads the heuristic skipped. Kernels never change the allocation —
	// selections are byte-identical either way (golden-pinned); only the
	// sweep cost differs. TIRMResult.KernelCounts reports what ran.
	Kernel string
}

// validate resolves the request against the instance, returning the ad
// subset and effective λ/κ.
func (req *Request) validate(inst *Instance) (adIDs []int, lambda float64, kappa AttentionBounds, err error) {
	h := len(inst.Ads)
	switch req.Kernel {
	case "", "auto", "sparse", "bitset":
	default:
		return nil, 0, nil, fmt.Errorf("core: unknown coverage kernel %q (want auto, sparse, or bitset)", req.Kernel)
	}
	if req.Budgets != nil && len(req.Budgets) != h {
		return nil, 0, nil, fmt.Errorf("core: request overrides %d budgets, instance has %d ads", len(req.Budgets), h)
	}
	if req.CPEs != nil && len(req.CPEs) != h {
		return nil, 0, nil, fmt.Errorf("core: request overrides %d CPEs, instance has %d ads", len(req.CPEs), h)
	}
	if req.SpentBudget != nil && len(req.SpentBudget) != h {
		return nil, 0, nil, fmt.Errorf("core: request records %d spent budgets, instance has %d ads", len(req.SpentBudget), h)
	}
	for j, sp := range req.SpentBudget {
		if sp < 0 || math.IsNaN(sp) {
			return nil, 0, nil, fmt.Errorf("core: request spent budget %v for ad %d must be ≥ 0", sp, j)
		}
	}
	for j, b := range req.Budgets {
		if b <= 0 || math.IsNaN(b) {
			return nil, 0, nil, fmt.Errorf("core: request budget %v for ad %d must be > 0", b, j)
		}
	}
	for j, c := range req.CPEs {
		if c <= 0 || math.IsNaN(c) {
			return nil, 0, nil, fmt.Errorf("core: request CPE %v for ad %d must be > 0", c, j)
		}
	}
	lambda = inst.Lambda
	if req.Lambda != nil {
		lambda = *req.Lambda
	}
	if lambda < 0 || math.IsNaN(lambda) {
		return nil, 0, nil, fmt.Errorf("core: request λ = %v must be ≥ 0", lambda)
	}
	kappa = inst.Kappa
	if req.Kappa != nil {
		kappa = req.Kappa
	}
	if v, ok := kappa.(VecKappa); ok && len(v) != inst.G.N() {
		return nil, 0, nil, fmt.Errorf("core: request κ vector covers %d nodes, graph has %d", len(v), inst.G.N())
	}
	if len(req.Ads) == 0 {
		adIDs = make([]int, h)
		for j := range adIDs {
			adIDs[j] = j
		}
		return adIDs, lambda, kappa, nil
	}
	seen := make(map[int]bool, len(req.Ads))
	for _, j := range req.Ads {
		if j < 0 || j >= h {
			return nil, 0, nil, fmt.Errorf("core: request selects ad %d, instance has %d", j, h)
		}
		if seen[j] {
			return nil, 0, nil, fmt.Errorf("core: request selects ad %d twice", j)
		}
		seen[j] = true
	}
	return req.Ads, lambda, kappa, nil
}

// selAd is the per-advertiser selection state of Algorithm 2, run against a
// shared index sample instead of a private one. Slots live inside a pooled
// allocWorkspace and are recycled across requests (see selAd.reset); the
// cand* fields carry each parallel scan's per-ad best candidate to the
// sequential reduction.
type selAd struct {
	j          int // index into inst.Ads
	cpe        float64
	budget     float64
	ctps       topic.CTP
	col        covState
	ws         *rrset.Workspace
	src        *adSample
	widths     []int64 // pilot widths (first MinTheta sets of the stream)
	theta      int
	sTarget    int
	fresh      int64 // sets drawn by this ad's parallel setup phase
	haveBefore int
	revenue    float64
	seeds      []int32
	seedMass   []float64 // δ-scaled claimed set mass per seed
	saturated  bool
	// kernel records which coverage kernel this ad's collection activated
	// (summed into TIRMResult.KernelCounts after the setup barrier).
	kernel rrset.KernelID
	// powMemo is the per-slot scratch for kptFromWidths cache misses (the
	// per-width Pow terms); retained across pooled runs.
	powMemo map[int64]float64

	candOK    bool // scan found a strictly regret-reducing candidate
	candU     int32
	candScore float64
	candMg    float64
	candDrop  float64
}

// AllocateFromIndex runs the greedy regret-minimization loop of Algorithm 2
// (selection, iterative seed-set-size estimation, UpdateEstimates) against
// a prebuilt index. Sampling only happens when the run needs a larger θ
// than the index has stored — a warm run on a sufficiently grown index
// draws nothing and is dominated by coverage bookkeeping. Deterministic:
// the same index seed and request always yield the same allocation, and
// TIRM(inst, rng, opts) is exactly BuildIndex + AllocateFromIndex.
//
// Concurrent calls on one index are safe; each run keeps private coverage
// state and only shares the immutable (append-only) sample. The run
// captures the index's current epoch at entry and finishes on it even if
// AddAd/RemoveAd swap the campaign set mid-run; set Request.Epoch to refuse
// a swapped epoch outright.
func AllocateFromIndex(idx *Index, req Request) (*TIRMResult, error) {
	return allocateEpoch(idx, idx.curr.Load(), req)
}

// allocateEpoch is AllocateFromIndex pinned to one epoch — the consistent
// view an allocation keeps for its whole run, no matter how many campaign
// mutations land concurrently.
func allocateEpoch(idx *Index, ep *indexEpoch, req Request) (*TIRMResult, error) {
	if !idx.part.IsIdentity() {
		return nil, fmt.Errorf("core: index holds shard %d of %d — selection over one shard's sample is meaningless; allocate through the shard coordinator",
			idx.part.Shard, idx.part.NumShards)
	}
	if req.Epoch != 0 && req.Epoch != ep.version {
		return nil, fmt.Errorf("%w: request prepared for epoch %d, index is at %d", ErrStaleEpoch, req.Epoch, ep.version)
	}
	inst := ep.inst
	adIDs, lambda, kappa, err := req.validate(inst)
	if err != nil {
		return nil, err
	}
	opts := req.Opts.withDefaults()
	g := inst.G
	n := g.N()
	m := g.M()
	h := len(inst.Ads)
	maxSeeds := opts.MaxSeedsPerAd
	if maxSeeds <= 0 {
		maxSeeds = n
	}

	res := &TIRMResult{
		Alloc:           NewAllocation(h),
		EstRevenue:      make([]float64, h),
		FinalTheta:      make([]int, h),
		FinalSeedTarget: make([]int, h),
	}

	pool := req.Pool
	if pool == nil {
		pool = &defaultWorkspacePool
	}
	ws := pool.get()
	defer pool.put(ws)
	ws.attention.reset(n, kappa)

	// Phase timing accumulates on the stack and is delivered in one call at
	// the end; every clock read is behind the nil check so an unobserved
	// run never touches the clock.
	observer := req.Observer
	var timings PhaseTimings
	var phaseStart time.Time
	var explain ExplainObserver
	if observer != nil {
		phaseStart = time.Now()
		if req.Explain {
			explain, _ = observer.(ExplainObserver)
		}
	}

	// Initialization (Algorithm 2 lines 1–3): s_j = 1, θ_j = L(s_j, ε),
	// with R_j the stream prefix instead of a private sample. Ads whose
	// residual budget is already ≤ 0 are fully served: they get empty seed
	// sets without paying for coverage state at all.
	ws.ads = ws.ads[:0]
	for _, j := range adIDs {
		spec := inst.Ads[j]
		cpe, budget := spec.CPE, spec.Budget
		if req.Budgets != nil {
			budget = req.Budgets[j]
		}
		if req.CPEs != nil {
			cpe = req.CPEs[j]
		}
		if req.SpentBudget != nil {
			budget -= req.SpentBudget[j]
			if budget <= 0 {
				continue
			}
		}
		a := ws.slot(len(ws.ads))
		a.reset(j, cpe, budget, spec.Params.CTPs, ep.ads[j])
		ws.ads = append(ws.ads, a)
	}

	runner := newAdRunner(len(ws.ads))
	defer runner.stop()

	// Size θ from the pilot KPT estimate first, then build the coverage
	// state once at that size over the index's shared CSR inverted index:
	// the collection never replays growth the index has already absorbed,
	// which is what makes the warm path O(n) setup instead of O(members).
	// The per-ad states are independent, so they initialize in parallel
	// across the bounded worker group; per-ad sample counts are summed
	// sequentially after the barrier.
	soft := opts.SoftCoverage
	wantKernel := rrset.KernelBitset // ""/"auto": bitset iff the density heuristic built the bitmap
	if req.Kernel == "sparse" {
		wantKernel = rrset.KernelSparse
	}
	forceBits := req.Kernel == "bitset"
	runner.each(ws.ads, func(a *selAd) {
		_, widths, fresh := a.src.prefix(opts.MinTheta)
		a.fresh = fresh
		a.widths = widths
		kpt := a.src.kptFor(a.widths, 1, n, m, a.powMemo)
		a.theta = rrset.Theta(int64(n), 1, opts.Eps, opts.Ell, kpt, opts.MinTheta, opts.MaxTheta)
		sets, _, inv, fresh := a.src.view(a.theta)
		a.fresh += fresh
		if forceBits {
			inv.PrepareCoverBits()
		}
		if soft {
			a.col.soft = a.ws.Weighted(n, sets, inv)
			a.col.hard = nil
			a.kernel = a.col.soft.UseKernel(wantKernel)
		} else {
			a.col.hard = a.ws.Collection(n, sets, inv)
			a.col.soft = nil
			a.kernel = a.col.hard.UseKernel(wantKernel)
		}
	})
	for _, a := range ws.ads {
		idx.sampled.Add(a.fresh)
		res.TotalSetsSampled += a.fresh
		a.fresh = 0
		res.KernelCounts[a.kernel]++
	}
	if observer != nil {
		timings.Phase[PhaseEstimate] = time.Since(phaseStart)
	}

	// scanAd evaluates one ad's candidates — SelectBestNode (Algorithm 3):
	// max residual coverage among eligible nodes, extended to the top
	// CandidateDepth nodes scored by regret drop (depth 1 = the paper) —
	// and records the ad's best strictly-improving candidate. An ad with
	// no improving candidate saturates permanently: its candidate pool
	// only shrinks and Π only changes when it commits. Touches only the
	// ad's own state (plus read-only attention counts), so ads scan
	// concurrently; strict `>` comparisons make the per-ad argmax, and the
	// in-order reduction below, byte-identical to the sequential scan.
	scanAd := func(a *selAd) {
		nodes, scores := a.col.topNodes(opts.CandidateDepth, ws.eligible)
		if len(nodes) == 0 {
			a.saturated = true
			a.candOK = false
			return
		}
		a.candOK = false
		for c, u := range nodes {
			mg := a.cpe * float64(n) * a.delta(u) * scores[c] / float64(a.theta)
			d := RegretDrop(a.budget-a.revenue, mg, lambda)
			if d <= 0 {
				continue
			}
			if !a.candOK || d > a.candDrop {
				a.candU, a.candScore, a.candMg, a.candDrop = u, scores[c], mg, d
			}
			a.candOK = true
		}
		if !a.candOK {
			a.saturated = true
		}
	}

	// Main loop (Algorithm 2 lines 4–19): parallel per-ad candidate scan,
	// sequential reduction and commit.
	for {
		if observer != nil {
			phaseStart = time.Now()
		}
		ws.active = ws.active[:0]
		for _, a := range ws.ads {
			if !a.saturated {
				ws.active = append(ws.active, a)
			}
		}
		runner.each(ws.active, scanAd)
		var best *selAd
		for _, a := range ws.active {
			if !a.candOK {
				continue
			}
			if best == nil || a.candDrop > best.candDrop {
				best = a
			}
		}
		if observer != nil {
			timings.Phase[PhaseScan] += time.Since(phaseStart)
		}
		if best == nil {
			break // line 14: no (user, ad) pair reduces regret
		}
		if observer != nil {
			phaseStart = time.Now()
		}

		// Commit (lines 10–12): allocate, record the claimed mass, and
		// retire it (hard mode removes covered sets; soft mode decays their
		// weights by 1−δ).
		a := best
		bestU, bestMg := a.candU, a.candMg
		mass := a.col.commit(bestU, a.delta(bestU))
		a.col.drop(bestU)
		ws.attention.Take(bestU)
		a.seeds = append(a.seeds, bestU)
		a.seedMass = append(a.seedMass, mass)
		a.revenue += bestMg
		res.Iterations++
		if diff := mass - a.delta(bestU)*a.candScore; diff > 1e-6*(1+mass) || diff < -1e-6*(1+mass) {
			// The scan and commit disagree only on a bug.
			panic("core: TIRM coverage bookkeeping out of sync")
		}
		if observer != nil {
			timings.Phase[PhaseCommit] += time.Since(phaseStart)
			timings.Rounds++
		}
		if explain != nil {
			explain.ObserveCommit(CommitEvent{
				Round:    res.Iterations,
				Ad:       a.j,
				Node:     bestU,
				Gain:     bestMg,
				Residual: a.budget - a.revenue,
			})
		}

		if len(a.seeds) >= maxSeeds {
			a.saturated = true
			continue
		}

		// Iterative seed-set-size estimation (lines 14–18): when |S_i|
		// reaches s_i, extend s_i by the regret still outstanding divided
		// by the latest seed's marginal revenue — a lower bound on the
		// seeds still needed, by submodularity — then grow θ_i to L(s_i, ε)
		// and re-calibrate existing seeds on the enlarged sample.
		if len(a.seeds) == a.sTarget {
			gap := a.budget - a.revenue
			if gap <= 0 || bestMg <= 0 {
				continue
			}
			growth := int(math.Floor(gap / bestMg))
			if growth < 1 {
				continue
			}
			a.sTarget += growth
			kpt := a.src.kptFor(a.widths, a.sTarget, n, m, a.powMemo)
			// The achieved spread n·(covered/θ) is itself a lower bound on
			// OPT_{s_i}; take the larger of the two (conservatively shrunk).
			achieved := float64(n) * a.col.coveredMass() / float64(a.theta) * (1 - opts.Eps)
			optLB := math.Max(kpt, achieved)
			want := rrset.Theta(int64(n), int64(a.sTarget), opts.Eps, opts.Ell, optLB, opts.MinTheta, opts.MaxTheta)
			if want > a.theta {
				if observer != nil {
					phaseStart = time.Now()
				}
				boundary := a.col.numSets()
				a.grow(idx, res, want)
				// UpdateEstimates (Algorithm 4): credit existing seeds, in
				// selection order, with their coverage among the appended
				// sets (retiring the claimed mass as we go so nothing is
				// double-counted), then recompute Π against the new θ.
				a.revenue = 0
				for k, seed := range a.seeds {
					a.seedMass[k] += a.col.creditFrom(seed, a.delta(seed), boundary)
					a.revenue += a.cpe * float64(n) * a.seedMass[k] / float64(a.theta)
				}
				if observer != nil {
					timings.Phase[PhaseGrow] += time.Since(phaseStart)
				}
			}
		}
	}

	for _, a := range ws.ads {
		res.Alloc.Seeds[a.j] = a.seeds
		res.EstRevenue[a.j] = a.revenue
		res.FinalTheta[a.j] = a.theta
		res.FinalSeedTarget[a.j] = a.sTarget
		res.MemBytes += a.col.memBytes()
		reused := int64(a.theta)
		if int64(a.haveBefore) < reused {
			reused = int64(a.haveBefore)
		}
		res.SetsReused += reused
	}
	if observer != nil {
		observer.ObserveAllocation(timings)
	}
	return res, nil
}

// grow extends the ad's view of the stream to want sets, pulling from the
// index (which samples only past its stored prefix) and feeding the new
// sets to the coverage state as one CSR segment.
func (a *selAd) grow(idx *Index, res *TIRMResult, want int) {
	v, fresh := a.src.window(a.theta, want)
	idx.sampled.Add(fresh)
	res.TotalSetsSampled += fresh
	a.col.addFamily(v)
	a.theta = want
}

// --- Snapshot encoding ---------------------------------------------------

const (
	indexMagic = uint32(0x41444958) // "ADIX"
	// indexVersion 4 adds the stream-partition manifest (shard count and
	// shard id) to the CRC-guarded header, so a shard's snapshot declares
	// which slice of every block stream it holds and a load against the
	// wrong partition fails instead of silently resuming the wrong blocks.
	// Version 3 stored the per-ad stream ids (guarded by a CRC32 over the
	// whole header, since family-section CRCs and the instance fingerprint
	// cover neither) but predates sharding — an identity partition is
	// implied. Version 2 wrote per-ad sections in the flat v2 ("RRS2")
	// family layout with stream id == position; version 1 used v1 sections.
	// All still load — see the version policy in rrset/snapshot.go.
	indexVersion   = uint32(4)
	indexVersionV3 = uint32(3)
	indexVersionV2 = uint32(2)
	indexVersionV1 = uint32(1)
)

// fingerprint summarizes what the stored sample depends on — the graph's
// topology and every ad's mixed edge probabilities — so a snapshot is
// rejected when loaded against a different instance (budgets, CPEs, CTPs,
// κ, λ are selection-time inputs and deliberately excluded). Counts alone
// are not enough: two graphs with identical n, m, and probability values
// but different wiring must not share a fingerprint.
func indexFingerprint(inst *Instance) uint64 {
	fh := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		fh.Write(buf[:])
	}
	w32 := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[:4], v)
		fh.Write(buf[:4])
	}
	w64(uint64(inst.G.N()))
	w64(uint64(inst.G.M()))
	w64(uint64(len(inst.Ads)))
	for u := int32(0); u < int32(inst.G.N()); u++ {
		targets, _ := inst.G.OutEdges(u)
		w32(uint32(len(targets)))
		for _, v := range targets {
			w32(uint32(v))
		}
	}
	for _, ad := range inst.Ads {
		for _, p := range ad.Params.Probs {
			w32(math.Float32bits(p))
		}
	}
	return fh.Sum64()
}

// indexHeader is the version-4 snapshot header: everything the stream
// contract depends on besides the family sections themselves — including
// the stream-partition manifest, since a shard's arena is meaningless
// without knowing which blocks it holds. It serializes to a fixed
// little-endian layout whose CRC32 (IEEE) is written right after it, so a
// corrupted seed, shard id, or stream id — which would silently diverge
// post-reload growth, since neither the family CRCs nor the instance
// fingerprint cover them — fails the load instead.
type indexHeader struct {
	seed        uint64
	fingerprint uint64
	numShards   uint32   // v4 only: partition size (1 = identity)
	shard       uint32   // v4 only: this snapshot's slice
	streams     []uint64 // one per ad, in position order
}

// marshal renders the header payload for writing and CRC computation:
// seed, fingerprint, the v4 partition manifest (unless version 3, whose
// layout predates it), ad count, stream ids.
func (h *indexHeader) marshal(version uint32) []byte {
	out := make([]byte, 0, 8+8+8+4+8*len(h.streams))
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], h.seed)
	out = append(out, b8[:]...)
	binary.LittleEndian.PutUint64(b8[:], h.fingerprint)
	out = append(out, b8[:]...)
	if version >= indexVersion {
		binary.LittleEndian.PutUint32(b8[:4], h.numShards)
		out = append(out, b8[:4]...)
		binary.LittleEndian.PutUint32(b8[:4], h.shard)
		out = append(out, b8[:4]...)
	}
	binary.LittleEndian.PutUint32(b8[:4], uint32(len(h.streams)))
	out = append(out, b8[:4]...)
	for _, s := range h.streams {
		binary.LittleEndian.PutUint64(b8[:], s)
		out = append(out, b8[:]...)
	}
	return out
}

// WriteSnapshot persists the index's current epoch — stream seed, the
// stream-partition manifest, and every ad's stream id and stored sets — in
// a versioned binary format (currently version 4: a CRC-guarded header
// carrying partition and stream ids, then flat CSR sections with CRC32
// footers, written in bulk). A process restarted with LoadIndexSnapshot
// (or LoadShardIndexSnapshot for a shard's slice) against the same
// instance resumes the identical streams: allocations after a reload match
// allocations on the original index exactly, even when the campaign set
// was mutated before the snapshot was taken.
func (idx *Index) WriteSnapshot(w io.Writer) error {
	ep := idx.curr.Load()
	bw := bufio.NewWriter(w)
	var buf [8]byte
	w32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(buf[:4], v)
		_, err := bw.Write(buf[:4])
		return err
	}
	if err := w32(indexMagic); err != nil {
		return err
	}
	if err := w32(indexVersion); err != nil {
		return err
	}
	hdr := indexHeader{
		seed:        idx.seed,
		fingerprint: indexFingerprint(ep.inst),
		numShards:   uint32(idx.part.NumShards),
		shard:       uint32(idx.part.Shard),
	}
	if idx.part.IsIdentity() {
		hdr.numShards, hdr.shard = 1, 0
	}
	for _, a := range ep.ads {
		hdr.streams = append(hdr.streams, a.stream)
	}
	payload := hdr.marshal(indexVersion)
	if _, err := bw.Write(payload); err != nil {
		return err
	}
	if err := w32(crc32.ChecksumIEEE(payload)); err != nil {
		return err
	}
	for _, a := range ep.ads {
		a.mu.Lock()
		v := a.fam.View()
		a.mu.Unlock()
		if err := rrset.EncodeSetFamily(bw, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadIndexSnapshot reconstructs an index for inst from a snapshot written
// by WriteSnapshot — the current version 4, version 3 (identity partition
// implied), or the legacy versions 1 and 2, whose stream ids are their
// positions (per-ad sections self-describe, so all load transparently). It
// fails if the snapshot was taken for a different graph, ad set, or
// probability setting (fingerprint mismatch), holds one shard's slice
// rather than the whole stream (use LoadShardIndexSnapshot), or is
// structurally corrupt; widths and the inverted index are recomputed from
// the decoded arenas. The loaded index starts a fresh epoch lineage at
// version 1.
func LoadIndexSnapshot(inst *Instance, src io.Reader) (*Index, error) {
	return loadIndexSnapshot(inst, src, rrset.StreamPartition{})
}

// LoadShardIndexSnapshot reconstructs one shard's index from a snapshot
// written by a BuildShardIndex index. The snapshot's partition manifest
// must match part exactly — a shard must never resume another shard's
// blocks (v1–v3 snapshots carry the whole stream and therefore only load
// as the identity partition).
func LoadShardIndexSnapshot(inst *Instance, part rrset.StreamPartition, src io.Reader) (*Index, error) {
	if err := part.Validate(); err != nil {
		return nil, err
	}
	return loadIndexSnapshot(inst, src, part)
}

// loadIndexSnapshot is the shared decoder behind LoadIndexSnapshot and
// LoadShardIndexSnapshot.
func loadIndexSnapshot(inst *Instance, src io.Reader, part rrset.StreamPartition) (*Index, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	r := bufio.NewReader(src)
	var buf [8]byte
	r32 := func() (uint32, error) {
		if _, err := io.ReadFull(r, buf[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:4]), nil
	}
	r64 := func() (uint64, error) {
		if _, err := io.ReadFull(r, buf[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:8]), nil
	}
	magic, err := r32()
	if err != nil {
		return nil, fmt.Errorf("core: index snapshot header: %w", err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("core: bad index snapshot magic %#x", magic)
	}
	version, err := r32()
	if err != nil {
		return nil, err
	}
	switch version {
	case indexVersion, indexVersionV3, indexVersionV2, indexVersionV1:
	default:
		return nil, fmt.Errorf("core: unsupported index snapshot version %d", version)
	}
	seed, err := r64()
	if err != nil {
		return nil, err
	}
	fp, err := r64()
	if err != nil {
		return nil, err
	}
	snapPart := rrset.StreamPartition{NumShards: 1}
	if version == indexVersion {
		ns, err := r32()
		if err != nil {
			return nil, err
		}
		sh, err := r32()
		if err != nil {
			return nil, err
		}
		snapPart = rrset.StreamPartition{NumShards: int(ns), Shard: int(sh)}
		if err := snapPart.Validate(); err != nil {
			return nil, fmt.Errorf("core: index snapshot partition: %w", err)
		}
	}
	if snapPart.Size() != part.Size() || (!snapPart.IsIdentity() && snapPart.Shard != part.Shard) {
		return nil, fmt.Errorf("core: index snapshot holds stream slice %d/%d, caller expects %d/%d",
			snapPart.Shard, snapPart.Size(), part.Shard, part.Size())
	}
	numAds, err := r32()
	if err != nil {
		return nil, err
	}
	if int(numAds) != len(inst.Ads) {
		return nil, fmt.Errorf("core: index snapshot has %d ads, instance has %d", numAds, len(inst.Ads))
	}
	streams := make([]uint64, int(numAds))
	if version == indexVersion || version == indexVersionV3 {
		for j := range streams {
			if streams[j], err = r64(); err != nil {
				return nil, fmt.Errorf("core: index snapshot ad %d stream id: %w", j, err)
			}
			if streams[j] == math.MaxUint64 {
				// The sentinel would wrap the next-stream counter below and
				// let a later AddAd reuse a live stream id.
				return nil, fmt.Errorf("core: index snapshot ad %d has invalid stream id", j)
			}
		}
		crc, err := r32()
		if err != nil {
			return nil, err
		}
		hdr := indexHeader{
			seed: seed, fingerprint: fp,
			numShards: uint32(snapPart.Size()), shard: uint32(snapPart.Shard),
			streams: streams,
		}
		if got := crc32.ChecksumIEEE(hdr.marshal(version)); got != crc {
			return nil, fmt.Errorf("core: index snapshot header CRC mismatch (%#x vs %#x)", got, crc)
		}
	} else {
		for j := range streams { // v1/v2 layout: stream id is the position
			streams[j] = uint64(j)
		}
	}
	if want := indexFingerprint(inst); fp != want {
		return nil, fmt.Errorf("core: index snapshot fingerprint %#x does not match instance %#x", fp, want)
	}
	idx := &Index{seed: seed, part: part}
	ads := make([]*adSample, int(numAds))
	next := uint64(numAds)
	for j := range ads {
		stream := streams[j]
		if stream+1 > next {
			next = stream + 1
		}
		a := idx.newAdSample(inst.G, inst.Ads[j].Params.Probs, stream)
		fam, err := rrset.DecodeSetFamily(r, inst.G.N())
		if err != nil {
			return nil, fmt.Errorf("core: index snapshot ad %d: %w", j, err)
		}
		if fam.Len()%rrset.StreamBlockSize != 0 {
			return nil, fmt.Errorf("core: index snapshot ad %d has %d sets, not block-aligned", j, fam.Len())
		}
		a.fam = fam
		a.streamLen = part.Resume(fam.Len())
		a.widths = make([]int64, fam.Len())
		for i := 0; i < fam.Len(); i++ {
			a.widths[i] = rrset.Width(inst.G, fam.Set(i))
		}
		if fam.Len() > 0 {
			a.inv = rrset.BuildInverted(inst.G.N(), fam.View(), 0)
			a.invLen = fam.Len()
			a.inv.PrepareCover()
		}
		ads[j] = a
	}
	idx.next = next
	idx.curr.Store(&indexEpoch{version: 1, inst: inst, ads: ads})
	return idx, nil
}
