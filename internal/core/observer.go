// Allocation phase observability: an optional per-request hook that
// reports where an AllocateFromIndex run spent its time, phase by phase.
// The hook is pull-free and allocation-free — the run accumulates plain
// durations on its own stack and makes exactly one ObserveAllocation call
// at the end — and a nil observer costs nothing: every time.Now() on the
// hot path is guarded by the nil check, so the warm-path allocation count
// and the allocation bytes are untouched (the golden byte-identity and
// allocs/op benchmarks both cover this).

package core

import "time"

// AllocPhase names one phase of the Algorithm 2 selection loop for
// per-phase timing. The phases partition a run's wall time minus result
// assembly: estimation (θ sizing and coverage-state setup), candidate
// scanning, seed commits, and θ growth with seed re-crediting.
type AllocPhase int

// The allocation phases, in the order a run first enters them.
const (
	// PhaseEstimate covers setup: per-ad budget resolution, the pilot KPT
	// estimate, θ sizing (Eq. 5), and coverage-state initialization.
	PhaseEstimate AllocPhase = iota
	// PhaseScan covers the parallel per-ad candidate scans (Algorithm 3)
	// plus the sequential cross-ad reduction, summed over all rounds.
	PhaseScan
	// PhaseCommit covers seed commits: claimed-mass retirement, attention
	// bookkeeping, and the scan/commit consistency check.
	PhaseCommit
	// PhaseGrow covers θ growth past the stored prefix and the
	// UpdateEstimates re-crediting of existing seeds (Algorithm 4).
	PhaseGrow
	// NumAllocPhases is the number of phases; valid AllocPhase values are
	// [0, NumAllocPhases).
	NumAllocPhases
)

// allocPhaseNames indexes AllocPhase.String; keep in AllocPhase order.
var allocPhaseNames = [NumAllocPhases]string{"estimate", "scan", "commit", "grow"}

// String returns the phase's stable lowercase label (the value used as the
// phase= metric label by instrumented hosts).
func (p AllocPhase) String() string {
	if p < 0 || p >= NumAllocPhases {
		return "unknown"
	}
	return allocPhaseNames[p]
}

// PhaseTimings is the per-run timing breakdown delivered to an
// AllocObserver: cumulative wall time per phase plus the number of
// selection rounds (committed seeds) the run took.
type PhaseTimings struct {
	// Phase holds cumulative wall time per AllocPhase.
	Phase [NumAllocPhases]time.Duration
	// Rounds counts main-loop iterations that committed a seed; it equals
	// TIRMResult.Iterations for the same run.
	Rounds int
}

// AllocObserver receives one PhaseTimings per completed allocation run.
// Implementations must be safe for concurrent calls when the observer is
// shared across concurrent allocations (internal/serve shares one per
// server). A nil Request.Observer disables timing entirely.
type AllocObserver interface {
	// ObserveAllocation is called once, after the run's result is
	// assembled but before AllocateFromIndex returns.
	ObserveAllocation(PhaseTimings)
}

// CommitEvent is one committed selection round — the explain record of
// which (ad, node) pair the regret-minimizing greedy chose and what it
// was worth at that moment. Events are emitted in commit order, so a
// run's event sequence replays its entire decision trace.
type CommitEvent struct {
	// Round is the 1-based selection round (equals Rounds so far).
	Round int
	// Ad is the committed ad's instance index.
	Ad int
	// Node is the committed seed node.
	Node int32
	// Gain is the seed's marginal revenue at commit time (the CELF
	// marginal gain that won the cross-ad reduction).
	Gain float64
	// Residual is the ad's remaining budget after this commit
	// (B_i − revenue so far): how far the ad still is from saturation.
	Residual float64
}

// ExplainObserver is an AllocObserver that also wants the per-round
// decision trace. Commit events fire only when Request.Explain is set
// AND the observer implements this interface — the plain timing path
// stays a single pointer test per phase boundary, and explain never
// mutates the run (allocations are byte-identical with it on or off).
type ExplainObserver interface {
	AllocObserver
	// ObserveCommit is called once per committed seed, between the
	// commit bookkeeping and the next scan, in round order.
	ObserveCommit(CommitEvent)
}
