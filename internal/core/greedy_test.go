package core

import (
	"math"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/topic"
	"repro/internal/xrand"
)

func TestGreedyExactOnFig1(t *testing.T) {
	inst := fig1Instance(t, 0)
	res, err := Greedy(inst, NewExactFactory(inst), GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Alloc.Validate(inst); err != nil {
		t.Fatalf("invalid allocation: %v", err)
	}
	regret := exactTotalRegret(inst, res.Alloc)
	// The paper's hand-built allocation B achieves 2.6998; greedy must do
	// at least as well as that and dramatically better than allocation A.
	if regret > 2.7+1e-9 {
		t.Errorf("greedy-exact regret %.4f worse than allocation B (2.6998)", regret)
	}
	if regret > 3 {
		t.Errorf("greedy-exact regret %.4f not competitive", regret)
	}
	t.Logf("greedy-exact: regret=%.4f seeds=%v", regret, res.Alloc.Seeds)
}

func TestGreedyExactDeterministic(t *testing.T) {
	inst := fig1Instance(t, 0)
	a, err := Greedy(inst, NewExactFactory(inst), GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Greedy(inst, NewExactFactory(inst), GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Alloc.Seeds {
		if len(a.Alloc.Seeds[i]) != len(b.Alloc.Seeds[i]) {
			t.Fatal("non-deterministic seed counts")
		}
		for j := range a.Alloc.Seeds[i] {
			if a.Alloc.Seeds[i][j] != b.Alloc.Seeds[i][j] {
				t.Fatal("non-deterministic seeds")
			}
		}
	}
}

func TestGreedyMCCloseToExact(t *testing.T) {
	inst := fig1Instance(t, 0)
	exact, err := Greedy(inst, NewExactFactory(inst), GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := Greedy(inst, NewMCFactory(inst, 20000, xrand.New(42)), GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	re := exactTotalRegret(inst, exact.Alloc)
	rm := exactTotalRegret(inst, mc.Alloc)
	if math.Abs(re-rm) > 0.35 {
		t.Errorf("greedy-MC regret %.4f vs greedy-exact %.4f", rm, re)
	}
	if err := mc.Alloc.Validate(inst); err != nil {
		t.Fatalf("invalid MC allocation: %v", err)
	}
}

func TestGreedyLambdaShrinksSeeds(t *testing.T) {
	free := fig1Instance(t, 0)
	costly := fig1Instance(t, 0.5)
	a, err := Greedy(free, NewExactFactory(free), GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Greedy(costly, NewExactFactory(costly), GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Alloc.NumSeeds() > a.Alloc.NumSeeds() {
		t.Errorf("λ=0.5 used %d seeds, λ=0 used %d", b.Alloc.NumSeeds(), a.Alloc.NumSeeds())
	}
}

func TestGreedyHugeLambdaAllocatesNothing(t *testing.T) {
	inst := fig1Instance(t, 100)
	res, err := Greedy(inst, NewExactFactory(inst), GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alloc.NumSeeds() != 0 {
		t.Errorf("λ=100 still allocated %d seeds", res.Alloc.NumSeeds())
	}
}

func TestGreedyMaxSeedsCap(t *testing.T) {
	inst := fig1Instance(t, 0)
	res, err := Greedy(inst, NewExactFactory(inst), GreedyOptions{MaxSeedsPerAd: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Alloc.Seeds {
		if len(s) > 1 {
			t.Errorf("ad %d has %d seeds despite cap", i, len(s))
		}
	}
}

// randomInstance builds a random multi-ad instance on a small digraph.
func randomInstance(seed uint64, n, edges, h int, kappa int, lambda float64) *Instance {
	r := xrand.New(seed)
	b := graph.NewBuilderHint(n, edges)
	for i := 0; i < edges; i++ {
		u, v := int32(r.IntN(n)), int32(r.IntN(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.MustBuild()
	probs := make([]float32, g.M())
	for e := range probs {
		probs[e] = float32(r.Uniform(0, 0.4))
	}
	ads := make([]Ad, h)
	for i := range ads {
		ctps := make([]float32, n)
		for u := range ctps {
			ctps[u] = float32(r.Uniform(0.05, 0.5))
		}
		vc, _ := topic.NewVecCTP(ctps)
		ads[i] = Ad{
			Name:   string(rune('a' + i)),
			Budget: r.Uniform(2, 8),
			CPE:    r.Uniform(0.5, 2),
			Params: topic.ItemParams{Probs: probs, CTPs: vc},
		}
	}
	return &Instance{G: g, Ads: ads, Kappa: ConstKappa(kappa), Lambda: lambda}
}

func TestGreedyValidityProperty(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		kappa := 1 + int(seed%3)
		inst := randomInstance(seed, 20, 60, 3, kappa, 0.01)
		res, err := Greedy(inst, NewMCFactory(inst, 300, xrand.New(seed)), GreedyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Alloc.Validate(inst); err != nil {
			t.Errorf("seed %d: invalid allocation: %v", seed, err)
		}
	}
}

// TestGreedyNeverAcceptsRegretIncrease verifies the strict-decrease rule:
// the estimator-view regret must be strictly below the empty allocation's
// regret (= total budget) whenever any seed is taken.
func TestGreedyNeverAcceptsRegretIncrease(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		inst := randomInstance(seed+100, 15, 40, 2, 2, 0.05)
		res, err := Greedy(inst, NewMCFactory(inst, 400, xrand.New(seed)), GreedyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Alloc.NumSeeds() > 0 && res.EstRegret(inst) >= inst.TotalBudget() {
			t.Errorf("seed %d: est regret %.4f ≥ empty-allocation regret %.4f",
				seed, res.EstRegret(inst), inst.TotalBudget())
		}
	}
}

// TestCELFMatchesBruteForce verifies bestDrop against a brute-force argmax
// over all nodes with a shared exact estimator.
func TestCELFMatchesBruteForce(t *testing.T) {
	inst := fig1Instance(t, 0)
	for adIdx := 0; adIdx < 4; adIdx++ {
		ad := inst.Ads[adIdx]
		sim := diffusion.NewSimulator(inst.G, ad.Params)
		est := NewExactEstimator(sim, ad.CPE)
		q := newCELFQueue(inst.G.N())
		gap := ad.Budget - est.Revenue()

		// Brute force.
		bruteBest, bruteDrop := int32(-1), math.Inf(-1)
		for u := int32(0); u < int32(inst.G.N()); u++ {
			ref := NewExactEstimator(sim, ad.CPE)
			d := RegretDrop(gap, ref.MarginalRevenue(u), inst.Lambda)
			if d > bruteDrop {
				bruteBest, bruteDrop = u, d
			}
		}
		u, _, d, ok := q.bestDrop(est, gap, inst.Lambda, nil)
		if !ok {
			t.Fatalf("ad %d: bestDrop found nothing", adIdx)
		}
		if math.Abs(d-bruteDrop) > 1e-9 {
			t.Errorf("ad %d: CELF drop %.6f (node %d) vs brute %.6f (node %d)",
				adIdx, d, u, bruteDrop, bruteBest)
		}
	}
}

// TestCELFDeepSearch reproduces the non-monotone-drop case: for ad d
// (budget 1) the max-marginal node v3 overshoots while v1 has the best
// drop; bestDrop must return v1's drop, not v3's.
func TestCELFDeepSearch(t *testing.T) {
	inst := fig1Instance(t, 0)
	ad := inst.Ads[3] // d: budget 1, δ = 0.6
	sim := diffusion.NewSimulator(inst.G, ad.Params)
	est := NewExactEstimator(sim, ad.CPE)
	q := newCELFQueue(inst.G.N())
	u, mg, d, ok := q.bestDrop(est, ad.Budget, 0, nil)
	if !ok {
		t.Fatal("no candidate")
	}
	// Exact σ_d({v1}) = 0.8517 (v1 clicks w.p. 0.6; downstream v3=0.12,
	// v4=v5=0.06, v6=0.12·0.0975). v3 would give mg = 0.6·2.0975 = 1.2585,
	// overshooting budget 1 for a drop of only 0.7415.
	if u != 0 && u != 1 {
		t.Errorf("deep search picked node %d, want v1/v2", u)
	}
	if math.Abs(d-0.8517) > 1e-4 || math.Abs(mg-0.8517) > 1e-4 {
		t.Errorf("drop %.5f mg %.5f, want ≈0.8517", d, mg)
	}
}

// TestCELFEvalSavings checks that lazy evaluation performs fewer estimator
// calls than the naive h·n per iteration (ablation ABL2's claim).
func TestCELFEvalSavings(t *testing.T) {
	inst := randomInstance(7, 30, 120, 3, 2, 0)
	res, err := Greedy(inst, NewMCFactory(inst, 200, xrand.New(7)), GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	naive := res.Iterations * inst.G.N() * len(inst.Ads)
	if res.Iterations > 2 && res.Evals >= naive {
		t.Errorf("CELF evals %d not below naive bound %d", res.Evals, naive)
	}
}

func TestGreedyRejectsInvalidInstance(t *testing.T) {
	inst := fig1Instance(t, 0)
	inst.Lambda = -3
	if _, err := Greedy(inst, NewExactFactory(inst), GreedyOptions{}); err == nil {
		t.Fatal("invalid instance accepted")
	}
}
