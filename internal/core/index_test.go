package core

import (
	"bytes"
	"testing"

	"repro/internal/graph"
	"repro/internal/topic"
	"repro/internal/xrand"
)

func sameAllocation(t *testing.T, a, b *Allocation) {
	t.Helper()
	if len(a.Seeds) != len(b.Seeds) {
		t.Fatalf("allocations cover %d vs %d ads", len(a.Seeds), len(b.Seeds))
	}
	for i := range a.Seeds {
		if len(a.Seeds[i]) != len(b.Seeds[i]) {
			t.Fatalf("ad %d: %v vs %v", i, a.Seeds[i], b.Seeds[i])
		}
		for k := range a.Seeds[i] {
			if a.Seeds[i][k] != b.Seeds[i][k] {
				t.Fatalf("ad %d seed %d: %v vs %v", i, k, a.Seeds[i], b.Seeds[i])
			}
		}
	}
}

// TestTwoStageMatchesTIRM pins the wrapper contract: TIRM must be exactly
// BuildIndex + AllocateFromIndex for the same seed and options.
func TestTwoStageMatchesTIRM(t *testing.T) {
	for _, tc := range []struct {
		name string
		inst *Instance
		opts TIRMOptions
	}{
		{"fig1", fig1Instance(t, 0), TIRMOptions{MinTheta: 5000}},
		{"fig1-soft", fig1Instance(t, 0), TIRMOptions{MinTheta: 5000, SoftCoverage: true}},
		{"random", randomInstance(31, 50, 200, 3, 2, 0.01), TIRMOptions{MinTheta: 6000, MaxTheta: 40000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			direct, err := TIRM(tc.inst, xrand.New(11), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			idx, err := BuildIndex(tc.inst, 11, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			staged, err := AllocateFromIndex(idx, Request{Opts: tc.opts})
			if err != nil {
				t.Fatal(err)
			}
			sameAllocation(t, direct.Alloc, staged.Alloc)
			for i := range direct.EstRevenue {
				if direct.EstRevenue[i] != staged.EstRevenue[i] {
					t.Errorf("ad %d est revenue %v vs %v", i, direct.EstRevenue[i], staged.EstRevenue[i])
				}
				if direct.FinalTheta[i] != staged.FinalTheta[i] {
					t.Errorf("ad %d θ %d vs %d", i, direct.FinalTheta[i], staged.FinalTheta[i])
				}
			}
		})
	}
}

// TestAllocateFromIndexReuse runs the same request twice against one index:
// the allocations must match exactly and the second run must draw nothing.
func TestAllocateFromIndexReuse(t *testing.T) {
	inst := randomInstance(60, 50, 200, 3, 2, 0)
	idx, err := BuildIndex(inst, 5, TIRMOptions{MinTheta: 6000, MaxTheta: 40000})
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Opts: TIRMOptions{MinTheta: 6000, MaxTheta: 40000}}
	first, err := AllocateFromIndex(idx, req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := AllocateFromIndex(idx, req)
	if err != nil {
		t.Fatal(err)
	}
	sameAllocation(t, first.Alloc, second.Alloc)
	if second.TotalSetsSampled != 0 {
		t.Errorf("warm run drew %d sets; index should already hold the sample", second.TotalSetsSampled)
	}
	if second.SetsReused == 0 {
		t.Error("warm run reports no reused sets")
	}
}

// TestBuildOptionsDoNotChangeStream: the sample content is a pure function
// of (instance, seed, position), so presampling depth must not affect
// allocations.
func TestBuildOptionsDoNotChangeStream(t *testing.T) {
	inst := fig1Instance(t, 0)
	opts := TIRMOptions{MinTheta: 5000}
	shallow, err := BuildIndex(inst, 3, TIRMOptions{MinTheta: 1000})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := BuildIndex(inst, 3, TIRMOptions{MinTheta: 20000})
	if err != nil {
		t.Fatal(err)
	}
	a, err := AllocateFromIndex(shallow, Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	b, err := AllocateFromIndex(deep, Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	sameAllocation(t, a.Alloc, b.Alloc)
}

func TestAllocateFromIndexOverrides(t *testing.T) {
	inst := fig1Instance(t, 0)
	idx, err := BuildIndex(inst, 7, TIRMOptions{MinTheta: 5000})
	if err != nil {
		t.Fatal(err)
	}
	opts := TIRMOptions{MinTheta: 5000}

	t.Run("subset", func(t *testing.T) {
		res, err := AllocateFromIndex(idx, Request{Opts: opts, Ads: []int{0, 2}})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Alloc.Seeds) != len(inst.Ads) {
			t.Fatalf("allocation covers %d ads, want %d", len(res.Alloc.Seeds), len(inst.Ads))
		}
		for _, j := range []int{1, 3} {
			if len(res.Alloc.Seeds[j]) != 0 {
				t.Errorf("unselected ad %d got seeds %v", j, res.Alloc.Seeds[j])
			}
		}
		if len(res.Alloc.Seeds[0]) == 0 {
			t.Error("selected ad 0 got no seeds")
		}
	})

	t.Run("lambda", func(t *testing.T) {
		huge := 100.0
		res, err := AllocateFromIndex(idx, Request{Opts: opts, Lambda: &huge})
		if err != nil {
			t.Fatal(err)
		}
		if res.Alloc.NumSeeds() != 0 {
			t.Errorf("λ=100 still allocated %d seeds", res.Alloc.NumSeeds())
		}
	})

	t.Run("kappa", func(t *testing.T) {
		res, err := AllocateFromIndex(idx, Request{Opts: opts, Kappa: ConstKappa(2)})
		if err != nil {
			t.Fatal(err)
		}
		relaxed := *inst
		relaxed.Kappa = ConstKappa(2)
		if err := res.Alloc.Validate(&relaxed); err != nil {
			t.Fatal(err)
		}
		base, err := AllocateFromIndex(idx, Request{Opts: opts})
		if err != nil {
			t.Fatal(err)
		}
		if res.Alloc.NumSeeds() < base.Alloc.NumSeeds() {
			t.Errorf("κ=2 allocated fewer seeds (%d) than κ=1 (%d)", res.Alloc.NumSeeds(), base.Alloc.NumSeeds())
		}
	})

	t.Run("budgets", func(t *testing.T) {
		tiny := []float64{0.5, 0.5, 0.5, 0.5}
		res, err := AllocateFromIndex(idx, Request{Opts: opts, Budgets: tiny})
		if err != nil {
			t.Fatal(err)
		}
		base, err := AllocateFromIndex(idx, Request{Opts: opts})
		if err != nil {
			t.Fatal(err)
		}
		if res.Alloc.NumSeeds() > base.Alloc.NumSeeds() {
			t.Errorf("tiny budgets allocated more seeds (%d) than the originals (%d)",
				res.Alloc.NumSeeds(), base.Alloc.NumSeeds())
		}
	})

	t.Run("invalid", func(t *testing.T) {
		if _, err := AllocateFromIndex(idx, Request{Opts: opts, Ads: []int{9}}); err == nil {
			t.Error("out-of-range ad subset accepted")
		}
		if _, err := AllocateFromIndex(idx, Request{Opts: opts, Budgets: []float64{1}}); err == nil {
			t.Error("short budget override accepted")
		}
		neg := -1.0
		if _, err := AllocateFromIndex(idx, Request{Opts: opts, Lambda: &neg}); err == nil {
			t.Error("negative λ accepted")
		}
		if _, err := AllocateFromIndex(idx, Request{Opts: opts, Kappa: VecKappa(make([]int32, 2))}); err == nil {
			t.Error("short κ vector accepted")
		}
	})
}

// TestIndexSnapshotRoundTrip: encode → decode → identical allocation, and a
// mismatched instance is rejected.
func TestIndexSnapshotRoundTrip(t *testing.T) {
	inst := randomInstance(90, 40, 160, 2, 1, 0)
	opts := TIRMOptions{MinTheta: 6000, MaxTheta: 30000}
	idx, err := BuildIndex(inst, 21, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := AllocateFromIndex(idx, Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := idx.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndexSnapshot(inst, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Seed() != idx.Seed() {
		t.Errorf("loaded seed %d, want %d", loaded.Seed(), idx.Seed())
	}
	got, err := AllocateFromIndex(loaded, Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	sameAllocation(t, want.Alloc, got.Alloc)
	if got.TotalSetsSampled != 0 {
		t.Errorf("allocation on loaded snapshot drew %d sets", got.TotalSetsSampled)
	}

	other := randomInstance(91, 40, 160, 2, 1, 0)
	if _, err := LoadIndexSnapshot(other, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("snapshot accepted for a different instance")
	}
	if _, err := LoadIndexSnapshot(inst, bytes.NewReader(buf.Bytes()[:40])); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

// TestSnapshotFingerprintSeesTopology: two graphs with identical node and
// edge counts and identical probability values but different wiring must
// not exchange snapshots.
func TestSnapshotFingerprintSeesTopology(t *testing.T) {
	build := func(edges [][2]int32) *Instance {
		b := graph.NewBuilder(4)
		for _, e := range edges {
			b.AddEdge(e[0], e[1])
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return &Instance{
			G: g,
			Ads: []Ad{{
				Name:   "a",
				Budget: 1,
				CPE:    1,
				Params: topic.ItemParams{
					Probs: []float32{0.5, 0.5, 0.5},
					CTPs:  topic.ConstCTP{Nodes: 4, P: 0.5},
				},
			}},
			Kappa: ConstKappa(1),
		}
	}
	a := build([][2]int32{{0, 1}, {1, 2}, {2, 3}})
	bInst := build([][2]int32{{0, 2}, {2, 1}, {1, 3}})

	idx, err := BuildIndex(a, 1, TIRMOptions{MinTheta: 512, MaxTheta: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndexSnapshot(bInst, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("snapshot accepted across graphs with identical counts but different wiring")
	}
	if _, err := LoadIndexSnapshot(a, bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("snapshot rejected for its own instance: %v", err)
	}
}

// TestIndexGrowthDeterminism: growing the index through an allocation that
// needs a larger θ must not perturb allocations that were possible before.
func TestIndexGrowthDeterminism(t *testing.T) {
	inst := randomInstance(77, 60, 240, 1, 3, 0)
	ads := append([]Ad{}, inst.Ads...)
	ads[0].Budget = 25
	ads[0].CPE = 1
	inst.Ads = ads

	small := Request{Opts: TIRMOptions{MinTheta: 4000, MaxTheta: 8000}}
	big := Request{Opts: TIRMOptions{MinTheta: 8000, MaxTheta: 60000}}

	idx, err := BuildIndex(inst, 4, small.Opts)
	if err != nil {
		t.Fatal(err)
	}
	before, err := AllocateFromIndex(idx, small)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AllocateFromIndex(idx, big); err != nil {
		t.Fatal(err)
	}
	after, err := AllocateFromIndex(idx, small)
	if err != nil {
		t.Fatal(err)
	}
	sameAllocation(t, before.Alloc, after.Alloc)
	if idx.MemBytes() <= 0 {
		t.Error("index reports no memory")
	}
}
