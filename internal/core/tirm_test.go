package core

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestTIRMOnFig1(t *testing.T) {
	inst := fig1Instance(t, 0)
	res, err := TIRM(inst, xrand.New(1), TIRMOptions{Eps: 0.1, MinTheta: 60000, MaxTheta: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Alloc.Validate(inst); err != nil {
		t.Fatalf("invalid allocation: %v", err)
	}
	regret := exactTotalRegret(inst, res.Alloc)
	// With a large sample the coverage estimates are tight, so TIRM should
	// land close to the greedy optimum on the toy instance (allocation B
	// achieves 2.6998; greedy-exact does at least as well). TIRM picks
	// per-ad max-coverage candidates, so allow modest slack.
	if regret > 3.2 {
		t.Errorf("TIRM regret %.4f on Fig1; expected ≤ 3.2", regret)
	}
	t.Logf("TIRM fig1: regret=%.4f seeds=%v θ=%v s=%v", regret, res.Alloc.Seeds, res.FinalTheta, res.FinalSeedTarget)
}

func TestTIRMDeterministic(t *testing.T) {
	inst := fig1Instance(t, 0)
	a, err := TIRM(inst, xrand.New(9), TIRMOptions{MinTheta: 5000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TIRM(inst, xrand.New(9), TIRMOptions{MinTheta: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Iterations != b.Iterations || a.TotalSetsSampled != b.TotalSetsSampled {
		t.Fatal("TIRM not deterministic in stats")
	}
	for i := range a.Alloc.Seeds {
		if len(a.Alloc.Seeds[i]) != len(b.Alloc.Seeds[i]) {
			t.Fatal("TIRM not deterministic in seed counts")
		}
		for j := range a.Alloc.Seeds[i] {
			if a.Alloc.Seeds[i][j] != b.Alloc.Seeds[i][j] {
				t.Fatal("TIRM not deterministic in seeds")
			}
		}
	}
}

func TestTIRMRevenueEstimateCalibrated(t *testing.T) {
	// TIRM's internal revenue estimate must agree with the exact revenue of
	// its chosen seeds within sampling tolerance on the toy instance.
	inst := fig1Instance(t, 0)
	res, err := TIRM(inst, xrand.New(3), TIRMOptions{MinTheta: 80000, MaxTheta: 300000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range inst.Ads {
		exact := exactRevenue(inst, i, res.Alloc.Seeds[i])
		est := res.EstRevenue[i]
		// The δ-scaled RR estimator slightly underestimates once |S|>1
		// (see diffusion.ExactTheorem5Marginal); allow 10% + 0.05 slack.
		if math.Abs(est-exact) > 0.1*exact+0.05 {
			t.Errorf("ad %s: est revenue %.4f vs exact %.4f", inst.Ads[i].Name, est, exact)
		}
	}
}

func TestTIRMAttentionBounds(t *testing.T) {
	for kappa := 1; kappa <= 3; kappa++ {
		inst := fig1Instance(t, 0)
		inst.Kappa = ConstKappa(kappa)
		res, err := TIRM(inst, xrand.New(uint64(kappa)), TIRMOptions{MinTheta: 5000})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Alloc.Validate(inst); err != nil {
			t.Errorf("κ=%d: %v", kappa, err)
		}
	}
}

func TestTIRMOnRandomInstances(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		inst := randomInstance(seed+50, 40, 160, 3, 2, 0.01)
		res, err := TIRM(inst, xrand.New(seed), TIRMOptions{MinTheta: 8000, MaxTheta: 50000})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Alloc.Validate(inst); err != nil {
			t.Errorf("seed %d: invalid allocation: %v", seed, err)
		}
		if res.EstRegret(inst) > inst.TotalBudget() {
			t.Errorf("seed %d: est regret exceeds empty-allocation regret", seed)
		}
	}
}

func TestTIRMSeedTargetGrowth(t *testing.T) {
	// A large budget relative to single-node revenue must trigger the
	// iterative seed-size estimation (s_i must grow past its initial 1).
	inst := randomInstance(77, 60, 240, 1, 3, 0)
	ads := append([]Ad{}, inst.Ads...)
	ads[0].Budget = 25
	ads[0].CPE = 1
	inst.Ads = ads
	res, err := TIRM(inst, xrand.New(4), TIRMOptions{MinTheta: 8000, MaxTheta: 60000})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalSeedTarget[0] <= 1 {
		t.Errorf("seed target never grew: %d", res.FinalSeedTarget[0])
	}
	if len(res.Alloc.Seeds[0]) <= 1 {
		t.Errorf("only %d seeds allocated for a large budget", len(res.Alloc.Seeds[0]))
	}
}

func TestTIRMHugeLambda(t *testing.T) {
	inst := fig1Instance(t, 100)
	res, err := TIRM(inst, xrand.New(5), TIRMOptions{MinTheta: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alloc.NumSeeds() != 0 {
		t.Errorf("λ=100 still allocated %d seeds", res.Alloc.NumSeeds())
	}
}

func TestTIRMMaxSeedsCap(t *testing.T) {
	inst := fig1Instance(t, 0)
	res, err := TIRM(inst, xrand.New(6), TIRMOptions{MinTheta: 5000, MaxSeedsPerAd: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Alloc.Seeds {
		if len(s) > 1 {
			t.Errorf("ad %d has %d seeds despite cap", i, len(s))
		}
	}
}

func TestTIRMThetaRespectsBounds(t *testing.T) {
	inst := fig1Instance(t, 0)
	res, err := TIRM(inst, xrand.New(7), TIRMOptions{MinTheta: 3000, MaxTheta: 4000})
	if err != nil {
		t.Fatal(err)
	}
	for i, th := range res.FinalTheta {
		if th < 3000 || th > 4000 {
			t.Errorf("ad %d: θ=%d outside [3000,4000]", i, th)
		}
	}
}

func TestTIRMRejectsInvalidInstance(t *testing.T) {
	inst := fig1Instance(t, 0)
	inst.Kappa = nil
	if _, err := TIRM(inst, xrand.New(1), TIRMOptions{}); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

func TestKptFromWidths(t *testing.T) {
	// No widths or no edges: floor at max(1, s).
	if v := kptFromWidths(nil, 3, 10, 5, nil); v != 3 {
		t.Errorf("empty widths kpt %v", v)
	}
	if v := kptFromWidths([]int64{1, 2}, 2, 10, 0, nil); v != 2 {
		t.Errorf("zero-edge kpt %v", v)
	}
	// Hand check: widths {1,3}, s=1, n=10, m=4:
	// κ = mean(1/4, 3/4) = 0.5 ⇒ kpt = 10·0.5/2 = 2.5.
	if v := kptFromWidths([]int64{1, 3}, 1, 10, 4, nil); math.Abs(v-2.5) > 1e-12 {
		t.Errorf("kpt %v, want 2.5", v)
	}
	// Monotone in s.
	if kptFromWidths([]int64{1, 3}, 2, 10, 4, nil) <= kptFromWidths([]int64{1, 3}, 1, 10, 4, nil) {
		t.Error("kpt not increasing in s")
	}
}
