package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// AllocationFile is the JSON on-disk form of an allocation, carrying enough
// metadata to re-evaluate it later (adalloc -save / -load): the instance is
// regenerable from (dataset, seed, scale), so only seeds are stored.
type AllocationFile struct {
	// Format tags the schema for forward compatibility.
	Format int `json:"format"`
	// Dataset/Seed/Scale/Kappa/Lambda identify the generating instance.
	Dataset string  `json:"dataset,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`
	Scale   float64 `json:"scale,omitempty"`
	Kappa   int     `json:"kappa,omitempty"`
	Lambda  float64 `json:"lambda,omitempty"`
	// Algo names the algorithm that produced the allocation.
	Algo string `json:"algo,omitempty"`
	// Ads lists per-ad seed sets in ad order, keyed by ad name.
	Ads []AllocationFileAd `json:"ads"`
}

// AllocationFileAd is one ad's entry in an AllocationFile.
type AllocationFileAd struct {
	Name  string  `json:"name"`
	Seeds []int32 `json:"seeds"`
}

// currentFormat is the AllocationFile schema version.
const currentFormat = 1

// WriteAllocation serializes an allocation with its provenance metadata.
func WriteAllocation(w io.Writer, inst *Instance, alloc *Allocation, meta AllocationFile) error {
	if len(alloc.Seeds) != len(inst.Ads) {
		return fmt.Errorf("core: allocation has %d ads, instance %d", len(alloc.Seeds), len(inst.Ads))
	}
	meta.Format = currentFormat
	meta.Ads = make([]AllocationFileAd, len(inst.Ads))
	for i, ad := range inst.Ads {
		seeds := alloc.Seeds[i]
		if seeds == nil {
			seeds = []int32{}
		}
		meta.Ads[i] = AllocationFileAd{Name: ad.Name, Seeds: seeds}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(meta)
}

// ReadAllocation parses an AllocationFile and validates the allocation
// against the instance (ad count, node ranges, attention bounds).
func ReadAllocation(r io.Reader, inst *Instance) (*Allocation, *AllocationFile, error) {
	var file AllocationFile
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return nil, nil, fmt.Errorf("core: parsing allocation: %w", err)
	}
	if file.Format != currentFormat {
		return nil, nil, fmt.Errorf("core: unsupported allocation format %d", file.Format)
	}
	if len(file.Ads) != len(inst.Ads) {
		return nil, nil, fmt.Errorf("core: allocation file has %d ads, instance %d", len(file.Ads), len(inst.Ads))
	}
	alloc := NewAllocation(len(inst.Ads))
	for i, ad := range file.Ads {
		if want := inst.Ads[i].Name; want != "" && ad.Name != want {
			return nil, nil, fmt.Errorf("core: ad %d name %q does not match instance %q", i, ad.Name, want)
		}
		alloc.Seeds[i] = ad.Seeds
	}
	if err := alloc.Validate(inst); err != nil {
		return nil, nil, err
	}
	return alloc, &file, nil
}
