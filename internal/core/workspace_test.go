package core

import (
	"reflect"
	"testing"

	"repro/internal/rrset"
)

// allocSnapshot captures everything a selection run reports that could
// betray cross-run state leakage or parallel nondeterminism.
type allocSnapshot struct {
	Seeds      [][]int32
	EstRevenue []float64
	FinalTheta []int
	Target     []int
	Iterations int
}

func snapshotOf(res *TIRMResult) allocSnapshot {
	return allocSnapshot{
		Seeds:      res.Alloc.Seeds,
		EstRevenue: res.EstRevenue,
		FinalTheta: res.FinalTheta,
		Target:     res.FinalSeedTarget,
		Iterations: res.Iterations,
	}
}

// TestAllocateFromIndexParallelAndPooled pins the tentpole invariant of the
// workspace/parallel-scan refactor: allocations are byte-identical (seeds,
// revenue estimates, θ, seed targets, iteration counts) across (a) serial
// vs parallel per-ad scoring at any worker cap, (b) a cold workspace vs a
// pooled one reused across many requests, and (c) soft vs hard coverage
// modes each under all of the above.
func TestAllocateFromIndexParallelAndPooled(t *testing.T) {
	defer rrset.SetMaxWorkers(0)
	inst := randomInstance(123, 80, 320, 4, 2, 0.01)
	opts := TIRMOptions{Eps: 0.3, MinTheta: 2000, MaxTheta: 16000}

	for _, soft := range []bool{false, true} {
		o := opts
		o.SoftCoverage = soft
		idx, err := BuildIndex(inst, 9, o)
		if err != nil {
			t.Fatal(err)
		}
		rrset.SetMaxWorkers(1)
		ref, err := AllocateFromIndex(idx, Request{Opts: o})
		if err != nil {
			t.Fatal(err)
		}
		want := snapshotOf(ref)

		for _, workers := range []int{1, 2, 4, 0} {
			rrset.SetMaxWorkers(workers)
			pool := &WorkspacePool{}
			for run := 0; run < 3; run++ {
				res, err := AllocateFromIndex(idx, Request{Opts: o, Pool: pool})
				if err != nil {
					t.Fatalf("soft=%v workers=%d run=%d: %v", soft, workers, run, err)
				}
				if got := snapshotOf(res); !reflect.DeepEqual(got, want) {
					t.Fatalf("soft=%v workers=%d run=%d diverged from serial run:\n got %+v\nwant %+v",
						soft, workers, run, got, want)
				}
			}
			hits, misses := pool.Stats()
			if hits+misses != 3 || misses < 1 {
				t.Fatalf("soft=%v workers=%d: pool stats hits=%d misses=%d, want 3 total", soft, workers, hits, misses)
			}
			if !raceDetectorOn && (misses != 1 || hits != 2) {
				// The race runtime drops sync.Pool puts at random, so the
				// exact split is only deterministic without it.
				t.Fatalf("soft=%v workers=%d: pool stats hits=%d misses=%d, want 2/1", soft, workers, hits, misses)
			}
		}
	}
}

// TestWorkspacePoolDefault confirms requests without an explicit pool share
// the process-wide default (the second identical request must not
// construct per-ad state from scratch — its workspace comes back warm).
func TestWorkspacePoolDefault(t *testing.T) {
	inst := randomInstance(321, 50, 200, 3, 1, 0)
	opts := TIRMOptions{Eps: 0.3, MinTheta: 1000, MaxTheta: 8000}
	idx, err := BuildIndex(inst, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AllocateFromIndex(idx, Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	h0, _ := defaultWorkspacePool.Stats()
	b, err := AllocateFromIndex(idx, Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := defaultWorkspacePool.Stats()
	if !raceDetectorOn && h1 <= h0 {
		t.Fatalf("default pool hits did not advance (%d -> %d)", h0, h1)
	}
	if !reflect.DeepEqual(a.Alloc.Seeds, b.Alloc.Seeds) {
		t.Fatal("pooled rerun diverged")
	}
}

// TestWorkspaceReleaseDropsIndexRefs guards the pool-hygiene contract: a
// parked workspace must hold no references into the index it last served
// (sample handles, views, CTP vectors), so pooling never pins a retired
// index's arenas live.
func TestWorkspaceReleaseDropsIndexRefs(t *testing.T) {
	inst := randomInstance(99, 40, 160, 2, 1, 0)
	opts := TIRMOptions{Eps: 0.3, MinTheta: 500, MaxTheta: 4000}
	idx, err := BuildIndex(inst, 7, opts)
	if err != nil {
		t.Fatal(err)
	}
	pool := &WorkspacePool{}
	if _, err := AllocateFromIndex(idx, Request{Opts: opts, Pool: pool}); err != nil {
		t.Fatal(err)
	}
	ws := pool.get() // the workspace the run just parked
	for i, a := range ws.slots {
		if a.src != nil || a.ctps != nil || a.widths != nil || a.seeds != nil {
			t.Fatalf("slot %d retains index references after release", i)
		}
		if a.col.hard != nil || a.col.soft != nil {
			t.Fatalf("slot %d retains coverage state after release", i)
		}
	}
}
