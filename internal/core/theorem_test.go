package core

import (
	"math"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/topic"
	"repro/internal/xrand"
)

// TestBruteForceFig1 computes the true optimum of the running example and
// verifies that Greedy (Algorithm 1, exact oracle) is close to it — and in
// particular strictly better than both hand allocations of the paper.
func TestBruteForceFig1(t *testing.T) {
	inst := fig1Instance(t, 0)
	opt, optRegret, err := BruteForce(inst, BruteForceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Validate(inst); err != nil {
		t.Fatalf("brute-force allocation invalid: %v", err)
	}
	greedy, err := Greedy(inst, NewExactFactory(inst), GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	greedyRegret := exactTotalRegret(inst, greedy.Alloc)
	if optRegret > greedyRegret+1e-9 {
		t.Fatalf("OPT %.6f worse than greedy %.6f — brute force is broken", optRegret, greedyRegret)
	}
	if optRegret > 2.6997590 {
		t.Errorf("OPT %.6f worse than allocation B", optRegret)
	}
	// REGRET-MINIMIZATION is inapproximable in general, but on this gadget
	// greedy should land within 10% of OPT.
	if greedyRegret > 1.1*optRegret+1e-9 {
		t.Errorf("greedy %.6f vs OPT %.6f: gap above 10%%", greedyRegret, optRegret)
	}
	t.Logf("Fig1 OPT regret=%.6f (greedy %.6f), OPT alloc=%v", optRegret, greedyRegret, opt.Seeds)
}

func TestBruteForceRespectsCaps(t *testing.T) {
	inst := fig1Instance(t, 0)
	if _, _, err := BruteForce(inst, BruteForceOptions{MaxStates: 10}); err == nil {
		t.Fatal("state cap not enforced")
	}
}

func TestMinSeedsToReachBudget(t *testing.T) {
	inst := fig1Instance(t, 0)
	// Ad d: budget 1, δ=0.6; no single node reaches 1.0 alone
	// (best is v3: 0.6·2.0975 = 1.2585 ≥ 1 — so s_opt = 1).
	s, ok := MinSeedsToReachBudget(inst, 3)
	if !ok || s != 1 {
		t.Errorf("ad d s_opt = %d,%v; want 1 (v3 alone overshoots)", s, ok)
	}
	// Ad a: budget 4 with δ=0.9; the whole graph yields ≈5.54, and greedy
	// needs at least 3 seeds to reach 4.
	s, ok = MinSeedsToReachBudget(inst, 0)
	if !ok {
		t.Fatal("ad a budget unreachable")
	}
	if s < 2 || s > 4 {
		t.Errorf("ad a s_opt = %d", s)
	}
}

// tinyInstance builds a random instance small enough for brute force.
func tinyInstance(seed uint64, h int, kappa int, lambda float64) *Instance {
	r := xrand.New(seed)
	n := 5 + r.IntN(3)
	b := graph.NewBuilder(n)
	edges := 0
	for u := 0; u < n && edges < 10; u++ {
		for v := 0; v < n && edges < 10; v++ {
			if u != v && r.Bernoulli(0.25) {
				b.AddEdge(int32(u), int32(v))
				edges++
			}
		}
	}
	g := b.MustBuild()
	probs := make([]float32, g.M())
	for e := range probs {
		probs[e] = float32(r.Uniform(0.1, 0.7))
	}
	ads := make([]Ad, h)
	for i := range ads {
		ctps := make([]float32, n)
		for u := range ctps {
			ctps[u] = float32(r.Uniform(0.3, 0.9))
		}
		vc, _ := topic.NewVecCTP(ctps)
		ads[i] = Ad{
			Name:   string(rune('a' + i)),
			Budget: r.Uniform(1.5, 4),
			CPE:    1,
			Params: topic.ItemParams{Probs: probs, CTPs: vc},
		}
	}
	return &Instance{G: g, Ads: ads, Kappa: ConstKappa(kappa), Lambda: lambda}
}

// TestTheorem3Bound: on instances admitting an allocation with total regret
// ≤ B/3, Algorithm 1 must output an allocation with regret ≤ B/3.
func TestTheorem3Bound(t *testing.T) {
	tested := 0
	for seed := uint64(0); seed < 20 && tested < 6; seed++ {
		inst := tinyInstance(seed, 2, 1, 0)
		_, opt, err := BruteForce(inst, BruteForceOptions{})
		if err != nil {
			t.Fatal(err)
		}
		B := inst.TotalBudget()
		if opt > B/3 {
			continue // premise not met
		}
		tested++
		greedy, err := Greedy(inst, NewExactFactory(inst), GreedyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got := exactTotalRegret(inst, greedy.Alloc)
		if got > B/3+1e-9 {
			t.Errorf("seed %d: greedy regret %.6f > B/3 = %.6f (OPT %.6f)", seed, got, B/3, opt)
		}
	}
	if tested == 0 {
		t.Skip("no instance satisfied the Theorem 3 premise")
	}
	t.Logf("checked Theorem 3 on %d admitting instances", tested)
}

// TestTheorem4Bound: with p_max = max_i max_u Π_i({u})/B_i, instances
// admitting regret ≤ min(p_max/2, 1−p_max)·B must see greedy achieve it.
func TestTheorem4Bound(t *testing.T) {
	tested := 0
	for seed := uint64(100); seed < 130 && tested < 5; seed++ {
		inst := tinyInstance(seed, 2, 2, 0)
		// Compute p_max exactly.
		pmax := 0.0
		for i := range inst.Ads {
			sim := diffusion.NewSimulator(inst.G, inst.Ads[i].Params)
			for u := 0; u < inst.G.N(); u++ {
				p := inst.Ads[i].CPE * diffusion.ExactSpread(sim, []int32{int32(u)}) / inst.Ads[i].Budget
				if p > pmax {
					pmax = p
				}
			}
		}
		if pmax <= 0 || pmax >= 1 {
			continue // Theorem 4's regime requires p_i ∈ (0,1)
		}
		bound := math.Min(pmax/2, 1-pmax) * inst.TotalBudget()
		_, opt, err := BruteForce(inst, BruteForceOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if opt > bound {
			continue // premise not met
		}
		tested++
		greedy, err := Greedy(inst, NewExactFactory(inst), GreedyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got := exactTotalRegret(inst, greedy.Alloc)
		if got > bound+1e-9 {
			t.Errorf("seed %d: greedy regret %.6f > bound %.6f (p_max %.4f, OPT %.6f)",
				seed, got, bound, pmax, opt)
		}
	}
	if tested == 0 {
		t.Skip("no instance satisfied the Theorem 4 premise")
	}
	t.Logf("checked Theorem 4 on %d admitting instances", tested)
}

// TestTheorem2BudgetRegretBound verifies Claim 2 of Theorem 2: with
// unconstrained attention (κ ≥ h) and λ ≤ δ(u,i)·cpe(i), the budget-regret
// of each advertiser at termination is at most (p_i·B_i + λ)/2 — provided
// the candidate pool was not exhausted (the paper's "practical
// considerations" premise).
func TestTheorem2BudgetRegretBound(t *testing.T) {
	tested := 0
	for seed := uint64(200); seed < 230 && tested < 8; seed++ {
		h := 2
		inst := tinyInstance(seed, h, h, 0.01)
		// λ must satisfy λ ≤ δ(u,i)·cpe(i) ∀u,i — CTPs ≥ 0.3, CPE = 1 ⇒ fine.
		greedy, err := Greedy(inst, NewExactFactory(inst), GreedyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range inst.Ads {
			sim := diffusion.NewSimulator(inst.G, inst.Ads[i].Params)
			// p_i = max_u Π_i({u})/B_i must be in (0,1).
			pi := 0.0
			for u := 0; u < inst.G.N(); u++ {
				p := inst.Ads[i].CPE * diffusion.ExactSpread(sim, []int32{int32(u)}) / inst.Ads[i].Budget
				if p > pi {
					pi = p
				}
			}
			if pi <= 0 || pi >= 1 {
				continue
			}
			// Pool exhaustion voids the bound: skip if every node is seeded.
			if len(greedy.Alloc.Seeds[i]) == inst.G.N() {
				continue
			}
			tested++
			rev := exactRevenue(inst, i, greedy.Alloc.Seeds[i])
			budgetRegret := math.Abs(inst.Ads[i].Budget - rev)
			bound := (pi*inst.Ads[i].Budget + inst.Lambda) / 2
			if budgetRegret > bound+1e-9 {
				t.Errorf("seed %d ad %d: budget-regret %.6f > (p·B+λ)/2 = %.6f (p=%.4f)",
					seed, i, budgetRegret, bound, pi)
			}
		}
	}
	if tested == 0 {
		t.Skip("no (instance, ad) satisfied the Theorem 2 premises")
	}
	t.Logf("checked Theorem 2 budget-regret bound on %d (instance, ad) pairs", tested)
}

// TestTIRMNearBruteForceOnFig1 measures TIRM's optimality gap on the toy.
func TestTIRMNearBruteForceOnFig1(t *testing.T) {
	inst := fig1Instance(t, 0)
	_, opt, err := BruteForce(inst, BruteForceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := TIRM(inst, xrand.New(11), TIRMOptions{Eps: 0.1, MinTheta: 60000, MaxTheta: 200000})
	if err != nil {
		t.Fatal(err)
	}
	got := exactTotalRegret(inst, res.Alloc)
	if got > 1.25*opt {
		t.Errorf("TIRM regret %.4f vs OPT %.4f: gap above 25%%", got, opt)
	}
}
