package core

import (
	"bytes"
	"reflect"
	"testing"
)

// TestSnapshotAfterRemoveAdRoundTrip pins the mutated-campaign restart
// path: a snapshot taken after AddAd/RemoveAd mutations (which decouple
// stream ids from positions) must reload with the identical stream ids and
// produce byte-identical subsequent allocations — including post-reload
// sample growth, which silently diverges if any stream id is wrong. A
// re-save of the loaded index must reproduce the snapshot bytes exactly
// (same header, same stream ids, same arenas).
func TestSnapshotAfterRemoveAdRoundTrip(t *testing.T) {
	inst := randomInstance(77, 40, 160, 3, 1, 0)
	opts := TIRMOptions{MinTheta: 4096, MaxTheta: 8192}
	idx, err := BuildIndex(inst, 9, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate: add a fourth ad (stream id 3), remove the middle original
	// (positions shift; stream ids now [0, 2, 3]).
	extra := inst.Ads[0]
	extra.Name = "late-arrival"
	if _, err := idx.AddAd(extra, opts); err != nil {
		t.Fatal(err)
	}
	if err := idx.RemoveAd(1); err != nil {
		t.Fatal(err)
	}
	if got := idx.Epoch(); got != 3 {
		t.Fatalf("epoch %d after two mutations, want 3", got)
	}
	mutInst := idx.Inst()
	want, err := AllocateFromIndex(idx, Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}

	var snap bytes.Buffer
	if err := idx.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndexSnapshot(mutInst, bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Stream ids must survive: [0, 2, 3], not positional [0, 1, 2].
	wantStreams := []uint64{0, 2, 3}
	for j, a := range loaded.curr.Load().ads {
		if a.stream != wantStreams[j] {
			t.Fatalf("loaded ad %d has stream id %d, want %d", j, a.stream, wantStreams[j])
		}
	}
	// A re-save (before any growth) must be byte-identical to the first
	// snapshot — header, stream ids, arenas, CRCs.
	var resave bytes.Buffer
	if err := loaded.WriteSnapshot(&resave); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap.Bytes(), resave.Bytes()) {
		t.Fatalf("re-saved snapshot differs from the original (%d vs %d bytes)", snap.Len(), resave.Len())
	}
	// The loaded index starts a fresh epoch lineage at 1, and epoch-pinned
	// requests against it must work.
	if got := loaded.Epoch(); got != 1 {
		t.Fatalf("loaded index epoch %d, want fresh lineage 1", got)
	}
	got, err := AllocateFromIndex(loaded, Request{Opts: opts, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Alloc.Seeds, got.Alloc.Seeds) {
		t.Fatalf("post-reload allocation diverged\n want %v\n  got %v", want.Alloc.Seeds, got.Alloc.Seeds)
	}
	if !reflect.DeepEqual(want.EstRevenue, got.EstRevenue) {
		t.Fatalf("post-reload revenues diverged\n want %v\n  got %v", want.EstRevenue, got.EstRevenue)
	}

	// Post-reload growth continues the exact streams: force θ past the
	// stored prefix on both indexes and compare again.
	grow := TIRMOptions{MinTheta: 4096, MaxTheta: 16384}
	wantGrown, err := AllocateFromIndex(idx, Request{Opts: grow})
	if err != nil {
		t.Fatal(err)
	}
	gotGrown, err := AllocateFromIndex(loaded, Request{Opts: grow})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantGrown.Alloc.Seeds, gotGrown.Alloc.Seeds) {
		t.Fatal("post-reload growth diverged from the original index's streams")
	}

	// A new ad on the loaded index must not reuse a departed stream id:
	// next unused is 4.
	pos, err := loaded.AddAd(extraNamed(inst, "after-reload"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if s := loaded.curr.Load().ads[pos].stream; s != 4 {
		t.Fatalf("post-reload AddAd got stream id %d, want 4", s)
	}
}

// extraNamed clones the instance's first ad under a new name.
func extraNamed(inst *Instance, name string) Ad {
	ad := inst.Ads[0]
	ad.Name = name
	return ad
}
