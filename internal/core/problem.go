// Package core implements the paper's primary contribution: the
// REGRET-MINIMIZATION problem (Problem 1), its greedy algorithm
// (Algorithm 1) with pluggable spread estimators, and the scalable
// Two-phase Iterative Regret Minimization algorithm TIRM (Algorithm 2).
package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/topic"
)

// Ad describes one advertiser's campaign: the monetary agreement (budget
// B_i, cost-per-engagement cpe(i)) plus the runtime form of its topic
// distribution (mixed edge probabilities and CTP vector, see topic.Mix).
type Ad struct {
	// Name labels the ad in reports.
	Name string
	// Budget is B_i: the maximum amount the advertiser will pay.
	Budget float64
	// CPE is cpe(i): the payment per click.
	CPE float64
	// Params carries the ad's mixed edge probabilities p^i and CTPs δ(·,i).
	Params topic.ItemParams
}

// AttentionBounds exposes the per-user attention bound κ_u: the maximum
// number of ads the host may promote directly to user u.
type AttentionBounds interface {
	At(u int32) int
}

// ConstKappa is a uniform attention bound (the paper's experiments use
// κ_u ∈ {1..5} for all users).
type ConstKappa int

// At implements AttentionBounds.
func (k ConstKappa) At(int32) int { return int(k) }

// VecKappa is a per-user attention bound vector.
type VecKappa []int32

// At implements AttentionBounds.
func (v VecKappa) At(u int32) int { return int(v[u]) }

// Instance is a full REGRET-MINIMIZATION problem (Problem 1).
type Instance struct {
	G      *graph.Graph
	Ads    []Ad
	Kappa  AttentionBounds
	Lambda float64 // seed-penalty λ ≥ 0
}

// Validate checks structural consistency of the instance.
func (inst *Instance) Validate() error {
	if inst.G == nil {
		return fmt.Errorf("core: instance has no graph")
	}
	if len(inst.Ads) == 0 {
		return fmt.Errorf("core: instance has no ads")
	}
	if inst.Kappa == nil {
		return fmt.Errorf("core: instance has no attention bounds")
	}
	if inst.Lambda < 0 || math.IsNaN(inst.Lambda) {
		return fmt.Errorf("core: λ = %v must be ≥ 0", inst.Lambda)
	}
	for i, ad := range inst.Ads {
		if err := validateAd(inst.G, i, ad); err != nil {
			return err
		}
	}
	return nil
}

// validateAd checks one advertiser's spec against the graph it will run on
// (shared by Instance.Validate and Index.AddAd); pos only labels errors.
func validateAd(g *graph.Graph, pos int, ad Ad) error {
	if ad.Budget <= 0 || math.IsNaN(ad.Budget) {
		return fmt.Errorf("core: ad %d (%s) budget %v must be > 0", pos, ad.Name, ad.Budget)
	}
	if ad.CPE <= 0 || math.IsNaN(ad.CPE) {
		return fmt.Errorf("core: ad %d (%s) CPE %v must be > 0", pos, ad.Name, ad.CPE)
	}
	if int64(len(ad.Params.Probs)) != g.M() {
		return fmt.Errorf("core: ad %d (%s) has %d edge probabilities, graph has %d edges",
			pos, ad.Name, len(ad.Params.Probs), g.M())
	}
	if ad.Params.CTPs == nil || ad.Params.CTPs.N() != g.N() {
		return fmt.Errorf("core: ad %d (%s) CTP vector does not cover %d nodes", pos, ad.Name, g.N())
	}
	return nil
}

// TotalBudget returns Σ_i B_i, the denominator of the paper's
// regret-relative-to-budget reporting and of Theorems 2–4.
func (inst *Instance) TotalBudget() float64 {
	var b float64
	for _, ad := range inst.Ads {
		b += ad.Budget
	}
	return b
}

// Allocation is a seed-set assignment S = (S_1, …, S_h).
type Allocation struct {
	// Seeds[i] lists ad i's seed users in selection order.
	Seeds [][]int32
}

// NewAllocation returns an empty allocation for h ads.
func NewAllocation(h int) *Allocation {
	return &Allocation{Seeds: make([][]int32, h)}
}

// NumSeeds returns Σ_i |S_i|.
func (a *Allocation) NumSeeds() int {
	total := 0
	for _, s := range a.Seeds {
		total += len(s)
	}
	return total
}

// DistinctTargeted returns |∪_i S_i| — the "number of nodes targeted at
// least once" statistic of the paper's Table 3.
func (a *Allocation) DistinctTargeted() int {
	seen := map[int32]bool{}
	for _, s := range a.Seeds {
		for _, u := range s {
			seen[u] = true
		}
	}
	return len(seen)
}

// Validate checks that the allocation is valid for the instance: every
// seed is a real node, no ad seeds the same user twice, and no user exceeds
// her attention bound (Problem 1's validity condition).
func (a *Allocation) Validate(inst *Instance) error {
	if len(a.Seeds) != len(inst.Ads) {
		return fmt.Errorf("core: allocation covers %d ads, instance has %d", len(a.Seeds), len(inst.Ads))
	}
	n := int32(inst.G.N())
	counts := make(map[int32]int)
	for i, s := range a.Seeds {
		inAd := make(map[int32]bool, len(s))
		for _, u := range s {
			if u < 0 || u >= n {
				return fmt.Errorf("core: ad %d seeds out-of-range node %d", i, u)
			}
			if inAd[u] {
				return fmt.Errorf("core: ad %d seeds node %d twice", i, u)
			}
			inAd[u] = true
			counts[u]++
		}
	}
	for u, c := range counts {
		if c > inst.Kappa.At(u) {
			return fmt.Errorf("core: node %d promoted %d ads, attention bound is %d", u, c, inst.Kappa.At(u))
		}
	}
	return nil
}

// RegretTerm computes one advertiser's regret (Eq. 3):
// |B − Π| + λ·|S|.
func RegretTerm(budget, revenue, lambda float64, numSeeds int) float64 {
	return math.Abs(budget-revenue) + lambda*float64(numSeeds)
}

// RegretDrop computes the decrease in R_i from adding a seed with marginal
// revenue mg when the current budget gap is gap = B_i − Π_i(S_i):
//
//	drop = |gap| − |gap − mg| − λ
//
// Positive iff the addition strictly reduces regret. For gap > 0 the drop
// equals min(mg, 2·gap − mg) − λ, the quantity bounded in Theorem 2's
// Claims 1–2; for gap ≤ 0 (budget already met) it is −mg − λ ≤ −λ, so an
// overshooting ad can never accept another seed.
func RegretDrop(gap, mg, lambda float64) float64 {
	return math.Abs(gap) - math.Abs(gap-mg) - lambda
}

// Attention tracks how many ads each user has been allocated and enforces
// κ_u. Shared by every allocation algorithm in the repository.
type Attention struct {
	counts []int32
	bounds AttentionBounds
}

// NewAttention creates a tracker for n users.
func NewAttention(n int, bounds AttentionBounds) *Attention {
	return &Attention{counts: make([]int32, n), bounds: bounds}
}

// CanTake reports whether u can accept one more promoted ad.
func (at *Attention) CanTake(u int32) bool {
	return int(at.counts[u]) < at.bounds.At(u)
}

// Take records one more promoted ad for u. It panics if the bound is
// already reached (callers must check CanTake).
func (at *Attention) Take(u int32) {
	if !at.CanTake(u) {
		panic(fmt.Sprintf("core: attention bound of node %d exceeded", u))
	}
	at.counts[u]++
}

// Count returns the number of ads currently promoted to u.
func (at *Attention) Count(u int32) int { return int(at.counts[u]) }
