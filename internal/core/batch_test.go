package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/rrset"
)

// sameTIRMResult compares the full request-visible surface of two results:
// the allocation, the estimates, and the θ/seed-target traces.
func sameTIRMResult(t *testing.T, a, b *TIRMResult) {
	t.Helper()
	sameAllocation(t, a.Alloc, b.Alloc)
	for i := range a.EstRevenue {
		if a.EstRevenue[i] != b.EstRevenue[i] {
			t.Errorf("ad %d est revenue %v vs %v", i, a.EstRevenue[i], b.EstRevenue[i])
		}
		if a.FinalTheta[i] != b.FinalTheta[i] {
			t.Errorf("ad %d θ %d vs %d", i, a.FinalTheta[i], b.FinalTheta[i])
		}
		if a.FinalSeedTarget[i] != b.FinalSeedTarget[i] {
			t.Errorf("ad %d seed target %d vs %d", i, a.FinalSeedTarget[i], b.FinalSeedTarget[i])
		}
	}
}

// TestKernelRequestGolden pins the cross-kernel determinism contract at the
// request level: the same request forced onto the sparse kernel, forced onto
// the bitset kernel, and left on auto-selection must produce byte-identical
// allocations and estimates — the kernel changes cost, never results.
func TestKernelRequestGolden(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opts TIRMOptions
	}{
		{"hard", TIRMOptions{MinTheta: 6000, MaxTheta: 40000}},
		{"soft", TIRMOptions{MinTheta: 6000, MaxTheta: 40000, SoftCoverage: true}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			inst := randomInstance(31, 50, 200, 3, 2, 0.01)
			idx, err := BuildIndex(inst, 11, cfg.opts)
			if err != nil {
				t.Fatal(err)
			}
			base, err := AllocateFromIndex(idx, Request{Opts: cfg.opts, Kernel: "sparse"})
			if err != nil {
				t.Fatal(err)
			}
			if got := base.KernelCounts[rrset.KernelSparse]; got != len(inst.Ads) {
				t.Errorf("sparse run: KernelCounts[sparse] = %d, want %d", got, len(inst.Ads))
			}
			forced, err := AllocateFromIndex(idx, Request{Opts: cfg.opts, Kernel: "bitset"})
			if err != nil {
				t.Fatal(err)
			}
			if got := forced.KernelCounts[rrset.KernelBitset]; got != len(inst.Ads) {
				t.Errorf("bitset run: KernelCounts[bitset] = %d, want %d (forced builds must activate)", got, len(inst.Ads))
			}
			sameTIRMResult(t, base, forced)
			for _, kernel := range []string{"", "auto"} {
				auto, err := AllocateFromIndex(idx, Request{Opts: cfg.opts, Kernel: kernel})
				if err != nil {
					t.Fatal(err)
				}
				sameTIRMResult(t, base, auto)
				var total int
				for _, c := range auto.KernelCounts {
					total += c
				}
				if total != len(inst.Ads) {
					t.Errorf("kernel %q: KernelCounts sums to %d, want %d", kernel, total, len(inst.Ads))
				}
			}
		})
	}
}

// TestKernelRequestValidation: unknown kernel names are rejected up front.
func TestKernelRequestValidation(t *testing.T) {
	inst := fig1Instance(t, 0)
	idx, err := BuildIndex(inst, 7, TIRMOptions{MinTheta: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AllocateFromIndex(idx, Request{Opts: TIRMOptions{MinTheta: 5000}, Kernel: "dense"}); err == nil {
		t.Fatal("unknown kernel name accepted")
	}
}

// TestAllocateBatchMatchesSequential pins the batch contract: every item of
// a mixed batch — different budgets, ad subsets, kernels, options, and one
// deliberately bad request — must return exactly what the sequential
// AllocateFromIndex call with the same request returns, and the bad item
// must fail alone without poisoning its siblings.
func TestAllocateBatchMatchesSequential(t *testing.T) {
	inst := randomInstance(60, 50, 200, 3, 2, 0)
	opts := TIRMOptions{MinTheta: 6000, MaxTheta: 40000}
	idx, err := BuildIndex(inst, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	lambda := 0.02
	reqs := []Request{
		{Opts: opts},
		{Opts: opts, Kernel: "bitset"},
		{Opts: opts, Kernel: "sparse", Budgets: []float64{1, 2, 3}},
		{Opts: opts, Ads: []int{0, 2}},
		{Opts: opts, Kernel: "no-such-kernel"}, // must fail alone
		{Opts: opts, Lambda: &lambda},
		{Opts: TIRMOptions{MinTheta: 6000, MaxTheta: 40000, SoftCoverage: true}},
		{Opts: opts, Kappa: ConstKappa(1)},
	}
	want := make([]BatchResult, len(reqs))
	for i := range reqs {
		res, err := AllocateFromIndex(idx, reqs[i])
		want[i] = BatchResult{Res: res, Err: err}
	}
	got := AllocateBatch(idx, reqs)
	if len(got) != len(reqs) {
		t.Fatalf("batch returned %d results for %d requests", len(got), len(reqs))
	}
	for i := range got {
		if (got[i].Err != nil) != (want[i].Err != nil) {
			t.Fatalf("item %d: batch err %v vs sequential err %v", i, got[i].Err, want[i].Err)
		}
		if got[i].Err != nil {
			continue
		}
		sameTIRMResult(t, want[i].Res, got[i].Res)
	}
	if got[4].Err == nil {
		t.Error("bad request in slot 4 did not fail")
	}
	for i, r := range got {
		if i != 4 && r.Err != nil {
			t.Errorf("sibling item %d poisoned by bad request: %v", i, r.Err)
		}
	}
	if out := AllocateBatch(idx, nil); len(out) != 0 {
		t.Errorf("empty batch returned %d results", len(out))
	}
}

// TestAllocateBatchPinsEpoch runs batches while the campaign set churns
// underneath: every item of one batch must observe the same epoch, so all
// results within a batch have one consistent ad count and identical
// requests yield identical allocations.
func TestAllocateBatchPinsEpoch(t *testing.T) {
	inst := randomInstance(77, 40, 160, 3, 2, 0)
	opts := TIRMOptions{MinTheta: 1024, MaxTheta: 4096}
	idx, err := BuildIndex(inst, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			extra := inst.Ads[i%len(inst.Ads)]
			extra.Name = "churn"
			if _, err := idx.AddAd(extra, opts); err != nil {
				t.Errorf("concurrent AddAd: %v", err)
				return
			}
			if err := idx.RemoveAd(idx.NumAds() - 1); err != nil {
				t.Errorf("concurrent RemoveAd: %v", err)
				return
			}
		}
	}()
	reqs := make([]Request, 8)
	for i := range reqs {
		reqs[i] = Request{Opts: opts}
	}
	for round := 0; round < 4; round++ {
		out := AllocateBatch(idx, reqs)
		for i, r := range out {
			if r.Err != nil {
				t.Fatalf("round %d item %d: %v", round, i, r.Err)
			}
			if len(r.Res.Alloc.Seeds) != len(out[0].Res.Alloc.Seeds) {
				t.Fatalf("round %d: item %d saw %d ads, item 0 saw %d — epoch not pinned",
					round, i, len(r.Res.Alloc.Seeds), len(out[0].Res.Alloc.Seeds))
			}
			sameTIRMResult(t, out[0].Res, r.Res)
		}
	}
	close(stop)
	wg.Wait()
}

// TestAllocateBatchStaleEpoch: an item pinned to a bygone epoch fails with
// ErrStaleEpoch exactly as it would alone, while current-epoch siblings in
// the same batch succeed.
func TestAllocateBatchStaleEpoch(t *testing.T) {
	inst := randomInstance(60, 50, 200, 3, 2, 0)
	opts := TIRMOptions{MinTheta: 1024, MaxTheta: 4096}
	idx, err := BuildIndex(inst, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	old := idx.Epoch()
	extra := inst.Ads[0]
	extra.Name = "late"
	if _, err := idx.AddAd(extra, opts); err != nil {
		t.Fatal(err)
	}
	out := AllocateBatch(idx, []Request{
		{Opts: opts, Epoch: old},
		{Opts: opts},
		{Opts: opts, Epoch: idx.Epoch()},
	})
	if !errors.Is(out[0].Err, ErrStaleEpoch) {
		t.Errorf("stale item: err = %v, want ErrStaleEpoch", out[0].Err)
	}
	for i := 1; i < 3; i++ {
		if out[i].Err != nil {
			t.Errorf("current-epoch item %d failed: %v", i, out[i].Err)
		}
	}
}
