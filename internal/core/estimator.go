package core

import (
	"math"

	"repro/internal/diffusion"
	"repro/internal/topic"
	"repro/internal/xrand"
)

// AdEstimator is the pluggable revenue oracle behind Algorithm 1: it tracks
// one ad's growing seed set and estimates Π_i. Implementations in this
// repository: Monte Carlo (this file), exact enumeration (this file, tiny
// graphs only), IRIE (package irie), and TIRM's RR-set coverage (tirm.go,
// used directly rather than through Greedy).
//
// Greedy's CELF machinery requires MarginalRevenue to be submodular in the
// committed set: the value reported for u must never increase after a
// Commit. All provided implementations satisfy this (up to MC noise).
type AdEstimator interface {
	// MarginalRevenue estimates Π(S ∪ {u}) − Π(S) for the current seed set.
	// u must not already be committed.
	MarginalRevenue(u int32) float64
	// Commit adds u to the seed set.
	Commit(u int32)
	// Revenue returns the current estimate of Π(S).
	Revenue() float64
}

// MCEstimator estimates revenue with Monte Carlo simulation of the TIC-CTP
// model. Marginal evaluations are deterministic functions of (base seed,
// |S|, u), so Greedy runs are reproducible regardless of evaluation order.
type MCEstimator struct {
	sim     *diffusion.Simulator
	cpe     float64
	runs    int
	rng     *xrand.Rand
	seeds   []int32
	revenue float64
}

// NewMCEstimator builds an MC revenue oracle with the given number of
// cascades per spread evaluation.
func NewMCEstimator(sim *diffusion.Simulator, cpe float64, runs int, rng *xrand.Rand) *MCEstimator {
	if runs <= 0 {
		panic("core: MCEstimator needs runs > 0")
	}
	return &MCEstimator{sim: sim, cpe: cpe, runs: runs, rng: rng}
}

func (e *MCEstimator) evalRNG(u int32) *xrand.Rand {
	return e.rng.Split(uint64(len(e.seeds))<<32 | uint64(uint32(u)))
}

// MarginalRevenue implements AdEstimator. Negative MC noise is clamped to
// zero (the true marginal is non-negative by monotonicity).
func (e *MCEstimator) MarginalRevenue(u int32) float64 {
	with := e.sim.SpreadMCParallel(append(e.seeds[:len(e.seeds):len(e.seeds)], u), e.runs, e.evalRNG(u))
	mg := e.cpe*with - e.revenue
	return math.Max(0, mg)
}

// Commit implements AdEstimator.
func (e *MCEstimator) Commit(u int32) {
	e.seeds = append(e.seeds, u)
	e.revenue = e.cpe * e.sim.SpreadMCParallel(e.seeds, e.runs, e.evalRNG(-1))
}

// Revenue implements AdEstimator.
func (e *MCEstimator) Revenue() float64 { return e.revenue }

// Seeds returns the committed seeds (aliases internal storage).
func (e *MCEstimator) Seeds() []int32 { return e.seeds }

// ExactEstimator evaluates revenue by exhaustive possible-world enumeration
// (diffusion.ExactSpread). Only usable on graphs with ≤ diffusion.MaxExactEdges
// edges; it is the ground-truth oracle for unit tests and the Figure 1 gadget.
type ExactEstimator struct {
	sim     *diffusion.Simulator
	cpe     float64
	seeds   []int32
	revenue float64
}

// NewExactEstimator builds the exact oracle.
func NewExactEstimator(sim *diffusion.Simulator, cpe float64) *ExactEstimator {
	return &ExactEstimator{sim: sim, cpe: cpe}
}

// MarginalRevenue implements AdEstimator.
func (e *ExactEstimator) MarginalRevenue(u int32) float64 {
	with := diffusion.ExactSpread(e.sim, append(e.seeds[:len(e.seeds):len(e.seeds)], u))
	return e.cpe*with - e.revenue
}

// Commit implements AdEstimator.
func (e *ExactEstimator) Commit(u int32) {
	e.seeds = append(e.seeds, u)
	e.revenue = e.cpe * diffusion.ExactSpread(e.sim, e.seeds)
}

// Revenue implements AdEstimator.
func (e *ExactEstimator) Revenue() float64 { return e.revenue }

// NewMCFactory returns an estimator factory for Greedy that builds one
// MCEstimator per ad, each with an independent deterministic RNG stream.
func NewMCFactory(inst *Instance, runs int, rng *xrand.Rand) func(i int) AdEstimator {
	return func(i int) AdEstimator {
		ad := inst.Ads[i]
		sim := diffusion.NewSimulator(inst.G, ad.Params)
		return NewMCEstimator(sim, ad.CPE, runs, rng.Split(uint64(i)))
	}
}

// NewExactFactory returns an estimator factory for Greedy using exact
// enumeration (tiny graphs only).
func NewExactFactory(inst *Instance) func(i int) AdEstimator {
	return func(i int) AdEstimator {
		ad := inst.Ads[i]
		sim := diffusion.NewSimulator(inst.G, ad.Params)
		return NewExactEstimator(sim, ad.CPE)
	}
}

// ensure interface compliance
var (
	_ AdEstimator = (*MCEstimator)(nil)
	_ AdEstimator = (*ExactEstimator)(nil)
	_ topic.CTP   = topic.ConstCTP{}
)
