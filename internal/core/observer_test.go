package core

import (
	"testing"
	"time"
)

// recordingObserver captures the timings handed to ObserveAllocation.
type recordingObserver struct {
	calls   int
	timings PhaseTimings
}

func (o *recordingObserver) ObserveAllocation(t PhaseTimings) {
	o.calls++
	o.timings = t
}

// TestObserverDoesNotPerturbAllocation pins the observability contract: an
// attached observer only watches. The allocation, revenues, and θ values
// must be byte-identical with and without it.
func TestObserverDoesNotPerturbAllocation(t *testing.T) {
	inst := randomInstance(31, 50, 200, 3, 2, 0.01)
	opts := TIRMOptions{MinTheta: 6000, MaxTheta: 40000}
	idx, err := BuildIndex(inst, 11, opts)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := AllocateFromIndex(idx, Request{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	obs := &recordingObserver{}
	watched, err := AllocateFromIndex(idx, Request{Opts: opts, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	sameAllocation(t, plain.Alloc, watched.Alloc)
	for i := range plain.EstRevenue {
		if plain.EstRevenue[i] != watched.EstRevenue[i] {
			t.Errorf("ad %d est revenue %v vs %v", i, plain.EstRevenue[i], watched.EstRevenue[i])
		}
		if plain.FinalTheta[i] != watched.FinalTheta[i] {
			t.Errorf("ad %d θ %d vs %d", i, plain.FinalTheta[i], watched.FinalTheta[i])
		}
	}
	if obs.calls != 1 {
		t.Fatalf("observer called %d times, want 1", obs.calls)
	}
}

// TestObserverPhaseTimings checks the reported breakdown is coherent: the
// round count equals the committed iterations, the phases the run must
// enter report non-zero wall time, and every duration is non-negative.
func TestObserverPhaseTimings(t *testing.T) {
	inst := randomInstance(31, 50, 200, 3, 2, 0.01)
	opts := TIRMOptions{MinTheta: 6000, MaxTheta: 40000}
	idx, err := BuildIndex(inst, 11, opts)
	if err != nil {
		t.Fatal(err)
	}
	obs := &recordingObserver{}
	res, err := AllocateFromIndex(idx, Request{Opts: opts, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if obs.timings.Rounds != res.Iterations {
		t.Errorf("observer saw %d rounds, result has %d iterations", obs.timings.Rounds, res.Iterations)
	}
	for p := AllocPhase(0); p < NumAllocPhases; p++ {
		if obs.timings.Phase[p] < 0 {
			t.Errorf("phase %s has negative duration %v", p, obs.timings.Phase[p])
		}
	}
	if obs.timings.Phase[PhaseEstimate] <= 0 {
		t.Error("estimate phase reports no wall time")
	}
	if res.Iterations > 0 && obs.timings.Phase[PhaseScan] <= 0 {
		t.Error("run committed seeds but scan phase reports no wall time")
	}
	var total time.Duration
	for _, d := range obs.timings.Phase {
		total += d
	}
	if total <= 0 {
		t.Error("all phases report zero wall time")
	}
}

// TestAllocPhaseString pins the phase labels metrics are keyed by.
func TestAllocPhaseString(t *testing.T) {
	want := map[AllocPhase]string{
		PhaseEstimate:  "estimate",
		PhaseScan:      "scan",
		PhaseCommit:    "commit",
		PhaseGrow:      "grow",
		NumAllocPhases: "unknown",
		AllocPhase(-1): "unknown",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("AllocPhase(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
}
