// EpochView: the pinned-epoch sample access the shard runtime builds on.
// A shard (internal/shard) owns a per-range core.Index — one slice of every
// ad's block stream — and serves coverage state to a coordinator that runs
// selection globally. The coordinator's steps need exactly what a
// single-node selection run takes from its index, re-expressed in global
// stream positions against a pinned epoch: pilot widths (for KPT), views
// with inverted indexes (to build coverage collections), growth windows
// (θ increases mid-run), and warm-up. This file exports those steps; the
// floats derived from them (KPT, marginal gains, regret drops) are computed
// by the coordinator via KPTFromWidths and the existing exported helpers,
// never on shards — which is what keeps the transport free of
// float-serialization hazards.

package core

import (
	"repro/internal/rrset"
)

// Partition returns the slice of the block stream this index samples (the
// identity partition for a normal single-node index).
func (idx *Index) Partition() rrset.StreamPartition { return idx.part }

// InstanceFingerprint summarizes the inputs an index's stored sample
// depends on — graph topology and every ad's mixed edge probabilities (see
// the snapshot format). The shard coordinator compares fingerprints across
// shards to refuse a cluster whose members were built from different
// instances.
func InstanceFingerprint(inst *Instance) uint64 { return indexFingerprint(inst) }

// KPTFromWidths evaluates TIM's width statistic KPT(s) over a pilot
// sample's widths — the exported form of the estimator behind TIRM's θ
// sizing, for callers (the shard coordinator) that assemble the pilot from
// per-shard slices. Widths must be in ascending global stream order:
// floating-point summation order is part of the byte-identity contract.
// memo is optional caller-owned scratch for the per-width terms (cleared
// here), exactly as in the internal estimator.
func KPTFromWidths(widths []int64, s, n int, m int64, memo map[int64]float64) float64 {
	return kptFromWidths(widths, s, n, m, memo)
}

// WithDefaults returns the options with every unset field at its
// documented default — the same normalization TIRM and AllocateFromIndex
// apply internally, exported so a distributed selection run sizes θ from
// the identical effective options.
func (o TIRMOptions) WithDefaults() TIRMOptions { return o.withDefaults() }

// Resolve validates the request against an instance and resolves its ad
// subset and effective λ/κ — the exported form of the per-run request
// normalization, so the shard coordinator applies the identical rules
// (including override shape checks and SpentBudget validation) before
// distributing a run.
func (req *Request) Resolve(inst *Instance) (adIDs []int, lambda float64, kappa AttentionBounds, err error) {
	return req.validate(inst)
}

// EpochView pins one campaign epoch of an index for external sample
// access: every method answers against the same immutable (instance,
// per-ad samples) pair no matter how many AddAd/RemoveAd swaps land
// concurrently, exactly like an in-flight allocation. Sample growth
// triggered through a view is accounted to the index's SetsSampled.
//
// All positions are GLOBAL stream positions; on a shard index the returned
// views and widths cover the local (part-owned) subsequence, in ascending
// global order.
type EpochView struct {
	idx *Index
	ep  *indexEpoch
}

// CurrentEpoch returns a view pinned to the index's current epoch.
func (idx *Index) CurrentEpoch() EpochView {
	return EpochView{idx: idx, ep: idx.curr.Load()}
}

// Version returns the pinned epoch's version.
func (v EpochView) Version() uint64 { return v.ep.version }

// Inst returns the pinned epoch's instance (a stable snapshot).
func (v EpochView) Inst() *Instance { return v.ep.inst }

// NumAds returns the pinned epoch's advertiser count.
func (v EpochView) NumAds() int { return len(v.ep.ads) }

// AdHave returns how many local sets ad j's sample currently stores,
// without growing it — the warm-start baseline a run reports as reused.
func (v EpochView) AdHave(j int) int { return v.ep.ads[j].size() }

// AdPilot returns ad j's local widths for the global stream prefix
// [0, want), growing the sample if needed. The returned slice is a stable
// snapshot (growth only appends past it) and must be treated as read-only.
func (v EpochView) AdPilot(j, want int) (widths []int64, fresh int64) {
	_, widths, fresh = v.ep.ads[j].prefix(want)
	v.idx.sampled.Add(fresh)
	return widths, fresh
}

// AdView returns ad j's local sets for the global prefix [0, want) plus
// the shared inverted index over them (local ids), growing the sample and
// syncing the index if needed — the warm handoff to a coverage collection.
func (v EpochView) AdView(j, want int) (sets rrset.FamilyView, inv *rrset.Inverted, fresh int64) {
	sets, _, inv, fresh = v.ep.ads[j].view(want)
	v.idx.sampled.Add(fresh)
	return sets, inv, fresh
}

// AdWindow returns ad j's local slice of global stream sets [from, to) as
// a stable view, growing the sample if needed — the growth segment a
// selection run appends to its coverage state when θ rises.
func (v EpochView) AdWindow(j, from, to int) (sets rrset.FamilyView, fresh int64) {
	sets, fresh = v.ep.ads[j].window(from, to)
	v.idx.sampled.Add(fresh)
	return sets, fresh
}

// AdEnsure grows ad j's sample to cover the global prefix [0, want) and
// syncs its inverted index — the coordinator-driven equivalent of
// BuildIndex's presampling, run once the coordinator has sized θ from
// whole-stream pilot widths.
func (v EpochView) AdEnsure(j, want int) (fresh int64) {
	a := v.ep.ads[j]
	a.mu.Lock()
	fresh = a.ensure(want)
	a.syncInv(a.fam.Len())
	a.mu.Unlock()
	v.idx.sampled.Add(fresh)
	return fresh
}
