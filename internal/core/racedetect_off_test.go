//go:build !race

package core

// raceDetectorOn reports whether the race detector is active. The race
// runtime deliberately drops a fraction of sync.Pool puts to expose
// lifecycle races, so exact pool hit/miss assertions only hold without it.
const raceDetectorOn = false
