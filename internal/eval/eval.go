// Package eval provides the neutral evaluation methodology of §6: the final
// allocation of every algorithm is scored with fresh Monte Carlo
// simulations of the TIC-CTP model (the paper uses 10K runs), independent
// of whatever estimator the algorithm used internally, "for neutral, fair,
// and accurate comparisons".
package eval

import (
	"repro/internal/core"
	"repro/internal/diffusion"
	"repro/internal/xrand"
)

// DefaultRuns is the paper's Monte Carlo evaluation budget.
const DefaultRuns = 10000

// AdOutcome scores one advertiser's seed set.
type AdOutcome struct {
	Name string
	// Revenue is the MC estimate of Π_i(S_i) = cpe(i)·σ_i(S_i).
	Revenue float64
	// RevenueCI95 is the 95% normal-approximation half-width of Revenue,
	// so regret differences can be judged against Monte Carlo noise.
	RevenueCI95 float64
	// Budget echoes B_i.
	Budget float64
	// Overshoot is Revenue − Budget (the signed per-ad quantity of Fig. 5).
	Overshoot float64
	// BudgetRegret is |B_i − Π_i|.
	BudgetRegret float64
	// SeedRegret is λ·|S_i|.
	SeedRegret float64
	// Regret is R_i(S_i) = BudgetRegret + SeedRegret (Eq. 3).
	Regret float64
	// Seeds is |S_i|.
	Seeds int
}

// Outcome scores a full allocation.
type Outcome struct {
	Ads []AdOutcome
	// TotalRegret is R(S) (Eq. 4).
	TotalRegret float64
	// TotalBudget is Σ B_i.
	TotalBudget float64
	// RegretOverBudget is TotalRegret/TotalBudget, the paper's
	// "regret expressed relative to the total budget" reporting unit.
	RegretOverBudget float64
	// DistinctTargeted is |∪ S_i| (Table 3).
	DistinctTargeted int
	// TotalSeeds is Σ|S_i|.
	TotalSeeds int
}

// Evaluate scores an allocation with `runs` MC cascades per ad (use
// DefaultRuns for the paper's setting). Deterministic given rng's seed.
func Evaluate(inst *core.Instance, alloc *core.Allocation, runs int, rng *xrand.Rand) *Outcome {
	out := &Outcome{
		Ads:              make([]AdOutcome, len(inst.Ads)),
		TotalBudget:      inst.TotalBudget(),
		DistinctTargeted: alloc.DistinctTargeted(),
		TotalSeeds:       alloc.NumSeeds(),
	}
	for i, ad := range inst.Ads {
		sim := diffusion.NewSimulator(inst.G, ad.Params)
		var spread, stderr float64
		if len(alloc.Seeds[i]) > 0 {
			spread, stderr = sim.SpreadMCStats(alloc.Seeds[i], runs, rng.Split(uint64(i)))
		}
		rev := ad.CPE * spread
		ao := AdOutcome{
			Name:         ad.Name,
			Revenue:      rev,
			RevenueCI95:  1.96 * ad.CPE * stderr,
			Budget:       ad.Budget,
			Overshoot:    rev - ad.Budget,
			BudgetRegret: abs(ad.Budget - rev),
			SeedRegret:   inst.Lambda * float64(len(alloc.Seeds[i])),
			Seeds:        len(alloc.Seeds[i]),
		}
		ao.Regret = ao.BudgetRegret + ao.SeedRegret
		out.Ads[i] = ao
		out.TotalRegret += ao.Regret
	}
	if out.TotalBudget > 0 {
		out.RegretOverBudget = out.TotalRegret / out.TotalBudget
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
