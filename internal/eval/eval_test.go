package eval

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/xrand"
)

func TestEvaluateFig1AllocationA(t *testing.T) {
	inst := gen.Fig1Instance(0)
	out := Evaluate(inst, gen.Fig1AllocationA(), 200000, xrand.New(1))
	// Exact total regret of allocation A is 6.5440725 (Example 1).
	if math.Abs(out.TotalRegret-6.544) > 0.05 {
		t.Errorf("regret(A) = %.4f, want ≈6.544", out.TotalRegret)
	}
	if out.TotalBudget != 9 {
		t.Errorf("total budget %v", out.TotalBudget)
	}
	if math.Abs(out.RegretOverBudget-6.544/9) > 0.01 {
		t.Errorf("regret/budget = %v", out.RegretOverBudget)
	}
	if out.DistinctTargeted != 6 || out.TotalSeeds != 6 {
		t.Errorf("targeted %d seeds %d", out.DistinctTargeted, out.TotalSeeds)
	}
	// Ad a overshoots (rev ≈ 5.544 > 4); the rest earn nothing.
	if out.Ads[0].Overshoot < 1.4 || out.Ads[0].Overshoot > 1.7 {
		t.Errorf("ad a overshoot %.4f, want ≈1.544", out.Ads[0].Overshoot)
	}
	for i := 1; i < 4; i++ {
		if out.Ads[i].Revenue != 0 {
			t.Errorf("ad %d revenue %v, want 0", i, out.Ads[i].Revenue)
		}
		if out.Ads[i].Regret != inst.Ads[i].Budget {
			t.Errorf("ad %d regret %v, want full budget", i, out.Ads[i].Regret)
		}
	}
}

func TestEvaluateFig1AllocationB(t *testing.T) {
	inst := gen.Fig1Instance(0)
	out := Evaluate(inst, gen.Fig1AllocationB(), 200000, xrand.New(2))
	if math.Abs(out.TotalRegret-2.6998) > 0.05 {
		t.Errorf("regret(B) = %.4f, want ≈2.6998", out.TotalRegret)
	}
}

func TestEvaluateLambdaTerm(t *testing.T) {
	inst := gen.Fig1Instance(0.1)
	out := Evaluate(inst, gen.Fig1AllocationB(), 100000, xrand.New(3))
	// Example 2: regret grows by exactly 0.1 × 6 seeds.
	if math.Abs(out.TotalRegret-3.2998) > 0.05 {
		t.Errorf("regret(B, λ=0.1) = %.4f, want ≈3.2998", out.TotalRegret)
	}
	var seedRegret float64
	for _, ao := range out.Ads {
		seedRegret += ao.SeedRegret
	}
	if math.Abs(seedRegret-0.6) > 1e-9 {
		t.Errorf("seed regret %v, want 0.6", seedRegret)
	}
}

func TestEvaluateEmptyAllocation(t *testing.T) {
	inst := gen.Fig1Instance(0)
	out := Evaluate(inst, core.NewAllocation(4), 100, xrand.New(4))
	if out.TotalRegret != inst.TotalBudget() {
		t.Errorf("empty allocation regret %v, want total budget %v", out.TotalRegret, inst.TotalBudget())
	}
	if out.DistinctTargeted != 0 {
		t.Errorf("targeted %d", out.DistinctTargeted)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	inst := gen.Fig1Instance(0)
	a := Evaluate(inst, gen.Fig1AllocationB(), 20000, xrand.New(5))
	b := Evaluate(inst, gen.Fig1AllocationB(), 20000, xrand.New(5))
	if a.TotalRegret != b.TotalRegret {
		t.Error("Evaluate not deterministic")
	}
}

func TestOutcomeIdentity(t *testing.T) {
	inst := gen.Fig1Instance(0.25)
	out := Evaluate(inst, gen.Fig1AllocationB(), 5000, xrand.New(6))
	var sum float64
	for _, ao := range out.Ads {
		if math.Abs(ao.Regret-(ao.BudgetRegret+ao.SeedRegret)) > 1e-9 {
			t.Errorf("ad %s regret identity broken", ao.Name)
		}
		if math.Abs(ao.Overshoot-(ao.Revenue-ao.Budget)) > 1e-9 {
			t.Errorf("ad %s overshoot identity broken", ao.Name)
		}
		if math.Abs(ao.BudgetRegret-math.Abs(ao.Overshoot)) > 1e-9 {
			t.Errorf("ad %s budget-regret ≠ |overshoot|", ao.Name)
		}
		sum += ao.Regret
	}
	if math.Abs(sum-out.TotalRegret) > 1e-9 {
		t.Error("total regret ≠ sum of per-ad regrets")
	}
}
