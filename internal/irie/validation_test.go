package irie

import (
	"sort"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/graph"
	"repro/internal/topic"
	"repro/internal/xrand"
)

// TestRankTracksMCSpread validates IRIE's reason for existing: ranks must
// order nodes approximately like their true IC spread. On a random 300-node
// graph the IRIE-top-ranked node must be among the top decile by MC spread,
// and rank/spread must agree on gross comparisons (high-spread nodes
// out-rank low-spread nodes).
func TestRankTracksMCSpread(t *testing.T) {
	r := xrand.New(42)
	const n = 300
	b := graph.NewBuilderHint(n, 1500)
	for i := 0; i < 1500; i++ {
		u, v := int32(r.IntN(n)), int32(r.IntN(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.MustBuild()
	probs := make([]float32, g.M())
	for e := range probs {
		probs[e] = float32(r.Uniform(0, 0.25))
	}
	est := NewEstimator(g, probs, topic.ConstCTP{Nodes: n, P: 1}, 1, Options{Alpha: 0.8})
	sim := diffusion.NewSimulator(g, topic.ItemParams{Probs: probs, CTPs: topic.ConstCTP{Nodes: n, P: 1}})

	// MC spread of every node (IC, CTP=1 to isolate the rank estimate).
	spreads := make([]float64, n)
	for u := 0; u < n; u++ {
		spreads[u] = sim.SpreadICMCParallel([]int32{int32(u)}, 600, xrand.New(uint64(u)))
	}
	// IRIE's argmax node must be in the top decile by true spread.
	bestRank, bestNode := -1.0, int32(-1)
	for u := int32(0); u < int32(n); u++ {
		if est.Rank(u) > bestRank {
			bestRank, bestNode = est.Rank(u), u
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return spreads[order[a]] > spreads[order[b]] })
	pos := 0
	for i, u := range order {
		if int32(u) == bestNode {
			pos = i
			break
		}
	}
	if pos > n/10 {
		t.Errorf("IRIE top node %d is only #%d by MC spread", bestNode, pos+1)
	}
	// Gross pairwise agreement: the MC-top-decile nodes must out-rank the
	// MC-bottom-decile nodes.
	for _, hi := range order[:n/10] {
		for _, lo := range order[n-n/10:] {
			if est.Rank(int32(hi)) < est.Rank(int32(lo)) {
				t.Fatalf("rank inversion: node %d (spread %.1f) ranked below node %d (spread %.1f)",
					hi, spreads[hi], lo, spreads[lo])
			}
		}
	}
}
