// Package irie implements the IRIE influence-estimation heuristic of Jung,
// Heo and Chen (ICDM 2012 [18]), which the paper uses as the spread oracle
// of its strongest baseline, GREEDY-IRIE.
//
// IRIE has two parts:
//
//   - IR (influence rank): a damped linear iteration
//     r_u = (1 − ap_u) · (1 + α · Σ_{v ∈ N_out(u)} p_{u,v} · r_v)
//     whose fixpoint estimates the marginal IC spread of seeding u given the
//     already-selected seeds. α is the damping factor the paper tunes per
//     dataset (0.7 for scalability runs, 0.8 for quality runs).
//
//   - IE (influence estimation): after a seed w is committed, the activation
//     probabilities ap_u are raised by w's estimated reach, discounting
//     future ranks. We estimate reach with a pruned forward probe under the
//     independence approximation (contributions below ProbeTol or deeper
//     than ProbeDepth are dropped), scaled by the seed's CTP δ(w) so the
//     discount matches the TIC-CTP regret framework.
//
// The Estimator type satisfies core.AdEstimator structurally, so
// core.Greedy(inst, irie factory, …) is the paper's GREEDY-IRIE.
package irie

import (
	"repro/internal/graph"
	"repro/internal/topic"
)

// Options tunes IRIE.
type Options struct {
	// Alpha is the damping factor α (default 0.8, the paper's best value
	// on the quality datasets; the scalability runs use 0.7).
	Alpha float64
	// Iterations bounds the IR fixpoint iteration (default 20).
	Iterations int
	// ProbeTol prunes reach contributions below this mass (default 1e-4).
	ProbeTol float64
	// ProbeDepth bounds the forward-probe BFS depth (default 4).
	ProbeDepth int
}

func (o Options) withDefaults() Options {
	if o.Alpha <= 0 {
		o.Alpha = 0.8
	}
	if o.Iterations <= 0 {
		o.Iterations = 20
	}
	if o.ProbeTol <= 0 {
		o.ProbeTol = 1e-4
	}
	if o.ProbeDepth <= 0 {
		o.ProbeDepth = 4
	}
	return o
}

// Estimator is IRIE specialized to one ad. It satisfies core.AdEstimator.
type Estimator struct {
	g     *graph.Graph
	probs []float32
	ctps  topic.CTP
	cpe   float64
	opts  Options

	ap      []float64 // activation probability from committed seeds
	ranks   []float64
	scratch []float64
	revenue float64
	seeds   []int32
}

// NewEstimator builds the IRIE oracle for one ad and computes initial ranks.
func NewEstimator(g *graph.Graph, probs []float32, ctps topic.CTP, cpe float64, opts Options) *Estimator {
	if int64(len(probs)) != g.M() {
		panic("irie: probability vector length != edge count")
	}
	if ctps == nil || ctps.N() != g.N() {
		panic("irie: CTP vector does not cover the graph")
	}
	e := &Estimator{
		g:       g,
		probs:   probs,
		ctps:    ctps,
		cpe:     cpe,
		opts:    opts.withDefaults(),
		ap:      make([]float64, g.N()),
		ranks:   make([]float64, g.N()),
		scratch: make([]float64, g.N()),
	}
	e.computeRanks()
	return e
}

// computeRanks runs the damped IR iteration to (approximate) fixpoint.
func (e *Estimator) computeRanks() {
	n := e.g.N()
	cur := e.ranks
	next := e.scratch
	for u := 0; u < n; u++ {
		cur[u] = 1 - e.ap[u]
	}
	for it := 0; it < e.opts.Iterations; it++ {
		for u := int32(0); u < int32(n); u++ {
			targets, first := e.g.OutEdges(u)
			var acc float64
			for i, v := range targets {
				acc += float64(e.probs[first+int64(i)]) * cur[v]
			}
			next[u] = (1 - e.ap[u]) * (1 + e.opts.Alpha*acc)
		}
		cur, next = next, cur
	}
	if &cur[0] != &e.ranks[0] {
		copy(e.ranks, cur)
	}
}

// Rank returns u's current influence rank (marginal IC spread estimate).
func (e *Estimator) Rank(u int32) float64 { return e.ranks[u] }

// AP returns the current activation-probability discount of u.
func (e *Estimator) AP(u int32) float64 { return e.ap[u] }

// MarginalRevenue implements the AdEstimator contract:
// cpe · δ(u) · rank(u), the Theorem-5-style CTP scaling of the IC estimate.
func (e *Estimator) MarginalRevenue(u int32) float64 {
	return e.cpe * e.ctps.At(u) * e.ranks[u]
}

// Revenue implements the AdEstimator contract.
func (e *Estimator) Revenue() float64 { return e.revenue }

// Commit implements the AdEstimator contract: credit the seed's estimated
// marginal revenue, fold its reach into the activation probabilities, and
// refresh the ranks.
func (e *Estimator) Commit(u int32) {
	e.revenue += e.MarginalRevenue(u)
	e.seeds = append(e.seeds, u)
	du := e.ctps.At(u)
	e.probe(u, func(x int32, p float64) {
		e.ap[x] = 1 - (1-e.ap[x])*(1-du*p)
	})
	e.computeRanks()
}

// Seeds returns the committed seeds (aliases internal storage).
func (e *Estimator) Seeds() []int32 { return e.seeds }

// probe estimates the activation probability of every node reachable from
// u within ProbeDepth hops, under the independence approximation, invoking
// visit(x, p) for each node x with estimated probability p (u itself gets
// p = 1). Contributions below ProbeTol are pruned.
func (e *Estimator) probe(u int32, visit func(int32, float64)) {
	act := map[int32]float64{u: 1}
	frontier := []int32{u}
	for depth := 0; depth < e.opts.ProbeDepth && len(frontier) > 0; depth++ {
		var next []int32
		for _, x := range frontier {
			ax := act[x]
			targets, first := e.g.OutEdges(x)
			for i, v := range targets {
				c := ax * float64(e.probs[first+int64(i)])
				if c < e.opts.ProbeTol || v == u {
					continue
				}
				old, seen := act[v]
				nv := 1 - (1-old)*(1-c)
				if nv-old < e.opts.ProbeTol {
					continue
				}
				act[v] = nv
				if !seen {
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	for x, p := range act {
		visit(x, p)
	}
}
