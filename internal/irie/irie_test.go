package irie

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/topic"
)

// star builds a hub with k out-neighbors, all edges with probability p.
func star(k int, p float32) (*graph.Graph, []float32) {
	b := graph.NewBuilder(k + 1)
	for i := 1; i <= k; i++ {
		b.AddEdge(0, int32(i))
	}
	g := b.MustBuild()
	probs := make([]float32, g.M())
	for i := range probs {
		probs[i] = p
	}
	return g, probs
}

func newEst(g *graph.Graph, probs []float32, ctp float64, cpe float64, o Options) *Estimator {
	return NewEstimator(g, probs, topic.ConstCTP{Nodes: g.N(), P: ctp}, cpe, o)
}

func TestRankStarGraph(t *testing.T) {
	// Leaves have rank 1 (no out-edges, ap=0); the hub converges to
	// 1 + α·k·p·1 after one iteration.
	g, probs := star(5, 0.2)
	e := newEst(g, probs, 1, 1, Options{Alpha: 0.7, Iterations: 10})
	wantHub := 1 + 0.7*5*0.2
	if math.Abs(e.Rank(0)-wantHub) > 1e-6 {
		t.Errorf("hub rank %v, want %v", e.Rank(0), wantHub)
	}
	for u := int32(1); u <= 5; u++ {
		if math.Abs(e.Rank(u)-1) > 1e-9 {
			t.Errorf("leaf %d rank %v, want 1", u, e.Rank(u))
		}
	}
}

func TestRankPathDamping(t *testing.T) {
	// Path a->b->c with p=0.5: rank(c)=1, rank(b)=1+α/2,
	// rank(a)=1+α/2·(1+α/2).
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	e := newEst(g, []float32{0.5, 0.5}, 1, 1, Options{Alpha: 0.8, Iterations: 20})
	rb := 1 + 0.8*0.5
	ra := 1 + 0.8*0.5*rb
	if math.Abs(e.Rank(1)-rb) > 1e-6 || math.Abs(e.Rank(0)-ra) > 1e-6 {
		t.Errorf("ranks (%v, %v), want (%v, %v)", e.Rank(0), e.Rank(1), ra, rb)
	}
}

func TestMarginalRevenueScaling(t *testing.T) {
	g, probs := star(4, 0.25)
	e := newEst(g, probs, 0.02, 5.5, Options{Alpha: 0.8})
	want := 5.5 * 0.02 * e.Rank(0)
	if math.Abs(e.MarginalRevenue(0)-want) > 1e-12 {
		t.Errorf("marginal %v, want %v", e.MarginalRevenue(0), want)
	}
}

func TestCommitAccumulatesRevenue(t *testing.T) {
	g, probs := star(4, 0.25)
	e := newEst(g, probs, 0.5, 2, Options{})
	mg0 := e.MarginalRevenue(0)
	e.Commit(0)
	if math.Abs(e.Revenue()-mg0) > 1e-12 {
		t.Errorf("revenue %v after first commit, want %v", e.Revenue(), mg0)
	}
	mg1 := e.MarginalRevenue(1)
	e.Commit(1)
	if math.Abs(e.Revenue()-(mg0+mg1)) > 1e-12 {
		t.Errorf("revenue %v after second commit, want %v", e.Revenue(), mg0+mg1)
	}
	if len(e.Seeds()) != 2 {
		t.Errorf("seeds %v", e.Seeds())
	}
}

func TestRanksDecreaseAfterCommit(t *testing.T) {
	// CELF validity requires monotone non-increasing marginals.
	g, probs := star(5, 0.4)
	e := newEst(g, probs, 1, 1, Options{})
	before := make([]float64, g.N())
	for u := 0; u < g.N(); u++ {
		before[u] = e.Rank(int32(u))
	}
	e.Commit(0)
	for u := 0; u < g.N(); u++ {
		if e.Rank(int32(u)) > before[u]+1e-12 {
			t.Errorf("rank of %d rose after commit: %v -> %v", u, before[u], e.Rank(int32(u)))
		}
	}
	// The hub's leaves are now partially activated: ap = δ(0)·p = 0.4.
	for u := int32(1); u <= 5; u++ {
		if math.Abs(e.AP(u)-0.4) > 1e-6 {
			t.Errorf("leaf %d ap %v, want 0.4", u, e.AP(u))
		}
	}
	if math.Abs(e.AP(0)-1) > 1e-9 {
		t.Errorf("seed ap %v, want 1", e.AP(0))
	}
}

func TestCommitCTPScalesDiscount(t *testing.T) {
	// With seed CTP 0.5 the downstream discount is δ·p = 0.5·0.4.
	g, probs := star(3, 0.4)
	e := newEst(g, probs, 0.5, 1, Options{})
	e.Commit(0)
	for u := int32(1); u <= 3; u++ {
		if math.Abs(e.AP(u)-0.2) > 1e-6 {
			t.Errorf("leaf ap %v, want 0.2", e.AP(u))
		}
	}
}

func TestProbePathProduct(t *testing.T) {
	// a->b->c->d with p=0.5: probe(a) should assign ≈ p, p², p³.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	e := newEst(g, []float32{0.5, 0.5, 0.5}, 1, 1, Options{ProbeDepth: 5})
	got := map[int32]float64{}
	e.probe(0, func(x int32, p float64) { got[x] = p })
	want := map[int32]float64{0: 1, 1: 0.5, 2: 0.25, 3: 0.125}
	for x, w := range want {
		if math.Abs(got[x]-w) > 1e-6 {
			t.Errorf("probe act[%d] = %v, want %v", x, got[x], w)
		}
	}
}

func TestProbeDepthLimit(t *testing.T) {
	b := graph.NewBuilder(5)
	for i := 0; i < 4; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	g := b.MustBuild()
	probs := []float32{1, 1, 1, 1}
	e := newEst(g, probs, 1, 1, Options{ProbeDepth: 2})
	got := map[int32]float64{}
	e.probe(0, func(x int32, p float64) { got[x] = p })
	if _, ok := got[2]; !ok {
		t.Error("depth-2 probe missed node 2 (two hops)")
	}
	if _, ok := got[3]; ok {
		t.Error("depth-2 probe reached node 3 (three hops)")
	}
}

func TestProbeTolPrunes(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	e := newEst(g, []float32{0.001, 0.001}, 1, 1, Options{ProbeTol: 0.01, ProbeDepth: 5})
	got := map[int32]float64{}
	e.probe(0, func(x int32, p float64) { got[x] = p })
	if len(got) != 1 {
		t.Errorf("probe visited %v, want only the source", got)
	}
}

func TestAPBounded(t *testing.T) {
	g, probs := star(4, 0.9)
	e := newEst(g, probs, 1, 1, Options{})
	for u := int32(0); u < int32(g.N()); u++ {
		if e.AP(u) != 0 {
			t.Fatalf("initial ap nonzero")
		}
	}
	e.Commit(0)
	e.Commit(1)
	for u := int32(0); u < int32(g.N()); u++ {
		if e.AP(u) < 0 || e.AP(u) > 1 {
			t.Errorf("ap[%d] = %v outside [0,1]", u, e.AP(u))
		}
	}
}

func TestCycleTermination(t *testing.T) {
	// Cyclic graph: rank iteration and probe must terminate.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	g := b.MustBuild()
	e := newEst(g, []float32{0.9, 0.9, 0.9}, 1, 1, Options{Iterations: 50, ProbeDepth: 10})
	e.Commit(0)
	if e.Revenue() <= 0 {
		t.Error("no revenue on cycle")
	}
	for u := int32(0); u < 3; u++ {
		if math.IsNaN(e.Rank(u)) || math.IsInf(e.Rank(u), 0) {
			t.Errorf("rank[%d] = %v", u, e.Rank(u))
		}
	}
}

func TestNewEstimatorValidation(t *testing.T) {
	g, probs := star(3, 0.2)
	t.Run("probs", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewEstimator(g, probs[:1], topic.ConstCTP{Nodes: g.N(), P: 1}, 1, Options{})
	})
	t.Run("ctp", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewEstimator(g, probs, nil, 1, Options{})
	})
}

func TestDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Alpha != 0.8 || o.Iterations != 20 || o.ProbeTol != 1e-4 || o.ProbeDepth != 4 {
		t.Errorf("defaults %+v", o)
	}
}
