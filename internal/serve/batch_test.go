package serve

import (
	"errors"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestServerAllocateBatch pins the batch endpoint's contract on a single
// node: every item matches the lone /allocate for the same parameters
// (across kernels), bad items fail alone with per-item status codes, the
// kernel tallies surface in /stats, and shape violations are rejected.
func TestServerAllocateBatch(t *testing.T) {
	ts := testServer(t, Options{})
	params := fig1Request().InstanceParams
	opts := fig1Request().Opts

	// Reference: lone /allocate per item shape.
	lone := func(item AllocateItem) AllocateResponse {
		t.Helper()
		var out AllocateResponse
		code := postJSON(t, ts.URL+"/allocate", AllocateRequest{
			InstanceParams: params,
			Kappa:          item.Kappa,
			Lambda:         item.Lambda,
			Ads:            item.Ads,
			Budgets:        item.Budgets,
			Kernel:         item.Kernel,
			Opts:           item.Opts,
		}, &out)
		if code != http.StatusOK {
			t.Fatalf("lone allocate returned %d", code)
		}
		return out
	}

	lambda := 0.5
	items := []AllocateItem{
		{Opts: opts},
		{Opts: opts, Kernel: "bitset"},
		{Opts: opts, Kernel: "sparse"},
		{Opts: opts, Kernel: "definitely-not-a-kernel"}, // fails alone
		{Opts: opts, Ads: []int{0, 2}, Lambda: &lambda},
	}
	want := make([]AllocateResponse, len(items))
	for i, item := range items {
		if i == 3 {
			continue
		}
		want[i] = lone(item)
	}

	var got AllocateBatchResponse
	if code := postJSON(t, ts.URL+"/allocate/batch", AllocateBatchRequest{
		InstanceParams: params,
		Requests:       items,
	}, &got); code != http.StatusOK {
		t.Fatalf("batch returned %d", code)
	}
	if len(got.Items) != len(items) {
		t.Fatalf("batch returned %d items for %d requests", len(got.Items), len(items))
	}
	for i, item := range got.Items {
		if i == 3 {
			if item.Error == "" || item.Status != http.StatusBadRequest {
				t.Errorf("bad item 3 = %+v, want error with status 400", item)
			}
			continue
		}
		if item.Error != "" {
			t.Fatalf("item %d failed: %s", i, item.Error)
		}
		if !reflect.DeepEqual(item.Seeds, want[i].Seeds) {
			t.Errorf("item %d seeds diverged from lone allocate\n want %v\n  got %v", i, want[i].Seeds, item.Seeds)
		}
		if !reflect.DeepEqual(item.EstRevenue, want[i].EstRevenue) {
			t.Errorf("item %d revenue diverged: %v vs %v", i, item.EstRevenue, want[i].EstRevenue)
		}
		if item.EstRegret != want[i].EstRegret {
			t.Errorf("item %d regret %v, lone %v", i, item.EstRegret, want[i].EstRegret)
		}
		if got.Epoch != want[i].Epoch {
			t.Errorf("item %d epoch %d, batch %d", i, want[i].Epoch, got.Epoch)
		}
	}

	// Kernel tallies reach /stats: 4 lone + 4 batch successes over 4 ads,
	// at least one forced run per kernel.
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats returned %d", code)
	}
	var total uint64
	for _, c := range stats.Kernels {
		total += c
	}
	if stats.Kernels["bitset"] == 0 || stats.Kernels["sparse"] == 0 {
		t.Errorf("stats kernels = %v, want both kernels tallied", stats.Kernels)
	}
	if total == 0 {
		t.Errorf("stats kernels empty after successful allocations")
	}

	// Shape violations: empty and oversized batches.
	if code := postJSON(t, ts.URL+"/allocate/batch", AllocateBatchRequest{InstanceParams: params}, nil); code != http.StatusBadRequest {
		t.Errorf("empty batch returned %d, want 400", code)
	}
	over := AllocateBatchRequest{InstanceParams: params, Requests: make([]AllocateItem, MaxBatchItems+1)}
	if code := postJSON(t, ts.URL+"/allocate/batch", over, nil); code != http.StatusBadRequest {
		t.Errorf("oversized batch returned %d, want 400", code)
	}
}

// TestShardedServeBatch drives /allocate/batch through a 2-shard
// coordinator and pins every item against the single-node batch (itself
// already pinned against lone /allocate): distributed batching changes
// round trips, never allocations.
func TestShardedServeBatch(t *testing.T) {
	params := InstanceParams{Dataset: "flixster", Seed: 1, Scale: 0.01}
	opts := TIRMParams{Eps: 0.3, MinTheta: 1024, MaxTheta: 8192}
	batch := AllocateBatchRequest{
		InstanceParams: params,
		Requests: []AllocateItem{
			{Opts: opts},
			{Opts: opts, Kernel: "bitset"},
			{Opts: opts, Kernel: "not-a-kernel"}, // fails alone
			{Opts: opts, Ads: []int{0, 3}},
		},
	}

	single := testServer(t, Options{})
	var want AllocateBatchResponse
	if code := postJSON(t, single.URL+"/allocate/batch", batch, &want); code != http.StatusOK {
		t.Fatalf("single-node batch: %d", code)
	}

	front, _ := shardedServer(t, params, 2)
	var got AllocateBatchResponse
	if code := postJSON(t, front.URL+"/allocate/batch", batch, &got); code != http.StatusOK {
		t.Fatalf("sharded batch: %d", code)
	}
	if len(got.Items) != len(batch.Requests) {
		t.Fatalf("sharded batch returned %d items", len(got.Items))
	}
	for i := range got.Items {
		if i == 2 {
			if got.Items[i].Error == "" {
				t.Errorf("bad item 2 succeeded in coordinator mode")
			}
			continue
		}
		if got.Items[i].Error != "" {
			t.Fatalf("sharded item %d failed: %s", i, got.Items[i].Error)
		}
		if !reflect.DeepEqual(got.Items[i].Seeds, want.Items[i].Seeds) {
			t.Errorf("sharded item %d seeds diverged\n want %v\n  got %v", i, want.Items[i].Seeds, got.Items[i].Seeds)
		}
		if got.Items[i].EstRegret != want.Items[i].EstRegret {
			t.Errorf("sharded item %d regret %v, single-node %v", i, got.Items[i].EstRegret, want.Items[i].EstRegret)
		}
	}

	// Foreign-instance batches are refused like lone allocates.
	other := batch
	other.Seed = 99
	if code := postJSON(t, front.URL+"/allocate/batch", other, nil); code != http.StatusBadRequest {
		t.Errorf("foreign-instance batch returned %d, want 400", code)
	}
}

// TestBatchItemErrorIsolation pins per-item failure independence at the
// layer where every failure class is reachable: the HTTP handler pins one
// epoch for the whole batch (so a stale item cannot be synthesized over
// the wire), but the core batch engine it wraps evaluates each item's own
// pinned epoch — a mixed batch of valid, stale-epoch, and bad-request
// items must fail exactly the broken items and leave their siblings
// byte-identical to lone runs.
func TestBatchItemErrorIsolation(t *testing.T) {
	inst := gen.Fig1Instance(0)
	idx, err := core.BuildIndex(inst, 1, core.TIRMOptions{MaxTheta: 20000})
	if err != nil {
		t.Fatal(err)
	}
	opts := core.TIRMOptions{MinTheta: 3000, MaxTheta: 20000}
	epoch := idx.Epoch()

	lone, err := core.AllocateFromIndex(idx, core.Request{Opts: opts, Epoch: epoch})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name      string
		req       core.Request
		wantStale bool // else: wantErr distinguishes bad-request from ok
		wantErr   bool
	}{
		{name: "valid", req: core.Request{Opts: opts, Epoch: epoch}},
		{name: "stale-epoch", req: core.Request{Opts: opts, Epoch: epoch + 7}, wantStale: true, wantErr: true},
		{name: "bad-subset", req: core.Request{Opts: opts, Epoch: epoch, Ads: []int{99}}, wantErr: true},
		{name: "bad-budgets", req: core.Request{Opts: opts, Epoch: epoch, Budgets: []float64{1}}, wantErr: true},
		{name: "valid-again", req: core.Request{Opts: opts, Epoch: epoch}},
	}
	reqs := make([]core.Request, len(cases))
	for i, c := range cases {
		reqs[i] = c.req
	}
	results := core.AllocateBatch(idx, reqs)
	if len(results) != len(cases) {
		t.Fatalf("%d results for %d items", len(results), len(cases))
	}
	for i, c := range cases {
		br := results[i]
		if c.wantErr {
			if br.Err == nil {
				t.Errorf("%s: succeeded, want error", c.name)
				continue
			}
			if got := errors.Is(br.Err, core.ErrStaleEpoch); got != c.wantStale {
				t.Errorf("%s: stale=%v (err %v), want stale=%v", c.name, got, br.Err, c.wantStale)
			}
			continue
		}
		if br.Err != nil {
			t.Errorf("%s: failed alone: %v", c.name, br.Err)
			continue
		}
		if !reflect.DeepEqual(br.Res.Alloc.Seeds, lone.Alloc.Seeds) {
			t.Errorf("%s: seeds diverged from lone run despite broken siblings\n got %v\nwant %v",
				c.name, br.Res.Alloc.Seeds, lone.Alloc.Seeds)
		}
	}

	// The wire mapping: itemResult translates each failure class to the
	// status a lone /allocate would have returned — 409 for stale epochs on
	// either path, 400 locally, 502 when a shard RPC failed upstream.
	s := New(Options{Logf: t.Logf})
	staleRes := results[1]
	badRes := results[2]
	for _, c := range []struct {
		name       string
		br         core.BatchResult
		upstream   bool
		wantStatus int
	}{
		{"stale-local", staleRes, false, http.StatusConflict},
		{"stale-upstream", staleRes, true, http.StatusConflict},
		{"bad-local", badRes, false, http.StatusBadRequest},
		{"bad-upstream", badRes, true, http.StatusBadGateway},
	} {
		out := s.itemResult(AllocateItem{}, core.Request{}, c.br, inst, c.upstream)
		if out.Status != c.wantStatus || out.Error == "" {
			t.Errorf("%s: status=%d error=%q, want status %d with message", c.name, out.Status, out.Error, c.wantStatus)
		}
		if out.Seeds != nil {
			t.Errorf("%s: failed item carries seeds", c.name)
		}
	}
}
