package serve

import (
	"net/http"
	"reflect"
	"testing"
)

// TestServerAllocateBatch pins the batch endpoint's contract on a single
// node: every item matches the lone /allocate for the same parameters
// (across kernels), bad items fail alone with per-item status codes, the
// kernel tallies surface in /stats, and shape violations are rejected.
func TestServerAllocateBatch(t *testing.T) {
	ts := testServer(t, Options{})
	params := fig1Request().InstanceParams
	opts := fig1Request().Opts

	// Reference: lone /allocate per item shape.
	lone := func(item AllocateItem) AllocateResponse {
		t.Helper()
		var out AllocateResponse
		code := postJSON(t, ts.URL+"/allocate", AllocateRequest{
			InstanceParams: params,
			Kappa:          item.Kappa,
			Lambda:         item.Lambda,
			Ads:            item.Ads,
			Budgets:        item.Budgets,
			Kernel:         item.Kernel,
			Opts:           item.Opts,
		}, &out)
		if code != http.StatusOK {
			t.Fatalf("lone allocate returned %d", code)
		}
		return out
	}

	lambda := 0.5
	items := []AllocateItem{
		{Opts: opts},
		{Opts: opts, Kernel: "bitset"},
		{Opts: opts, Kernel: "sparse"},
		{Opts: opts, Kernel: "definitely-not-a-kernel"}, // fails alone
		{Opts: opts, Ads: []int{0, 2}, Lambda: &lambda},
	}
	want := make([]AllocateResponse, len(items))
	for i, item := range items {
		if i == 3 {
			continue
		}
		want[i] = lone(item)
	}

	var got AllocateBatchResponse
	if code := postJSON(t, ts.URL+"/allocate/batch", AllocateBatchRequest{
		InstanceParams: params,
		Requests:       items,
	}, &got); code != http.StatusOK {
		t.Fatalf("batch returned %d", code)
	}
	if len(got.Items) != len(items) {
		t.Fatalf("batch returned %d items for %d requests", len(got.Items), len(items))
	}
	for i, item := range got.Items {
		if i == 3 {
			if item.Error == "" || item.Status != http.StatusBadRequest {
				t.Errorf("bad item 3 = %+v, want error with status 400", item)
			}
			continue
		}
		if item.Error != "" {
			t.Fatalf("item %d failed: %s", i, item.Error)
		}
		if !reflect.DeepEqual(item.Seeds, want[i].Seeds) {
			t.Errorf("item %d seeds diverged from lone allocate\n want %v\n  got %v", i, want[i].Seeds, item.Seeds)
		}
		if !reflect.DeepEqual(item.EstRevenue, want[i].EstRevenue) {
			t.Errorf("item %d revenue diverged: %v vs %v", i, item.EstRevenue, want[i].EstRevenue)
		}
		if item.EstRegret != want[i].EstRegret {
			t.Errorf("item %d regret %v, lone %v", i, item.EstRegret, want[i].EstRegret)
		}
		if got.Epoch != want[i].Epoch {
			t.Errorf("item %d epoch %d, batch %d", i, want[i].Epoch, got.Epoch)
		}
	}

	// Kernel tallies reach /stats: 4 lone + 4 batch successes over 4 ads,
	// at least one forced run per kernel.
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats returned %d", code)
	}
	var total uint64
	for _, c := range stats.Kernels {
		total += c
	}
	if stats.Kernels["bitset"] == 0 || stats.Kernels["sparse"] == 0 {
		t.Errorf("stats kernels = %v, want both kernels tallied", stats.Kernels)
	}
	if total == 0 {
		t.Errorf("stats kernels empty after successful allocations")
	}

	// Shape violations: empty and oversized batches.
	if code := postJSON(t, ts.URL+"/allocate/batch", AllocateBatchRequest{InstanceParams: params}, nil); code != http.StatusBadRequest {
		t.Errorf("empty batch returned %d, want 400", code)
	}
	over := AllocateBatchRequest{InstanceParams: params, Requests: make([]AllocateItem, MaxBatchItems+1)}
	if code := postJSON(t, ts.URL+"/allocate/batch", over, nil); code != http.StatusBadRequest {
		t.Errorf("oversized batch returned %d, want 400", code)
	}
}

// TestShardedServeBatch drives /allocate/batch through a 2-shard
// coordinator and pins every item against the single-node batch (itself
// already pinned against lone /allocate): distributed batching changes
// round trips, never allocations.
func TestShardedServeBatch(t *testing.T) {
	params := InstanceParams{Dataset: "flixster", Seed: 1, Scale: 0.01}
	opts := TIRMParams{Eps: 0.3, MinTheta: 1024, MaxTheta: 8192}
	batch := AllocateBatchRequest{
		InstanceParams: params,
		Requests: []AllocateItem{
			{Opts: opts},
			{Opts: opts, Kernel: "bitset"},
			{Opts: opts, Kernel: "not-a-kernel"}, // fails alone
			{Opts: opts, Ads: []int{0, 3}},
		},
	}

	single := testServer(t, Options{})
	var want AllocateBatchResponse
	if code := postJSON(t, single.URL+"/allocate/batch", batch, &want); code != http.StatusOK {
		t.Fatalf("single-node batch: %d", code)
	}

	front, _ := shardedServer(t, params, 2)
	var got AllocateBatchResponse
	if code := postJSON(t, front.URL+"/allocate/batch", batch, &got); code != http.StatusOK {
		t.Fatalf("sharded batch: %d", code)
	}
	if len(got.Items) != len(batch.Requests) {
		t.Fatalf("sharded batch returned %d items", len(got.Items))
	}
	for i := range got.Items {
		if i == 2 {
			if got.Items[i].Error == "" {
				t.Errorf("bad item 2 succeeded in coordinator mode")
			}
			continue
		}
		if got.Items[i].Error != "" {
			t.Fatalf("sharded item %d failed: %s", i, got.Items[i].Error)
		}
		if !reflect.DeepEqual(got.Items[i].Seeds, want.Items[i].Seeds) {
			t.Errorf("sharded item %d seeds diverged\n want %v\n  got %v", i, want.Items[i].Seeds, got.Items[i].Seeds)
		}
		if got.Items[i].EstRegret != want.Items[i].EstRegret {
			t.Errorf("sharded item %d regret %v, single-node %v", i, got.Items[i].EstRegret, want.Items[i].EstRegret)
		}
	}

	// Foreign-instance batches are refused like lone allocates.
	other := batch
	other.Seed = 99
	if code := postJSON(t, front.URL+"/allocate/batch", other, nil); code != http.StatusBadRequest {
		t.Errorf("foreign-instance batch returned %d, want 400", code)
	}
}
