package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/shard"
)

// replicatedServer spins k×r adshard-equivalent HTTP shards (slot-major)
// and a serve.Server in coordinator mode over them, returning the backend
// test servers so callers can kill replicas mid-test.
func replicatedServer(t *testing.T, params InstanceParams, k, r int) (*httptest.Server, *Server, []*httptest.Server) {
	t.Helper()
	roster, err := BuildDataset(params)
	if err != nil {
		t.Fatal(err)
	}
	p, err := shard.NewPartitioner(k)
	if err != nil {
		t.Fatal(err)
	}
	backends := make([]*httptest.Server, k*r)
	addrs := make([]string, k*r)
	for slot := 0; slot < k; slot++ {
		for rep := 0; rep < r; rep++ {
			sh, err := shard.NewShard(roster, 0, params.Seed, p.Range(slot))
			if err != nil {
				t.Fatal(err)
			}
			sh.Dataset = shard.DatasetParams{Name: params.Dataset, Seed: params.Seed, Scale: params.Scale, NumAds: params.NumAds}
			ts := httptest.NewServer(sh.Handler())
			t.Cleanup(ts.Close)
			backends[slot*r+rep] = ts
			addrs[slot*r+rep] = strings.TrimPrefix(ts.URL, "http://")
		}
	}
	srv := New(Options{Shards: addrs, Replicas: r, Logf: t.Logf})
	if err := srv.ConnectShards(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	front := httptest.NewServer(srv.Handler())
	t.Cleanup(front.Close)
	return front, srv, backends
}

// TestReplicatedServeFailover drives the full HTTP stack at K=2, R=2:
// allocations match single-node serving, killing one replica of a range
// mid-run degrades nothing user-visible (the allocation still succeeds
// and /healthz stays "ok" with the dead replica reported unreachable),
// and killing the second replica of the same range turns /allocate into a
// prompt 503 and /healthz into "degraded" naming the range.
func TestReplicatedServeFailover(t *testing.T) {
	params := InstanceParams{Dataset: "flixster", Seed: 1, Scale: 0.01}
	req := AllocateRequest{
		InstanceParams: params,
		Opts:           TIRMParams{Eps: 0.3, MinTheta: 1024, MaxTheta: 8192},
	}

	single := testServer(t, Options{})
	var want AllocateResponse
	if code := postJSON(t, single.URL+"/allocate", req, &want); code != http.StatusOK {
		t.Fatalf("single-node allocate: %d", code)
	}

	front, _, backends := replicatedServer(t, params, 2, 2)

	// Full-strength cluster matches the single node.
	var got AllocateResponse
	if code := postJSON(t, front.URL+"/allocate", req, &got); code != http.StatusOK {
		t.Fatalf("replicated allocate: %d", code)
	}
	if !reflect.DeepEqual(want.Seeds, got.Seeds) {
		t.Fatalf("replicated seeds diverged\n want %v\n  got %v", want.Seeds, got.Seeds)
	}

	var health HealthResponse
	if code := getJSON(t, front.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if health.Status != "ok" || len(health.Shards) != 4 {
		t.Fatalf("healthz = %+v, want ok with 4 replica rows", health)
	}

	var stats StatsResponse
	if code := getJSON(t, front.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.Sharded == nil || stats.Sharded.NumShards != 2 || stats.Sharded.Replicas != 2 {
		t.Fatalf("sharded stats = %+v, want 2 shards × 2 replicas", stats.Sharded)
	}

	// Kill the preferred replica of range 0. The very next allocation must
	// fail over and still match the single node bit for bit.
	backends[0].Close()
	if code := postJSON(t, front.URL+"/allocate", req, &got); code != http.StatusOK {
		t.Fatalf("allocate after replica kill: %d", code)
	}
	if !reflect.DeepEqual(want.Seeds, got.Seeds) {
		t.Fatalf("post-failover seeds diverged\n want %v\n  got %v", want.Seeds, got.Seeds)
	}

	// Health stays "ok" — the range still has a live replica — but the
	// dead replica is reported unreachable.
	if code := getJSON(t, front.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz after replica kill: %d", code)
	}
	if health.Status != "ok" || len(health.DegradedRanges) != 0 {
		t.Fatalf("healthz after single-replica kill = %+v, want ok", health)
	}
	dead := 0
	for _, h := range health.Shards {
		if !h.Reachable {
			dead++
			if h.Shard != 0 || h.Replica != 0 {
				t.Fatalf("wrong replica reported dead: %+v", h)
			}
		}
	}
	if dead != 1 {
		t.Fatalf("%d replicas reported unreachable, want 1", dead)
	}

	// Kill the second replica of range 0: the whole range is gone, so
	// /allocate degrades to a prompt 503 and /healthz names the range.
	backends[1].Close()
	if code := postJSON(t, front.URL+"/allocate", req, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("allocate with range 0 fully down: %d, want 503", code)
	}
	resp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with range 0 fully down: %d, want 503", resp.StatusCode)
	}
	health = HealthResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || !reflect.DeepEqual(health.DegradedRanges, []int{0}) {
		t.Fatalf("healthz = %+v, want degraded with range 0", health)
	}
}

// TestConnectShardsRejectsRaggedRoster pins roster validation: the shard
// list length must be a multiple of -replicas.
func TestConnectShardsRejectsRaggedRoster(t *testing.T) {
	srv := New(Options{Shards: []string{"a:1", "b:2", "c:3"}, Replicas: 2})
	if err := srv.ConnectShards(context.Background()); err == nil {
		t.Fatal("ragged roster accepted")
	}
}
