package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"repro/internal/eval"
)

func testServer(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	ts := httptest.NewServer(New(opts).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func fig1Request() AllocateRequest {
	return AllocateRequest{
		InstanceParams: InstanceParams{Dataset: "fig1", Seed: 1, Scale: 0.05},
		Opts:           TIRMParams{MinTheta: 3000, MaxTheta: 20000},
	}
}

// TestServerEndToEnd drives the full loop the subsystem exists for:
// allocate (cold build) → allocate again (warm) → evaluate the returned
// seeds → stats showing the cache hit.
func TestServerEndToEnd(t *testing.T) {
	ts := testServer(t, Options{})

	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz returned %d", code)
	}
	var datasets []DatasetInfo
	if code := getJSON(t, ts.URL+"/datasets", &datasets); code != http.StatusOK || len(datasets) < 4 {
		t.Fatalf("datasets returned %d with %d entries", code, len(datasets))
	}

	var cold AllocateResponse
	if code := postJSON(t, ts.URL+"/allocate", fig1Request(), &cold); code != http.StatusOK {
		t.Fatalf("cold allocate returned %d", code)
	}
	if !cold.ColdBuild {
		t.Error("first allocation did not report a cold build")
	}
	if len(cold.Seeds) != 4 {
		t.Fatalf("fig1 allocation covers %d ads", len(cold.Seeds))
	}

	var warm AllocateResponse
	if code := postJSON(t, ts.URL+"/allocate", fig1Request(), &warm); code != http.StatusOK {
		t.Fatalf("warm allocate returned %d", code)
	}
	if warm.ColdBuild {
		t.Error("second allocation reported a cold build")
	}
	if warm.SetsSampled != 0 {
		t.Errorf("warm allocation drew %d sets", warm.SetsSampled)
	}
	if !reflect.DeepEqual(cold.Seeds, warm.Seeds) {
		t.Errorf("warm allocation diverged: %v vs %v", cold.Seeds, warm.Seeds)
	}

	var outcome eval.Outcome
	evalReq := EvaluateRequest{
		InstanceParams: InstanceParams{Dataset: "fig1", Seed: 1, Scale: 0.05},
		Seeds:          cold.Seeds,
		Runs:           2000,
		EvalSeed:       7,
	}
	if code := postJSON(t, ts.URL+"/evaluate", evalReq, &outcome); code != http.StatusOK {
		t.Fatalf("evaluate returned %d", code)
	}
	if len(outcome.Ads) != 4 || outcome.TotalBudget != 9 {
		t.Errorf("unexpected outcome: %d ads, budget %v", len(outcome.Ads), outcome.TotalBudget)
	}

	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats returned %d", code)
	}
	if stats.CacheMisses != 1 {
		t.Errorf("cache misses = %d, want 1", stats.CacheMisses)
	}
	// Warm allocate + evaluate both hit the cached entry.
	if stats.CacheHits < 2 {
		t.Errorf("cache hits = %d, want ≥ 2", stats.CacheHits)
	}
	if len(stats.Entries) != 1 || stats.Entries[0].MemBytes <= 0 {
		t.Errorf("stats entries: %+v", stats.Entries)
	}
	if stats.Entries[0].Allocations != 2 {
		t.Errorf("entry allocations = %d, want 2", stats.Entries[0].Allocations)
	}
	if got := stats.IndexMemByDataset["fig1"]; got != stats.IndexMemBytes || got <= 0 {
		t.Errorf("per-dataset index memory = %v (total %d)", stats.IndexMemByDataset, stats.IndexMemBytes)
	}
}

// TestServerCoalescing: concurrent identical requests trigger exactly one
// index build.
func TestServerCoalescing(t *testing.T) {
	ts := testServer(t, Options{})
	const workers = 8
	var wg sync.WaitGroup
	seeds := make([][][]int32, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var resp AllocateResponse
			if code := postJSON(t, ts.URL+"/allocate", fig1Request(), &resp); code != http.StatusOK {
				t.Errorf("worker %d: allocate returned %d", w, code)
				return
			}
			seeds[w] = resp.Seeds
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if !reflect.DeepEqual(seeds[0], seeds[w]) {
			t.Fatalf("worker %d allocation diverged", w)
		}
	}
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats returned %d", code)
	}
	if stats.CacheMisses != 1 {
		t.Errorf("concurrent requests caused %d builds", stats.CacheMisses)
	}
	if stats.CacheHits+stats.Coalesced != workers-1 {
		t.Errorf("hits %d + coalesced %d, want %d", stats.CacheHits, stats.Coalesced, workers-1)
	}
}

// TestServerSnapshotRestart: a second server pointed at the same snapshot
// directory starts warm and reproduces the allocation without sampling.
func TestServerSnapshotRestart(t *testing.T) {
	dir := t.TempDir()
	first := testServer(t, Options{SnapshotDir: dir})
	var a AllocateResponse
	if code := postJSON(t, first.URL+"/allocate", fig1Request(), &a); code != http.StatusOK {
		t.Fatalf("allocate returned %d", code)
	}

	second := testServer(t, Options{SnapshotDir: dir})
	var b AllocateResponse
	if code := postJSON(t, second.URL+"/allocate", fig1Request(), &b); code != http.StatusOK {
		t.Fatalf("allocate on restarted server returned %d", code)
	}
	if !b.FromSnapshot {
		t.Error("restarted server did not load the snapshot")
	}
	if b.SetsSampled != 0 {
		t.Errorf("restarted server sampled %d sets", b.SetsSampled)
	}
	if !reflect.DeepEqual(a.Seeds, b.Seeds) {
		t.Errorf("allocation changed across restart: %v vs %v", a.Seeds, b.Seeds)
	}
	var stats StatsResponse
	if code := getJSON(t, second.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats returned %d", code)
	}
	if stats.SnapshotLoads != 1 {
		t.Errorf("snapshot loads = %d, want 1", stats.SnapshotLoads)
	}
}

// TestServerOverrides exercises the selection-time knobs that reuse one
// cached index.
func TestServerOverrides(t *testing.T) {
	ts := testServer(t, Options{})
	base := fig1Request()

	lambda := 100.0
	req := base
	req.Lambda = &lambda
	var resp AllocateResponse
	if code := postJSON(t, ts.URL+"/allocate", req, &resp); code != http.StatusOK {
		t.Fatalf("λ override returned %d", code)
	}
	for _, s := range resp.Seeds {
		if len(s) != 0 {
			t.Errorf("λ=100 still allocated seeds: %v", resp.Seeds)
			break
		}
	}

	req = base
	req.Ads = []int{0}
	if code := postJSON(t, ts.URL+"/allocate", req, &resp); code != http.StatusOK {
		t.Fatalf("subset returned %d", code)
	}
	for j := 1; j < len(resp.Seeds); j++ {
		if len(resp.Seeds[j]) != 0 {
			t.Errorf("unselected ad %d got seeds", j)
		}
	}
	// Regret covers only the requested subset: fig1's excluded ads hold
	// budgets 2+2+1, which must not count against this allocation (ad 0's
	// own budget is 4).
	if resp.EstRegret >= 4.1 {
		t.Errorf("subset estRegret %.2f includes excluded ads' budgets", resp.EstRegret)
	}

	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.CacheMisses != 1 {
		t.Errorf("override requests fragmented the cache: %d misses", stats.CacheMisses)
	}
}

// TestServerEviction: the cache holds at most MaxEntries entries; LRU keys
// are dropped, and a re-requested evicted key still answers correctly
// (reloading its snapshot when one exists).
func TestServerEviction(t *testing.T) {
	dir := t.TempDir()
	ts := testServer(t, Options{MaxEntries: 2, SnapshotDir: dir})
	requests := make([]AllocateRequest, 3)
	first := make([][][]int32, 3)
	for i := range requests {
		requests[i] = fig1Request()
		requests[i].Seed = uint64(i + 1)
		var resp AllocateResponse
		if code := postJSON(t, ts.URL+"/allocate", requests[i], &resp); code != http.StatusOK {
			t.Fatalf("allocate seed %d returned %d", i+1, code)
		}
		first[i] = resp.Seeds
	}
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatal("stats failed")
	}
	if len(stats.Entries) > 2 {
		t.Errorf("cache holds %d entries, cap is 2", len(stats.Entries))
	}
	// Seed 1 was evicted; requesting it again must rebuild (from snapshot)
	// and reproduce the original allocation.
	var again AllocateResponse
	if code := postJSON(t, ts.URL+"/allocate", requests[0], &again); code != http.StatusOK {
		t.Fatal("re-request of evicted key failed")
	}
	if !again.ColdBuild || !again.FromSnapshot {
		t.Errorf("evicted key rebuilt cold=%v fromSnapshot=%v; want cold snapshot reload",
			again.ColdBuild, again.FromSnapshot)
	}
	if !reflect.DeepEqual(first[0], again.Seeds) {
		t.Error("allocation changed across eviction")
	}
}

// TestServerEvaluateDoesNotBuildIndex: /evaluate only needs the instance,
// so a cold-key evaluate must not trigger index presampling.
func TestServerEvaluateDoesNotBuildIndex(t *testing.T) {
	ts := testServer(t, Options{})
	req := EvaluateRequest{
		InstanceParams: InstanceParams{Dataset: "fig1", Seed: 3, Scale: 0.05},
		Seeds:          [][]int32{{0}, {1}, {2}, {3}},
		Runs:           200,
	}
	if code := postJSON(t, ts.URL+"/evaluate", req, nil); code != http.StatusOK {
		t.Fatalf("evaluate returned %d", code)
	}
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatal("stats failed")
	}
	if len(stats.Entries) != 1 {
		t.Fatalf("stats shows %d entries", len(stats.Entries))
	}
	if stats.Entries[0].IndexBuilt || stats.Entries[0].SetsSampled != 0 {
		t.Errorf("evaluate built an index: %+v", stats.Entries[0])
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	ts := testServer(t, Options{})
	for name, body := range map[string]AllocateRequest{
		"unknown-dataset": {InstanceParams: InstanceParams{Dataset: "nope", Seed: 1, Scale: 0.05}},
		"zero-scale":      {InstanceParams: InstanceParams{Dataset: "fig1", Seed: 1}},
		"huge-scale":      {InstanceParams: InstanceParams{Dataset: "livejournal", Seed: 1, Scale: 5}},
		"bad-subset":      {InstanceParams: InstanceParams{Dataset: "fig1", Seed: 1, Scale: 0.05, NumAds: 0}, Ads: []int{99}},
	} {
		if code := postJSON(t, ts.URL+"/allocate", body, nil); code != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400", name, code)
		}
	}
	// GET on a POST endpoint.
	if code := getJSON(t, ts.URL+"/allocate", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /allocate returned %d, want 405", code)
	}
	// Unknown field.
	resp, err := http.Post(ts.URL+"/allocate", "application/json",
		bytes.NewReader([]byte(`{"dataset":"fig1","seed":1,"scale":0.05,"bogus":true}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field returned %d, want 400", resp.StatusCode)
	}
}

func TestWarmSpec(t *testing.T) {
	p, err := WarmSpec("flixster:3:0.02:5")
	if err != nil {
		t.Fatal(err)
	}
	want := InstanceParams{Dataset: "flixster", Seed: 3, Scale: 0.02, NumAds: 5}
	if p != want {
		t.Errorf("got %+v, want %+v", p, want)
	}
	for _, bad := range []string{"", "flixster", "flixster:x:0.02", "a:1:2:3:4"} {
		if _, err := WarmSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

var _ = fmt.Sprintf // keep fmt for quick debugging edits
