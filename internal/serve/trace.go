// Request-level tracing glue: the bridge between the HTTP middleware's
// server span and the selection run. A traced /allocate gets one "alloc"
// child span covering the selection call; the run's per-phase wall times
// render as synthetic children of it, and — when the request asks for
// explain — every committed round lands on it as a "commit" event. The
// observer wraps (never replaces) the server metrics observer, so the
// histograms see exactly what they always saw, and untraced requests keep
// the bare metrics observer with zero extra cost.

package serve

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// allocObserverFor resolves the observer for one selection run: the bare
// server metrics when the request carries no span, or a span-rendering
// wrapper (plus its open "alloc" span, which the caller must End) when it
// does. The returned context carries the alloc span, so coordinator
// rounds passed this context nest under it. explain passes through only
// when a span exists — explain events have nowhere to land otherwise.
func (s *Server) allocObserverFor(ctx context.Context, explain bool) (context.Context, core.AllocObserver, bool, *obs.Span) {
	sctx, span := obs.StartSpan(ctx, "alloc")
	if span == nil {
		return ctx, s.metrics, false, nil
	}
	return sctx, &allocSpanObserver{inner: s.metrics, span: span}, explain, span
}

// allocSpanObserver is a traced request's AllocObserver: it forwards every
// callback to the server metrics and additionally renders the run onto the
// request's span tree.
type allocSpanObserver struct {
	inner *serverMetrics
	span  *obs.Span
}

// ObserveAllocation forwards the timings, then adds one synthetic child
// span per phase, stacked in phase order. The children carry cumulative
// per-phase time — phases interleave across rounds, so the stacking shows
// proportions, not exact intervals.
func (o *allocSpanObserver) ObserveAllocation(t core.PhaseTimings) {
	o.inner.ObserveAllocation(t)
	o.span.SetInt("rounds", int64(t.Rounds))
	var offset time.Duration
	for p := core.AllocPhase(0); p < core.NumAllocPhases; p++ {
		d := t.Phase[p]
		if d <= 0 {
			continue
		}
		o.span.AddChild("phase."+p.String(), offset, d)
		offset += d
	}
}

// ObserveCommit renders one selection round as a "commit" event. Gain and
// residual budget are floats; they ride the integer attribute channel in
// micro-units (×1e6) so the event payload stays integer-only.
func (o *allocSpanObserver) ObserveCommit(ev core.CommitEvent) {
	o.span.Event("commit",
		obs.Int("round", int64(ev.Round)),
		obs.Int("ad", int64(ev.Ad)),
		obs.Int("node", int64(ev.Node)),
		obs.Int("gainMicro", int64(ev.Gain*1e6)),
		obs.Int("residualMicro", int64(ev.Residual*1e6)))
}
