// POST /allocate/batch: evaluate many selection requests against one
// pinned campaign epoch in a single round trip.
//
// A batch is the serve-layer mirror of core.AllocateBatch (single node)
// and shard.Coordinator.AllocateBatch (coordinator mode): the instance and
// index are resolved once, every item is pinned to the same epoch, and the
// items fan out under the allocator's bounded worker budget sharing the
// entry's workspace pool. Each item returns exactly what a lone POST
// /allocate with the same parameters would have returned (golden-pinned),
// items fail independently, and a campaign mutation racing the batch turns
// into per-item stale-epoch errors rather than an allocation split across
// two campaign sets.

package serve

import (
	"errors"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// MaxBatchItems caps the number of selection requests one POST
// /allocate/batch may carry. Batches beyond the cap are rejected with 400
// rather than queued: the batch path exists to amortize per-request
// overhead, not to become an unbounded work queue.
const MaxBatchItems = 64

// AllocateItem is one selection request inside a batch: the per-run fields
// of AllocateRequest without the instance coordinates (the batch names its
// instance once). Field semantics match POST /allocate exactly.
type AllocateItem struct {
	Kappa    int       `json:"kappa,omitempty"`
	Lambda   *float64  `json:"lambda,omitempty"`
	Ads      []int     `json:"ads,omitempty"`
	Budgets  []float64 `json:"budgets,omitempty"`
	CPEs     []float64 `json:"cpes,omitempty"`
	Residual bool      `json:"residual,omitempty"`
	// Kernel selects the coverage kernel ("auto"/"sparse"/"bitset", see
	// core.Request.Kernel); it changes sweep cost, never the allocation.
	Kernel string     `json:"kernel,omitempty"`
	Opts   TIRMParams `json:"opts,omitempty"`
}

// AllocateBatchRequest is POST /allocate/batch: one instance, up to
// MaxBatchItems selection requests evaluated against the same epoch.
type AllocateBatchRequest struct {
	InstanceParams
	Requests []AllocateItem `json:"requests"`
}

// BatchItemResult is one item's outcome. Exactly one of Error or the
// result fields is populated: a failed item carries its error string (and
// Status, the HTTP code the same lone /allocate would have returned) while
// its siblings still succeed.
type BatchItemResult struct {
	Error        string    `json:"error,omitempty"`
	Status       int       `json:"status,omitempty"`
	Seeds        [][]int32 `json:"seeds,omitempty"`
	EstRevenue   []float64 `json:"estRevenue,omitempty"`
	EstRegret    float64   `json:"estRegret,omitempty"`
	FinalTheta   []int     `json:"finalTheta,omitempty"`
	Iterations   int       `json:"iterations,omitempty"`
	SetsSampled  int64     `json:"setsSampled,omitempty"`
	SetsReused   int64     `json:"setsReused,omitempty"`
	SpentBudgets []float64 `json:"spentBudgets,omitempty"`
}

// AllocateBatchResponse is POST /allocate/batch's result: the shared
// epoch/ad-name context resolved once, plus one BatchItemResult per
// request in request order. AllocSeconds is the whole batch's wall time —
// items run concurrently, so it is not the per-item sum.
type AllocateBatchResponse struct {
	Key          string            `json:"key"`
	Epoch        uint64            `json:"epoch"`
	ColdBuild    bool              `json:"coldBuild"`
	AllocSeconds float64           `json:"allocSeconds"`
	AdNames      []string          `json:"adNames"`
	Items        []BatchItemResult `json:"items"`
}

// estRegretOver scores one successful run's regret over the ad subset the
// request targeted, against the budgets it actually ran with (the same
// arithmetic POST /allocate reports).
func estRegretOver(inst *core.Instance, adIDs []int, budgets, spent []float64, res *core.TIRMResult) float64 {
	if len(adIDs) == 0 {
		adIDs = make([]int, len(inst.Ads))
		for i := range adIDs {
			adIDs[i] = i
		}
	}
	var total float64
	for _, i := range adIDs {
		budget := inst.Ads[i].Budget
		if budgets != nil {
			budget = budgets[i]
		}
		if spent != nil {
			if budget -= spent[i]; budget < 0 {
				budget = 0
			}
		}
		total += core.RegretTerm(budget, res.EstRevenue[i], inst.Lambda, len(res.Alloc.Seeds[i]))
	}
	return total
}

// itemResult folds one item's core.BatchResult into the wire shape,
// recording the success/failure metrics a lone /allocate would have. The
// upstream flag selects the non-stale failure mapping: 502/upstream in
// coordinator mode, 400/bad_request locally (where the only errors left
// after a successful index build are request-shape errors).
func (s *Server) itemResult(item AllocateItem, coreReq core.Request, br core.BatchResult, curInst *core.Instance, upstream bool) BatchItemResult {
	if br.Err != nil {
		out := BatchItemResult{Error: br.Err.Error()}
		switch {
		case errors.Is(br.Err, core.ErrStaleEpoch):
			s.metrics.failAlloc(failStaleEpoch)
			out.Status = http.StatusConflict
		case errors.Is(br.Err, shard.ErrPartitionUnavailable):
			s.metrics.failAlloc(failUnavailable)
			out.Status = http.StatusServiceUnavailable
		case upstream:
			s.metrics.failAlloc(failUpstream)
			out.Status = http.StatusBadGateway
		default:
			s.metrics.failAlloc(failBadRequest)
			out.Status = http.StatusBadRequest
		}
		return out
	}
	res := br.Res
	s.metrics.allocations.Inc()
	s.metrics.recordKernels(res.KernelCounts)
	for i, seeds := range res.Alloc.Seeds {
		if seeds == nil {
			res.Alloc.Seeds[i] = []int32{} // JSON: [] for empty, never null
		}
	}
	inst := instWith(curInst, item.Lambda, item.Kappa)
	return BatchItemResult{
		Seeds:        res.Alloc.Seeds,
		EstRevenue:   res.EstRevenue,
		EstRegret:    estRegretOver(inst, item.Ads, item.Budgets, coreReq.SpentBudget, res),
		FinalTheta:   res.FinalTheta,
		Iterations:   res.Iterations,
		SetsSampled:  res.TotalSetsSampled,
		SetsReused:   res.SetsReused,
		SpentBudgets: coreReq.SpentBudget,
	}
}

// checkBatchShape rejects empty and oversized batches with 400.
func checkBatchShape(w http.ResponseWriter, req AllocateBatchRequest) bool {
	if len(req.Requests) == 0 {
		httpError(w, http.StatusBadRequest, "batch carries no requests")
		return false
	}
	if len(req.Requests) > MaxBatchItems {
		httpError(w, http.StatusBadRequest,
			"batch carries %d requests; cap is %d", len(req.Requests), MaxBatchItems)
		return false
	}
	return true
}

func (s *Server) handleAllocateBatch(w http.ResponseWriter, r *http.Request) {
	var req AllocateBatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !checkBatchShape(w, req) {
		return
	}
	if s.sharded != nil {
		s.handleAllocateBatchSharded(w, r, req)
		return
	}
	e, created, waitedInst, err := s.entryFor(req.InstanceParams)
	if err != nil {
		s.metrics.failAlloc(failBadRequest)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	idx, cold, waitedIdx, err := s.indexFor(e)
	if err != nil {
		s.metrics.failAlloc(failInternal)
		httpError(w, http.StatusInternalServerError, "index build: %v", err)
		return
	}
	switch {
	case created || cold:
		s.cacheMisses.Add(1)
	case waitedInst || waitedIdx:
		s.coalesced.Add(1)
	default:
		s.cacheHits.Add(1)
		e.hits.Add(1)
	}
	// One epoch for the whole batch: every item is shaped against (and
	// pinned to) the same campaign set, so a mutation racing the batch
	// fails items cleanly instead of splitting the batch across epochs.
	epoch, curInst := idx.EpochInst()
	// The spend ledger is read once, too — all Residual items in a batch
	// target the same remaining-budget snapshot.
	var spent []float64
	coreReqs := make([]core.Request, len(req.Requests))
	for i, item := range req.Requests {
		coreReqs[i] = core.Request{
			Opts:     item.Opts.toOptions(s.opts.MaxTheta),
			Ads:      item.Ads,
			Budgets:  item.Budgets,
			CPEs:     item.CPEs,
			Lambda:   item.Lambda,
			Epoch:    epoch,
			Pool:     &e.pool,
			Observer: s.metrics,
			Kernel:   s.kernelFor(item.Kernel),
		}
		if item.Kappa > 0 {
			coreReqs[i].Kappa = core.ConstKappa(item.Kappa)
		}
		if item.Residual {
			if spent == nil {
				spent = e.spendVector(curInst)
			}
			coreReqs[i].SpentBudget = spent
		}
	}
	started := time.Now()
	results := core.AllocateBatch(idx, coreReqs)
	s.metrics.allocSeconds.Observe(time.Since(started).Seconds())
	items := make([]BatchItemResult, len(results))
	for i, br := range results {
		items[i] = s.itemResult(req.Requests[i], coreReqs[i], br, curInst, false)
		if br.Err == nil {
			e.allocs.Add(1)
		}
	}
	names := make([]string, len(curInst.Ads))
	for i, ad := range curInst.Ads {
		names[i] = ad.Name
	}
	writeJSON(w, http.StatusOK, AllocateBatchResponse{
		Key:          e.key,
		Epoch:        epoch,
		ColdBuild:    cold,
		AllocSeconds: time.Since(started).Seconds(),
		AdNames:      names,
		Items:        items,
	})
}

// handleAllocateBatchSharded is /allocate/batch in coordinator mode: one
// scatter-gather pilot round primes the width cache for the union of ads
// the batch touches, then the items run distributed selection concurrently
// (shard.Coordinator.AllocateBatch).
func (s *Server) handleAllocateBatchSharded(w http.ResponseWriter, r *http.Request, req AllocateBatchRequest) {
	if !s.checkShardedParams(w, req.InstanceParams) {
		return
	}
	st := s.sharded
	epoch, curInst := st.coord.EpochInst()
	var spent []float64
	coreReqs := make([]core.Request, len(req.Requests))
	for i, item := range req.Requests {
		coreReqs[i] = core.Request{
			Opts:     item.Opts.toOptions(s.opts.MaxTheta),
			Ads:      item.Ads,
			Budgets:  item.Budgets,
			CPEs:     item.CPEs,
			Lambda:   item.Lambda,
			Epoch:    epoch,
			Kernel:   s.kernelFor(item.Kernel),
			Observer: s.metrics,
		}
		if item.Kappa > 0 {
			coreReqs[i].Kappa = core.ConstKappa(item.Kappa)
		}
		if item.Residual {
			if spent == nil {
				spent = st.spendVector(curInst)
			}
			coreReqs[i].SpentBudget = spent
		}
	}
	started := time.Now()
	results := st.coord.AllocateBatch(r.Context(), coreReqs)
	s.metrics.allocSeconds.Observe(time.Since(started).Seconds())
	items := make([]BatchItemResult, len(results))
	var ok int
	for i, br := range results {
		items[i] = s.itemResult(req.Requests[i], coreReqs[i], br, curInst, true)
		if br.Err == nil {
			ok++
		}
	}
	if ok > 0 {
		st.mu.Lock()
		st.allocs += int64(ok)
		st.mu.Unlock()
	}
	names := make([]string, len(curInst.Ads))
	for i, ad := range curInst.Ads {
		names[i] = ad.Name
	}
	writeJSON(w, http.StatusOK, AllocateBatchResponse{
		Key:          st.params.Key(),
		Epoch:        epoch,
		AllocSeconds: time.Since(started).Seconds(),
		AdNames:      names,
		Items:        items,
	})
}
