// POST /feedback: online engagement learning over the campaign lifecycle.
//
// Allocation runs on each ad's declared cost-per-engagement, but real
// engagement rates are only revealed by serving: impressions go out, some
// click. /feedback ingests those click/impression batches into a per-ad
// bandit estimator (internal/bandit), and /allocate with "bandit": true
// applies the learned estimates as effective-CPE overrides — the closed
// loop the paper's regret objective wants when CPEs are not oracle truth.
//
// The estimator is keyed by ad NAME, not position, which makes /feedback
// epoch-tolerant by construction: events are accepted for any name — even
// one not currently in the campaign — so late-arriving feedback for a
// removed ad, or feedback racing a campaign mutation, lands in the table
// instead of bouncing with a 409. Event counts are additive integers, so
// concurrent batches commute and a serial replay of the same events
// reproduces the exact estimator state regardless of arrival order.
//
// In coordinator mode the estimator lives on the serving host and its
// integer snapshot is broadcast to every shard after each batch
// (shard.Client.SyncEstimates); shards ignore snapshots that do not
// advance the event total, so delayed rebroadcasts cannot roll them back.

package serve

import (
	"fmt"
	"net/http"

	"repro/internal/bandit"
	"repro/internal/core"
	"repro/internal/xrand"
)

// banditSeedSalt derives each campaign's estimator seed from its instance
// seed — the same salt internal/sim uses, so a server-side Thompson
// estimator fed a sim's event stream reproduces the sim's draws.
const banditSeedSalt = 0xba4d17

// FeedbackRequest is POST /feedback: apply a batch of engagement events to
// the campaign's bandit estimator, creating it on first use. Policy picks
// the estimator ("ucb", "thompson", or "frozen"; default "ucb") — once
// created, a conflicting Policy is a 409 unless Reset discards the learned
// state first. Events apply in order; an invalid event rejects the batch's
// tail with 400 but keeps the events before it (counts are additive, so
// re-sending only the corrected tail is safe).
type FeedbackRequest struct {
	InstanceParams
	Policy string         `json:"policy,omitempty"`
	Events []bandit.Event `json:"events,omitempty"`
	Reset  bool           `json:"reset,omitempty"`
}

// AdEstimate is one advertiser's learned-engagement line: lifetime counts,
// the smoothed click-through mean, the policy's allocation index (the
// factor bandit allocations scale the declared CPE by), and the index's
// exploration share (index minus mean, 0 = pure exploitation).
type AdEstimate struct {
	Name        string  `json:"name"`
	Impressions int64   `json:"impressions"`
	Clicks      int64   `json:"clicks"`
	Mean        float64 `json:"mean"`
	Index       float64 `json:"index"`
	Exploration float64 `json:"exploration"`
}

// FeedbackResponse is POST /feedback's result: the estimator's policy and
// lifetime event total, plus one estimate line per current campaign ad.
// Synced appears only in coordinator mode and reports whether the
// post-batch snapshot broadcast reached every shard (a false heals on the
// next batch — snapshots carry cumulative counts).
type FeedbackResponse struct {
	Key    string       `json:"key"`
	Policy string       `json:"policy"`
	Events int64        `json:"events"`
	Synced bool         `json:"synced,omitempty"`
	Ads    []AdEstimate `json:"ads"`
}

// applyFeedback runs one request against the current estimator (nil if
// none exists yet) under the caller's lock and returns the estimator to
// store. The returned estimator reflects everything that applied: on an
// event error, the events before it are already counted. The non-nil
// error's HTTP status is the second return (400 or 409).
func applyFeedback(cur bandit.Estimator, req FeedbackRequest, seed uint64) (bandit.Estimator, int, error) {
	if req.Reset {
		cur = nil
	}
	if cur == nil {
		policy := req.Policy
		if policy == "" {
			policy = bandit.PolicyUCB
		}
		est, err := bandit.New(policy, xrand.New(seed).Split(banditSeedSalt).Seed())
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		cur = est
	} else if req.Policy != "" && req.Policy != cur.Policy() {
		return cur, http.StatusConflict, fmt.Errorf(
			"campaign already learns under policy %q; send reset to switch to %q", cur.Policy(), req.Policy)
	}
	for i, ev := range req.Events {
		if err := cur.Observe(ev); err != nil {
			return cur, http.StatusBadRequest, fmt.Errorf("event %d: %w", i, err)
		}
	}
	return cur, 0, nil
}

// feedbackResponse assembles the per-ad estimate lines for inst's current
// campaign from est.
func feedbackResponse(key string, est bandit.Estimator, inst *core.Instance) FeedbackResponse {
	resp := FeedbackResponse{
		Key:    key,
		Policy: est.Policy(),
		Events: est.Events(),
		Ads:    make([]AdEstimate, len(inst.Ads)),
	}
	for j, ad := range inst.Ads {
		resp.Ads[j] = AdEstimate{
			Name:        ad.Name,
			Impressions: est.Impressions(ad.Name),
			Clicks:      est.Clicks(ad.Name),
			Mean:        est.Mean(ad.Name),
			Index:       est.Index(ad.Name),
			Exploration: est.Exploration(ad.Name),
		}
	}
	return resp
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req FeedbackRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if s.sharded != nil {
		s.handleFeedbackSharded(w, r, req)
		return
	}
	// Feedback is a ledger on names, not the sample: like /spend it must
	// never trigger index presampling, and mutationEntry pins the entry so
	// eviction cannot drop the learned state mid-request.
	e, err := s.mutationEntry(req.InstanceParams)
	if err != nil {
		if err == errTooManyLiveCampaigns {
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		} else {
			httpError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	defer e.mutating.Add(-1)
	e.estMu.Lock()
	est, status, ferr := applyFeedback(e.est, req, e.params.Seed)
	e.est = est
	e.estMu.Unlock()
	if ferr != nil {
		httpError(w, status, "%v", ferr)
		return
	}
	s.feedbackUpdates.Add(1)
	resp := feedbackResponse(e.key, est, e.currentInst())
	s.metrics.recordFeedback(len(req.Events), resp.Ads)
	writeJSON(w, http.StatusOK, resp)
}

// handleFeedbackSharded is POST /feedback in coordinator mode: the
// estimator lives on the serving host (like the spend ledger) and its
// integer snapshot broadcasts to every shard after the batch applies.
func (s *Server) handleFeedbackSharded(w http.ResponseWriter, r *http.Request, req FeedbackRequest) {
	if !s.checkShardedParams(w, req.InstanceParams) {
		return
	}
	st := s.sharded
	st.estMu.Lock()
	est, status, ferr := applyFeedback(st.est, req, st.params.Seed)
	st.est = est
	snap := bandit.State{}
	if ferr == nil {
		snap = est.Snapshot()
	}
	st.estMu.Unlock()
	if ferr != nil {
		httpError(w, status, "%v", ferr)
		return
	}
	s.feedbackUpdates.Add(1)
	// Broadcast outside estMu: a slow shard must never stall the next
	// feedback batch or a bandit allocation's override read. A failed
	// broadcast degrades to host-only state and heals on the next batch
	// (snapshots are cumulative and shards ignore non-advancing ones).
	synced := true
	if err := st.coord.SyncEstimates(r.Context(), snap); err != nil {
		synced = false
		s.opts.Logf("serve: estimator broadcast failed (heals on next batch): %v", err)
	}
	resp := feedbackResponse(st.params.Key(), est, st.coord.Inst())
	resp.Synced = synced
	s.metrics.recordFeedback(len(req.Events), resp.Ads)
	writeJSON(w, http.StatusOK, resp)
}

// banditCPEs materializes the learned effective-CPE vector for inst's
// current ads. The estimator is name-keyed, so the override lines up with
// whatever instance the caller pinned, across epoch swaps.
func (e *entry) banditCPEs(inst *core.Instance) ([]float64, error) {
	e.estMu.Lock()
	defer e.estMu.Unlock()
	if e.est == nil {
		return nil, fmt.Errorf("campaign has no engagement estimator; POST /feedback first")
	}
	return overridesFor(e.est, inst), nil
}

// banditCPEs is the coordinator-mode twin of (*entry).banditCPEs. The
// override is computed host-side from the host's estimator — shards
// receive the same integer snapshot, so shard-local consumers agree, and
// the float math happens in exactly one place (the same discipline the
// coordinator applies to all selection-time floats).
func (st *shardedState) banditCPEs(inst *core.Instance) ([]float64, error) {
	st.estMu.Lock()
	defer st.estMu.Unlock()
	if st.est == nil {
		return nil, fmt.Errorf("campaign has no engagement estimator; POST /feedback first")
	}
	return overridesFor(st.est, inst), nil
}

// overridesFor scales inst's declared CPEs by est's per-ad indices.
func overridesFor(est bandit.Estimator, inst *core.Instance) []float64 {
	names := make([]string, len(inst.Ads))
	base := make([]float64, len(inst.Ads))
	for j, ad := range inst.Ads {
		names[j] = ad.Name
		base[j] = ad.CPE
	}
	return est.Overrides(names, base)
}
