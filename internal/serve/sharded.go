// Coordinator mode: adserver fronting a cluster of adshard daemons. With
// Options.Shards set, the server connects to every shard at startup
// (ConnectShards), rebuilds the cluster's instance locally from the
// parameters the shards self-report, and serves /allocate by distributed
// scatter-gather selection (internal/shard) instead of a local index.
// Campaign mutations broadcast through the coordinator, the spend ledger
// lives on the serving host exactly as in single-node mode, and /healthz
// and /stats carry per-shard health.
//
// The request surface is unchanged — same bodies, same responses, and the
// returned allocations are byte-identical to single-node mode, because the
// distributed selection is (see internal/shard's golden tests). Requests
// must name the cluster's instance parameters; a coordinator serves
// exactly one instance (400 otherwise).

package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bandit"
	"repro/internal/core"
	"repro/internal/shard"
)

// shardedState is the serve layer's coordinator-mode half: the cluster
// handle, the instance mirror's cache key, and the host-side spend ledger.
type shardedState struct {
	addrs    []string // slot-major: addrs[slot*replicas+rep]
	replicas int
	sets     []*shard.ReplicaSet
	clients  []shard.Client
	coord    *shard.Coordinator
	params   InstanceParams

	// lifeMu serializes campaign mutations (name lookups + the cluster
	// broadcast); the ledger mutex below must never be held across a
	// broadcast — a slow shard would otherwise stall every /spend and
	// residual /allocate behind it.
	lifeMu sync.Mutex

	mu     sync.Mutex // guards spent and allocs only (never held across RPCs)
	spent  map[string]float64
	allocs int64

	// estMu guards the host-side bandit estimator (nil until the first
	// POST /feedback); its integer snapshot broadcasts to every shard
	// after each batch, outside this lock.
	estMu sync.Mutex
	est   bandit.Estimator

	// memBytes caches the cluster's summed sample footprint, refreshed by
	// the health probes — /allocate reports it without sweeping shards.
	memBytes atomic.Int64
}

// ConnectShards dials every configured shard, validates the cluster (slot
// order, matching dataset parameters, instance fingerprints — see
// shard.NewCoordinator and shard.NewReplicaSet), rebuilds the instance
// locally, and switches the server into coordinator mode. With
// Options.Replicas = R > 1, the address list is read slot-major (R
// consecutive addresses per partition range) and each range is fronted by
// a failover ReplicaSet; a range only needs one reachable replica to
// connect. Every per-replica client is wrapped in the retry layer
// (Options.RPCTimeout), so transient RPC failures — including estimator
// syncs from /feedback — heal without surfacing. Call once at startup,
// before serving; pair with Close when Options.ProbeInterval is set.
func (s *Server) ConnectShards(ctx context.Context) error {
	if len(s.opts.Shards) == 0 {
		return errors.New("serve: no shard addresses configured")
	}
	r := s.opts.Replicas
	if r <= 0 {
		r = 1
	}
	if len(s.opts.Shards)%r != 0 {
		return fmt.Errorf("serve: %d shard addresses do not divide into replica groups of %d", len(s.opts.Shards), r)
	}
	k := len(s.opts.Shards) / r
	st := &shardedState{addrs: s.opts.Shards, replicas: r, spent: map[string]float64{}}
	// All RPC telemetry rides the server's own registry so one /metrics
	// scrape covers the serving host and its view of the fabric. Guarded
	// for ConnectShards retries — families register once per server.
	if s.metrics.shard == nil {
		s.metrics.shard = shard.NewMetrics(s.metrics.reg, "adserver")
	}
	st.sets = make([]*shard.ReplicaSet, k)
	st.clients = make([]shard.Client, k)
	for slot := 0; slot < k; slot++ {
		reps := make([]shard.Client, r)
		for rep := 0; rep < r; rep++ {
			addr := st.addrs[slot*r+rep]
			cl := shard.InstrumentClient(shard.NewHTTPClient(addr), slot, s.metrics.shard)
			reps[rep] = shard.NewRetryClient(cl, shard.RetryPolicy{
				Timeout: s.opts.RPCTimeout,
				Seed:    uint64(slot*r + rep + 1),
				Label:   fmt.Sprintf("%d/%d", slot, rep),
			}, s.metrics.shard)
		}
		set, err := shard.NewReplicaSet(ctx, reps, shard.ReplicaSetConfig{
			Slot:    slot,
			Metrics: s.metrics.shard,
			Logf:    s.opts.Logf,
		})
		if err != nil {
			return fmt.Errorf("serve: range %d (%v): %w", slot, st.addrs[slot*r:(slot+1)*r], err)
		}
		st.sets[slot] = set
		st.clients[slot] = set
	}
	var first shard.DatasetParams
	for slot, set := range st.sets {
		info, err := set.Info(ctx)
		if err != nil {
			return fmt.Errorf("serve: range %d unreachable: %w", slot, err)
		}
		if slot == 0 {
			first = info.Dataset
		} else if info.Dataset != first {
			return fmt.Errorf("serve: range %d serves %+v, range 0 serves %+v", slot, info.Dataset, first)
		}
	}
	st.params = InstanceParams{Dataset: first.Name, Seed: first.Seed, Scale: first.Scale, NumAds: first.NumAds}
	roster, err := BuildDataset(st.params)
	if err != nil {
		return fmt.Errorf("serve: rebuilding cluster instance %s: %w", st.params.Key(), err)
	}
	coord, err := shard.NewCoordinator(ctx, st.clients, shard.Config{
		Roster:  roster,
		Logf:    s.opts.Logf,
		Metrics: s.metrics.shard,
	})
	if err != nil {
		return err
	}
	st.coord = coord
	s.sharded = st
	if _, degraded := st.shardHealth(ctx); len(degraded) > 0 {
		s.opts.Logf("serve: warning: cluster already degraded at connect time (ranges %v)", degraded)
	}
	s.startProber()
	s.opts.Logf("serve: coordinator mode over %d ranges × %d replicas, instance %s", k, r, st.params.Key())
	return nil
}

// startProber launches the background replica prober when
// Options.ProbeInterval is set. shardHealth both reports and revives
// (through ReplicaSet.Probe), so the prober is just a periodic health
// sweep nobody has to request; /healthz remains an on-demand one.
func (s *Server) startProber() {
	if s.opts.ProbeInterval <= 0 || s.proberStop != nil {
		return
	}
	s.proberStop = make(chan struct{})
	s.proberDone = make(chan struct{})
	go func() {
		defer close(s.proberDone)
		t := time.NewTicker(s.opts.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-s.proberStop:
				return
			case <-t.C:
				s.sharded.shardHealth(context.Background())
			}
		}
	}()
}

// Close stops the background prober, if any. Safe to call repeatedly and
// on servers that never started one.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.proberStop != nil {
			close(s.proberStop)
			<-s.proberDone
		}
	})
}

// checkShardedParams rejects requests for any instance other than the
// cluster's.
func (s *Server) checkShardedParams(w http.ResponseWriter, p InstanceParams) bool {
	if p.Key() != s.sharded.params.Key() {
		httpError(w, http.StatusBadRequest,
			"coordinator serves only %s (cluster instance); got %s", s.sharded.params.Key(), p.Key())
		return false
	}
	return true
}

// spendVector materializes the coordinator-mode ledger positionally.
func (st *shardedState) spendVector(inst *core.Instance) []float64 {
	out := make([]float64, len(inst.Ads))
	st.mu.Lock()
	defer st.mu.Unlock()
	for j, ad := range inst.Ads {
		out[j] = st.spent[ad.Name]
	}
	return out
}

// handleAllocateSharded is /allocate in coordinator mode: the same request
// and response shapes, served by distributed selection.
func (s *Server) handleAllocateSharded(w http.ResponseWriter, r *http.Request, req AllocateRequest) {
	if !s.checkShardedParams(w, req.InstanceParams) {
		return
	}
	st := s.sharded
	epoch, curInst := st.coord.EpochInst()
	reqCPEs := req.CPEs
	if req.Bandit {
		if req.CPEs != nil {
			s.metrics.failAlloc(failBadRequest)
			httpError(w, http.StatusBadRequest, "bandit and cpes are mutually exclusive")
			return
		}
		cpes, err := st.banditCPEs(curInst)
		if err != nil {
			s.metrics.failAlloc(failBadRequest)
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		reqCPEs = cpes
	}
	coreReq := core.Request{
		Opts:    req.Opts.toOptions(s.opts.MaxTheta),
		Ads:     req.Ads,
		Budgets: req.Budgets,
		CPEs:    reqCPEs,
		Lambda:  req.Lambda,
		Epoch:   epoch,
		Kernel:  s.kernelFor(req.Kernel),
	}
	if req.Kappa > 0 {
		coreReq.Kappa = core.ConstKappa(req.Kappa)
	}
	if req.Residual {
		coreReq.SpentBudget = st.spendVector(curInst)
	}
	actx, observer, explain, allocSpan := s.allocObserverFor(r.Context(), req.Explain)
	coreReq.Observer = observer
	coreReq.Explain = explain
	started := time.Now()
	res, err := st.coord.Allocate(actx, coreReq)
	allocSpan.EndErr(err)
	if err != nil {
		if errors.Is(err, core.ErrStaleEpoch) {
			s.metrics.failAlloc(failStaleEpoch)
			httpError(w, http.StatusConflict, "campaign set changed mid-request, retry: %v", err)
			return
		}
		if errors.Is(err, shard.ErrPartitionUnavailable) {
			s.metrics.failAlloc(failUnavailable)
			httpError(w, http.StatusServiceUnavailable, "cluster degraded: %v", err)
			return
		}
		s.metrics.failAlloc(failUpstream)
		httpError(w, http.StatusBadGateway, "sharded allocation: %v", err)
		return
	}
	s.metrics.allocations.Inc()
	s.metrics.allocSeconds.Observe(time.Since(started).Seconds())
	s.metrics.recordKernels(res.KernelCounts)
	st.mu.Lock()
	st.allocs++
	st.mu.Unlock()
	for i, seeds := range res.Alloc.Seeds {
		if seeds == nil {
			res.Alloc.Seeds[i] = []int32{}
		}
	}
	inst := instWith(curInst, req.Lambda, req.Kappa)
	adIDs := req.Ads
	if len(adIDs) == 0 {
		adIDs = make([]int, len(inst.Ads))
		for i := range adIDs {
			adIDs[i] = i
		}
	}
	var estRegret float64
	for _, i := range adIDs {
		budget := inst.Ads[i].Budget
		if req.Budgets != nil {
			budget = req.Budgets[i]
		}
		if coreReq.SpentBudget != nil {
			if budget -= coreReq.SpentBudget[i]; budget < 0 {
				budget = 0
			}
		}
		estRegret += core.RegretTerm(budget, res.EstRevenue[i], inst.Lambda, len(res.Alloc.Seeds[i]))
	}
	names := make([]string, len(inst.Ads))
	for i, ad := range inst.Ads {
		names[i] = ad.Name
	}
	writeJSON(w, http.StatusOK, AllocateResponse{
		Key:           st.params.Key(),
		Epoch:         epoch,
		AllocSeconds:  time.Since(started).Seconds(),
		Seeds:         res.Alloc.Seeds,
		EstRevenue:    res.EstRevenue,
		EstRegret:     estRegret,
		FinalTheta:    res.FinalTheta,
		Iterations:    res.Iterations,
		SetsSampled:   res.TotalSetsSampled,
		SetsReused:    res.SetsReused,
		IndexMemBytes: st.memBytes.Load(),
		AdNames:       names,
		SpentBudgets:  coreReq.SpentBudget,
	})
}

// handleAddAdSharded is POST /ads in coordinator mode: the template clone
// broadcasts to every shard and the new ad is warmed cluster-wide.
func (s *Server) handleAddAdSharded(w http.ResponseWriter, r *http.Request, req AddAdRequest) {
	if !s.checkShardedParams(w, req.InstanceParams) {
		return
	}
	st := s.sharded
	st.lifeMu.Lock()
	defer st.lifeMu.Unlock()
	if len(st.coord.Inst().Ads) >= s.opts.MaxAds {
		httpError(w, http.StatusBadRequest, "campaign set already at server limit of %d ads", s.opts.MaxAds)
		return
	}
	spec := shard.AdSpec{
		Name:     req.Ad.Name,
		Budget:   req.Ad.Budget,
		CPE:      req.Ad.CPE,
		CTP:      req.Ad.CTP,
		Template: req.Ad.Template,
	}
	pos, err := st.coord.AddAdSpec(r.Context(), spec, core.TIRMOptions{MaxTheta: s.opts.MaxTheta})
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.adsAdded.Add(1)
	epoch, inst := st.coord.EpochInst()
	names := make([]string, len(inst.Ads))
	for i, ad := range inst.Ads {
		names[i] = ad.Name
	}
	writeJSON(w, http.StatusOK, LifecycleResponse{
		Key: st.params.Key(), Epoch: epoch, NumAds: len(names), Position: pos, AdNames: names,
	})
}

// handleRemoveAdSharded is DELETE /ads/{name} in coordinator mode. The
// lifecycle mutex (not the ledger mutex) spans the lookup + broadcast, so
// a slow shard stalls only other mutations, never /spend or residual
// allocations.
func (s *Server) handleRemoveAdSharded(w http.ResponseWriter, r *http.Request, p InstanceParams, name string) {
	if !s.checkShardedParams(w, p) {
		return
	}
	st := s.sharded
	st.lifeMu.Lock()
	defer st.lifeMu.Unlock()
	inst := st.coord.Inst()
	pos := -1
	for j, ad := range inst.Ads {
		if ad.Name == name {
			pos = j
			break
		}
	}
	if pos < 0 {
		httpError(w, http.StatusNotFound, "no ad %q in campaign %s", name, st.params.Key())
		return
	}
	if err := st.coord.RemoveAd(r.Context(), pos); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st.mu.Lock()
	delete(st.spent, name)
	st.mu.Unlock()
	s.adsRemoved.Add(1)
	s.metrics.dropBanditEstimate(name)
	epoch, cur := st.coord.EpochInst()
	names := make([]string, len(cur.Ads))
	for i, ad := range cur.Ads {
		names[i] = ad.Name
	}
	writeJSON(w, http.StatusOK, LifecycleResponse{
		Key: st.params.Key(), Epoch: epoch, NumAds: len(names), AdNames: names,
	})
}

// handleSpendSharded is POST /spend in coordinator mode: the ledger lives
// on the serving host, keyed by ad name against the coordinator's mirror.
// The lifecycle mutex keeps the name check atomic against a concurrent
// DELETE (which would otherwise leave an orphan ledger entry for a future
// ad reusing the name); the ledger mutex is taken only around the writes.
func (s *Server) handleSpendSharded(w http.ResponseWriter, r *http.Request, req SpendRequest) {
	if !s.checkShardedParams(w, req.InstanceParams) {
		return
	}
	st := s.sharded
	st.lifeMu.Lock()
	defer st.lifeMu.Unlock()
	inst := st.coord.Inst()
	byName := make(map[string]bool, len(inst.Ads))
	for _, ad := range inst.Ads {
		byName[ad.Name] = true
	}
	for name, amount := range req.Spend {
		if !byName[name] {
			httpError(w, http.StatusNotFound, "no ad %q in campaign %s", name, st.params.Key())
			return
		}
		if amount < 0 {
			httpError(w, http.StatusBadRequest, "spend %g for ad %q must be ≥ 0", amount, name)
			return
		}
	}
	resp := SpendResponse{Key: st.params.Key(), Epoch: st.coord.Epoch(), Ads: make([]AdBudgetStatus, len(inst.Ads))}
	st.mu.Lock()
	if req.Reset {
		st.spent = map[string]float64{}
	}
	for name, amount := range req.Spend {
		if amount > 0 {
			st.spent[name] += amount
		}
	}
	for i, ad := range inst.Ads {
		spent := st.spent[ad.Name]
		resp.Ads[i] = AdBudgetStatus{
			Name:     ad.Name,
			Budget:   ad.Budget,
			Spent:    spent,
			Residual: math.Max(ad.Budget-spent, 0),
			Depleted: spent >= ad.Budget,
		}
	}
	st.mu.Unlock()
	s.spendUpdates.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// ShardHealth is one shard replica's health line in /healthz and /stats.
type ShardHealth struct {
	// Addr is the shard daemon's address.
	Addr string `json:"addr"`
	// Reachable reports whether the Info probe succeeded.
	Reachable bool `json:"reachable"`
	// Error carries the probe failure, if any.
	Error string `json:"error,omitempty"`
	// Shard is the partition slot.
	Shard int `json:"shard"`
	// Replica is the replica index within the slot (0 when unreplicated).
	Replica int `json:"replica,omitempty"`
	// Epoch is the shard's campaign epoch.
	Epoch uint64 `json:"epoch,omitempty"`
	// NumAds is the shard's campaign size.
	NumAds int `json:"numAds,omitempty"`
	// SetsSampled counts local RR-sets drawn over the shard's lifetime.
	SetsSampled int64 `json:"setsSampled,omitempty"`
	// MemBytes is the shard's stored-sample footprint.
	MemBytes int64 `json:"memBytes,omitempty"`
	// OpenRuns is the shard's live selection-run count.
	OpenRuns int `json:"openRuns,omitempty"`
	// Draining reports whether the shard refuses new runs.
	Draining bool `json:"draining,omitempty"`
}

// shardHealth probes every replica of every range with a bounded timeout
// (via ReplicaSet.Probe, so a probe doubles as a revive attempt for
// replicas that fell out of the rotation). degraded lists the partition
// ranges with no reachable replica at all — only those make the cluster
// unable to serve; a range with one dead replica out of R still reports
// healthy. When every range answers, the cached sample-footprint sum that
// /allocate reports is refreshed from one replica per range (so the
// request path never sweeps shards itself).
func (st *shardedState) shardHealth(ctx context.Context) (out []ShardHealth, degraded []int) {
	ctx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	out = make([]ShardHealth, 0, len(st.addrs))
	var mem int64
	for slot, set := range st.sets {
		up := false
		for rep, rs := range set.Probe(ctx) {
			h := ShardHealth{Addr: st.addrs[slot*st.replicas+rep], Shard: slot, Replica: rep}
			if rs.Err != nil {
				h.Error = rs.Err.Error()
			}
			if rs.Reachable {
				h.Reachable = true
				h.Epoch = rs.Info.Epoch
				h.NumAds = rs.Info.NumAds
				h.SetsSampled = rs.Info.SetsSampled
				h.MemBytes = rs.Info.MemBytes
				h.OpenRuns = rs.Info.OpenRuns
				h.Draining = rs.Info.Draining
				if !up {
					mem += rs.Info.MemBytes
				}
				up = true
			}
			out = append(out, h)
		}
		if !up {
			degraded = append(degraded, slot)
		}
	}
	if len(degraded) == 0 {
		st.memBytes.Store(mem)
	}
	return out, degraded
}

// ShardedStatsSection is the coordinator-mode block of GET /stats.
type ShardedStatsSection struct {
	// Key is the cluster's instance key.
	Key string `json:"key"`
	// NumShards is the cluster's K (partition ranges).
	NumShards int `json:"numShards"`
	// Replicas is R, the replication factor per range.
	Replicas int `json:"replicas"`
	// Epoch is the coordinator's campaign epoch.
	Epoch uint64 `json:"epoch"`
	// Allocations counts distributed selections served.
	Allocations int64 `json:"allocations"`
	// SpentTotal sums the host-side engagement ledger.
	SpentTotal float64 `json:"spentTotal"`
	// Shards carries per-shard health.
	Shards []ShardHealth `json:"shards"`
}

// shardedStats assembles the /stats section.
func (s *Server) shardedStats(ctx context.Context) *ShardedStatsSection {
	st := s.sharded
	health, _ := st.shardHealth(ctx)
	st.mu.Lock()
	var spent float64
	for _, v := range st.spent {
		spent += v
	}
	allocs := st.allocs
	st.mu.Unlock()
	return &ShardedStatsSection{
		Key:         st.params.Key(),
		NumShards:   st.coord.NumShards(),
		Replicas:    st.replicas,
		Epoch:       st.coord.Epoch(),
		Allocations: allocs,
		SpentTotal:  spent,
		Shards:      health,
	}
}
