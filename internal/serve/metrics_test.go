package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/shard"
)

// scrapeMetrics GETs url's /metrics, validates the exposition with
// obs.Lint, and returns the body for substring assertions.
func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d\n%s", resp.StatusCode, body)
	}
	if err := obs.Lint(bytes.NewReader(body)); err != nil {
		t.Fatalf("/metrics exposition invalid: %v\n%s", err, body)
	}
	return string(body)
}

// TestMetricsEndpoint drives one successful and one rejected allocation
// through a single-node server and checks the /metrics surface: the
// exposition parses (TYPE lines, monotone cumulative buckets, +Inf ==
// _count — see obs.Lint), the allocation and failure counters carry the
// expected values, the per-phase histograms observed the run, and the
// failure breakdown is mirrored into /stats.
func TestMetricsEndpoint(t *testing.T) {
	ts := testServer(t, Options{})

	var alloc AllocateResponse
	if code := postJSON(t, ts.URL+"/allocate", fig1Request(), &alloc); code != http.StatusOK {
		t.Fatalf("allocate: %d", code)
	}
	// A zero-scale request is refused with 400 and must land in the
	// failure counter under reason="bad_request".
	bad := AllocateRequest{InstanceParams: InstanceParams{Dataset: "fig1", Seed: 1}}
	if code := postJSON(t, ts.URL+"/allocate", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("zero-scale allocate returned %d, want 400", code)
	}

	body := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"adserver_allocations_total 1",
		`adserver_alloc_failures_total{reason="bad_request"} 1`,
		"adserver_alloc_seconds_count 1",
		"adserver_alloc_rounds_count 1",
		`adserver_alloc_phase_seconds_count{phase="scan"} 1`,
		`adserver_alloc_phase_seconds_count{phase="commit"} 1`,
		`adserver_http_requests_total{endpoint="allocate",code="200"} 1`,
		`adserver_http_requests_total{endpoint="allocate",code="400"} 1`,
		"adserver_cache_misses_total 1",
		"adserver_cache_entries 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}

	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.AllocFailures["bad_request"] != 1 {
		t.Fatalf("stats allocFailures = %v, want bad_request:1", stats.AllocFailures)
	}
}

// TestTraceHeaderEcho pins the middleware's trace contract on a plain
// request: a caller-supplied X-Trace-Id comes back verbatim, and a request
// without one is assigned a fresh id.
func TestTraceHeaderEcho(t *testing.T) {
	ts := testServer(t, Options{})

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeader, "trace-echo-test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != "trace-echo-test" {
		t.Fatalf("trace header %q, want the caller's id echoed", got)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got == "" {
		t.Fatal("no trace id minted for an untraced request")
	}
}

// tracedCluster is shardedServer plus observability handles: the backing
// shard HTTP servers (so tests can kill one) and a capture of every shard
// daemon's structured request log.
type tracedCluster struct {
	front  *httptest.Server
	shards []*httptest.Server

	mu   sync.Mutex
	logs []string
}

func (c *tracedCluster) logf(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.logs = append(c.logs, fmt.Sprintf(format, args...))
}

func (c *tracedCluster) logged(substr string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, l := range c.logs {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

func newTracedCluster(t *testing.T, params InstanceParams, k int) *tracedCluster {
	t.Helper()
	roster, err := BuildDataset(params)
	if err != nil {
		t.Fatal(err)
	}
	p, err := shard.NewPartitioner(k)
	if err != nil {
		t.Fatal(err)
	}
	c := &tracedCluster{}
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		sh, err := shard.NewShard(roster, 0, params.Seed, p.Range(i))
		if err != nil {
			t.Fatal(err)
		}
		sh.Dataset = shard.DatasetParams{Name: params.Dataset, Seed: params.Seed, Scale: params.Scale, NumAds: params.NumAds}
		sh.Logf = c.logf
		ts := httptest.NewServer(sh.Handler())
		t.Cleanup(ts.Close)
		c.shards = append(c.shards, ts)
		addrs[i] = strings.TrimPrefix(ts.URL, "http://")
	}
	srv := New(Options{Shards: addrs, Logf: t.Logf})
	if err := srv.ConnectShards(context.Background()); err != nil {
		t.Fatal(err)
	}
	c.front = httptest.NewServer(srv.Handler())
	t.Cleanup(c.front.Close)
	return c
}

// TestShardedTracePropagation sends a traced /allocate through the full
// coordinator stack and checks the id survives every hop: echoed on the
// front response, forwarded on the shard RPC fan-out, and stamped into
// each daemon's request log — so one grep ties an allocation to all its
// shard-side work. The same run must also populate the fabric RPC metrics
// on the coordinator and the daemon-side HTTP metrics on the shards.
func TestShardedTracePropagation(t *testing.T) {
	params := InstanceParams{Dataset: "fig1", Seed: 1, Scale: 1}
	c := newTracedCluster(t, params, 2)

	raw, err := json.Marshal(AllocateRequest{
		InstanceParams: params,
		Opts:           TIRMParams{MinTheta: 1024, MaxTheta: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	httpReq, err := http.NewRequest(http.MethodPost, c.front.URL+"/allocate", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set(obs.TraceHeader, "trace-e2e")
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded allocate: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != "trace-e2e" {
		t.Fatalf("front echoed trace %q, want trace-e2e", got)
	}
	if !c.logged("trace=trace-e2e") {
		t.Fatalf("no shard log line carries trace=trace-e2e; logs:\n%s",
			strings.Join(c.logs, "\n"))
	}
	if !c.logged("component=adshard") {
		t.Fatal("shard logs missing component=adshard")
	}

	// Coordinator-side fabric telemetry.
	body := scrapeMetrics(t, c.front.URL)
	for _, want := range []string{
		`adserver_shard_rpcs_total{op="commit",shard="0",outcome="ok"}`,
		`adserver_shard_rpcs_total{op="start",shard="1",outcome="ok"}`,
		`adserver_coordinator_round_seconds_count{phase="commit"}`,
		"adserver_allocations_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("coordinator /metrics missing %q", want)
		}
	}

	// Daemon-side exposition on each shard.
	for i, sh := range c.shards {
		sb := scrapeMetrics(t, sh.URL)
		for _, want := range []string{
			`adshard_http_requests_total{endpoint="shard_commit",code="200"}`,
			"adshard_epoch 1",
		} {
			if !strings.Contains(sb, want) {
				t.Errorf("shard %d /metrics missing %q", i, want)
			}
		}
	}
}

// TestShardedHealthzDegraded kills one daemon of a live cluster and checks
// the coordinator's /healthz flips to 503/"degraded" with the dead slot
// marked unreachable — the contract a load balancer's probe relies on.
func TestShardedHealthzDegraded(t *testing.T) {
	params := InstanceParams{Dataset: "fig1", Seed: 1, Scale: 1}
	c := newTracedCluster(t, params, 2)

	var health HealthResponse
	if code := getJSON(t, c.front.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz before kill: %d", code)
	}

	c.shards[1].Close()
	resp, err := http.Get(c.front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with a dead shard: %d, want 503", resp.StatusCode)
	}
	health = HealthResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" {
		t.Fatalf("status %q, want degraded", health.Status)
	}
	if len(health.Shards) != 2 || health.Shards[0].Reachable == false || health.Shards[1].Reachable {
		t.Fatalf("shard health = %+v, want slot 1 unreachable only", health.Shards)
	}
}
