package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"testing"

	"repro/internal/bandit"
	"repro/internal/core"
	"repro/internal/gen"
)

// raceParams is the one cache entry every goroutine in the race test
// hammers.
var raceParams = InstanceParams{Dataset: "flixster", Seed: 3, Scale: 0.01}

// raceOpts keeps the per-request selection cheap enough for -race.
var raceOpts = TIRMParams{Eps: 0.3, MinTheta: 1500, MaxTheta: 8000}

// postAllocate fires one POST /allocate and decodes the result without
// touching testing.T (safe from worker goroutines).
func postAllocate(url string, req AllocateRequest) (AllocateResponse, int, error) {
	var out AllocateResponse
	raw, err := json.Marshal(req)
	if err != nil {
		return out, 0, err
	}
	resp, err := http.Post(url+"/allocate", "application/json", bytes.NewReader(raw))
	if err != nil {
		return out, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return out, resp.StatusCode, err
		}
	}
	return out, resp.StatusCode, nil
}

// mutateOnce runs one add → spend → remove cycle against the entry. The
// sequence is deterministic, so replaying it serially on a fresh server
// reproduces the exact same index state (stream ids advance per add).
func mutateOnce(t *testing.T, url string, spendAd string) {
	t.Helper()
	add := AddAdRequest{InstanceParams: raceParams, Ad: NewAdSpec{
		Name: "race-ad", Budget: 9, CPE: 3, CTP: 0.02, Template: 0,
	}}
	if code := postJSON(t, url+"/ads", add, nil); code != http.StatusOK {
		t.Fatalf("add ad: HTTP %d", code)
	}
	spend := SpendRequest{InstanceParams: raceParams, Spend: map[string]float64{spendAd: 2}}
	if code := postJSON(t, url+"/spend", spend, nil); code != http.StatusOK {
		t.Fatalf("spend: HTTP %d", code)
	}
	del, err := http.NewRequest(http.MethodDelete,
		fmt.Sprintf("%s/ads/race-ad?dataset=%s&seed=%d&scale=%g", url, raceParams.Dataset, raceParams.Seed, raceParams.Scale), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove ad: HTTP %d", resp.StatusCode)
	}
}

// TestServerAllocateRaceUnderMutation drives the pooled warm path the way
// a live host gets hit: many goroutines firing mixed residual and plain
// allocations at ONE cache entry (one index, one workspace pool) while
// campaign mutations (POST /ads, POST /spend, DELETE /ads) advance its
// epoch — run under -race in CI. Assertions:
//
//   - before any mutation, every concurrent response is byte-identical to
//     a fresh-index core run (pooled workspaces leak no state);
//   - during mutations, responses that report the same (epoch, ad set,
//     spent budgets) carry identical seeds, and epoch races surface as
//     clean 409s only;
//   - after the storm, the hammered entry's allocation equals a fresh
//     server's after a serial replay of the same mutation history.
func TestServerAllocateRaceUnderMutation(t *testing.T) {
	ts := testServer(t, Options{})

	// Ground truth: the same instance and stream seed through the core API,
	// with a workspace pool of its own — a fresh-index run.
	inst := gen.Flixster(gen.Options{Seed: raceParams.Seed, Scale: raceParams.Scale})
	idx, err := core.BuildIndex(inst, raceParams.Seed, core.TIRMOptions{MaxTheta: DefaultMaxTheta})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.AllocateFromIndex(idx, core.Request{Opts: raceOpts.toOptions(DefaultMaxTheta)})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: concurrent mixed traffic, campaign untouched. Every response
	// must match the fresh-index allocation exactly (an all-zero spend
	// vector makes residual ≡ plain).
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				out, code, err := postAllocate(ts.URL, AllocateRequest{
					InstanceParams: raceParams, Opts: raceOpts, Residual: g%2 == 0,
				})
				if err != nil || code != http.StatusOK {
					errs <- fmt.Sprintf("phase1 g%d: code=%d err=%v", g, code, err)
					return
				}
				if out.Epoch != 1 || !reflect.DeepEqual(out.Seeds, want.Alloc.Seeds) {
					errs <- fmt.Sprintf("phase1 g%d: epoch %d seeds diverged from fresh-index run", g, out.Epoch)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Phase 2: hammer while a mutator advances the epoch. Responses are
	// grouped by everything that legitimately shapes them; within a group
	// the seeds must agree byte for byte.
	adName := ""
	{
		var out AllocateResponse
		if code := postJSON(t, ts.URL+"/allocate", AllocateRequest{InstanceParams: raceParams, Opts: raceOpts}, &out); code != http.StatusOK {
			t.Fatalf("seed allocate: HTTP %d", code)
		}
		adName = out.AdNames[0]
	}
	var mu sync.Mutex
	groups := map[string][][]int32{}
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				out, code, err := postAllocate(ts.URL, AllocateRequest{
					InstanceParams: raceParams, Opts: raceOpts, Residual: g%2 == 0,
				})
				if err != nil {
					errs <- fmt.Sprintf("phase2 g%d: %v", g, err)
					return
				}
				if code == http.StatusConflict {
					continue // epoch moved mid-request: the documented clean race outcome
				}
				if code != http.StatusOK {
					errs <- fmt.Sprintf("phase2 g%d: HTTP %d", g, code)
					return
				}
				key := fmt.Sprintf("e%d|ads%v|spent%v", out.Epoch, out.AdNames, out.SpentBudgets)
				mu.Lock()
				if prev, ok := groups[key]; ok {
					if !reflect.DeepEqual(prev, out.Seeds) {
						mu.Unlock()
						errs <- fmt.Sprintf("phase2 g%d: same campaign state %q, different seeds", g, key)
						return
					}
				} else {
					groups[key] = out.Seeds
				}
				mu.Unlock()
			}
		}(g)
	}
	const cycles = 3
	for k := 0; k < cycles; k++ {
		mutateOnce(t, ts.URL, adName)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Phase 3: serial replay on a fresh server (fresh index, fresh pools)
	// must land on the identical final allocation and spend ledger.
	fresh := testServer(t, Options{})
	if code := postJSON(t, fresh.URL+"/allocate", AllocateRequest{InstanceParams: raceParams, Opts: raceOpts}, nil); code != http.StatusOK {
		t.Fatalf("fresh warm: HTTP %d", code)
	}
	for k := 0; k < cycles; k++ {
		mutateOnce(t, fresh.URL, adName)
	}
	var gotOut, freshOut AllocateResponse
	if code := postJSON(t, ts.URL+"/allocate", AllocateRequest{InstanceParams: raceParams, Opts: raceOpts, Residual: true}, &gotOut); code != http.StatusOK {
		t.Fatalf("hammered final allocate: HTTP %d", code)
	}
	if code := postJSON(t, fresh.URL+"/allocate", AllocateRequest{InstanceParams: raceParams, Opts: raceOpts, Residual: true}, &freshOut); code != http.StatusOK {
		t.Fatalf("fresh final allocate: HTTP %d", code)
	}
	if !reflect.DeepEqual(gotOut.SpentBudgets, freshOut.SpentBudgets) {
		t.Fatalf("spend ledgers diverged: %v vs %v", gotOut.SpentBudgets, freshOut.SpentBudgets)
	}
	if !reflect.DeepEqual(gotOut.Seeds, freshOut.Seeds) {
		t.Fatalf("hammered entry's final allocation diverged from the fresh-index replay:\n got %v\nwant %v",
			gotOut.Seeds, freshOut.Seeds)
	}
	if gotOut.Epoch != freshOut.Epoch {
		t.Fatalf("epochs diverged: %d vs %d", gotOut.Epoch, freshOut.Epoch)
	}
}

// postFeedback fires one POST /feedback without touching testing.T (safe
// from worker goroutines).
func postFeedback(url string, req FeedbackRequest) (int, error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(url+"/feedback", "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// raceFeedbackEvent is the deterministic event worker g posts each
// iteration: fixed per-worker counts so the aggregate estimator state
// after the storm is a pure function of the worker set, not the
// interleaving (event counts are additive integers, so batches commute).
func raceFeedbackEvent(names []string, g int) bandit.Event {
	return bandit.Event{
		Ad:          names[g%len(names)],
		Impressions: 20,
		Clicks:      int64(2 + 3*g),
	}
}

// TestFeedbackRaceUnderMutation hammers POST /feedback concurrently with
// bandit /allocate, POST /ads, POST /spend, and DELETE /ads on one cache
// entry — run under -race in CI. Because feedback is name-keyed,
// epoch-tolerant, and additive, the storm must end in a state where the
// final bandit allocation is byte-identical to a fresh server that
// replayed the same mutations serially and ingested the same events in
// one batch.
func TestFeedbackRaceUnderMutation(t *testing.T) {
	ts := testServer(t, Options{})

	// Warm the entry and learn the campaign's ad names.
	var warm AllocateResponse
	if code := postJSON(t, ts.URL+"/allocate", AllocateRequest{InstanceParams: raceParams, Opts: raceOpts}, &warm); code != http.StatusOK {
		t.Fatalf("warm allocate: HTTP %d", code)
	}
	names := warm.AdNames

	// Seed the estimator before the storm so bandit allocations never 400.
	if code, err := postFeedback(ts.URL, FeedbackRequest{
		InstanceParams: raceParams,
		Events:         []bandit.Event{raceFeedbackEvent(names, 0)},
	}); err != nil || code != http.StatusOK {
		t.Fatalf("seed feedback: code=%d err=%v", code, err)
	}

	const feedbackWorkers, allocWorkers, iters, cycles = 4, 4, 6, 3
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	stop := make(chan struct{})
	for g := 0; g < feedbackWorkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				code, err := postFeedback(ts.URL, FeedbackRequest{
					InstanceParams: raceParams,
					Events:         []bandit.Event{raceFeedbackEvent(names, g)},
				})
				if err != nil || code != http.StatusOK {
					errs <- fmt.Sprintf("feedback g%d i%d: code=%d err=%v", g, i, code, err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < allocWorkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, code, err := postAllocate(ts.URL, AllocateRequest{
					InstanceParams: raceParams, Opts: raceOpts, Bandit: true, Residual: g%2 == 0,
				})
				if err != nil {
					errs <- fmt.Sprintf("alloc g%d: %v", g, err)
					return
				}
				// 409 = epoch race with a mutation: the documented clean
				// outcome. Everything else must succeed.
				if code != http.StatusOK && code != http.StatusConflict {
					errs <- fmt.Sprintf("alloc g%d: HTTP %d", g, code)
					return
				}
			}
		}(g)
	}
	for k := 0; k < cycles; k++ {
		mutateOnce(t, ts.URL, names[0])
	}
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Fresh server: serial replay of the identical mutation history plus
	// the storm's aggregate event stream in a single batch.
	fresh := testServer(t, Options{})
	if code := postJSON(t, fresh.URL+"/allocate", AllocateRequest{InstanceParams: raceParams, Opts: raceOpts}, nil); code != http.StatusOK {
		t.Fatalf("fresh warm: HTTP %d", code)
	}
	replay := []bandit.Event{raceFeedbackEvent(names, 0)} // the pre-storm seed batch
	for g := 0; g < feedbackWorkers; g++ {
		for i := 0; i < iters; i++ {
			replay = append(replay, raceFeedbackEvent(names, g))
		}
	}
	if code := postJSON(t, fresh.URL+"/feedback", FeedbackRequest{
		InstanceParams: raceParams, Events: replay,
	}, nil); code != http.StatusOK {
		t.Fatalf("replay feedback: HTTP %d", code)
	}
	for k := 0; k < cycles; k++ {
		mutateOnce(t, fresh.URL, names[0])
	}

	final := AllocateRequest{InstanceParams: raceParams, Opts: raceOpts, Bandit: true, Residual: true}
	var gotOut, freshOut AllocateResponse
	if code := postJSON(t, ts.URL+"/allocate", final, &gotOut); code != http.StatusOK {
		t.Fatalf("hammered final allocate: HTTP %d", code)
	}
	if code := postJSON(t, fresh.URL+"/allocate", final, &freshOut); code != http.StatusOK {
		t.Fatalf("fresh final allocate: HTTP %d", code)
	}
	if !reflect.DeepEqual(gotOut.SpentBudgets, freshOut.SpentBudgets) {
		t.Fatalf("spend ledgers diverged: %v vs %v", gotOut.SpentBudgets, freshOut.SpentBudgets)
	}
	if !reflect.DeepEqual(gotOut.Seeds, freshOut.Seeds) {
		t.Fatalf("hammered entry's final bandit allocation diverged from the fresh replay:\n got %v\nwant %v",
			gotOut.Seeds, freshOut.Seeds)
	}
	if gotOut.Epoch != freshOut.Epoch {
		t.Fatalf("epochs diverged: %d vs %d", gotOut.Epoch, freshOut.Epoch)
	}
}
