// Package serve exposes the allocation engine as a concurrent HTTP/JSON
// service — the shape the ROADMAP's production north star asks for: a host
// that repeatedly re-allocates as campaigns arrive and budgets change.
//
// The expensive substrate (per-ad RR-set samples) is managed as a cache of
// core.Index values keyed by (dataset, seed, scale, ads). The first request
// for a key builds the instance and presamples its index; concurrent
// requests for the same key coalesce onto that one build; every later
// request reuses the sample and pays only the cheap greedy selection
// (core.AllocateFromIndex), whatever its budgets, λ, κ, ad subset, or
// options. With a snapshot directory configured, built indexes are
// persisted with core's binary snapshot format and reloaded on restart, so
// a bounced server answers warm.
//
// Campaigns are mutable after the build: POST /ads adds an advertiser to a
// cached index (sampling only the new ad's stream), DELETE /ads/{name}
// retires one, and POST /spend records engagement spend so that
// /allocate with "residual": true re-targets the remaining budgets
// B_i − spent_i — the campaign-lifecycle loop internal/sim simulates,
// served over HTTP. Mutations ride the same entry cache and coalescing as
// reads; they advance the index's epoch, and a racing residual allocation
// fails with 409 instead of running against a campaign set it was not
// shaped for. Mutations live in memory only: a snapshot restart restores
// the as-built index (see DESIGN.md §6.5).
//
// Endpoints:
//
//	POST   /allocate    — run TIRM selection against the cached index
//	POST   /allocate/batch — evaluate many selection requests against one pinned epoch
//	POST   /evaluate    — neutral Monte Carlo scoring of an allocation
//	POST   /ads         — add an advertiser to a cached campaign set
//	DELETE /ads/{name}  — remove an advertiser by name
//	POST   /spend       — record engagement spend / read residual budgets
//	POST   /feedback    — apply engagement events to the bandit estimator
//	GET    /datasets    — registered dataset generators
//	GET    /stats       — cache and lifecycle counters, per-index memory
//	GET    /healthz     — liveness probe
//	GET    /metrics     — Prometheus text exposition (see docs/OBSERVABILITY.md)
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime/metrics"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bandit"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/topic"
	"repro/internal/xrand"
)

// DefaultMaxScale bounds the dataset scale a request may ask for; the
// LiveJournal analogue at scale 1 is a multi-gigabyte build, and an open
// endpoint must not let one request OOM the process.
const DefaultMaxScale = 0.25

// DefaultMaxTheta caps per-ad sample sizes when a request does not say
// otherwise, bounding index memory (TIRMOptions.MaxTheta = 0 means
// uncapped in the library, which a server cannot afford).
const DefaultMaxTheta = 200000

// DefaultMaxEntries bounds the cache: every distinct (dataset, seed,
// scale, ads) key retains a multi-MB instance+index, so without eviction a
// client iterating seeds would grow the process until it OOMs.
const DefaultMaxEntries = 8

// DefaultMaxAds bounds the per-request advertiser count; instance size and
// index presampling both scale linearly in it (the paper's settings use 5
// and 10).
const DefaultMaxAds = 64

// Options configures a Server.
type Options struct {
	// SnapshotDir, when non-empty, enables index persistence: builds are
	// saved there and restarts load instead of resampling.
	SnapshotDir string
	// MaxScale rejects requests beyond this dataset scale (default
	// DefaultMaxScale).
	MaxScale float64
	// MaxTheta is the server-side cap on per-ad sample sizes (default
	// DefaultMaxTheta). Request values above it are clamped.
	MaxTheta int
	// MaxEntries caps the number of cached instance+index entries;
	// least-recently-used entries are evicted past it (default
	// DefaultMaxEntries). Snapshots on disk survive eviction, so a
	// re-requested key reloads instead of resampling.
	MaxEntries int
	// MaxAds rejects requests asking for more advertisers than this
	// (default DefaultMaxAds).
	MaxAds int
	// DefaultKernel, when non-empty, is the coverage kernel requests run
	// on unless they pick their own ("auto", "sparse", or "bitset"; see
	// core.Request.Kernel). Empty means auto-selection by density. Kernels
	// change sweep cost, never any allocation's content.
	DefaultKernel string
	// Shards, when non-empty, switches the server into coordinator mode:
	// /allocate runs distributed scatter-gather selection over these
	// adshard daemons ("host:port") instead of a local index. The list is
	// slot-major: with Replicas = R, each partition slot's R replicas are
	// consecutive entries. Call ConnectShards before serving.
	Shards []string
	// Replicas is the replication factor R in coordinator mode: every
	// partition range is served by R interchangeable shard daemons with
	// automatic failover (default 1, unreplicated). len(Shards) must be a
	// multiple of R.
	Replicas int
	// RPCTimeout is the per-attempt deadline for fast shard RPCs in
	// coordinator mode; sampling-heavy ops get 10× this (default 30s, see
	// shard.RetryPolicy).
	RPCTimeout time.Duration
	// ProbeInterval, when > 0, runs a background prober in coordinator
	// mode that re-checks replica health and revives recovered replicas
	// every interval (replicas also revive on /healthz probes). Pair with
	// Close.
	ProbeInterval time.Duration
	// Logf receives operational messages (default log.Printf).
	Logf func(format string, args ...any)
	// Tracing shapes the server's span tracer: retained-trace ring
	// capacity, tail-retention latency threshold, and head-sample rate.
	// The zero value uses the obs defaults (256 traces, 250ms, 1-in-16).
	// Tracing is always on — span cost is per-request and bounded — and
	// never changes an allocation's bytes.
	Tracing obs.TracerConfig
}

// Server is the allocation service. Create with New; serve via Handler.
type Server struct {
	opts  Options
	start time.Time

	// metrics is the server's /metrics surface; it doubles as the
	// core.AllocObserver local selection runs report phase timings to.
	metrics *serverMetrics

	// tracer assembles per-request span trees and retains them tail-based
	// for GET /debug/traces (see internal/obs and docs/OBSERVABILITY.md).
	tracer *obs.Tracer

	// sharded is non-nil in coordinator mode (see ConnectShards).
	sharded *shardedState

	// proberStop ends the background replica prober (see Close); nil
	// unless ConnectShards started one.
	proberStop chan struct{}
	proberDone chan struct{}
	closeOnce  sync.Once

	mu      sync.Mutex
	entries map[string]*entry

	cacheHits       atomic.Int64
	cacheMisses     atomic.Int64
	coalesced       atomic.Int64
	snapshotLoads   atomic.Int64
	adsAdded        atomic.Int64
	adsRemoved      atomic.Int64
	spendUpdates    atomic.Int64
	feedbackUpdates atomic.Int64
}

// entry is one cached instance plus its lazily built index. The two are
// built in separate phases so /evaluate — which only needs the instance —
// never pays for (or triggers) index presampling. instReady is closed once
// inst is set; idxReady is created by the first index builder and closed
// when idx/idxErr are final, coalescing concurrent builders.
type entry struct {
	key       string
	params    InstanceParams
	instReady chan struct{}
	inst      *core.Instance

	idxMu    sync.Mutex
	idxReady chan struct{} // nil until an index build starts
	idx      *core.Index
	idxErr   error
	fromDisk bool
	buildSec float64

	lastUsed atomic.Int64 // unix nanos, drives LRU eviction
	hits     atomic.Int64
	allocs   atomic.Int64

	// pool recycles AllocateFromIndex workspaces across requests against
	// this entry's index; attaching it here (rather than sharing one pool
	// process-wide) keeps the recycled array shapes matched to the entry's
	// node count and θ, and gives /stats a per-campaign hit/miss signal.
	pool core.WorkspacePool
	// allocObjects/allocBytes accumulate the runtime's heap-allocation
	// deltas measured around each selection run (approximate when requests
	// overlap — the counters are process-wide; see docs/API.md).
	allocObjects atomic.Int64
	allocBytes   atomic.Int64

	// lifeMu serializes campaign mutations on this entry so name-uniqueness
	// checks and the core epoch swap are atomic; allocations never take it
	// (they pin an epoch inside core instead). spendMu guards the
	// engagement ledger, keyed by ad name so it survives the position
	// shifts removals cause. mutating counts mutation handlers currently
	// between entry resolution and completion, so eviction never races the
	// first mutation out of existence.
	lifeMu   sync.Mutex
	spendMu  sync.Mutex
	spent    map[string]float64
	mutating atomic.Int32

	// estMu guards the bandit estimator (nil until the first POST
	// /feedback). Separate from lifeMu: feedback is name-keyed and
	// epoch-tolerant, so it never serializes against campaign mutations.
	estMu sync.Mutex
	est   bandit.Estimator
}

// currentInst returns the entry's latest campaign view: the index's current
// epoch once one is built (mutations swap fresh instances in), otherwise
// the as-generated base instance. Callers must have waited on instReady.
func (e *entry) currentInst() *core.Instance {
	if e.indexBuilt() {
		return e.idx.Inst()
	}
	return e.inst
}

// hasLifecycleState reports whether the entry carries campaign state that
// exists nowhere else — a mutated ad set (epoch past the build) or a
// non-empty spend ledger. Such entries are exempt from LRU eviction:
// rebuilding from the generator (or the as-built snapshot) would silently
// resurrect the pre-mutation campaign with full budgets.
func (e *entry) hasLifecycleState() bool {
	e.spendMu.Lock()
	spent := len(e.spent) > 0
	e.spendMu.Unlock()
	if spent {
		return true
	}
	return e.indexBuilt() && e.idx.Epoch() > 1
}

// spendVector materializes the engagement ledger positionally for inst.
// Ads with no recorded spend map to 0, so a fresh campaign is exactly the
// zero vector.
func (e *entry) spendVector(inst *core.Instance) []float64 {
	out := make([]float64, len(inst.Ads))
	e.spendMu.Lock()
	defer e.spendMu.Unlock()
	if e.spent == nil {
		return out
	}
	for j, ad := range inst.Ads {
		out[j] = e.spent[ad.Name]
	}
	return out
}

// buildInFlight reports whether the entry's instance generation or index
// build is currently running (non-blocking).
func (e *entry) buildInFlight() bool {
	select {
	case <-e.instReady:
	default:
		return true
	}
	e.idxMu.Lock()
	ch := e.idxReady
	e.idxMu.Unlock()
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return false
	default:
		return true
	}
}

// indexBuilt reports whether the entry's index finished building
// successfully (non-blocking).
func (e *entry) indexBuilt() bool {
	e.idxMu.Lock()
	ch := e.idxReady
	e.idxMu.Unlock()
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return e.idxErr == nil
	default:
		return false
	}
}

// InstanceParams identifies a cached instance+index. Only sampling-time
// inputs belong here: budgets, CPE, λ, κ are selection-time and overridable
// per request, so they deliberately do not fragment the cache.
type InstanceParams struct {
	Dataset string  `json:"dataset"`
	Seed    uint64  `json:"seed"`
	Scale   float64 `json:"scale"`
	NumAds  int     `json:"numAds,omitempty"`
}

// Key renders the parameters as the cache key (one string per distinct
// instance+index).
func (p InstanceParams) Key() string {
	return fmt.Sprintf("%s|seed=%d|scale=%g|ads=%d", p.Dataset, p.Seed, p.Scale, p.NumAds)
}

// datasetSpec is one registered generator.
type datasetSpec struct {
	name  string
	desc  string
	build func(gen.Options) *core.Instance
}

var datasetRegistry = []datasetSpec{
	{"flixster", "FLIXSTER analogue: 30K-node power-law graph, 10 topical ads (quality setting)", gen.Flixster},
	{"epinions", "EPINIONS analogue: 76K-node power-law graph, exponential probabilities", gen.Epinions},
	{"dblp", "DBLP analogue: community co-authorship graph, weighted-cascade (scalability setting)", gen.DBLP},
	{"livejournal", "LIVEJOURNAL analogue: 4.8M-node community graph — mind the scale", gen.LiveJournal},
	{"fig1", "the paper's 6-node running example (ignores scale and ads)", func(gen.Options) *core.Instance { return gen.Fig1Instance(0) }},
}

// BuildDataset generates the instance for registered dataset parameters —
// the exact registry and generator path /allocate uses, exported for the
// shard daemon (cmd/adshard), which must build the identical roster the
// coordinator validates fingerprints against.
func BuildDataset(p InstanceParams) (*core.Instance, error) {
	spec, ok := findDataset(p.Dataset)
	if !ok {
		return nil, fmt.Errorf("unknown dataset %q", p.Dataset)
	}
	if p.Scale <= 0 {
		return nil, fmt.Errorf("scale must be > 0")
	}
	if p.NumAds < 0 {
		return nil, fmt.Errorf("numAds must be ≥ 0")
	}
	return spec.build(gen.Options{Seed: p.Seed, Scale: p.Scale, NumAds: p.NumAds}), nil
}

func findDataset(name string) (datasetSpec, bool) {
	name = strings.ToLower(name)
	if name == "lj" {
		name = "livejournal"
	}
	for _, d := range datasetRegistry {
		if d.name == name {
			return d, true
		}
	}
	return datasetSpec{}, false
}

// New creates a server. If opts.SnapshotDir is set it is created on demand.
func New(opts Options) *Server {
	if opts.MaxScale <= 0 {
		opts.MaxScale = DefaultMaxScale
	}
	if opts.MaxTheta <= 0 {
		opts.MaxTheta = DefaultMaxTheta
	}
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = DefaultMaxEntries
	}
	if opts.MaxAds <= 0 {
		opts.MaxAds = DefaultMaxAds
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	s := &Server{opts: opts, start: time.Now(), entries: map[string]*entry{}}
	s.metrics = newServerMetrics(s)
	s.tracer = obs.NewTracer(opts.Tracing)
	s.tracer.EnableMetrics(s.metrics.reg, "adserver")
	return s
}

// Tracer exposes the server's span tracer (tests and embedding hosts
// query retained traces through it).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Handler returns the service's HTTP routes, wrapped in the obs middleware
// so every request is metered per endpoint, carries a trace id (minted
// unless the client sent X-Trace-Id), and is logged as one structured
// key=value line through Options.Logf.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/datasets", s.handleDatasets)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/allocate", s.handleAllocate)
	mux.HandleFunc("/allocate/batch", s.handleAllocateBatch)
	mux.HandleFunc("/evaluate", s.handleEvaluate)
	mux.HandleFunc("/ads", s.handleAddAd)
	mux.HandleFunc("/ads/", s.handleRemoveAd)
	mux.HandleFunc("/spend", s.handleSpend)
	mux.HandleFunc("/feedback", s.handleFeedback)
	mux.Handle("/metrics", s.metrics.reg.Handler())
	mux.Handle("/debug/traces", s.tracer.Handler())
	mux.Handle("/debug/traces/", s.tracer.Handler())
	return obs.Instrument(mux, s.metrics.http, obs.InstrumentOptions{
		Component: "adserver",
		Logf:      s.opts.Logf,
		Tracer:    s.tracer,
	})
}

// Warm builds (or loads) the instance and index for the given parameters
// ahead of traffic — cmd/adserver's -preload flag.
func (s *Server) Warm(p InstanceParams) error {
	e, _, _, err := s.entryFor(p)
	if err != nil {
		return err
	}
	_, _, _, err = s.indexFor(e)
	return err
}

// WarmSpec parses "dataset:seed:scale[:ads]" into instance parameters.
func WarmSpec(spec string) (InstanceParams, error) {
	var p InstanceParams
	parts := strings.Split(spec, ":")
	if len(parts) < 3 || len(parts) > 4 {
		return p, fmt.Errorf("serve: preload spec %q is not dataset:seed:scale[:ads]", spec)
	}
	p.Dataset = parts[0]
	if _, err := fmt.Sscanf(parts[1], "%d", &p.Seed); err != nil {
		return p, fmt.Errorf("serve: preload seed %q: %w", parts[1], err)
	}
	if _, err := fmt.Sscanf(parts[2], "%g", &p.Scale); err != nil {
		return p, fmt.Errorf("serve: preload scale %q: %w", parts[2], err)
	}
	if len(parts) == 4 {
		if _, err := fmt.Sscanf(parts[3], "%d", &p.NumAds); err != nil {
			return p, fmt.Errorf("serve: preload ads %q: %w", parts[3], err)
		}
	}
	return p, nil
}

// entryFor returns the cached entry for p, generating the instance if
// needed (the index is built separately by indexFor, so instance-only
// consumers like /evaluate never trigger sampling). created reports
// whether this call made the entry; waited reports whether it blocked on
// another caller's in-flight instance generation.
func (s *Server) entryFor(p InstanceParams) (_ *entry, created, waited bool, _ error) {
	if _, ok := findDataset(p.Dataset); !ok {
		return nil, false, false, fmt.Errorf("unknown dataset %q", p.Dataset)
	}
	if p.Scale <= 0 {
		return nil, false, false, fmt.Errorf("scale must be > 0")
	}
	if p.Scale > s.opts.MaxScale {
		return nil, false, false, fmt.Errorf("scale %g exceeds server limit %g", p.Scale, s.opts.MaxScale)
	}
	if p.NumAds < 0 {
		return nil, false, false, fmt.Errorf("numAds must be ≥ 0")
	}
	if p.NumAds > s.opts.MaxAds {
		return nil, false, false, fmt.Errorf("numAds %d exceeds server limit %d", p.NumAds, s.opts.MaxAds)
	}
	key := p.Key()
	now := time.Now().UnixNano()

	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.mu.Unlock()
		e.lastUsed.Store(now)
		select {
		case <-e.instReady:
		default:
			waited = true
			<-e.instReady
		}
		return e, false, waited, nil
	}
	e := &entry{key: key, params: p, instReady: make(chan struct{})}
	e.lastUsed.Store(now)
	s.entries[key] = e
	s.evictLocked(e)
	s.mu.Unlock()

	spec, _ := findDataset(p.Dataset)
	e.inst = spec.build(gen.Options{
		Seed:   p.Seed,
		Scale:  p.Scale,
		NumAds: p.NumAds,
	})
	close(e.instReady)
	return e, true, false, nil
}

// evictLocked drops least-recently-used entries (never keep, the one just
// inserted; never an entry whose build is still in flight — evicting those
// would let a re-request start a duplicate multi-hundred-MB build; and
// never an entry holding live campaign state — mutations and the spend
// ledger exist only in that entry, so evicting it would silently serve the
// pre-mutation campaign on the next request) until the cache fits
// MaxEntries; if every candidate is exempt, the cache temporarily exceeds
// the cap. Callers holding a reference to an evicted entry keep using it
// safely — eviction only removes it from the map — and its disk snapshot,
// if any, survives for a cheap reload.
func (s *Server) evictLocked(keep *entry) {
	for len(s.entries) > s.opts.MaxEntries {
		var oldest *entry
		for _, e := range s.entries {
			if e == keep || e.buildInFlight() || e.mutating.Load() != 0 || e.hasLifecycleState() {
				continue
			}
			if oldest == nil || e.lastUsed.Load() < oldest.lastUsed.Load() {
				oldest = e
			}
		}
		if oldest == nil {
			return
		}
		delete(s.entries, oldest.key)
		if oldest.inst != nil {
			for _, ad := range oldest.inst.Ads {
				s.metrics.dropBanditEstimate(ad.Name)
			}
		}
		s.opts.Logf("serve: evicted %s (LRU, cache cap %d)", oldest.key, s.opts.MaxEntries)
	}
}

// indexFor returns the entry's index, building (or loading from snapshot)
// it on first use. Concurrent callers for one entry share a single build.
// cold reports whether this call did the build; waited whether it blocked
// on another caller's build. Build errors are cached: instances are valid
// by construction here, so an index failure is a bug, not a transient.
func (s *Server) indexFor(e *entry) (_ *core.Index, cold, waited bool, _ error) {
	e.idxMu.Lock()
	if ch := e.idxReady; ch != nil {
		e.idxMu.Unlock()
		select {
		case <-ch:
		default:
			waited = true
			<-ch
		}
		return e.idx, false, waited, e.idxErr
	}
	ch := make(chan struct{})
	e.idxReady = ch
	e.idxMu.Unlock()

	s.buildIndex(e)
	close(ch)
	return e.idx, true, false, e.idxErr
}

// buildIndex samples (or snapshot-loads) the entry's index.
func (s *Server) buildIndex(e *entry) {
	started := time.Now()
	if path := s.snapshotPath(e.key); path != "" {
		if f, err := os.Open(path); err == nil {
			idx, err := core.LoadIndexSnapshot(e.inst, f)
			f.Close()
			if err == nil {
				e.idx = idx
				e.fromDisk = true
				s.snapshotLoads.Add(1)
				e.buildSec = time.Since(started).Seconds()
				s.opts.Logf("serve: loaded index %s from snapshot (%d ads, %.1f MB) in %.2fs",
					e.key, idx.NumAds(), float64(idx.MemBytes())/1e6, e.buildSec)
				return
			}
			s.opts.Logf("serve: snapshot %s unusable (%v); rebuilding", path, err)
		}
	}

	idx, err := core.BuildIndex(e.inst, e.params.Seed, core.TIRMOptions{MaxTheta: s.opts.MaxTheta})
	if err != nil {
		e.idxErr = err
		return
	}
	e.idx = idx
	e.buildSec = time.Since(started).Seconds()
	s.opts.Logf("serve: built index %s (%d ads, %d sets, %.1f MB) in %.2fs",
		e.key, idx.NumAds(), idx.SetsSampled(), float64(idx.MemBytes())/1e6, e.buildSec)
	s.saveSnapshot(e)
}

func (s *Server) snapshotPath(key string) string {
	if s.opts.SnapshotDir == "" {
		return ""
	}
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_', r == '=':
			return r
		default:
			return '_'
		}
	}, key)
	return filepath.Join(s.opts.SnapshotDir, safe+".adix")
}

// saveSnapshot persists a freshly built index (write temp + rename, so a
// crash never leaves a torn file). Failures are logged, never fatal.
func (s *Server) saveSnapshot(e *entry) {
	path := s.snapshotPath(e.key)
	if path == "" {
		return
	}
	if err := os.MkdirAll(s.opts.SnapshotDir, 0o755); err != nil {
		s.opts.Logf("serve: snapshot dir: %v", err)
		return
	}
	tmp, err := os.CreateTemp(s.opts.SnapshotDir, ".adix-*")
	if err != nil {
		s.opts.Logf("serve: snapshot temp: %v", err)
		return
	}
	err = e.idx.WriteSnapshot(tmp)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		s.opts.Logf("serve: snapshot %s: %v", path, err)
		return
	}
	s.opts.Logf("serve: wrote snapshot %s", path)
}

// heapAllocSample reads the runtime's cumulative heap-allocation counters
// (objects, bytes). Deltas around a selection run approximate its
// allocation cost; with overlapping requests the counters attribute
// concurrent activity too, so the figures are a fleet-level signal, not an
// exact per-request measurement.
func heapAllocSample() (objects, bytes int64) {
	samples := []metrics.Sample{
		{Name: "/gc/heap/allocs:objects"},
		{Name: "/gc/heap/allocs:bytes"},
	}
	metrics.Read(samples)
	return int64(samples[0].Value.Uint64()), int64(samples[1].Value.Uint64())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// HealthResponse is GET /healthz. Shards is present only in coordinator
// mode, one row per shard replica; status "degraded" (with HTTP 503)
// means some partition range has no reachable replica at all, so
// distributed allocations will fail. Individual dead replicas of a
// replicated range leave status "ok" — their rows show reachable:false
// and the range keeps serving via failover.
type HealthResponse struct {
	// Status is "ok" or "degraded".
	Status string `json:"status"`
	// Shards carries per-replica health in coordinator mode.
	Shards []ShardHealth `json:"shards,omitempty"`
	// DegradedRanges lists partition slots with no reachable replica
	// (present only when Status is "degraded").
	DegradedRanges []int `json:"degradedRanges,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.sharded == nil {
		writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
		return
	}
	health, degraded := s.sharded.shardHealth(r.Context())
	resp := HealthResponse{Status: "ok", Shards: health, DegradedRanges: degraded}
	code := http.StatusOK
	if len(degraded) > 0 {
		resp.Status = "degraded"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// DatasetInfo describes one registered generator.
type DatasetInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	out := make([]DatasetInfo, len(datasetRegistry))
	for i, d := range datasetRegistry {
		out[i] = DatasetInfo{Name: d.name, Description: d.desc}
	}
	writeJSON(w, http.StatusOK, out)
}

// EntryStats reports one cached entry. Index fields are zero until the
// first /allocate (or Warm) builds the index; Epoch counts campaign
// mutations from 1, and SpentTotal sums the engagement ledger over the
// current ads.
type EntryStats struct {
	Key          string  `json:"key"`
	NumAds       int     `json:"numAds"`
	Epoch        uint64  `json:"epoch,omitempty"`
	IndexBuilt   bool    `json:"indexBuilt"`
	SetsSampled  int64   `json:"setsSampled"`
	MemBytes     int64   `json:"memBytes"`
	BuildSeconds float64 `json:"buildSeconds"`
	FromSnapshot bool    `json:"fromSnapshot"`
	Hits         int64   `json:"hits"`
	Allocations  int64   `json:"allocations"`
	SpentTotal   float64 `json:"spentTotal,omitempty"`
	// WorkspaceHits/WorkspaceMisses count workspace-pool recycles vs fresh
	// constructions for this entry's allocations; a healthy steady state is
	// all hits after the first request per concurrency level.
	WorkspaceHits   int64 `json:"workspaceHits"`
	WorkspaceMisses int64 `json:"workspaceMisses"`
	// AllocObjectsPerRequest/AllocBytesPerRequest average the heap
	// allocation deltas sampled around this entry's selection runs.
	AllocObjectsPerRequest float64 `json:"allocObjectsPerRequest,omitempty"`
	AllocBytesPerRequest   float64 `json:"allocBytesPerRequest,omitempty"`
}

// StatsResponse is GET /stats. IndexMemBytes figures are exact — the flat
// CSR arenas of core.Index know their byte sizes precisely — and
// IndexMemByDataset aggregates them per dataset name, so an operator can
// see at a glance which dataset's samples own the process's memory across
// seeds and scales.
type StatsResponse struct {
	UptimeSeconds     float64          `json:"uptimeSeconds"`
	CacheHits         int64            `json:"cacheHits"`
	CacheMisses       int64            `json:"cacheMisses"`
	Coalesced         int64            `json:"coalesced"`
	SnapshotLoads     int64            `json:"snapshotLoads"`
	AdsAdded          int64            `json:"adsAdded"`
	AdsRemoved        int64            `json:"adsRemoved"`
	SpendUpdates      int64            `json:"spendUpdates"`
	FeedbackUpdates   int64            `json:"feedbackUpdates"`
	IndexMemBytes     int64            `json:"indexMemBytes"`
	IndexMemByDataset map[string]int64 `json:"indexMemByDataset"`
	// WorkspaceHits/WorkspaceMisses aggregate the per-entry workspace-pool
	// counters over the live cache (evicted entries drop out).
	WorkspaceHits   int64 `json:"workspaceHits"`
	WorkspaceMisses int64 `json:"workspaceMisses"`
	// AllocFailures counts refused or errored allocation requests by
	// reason (stale_epoch, cap, bad_request, internal, upstream); absent
	// until the first failure.
	AllocFailures map[string]uint64 `json:"allocFailures,omitempty"`
	// Kernels counts per-ad coverage collections by the cover kernel they
	// ran on ("sparse" vs "bitset"), summed over successful allocations —
	// the /stats view of adserver_kernel_selected_total. Absent until the
	// first successful allocation.
	Kernels map[string]uint64 `json:"kernels,omitempty"`
	Entries []EntryStats      `json:"entries"`
	// Sharded is present only in coordinator mode: the cluster's identity,
	// per-shard health, and distributed-allocation counters.
	Sharded *ShardedStatsSection `json:"sharded,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if s.sharded != nil {
		resp := StatsResponse{
			UptimeSeconds:     time.Since(s.start).Seconds(),
			AdsAdded:          s.adsAdded.Load(),
			AdsRemoved:        s.adsRemoved.Load(),
			SpendUpdates:      s.spendUpdates.Load(),
			FeedbackUpdates:   s.feedbackUpdates.Load(),
			IndexMemByDataset: map[string]int64{},
			AllocFailures:     s.allocFailureCounts(),
			Kernels:           s.kernelCounts(),
			Entries:           []EntryStats{},
			Sharded:           s.shardedStats(r.Context()),
		}
		for _, h := range resp.Sharded.Shards {
			resp.IndexMemBytes += h.MemBytes
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.mu.Lock()
	entries := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })

	resp := StatsResponse{
		UptimeSeconds:     time.Since(s.start).Seconds(),
		CacheHits:         s.cacheHits.Load(),
		CacheMisses:       s.cacheMisses.Load(),
		Coalesced:         s.coalesced.Load(),
		SnapshotLoads:     s.snapshotLoads.Load(),
		AdsAdded:          s.adsAdded.Load(),
		AdsRemoved:        s.adsRemoved.Load(),
		SpendUpdates:      s.spendUpdates.Load(),
		FeedbackUpdates:   s.feedbackUpdates.Load(),
		IndexMemByDataset: map[string]int64{},
		AllocFailures:     s.allocFailureCounts(),
		Kernels:           s.kernelCounts(),
		Entries:           make([]EntryStats, 0, len(entries)),
	}
	for _, e := range entries {
		select {
		case <-e.instReady:
		default:
			continue // instance still generating; skip rather than block
		}
		inst := e.currentInst()
		wsHits, wsMisses := e.pool.Stats()
		es := EntryStats{
			Key:             e.key,
			NumAds:          len(inst.Ads),
			Hits:            e.hits.Load(),
			Allocations:     e.allocs.Load(),
			WorkspaceHits:   wsHits,
			WorkspaceMisses: wsMisses,
		}
		if runs := e.allocs.Load(); runs > 0 {
			es.AllocObjectsPerRequest = float64(e.allocObjects.Load()) / float64(runs)
			es.AllocBytesPerRequest = float64(e.allocBytes.Load()) / float64(runs)
		}
		resp.WorkspaceHits += wsHits
		resp.WorkspaceMisses += wsMisses
		e.spendMu.Lock()
		for _, ad := range inst.Ads {
			es.SpentTotal += e.spent[ad.Name]
		}
		e.spendMu.Unlock()
		if e.indexBuilt() {
			es.Epoch = e.idx.Epoch()
			mem := e.idx.MemBytes()
			resp.IndexMemBytes += mem
			resp.IndexMemByDataset[e.params.Dataset] += mem
			es.IndexBuilt = true
			es.SetsSampled = e.idx.SetsSampled()
			es.MemBytes = mem
			es.BuildSeconds = e.buildSec
			es.FromSnapshot = e.fromDisk
		}
		resp.Entries = append(resp.Entries, es)
	}
	writeJSON(w, http.StatusOK, resp)
}

// AllocateRequest is POST /allocate. Instance parameters pick the cached
// index; everything else tunes the selection run only. With Residual set,
// the run subtracts the spend recorded via POST /spend from every ad's
// budget and targets the remainder (fully spent ads get no seeds).
type AllocateRequest struct {
	InstanceParams
	Kappa    int       `json:"kappa,omitempty"`
	Lambda   *float64  `json:"lambda,omitempty"`
	Ads      []int     `json:"ads,omitempty"`
	Budgets  []float64 `json:"budgets,omitempty"`
	CPEs     []float64 `json:"cpes,omitempty"`
	Residual bool      `json:"residual,omitempty"`
	// Bandit applies the campaign's learned engagement estimates (built
	// from POST /feedback events) as effective-CPE overrides for this run.
	// Mutually exclusive with explicit CPEs; 400 when no feedback has been
	// recorded yet.
	Bandit bool `json:"bandit,omitempty"`
	// Kernel selects the coverage kernel ("auto"/"sparse"/"bitset", see
	// core.Request.Kernel); it changes sweep cost, never the allocation.
	Kernel string `json:"kernel,omitempty"`
	// Explain records the run's per-round decisions (chosen ad, seed
	// node, marginal gain, residual budget) as events on the request's
	// trace — retrieve them via GET /debug/traces/{id} with the request's
	// X-Trace-Id. Off by default; never changes the allocation.
	Explain bool       `json:"explain,omitempty"`
	Opts    TIRMParams `json:"opts,omitempty"`
}

// TIRMParams is the JSON form of core.TIRMOptions (zero = default).
type TIRMParams struct {
	Eps            float64 `json:"eps,omitempty"`
	Ell            float64 `json:"ell,omitempty"`
	MinTheta       int     `json:"minTheta,omitempty"`
	MaxTheta       int     `json:"maxTheta,omitempty"`
	MaxSeedsPerAd  int     `json:"maxSeedsPerAd,omitempty"`
	CandidateDepth int     `json:"candidateDepth,omitempty"`
	SoftCoverage   bool    `json:"softCoverage,omitempty"`
}

// toOptions clamps the request against the server's sampling cap.
func (p TIRMParams) toOptions(maxTheta int) core.TIRMOptions {
	o := core.TIRMOptions{
		Eps:            p.Eps,
		Ell:            p.Ell,
		MinTheta:       p.MinTheta,
		MaxTheta:       p.MaxTheta,
		MaxSeedsPerAd:  p.MaxSeedsPerAd,
		CandidateDepth: p.CandidateDepth,
		SoftCoverage:   p.SoftCoverage,
	}
	if o.MaxTheta <= 0 || o.MaxTheta > maxTheta {
		o.MaxTheta = maxTheta
	}
	if o.MinTheta > o.MaxTheta {
		o.MinTheta = o.MaxTheta
	}
	return o
}

// AllocateResponse is POST /allocate's result. Epoch identifies the
// campaign-set version the run was served on; SpentBudgets echoes the
// engagement spend a residual run subtracted (absent otherwise).
type AllocateResponse struct {
	Key           string    `json:"key"`
	Epoch         uint64    `json:"epoch"`
	ColdBuild     bool      `json:"coldBuild"`
	FromSnapshot  bool      `json:"fromSnapshot"`
	BuildSeconds  float64   `json:"buildSeconds,omitempty"`
	AllocSeconds  float64   `json:"allocSeconds"`
	Seeds         [][]int32 `json:"seeds"`
	EstRevenue    []float64 `json:"estRevenue"`
	EstRegret     float64   `json:"estRegret"`
	FinalTheta    []int     `json:"finalTheta"`
	Iterations    int       `json:"iterations"`
	SetsSampled   int64     `json:"setsSampled"`
	SetsReused    int64     `json:"setsReused"`
	IndexMemBytes int64     `json:"indexMemBytes"`
	AdNames       []string  `json:"adNames"`
	SpentBudgets  []float64 `json:"spentBudgets,omitempty"`
	// AllocObjects/AllocBytes are the process heap-allocation deltas
	// measured around this selection run — approximate when requests
	// overlap (see GET /stats for the per-entry aggregates).
	AllocObjects int64 `json:"allocObjects"`
	AllocBytes   int64 `json:"allocBytes"`
}

func (s *Server) handleAllocate(w http.ResponseWriter, r *http.Request) {
	var req AllocateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if s.sharded != nil {
		s.handleAllocateSharded(w, r, req)
		return
	}
	e, created, waitedInst, err := s.entryFor(req.InstanceParams)
	if err != nil {
		s.metrics.failAlloc(failBadRequest)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	idx, cold, waitedIdx, err := s.indexFor(e)
	if err != nil {
		s.metrics.failAlloc(failInternal)
		httpError(w, http.StatusInternalServerError, "index build: %v", err)
		return
	}
	switch {
	case created || cold:
		s.cacheMisses.Add(1)
	case waitedInst || waitedIdx:
		s.coalesced.Add(1)
	default:
		s.cacheHits.Add(1)
		e.hits.Add(1)
	}
	// Pin the run to the epoch we shape the request (and its report)
	// against: a campaign mutation racing in turns into a clean 409, never
	// a positionally misaligned allocation.
	epoch, curInst := idx.EpochInst()
	reqCPEs := req.CPEs
	if req.Bandit {
		if req.CPEs != nil {
			s.metrics.failAlloc(failBadRequest)
			httpError(w, http.StatusBadRequest, "bandit and cpes are mutually exclusive")
			return
		}
		cpes, err := e.banditCPEs(curInst)
		if err != nil {
			s.metrics.failAlloc(failBadRequest)
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		reqCPEs = cpes
	}
	_, observer, explain, allocSpan := s.allocObserverFor(r.Context(), req.Explain)
	coreReq := core.Request{
		Opts:     req.Opts.toOptions(s.opts.MaxTheta),
		Ads:      req.Ads,
		Budgets:  req.Budgets,
		CPEs:     reqCPEs,
		Lambda:   req.Lambda,
		Epoch:    epoch,
		Pool:     &e.pool,
		Observer: observer,
		Explain:  explain,
		Kernel:   s.kernelFor(req.Kernel),
	}
	if req.Kappa > 0 {
		coreReq.Kappa = core.ConstKappa(req.Kappa)
	}
	if req.Residual {
		coreReq.SpentBudget = e.spendVector(curInst)
	}
	started := time.Now()
	objBefore, bytesBefore := heapAllocSample()
	res, err := core.AllocateFromIndex(idx, coreReq)
	allocSpan.EndErr(err)
	objAfter, bytesAfter := heapAllocSample()
	allocObjects, allocBytes := objAfter-objBefore, bytesAfter-bytesBefore
	if err != nil {
		if errors.Is(err, core.ErrStaleEpoch) {
			s.metrics.failAlloc(failStaleEpoch)
			httpError(w, http.StatusConflict, "campaign set changed mid-request, retry: %v", err)
			return
		}
		s.metrics.failAlloc(failBadRequest)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.metrics.allocations.Inc()
	s.metrics.allocSeconds.Observe(time.Since(started).Seconds())
	s.metrics.recordKernels(res.KernelCounts)
	e.allocs.Add(1)
	// Accumulated only for successful runs: e.allocs is the divisor of the
	// /stats per-request averages, so failed runs must not contribute.
	e.allocObjects.Add(allocObjects)
	e.allocBytes.Add(allocBytes)
	for i, s := range res.Alloc.Seeds {
		if s == nil {
			res.Alloc.Seeds[i] = []int32{} // JSON: [] for empty, never null
		}
	}

	inst := instWith(curInst, req.Lambda, req.Kappa)
	// Regret is reported over the requested ad subset only: an excluded
	// ad's untouched budget is not this allocation's failure. Residual
	// runs score against the remaining budgets they targeted.
	adIDs := req.Ads
	if len(adIDs) == 0 {
		adIDs = make([]int, len(inst.Ads))
		for i := range adIDs {
			adIDs[i] = i
		}
	}
	var estRegret float64
	for _, i := range adIDs {
		budget := inst.Ads[i].Budget
		if req.Budgets != nil {
			budget = req.Budgets[i]
		}
		if coreReq.SpentBudget != nil {
			if budget -= coreReq.SpentBudget[i]; budget < 0 {
				budget = 0
			}
		}
		estRegret += core.RegretTerm(budget, res.EstRevenue[i], inst.Lambda, len(res.Alloc.Seeds[i]))
	}
	names := make([]string, len(inst.Ads))
	for i, ad := range inst.Ads {
		names[i] = ad.Name
	}
	resp := AllocateResponse{
		Key:           e.key,
		Epoch:         epoch,
		ColdBuild:     cold,
		FromSnapshot:  e.fromDisk,
		AllocSeconds:  time.Since(started).Seconds(),
		Seeds:         res.Alloc.Seeds,
		EstRevenue:    res.EstRevenue,
		EstRegret:     estRegret,
		FinalTheta:    res.FinalTheta,
		Iterations:    res.Iterations,
		SetsSampled:   res.TotalSetsSampled,
		SetsReused:    res.SetsReused,
		IndexMemBytes: idx.MemBytes(),
		AdNames:       names,
		SpentBudgets:  coreReq.SpentBudget,
		AllocObjects:  allocObjects,
		AllocBytes:    allocBytes,
	}
	if cold {
		resp.BuildSeconds = e.buildSec
	}
	writeJSON(w, http.StatusOK, resp)
}

// EvaluateRequest is POST /evaluate: score a seed assignment with neutral
// Monte Carlo cascades against the named instance. Seeds rows are
// positional, so when scoring an allocation taken from a mutable campaign
// pass the /allocate response's epoch in Epoch: if the campaign has
// changed since (which can reshuffle positions even at equal ad counts),
// the request fails with 409 instead of scoring seeds against the wrong
// ads. Zero accepts the current campaign.
type EvaluateRequest struct {
	InstanceParams
	Kappa    int       `json:"kappa,omitempty"`
	Lambda   *float64  `json:"lambda,omitempty"`
	Seeds    [][]int32 `json:"seeds"`
	Runs     int       `json:"runs,omitempty"`
	EvalSeed uint64    `json:"evalSeed,omitempty"`
	Epoch    uint64    `json:"epoch,omitempty"`
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req EvaluateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	var epoch uint64
	var curInst *core.Instance
	if s.sharded != nil {
		// Coordinator mode: score against the cluster's campaign mirror —
		// evaluation needs only the instance, never a shard RPC.
		if !s.checkShardedParams(w, req.InstanceParams) {
			return
		}
		epoch, curInst = s.sharded.coord.EpochInst()
	} else {
		e, created, waited, err := s.entryFor(req.InstanceParams)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		switch {
		case created:
			s.cacheMisses.Add(1)
		case waited:
			s.coalesced.Add(1)
		default:
			s.cacheHits.Add(1)
			e.hits.Add(1)
		}
		// Capture (epoch, instance) as one consistent pair; mutations only
		// exist once an index does, so an index-less entry is at epoch 1.
		epoch, curInst = uint64(1), e.inst
		if e.indexBuilt() {
			epoch, curInst = e.idx.EpochInst()
		}
	}
	if req.Epoch != 0 && req.Epoch != epoch {
		httpError(w, http.StatusConflict,
			"seeds were taken at campaign epoch %d, entry is at %d — re-allocate and retry", req.Epoch, epoch)
		return
	}
	inst := instWith(curInst, req.Lambda, req.Kappa)
	alloc := &core.Allocation{Seeds: req.Seeds}
	if err := alloc.Validate(inst); err != nil {
		httpError(w, http.StatusBadRequest, "invalid allocation: %v", err)
		return
	}
	runs := req.Runs
	if runs <= 0 {
		runs = 2000
	}
	if runs > eval.DefaultRuns {
		runs = eval.DefaultRuns
	}
	out := eval.Evaluate(inst, alloc, runs, xrand.New(req.EvalSeed))
	writeJSON(w, http.StatusOK, out)
}

// instWith returns a shallow copy of inst with optional λ/κ overrides, so
// evaluation and regret reporting reflect the request's setting without
// mutating the shared cached instance.
func instWith(inst *core.Instance, lambda *float64, kappa int) *core.Instance {
	cp := *inst
	if lambda != nil {
		cp.Lambda = *lambda
	}
	if kappa > 0 {
		cp.Kappa = core.ConstKappa(kappa)
	}
	return &cp
}

// kernelFor resolves one request's coverage-kernel choice against the
// server-wide default (Options.DefaultKernel): explicit request values win.
func (s *Server) kernelFor(kernel string) string {
	if kernel != "" {
		return kernel
	}
	return s.opts.DefaultKernel
}

// --- Campaign lifecycle ---------------------------------------------------

// NewAdSpec describes the advertiser POST /ads creates. The new ad shares
// the Template ad's mixed edge probabilities (its topical propagation
// profile — datasets are generated, so arbitrary per-edge vectors have no
// JSON-sized representation) with its own budget, CPE, and optionally a
// uniform click-through probability; CTP 0 keeps the template's CTP vector.
type NewAdSpec struct {
	Name     string  `json:"name"`
	Budget   float64 `json:"budget"`
	CPE      float64 `json:"cpe"`
	CTP      float64 `json:"ctp,omitempty"`
	Template int     `json:"template,omitempty"`
}

// AddAdRequest is POST /ads: add an advertiser to the cached campaign set.
type AddAdRequest struct {
	InstanceParams
	Ad NewAdSpec `json:"ad"`
}

// LifecycleResponse reports the campaign set after a POST /ads or
// DELETE /ads/{name} mutation. Position is the added ad's index (POST
// only); Epoch is the index version requests are now served on.
type LifecycleResponse struct {
	Key      string   `json:"key"`
	Epoch    uint64   `json:"epoch"`
	NumAds   int      `json:"numAds"`
	Position int      `json:"position,omitempty"`
	AdNames  []string `json:"adNames"`
}

func lifecycleResponse(e *entry, idx *core.Index, pos int) LifecycleResponse {
	epoch, inst := idx.EpochInst()
	names := make([]string, len(inst.Ads))
	for i, ad := range inst.Ads {
		names[i] = ad.Name
	}
	return LifecycleResponse{Key: e.key, Epoch: epoch, NumAds: len(names), Position: pos, AdNames: names}
}

// errTooManyLiveCampaigns rejects a mutation that would pin yet another
// entry against eviction once every cache slot already holds live campaign
// state — the bound that keeps MaxEntries a real memory cap even though
// lifecycle state exempts entries from LRU.
var errTooManyLiveCampaigns = errors.New(
	"every cache slot holds live campaign state; retire a campaign (DELETE /ads) or reset its spend before mutating a new one")

// mutationEntry resolves the entry a campaign mutation targets and marks
// it mutating *atomically with cache membership* (under s.mu): eviction
// also runs under s.mu and skips mutating entries, so an entry can never
// be recycled between resolution and the mutation landing — the race that
// would otherwise let the server acknowledge a mutation (200) and then
// serve the pre-mutation campaign from a replacement entry. Entries about
// to acquire their first lifecycle state are admitted only while fewer
// than MaxEntries entries are pinned. Callers must arrange
// `defer e.mutating.Add(-1)`.
func (s *Server) mutationEntry(p InstanceParams) (*entry, error) {
	for {
		e, _, _, err := s.entryFor(p)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		cur, ok := s.entries[e.key]
		if !ok {
			s.entries[e.key] = e // evicted in the resolution window; restore
			cur = e
		}
		if cur != e {
			// The key was recycled to a different entry mid-resolution;
			// retry — entryFor now resolves to the current one.
			s.mu.Unlock()
			continue
		}
		if !e.hasLifecycleState() {
			pinned := 0
			for _, o := range s.entries {
				// An in-flight first mutation (mutating set, state not yet
				// landed) must count too, or concurrent first mutations on
				// distinct entries would all pass the gate and pin more
				// than MaxEntries campaigns.
				if o != e && (o.mutating.Load() != 0 || o.hasLifecycleState()) {
					pinned++
				}
			}
			if pinned >= s.opts.MaxEntries {
				s.mu.Unlock()
				return nil, errTooManyLiveCampaigns
			}
		}
		e.mutating.Add(1)
		s.mu.Unlock()
		return e, nil
	}
}

// lifecycleEntry is mutationEntry plus the index build the /ads mutations
// need — the same build coalescing every read path uses. On success the
// entry is marked mutating (callers must arrange `defer e.mutating.Add(-1)`).
func (s *Server) lifecycleEntry(w http.ResponseWriter, p InstanceParams) (*entry, *core.Index, bool) {
	e, err := s.mutationEntry(p)
	if err != nil {
		if errors.Is(err, errTooManyLiveCampaigns) {
			s.metrics.failAlloc(failCap)
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		} else {
			httpError(w, http.StatusBadRequest, "%v", err)
		}
		return nil, nil, false
	}
	idx, _, _, err := s.indexFor(e)
	if err != nil {
		e.mutating.Add(-1)
		httpError(w, http.StatusInternalServerError, "index build: %v", err)
		return nil, nil, false
	}
	return e, idx, true
}

func (s *Server) handleAddAd(w http.ResponseWriter, r *http.Request) {
	var req AddAdRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if s.sharded != nil {
		s.handleAddAdSharded(w, r, req)
		return
	}
	e, idx, ok := s.lifecycleEntry(w, req.InstanceParams)
	if !ok {
		return
	}
	defer e.mutating.Add(-1)
	e.lifeMu.Lock()
	defer e.lifeMu.Unlock()
	inst := idx.Inst()
	spec := req.Ad
	if spec.Name == "" {
		httpError(w, http.StatusBadRequest, "ad name required")
		return
	}
	for _, ad := range inst.Ads {
		if ad.Name == spec.Name {
			httpError(w, http.StatusConflict, "ad %q already exists", spec.Name)
			return
		}
	}
	if len(inst.Ads) >= s.opts.MaxAds {
		httpError(w, http.StatusBadRequest, "campaign set already at server limit of %d ads", s.opts.MaxAds)
		return
	}
	if spec.Template < 0 || spec.Template >= len(inst.Ads) {
		httpError(w, http.StatusBadRequest, "template %d out of range (campaign has %d ads)", spec.Template, len(inst.Ads))
		return
	}
	if spec.CTP < 0 || spec.CTP > 1 {
		httpError(w, http.StatusBadRequest, "ctp %g must be in [0, 1]", spec.CTP)
		return
	}
	tmpl := inst.Ads[spec.Template]
	ctps := tmpl.Params.CTPs
	if spec.CTP > 0 {
		ctps = topic.ConstCTP{Nodes: inst.G.N(), P: spec.CTP}
	}
	ad := core.Ad{
		Name:   spec.Name,
		Budget: spec.Budget,
		CPE:    spec.CPE,
		Params: topic.ItemParams{Probs: tmpl.Params.Probs, CTPs: ctps},
	}
	pos, err := idx.AddAd(ad, core.TIRMOptions{MaxTheta: s.opts.MaxTheta})
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.adsAdded.Add(1)
	s.opts.Logf("serve: %s added ad %q (template %d) at position %d, epoch %d",
		e.key, spec.Name, spec.Template, pos, idx.Epoch())
	writeJSON(w, http.StatusOK, lifecycleResponse(e, idx, pos))
}

// adParamsFromQuery parses the instance parameters a DELETE carries as
// query string (dataset, seed, scale, ads) — DELETEs have no body.
func adParamsFromQuery(r *http.Request) (InstanceParams, error) {
	var p InstanceParams
	q := r.URL.Query()
	p.Dataset = q.Get("dataset")
	if p.Dataset == "" {
		return p, fmt.Errorf("query parameter dataset required")
	}
	var err error
	if v := q.Get("seed"); v != "" {
		if p.Seed, err = strconv.ParseUint(v, 10, 64); err != nil {
			return p, fmt.Errorf("bad seed %q", v)
		}
	}
	if v := q.Get("scale"); v != "" {
		if p.Scale, err = strconv.ParseFloat(v, 64); err != nil {
			return p, fmt.Errorf("bad scale %q", v)
		}
	}
	if v := q.Get("ads"); v != "" {
		if p.NumAds, err = strconv.Atoi(v); err != nil {
			return p, fmt.Errorf("bad ads %q", v)
		}
	}
	return p, nil
}

func (s *Server) handleRemoveAd(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		httpError(w, http.StatusMethodNotAllowed, "use DELETE")
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/ads/")
	if name == "" || strings.Contains(name, "/") {
		httpError(w, http.StatusBadRequest, "path must be /ads/{name}")
		return
	}
	p, err := adParamsFromQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.sharded != nil {
		s.handleRemoveAdSharded(w, r, p, name)
		return
	}
	e, idx, ok := s.lifecycleEntry(w, p)
	if !ok {
		return
	}
	defer e.mutating.Add(-1)
	e.lifeMu.Lock()
	defer e.lifeMu.Unlock()
	inst := idx.Inst()
	pos := -1
	for j, ad := range inst.Ads {
		if ad.Name == name {
			pos = j
			break
		}
	}
	if pos < 0 {
		httpError(w, http.StatusNotFound, "no ad %q in campaign %s", name, e.key)
		return
	}
	if err := idx.RemoveAd(pos); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e.spendMu.Lock()
	delete(e.spent, name)
	e.spendMu.Unlock()
	s.adsRemoved.Add(1)
	s.metrics.dropBanditEstimate(name)
	s.opts.Logf("serve: %s removed ad %q (position %d), epoch %d", e.key, name, pos, idx.Epoch())
	writeJSON(w, http.StatusOK, lifecycleResponse(e, idx, 0))
}

// SpendRequest is POST /spend: add engagement spend to named ads (or with
// Reset, clear the ledger first). An empty Spend map just reads back the
// current budget status.
type SpendRequest struct {
	InstanceParams
	Spend map[string]float64 `json:"spend,omitempty"`
	Reset bool               `json:"reset,omitempty"`
}

// AdBudgetStatus is one advertiser's budget ledger line.
type AdBudgetStatus struct {
	Name     string  `json:"name"`
	Budget   float64 `json:"budget"`
	Spent    float64 `json:"spent"`
	Residual float64 `json:"residual"`
	Depleted bool    `json:"depleted"`
}

// SpendResponse is POST /spend's result: the full ledger after the update.
type SpendResponse struct {
	Key   string           `json:"key"`
	Epoch uint64           `json:"epoch,omitempty"`
	Ads   []AdBudgetStatus `json:"ads"`
}

func (s *Server) handleSpend(w http.ResponseWriter, r *http.Request) {
	var req SpendRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if s.sharded != nil {
		s.handleSpendSharded(w, r, req)
		return
	}
	// Spend is a ledger on the instance, not the sample: like /evaluate it
	// must never trigger index presampling.
	e, err := s.mutationEntry(req.InstanceParams)
	if err != nil {
		if errors.Is(err, errTooManyLiveCampaigns) {
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		} else {
			httpError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	defer e.mutating.Add(-1)
	// lifeMu keeps the name check and the ledger write atomic against
	// concurrent /ads mutations: without it, a DELETE racing in between
	// would leave an orphan ledger entry that a future ad reusing the name
	// silently inherits.
	e.lifeMu.Lock()
	defer e.lifeMu.Unlock()
	inst := e.currentInst()
	byName := make(map[string]float64, len(inst.Ads))
	for _, ad := range inst.Ads {
		byName[ad.Name] = ad.Budget
	}
	for name, amount := range req.Spend {
		if _, ok := byName[name]; !ok {
			httpError(w, http.StatusNotFound, "no ad %q in campaign %s", name, e.key)
			return
		}
		if amount < 0 {
			httpError(w, http.StatusBadRequest, "spend %g for ad %q must be ≥ 0", amount, name)
			return
		}
	}
	e.spendMu.Lock()
	if req.Reset || e.spent == nil {
		e.spent = map[string]float64{}
	}
	for name, amount := range req.Spend {
		// Zero amounts are valid no-ops but must not create ledger keys: a
		// non-empty ledger pins the entry against LRU eviction, and an
		// all-zero ledger carries no state worth pinning.
		if amount > 0 {
			e.spent[name] += amount
		}
	}
	resp := SpendResponse{Key: e.key, Ads: make([]AdBudgetStatus, len(inst.Ads))}
	for i, ad := range inst.Ads {
		spent := e.spent[ad.Name]
		resp.Ads[i] = AdBudgetStatus{
			Name:     ad.Name,
			Budget:   ad.Budget,
			Spent:    spent,
			Residual: math.Max(ad.Budget-spent, 0),
			Depleted: spent >= ad.Budget,
		}
	}
	e.spendMu.Unlock()
	if e.indexBuilt() {
		resp.Epoch = e.idx.Epoch()
	}
	s.spendUpdates.Add(1)
	writeJSON(w, http.StatusOK, resp)
}
