package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/shard"
)

// shardedServer spins k adshard-equivalent HTTP shards for params and a
// serve.Server in coordinator mode over them.
func shardedServer(t *testing.T, params InstanceParams, k int) (*httptest.Server, *Server) {
	t.Helper()
	roster, err := BuildDataset(params)
	if err != nil {
		t.Fatal(err)
	}
	p, err := shard.NewPartitioner(k)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		sh, err := shard.NewShard(roster, 0, params.Seed, p.Range(i))
		if err != nil {
			t.Fatal(err)
		}
		sh.Dataset = shard.DatasetParams{Name: params.Dataset, Seed: params.Seed, Scale: params.Scale, NumAds: params.NumAds}
		ts := httptest.NewServer(sh.Handler())
		t.Cleanup(ts.Close)
		addrs[i] = strings.TrimPrefix(ts.URL, "http://")
	}
	srv := New(Options{Shards: addrs, Logf: t.Logf})
	if err := srv.ConnectShards(context.Background()); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(srv.Handler())
	t.Cleanup(front.Close)
	return front, srv
}

// TestShardedServeMatchesSingleNode drives the full HTTP stack in
// coordinator mode — 2 adshard processes' worth of handlers behind an
// adserver — and pins the /allocate response (seeds, revenue, regret)
// against single-node serving of the identical request, plus the
// shard-aware /healthz and /stats surfaces and the spend→residual loop.
func TestShardedServeMatchesSingleNode(t *testing.T) {
	params := InstanceParams{Dataset: "flixster", Seed: 1, Scale: 0.01}
	req := AllocateRequest{
		InstanceParams: params,
		Opts:           TIRMParams{Eps: 0.3, MinTheta: 1024, MaxTheta: 8192},
	}

	single := testServer(t, Options{})
	var want AllocateResponse
	if code := postJSON(t, single.URL+"/allocate", req, &want); code != http.StatusOK {
		t.Fatalf("single-node allocate: %d", code)
	}

	front, _ := shardedServer(t, params, 2)
	var got AllocateResponse
	if code := postJSON(t, front.URL+"/allocate", req, &got); code != http.StatusOK {
		t.Fatalf("sharded allocate: %d", code)
	}
	if !reflect.DeepEqual(want.Seeds, got.Seeds) {
		t.Fatalf("sharded seeds diverged\n want %v\n  got %v", want.Seeds, got.Seeds)
	}
	if !reflect.DeepEqual(want.EstRevenue, got.EstRevenue) {
		t.Fatalf("sharded revenues diverged\n want %v\n  got %v", want.EstRevenue, got.EstRevenue)
	}
	if want.EstRegret != got.EstRegret {
		t.Fatalf("sharded regret %v, single-node %v", got.EstRegret, want.EstRegret)
	}

	// Requests for any other instance are refused — a coordinator serves
	// exactly its cluster.
	other := req
	other.Seed = 99
	if code := postJSON(t, front.URL+"/allocate", other, nil); code != http.StatusBadRequest {
		t.Fatalf("foreign-instance allocate returned %d, want 400", code)
	}

	// Shard-aware health and stats.
	var health HealthResponse
	if code := getJSON(t, front.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if health.Status != "ok" || len(health.Shards) != 2 {
		t.Fatalf("healthz = %+v, want ok with 2 shards", health)
	}
	for i, h := range health.Shards {
		if !h.Reachable || h.Shard != i {
			t.Fatalf("shard %d health = %+v", i, h)
		}
	}
	var stats StatsResponse
	if code := getJSON(t, front.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.Sharded == nil || stats.Sharded.NumShards != 2 || stats.Sharded.Allocations != 1 {
		t.Fatalf("sharded stats = %+v", stats.Sharded)
	}
	if stats.IndexMemBytes <= 0 {
		t.Fatal("coordinator stats report zero index memory")
	}

	// Spend → residual allocation round-trip through the coordinator.
	name := got.AdNames[0]
	var spend SpendResponse
	if code := postJSON(t, front.URL+"/spend", SpendRequest{
		InstanceParams: params,
		Spend:          map[string]float64{name: 1e9},
	}, &spend); code != http.StatusOK {
		t.Fatalf("spend: %d", code)
	}
	if !spend.Ads[0].Depleted {
		t.Fatalf("ad %q not depleted after spend: %+v", name, spend.Ads[0])
	}
	residual := req
	residual.Residual = true
	var res AllocateResponse
	if code := postJSON(t, front.URL+"/allocate", residual, &res); code != http.StatusOK {
		t.Fatalf("residual allocate: %d", code)
	}
	if len(res.Seeds[0]) != 0 {
		t.Fatalf("depleted ad still got %d seeds", len(res.Seeds[0]))
	}
}

// TestShardedServeLifecycle exercises POST /ads and DELETE /ads/{name}
// against the coordinator: mutations broadcast to every shard, advance the
// epoch, and subsequent allocations cover the mutated campaign.
func TestShardedServeLifecycle(t *testing.T) {
	params := InstanceParams{Dataset: "fig1", Seed: 1, Scale: 1}
	front, srv := shardedServer(t, params, 2)

	var added LifecycleResponse
	code := postJSON(t, front.URL+"/ads", AddAdRequest{
		InstanceParams: params,
		Ad:             NewAdSpec{Name: "promo", Budget: 4, CPE: 1, CTP: 0.5},
	}, &added)
	if code != http.StatusOK {
		t.Fatalf("add ad: %d", code)
	}
	if added.Epoch != 2 || added.AdNames[added.Position] != "promo" {
		t.Fatalf("add reply = %+v", added)
	}
	req := AllocateRequest{
		InstanceParams: params,
		Opts:           TIRMParams{MinTheta: 1024, MaxTheta: 4096},
	}
	var alloc AllocateResponse
	if code := postJSON(t, front.URL+"/allocate", req, &alloc); code != http.StatusOK {
		t.Fatalf("allocate after add: %d", code)
	}
	if len(alloc.Seeds) != added.NumAds || alloc.Epoch != 2 {
		t.Fatalf("allocation covers %d ads at epoch %d, want %d at 2", len(alloc.Seeds), alloc.Epoch, added.NumAds)
	}

	delReq, err := http.NewRequest(http.MethodDelete,
		front.URL+"/ads/promo?dataset=fig1&seed=1&scale=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove ad: %d", resp.StatusCode)
	}
	if epoch := srv.sharded.coord.Epoch(); epoch != 3 {
		t.Fatalf("epoch %d after add+remove, want 3", epoch)
	}
}
