package serve

import (
	"net/http"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bandit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/xrand"
)

// feedbackEvents is the deterministic batch the feedback tests feed: ad
// positions are fig1's a0..a3 names, with clearly separated engagement
// rates so the learned indices move the allocation.
func feedbackEvents(names []string) []bandit.Event {
	return []bandit.Event{
		{Ad: names[0], Impressions: 200, Clicks: 150},
		{Ad: names[1], Impressions: 200, Clicks: 10},
		{Ad: names[2], Impressions: 200, Clicks: 80},
		{Ad: names[3], Impressions: 200, Clicks: 40},
	}
}

// TestFeedbackEndToEnd drives the learning loop on a single node: feedback
// creates the estimator, estimates converge to the fed rates, a bandit
// allocation equals a direct core run with the same learned CPE overrides,
// and the counters/metrics surfaces record it all.
func TestFeedbackEndToEnd(t *testing.T) {
	ts := testServer(t, Options{})
	params := fig1Request().InstanceParams

	var warm AllocateResponse
	if code := postJSON(t, ts.URL+"/allocate", fig1Request(), &warm); code != http.StatusOK {
		t.Fatalf("warm allocate: %d", code)
	}
	names := warm.AdNames

	var fb FeedbackResponse
	if code := postJSON(t, ts.URL+"/feedback", FeedbackRequest{
		InstanceParams: params,
		Events:         feedbackEvents(names),
	}, &fb); code != http.StatusOK {
		t.Fatalf("feedback: %d", code)
	}
	if fb.Policy != bandit.PolicyUCB {
		t.Errorf("default policy = %q, want ucb", fb.Policy)
	}
	if fb.Events != 4 || len(fb.Ads) != len(names) {
		t.Fatalf("feedback reply = %+v", fb)
	}
	// 150/200 smoothed = 151/202; the reply must carry the exact counts.
	if fb.Ads[0].Impressions != 200 || fb.Ads[0].Clicks != 150 {
		t.Errorf("ad0 counts = %+v", fb.Ads[0])
	}
	if want := 151.0 / 202.0; fb.Ads[0].Mean != want {
		t.Errorf("ad0 mean = %v, want %v", fb.Ads[0].Mean, want)
	}
	for _, a := range fb.Ads {
		if a.Index <= 0 || a.Index > 1 {
			t.Errorf("ad %s index %v outside (0, 1]", a.Name, a.Index)
		}
		if a.Exploration < 0 || a.Exploration > 1 {
			t.Errorf("ad %s exploration %v outside [0, 1]", a.Name, a.Exploration)
		}
	}

	// Ground truth: the same events through a fresh estimator with the
	// server's seed derivation, applied as CPE overrides on a fresh index.
	inst := gen.Fig1Instance(0)
	est, err := bandit.New(bandit.PolicyUCB, xrand.New(params.Seed).Split(banditSeedSalt).Seed())
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range feedbackEvents(names) {
		if err := est.Observe(ev); err != nil {
			t.Fatal(err)
		}
	}
	idx, err := core.BuildIndex(inst, params.Seed, core.TIRMOptions{MaxTheta: DefaultMaxTheta})
	if err != nil {
		t.Fatal(err)
	}
	opts := fig1Request().Opts
	want, err := core.AllocateFromIndex(idx, core.Request{
		Opts: opts.toOptions(DefaultMaxTheta),
		CPEs: overridesFor(est, inst),
	})
	if err != nil {
		t.Fatal(err)
	}

	banditReq := fig1Request()
	banditReq.Bandit = true
	var got AllocateResponse
	if code := postJSON(t, ts.URL+"/allocate", banditReq, &got); code != http.StatusOK {
		t.Fatalf("bandit allocate: %d", code)
	}
	for i, row := range want.Alloc.Seeds {
		if row == nil {
			want.Alloc.Seeds[i] = []int32{} // match the wire shape ([] for empty)
		}
	}
	if !reflect.DeepEqual(got.Seeds, want.Alloc.Seeds) {
		t.Errorf("bandit allocation diverged from core run with learned overrides\n got %v\nwant %v",
			got.Seeds, want.Alloc.Seeds)
	}

	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.FeedbackUpdates != 1 {
		t.Errorf("feedbackUpdates = %d, want 1", stats.FeedbackUpdates)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	expo := string(buf[:n])
	for _, want := range []string{
		"adserver_feedback_events_total 4",
		`adserver_bandit_estimate{ad="` + names[0] + `"}`,
		"adserver_bandit_exploration_count",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestFeedbackPolicyLifecycle pins the estimator's create/conflict/reset
// protocol and the request-shape rejections.
func TestFeedbackPolicyLifecycle(t *testing.T) {
	ts := testServer(t, Options{})
	params := fig1Request().InstanceParams
	post := func(req FeedbackRequest, out any) int {
		t.Helper()
		req.InstanceParams = params
		return postJSON(t, ts.URL+"/feedback", req, out)
	}

	var fb FeedbackResponse
	if code := post(FeedbackRequest{Policy: bandit.PolicyThompson}, &fb); code != http.StatusOK {
		t.Fatalf("create thompson: %d", code)
	}
	if fb.Policy != bandit.PolicyThompson {
		t.Fatalf("policy = %q", fb.Policy)
	}
	// Same policy and no policy are both fine; a different one conflicts.
	if code := post(FeedbackRequest{Policy: bandit.PolicyThompson}, nil); code != http.StatusOK {
		t.Errorf("same policy: %d", code)
	}
	if code := post(FeedbackRequest{}, nil); code != http.StatusOK {
		t.Errorf("no policy: %d", code)
	}
	if code := post(FeedbackRequest{Policy: bandit.PolicyUCB}, nil); code != http.StatusConflict {
		t.Errorf("conflicting policy: %d, want 409", code)
	}
	// Reset discards the learned state and switches policy.
	if code := post(FeedbackRequest{Policy: bandit.PolicyUCB, Reset: true}, &fb); code != http.StatusOK {
		t.Fatalf("reset to ucb: %d", code)
	}
	if fb.Policy != bandit.PolicyUCB || fb.Events != 0 {
		t.Errorf("after reset: %+v", fb)
	}

	// Shape rejections: unknown policy, invalid event.
	if code := post(FeedbackRequest{Policy: "epsilon-greedy", Reset: true}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown policy: %d, want 400", code)
	}
	if code := post(FeedbackRequest{Events: []bandit.Event{
		{Ad: "a0", Impressions: 1, Clicks: 5},
	}}, nil); code != http.StatusBadRequest {
		t.Errorf("clicks > impressions: %d, want 400", code)
	}
	// Events for names outside the campaign are accepted: feedback is
	// epoch-tolerant and name-keyed, so late events for a retired ad land.
	if code := post(FeedbackRequest{Events: []bandit.Event{
		{Ad: "long-gone", Impressions: 10, Clicks: 1},
	}}, nil); code != http.StatusOK {
		t.Errorf("unknown-name event: %d, want 200", code)
	}

	// Bandit allocations without an estimator, and with explicit CPEs, are
	// both 400s (fresh server for the no-estimator case).
	fresh := testServer(t, Options{})
	noEst := fig1Request()
	noEst.Bandit = true
	if code := postJSON(t, fresh.URL+"/allocate", noEst, nil); code != http.StatusBadRequest {
		t.Errorf("bandit allocate without estimator: %d, want 400", code)
	}
	both := fig1Request()
	both.Bandit = true
	both.CPEs = []float64{1, 1, 1, 1}
	if code := postJSON(t, ts.URL+"/allocate", both, nil); code != http.StatusBadRequest {
		t.Errorf("bandit with explicit cpes: %d, want 400", code)
	}
}

// TestShardedFeedbackMatchesSingleNode drives /feedback and a bandit
// /allocate through a 2-shard coordinator: the learned allocation is
// byte-identical to single-node serving of the same events, and the
// post-batch snapshot broadcast lands the estimator on every shard.
func TestShardedFeedbackMatchesSingleNode(t *testing.T) {
	params := InstanceParams{Dataset: "fig1", Seed: 1, Scale: 0.05}
	req := AllocateRequest{
		InstanceParams: params,
		Opts:           TIRMParams{MinTheta: 3000, MaxTheta: 20000},
		Bandit:         true,
	}
	events := feedbackEvents([]string{"a", "b", "c", "d"})

	single := testServer(t, Options{})
	if code := postJSON(t, single.URL+"/feedback", FeedbackRequest{
		InstanceParams: params, Events: events,
	}, nil); code != http.StatusOK {
		t.Fatalf("single-node feedback: %d", code)
	}
	var want AllocateResponse
	if code := postJSON(t, single.URL+"/allocate", req, &want); code != http.StatusOK {
		t.Fatalf("single-node bandit allocate: %d", code)
	}

	front, srv := shardedServer(t, params, 2)
	var fb FeedbackResponse
	if code := postJSON(t, front.URL+"/feedback", FeedbackRequest{
		InstanceParams: params, Events: events,
	}, &fb); code != http.StatusOK {
		t.Fatalf("sharded feedback: %d", code)
	}
	if !fb.Synced {
		t.Error("feedback reply reports failed shard broadcast")
	}
	var got AllocateResponse
	if code := postJSON(t, front.URL+"/allocate", req, &got); code != http.StatusOK {
		t.Fatalf("sharded bandit allocate: %d", code)
	}
	if !reflect.DeepEqual(want.Seeds, got.Seeds) {
		t.Errorf("sharded bandit allocation diverged\n want %v\n  got %v", want.Seeds, got.Seeds)
	}

	// The broadcast snapshot is on the host estimator's exact state.
	srv.sharded.estMu.Lock()
	hostSnap := srv.sharded.est.Snapshot()
	srv.sharded.estMu.Unlock()
	if hostSnap.Events != int64(len(events)) {
		t.Errorf("host estimator events = %d, want %d", hostSnap.Events, len(events))
	}
}
