// Server telemetry: the /metrics exposition (internal/obs) for the
// allocation service. One serverMetrics per Server owns the registry, the
// per-endpoint HTTP metrics the Instrument middleware records, the
// allocation outcome counters/latency histograms, and scrape-time
// gauge/counter views over the state the server already tracks (cache
// counters, workspace pools, index memory) — those stay single-sourced in
// Server and are only *read* at scrape time, so /stats and /metrics can
// never disagree.

package serve

import (
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rrset"
	"repro/internal/shard"
)

// Failure reasons for the adserver_alloc_failures_total counter. Bounded
// by construction: every rejected or errored allocation maps onto exactly
// one of these.
const (
	// failStaleEpoch is a 409: a campaign mutation swapped the epoch
	// between request shaping and the run.
	failStaleEpoch = "stale_epoch"
	// failCap is a 503: the live-campaign cap refused to pin another
	// cache entry (errTooManyLiveCampaigns).
	failCap = "cap"
	// failBadRequest is a 400: invalid parameters or request shape.
	failBadRequest = "bad_request"
	// failInternal is a 500: the index build failed.
	failInternal = "internal"
	// failUpstream is a 502: a shard RPC failed mid-distributed-selection.
	failUpstream = "upstream"
	// failUnavailable is a 503: every replica of some partition range is
	// down (shard.ErrPartitionUnavailable) — the cluster is degraded.
	failUnavailable = "unavailable"
)

// serverMetrics is the server's observability surface. It implements
// core.AllocObserver so a Request.Observer can feed the per-phase
// histograms straight from the selection loop.
type serverMetrics struct {
	reg  *obs.Registry
	http *obs.HTTPMetrics

	allocations   *obs.Counter
	allocFailures *obs.CounterVec // reason
	allocSeconds  *obs.Histogram
	// phaseSeconds are the adserver_alloc_phase_seconds{phase} children
	// resolved once at startup, indexed by core.AllocPhase so the observer
	// callback never touches the vec's map.
	phaseSeconds [core.NumAllocPhases]*obs.Histogram
	allocRounds  *obs.Histogram
	// kernelVec is adserver_kernel_selected_total{kernel}; kernelSelected
	// holds its children resolved once, indexed by rrset.KernelID so the
	// per-request record path never touches the vec's map.
	kernelVec      *obs.CounterVec
	kernelSelected [rrset.NumKernels]*obs.Counter

	// Bandit-layer telemetry: events applied via POST /feedback, the
	// per-ad learned estimates, and the exploration share of each ad's
	// index observed at feedback time.
	feedbackEvents    *obs.Counter
	banditEstimate    *obs.GaugeVec // ad
	banditExploration *obs.Histogram

	// shard is non-nil in coordinator mode: the RPC-level telemetry the
	// instrumented shard clients record (see ConnectShards).
	shard *shard.Metrics
}

// allocRoundBuckets sizes the rounds-per-allocation histogram: a round
// commits one seed, so the paper's settings land in the tens to hundreds.
var allocRoundBuckets = []float64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// explorationBuckets sizes the bandit exploration-share histogram: the
// share lives in [0, 1], starts near 1 (untried ads explore maximally)
// and decays toward 0 as counts accumulate.
var explorationBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1}

// newServerMetrics builds the registry for s. The scrape-time funcs close
// over s and read its existing counters and cache state, so registration
// must happen after the fields they touch exist (New constructs the
// metrics last).
func newServerMetrics(s *Server) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg:  reg,
		http: obs.NewHTTPMetrics(reg, "adserver"),
		allocations: reg.Counter("adserver_allocations_total",
			"Successful allocation runs served (single-node and coordinator mode)."),
		allocFailures: reg.CounterVec("adserver_alloc_failures_total",
			"Refused or errored allocation requests by reason (stale_epoch=409 epoch race, cap=503 live-campaign cap, bad_request=400, internal=500 index build, upstream=502 shard RPC).",
			"reason"),
		allocSeconds: reg.Histogram("adserver_alloc_seconds",
			"End-to-end selection wall time per successful /allocate, in seconds.", obs.DefBuckets),
		allocRounds: reg.Histogram("adserver_alloc_rounds",
			"Selection rounds (committed seeds) per observed allocation run.", allocRoundBuckets),
	}
	phaseVec := reg.HistogramVec("adserver_alloc_phase_seconds",
		"Cumulative wall time per allocation phase (estimate, scan, commit, grow) per run, in seconds.",
		obs.DefBuckets, "phase")
	for p := core.AllocPhase(0); p < core.NumAllocPhases; p++ {
		m.phaseSeconds[p] = phaseVec.With(p.String())
	}
	m.feedbackEvents = reg.Counter("adserver_feedback_events_total",
		"Engagement feedback events (per-ad impression/click batches) applied via POST /feedback.")
	m.banditEstimate = reg.GaugeVec("adserver_bandit_estimate",
		"Learned per-ad engagement estimate (Laplace-smoothed click-through mean) after the latest feedback batch.",
		"ad")
	// Per-ad gauge cardinality is bounded twice over: removal/eviction
	// deletes children explicitly, and the cap catches anything that
	// slips past (many cached entries sharing the vec). 16× the per-entry
	// ad limit leaves room without letting a leak grow unbounded.
	m.banditEstimate.SetMaxChildren(16 * s.opts.MaxAds)
	m.banditExploration = reg.Histogram("adserver_bandit_exploration",
		"Exploration share of each campaign ad's bandit index (index minus smoothed mean, clamped at 0) observed per feedback batch.",
		explorationBuckets)
	m.kernelVec = reg.CounterVec("adserver_kernel_selected_total",
		"Per-ad coverage collections run on each cover kernel (sparse cover-join scan vs packed-bitset sweep), summed over successful allocations; in coordinator mode each shard-local collection counts.",
		"kernel")
	for id := rrset.KernelID(0); int(id) < rrset.NumKernels; id++ {
		m.kernelSelected[id] = m.kernelVec.With(id.String())
	}

	reg.CounterFunc("adserver_cache_hits_total",
		"Requests served entirely from a cached instance+index.",
		func() uint64 { return uint64(s.cacheHits.Load()) })
	reg.CounterFunc("adserver_cache_misses_total",
		"Requests that generated an instance or built an index.",
		func() uint64 { return uint64(s.cacheMisses.Load()) })
	reg.CounterFunc("adserver_cache_coalesced_total",
		"Requests that waited on another caller's in-flight build.",
		func() uint64 { return uint64(s.coalesced.Load()) })
	reg.CounterFunc("adserver_snapshot_loads_total",
		"Index builds answered by loading a snapshot from disk.",
		func() uint64 { return uint64(s.snapshotLoads.Load()) })
	reg.CounterFunc("adserver_ads_added_total",
		"Advertisers added via POST /ads.",
		func() uint64 { return uint64(s.adsAdded.Load()) })
	reg.CounterFunc("adserver_ads_removed_total",
		"Advertisers removed via DELETE /ads/{name}.",
		func() uint64 { return uint64(s.adsRemoved.Load()) })
	reg.CounterFunc("adserver_spend_updates_total",
		"Engagement-ledger updates via POST /spend.",
		func() uint64 { return uint64(s.spendUpdates.Load()) })
	reg.CounterFunc("adserver_feedback_updates_total",
		"Estimator batch updates via POST /feedback.",
		func() uint64 { return uint64(s.feedbackUpdates.Load()) })
	reg.CounterFunc("adserver_epoch_swaps_total",
		"Campaign-epoch swaps (every successful ad add or remove swaps one).",
		func() uint64 { return uint64(s.adsAdded.Load() + s.adsRemoved.Load()) })
	reg.CounterFunc("adserver_workspace_hits_total",
		"Allocation workspaces recycled from a pool, summed over live cache entries.",
		func() uint64 { h, _ := s.workspaceTotals(); return uint64(h) })
	reg.CounterFunc("adserver_workspace_misses_total",
		"Allocation workspaces freshly constructed, summed over live cache entries.",
		func() uint64 { _, miss := s.workspaceTotals(); return uint64(miss) })
	reg.GaugeFunc("adserver_index_mem_bytes",
		"Stored RR-set sample footprint in bytes (summed over cached indexes; the cluster sum in coordinator mode).",
		func() float64 { return float64(s.indexMemTotal()) })
	reg.GaugeFunc("adserver_cache_entries",
		"Cached instance+index entries currently live.",
		func() float64 { return float64(s.cacheEntryCount()) })
	reg.GaugeFunc("adserver_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	obs.BuildInfo(reg, "adserver")
	return m
}

// dropBanditEstimate retires one ad's learned-estimate gauge child — wired
// to DELETE /ads/{name} and cache eviction so the per-ad family tracks the
// live campaign instead of accreting every name ever seen.
func (m *serverMetrics) dropBanditEstimate(name string) {
	m.banditEstimate.Delete(name)
}

// ObserveAllocation feeds one run's phase breakdown into the histograms;
// serverMetrics is the core.AllocObserver every local selection run gets.
func (m *serverMetrics) ObserveAllocation(t core.PhaseTimings) {
	for p := core.AllocPhase(0); p < core.NumAllocPhases; p++ {
		m.phaseSeconds[p].Observe(t.Phase[p].Seconds())
	}
	m.allocRounds.Observe(float64(t.Rounds))
}

// recordFeedback books one applied POST /feedback batch: the event count
// and, per current campaign ad, the learned estimate gauge and the
// exploration-share observation.
func (m *serverMetrics) recordFeedback(events int, ads []AdEstimate) {
	m.feedbackEvents.Add(uint64(events))
	for _, a := range ads {
		m.banditEstimate.With(a.Name).Set(a.Mean)
		m.banditExploration.Observe(a.Exploration)
	}
}

// failAlloc counts one refused or errored allocation under its reason.
func (m *serverMetrics) failAlloc(reason string) {
	m.allocFailures.With(reason).Inc()
}

// recordKernels folds one successful run's per-kernel collection tallies
// into adserver_kernel_selected_total.
func (m *serverMetrics) recordKernels(counts [rrset.NumKernels]int) {
	for id, c := range counts {
		if c > 0 {
			m.kernelSelected[id].Add(uint64(c))
		}
	}
}

// kernelCounts snapshots the kernel counter for /stats; nil until the
// first successful allocation (so the JSON field stays absent).
func (s *Server) kernelCounts() map[string]uint64 {
	snap := s.metrics.kernelVec.Snapshot()
	for k, v := range snap {
		if v == 0 {
			delete(snap, k)
		}
	}
	if len(snap) == 0 {
		return nil
	}
	return snap
}

// allocFailureCounts snapshots the failure counter for /stats; nil when no
// failure has been recorded yet (so the JSON field stays absent).
func (s *Server) allocFailureCounts() map[string]uint64 {
	snap := s.metrics.allocFailures.Snapshot()
	if len(snap) == 0 {
		return nil
	}
	return snap
}

// workspaceTotals sums the per-entry workspace-pool counters over the live
// cache (the same aggregation /stats reports).
func (s *Server) workspaceTotals() (hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		h, m := e.pool.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}

// indexMemTotal sums built-index sample footprints; in coordinator mode it
// is the health-probe-refreshed cluster sum.
func (s *Server) indexMemTotal() int64 {
	if s.sharded != nil {
		return s.sharded.memBytes.Load()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, e := range s.entries {
		if e.indexBuilt() {
			total += e.idx.MemBytes()
		}
	}
	return total
}

// cacheEntryCount reads the live cache size.
func (s *Server) cacheEntryCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
