package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

// tracedAllocate POSTs an /allocate with a caller-chosen trace id and the
// sampled flag forced, so the resulting trace is deterministically
// retained and retrievable by id.
func tracedAllocate(t *testing.T, frontURL, traceID string, req AllocateRequest) AllocateResponse {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpReq, err := http.NewRequest(http.MethodPost, frontURL+"/allocate", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set(obs.TraceHeader, traceID)
	httpReq.Header.Set(obs.FlagsHeader, "1")
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("traced allocate: %d\n%s", resp.StatusCode, body)
	}
	var out AllocateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// fetchTrace GETs /debug/traces/{id} and decodes the span tree.
func fetchTrace(t *testing.T, baseURL, id string) obs.TraceData {
	t.Helper()
	var td obs.TraceData
	if code := getJSON(t, baseURL+"/debug/traces/"+id, &td); code != http.StatusOK {
		t.Fatalf("/debug/traces/%s: %d", id, code)
	}
	return td
}

// spansByName indexes a trace's spans, counting duplicates per name prefix.
func spanNames(td obs.TraceData) map[string]int {
	names := map[string]int{}
	for _, s := range td.Spans {
		names[s.Name]++
	}
	return names
}

// TestAllocateTraceExplain drives one explain-enabled, force-sampled
// allocation through a single-node server and pins the whole local span
// tree: the middleware's server span, the alloc span under it, synthetic
// per-phase children, and one commit event per selection round. It also
// pins the determinism contract — the traced, explained allocation
// returns exactly the same seeds as a plain one.
func TestAllocateTraceExplain(t *testing.T) {
	ts := testServer(t, Options{})

	var plain AllocateResponse
	if code := postJSON(t, ts.URL+"/allocate", fig1Request(), &plain); code != http.StatusOK {
		t.Fatalf("plain allocate: %d", code)
	}

	req := fig1Request()
	req.Explain = true
	traced := tracedAllocate(t, ts.URL, "alloc-explain-trace", req)
	if !reflect.DeepEqual(traced.Seeds, plain.Seeds) {
		t.Fatalf("traced+explained allocation diverged from plain:\n%v\nvs\n%v", traced.Seeds, plain.Seeds)
	}

	td := fetchTrace(t, ts.URL, "alloc-explain-trace")
	if td.Reason != "sampled" && td.Reason != "latency" {
		t.Fatalf("trace retained as %q, want forced sampling (or latency)", td.Reason)
	}
	names := spanNames(td)
	if names["http.allocate"] != 1 || names["alloc"] != 1 {
		t.Fatalf("span tree missing server/alloc spans: %v", names)
	}
	var serverSpan, allocSpan obs.SpanData
	for _, s := range td.Spans {
		switch s.Name {
		case "http.allocate":
			serverSpan = s
		case "alloc":
			allocSpan = s
		}
	}
	if allocSpan.Parent != serverSpan.ID {
		t.Fatalf("alloc span parent %q, want server span %q", allocSpan.Parent, serverSpan.ID)
	}
	if serverSpan.Attrs["status"] != 200 || serverSpan.Strs["method"] != "POST" {
		t.Fatalf("server span attrs: %+v %+v", serverSpan.Attrs, serverSpan.Strs)
	}
	phases := 0
	for name := range names {
		if strings.HasPrefix(name, "phase.") {
			phases++
		}
	}
	if phases == 0 {
		t.Fatalf("no phase.* children in span tree: %v", names)
	}
	commits := 0
	for _, ev := range allocSpan.Events {
		if ev.Name != "commit" {
			continue
		}
		commits++
		if _, ok := ev.Attrs["ad"]; !ok {
			t.Fatalf("commit event missing ad attr: %+v", ev)
		}
		if _, ok := ev.Attrs["gainMicro"]; !ok {
			t.Fatalf("commit event missing gainMicro attr: %+v", ev)
		}
	}
	if commits == 0 || int64(commits) != allocSpan.Attrs["rounds"] {
		t.Fatalf("explain produced %d commit events for %d rounds", commits, allocSpan.Attrs["rounds"])
	}

	// Without explain, the same traced request yields no commit events.
	noExplain := fig1Request()
	tracedAllocate(t, ts.URL, "alloc-noexplain-trace", noExplain)
	td = fetchTrace(t, ts.URL, "alloc-noexplain-trace")
	for _, s := range td.Spans {
		for _, ev := range s.Events {
			if ev.Name == "commit" {
				t.Fatal("commit event present without explain")
			}
		}
	}

	// Trace metrics made it onto /metrics.
	body := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		`adserver_traces_retained_total{reason="sampled"}`,
		"adserver_trace_spans_total",
		`adserver_build_info{`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestShardedTraceTree runs a force-sampled allocation through a real
// 2-shard HTTP cluster and asserts the distributed span tree the tentpole
// promises: one trace linking the server span → alloc → coordinator
// rounds → per-shard RPCs, retrievable from the coordinator; and the
// shard daemons retain their own server spans under the same trace id
// with the coordinator's RPC span as remote parent.
func TestShardedTraceTree(t *testing.T) {
	params := InstanceParams{Dataset: "fig1", Seed: 1, Scale: 1}
	c := newTracedCluster(t, params, 2)

	tracedAllocate(t, c.front.URL, "sharded-trace", AllocateRequest{
		InstanceParams: params,
		Opts:           TIRMParams{MinTheta: 1024, MaxTheta: 4096},
	})

	td := fetchTrace(t, c.front.URL, "sharded-trace")
	names := spanNames(td)
	byID := map[string]obs.SpanData{}
	for _, s := range td.Spans {
		byID[s.ID] = s
	}
	if names["http.allocate"] != 1 || names["alloc"] != 1 {
		t.Fatalf("missing server/alloc spans: %v", names)
	}
	rounds, rpcs := 0, 0
	for _, s := range td.Spans {
		if strings.HasPrefix(s.Name, "round.") {
			rounds++
			parent, ok := byID[s.Parent]
			if !ok || parent.Name != "alloc" {
				t.Fatalf("round span %s parented under %q, want alloc", s.Name, parent.Name)
			}
		}
		if strings.HasPrefix(s.Name, "rpc.") {
			rpcs++
			parent, ok := byID[s.Parent]
			if !ok || !strings.HasPrefix(parent.Name, "round.") {
				t.Fatalf("rpc span %s parented under %q, want a round.* span", s.Name, parent.Name)
			}
			if s.Strs["replica"] == "" {
				t.Fatalf("rpc span %s missing replica label", s.Name)
			}
		}
	}
	if rounds == 0 || rpcs == 0 {
		t.Fatalf("distributed tree has %d round and %d rpc spans: %v", rounds, rpcs, names)
	}

	// Each shard daemon retained its own server spans for the trace, with
	// a coordinator-side RPC span as the remote parent.
	for i, sh := range c.shards {
		std := fetchTrace(t, sh.URL, "sharded-trace")
		if len(std.Spans) == 0 || !strings.HasPrefix(std.Spans[0].Name, "http.shard_") {
			t.Fatalf("shard %d trace root %+v, want http.shard_*", i, std.Spans)
		}
		if std.Spans[0].Parent == "" {
			t.Fatalf("shard %d server span has no remote parent", i)
		}
	}
}

// TestFailoverTraceRetained pins tail-based retention on the failure path
// the tracer exists for: kill the preferred replica of a range, allocate
// once, and the trace — retained without any sampling flag, purely by its
// tail signals — must show the retry events against the dead replica, the
// errored RPC span, and the failover event booked when the surviving
// replica adopted the run.
func TestFailoverTraceRetained(t *testing.T) {
	params := InstanceParams{Dataset: "fig1", Seed: 1, Scale: 1}
	front, _, backends := replicatedServer(t, params, 2, 2)
	req := AllocateRequest{
		InstanceParams: params,
		Opts:           TIRMParams{MinTheta: 1024, MaxTheta: 4096},
	}
	// Warm the cluster so the traced run isolates the failover itself.
	if code := postJSON(t, front.URL+"/allocate", req, nil); code != http.StatusOK {
		t.Fatalf("warm allocate: %d", code)
	}
	backends[0].Close()

	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpReq, err := http.NewRequest(http.MethodPost, front.URL+"/allocate", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set(obs.TraceHeader, "failover-trace")
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("allocate after replica kill: %d", resp.StatusCode)
	}

	td := fetchTrace(t, front.URL, "failover-trace")
	if td.Reason != "error" && td.Reason != "failover" {
		t.Fatalf("failover trace retained as %q, want a tail reason", td.Reason)
	}
	var retries, failovers, rpcErrs int
	for _, s := range td.Spans {
		if s.Error != "" && strings.HasPrefix(s.Name, "rpc.") {
			rpcErrs++
		}
		for _, ev := range s.Events {
			switch {
			case strings.HasPrefix(ev.Name, "retry."):
				retries++
			case ev.Name == "failover":
				failovers++
				if ev.Attrs["from"] != 0 {
					t.Fatalf("failover event blames replica %d, want 0: %+v", ev.Attrs["from"], ev)
				}
			}
		}
	}
	if failovers == 0 || retries == 0 || rpcErrs == 0 {
		t.Fatalf("trace shows %d failover events, %d retries, %d errored RPC spans; want all > 0",
			failovers, retries, rpcErrs)
	}

	// The retention shows up on /metrics too.
	body := scrapeMetrics(t, front.URL)
	if !strings.Contains(body, `adserver_traces_retained_total{reason="`+td.Reason+`"}`) {
		t.Errorf("/metrics missing retained_total for reason %q", td.Reason)
	}
}
