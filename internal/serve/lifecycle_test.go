package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

func deleteReq(t *testing.T, url string, out any) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestServerLifecycleEndToEnd drives the campaign loop over HTTP: allocate
// → add an advertiser → record spend → residual re-allocation → retire the
// advertiser → stats reflecting it all.
func TestServerLifecycleEndToEnd(t *testing.T) {
	ts := testServer(t, Options{})
	base := fig1Request()

	var first AllocateResponse
	if code := postJSON(t, ts.URL+"/allocate", base, &first); code != http.StatusOK {
		t.Fatalf("baseline allocate returned %d", code)
	}
	if first.Epoch != 1 {
		t.Errorf("fresh index served epoch %d, want 1", first.Epoch)
	}

	// Join: a new advertiser riding ad a's propagation profile.
	var added LifecycleResponse
	add := AddAdRequest{
		InstanceParams: base.InstanceParams,
		Ad:             NewAdSpec{Name: "promo", Budget: 3, CPE: 1, CTP: 0.5, Template: 0},
	}
	if code := postJSON(t, ts.URL+"/ads", add, &added); code != http.StatusOK {
		t.Fatalf("POST /ads returned %d", code)
	}
	if added.Epoch != 2 || added.NumAds != 5 || added.Position != 4 {
		t.Fatalf("add response %+v, want epoch 2, 5 ads, position 4", added)
	}

	// The campaign view every other endpoint sees follows the mutation:
	// /evaluate now wants 5 seed rows.
	eval4 := EvaluateRequest{InstanceParams: base.InstanceParams, Seeds: [][]int32{{0}, {1}, {2}, {3}}}
	if code := postJSON(t, ts.URL+"/evaluate", eval4, nil); code != http.StatusBadRequest {
		t.Errorf("4-row evaluate after add returned %d, want 400", code)
	}
	eval5 := EvaluateRequest{InstanceParams: base.InstanceParams, Seeds: [][]int32{{0}, {1}, {2}, {3}, {4}}, Runs: 100}
	if code := postJSON(t, ts.URL+"/evaluate", eval5, nil); code != http.StatusOK {
		t.Errorf("5-row evaluate after add returned %d, want 200", code)
	}

	// Deplete ad a completely and check the ledger.
	var ledger SpendResponse
	spend := SpendRequest{InstanceParams: base.InstanceParams, Spend: map[string]float64{"a": 4}}
	if code := postJSON(t, ts.URL+"/spend", spend, &ledger); code != http.StatusOK {
		t.Fatalf("POST /spend returned %d", code)
	}
	if len(ledger.Ads) != 5 {
		t.Fatalf("ledger covers %d ads, want 5", len(ledger.Ads))
	}
	if a := ledger.Ads[0]; a.Name != "a" || !a.Depleted || a.Residual != 0 {
		t.Errorf("ad a ledger %+v, want depleted with residual 0", a)
	}

	// Residual allocation: the depleted ad must receive no seeds.
	resReq := base
	resReq.Residual = true
	var res AllocateResponse
	if code := postJSON(t, ts.URL+"/allocate", resReq, &res); code != http.StatusOK {
		t.Fatalf("residual allocate returned %d", code)
	}
	if res.Epoch != 2 {
		t.Errorf("residual allocate served epoch %d, want 2", res.Epoch)
	}
	if len(res.SpentBudgets) != 5 || res.SpentBudgets[0] != 4 {
		t.Errorf("residual allocate echoed spentBudgets %v", res.SpentBudgets)
	}
	if len(res.Seeds[0]) != 0 {
		t.Errorf("depleted ad a still got seeds %v", res.Seeds[0])
	}

	// Retire the joined ad.
	var removed LifecycleResponse
	url := fmt.Sprintf("%s/ads/promo?dataset=%s&seed=%d&scale=%g", ts.URL, base.Dataset, base.Seed, base.Scale)
	if code := deleteReq(t, url, &removed); code != http.StatusOK {
		t.Fatalf("DELETE /ads/promo returned %d", code)
	}
	if removed.Epoch != 3 || removed.NumAds != 4 {
		t.Fatalf("remove response %+v, want epoch 3 with 4 ads", removed)
	}
	if code := deleteReq(t, url, nil); code != http.StatusNotFound {
		t.Errorf("second DELETE returned %d, want 404", code)
	}

	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats returned %d", code)
	}
	if stats.AdsAdded != 1 || stats.AdsRemoved != 1 || stats.SpendUpdates != 1 {
		t.Errorf("lifecycle counters added=%d removed=%d spend=%d, want 1/1/1",
			stats.AdsAdded, stats.AdsRemoved, stats.SpendUpdates)
	}
	if len(stats.Entries) != 1 || stats.Entries[0].Epoch != 3 || stats.Entries[0].SpentTotal != 4 {
		t.Errorf("entry stats %+v, want epoch 3 and spentTotal 4", stats.Entries)
	}
}

// TestServerLifecycleValidation: malformed mutations are refused with the
// right status codes and leave the campaign untouched.
func TestServerLifecycleValidation(t *testing.T) {
	ts := testServer(t, Options{})
	base := fig1Request()
	if code := postJSON(t, ts.URL+"/allocate", base, nil); code != http.StatusOK {
		t.Fatalf("baseline allocate returned %d", code)
	}

	cases := []struct {
		name string
		ad   NewAdSpec
		want int
	}{
		{"missing name", NewAdSpec{Budget: 1, CPE: 1}, http.StatusBadRequest},
		{"duplicate name", NewAdSpec{Name: "a", Budget: 1, CPE: 1}, http.StatusConflict},
		{"bad template", NewAdSpec{Name: "x", Budget: 1, CPE: 1, Template: 9}, http.StatusBadRequest},
		{"bad ctp", NewAdSpec{Name: "x", Budget: 1, CPE: 1, CTP: 2}, http.StatusBadRequest},
		{"bad budget", NewAdSpec{Name: "x", Budget: -1, CPE: 1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		req := AddAdRequest{InstanceParams: base.InstanceParams, Ad: tc.ad}
		if code := postJSON(t, ts.URL+"/ads", req, nil); code != tc.want {
			t.Errorf("%s: POST /ads returned %d, want %d", tc.name, code, tc.want)
		}
	}

	spendCases := []struct {
		name  string
		spend map[string]float64
		want  int
	}{
		{"unknown ad", map[string]float64{"zz": 1}, http.StatusNotFound},
		{"negative", map[string]float64{"a": -2}, http.StatusBadRequest},
	}
	for _, tc := range spendCases {
		req := SpendRequest{InstanceParams: base.InstanceParams, Spend: tc.spend}
		if code := postJSON(t, ts.URL+"/spend", req, nil); code != tc.want {
			t.Errorf("%s: POST /spend returned %d, want %d", tc.name, code, tc.want)
		}
	}

	if code := deleteReq(t, ts.URL+"/ads/a", nil); code != http.StatusBadRequest {
		t.Errorf("DELETE without dataset returned %d, want 400", code)
	}
	if code := deleteReq(t, ts.URL+"/ads/?dataset=fig1&seed=1&scale=0.05", nil); code != http.StatusBadRequest {
		t.Errorf("DELETE without name returned %d, want 400", code)
	}

	// Campaign must still be the original four ads.
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatal("stats failed")
	}
	if len(stats.Entries) != 1 || stats.Entries[0].NumAds != 4 || stats.Entries[0].Epoch != 1 {
		t.Errorf("entry after refused mutations: %+v, want 4 ads at epoch 1", stats.Entries)
	}
}

// TestServerLifecycleSurvivesEviction: an entry carrying campaign state
// (mutations, spend ledger) is exempt from LRU eviction — evicting it
// would silently resurrect the pre-mutation campaign with full budgets.
func TestServerLifecycleSurvivesEviction(t *testing.T) {
	ts := testServer(t, Options{MaxEntries: 1})
	base := fig1Request()
	add := AddAdRequest{
		InstanceParams: base.InstanceParams,
		Ad:             NewAdSpec{Name: "promo", Budget: 3, CPE: 1},
	}
	if code := postJSON(t, ts.URL+"/ads", add, nil); code != http.StatusOK {
		t.Fatalf("POST /ads returned %d", code)
	}
	spend := SpendRequest{InstanceParams: base.InstanceParams, Spend: map[string]float64{"a": 4}}
	if code := postJSON(t, ts.URL+"/spend", spend, nil); code != http.StatusOK {
		t.Fatalf("POST /spend returned %d", code)
	}

	// Pressure the cache with two other keys; without the lifecycle
	// exemption the mutated entry would be the LRU victim.
	for seed := uint64(7); seed < 9; seed++ {
		other := fig1Request()
		other.Seed = seed
		if code := postJSON(t, ts.URL+"/allocate", other, nil); code != http.StatusOK {
			t.Fatalf("allocate seed %d returned %d", seed, code)
		}
	}

	req := base
	req.Residual = true
	var res AllocateResponse
	if code := postJSON(t, ts.URL+"/allocate", req, &res); code != http.StatusOK {
		t.Fatalf("residual allocate after eviction pressure returned %d", code)
	}
	if res.Epoch != 2 || len(res.AdNames) != 5 {
		t.Errorf("mutated campaign lost to eviction: epoch %d with %d ads, want epoch 2 with 5", res.Epoch, len(res.AdNames))
	}
	if len(res.SpentBudgets) != 5 || res.SpentBudgets[0] != 4 {
		t.Errorf("spend ledger lost to eviction: %v", res.SpentBudgets)
	}
	if len(res.Seeds[0]) != 0 {
		t.Errorf("depleted ad a got seeds %v after eviction pressure", res.Seeds[0])
	}
}

// TestServerLiveCampaignCap: lifecycle state exempts entries from LRU
// eviction, so the server refuses (503) to pin more campaigns than
// MaxEntries — otherwise one client could grow memory without bound by
// spending a unit against every key.
func TestServerLiveCampaignCap(t *testing.T) {
	ts := testServer(t, Options{MaxEntries: 1})
	pin := func(seed uint64) int {
		req := SpendRequest{
			InstanceParams: InstanceParams{Dataset: "fig1", Seed: seed, Scale: 0.05},
			Spend:          map[string]float64{"a": 1},
		}
		return postJSON(t, ts.URL+"/spend", req, nil)
	}
	if code := pin(1); code != http.StatusOK {
		t.Fatalf("first campaign pin returned %d", code)
	}
	if code := pin(2); code != http.StatusServiceUnavailable {
		t.Errorf("pin past the live-campaign cap returned %d, want 503", code)
	}
	// Spending further against the already-pinned campaign still works.
	if code := pin(1); code != http.StatusOK {
		t.Errorf("spend on an already-live campaign returned %d, want 200", code)
	}
	// Resetting the ledger releases the slot for another campaign.
	reset := SpendRequest{InstanceParams: InstanceParams{Dataset: "fig1", Seed: 1, Scale: 0.05}, Reset: true}
	if code := postJSON(t, ts.URL+"/spend", reset, nil); code != http.StatusOK {
		t.Fatalf("ledger reset returned %d", code)
	}
	if code := pin(2); code != http.StatusOK {
		t.Errorf("pin after releasing the slot returned %d, want 200", code)
	}
}

// TestServerEvaluateEpochPinning: /evaluate with the epoch an allocation
// was served on is refused (409) once the campaign has changed — seeds
// rows are positional, and equal-count churn would silently misalign them.
func TestServerEvaluateEpochPinning(t *testing.T) {
	ts := testServer(t, Options{})
	base := fig1Request()
	var alloc AllocateResponse
	if code := postJSON(t, ts.URL+"/allocate", base, &alloc); code != http.StatusOK {
		t.Fatal("baseline allocate failed")
	}
	eval := EvaluateRequest{
		InstanceParams: base.InstanceParams,
		Seeds:          alloc.Seeds,
		Runs:           100,
		Epoch:          alloc.Epoch,
	}
	if code := postJSON(t, ts.URL+"/evaluate", eval, nil); code != http.StatusOK {
		t.Errorf("same-epoch evaluate returned %d, want 200", code)
	}

	add := AddAdRequest{InstanceParams: base.InstanceParams, Ad: NewAdSpec{Name: "promo", Budget: 3, CPE: 1}}
	if code := postJSON(t, ts.URL+"/ads", add, nil); code != http.StatusOK {
		t.Fatal("POST /ads failed")
	}
	if code := postJSON(t, ts.URL+"/evaluate", eval, nil); code != http.StatusConflict {
		t.Errorf("stale-epoch evaluate returned %d, want 409", code)
	}
	eval.Epoch = 0
	eval.Seeds = append(alloc.Seeds, []int32{})
	if code := postJSON(t, ts.URL+"/evaluate", eval, nil); code != http.StatusOK {
		t.Errorf("unpinned current-shape evaluate returned %d, want 200", code)
	}
}

// TestServerLifecycleConcurrency hammers mutations, spend updates, and
// residual allocations concurrently; the race detector is the main
// assertion, and every allocation must come back either consistent (200)
// or as a clean epoch conflict (409).
func TestServerLifecycleConcurrency(t *testing.T) {
	ts := testServer(t, Options{})
	base := fig1Request()
	if code := postJSON(t, ts.URL+"/allocate", base, nil); code != http.StatusOK {
		t.Fatalf("baseline allocate returned %d", code)
	}

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				name := fmt.Sprintf("churn-%d-%d", w, i)
				add := AddAdRequest{InstanceParams: base.InstanceParams, Ad: NewAdSpec{Name: name, Budget: 1, CPE: 1}}
				if code := postJSON(t, ts.URL+"/ads", add, nil); code != http.StatusOK {
					t.Errorf("concurrent add %s: %d", name, code)
					return
				}
				url := fmt.Sprintf("%s/ads/%s?dataset=%s&seed=%d&scale=%g", ts.URL, name, base.Dataset, base.Seed, base.Scale)
				if code := deleteReq(t, url, nil); code != http.StatusOK {
					t.Errorf("concurrent remove %s: %d", name, code)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := base
			req.Residual = true
			for i := 0; i < 5; i++ {
				spend := SpendRequest{InstanceParams: base.InstanceParams, Spend: map[string]float64{"b": 0.05}}
				if code := postJSON(t, ts.URL+"/spend", spend, nil); code != http.StatusOK {
					t.Errorf("concurrent spend: %d", code)
					return
				}
				code := postJSON(t, ts.URL+"/allocate", req, nil)
				if code != http.StatusOK && code != http.StatusConflict {
					t.Errorf("concurrent residual allocate: %d", code)
					return
				}
			}
		}()
	}
	wg.Wait()
}
