package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkServeAllocate measures the serve layer end to end: parallel
// HTTP clients firing POST /allocate at one cached index, the request
// shape a production host actually sees. The index is built once before
// the timer starts, so the loop prices exactly the per-request hot path —
// JSON decode, cache hit, pooled warm AllocateFromIndex, JSON encode —
// and its throughput tracks the warm-allocation work the workspace
// pooling refactor targets. Run with -benchmem: the allocs/op here bound
// what any transport-level tuning has left to chase.
func BenchmarkServeAllocate(b *testing.B) {
	srv := New(Options{Logf: func(string, ...any) {}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := AllocateRequest{
		InstanceParams: InstanceParams{Dataset: "flixster", Seed: 1, Scale: 0.01},
		Opts:           TIRMParams{Eps: 0.3, MinTheta: 2000, MaxTheta: 16000},
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	warm := func() error {
		resp, err := http.Post(ts.URL+"/allocate", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("allocate: HTTP %d", resp.StatusCode)
		}
		var out AllocateResponse
		return json.NewDecoder(resp.Body).Decode(&out)
	}
	// First request pays the cold index build; everything timed is warm.
	if err := warm(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		for pb.Next() {
			resp, err := client.Post(ts.URL+"/allocate", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			var out AllocateResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				resp.Body.Close()
				b.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("allocate: HTTP %d", resp.StatusCode)
				return
			}
		}
	})
	b.StopTimer()
	hits, misses := srv.entries[req.Key()].pool.Stats()
	b.ReportMetric(float64(hits)/float64(hits+misses), "pool-hit-rate")
}
