package obs

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, out)
	}
	return out
}

func TestCounterAndGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "Events.")
	c.Add(41)
	c.Inc()
	r.GaugeFunc("test_depth", "Depth.", func() float64 { return 2.5 })
	r.CounterFunc("test_derived_total", "Derived.", func() uint64 { return 7 })
	out := scrape(t, r)
	for _, want := range []string{
		"# HELP test_events_total Events.\n# TYPE test_events_total counter\ntest_events_total 42\n",
		"# TYPE test_depth gauge\ntest_depth 2.5\n",
		"test_derived_total 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 42 {
		t.Errorf("counter value %d, want 42", c.Value())
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	out := scrape(t, r)
	for _, want := range []string{
		`test_seconds_bucket{le="0.01"} 1`,
		`test_seconds_bucket{le="0.1"} 3`,
		`test_seconds_bucket{le="1"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		`test_seconds_sum 5.605`,
		`test_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 || h.Sum() != 5.605 {
		t.Errorf("count %d sum %v, want 5 and 5.605", h.Count(), h.Sum())
	}
}

func TestVecChildrenSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_req_total", "Requests.", "endpoint", "code")
	v.With("zeta", "200").Add(3)
	v.With("alpha", "404").Inc()
	v.With(`quo"te`, "200").Inc()
	hv := r.HistogramVec("test_lat_seconds", "Latency.", []float64{0.5}, "endpoint")
	hv.With("a").Observe(0.1)
	hv.With("b").Observe(0.7)
	out := scrape(t, r)
	alpha := strings.Index(out, `test_req_total{endpoint="alpha",code="404"} 1`)
	zeta := strings.Index(out, `test_req_total{endpoint="zeta",code="200"} 3`)
	if alpha < 0 || zeta < 0 || alpha > zeta {
		t.Errorf("vec children missing or unsorted:\n%s", out)
	}
	if !strings.Contains(out, `endpoint="quo\"te"`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
	if !strings.Contains(out, `test_lat_seconds_bucket{endpoint="b",le="0.5"} 0`) ||
		!strings.Contains(out, `test_lat_seconds_bucket{endpoint="b",le="+Inf"} 1`) {
		t.Errorf("labeled histogram buckets wrong:\n%s", out)
	}
	snap := v.Snapshot()
	if snap["alpha,404"] != 1 || snap["zeta,200"] != 3 {
		t.Errorf("snapshot %v", snap)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_conc_seconds", "Latency.", DefBuckets)
	c := r.Counter("test_conc_total", "Events.")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 {
		t.Errorf("count %d / %d, want 8000", h.Count(), c.Value())
	}
	scrape(t, r)
}

func TestRegistryShapePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("dup_total", "Dup.")
	mustPanic("duplicate name", func() { r.Counter("dup_total", "Dup.") })
	mustPanic("invalid name", func() { r.Counter("1bad", "Bad.") })
	mustPanic("unsorted buckets", func() { r.Histogram("h_seconds", "H.", []float64{1, 0.5}) })
	v := r.CounterVec("lab_total", "Lab.", "a", "b")
	mustPanic("label arity", func() { v.With("only-one") })
}

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if Trace(ctx) != "" {
		t.Fatal("empty context carries a trace id")
	}
	ctx = WithTrace(ctx, "abc123")
	if got := Trace(ctx); got != "abc123" {
		t.Fatalf("Trace = %q, want abc123", got)
	}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace id %q is not 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("trace id %q repeated", id)
		}
		seen[id] = true
	}
}

func TestInstrumentMiddleware(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, "test")
	var lines []string
	var gotCtxTrace string
	h := Instrument(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		gotCtxTrace = Trace(req.Context())
		if req.URL.Path == "/missing" {
			http.Error(w, "no", http.StatusNotFound)
			return
		}
		w.Write([]byte("ok"))
	}), m, InstrumentOptions{
		Component: "testd",
		Logf:      func(format string, args ...any) { lines = append(lines, fmt.Sprintf(format, args...)) },
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Minted trace id: none sent, one must come back and reach the handler.
	resp, err := http.Get(ts.URL + "/allocate/sub")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	minted := resp.Header.Get(TraceHeader)
	if minted == "" || minted != gotCtxTrace {
		t.Fatalf("minted trace %q, handler saw %q", minted, gotCtxTrace)
	}

	// Propagated trace id: the caller's id wins and round-trips.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/missing", nil)
	req.Header.Set(TraceHeader, "deadbeef00000000")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); got != "deadbeef00000000" {
		t.Fatalf("propagated trace came back as %q", got)
	}
	if gotCtxTrace != "deadbeef00000000" {
		t.Fatalf("handler saw trace %q", gotCtxTrace)
	}

	out := scrape(t, r)
	for _, want := range []string{
		`test_http_requests_total{endpoint="allocate",code="200"} 1`,
		`test_http_requests_total{endpoint="missing",code="404"} 1`,
		`test_http_request_seconds_count{endpoint="allocate"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2: %q", len(lines), lines)
	}
	if !strings.Contains(lines[0], "component=testd") ||
		!strings.Contains(lines[0], "trace="+minted) ||
		!strings.Contains(lines[0], "status=200") {
		t.Errorf("log line %q missing fields", lines[0])
	}
	if !strings.Contains(lines[1], "trace=deadbeef00000000") || !strings.Contains(lines[1], "status=404") {
		t.Errorf("log line %q missing fields", lines[1])
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "T.").Inc()
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if err := Lint(resp.Body); err != nil {
		t.Fatal(err)
	}
}

// histHeader is a well-formed histogram family declaration shared by the
// malformed-exposition table below.
const histHeader = "# HELP h_seconds H.\n# TYPE h_seconds histogram\n"

// TestLintRejectsMalformedExposition is the table-driven contract for the
// checker: every way this package could corrupt an exposition (or a
// hand-rolled one could lie to a scraper) is rejected with a diagnostic
// that names the problem.
func TestLintRejectsMalformedExposition(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantErr string // substring of the lint error; "" means must pass
	}{
		{"valid counter", "# HELP c_total C.\n# TYPE c_total counter\nc_total 3\n", ""},
		{"valid negative gauge", "# HELP g G.\n# TYPE g gauge\ng -1.5\n", ""},
		{"valid histogram", histHeader +
			`h_seconds_bucket{le="0.1"} 3` + "\n" + `h_seconds_bucket{le="+Inf"} 5` + "\n" +
			"h_seconds_sum 1.2\nh_seconds_count 5\n", ""},
		{"no TYPE", "some_total 3\n", "no # TYPE"},
		{"no HELP", "# TYPE c_total counter\nc_total 3\n", "no # HELP"},
		{"malformed TYPE line", "# TYPE c_total\nc_total 3\n", "malformed TYPE"},
		{"unknown metric type", "# TYPE c_total widget\nc_total 3\n", "unknown metric type"},
		{"negative counter", "# HELP c_total C.\n# TYPE c_total counter\nc_total -1\n", "non-counter value"},
		{"infinite counter", "# HELP c_total C.\n# TYPE c_total counter\nc_total +Inf\n", "non-counter value"},
		{"NaN counter", "# HELP c_total C.\n# TYPE c_total counter\nc_total NaN\n", "non-counter value"},
		{"non-numeric value", "# HELP g G.\n# TYPE g gauge\ng abc\n", "non-numeric value"},
		{"missing value", "# HELP g G.\n# TYPE g gauge\ng\n", "malformed sample"},
		{"invalid metric name", "# HELP g G.\n# TYPE g gauge\n" + `bad-name 1` + "\n", "invalid metric name"},
		{"unbalanced braces", "# HELP g G.\n# TYPE g gauge\n" + `g{a="b" 1` + "\n", "unbalanced braces"},
		{"bucket without le", histHeader + `h_seconds_bucket{shard="0"} 1` + "\n", "without le"},
		{"malformed label", histHeader + `h_seconds_bucket{le="0.1",oops} 1` + "\n", "malformed label"},
		{"bad le bound", histHeader + `h_seconds_bucket{le="wide"} 1` + "\n", "bad le"},
		{"bucket bounds not increasing", histHeader +
			`h_seconds_bucket{le="0.5"} 1` + "\n" + `h_seconds_bucket{le="0.1"} 2` + "\n",
			"bounds not increasing"},
		{"non-cumulative buckets", histHeader +
			`h_seconds_bucket{le="0.1"} 5` + "\n" + `h_seconds_bucket{le="+Inf"} 3` + "\n" +
			"h_seconds_sum 1\nh_seconds_count 3\n", "not cumulative"},
		{"missing +Inf bucket", histHeader +
			`h_seconds_bucket{le="0.1"} 5` + "\n" + "h_seconds_sum 1\nh_seconds_count 5\n",
			"no +Inf bucket"},
		{"+Inf disagrees with count", histHeader +
			`h_seconds_bucket{le="+Inf"} 4` + "\n" + "h_seconds_sum 1\nh_seconds_count 5\n",
			"+Inf bucket 4 != count 5"},
		{"buckets but no count", histHeader + `h_seconds_bucket{le="+Inf"} 4` + "\n",
			"buckets but no _count"},
		{"NaN sum", histHeader +
			`h_seconds_bucket{le="+Inf"} 0` + "\n" + "h_seconds_sum NaN\nh_seconds_count 0\n",
			"is NaN"},
		{"stray histogram sample", histHeader + "h_seconds 1\n", "stray sample"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Lint(strings.NewReader(tc.in))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("lint rejected valid exposition: %v\n%s", err, tc.in)
				}
				return
			}
			if err == nil {
				t.Fatalf("lint accepted malformed exposition:\n%s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("lint error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestGaugeVecExposition(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("test_estimate", "Estimates.", "ad")
	v.With("zeta").Set(0.75)
	v.With("alpha").Set(0.25)
	v.With("alpha").Set(0.5) // same child, last write wins
	out := scrape(t, r)
	alpha := strings.Index(out, `test_estimate{ad="alpha"} 0.5`)
	zeta := strings.Index(out, `test_estimate{ad="zeta"} 0.75`)
	if alpha < 0 || zeta < 0 || alpha > zeta {
		t.Errorf("gauge vec children missing or unsorted:\n%s", out)
	}
	snap := v.Snapshot()
	if snap["alpha"] != 0.5 || snap["zeta"] != 0.75 {
		t.Errorf("snapshot %v", snap)
	}
}
