// Trace-context propagation: a request-scoped trace id travels in
// context.Context inside a process and in the X-Trace-Id header between
// daemons (coordinator → shard RPCs), so one distributed allocation can be
// reconstructed from the structured request logs of every daemon it
// touched.

package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
)

// TraceHeader is the HTTP header trace ids travel in between daemons.
const TraceHeader = "X-Trace-Id"

// traceKey is the private context key trace ids live under.
type traceKey struct{}

// traceFallback seeds ids if the system entropy source ever fails —
// uniqueness within the process is all the logs need.
var traceFallback atomic.Uint64

// NewTraceID returns a fresh 16-hex-character trace id.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := traceFallback.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// WithTrace returns ctx carrying the trace id.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// Trace returns the trace id carried by ctx, or "" if none.
func Trace(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}
