// Package obs is the repo's dependency-free observability kit: atomic
// counters, gauges, and fixed-bucket latency histograms behind a registry
// that renders the Prometheus text exposition format (version 0.0.4), plus
// trace-id propagation helpers and an HTTP middleware that meters and
// structured-logs every request.
//
// Design constraints, in order:
//
//  1. No dependencies. The whole module is stdlib-only and the telemetry
//     layer must not be the first thing to break that — so this is the
//     ~20% of a metrics client the serving stack needs (monotonic
//     counters, scrape-time gauges, cumulative-bucket histograms, fixed
//     label sets), not a prometheus/client_golang workalike.
//  2. Hot-path writes are lock-free. Counter.Inc and Histogram.Observe
//     are a handful of atomic operations with zero allocations, cheap
//     enough to sit on the warm /allocate path; all locking and
//     formatting cost is paid at scrape time.
//  3. Label sets are fixed at registration and resolved to concrete
//     children (With), so instrumented code can cache the child and skip
//     even the map lookup per event.
//
// Metric registration is programmer-controlled startup work, so shape
// errors (duplicate names, unsorted buckets, arity-mismatched label
// values) panic rather than returning errors nobody would check.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram bounds in seconds: 100µs to
// 10s in a coarse log scale. The warm single-node allocation sits around
// 2–3ms and a cold index build at tens of seconds, so the range covers
// both with the open +Inf bucket catching builds.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing value (Prometheus type counter).
// All methods are safe for concurrent use and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (Prometheus type gauge). For
// values derived from existing state at scrape time, prefer
// Registry.GaugeFunc and keep a single source of truth.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed cumulative buckets
// (Prometheus type histogram: name_bucket{le=...}, name_sum, name_count).
// Observe is lock-free; bucket counts are stored per-interval and summed
// cumulatively at scrape time, so concurrent scrapes cost readers nothing.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds; +Inf is implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (≤ ~20): linear scan beats binary search on branch
	// prediction and is trivially correct.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reads the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// CounterVec is a counter family partitioned by a fixed set of label
// names. Children are created on first With and live forever (label
// cardinality must be bounded by construction — endpoints, status codes,
// shard slots — never request data).
type CounterVec struct {
	labels []string

	mu       sync.RWMutex
	children map[string]*Counter
}

// With returns the child counter for the given label values (one per
// label name, in registration order). The child can be cached by the
// caller to skip the lookup on hot paths.
func (v *CounterVec) With(values ...string) *Counter {
	key := vecKey(v.labels, values)
	v.mu.RLock()
	c := v.children[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[key]; c == nil {
		c = &Counter{}
		v.children[key] = c
	}
	return c
}

// Snapshot returns the current child values keyed by their joined label
// values (comma-separated for multi-label vecs) — the JSON-friendly read
// the serve layer's /stats uses.
func (v *CounterVec) Snapshot() map[string]uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]uint64, len(v.children))
	for key, c := range v.children {
		out[strings.ReplaceAll(key, vecSep, ",")] = c.Value()
	}
	return out
}

// GaugeVec is a gauge family partitioned by a fixed set of label names.
// Unlike CounterVec, gauge children can be bounded two ways: SetMaxChildren
// caps how many distinct label sets the exposition will ever hold, and
// Delete retires a child whose label value left the system (an ad removed
// from the campaign) — gauges describe current state, so a stale child is
// a lie, not history.
type GaugeVec struct {
	labels []string

	mu       sync.RWMutex
	children map[string]*Gauge
	maxKids  int
}

// SetMaxChildren caps the live child count (0 means unbounded). Once at
// the cap, With for a new label set returns a detached gauge that is
// never exposed — writes to it are safe no-ops as far as scrapes are
// concerned — so a cardinality leak degrades the metric, not the process.
func (v *GaugeVec) SetMaxChildren(n int) {
	v.mu.Lock()
	v.maxKids = n
	v.mu.Unlock()
}

// With returns the child gauge for the given label values; cacheable
// like CounterVec.With.
func (v *GaugeVec) With(values ...string) *Gauge {
	key := vecKey(v.labels, values)
	v.mu.RLock()
	g := v.children[key]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.children[key]; g == nil {
		if v.maxKids > 0 && len(v.children) >= v.maxKids {
			return &Gauge{} // detached: at cap, never exposed
		}
		g = &Gauge{}
		v.children[key] = g
	}
	return g
}

// Delete removes the child for the given label values, dropping it from
// future scrapes and freeing its cap slot. Deleting an absent child is a
// no-op. Callers holding a cached child from With must drop that cache
// too — writes to a deleted child are no longer exposed.
func (v *GaugeVec) Delete(values ...string) {
	key := vecKey(v.labels, values)
	v.mu.Lock()
	delete(v.children, key)
	v.mu.Unlock()
}

// Snapshot returns the current child values keyed by their joined label
// values, mirroring CounterVec.Snapshot.
func (v *GaugeVec) Snapshot() map[string]float64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]float64, len(v.children))
	for key, g := range v.children {
		out[strings.ReplaceAll(key, vecSep, ",")] = g.Value()
	}
	return out
}

// HistogramVec is a histogram family partitioned by a fixed set of label
// names; the same cardinality rules as CounterVec apply.
type HistogramVec struct {
	labels []string
	bounds []float64

	mu       sync.RWMutex
	children map[string]*Histogram
}

// With returns the child histogram for the given label values; cacheable
// like CounterVec.With.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := vecKey(v.labels, values)
	v.mu.RLock()
	h := v.children[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.children[key]; h == nil {
		h = &Histogram{bounds: v.bounds, counts: make([]atomic.Uint64, len(v.bounds)+1)}
		v.children[key] = h
	}
	return h
}

// vecSep joins label values into child map keys; it cannot appear in a
// label value that round-trips the exposition format anyway.
const vecSep = "\x1f"

func vecKey(labels, values []string) string {
	if len(values) != len(labels) {
		panic(fmt.Sprintf("obs: %d label values for %d labels %v", len(values), len(labels), labels))
	}
	return strings.Join(values, vecSep)
}

// family is one registered metric: its exposition header plus a renderer.
type family struct {
	name string
	help string
	typ  string // "counter" | "gauge" | "histogram"
	emit func(w *bufio.Writer)
}

// Registry holds an ordered set of metrics and renders them in the
// Prometheus text exposition format. Registration is startup-time and
// panics on duplicate names; scrapes take a read lock only around the
// registration list, never around metric writes.
type Registry struct {
	mu       sync.RWMutex
	families []family
	names    map[string]bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

func (r *Registry) register(f family) {
	if !validName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[f.name] {
		panic(fmt.Sprintf("obs: metric %q registered twice", f.name))
	}
	r.names[f.name] = true
	r.families = append(r.families, f)
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(family{name: name, help: help, typ: "counter", emit: func(w *bufio.Writer) {
		emitSample(w, name, "", formatUint(c.Value()))
	}})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for monotonic state the process already tracks elsewhere (cache
// hit atomics, lifetime sample counts), so the telemetry layer never
// double-books it.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(family{name: name, help: help, typ: "counter", emit: func(w *bufio.Writer) {
		emitSample(w, name, "", formatUint(fn()))
	}})
}

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{labels: labels, children: map[string]*Counter{}}
	r.register(family{name: name, help: help, typ: "counter", emit: func(w *bufio.Writer) {
		v.mu.RLock()
		keys := sortedKeys(v.children)
		for _, key := range keys {
			emitSample(w, name, renderLabels(labels, splitKey(key), "", 0), formatUint(v.children[key].Value()))
		}
		v.mu.RUnlock()
	}})
	return v
}

// Gauge registers and returns a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(family{name: name, help: help, typ: "gauge", emit: func(w *bufio.Writer) {
		emitSample(w, name, "", formatFloat(g.Value()))
	}})
	return g
}

// GaugeVec registers and returns a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	v := &GaugeVec{labels: labels, children: map[string]*Gauge{}}
	r.register(family{name: name, help: help, typ: "gauge", emit: func(w *bufio.Writer) {
		v.mu.RLock()
		keys := sortedKeys(v.children)
		for _, key := range keys {
			emitSample(w, name, renderLabels(labels, splitKey(key), "", 0), formatFloat(v.children[key].Value()))
		}
		v.mu.RUnlock()
	}})
	return v
}

// GaugeFunc registers a gauge computed from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(family{name: name, help: help, typ: "gauge", emit: func(w *bufio.Writer) {
		emitSample(w, name, "", formatFloat(fn()))
	}})
}

// Histogram registers and returns a histogram over the given strictly
// increasing bucket upper bounds (the +Inf bucket is implicit; pass
// DefBuckets for latencies).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	checkBuckets(buckets)
	h := &Histogram{bounds: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
	r.register(family{name: name, help: help, typ: "histogram", emit: func(w *bufio.Writer) {
		emitHistogram(w, name, nil, nil, h)
	}})
	return h
}

// HistogramVec registers and returns a labeled histogram family; every
// child shares the bucket bounds.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	checkBuckets(buckets)
	v := &HistogramVec{labels: labels, bounds: buckets, children: map[string]*Histogram{}}
	r.register(family{name: name, help: help, typ: "histogram", emit: func(w *bufio.Writer) {
		v.mu.RLock()
		keys := sortedKeys(v.children)
		for _, key := range keys {
			emitHistogram(w, name, labels, splitKey(key), v.children[key])
		}
		v.mu.RUnlock()
	}})
	return v
}

// Expose renders every registered metric in the text exposition format,
// in registration order with vec children sorted by label values.
func (r *Registry) Expose(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	families := r.families
	r.mu.RUnlock()
	for _, f := range families {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		f.emit(bw)
	}
	return bw.Flush()
}

// Handler returns the GET /metrics endpoint for this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Expose(w)
	})
}

// --- rendering helpers ----------------------------------------------------

func emitSample(w *bufio.Writer, name, labels, value string) {
	w.WriteString(name)
	w.WriteString(labels)
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

// emitHistogram writes one histogram child: cumulative buckets, sum,
// count. labels/values are nil for an unlabeled histogram.
func emitHistogram(w *bufio.Writer, name string, labels, values []string, h *Histogram) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		emitSample(w, name+"_bucket", renderLabels(labels, values, "le", bound), formatUint(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	emitSample(w, name+"_bucket", renderLabels(labels, values, "le", math.Inf(1)), formatUint(cum))
	emitSample(w, name+"_sum", renderLabels(labels, values, "", 0), formatFloat(h.Sum()))
	emitSample(w, name+"_count", renderLabels(labels, values, "", 0), formatUint(h.count.Load()))
}

// renderLabels renders `{k="v",...}` (empty string for no labels); a
// non-empty le name appends the histogram bucket bound last.
func renderLabels(labels, values []string, le string, bound float64) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(le)
		b.WriteString(`="`)
		if math.IsInf(bound, 1) {
			b.WriteString("+Inf")
		} else {
			b.WriteString(formatFloat(bound))
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func splitKey(key string) []string { return strings.Split(key, vecSep) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func checkBuckets(buckets []float64) {
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets must be strictly increasing, got %v", buckets))
		}
	}
	if math.IsInf(buckets[len(buckets)-1], 1) {
		panic("obs: +Inf bucket is implicit, do not pass it")
	}
}

// validName accepts Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
