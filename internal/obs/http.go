// HTTP server instrumentation: one middleware that meters every request
// (per-endpoint count/latency/status), establishes the trace context
// (extracting X-Trace-Id or minting one), echoes the id on the response,
// and emits a structured key=value request log line.

package obs

import (
	"net/http"
	"strconv"
	"strings"
	"time"
)

// HTTPMetrics is the per-endpoint request telemetry Instrument records.
type HTTPMetrics struct {
	// Requests counts completed requests by endpoint and status code.
	Requests *CounterVec
	// Latency is the per-endpoint request duration histogram in seconds.
	Latency *HistogramVec
}

// NewHTTPMetrics registers the standard request metrics under
// prefix_http_requests_total and prefix_http_request_seconds.
func NewHTTPMetrics(r *Registry, prefix string) *HTTPMetrics {
	return &HTTPMetrics{
		Requests: r.CounterVec(prefix+"_http_requests_total",
			"Completed HTTP requests by endpoint and status code.", "endpoint", "code"),
		Latency: r.HistogramVec(prefix+"_http_request_seconds",
			"HTTP request duration in seconds by endpoint.", DefBuckets, "endpoint"),
	}
}

// InstrumentOptions shapes the Instrument middleware.
type InstrumentOptions struct {
	// Component tags the log lines (component=adserver, component=adshard).
	Component string
	// Logf receives one structured key=value line per request; nil
	// disables request logging (metrics and trace propagation still run).
	Logf func(format string, args ...any)
	// Endpoint maps a request onto its metric label. It must return a
	// bounded set of values — label cardinality is forever. Nil uses the
	// first path segment ("/ads/banner-3" → "ads"), which is bounded for
	// mux-routed APIs.
	Endpoint func(r *http.Request) string
	// Tracer, when set, opens one server span ("http.<endpoint>") per
	// request, adopting the remote parent declared by X-Span-Id /
	// X-Trace-Flags; nil keeps the flat trace-id behaviour.
	Tracer *Tracer
}

// Instrument wraps next so every request is metered into m, carries a
// trace id in its context (minted unless the client sent X-Trace-Id), has
// that id echoed on the response, and is logged as one key=value line.
func Instrument(next http.Handler, m *HTTPMetrics, o InstrumentOptions) http.Handler {
	endpoint := o.Endpoint
	if endpoint == nil {
		endpoint = DefaultEndpoint
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		trace := r.Header.Get(TraceHeader)
		if trace == "" {
			trace = NewTraceID()
		}
		w.Header().Set(TraceHeader, trace)
		ctx := WithTrace(r.Context(), trace)
		ep := endpoint(r)
		var span *Span
		if o.Tracer != nil {
			if sc, ok := ExtractSpanContext(r.Header); ok {
				ctx = WithRemote(ctx, sc)
			}
			ctx, span = o.Tracer.StartSpan(ctx, "http."+ep)
			span.SetStr("method", r.Method)
			span.SetStr("path", r.URL.Path)
		}
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		seconds := time.Since(start).Seconds()
		if span != nil {
			span.SetInt("status", int64(sw.code))
			if sw.code >= http.StatusInternalServerError {
				span.SetError("http " + strconv.Itoa(sw.code))
			}
			span.End()
		}
		m.Requests.With(ep, strconv.Itoa(sw.code)).Inc()
		m.Latency.With(ep).Observe(seconds)
		if o.Logf != nil {
			o.Logf("component=%s trace=%s method=%s path=%s status=%d durMs=%.3f",
				o.Component, trace, r.Method, r.URL.Path, sw.code, seconds*1e3)
		}
	})
}

// DefaultEndpoint is Instrument's default label mapping: the first path
// segment, or "root" for "/".
func DefaultEndpoint(r *http.Request) string {
	p := strings.TrimPrefix(r.URL.Path, "/")
	if i := strings.IndexByte(p, '/'); i >= 0 {
		p = p[:i]
	}
	if p == "" {
		return "root"
	}
	return p
}

// statusWriter captures the response status code for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	code int
}

// WriteHeader records the code before delegating.
func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer when it streams.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
