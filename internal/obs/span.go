// Span-level tracing: a dependency-free span tree per trace id, assembled
// in-process and retained tail-based — the trace is kept or dropped only
// once its root span ends and the whole story (latency, errors, retries,
// failovers) is known. Span context travels in context.Context inside a
// process and in X-Trace-Id / X-Span-Id / X-Trace-Flags between daemons,
// riding the same propagation path the flat trace ids already use.
//
// Design constraints, matching the rest of internal/obs:
//
//   - Zero cost when unused: StartSpan with no tracer and no parent in ctx
//     returns a nil *Span, and every Span method is nil-receiver safe, so
//     instrumented call sites pay one context lookup and nothing else.
//   - Never perturb the work: spans observe — timestamps are monotonic
//     (time.Time's monotonic reading), attributes are integers plus
//     bounded strings, and nothing feeds back into allocation state.
//   - Deterministic retention: the only non-forced retention path is a
//     counter-based head sample (every Nth trace), never randomness, so
//     tests can pin exactly which traces survive a pinned workload.

package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SpanHeader is the HTTP header the parent span id travels in between
// daemons (alongside TraceHeader, which carries the trace id).
const SpanHeader = "X-Span-Id"

// FlagsHeader is the HTTP header trace flags travel in; "1" (or "01",
// traceparent-style) marks the trace as explicitly sampled.
const FlagsHeader = "X-Trace-Flags"

// FlagSampled marks a trace as explicitly sampled: the tail-retention
// decision always keeps it, whatever its latency or outcome.
const FlagSampled uint8 = 1

// RetainReason says why a finished trace was kept (or, for RetainNone,
// dropped). Reasons are ordered by precedence: a trace that both erred and
// ran long reports "error".
type RetainReason uint8

// Retention reasons, in precedence order.
const (
	// RetainNone marks a dropped trace.
	RetainNone RetainReason = iota
	// RetainError: some span ended with an error.
	RetainError
	// RetainFailover: a replica failover event was recorded.
	RetainFailover
	// RetainRetry: an RPC retry event was recorded.
	RetainRetry
	// RetainLatency: the root span exceeded the tracer's threshold.
	RetainLatency
	// RetainSampled: the trace carried FlagSampled (X-Trace-Flags: 1).
	RetainSampled
	// RetainHead: kept by the deterministic 1-in-N head sample.
	RetainHead
)

// String renders the reason as its metric label.
func (r RetainReason) String() string {
	switch r {
	case RetainError:
		return "error"
	case RetainFailover:
		return "failover"
	case RetainRetry:
		return "retry"
	case RetainLatency:
		return "latency"
	case RetainSampled:
		return "sampled"
	case RetainHead:
		return "head"
	default:
		return "none"
	}
}

// SpanContext is the wire form of a span's identity — what Inject writes
// into outgoing headers and the Instrument middleware reads back.
type SpanContext struct {
	// TraceID is the 16-hex trace id (TraceHeader).
	TraceID string
	// SpanID is the parent span id (SpanHeader).
	SpanID string
	// Flags carries the trace flags (FlagsHeader); see FlagSampled.
	Flags uint8
}

// Attr is one integer span or event attribute.
type Attr struct {
	// Key names the attribute.
	Key string
	// Val is the attribute value.
	Val int64
}

// Int builds an integer attribute.
func Int(key string, val int64) Attr { return Attr{Key: key, Val: val} }

// Per-span bounds: attributes and events beyond these are dropped, and
// string values are truncated, so a hostile or looping caller cannot grow
// a span without limit.
const (
	maxSpanAttrs    = 16
	maxSpanStrAttrs = 8
	maxSpanEvents   = 64
	maxStrLen       = 128
)

// TracerConfig shapes a Tracer. The zero value is usable: every field
// defaults via withDefaults.
type TracerConfig struct {
	// Capacity is the ring-buffer size in retained traces (default 256);
	// the oldest retained trace is evicted when a newer one commits.
	Capacity int
	// MaxSpans caps the spans stored per trace (default 512); later spans
	// still time their work but are not recorded.
	MaxSpans int
	// LatencyThreshold tail-retains any trace whose root span ran at least
	// this long (default 250ms).
	LatencyThreshold time.Duration
	// SampleEvery head-samples unremarkable traces deterministically: the
	// 1st, N+1st, 2N+1st, … trace that no tail rule claimed is kept
	// (default 16; 1 keeps everything).
	SampleEvery int
}

// withDefaults fills unset fields with the documented defaults.
func (c TracerConfig) withDefaults() TracerConfig {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 512
	}
	if c.LatencyThreshold <= 0 {
		c.LatencyThreshold = 250 * time.Millisecond
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 16
	}
	return c
}

// Tracer assembles spans into traces and retains finished traces in a
// fixed-size ring buffer under the tail-based policy. A nil *Tracer is a
// valid no-op tracer.
type Tracer struct {
	cfg TracerConfig

	mu       sync.Mutex
	ring     []*TraceData // fixed size cfg.Capacity; nil slots until warm
	next     int          // ring write cursor
	headSeen uint64       // deterministic head-sample counter

	// Optional metrics, wired by EnableMetrics; nil until then.
	spansTotal *Counter
	retained   *CounterVec
	dropped    *Counter
}

// NewTracer builds a tracer with the given config.
func NewTracer(cfg TracerConfig) *Tracer {
	cfg = cfg.withDefaults()
	return &Tracer{cfg: cfg, ring: make([]*TraceData, cfg.Capacity)}
}

// EnableMetrics registers the tracer's exposition families on r:
// {prefix}_trace_spans_total (spans recorded), {prefix}_traces_retained_total
// {reason}, and {prefix}_traces_dropped_total (head-sample discards).
func (t *Tracer) EnableMetrics(r *Registry, prefix string) {
	if t == nil {
		return
	}
	t.spansTotal = r.Counter(prefix+"_trace_spans_total",
		"Spans recorded by the in-process tracer (before trace retention is decided).")
	t.retained = r.CounterVec(prefix+"_traces_retained_total",
		"Finished traces kept by the tail-based retention policy, by reason (error, failover, retry, latency, sampled, head).",
		"reason")
	t.dropped = r.Counter(prefix+"_traces_dropped_total",
		"Finished traces discarded by the deterministic head sample.")
}

// spanKey carries the active *Span in a context.
type spanKey struct{}

// remoteKey carries an extracted remote SpanContext in a context.
type remoteKey struct{}

// WithSpan returns ctx carrying s as the active span.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// ContextSpan returns the active span carried by ctx, or nil.
func ContextSpan(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// WithRemote returns ctx carrying an extracted remote span context — the
// parent identity an incoming request's headers declared.
func WithRemote(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, remoteKey{}, sc)
}

// Remote returns the remote span context carried by ctx, if any.
func Remote(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(remoteKey{}).(SpanContext)
	return sc, ok
}

// Inject writes the active span context (or, lacking a span, the bare
// trace id) into outgoing request headers — the client half of
// propagation, called by shard.HTTPClient on every RPC.
func Inject(ctx context.Context, h http.Header) {
	if s := ContextSpan(ctx); s != nil {
		h.Set(TraceHeader, s.TraceID())
		h.Set(SpanHeader, s.ID())
		if s.flags != 0 {
			h.Set(FlagsHeader, strconv.Itoa(int(s.flags)))
		}
		return
	}
	if trace := Trace(ctx); trace != "" {
		h.Set(TraceHeader, trace)
	}
}

// ExtractSpanContext reads the incoming span context from request headers —
// the server half of propagation, called by the Instrument middleware.
// ok reports whether any span-level header was present (a bare X-Trace-Id
// is handled by the middleware's existing trace extraction).
func ExtractSpanContext(h http.Header) (SpanContext, bool) {
	sc := SpanContext{
		TraceID: h.Get(TraceHeader),
		SpanID:  h.Get(SpanHeader),
	}
	flags := strings.TrimSpace(h.Get(FlagsHeader))
	if flags != "" {
		// Accept both "1" and the traceparent-style "01".
		if v, err := strconv.ParseUint(strings.TrimPrefix(flags, "0"), 10, 8); err == nil {
			sc.Flags = uint8(v)
		}
	}
	return sc, sc.SpanID != "" || sc.Flags != 0
}

// StartSpan starts a child of the span carried by ctx. With no active span
// it is a no-op returning (ctx, nil) — the zero-cost path every
// instrumented call site relies on.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := ContextSpan(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.newChild(name)
	return WithSpan(ctx, child), child
}

// StartSpan starts a span under t: a child of the span in ctx if there is
// one, otherwise a new root span for the trace id in ctx (minting one if
// absent, adopting a remote parent from WithRemote if present). The
// returned context carries the span; a nil tracer returns (ctx, nil).
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if parent := ContextSpan(ctx); parent != nil {
		child := parent.newChild(name)
		return WithSpan(ctx, child), child
	}
	traceID := Trace(ctx)
	var parentID string
	var flags uint8
	if sc, ok := Remote(ctx); ok {
		parentID = sc.SpanID
		flags = sc.Flags
		if sc.TraceID != "" {
			traceID = sc.TraceID
		}
	}
	if traceID == "" {
		traceID = NewTraceID()
		ctx = WithTrace(ctx, traceID)
	}
	now := time.Now()
	rec := &traceRec{tracer: t, id: traceID, start: now}
	s := &Span{
		rec:    rec,
		name:   boundStr(name),
		id:     NewTraceID(),
		parent: parentID,
		flags:  flags,
		start:  now,
		root:   true,
	}
	rec.rootName = s.name
	return WithSpan(ctx, s), s
}

// traceRec is one trace being assembled: spans append as they end, and the
// root span's End finalizes the retention decision.
type traceRec struct {
	tracer *Tracer
	id     string
	start  time.Time // wall + monotonic; all offsets are monotonic deltas

	mu        sync.Mutex
	spans     []SpanData
	retain    [RetainHead + 1]bool // tail signals accumulated from spans
	rootName  string
	finalized bool
}

// Span is one node of a trace's span tree. All methods are safe on a nil
// receiver (no-ops), and a single span's methods may be called from the
// goroutine that owns it while siblings run concurrently.
type Span struct {
	rec    *traceRec
	name   string
	id     string
	parent string
	flags  uint8
	start  time.Time
	root   bool

	mu     sync.Mutex
	attrs  []Attr
	strs   [][2]string
	events []EventData
	errMsg string
	ended  bool
}

// newChild derives a child span. Receiver may be nil.
func (s *Span) newChild(name string) *Span {
	if s == nil || s.rec == nil {
		return nil
	}
	return &Span{
		rec:    s.rec,
		name:   boundStr(name),
		id:     NewTraceID(),
		parent: s.id,
		flags:  s.flags,
		start:  time.Now(),
	}
}

// TraceID returns the span's trace id ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.rec.id
}

// ID returns the span id ("" on nil).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Sampled reports whether the trace carries FlagSampled.
func (s *Span) Sampled() bool { return s != nil && s.flags&FlagSampled != 0 }

// SetInt records one integer attribute (bounded; excess attrs drop).
func (s *Span) SetInt(key string, val int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if len(s.attrs) < maxSpanAttrs {
		s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	}
	s.mu.Unlock()
}

// SetStr records one string attribute, truncated to 128 bytes (bounded;
// excess attrs drop).
func (s *Span) SetStr(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if len(s.strs) < maxSpanStrAttrs {
		s.strs = append(s.strs, [2]string{key, boundStr(val)})
	}
	s.mu.Unlock()
}

// Event records a point-in-time event on the span (bounded; excess events
// drop). Event names double as the waterfall annotation, so keep them
// short and bounded ("retry.timeout", "failover", "commit").
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	at := time.Since(s.rec.start).Nanoseconds()
	s.mu.Lock()
	if len(s.events) < maxSpanEvents {
		ev := EventData{Name: boundStr(name), AtNs: at}
		if len(attrs) > 0 {
			ev.Attrs = make(map[string]int64, len(attrs))
			for _, a := range attrs {
				ev.Attrs[a.Key] = a.Val
			}
		}
		s.events = append(s.events, ev)
	}
	s.mu.Unlock()
}

// SetError marks the span failed; the trace is tail-retained with reason
// "error".
func (s *Span) SetError(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.errMsg = boundStr(msg)
	s.mu.Unlock()
	s.Retain(RetainError)
}

// Retain raises one tail-retention signal (failover, retry, …) for the
// whole trace; the strongest signal becomes the retention reason.
func (s *Span) Retain(r RetainReason) {
	if s == nil || r == RetainNone || r > RetainHead {
		return
	}
	s.rec.mu.Lock()
	s.rec.retain[r] = true
	s.rec.mu.Unlock()
}

// AddChild records an already-finished synthetic child span — how the
// serve layer turns core's per-phase wall times into waterfall rows.
// offset is relative to s's own start.
func (s *Span) AddChild(name string, offset, dur time.Duration, attrs ...Attr) {
	if s == nil {
		return
	}
	sd := SpanData{
		ID:      NewTraceID(),
		Parent:  s.id,
		Name:    boundStr(name),
		StartNs: s.start.Sub(s.rec.start).Nanoseconds() + offset.Nanoseconds(),
		DurNs:   dur.Nanoseconds(),
	}
	if len(attrs) > 0 {
		sd.Attrs = make(map[string]int64, len(attrs))
		for _, a := range attrs {
			sd.Attrs[a.Key] = a.Val
		}
	}
	s.rec.add(sd)
}

// End finishes the span, recording it into its trace; ending the root span
// finalizes the trace and runs the retention decision. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	sd := SpanData{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartNs: s.start.Sub(s.rec.start).Nanoseconds(),
		DurNs:   dur.Nanoseconds(),
		Error:   s.errMsg,
		Events:  s.events,
	}
	if len(s.attrs) > 0 {
		sd.Attrs = make(map[string]int64, len(s.attrs))
		for _, a := range s.attrs {
			sd.Attrs[a.Key] = a.Val
		}
	}
	if len(s.strs) > 0 {
		sd.Strs = make(map[string]string, len(s.strs))
		for _, kv := range s.strs {
			sd.Strs[kv[0]] = kv[1]
		}
	}
	s.mu.Unlock()
	s.rec.add(sd)
	if s.root {
		s.rec.finalize(dur, s.flags)
	}
}

// EndErr is End with an error mark when err is non-nil.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.SetError(err.Error())
	}
	s.End()
}

// add appends one finished span to the trace, bounded by MaxSpans.
func (r *traceRec) add(sd SpanData) {
	t := r.tracer
	r.mu.Lock()
	if !r.finalized && len(r.spans) < t.cfg.MaxSpans {
		r.spans = append(r.spans, sd)
		if sd.Error != "" {
			r.retain[RetainError] = true
		}
		r.mu.Unlock()
		if t.spansTotal != nil {
			t.spansTotal.Inc()
		}
		return
	}
	r.mu.Unlock()
}

// finalize runs the tail-based retention decision once the root span ends.
func (r *traceRec) finalize(dur time.Duration, flags uint8) {
	t := r.tracer
	r.mu.Lock()
	if r.finalized {
		r.mu.Unlock()
		return
	}
	r.finalized = true
	reason := RetainNone
	for _, cand := range [...]RetainReason{RetainError, RetainFailover, RetainRetry} {
		if r.retain[cand] {
			reason = cand
			break
		}
	}
	if reason == RetainNone && dur >= t.cfg.LatencyThreshold {
		reason = RetainLatency
	}
	if reason == RetainNone && flags&FlagSampled != 0 {
		reason = RetainSampled
	}
	spans := r.spans
	r.spans = nil
	r.mu.Unlock()

	t.mu.Lock()
	if reason == RetainNone {
		// Deterministic head sample: the 1st, N+1st, … unremarkable trace.
		t.headSeen++
		if (t.headSeen-1)%uint64(t.cfg.SampleEvery) == 0 {
			reason = RetainHead
		}
	}
	if reason == RetainNone {
		t.mu.Unlock()
		if t.dropped != nil {
			t.dropped.Inc()
		}
		return
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartNs < spans[j].StartNs })
	t.ring[t.next] = &TraceData{
		ID:            r.id,
		Root:          r.rootName,
		StartUnixNano: r.start.UnixNano(),
		DurNs:         dur.Nanoseconds(),
		Reason:        reason.String(),
		Spans:         spans,
	}
	t.next = (t.next + 1) % len(t.ring)
	t.mu.Unlock()
	if t.retained != nil {
		t.retained.With(reason.String()).Inc()
	}
}

// EventData is one span event in a trace's JSON rendering.
type EventData struct {
	// Name labels the event ("retry.timeout", "failover", "commit").
	Name string `json:"name"`
	// AtNs is the event's monotonic offset from the trace start.
	AtNs int64 `json:"atNs"`
	// Attrs carries the event's integer attributes.
	Attrs map[string]int64 `json:"attrs,omitempty"`
}

// SpanData is one finished span in a trace's JSON rendering.
type SpanData struct {
	// ID is the span id.
	ID string `json:"id"`
	// Parent is the parent span id ("" for the root and for spans whose
	// parent lives in another process).
	Parent string `json:"parent,omitempty"`
	// Name is the span name.
	Name string `json:"name"`
	// StartNs is the span's monotonic offset from the trace start.
	StartNs int64 `json:"startNs"`
	// DurNs is the span's duration in nanoseconds.
	DurNs int64 `json:"durNs"`
	// Attrs carries the integer attributes.
	Attrs map[string]int64 `json:"attrs,omitempty"`
	// Strs carries the bounded string attributes.
	Strs map[string]string `json:"strs,omitempty"`
	// Events carries the span's point-in-time events.
	Events []EventData `json:"events,omitempty"`
	// Error is the span's error message, if it failed.
	Error string `json:"error,omitempty"`
}

// TraceData is one retained trace: the GET /debug/traces/{id} payload.
type TraceData struct {
	// ID is the trace id.
	ID string `json:"id"`
	// Root names the root span.
	Root string `json:"root"`
	// StartUnixNano is the trace's wall-clock start.
	StartUnixNano int64 `json:"startUnixNano"`
	// DurNs is the root span's duration in nanoseconds.
	DurNs int64 `json:"durNs"`
	// Reason says which retention rule kept the trace.
	Reason string `json:"reason"`
	// Spans lists every recorded span, ordered by start offset.
	Spans []SpanData `json:"spans"`
}

// Err reports whether any span of the trace failed.
func (td *TraceData) Err() bool {
	for _, s := range td.Spans {
		if s.Error != "" {
			return true
		}
	}
	return false
}

// TraceSummary is one retained trace's GET /debug/traces row.
type TraceSummary struct {
	// ID is the trace id.
	ID string `json:"id"`
	// Root names the root span.
	Root string `json:"root"`
	// StartUnixNano is the trace's wall-clock start.
	StartUnixNano int64 `json:"startUnixNano"`
	// DurNs is the root span's duration in nanoseconds.
	DurNs int64 `json:"durNs"`
	// Spans counts the recorded spans.
	Spans int `json:"spans"`
	// Error reports whether any span failed.
	Error bool `json:"error"`
	// Reason says which retention rule kept the trace.
	Reason string `json:"reason"`
}

// Summaries lists retained traces newest-first, filtered to those at least
// minDur long (0 keeps all) and, when onlyErr is set, to traces with a
// failed span. limit caps the result (≤ 0 means no cap).
func (t *Tracer) Summaries(minDur time.Duration, onlyErr bool, limit int) []TraceSummary {
	if t == nil {
		return nil
	}
	var out []TraceSummary
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.ring)
	for i := 0; i < n; i++ {
		td := t.ring[((t.next-1-i)%n+n)%n]
		if td == nil {
			continue
		}
		if td.DurNs < minDur.Nanoseconds() {
			continue
		}
		isErr := td.Err()
		if onlyErr && !isErr {
			continue
		}
		out = append(out, TraceSummary{
			ID:            td.ID,
			Root:          td.Root,
			StartUnixNano: td.StartUnixNano,
			DurNs:         td.DurNs,
			Spans:         len(td.Spans),
			Error:         isErr,
			Reason:        td.Reason,
		})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Get returns the newest retained trace with the given id.
func (t *Tracer) Get(id string) (TraceData, bool) {
	if t == nil {
		return TraceData{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.ring)
	for i := 0; i < n; i++ {
		td := t.ring[((t.next-1-i)%n+n)%n]
		if td != nil && td.ID == id {
			return *td, true
		}
	}
	return TraceData{}, false
}

// Handler serves the trace store over HTTP. Mount it at both
// "/debug/traces" (summaries; query params min_ms, error=1, limit) and
// "/debug/traces/" (full span tree by id suffix).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := strings.Trim(strings.TrimPrefix(r.URL.Path, "/debug/traces"), "/")
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		if id != "" {
			td, ok := t.Get(id)
			if !ok {
				w.WriteHeader(http.StatusNotFound)
				enc.Encode(map[string]string{"error": "no retained trace " + id})
				return
			}
			enc.Encode(td)
			return
		}
		q := r.URL.Query()
		minMS, _ := strconv.Atoi(q.Get("min_ms"))
		limit, _ := strconv.Atoi(q.Get("limit"))
		onlyErr := q.Get("error") == "1" || q.Get("error") == "true"
		sums := t.Summaries(time.Duration(minMS)*time.Millisecond, onlyErr, limit)
		if sums == nil {
			sums = []TraceSummary{}
		}
		enc.Encode(sums)
	})
}

// boundStr truncates a string to the per-span bound.
func boundStr(s string) string {
	if len(s) > maxStrLen {
		return s[:maxStrLen]
	}
	return s
}
