// Lint validates a Prometheus text exposition — the checker behind the
// /metrics tests. It is deliberately strict about the invariants scrape
// consumers rely on (typed families, numeric values, cumulative monotone
// histogram buckets closed by +Inf and agreeing with _count) and
// deliberately ignorant of anything this package never emits.

package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Lint checks a text-format exposition for well-formedness: every sample
// belongs to a family declared with # TYPE (and # HELP), values are
// numeric, counters are finite and non-negative, and every histogram
// child has non-decreasing cumulative buckets ending in a +Inf bucket
// equal to its _count. Returns the first violation found.
func Lint(r io.Reader) error {
	types := map[string]string{}     // family → type
	help := map[string]bool{}        // family → has HELP
	hists := map[string]*histCheck{} // family+labels(without le) → bucket state
	counts := map[string]float64{}   // family+labels → _count value (histograms)
	infs := map[string]float64{}     // family+labels → +Inf bucket value
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "# HELP ") {
			fields := strings.SplitN(strings.TrimPrefix(text, "# HELP "), " ", 2)
			help[fields[0]] = true
			continue
		}
		if strings.HasPrefix(text, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(text, "# TYPE "))
			if len(fields) != 2 {
				return fmt.Errorf("line %d: malformed TYPE line %q", line, text)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", line, fields[1])
			}
			types[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue
		}
		name, labels, value, err := parseSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		fam, sample := familyOf(name, types)
		typ, ok := types[fam]
		if !ok {
			return fmt.Errorf("line %d: sample %s has no # TYPE declaration", line, name)
		}
		if !help[fam] {
			return fmt.Errorf("line %d: family %s has no # HELP line", line, fam)
		}
		switch typ {
		case "counter":
			if math.IsNaN(value) || math.IsInf(value, 0) || value < 0 {
				return fmt.Errorf("line %d: counter %s has non-counter value %v", line, name, value)
			}
		case "histogram":
			switch sample {
			case "_bucket":
				le, rest, err := splitLE(labels)
				if err != nil {
					return fmt.Errorf("line %d: %s: %v", line, name, err)
				}
				key := fam + "{" + rest + "}"
				hc := hists[key]
				if hc == nil {
					hc = &histCheck{lastLE: math.Inf(-1)}
					hists[key] = hc
				}
				if le <= hc.lastLE {
					return fmt.Errorf("line %d: %s bucket bounds not increasing (le=%v after %v)", line, key, le, hc.lastLE)
				}
				if value < hc.lastCum {
					return fmt.Errorf("line %d: %s buckets not cumulative (%v after %v at le=%v)", line, key, value, hc.lastCum, le)
				}
				hc.lastLE, hc.lastCum = le, value
				if math.IsInf(le, 1) {
					infs[key] = value
				}
			case "_count":
				counts[fam+"{"+labels+"}"] = value
			case "_sum":
				if math.IsNaN(value) {
					return fmt.Errorf("line %d: %s is NaN", line, name)
				}
			default:
				return fmt.Errorf("line %d: histogram family %s has stray sample %s", line, fam, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, want := range counts {
		inf, ok := infs[key]
		if !ok {
			return fmt.Errorf("histogram %s has no +Inf bucket", key)
		}
		if inf != want {
			return fmt.Errorf("histogram %s: +Inf bucket %v != count %v", key, inf, want)
		}
	}
	for key := range infs {
		if _, ok := counts[key]; !ok {
			return fmt.Errorf("histogram %s has buckets but no _count", key)
		}
	}
	return nil
}

// histCheck tracks one histogram child's bucket progression.
type histCheck struct {
	lastLE  float64
	lastCum float64
}

// parseSample splits `name{labels} value` (labels optional).
func parseSample(text string) (name, labels string, value float64, err error) {
	rest := text
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", text)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", text)
		}
		name, rest = fields[0], fields[1]
	}
	value, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("non-numeric value in %q: %v", text, err)
	}
	if !validName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	return name, labels, value, nil
}

// familyOf strips a histogram sample suffix when the base family is a
// declared histogram, returning (family, suffix).
func familyOf(name string, types map[string]string) (fam, sample string) {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base, suffix
		}
	}
	return name, ""
}

// splitLE extracts the le bound from a bucket's label string and returns
// the remaining labels in sorted order (so children group stably).
func splitLE(labels string) (le float64, rest string, err error) {
	parts := splitLabels(labels)
	var others []string
	found := false
	for _, p := range parts {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			return 0, "", fmt.Errorf("malformed label %q", p)
		}
		v = strings.Trim(v, `"`)
		if k == "le" {
			found = true
			if v == "+Inf" {
				le = math.Inf(1)
			} else if le, err = strconv.ParseFloat(v, 64); err != nil {
				return 0, "", fmt.Errorf("bad le %q", v)
			}
			continue
		}
		others = append(others, p)
	}
	if !found {
		return 0, "", fmt.Errorf("bucket sample without le label in {%s}", labels)
	}
	sort.Strings(others)
	return le, strings.Join(others, ","), nil
}

// splitLabels splits `k1="v1",k2="v2"` respecting quoted commas.
func splitLabels(labels string) []string {
	if labels == "" {
		return nil
	}
	var out []string
	var b strings.Builder
	inQuote := false
	for i := 0; i < len(labels); i++ {
		c := labels[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(labels):
			b.WriteByte(c)
			i++
			b.WriteByte(labels[i])
		case c == '"':
			inQuote = !inQuote
			b.WriteByte(c)
		case c == ',' && !inQuote:
			out = append(out, b.String())
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	if b.Len() > 0 {
		out = append(out, b.String())
	}
	return out
}
