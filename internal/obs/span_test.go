package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// slowConfig retains nothing by tail rules except what the test forces:
// the latency threshold is unreachable and head sampling keeps only the
// very first unremarkable trace per SampleEvery window.
func slowConfig(capacity, every int) TracerConfig {
	return TracerConfig{Capacity: capacity, LatencyThreshold: time.Hour, SampleEvery: every}
}

// sampled returns a context that forces retention (reason "sampled") for
// the next root span started from it.
func sampled(ctx context.Context) context.Context {
	return WithRemote(ctx, SpanContext{Flags: FlagSampled})
}

func TestSpanTreeAssembly(t *testing.T) {
	tr := NewTracer(slowConfig(4, 1))
	ctx := WithTrace(context.Background(), "trace-tree")
	ctx, root := tr.StartSpan(ctx, "http.allocate")
	root.SetStr("method", "POST")
	root.SetInt("status", 200)

	cctx, alloc := StartSpan(ctx, "alloc")
	alloc.Event("commit", Int("round", 1), Int("ad", 3))
	alloc.AddChild("phase.estimate", 0, time.Millisecond, Int("rounds", 2))
	_, rpc := StartSpan(cctx, "rpc.cover")
	rpc.SetStr("replica", "0/1")
	rpc.End()
	alloc.End()
	root.End()

	td, ok := tr.Get("trace-tree")
	if !ok {
		t.Fatal("trace not retained")
	}
	if td.Root != "http.allocate" || len(td.Spans) != 4 {
		t.Fatalf("got root %q, %d spans, want http.allocate with 4", td.Root, len(td.Spans))
	}
	byName := map[string]SpanData{}
	for _, s := range td.Spans {
		byName[s.Name] = s
	}
	rootSD := byName["http.allocate"]
	if rootSD.Parent != "" || rootSD.Strs["method"] != "POST" || rootSD.Attrs["status"] != 200 {
		t.Fatalf("bad root span: %+v", rootSD)
	}
	allocSD := byName["alloc"]
	if allocSD.Parent != rootSD.ID {
		t.Fatalf("alloc parent = %q, want root %q", allocSD.Parent, rootSD.ID)
	}
	if len(allocSD.Events) != 1 || allocSD.Events[0].Name != "commit" || allocSD.Events[0].Attrs["ad"] != 3 {
		t.Fatalf("bad alloc events: %+v", allocSD.Events)
	}
	if byName["rpc.cover"].Parent != allocSD.ID || byName["rpc.cover"].Strs["replica"] != "0/1" {
		t.Fatalf("bad rpc span: %+v", byName["rpc.cover"])
	}
	phase := byName["phase.estimate"]
	if phase.Parent != allocSD.ID || phase.DurNs != time.Millisecond.Nanoseconds() || phase.Attrs["rounds"] != 2 {
		t.Fatalf("bad synthetic child: %+v", phase)
	}
	for i := 1; i < len(td.Spans); i++ {
		if td.Spans[i-1].StartNs > td.Spans[i].StartNs {
			t.Fatalf("spans not sorted by start: %d before %d", td.Spans[i-1].StartNs, td.Spans[i].StartNs)
		}
	}
}

func TestNilSpanSafety(t *testing.T) {
	ctx, span := StartSpan(context.Background(), "orphan")
	if span != nil {
		t.Fatal("span without a tracer should be nil")
	}
	// Every method must be a no-op on nil, including via a nil tracer.
	var nilTracer *Tracer
	ctx, span = nilTracer.StartSpan(ctx, "still-orphan")
	span.SetInt("k", 1)
	span.SetStr("k", "v")
	span.Event("e", Int("a", 2))
	span.SetError("boom")
	span.Retain(RetainFailover)
	span.AddChild("c", 0, time.Millisecond)
	span.EndErr(nil)
	span.End()
	if span.TraceID() != "" || span.ID() != "" || span.Sampled() {
		t.Fatal("nil span should report zero values")
	}
	if ContextSpan(ctx) != nil {
		t.Fatal("nil span must not be stored in context")
	}
	if got := nilTracer.Summaries(0, false, 0); got != nil {
		t.Fatalf("nil tracer summaries = %v", got)
	}
}

func TestRetentionReasons(t *testing.T) {
	tr := NewTracer(slowConfig(16, 1_000_000))
	start := func(id string) (context.Context, *Span) {
		return tr.StartSpan(WithTrace(context.Background(), id), "op")
	}

	// First unremarkable trace is the head sample...
	_, s := start("head")
	s.End()
	// ...the next ones drop.
	_, s = start("dropped")
	s.End()

	ctx, s := start("with-error")
	_, c := StartSpan(ctx, "child")
	c.EndErr(fmt.Errorf("rpc exploded"))
	s.End()

	ctx, s = start("with-failover")
	_, c = StartSpan(ctx, "child")
	c.Retain(RetainFailover)
	c.End()
	s.End()

	ctx, s = start("with-retry")
	_, c = StartSpan(ctx, "child")
	c.Retain(RetainRetry)
	c.End()
	s.End()

	_, s = tr.StartSpan(sampled(WithTrace(context.Background(), "flagged")), "op")
	if !s.Sampled() {
		t.Fatal("remote sampled flag not adopted")
	}
	s.End()

	want := map[string]string{
		"head":          "head",
		"with-error":    "error",
		"with-failover": "failover",
		"with-retry":    "retry",
		"flagged":       "sampled",
	}
	for id, reason := range want {
		td, ok := tr.Get(id)
		if !ok {
			t.Fatalf("trace %s not retained", id)
		}
		if td.Reason != reason {
			t.Errorf("trace %s retained as %q, want %q", id, td.Reason, reason)
		}
	}
	if _, ok := tr.Get("dropped"); ok {
		t.Fatal("unremarkable trace should have been dropped")
	}
	// Error beats every other signal when several fire at once.
	ctx, s = tr.StartSpan(sampled(WithTrace(context.Background(), "multi")), "op")
	_, c = StartSpan(ctx, "child")
	c.Retain(RetainRetry)
	c.SetError("also failed")
	c.End()
	s.End()
	if td, _ := tr.Get("multi"); td.Reason != "error" {
		t.Fatalf("multi-signal trace retained as %q, want error", td.Reason)
	}
}

func TestLatencyRetention(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 4, LatencyThreshold: time.Nanosecond, SampleEvery: 1 << 30})
	_, s := tr.StartSpan(WithTrace(context.Background(), "slow"), "op")
	time.Sleep(time.Millisecond)
	s.End()
	td, ok := tr.Get("slow")
	if !ok || td.Reason != "latency" {
		t.Fatalf("slow trace: ok=%v reason=%q, want latency", ok, td.Reason)
	}
	if td.DurNs <= 0 {
		t.Fatalf("non-positive duration %d", td.DurNs)
	}
}

func TestHeadSampleEveryNth(t *testing.T) {
	tr := NewTracer(slowConfig(16, 4))
	for i := 0; i < 9; i++ {
		_, s := tr.StartSpan(WithTrace(context.Background(), fmt.Sprintf("t%d", i)), "op")
		s.End()
	}
	var kept []string
	for _, sum := range tr.Summaries(0, false, 0) {
		kept = append(kept, sum.ID)
	}
	// Newest-first listing of the 1st, 5th, and 9th unremarkable traces.
	want := []string{"t8", "t4", "t0"}
	if strings.Join(kept, ",") != strings.Join(want, ",") {
		t.Fatalf("head sample kept %v, want %v", kept, want)
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(slowConfig(3, 1))
	for i := 0; i < 5; i++ {
		_, s := tr.StartSpan(WithTrace(context.Background(), fmt.Sprintf("t%d", i)), "op")
		s.End()
	}
	var got []string
	for _, sum := range tr.Summaries(0, false, 0) {
		got = append(got, sum.ID)
	}
	want := []string{"t4", "t3", "t2"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("ring holds %v, want newest-first %v", got, want)
	}
	if _, ok := tr.Get("t0"); ok {
		t.Fatal("oldest trace should have been evicted")
	}
}

func TestMaxSpansBound(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 2, MaxSpans: 3, LatencyThreshold: time.Hour, SampleEvery: 1})
	ctx, root := tr.StartSpan(WithTrace(context.Background(), "big"), "root")
	for i := 0; i < 10; i++ {
		_, c := StartSpan(ctx, fmt.Sprintf("c%d", i))
		c.End()
	}
	root.End()
	td, ok := tr.Get("big")
	if !ok {
		t.Fatal("trace not retained")
	}
	if len(td.Spans) != 3 {
		t.Fatalf("got %d spans, want MaxSpans cap of 3", len(td.Spans))
	}
}

func TestInjectExtractRoundTrip(t *testing.T) {
	tr := NewTracer(slowConfig(2, 1))
	ctx := sampled(WithTrace(context.Background(), "wire-trace"))
	ctx, span := tr.StartSpan(ctx, "client")
	h := http.Header{}
	Inject(ctx, h)
	if h.Get(TraceHeader) != "wire-trace" || h.Get(SpanHeader) != span.ID() || h.Get(FlagsHeader) != "1" {
		t.Fatalf("bad injected headers: %v", h)
	}
	sc, ok := ExtractSpanContext(h)
	if !ok || sc.TraceID != "wire-trace" || sc.SpanID != span.ID() || sc.Flags != FlagSampled {
		t.Fatalf("extract = %+v ok=%v", sc, ok)
	}
	// traceparent-style two-digit flags are accepted too.
	h.Set(FlagsHeader, "01")
	if sc, _ = ExtractSpanContext(h); sc.Flags != FlagSampled {
		t.Fatalf("flags %q not parsed, got %+v", "01", sc)
	}
	span.End()

	// A server-side root under the extracted context joins the same trace
	// under the remote parent span.
	srv := NewTracer(slowConfig(2, 1))
	_, server := srv.StartSpan(WithRemote(context.Background(), sc), "server")
	if server.TraceID() != "wire-trace" || !server.Sampled() {
		t.Fatalf("server root traceID=%q sampled=%v", server.TraceID(), server.Sampled())
	}
	server.End()
	td, ok := srv.Get("wire-trace")
	if !ok || td.Spans[0].Parent != span.ID() {
		t.Fatalf("server span parent = %q, want remote %q (ok=%v)", td.Spans[0].Parent, span.ID(), ok)
	}
}

func TestStrAttrBounds(t *testing.T) {
	tr := NewTracer(slowConfig(2, 1))
	_, s := tr.StartSpan(WithTrace(context.Background(), "bounds"), "op")
	long := strings.Repeat("x", 1000)
	s.SetStr("long", long)
	for i := 0; i < 50; i++ {
		s.SetStr(fmt.Sprintf("k%d", i), "v")
	}
	s.End()
	td, _ := tr.Get("bounds")
	sd := td.Spans[0]
	if len(sd.Strs["long"]) >= len(long) {
		t.Fatalf("string attr not truncated: %d bytes", len(sd.Strs["long"]))
	}
	if len(sd.Strs) > 8 {
		t.Fatalf("%d string attrs survived, want the per-span cap", len(sd.Strs))
	}
}

func TestTraceHandler(t *testing.T) {
	tr := NewTracer(slowConfig(8, 1))
	reg := NewRegistry()
	tr.EnableMetrics(reg, "test")

	ctx, root := tr.StartSpan(sampled(WithTrace(context.Background(), "handled")), "http.allocate")
	_, c := StartSpan(ctx, "alloc")
	c.End()
	root.End()
	_, bad := tr.StartSpan(WithTrace(context.Background(), "broken"), "http.allocate")
	bad.EndErr(fmt.Errorf("exploded"))

	h := tr.Handler()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
	var sums []TraceSummary
	if err := json.Unmarshal(rr.Body.Bytes(), &sums); err != nil || len(sums) != 2 {
		t.Fatalf("list: err=%v n=%d body=%s", err, len(sums), rr.Body.String())
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?error=1", nil))
	sums = nil
	if err := json.Unmarshal(rr.Body.Bytes(), &sums); err != nil || len(sums) != 1 || sums[0].ID != "broken" {
		t.Fatalf("error filter: err=%v sums=%+v", err, sums)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces/handled", nil))
	var td TraceData
	if err := json.Unmarshal(rr.Body.Bytes(), &td); err != nil || len(td.Spans) != 2 || td.Reason != "sampled" {
		t.Fatalf("get: err=%v td=%+v", err, td)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces/nope", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("missing trace returned %d", rr.Code)
	}

	// The tracer's own metrics pass the strict exposition lint (scrape
	// lints internally).
	text := scrape(t, reg)
	for _, want := range []string{
		"test_trace_spans_total 3",
		`test_traces_retained_total{reason="sampled"} 1`,
		`test_traces_retained_total{reason="error"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestConcurrentSpans hammers one tracer from many goroutines — concurrent
// root creation, child fan-out, events, and scrapes — while the race
// detector watches. Counts are asserted loosely; the invariant under test
// is safety, not scheduling.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(slowConfig(8, 1))
	h := tr.Handler()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				ctx := WithTrace(context.Background(), fmt.Sprintf("g%d-%d", g, i))
				ctx, root := tr.StartSpan(ctx, "root")
				var kids sync.WaitGroup
				for k := 0; k < 4; k++ {
					kids.Add(1)
					go func(k int) {
						defer kids.Done()
						_, c := StartSpan(ctx, fmt.Sprintf("child%d", k))
						c.SetInt("k", int64(k))
						c.Event("tick", Int("i", int64(i)))
						c.End()
					}(k)
				}
				kids.Wait()
				root.End()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Summaries(0, false, 4)
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
			}
		}()
	}
	wg.Wait()
	sums := tr.Summaries(0, false, 0)
	if len(sums) != 8 {
		t.Fatalf("ring holds %d traces, want full capacity 8", len(sums))
	}
	for _, sum := range sums {
		if sum.Spans != 5 {
			t.Fatalf("trace %s has %d spans, want 5", sum.ID, sum.Spans)
		}
	}
}

func TestGaugeVecMaxChildrenAndDelete(t *testing.T) {
	reg := NewRegistry()
	v := reg.GaugeVec("test_estimate", "Per-ad estimate.", "ad")
	v.SetMaxChildren(2)
	v.With("a").Set(1)
	v.With("b").Set(2)
	v.With("c").Set(3) // over the cap: detached, never exposed
	text := scrape(t, reg)
	if !strings.Contains(text, `test_estimate{ad="a"} 1`) || !strings.Contains(text, `test_estimate{ad="b"} 2`) {
		t.Fatalf("capped vec lost real children:\n%s", text)
	}
	if strings.Contains(text, `ad="c"`) {
		t.Fatalf("over-cap child leaked into exposition:\n%s", text)
	}
	// Existing children keep working at the cap.
	v.With("a").Set(10)
	if !strings.Contains(scrape(t, reg), `test_estimate{ad="a"} 10`) {
		t.Fatal("existing child stopped updating at cap")
	}
	// Deleting frees a slot for a new child.
	v.Delete("a")
	v.With("d").Set(4)
	text = scrape(t, reg)
	if strings.Contains(text, `ad="a"`) {
		t.Fatalf("deleted child still exposed:\n%s", text)
	}
	if !strings.Contains(text, `test_estimate{ad="d"} 4`) {
		t.Fatalf("slot freed by Delete not reusable:\n%s", text)
	}
}
