// Build identity exposition: a constant gauge whose labels say what
// binary is answering the scrape, so dashboards can correlate a metric
// regression with the deploy that caused it.

package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo registers {prefix}_build_info — a gauge fixed at 1 whose
// labels carry the module version (from debug.ReadBuildInfo, "unknown"
// for non-module builds) and the Go runtime version.
func BuildInfo(r *Registry, prefix string) {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		version = bi.Main.Version
	}
	r.GaugeVec(prefix+"_build_info",
		"Build identity of the serving binary: constant 1, labeled with the module version and Go runtime.",
		"version", "go").With(version, runtime.Version()).Set(1)
}
