package gen

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/diffusion"
)

func TestFig1InstanceMatchesPaper(t *testing.T) {
	inst := Fig1Instance(0)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.G.N() != 6 || inst.G.M() != 6 {
		t.Fatalf("gadget size %d/%d", inst.G.N(), inst.G.M())
	}
	if inst.TotalBudget() != 9 {
		t.Fatalf("total budget %v", inst.TotalBudget())
	}
	// Regrets of the paper's allocations (Example 1) via exact evaluation.
	regret := func(alloc *core.Allocation) float64 {
		var total float64
		for i, ad := range inst.Ads {
			sim := diffusion.NewSimulator(inst.G, ad.Params)
			rev := ad.CPE * diffusion.ExactSpread(sim, alloc.Seeds[i])
			total += core.RegretTerm(ad.Budget, rev, inst.Lambda, len(alloc.Seeds[i]))
		}
		return total
	}
	if ra := regret(Fig1AllocationA()); math.Abs(ra-6.5440725) > 1e-6 {
		t.Errorf("regret(A) = %.7f", ra)
	}
	if rb := regret(Fig1AllocationB()); math.Abs(rb-2.6997590) > 1e-6 {
		t.Errorf("regret(B) = %.7f", rb)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Flixster(Options{Seed: 11, Scale: 0.02})
	b := Flixster(Options{Seed: 11, Scale: 0.02})
	if a.G.N() != b.G.N() || a.G.M() != b.G.M() {
		t.Fatal("graph size not deterministic")
	}
	for e := int64(0); e < a.G.M(); e += 97 {
		u1, v1 := a.G.EdgeEndpoints(e)
		u2, v2 := b.G.EdgeEndpoints(e)
		if u1 != u2 || v1 != v2 {
			t.Fatal("edges not deterministic")
		}
	}
	for i := range a.Ads {
		if a.Ads[i].Budget != b.Ads[i].Budget || a.Ads[i].CPE != b.Ads[i].CPE {
			t.Fatal("ad parameters not deterministic")
		}
		for e := 0; e < len(a.Ads[i].Params.Probs); e += 101 {
			if a.Ads[i].Params.Probs[e] != b.Ads[i].Params.Probs[e] {
				t.Fatal("mixed probabilities not deterministic")
			}
		}
	}
	c := Flixster(Options{Seed: 12, Scale: 0.02})
	if c.G.M() == a.G.M() && func() bool {
		for e := int64(0); e < a.G.M(); e++ {
			u1, v1 := a.G.EdgeEndpoints(e)
			u2, v2 := c.G.EdgeEndpoints(e)
			if u1 != u2 || v1 != v2 {
				return false
			}
		}
		return true
	}() {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestFlixsterShape(t *testing.T) {
	inst := Flixster(Options{Seed: 1, Scale: 0.05})
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(inst.Ads) != QualityAds {
		t.Fatalf("ads %d", len(inst.Ads))
	}
	st := inst.G.Stats()
	// Paper ratio: 425K/30K ≈ 14 edges per node; allow generator slack.
	ratio := float64(st.Edges) / float64(st.Nodes)
	if ratio < 8 || ratio > 16 {
		t.Errorf("avg degree %.1f outside Flixster-like range", ratio)
	}
	// Power-law-ish: the max degree must dwarf the average.
	if float64(st.MaxOutDeg) < 5*ratio {
		t.Errorf("max out-degree %d vs avg %.1f: no heavy tail", st.MaxOutDeg, ratio)
	}
	for _, ad := range inst.Ads {
		// Budgets/CPEs in the paper ranges (budget scaled by 0.05).
		if ad.Budget < 200*0.05 || ad.Budget > 600*0.05 {
			t.Errorf("budget %v outside scaled [10,30]", ad.Budget)
		}
		if ad.CPE < 5 || ad.CPE > 6 {
			t.Errorf("CPE %v outside [5,6]", ad.CPE)
		}
		// CTPs in [0.01, 0.03].
		for u := int32(0); u < int32(inst.G.N()); u += 37 {
			d := ad.Params.CTPs.At(u)
			if d < 0.01 || d > 0.03 {
				t.Errorf("CTP %v outside [0.01,0.03]", d)
			}
		}
	}
}

func TestEpinionsShape(t *testing.T) {
	inst := Epinions(Options{Seed: 2, Scale: 0.05})
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mean mixed probability should be near the Exp(1/30) mean ≈ 0.033.
	var sum float64
	var cnt int
	for _, p := range inst.Ads[0].Params.Probs {
		sum += float64(p)
		cnt++
	}
	mean := sum / float64(cnt)
	if mean < 0.02 || mean > 0.05 {
		t.Errorf("mean probability %.4f, want ≈1/30", mean)
	}
	for _, ad := range inst.Ads {
		if ad.CPE < 2.5 || ad.CPE > 6 {
			t.Errorf("CPE %v outside [2.5,6]", ad.CPE)
		}
	}
}

func TestDBLPShape(t *testing.T) {
	inst := DBLP(Options{Seed: 3, Scale: 0.02})
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	g := inst.G
	// Undirected: every edge exists in both directions.
	checked := 0
	for e := int64(0); e < g.M() && checked < 500; e += 7 {
		u, v := g.EdgeEndpoints(e)
		if !g.HasEdge(v, u) {
			t.Fatalf("edge (%d,%d) missing reverse", u, v)
		}
		checked++
	}
	// Weighted cascade: in-edge probabilities of v are all 1/indeg(v).
	for v := int32(0); v < int32(g.N()); v += 53 {
		sources, eids := g.InEdges(v)
		if len(sources) == 0 {
			continue
		}
		want := float32(1) / float32(len(sources))
		for _, e := range eids {
			if inst.Ads[0].Params.Probs[e] != want {
				t.Fatalf("WC probability %v, want %v", inst.Ads[0].Params.Probs[e], want)
			}
		}
	}
	// Scalability setting: CPE = CTP = 1, identical budgets.
	for _, ad := range inst.Ads {
		if ad.CPE != 1 {
			t.Errorf("CPE %v, want 1", ad.CPE)
		}
		if ad.Params.CTPs.At(0) != 1 {
			t.Errorf("CTP %v, want 1", ad.Params.CTPs.At(0))
		}
		if ad.Budget != inst.Ads[0].Budget {
			t.Error("budgets differ in scalability setting")
		}
	}
	if len(inst.Ads) != ScalabilityAds {
		t.Errorf("ads %d, want %d", len(inst.Ads), ScalabilityAds)
	}
}

func TestLiveJournalShape(t *testing.T) {
	inst := LiveJournal(Options{Seed: 4, Scale: 0.001})
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	st := inst.G.Stats()
	ratio := float64(st.Edges) / float64(st.Nodes)
	if ratio < 4 {
		t.Errorf("LJ analogue too sparse: %.1f", ratio)
	}
}

func TestBudgetOverrideAndScaling(t *testing.T) {
	inst := DBLP(Options{Seed: 5, Scale: 0.02, BudgetOverride: 30000})
	for _, ad := range inst.Ads {
		if math.Abs(ad.Budget-30000*0.02) > 1e-9 {
			t.Errorf("budget %v, want 600", ad.Budget)
		}
	}
}

func TestNumAdsOverride(t *testing.T) {
	inst := DBLP(Options{Seed: 6, Scale: 0.02, NumAds: 20})
	if len(inst.Ads) != 20 {
		t.Errorf("ads %d, want 20", len(inst.Ads))
	}
}

func TestKappaLambdaOptions(t *testing.T) {
	inst := Flixster(Options{Seed: 7, Scale: 0.02, Kappa: 5, Lambda: 0.5})
	if inst.Kappa.At(0) != 5 {
		t.Errorf("κ = %d", inst.Kappa.At(0))
	}
	if inst.Lambda != 0.5 {
		t.Errorf("λ = %v", inst.Lambda)
	}
}

func TestTopicalSeparation(t *testing.T) {
	// Flixster-like ads with different dominant topics must see different
	// mixed probabilities (topical competition structure).
	inst := Flixster(Options{Seed: 8, Scale: 0.02})
	a, b := inst.Ads[0].Params.Probs, inst.Ads[1].Params.Probs
	var diff float64
	for e := range a {
		diff += math.Abs(float64(a[e] - b[e]))
	}
	if diff/float64(len(a)) < 0.005 {
		t.Errorf("ads 0 and 1 see nearly identical probabilities (mean |Δ| = %v)", diff/float64(len(a)))
	}
}
