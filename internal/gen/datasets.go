package gen

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/topic"
	"repro/internal/xrand"
)

// Paper-scale dataset parameters (Table 1 / Table 2 / §6.2).
const (
	flixsterNodes = 30000
	flixsterEdges = 425000
	epinionsNodes = 76000
	epinionsEdges = 509000
	dblpNodes     = 317000
	dblpEdgesUndi = 1050000
	ljNodes       = 4800000
	ljEdges       = 69000000

	// QualityAds is h for the quality experiments (§6.1).
	QualityAds = 10
	// QualityTopics is K for the quality experiments.
	QualityTopics = 10
	// ScalabilityAds is the default h for the scalability experiments.
	ScalabilityAds = 5
	// DBLPBudget and LJBudget are the fixed per-ad budgets of Fig. 6(a)/(c).
	DBLPBudget = 5000
	LJBudget   = 80000
)

// Flixster builds the FLIXSTER analogue: a 30K-node (×scale) directed
// power-law graph with K=10 topics. Each edge gets a dominant topic tied to
// its source's "home topic" (standing in for the learned TIC probabilities
// of Barbieri et al. [3], which concentrate an edge's influence in few
// topics) with Exp(0.15)-distributed probability, and Exp(0.01) mass
// elsewhere. Ads use the paper's concentrated topic distributions, CTPs
// ~ U[0.01, 0.03], budgets [200, 600], CPE [5, 6].
func Flixster(o Options) *core.Instance {
	o = o.withDefaults()
	r := xrand.New(o.Seed ^ 0xf11c)
	n := scaled(flixsterNodes, o.Scale, 600)
	m := scaled(flixsterEdges, o.Scale, 8*n)
	g := powerLawDigraph(n, m, 2.1, 2.2, r)

	model := topicModelWithDominantTopics(g, QualityTopics, 0.15, 0.01, r.Split(10))
	h := o.NumAds
	if h <= 0 {
		h = QualityAds
	}
	ctps := func(i int) topic.CTP { return uniformCTPs(g.N(), 0.01, 0.03, r.Split(20+uint64(i))) }
	ads := makeAds(g, model, h, o, 200, 600, 5, 6, ctps, r.Split(30))
	return &core.Instance{G: g, Ads: ads, Kappa: core.ConstKappa(o.Kappa), Lambda: o.Lambda}
}

// Epinions builds the EPINIONS analogue: a 76K-node (×scale) directed
// power-law graph whose per-topic influence probabilities are all sampled
// from an exponential distribution with mean 1/30 via the inverse transform
// (§6), clamped to [0,1]. Ads borrow the Flixster-style concentrated topic
// distributions; CTPs ~ U[0.01, 0.03]; budgets [100, 350]; CPE [2.5, 6].
func Epinions(o Options) *core.Instance {
	o = o.withDefaults()
	r := xrand.New(o.Seed ^ 0xe919)
	n := scaled(epinionsNodes, o.Scale, 600)
	m := scaled(epinionsEdges, o.Scale, 5*n)
	g := powerLawDigraph(n, m, 2.0, 2.1, r)

	model := topic.NewModel(QualityTopics, g.M())
	pr := r.Split(11)
	for z := 0; z < QualityTopics; z++ {
		for e := int64(0); e < g.M(); e++ {
			model.Set(z, e, float32(pr.ExponentialClamped(1.0/30, 1)))
		}
	}
	h := o.NumAds
	if h <= 0 {
		h = QualityAds
	}
	ctps := func(i int) topic.CTP { return uniformCTPs(g.N(), 0.01, 0.03, r.Split(21+uint64(i))) }
	ads := makeAds(g, model, h, o, 100, 350, 2.5, 6, ctps, r.Split(31))
	return &core.Instance{G: g, Ads: ads, Kappa: core.ConstKappa(o.Kappa), Lambda: o.Lambda}
}

// DBLP builds the DBLP analogue used by the scalability experiments: a
// community-structured undirected co-authorship graph (317K nodes ×scale)
// with every edge directed both ways, Weighted-Cascade probabilities
// p_{u,v} = 1/indeg(v) identical for every ad (full competition), CPE = 1,
// CTP = 1, per-ad budget 5000 (×scale) unless overridden.
func DBLP(o Options) *core.Instance {
	o = o.withDefaults()
	if o.BudgetOverride <= 0 {
		o.BudgetOverride = DBLPBudget
	}
	r := xrand.New(o.Seed ^ 0xdb19)
	n := scaled(dblpNodes, o.Scale, 600)
	mu := scaled(dblpEdgesUndi, o.Scale, 3*n)
	g := communityGraph(n, mu, 20, 0.97, r)
	return wcInstance(g, o, r)
}

// LiveJournal builds the LIVEJOURNAL analogue: a large directed
// community-structured graph with a power-law tail of long-range follows
// (4.8M nodes ×scale — mind the memory at scale 1), Weighted-Cascade
// probabilities, CPE = CTP = 1, per-ad budget 80000 (×scale) unless
// overridden. See communityGraph for why clustering is load-bearing here.
func LiveJournal(o Options) *core.Instance {
	o = o.withDefaults()
	if o.BudgetOverride <= 0 {
		o.BudgetOverride = LJBudget
	}
	r := xrand.New(o.Seed ^ 0x11fe)
	n := scaled(ljNodes, o.Scale, 600)
	m := scaled(ljEdges, o.Scale, 6*n)
	g := communityDigraph(n, m, 30, 0.9, r)
	return wcInstance(g, o, r)
}

// wcInstance assembles the Weighted-Cascade scalability setting: identical
// probabilities for all ads, unit CPEs and CTPs, fixed budgets, κ = 1 by
// default ("a fully competitive case ... which will stress-test the
// algorithms", §6.2).
func wcInstance(g *graph.Graph, o Options, r *xrand.Rand) *core.Instance {
	model := topic.NewSharedModel(weightedCascade(g))
	h := o.NumAds
	if h <= 0 {
		h = ScalabilityAds
	}
	ctps := func(int) topic.CTP { return topic.ConstCTP{Nodes: g.N(), P: 1} }
	ads := makeAds(g, model, h, o, o.BudgetOverride, o.BudgetOverride, 1, 1.0000001, ctps, r.Split(32))
	for i := range ads {
		ads[i].CPE = 1
	}
	return &core.Instance{G: g, Ads: ads, Kappa: core.ConstKappa(o.Kappa), Lambda: o.Lambda}
}

// topicModelWithDominantTopics assigns each node a "home topic" and gives
// each edge a high Exp(domMean) probability on its source's home topic
// (with 30% random reassignment for noise) and low Exp(offMean) mass on the
// others. This reproduces the topical coherence of learned TIC models:
// influence lives in few topics per edge, so ads with different dominant
// topics compete for different influencers.
func topicModelWithDominantTopics(g *graph.Graph, k int, domMean, offMean float64, r *xrand.Rand) *topic.Model {
	model := topic.NewModel(k, g.M())
	home := make([]int, g.N())
	for u := range home {
		home[u] = r.IntN(k)
	}
	for u := int32(0); u < int32(g.N()); u++ {
		targets, first := g.OutEdges(u)
		for i := range targets {
			e := first + int64(i)
			dom := home[u]
			if r.Bernoulli(0.3) {
				dom = r.IntN(k)
			}
			for z := 0; z < k; z++ {
				mean := offMean
				if z == dom {
					mean = domMean
				}
				model.Set(z, e, float32(r.ExponentialClamped(mean, 1)))
			}
		}
	}
	return model
}

// Fig1Instance builds the paper's running example (Figure 1): six users,
// four ads a–d with CTPs 0.9/0.8/0.7/0.6, budgets 4/2/2/1, CPE 1, κ_u = 1,
// and the gadget's edge probabilities (identical for all ads).
func Fig1Instance(lambda float64) *core.Instance {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 2) // v1 -> v3, p = 0.2
	b.AddEdge(1, 2) // v2 -> v3, p = 0.2
	b.AddEdge(2, 3) // v3 -> v4, p = 0.5
	b.AddEdge(2, 4) // v3 -> v5, p = 0.5
	b.AddEdge(3, 5) // v4 -> v6, p = 0.1
	b.AddEdge(4, 5) // v5 -> v6, p = 0.1
	g := b.MustBuild()
	probs := []float32{0.2, 0.2, 0.5, 0.5, 0.1, 0.1}
	mk := func(name string, budget, ctp float64) core.Ad {
		return core.Ad{
			Name:   name,
			Budget: budget,
			CPE:    1,
			Params: topic.ItemParams{Probs: probs, CTPs: topic.ConstCTP{Nodes: 6, P: ctp}},
		}
	}
	return &core.Instance{
		G: g,
		Ads: []core.Ad{
			mk("a", 4, 0.9),
			mk("b", 2, 0.8),
			mk("c", 2, 0.7),
			mk("d", 1, 0.6),
		},
		Kappa:  core.ConstKappa(1),
		Lambda: lambda,
	}
}

// Fig1AllocationA is the paper's CTP-maximizing allocation (every user to
// ad a); Fig1AllocationB is the virality-aware allocation of Figure 1.
func Fig1AllocationA() *core.Allocation {
	return &core.Allocation{Seeds: [][]int32{{0, 1, 2, 3, 4, 5}, nil, nil, nil}}
}

// Fig1AllocationB returns the paper's allocation B.
func Fig1AllocationB() *core.Allocation {
	return &core.Allocation{Seeds: [][]int32{{0, 1}, {2}, {3, 4}, {5}}}
}
