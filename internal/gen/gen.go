// Package gen builds synthetic analogues of the paper's four evaluation
// datasets (Table 1). The real datasets (Flixster ratings with learned TIC
// probabilities, Epinions, SNAP DBLP and LiveJournal) are not
// redistributable in this offline build, so each generator reproduces the
// structural properties the experiments exercise — degree distributions,
// probability regimes, topical separation, budget/CPE ranges — at a
// configurable scale. DESIGN.md §4 documents why each substitution
// preserves the paper's behaviour.
//
// All generators are deterministic functions of (Options.Seed, scale).
package gen

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/topic"
	"repro/internal/xrand"
)

// Options controls dataset generation.
type Options struct {
	// Seed drives every random choice. Same seed ⇒ identical instance.
	Seed uint64
	// Scale multiplies the paper-scale node count (1.0 = paper size).
	// Budgets scale along with it so the regret shapes are preserved.
	// Default 0.1.
	Scale float64
	// NumAds overrides the number of advertisers (default: dataset value,
	// 10 for the quality datasets, 5 for the scalability ones).
	NumAds int
	// BudgetOverride sets every advertiser's budget (pre-scaling); 0 keeps
	// the dataset's randomized budgets. The Fig. 6 budget sweeps use this.
	BudgetOverride float64
	// Kappa sets the uniform attention bound (default 1).
	Kappa int
	// Lambda sets the seed penalty (default 0).
	Lambda float64
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.1
	}
	if o.Kappa <= 0 {
		o.Kappa = 1
	}
	return o
}

// scaled returns max(min, round(base·scale)).
func scaled(base int, scale float64, min int) int {
	v := int(math.Round(float64(base) * scale))
	if v < min {
		v = min
	}
	return v
}

// powerLawDigraph samples a directed Chung-Lu style graph: endpoints are
// drawn from two independent power-law weight vectors (exponents betaOut /
// betaIn) whose node assignment is shuffled, so high out-degree and high
// in-degree hubs are distinct. Duplicate draws and self-loops are discarded
// by the builder, so the realized edge count is slightly below targetM.
func powerLawDigraph(n, targetM int, betaOut, betaIn float64, r *xrand.Rand) *graph.Graph {
	wOut := permuteWeights(xrand.PowerLawWeights(n, betaOut), r.Split(1))
	wIn := permuteWeights(xrand.PowerLawWeights(n, betaIn), r.Split(2))
	aOut := xrand.NewAlias(wOut)
	aIn := xrand.NewAlias(wIn)
	b := graph.NewBuilderHint(n, targetM)
	draw := r.Split(3)
	// Oversample slightly to compensate for duplicates/self-loops.
	attempts := targetM + targetM/8
	for i := 0; i < attempts; i++ {
		u := int32(aOut.Sample(draw))
		v := int32(aIn.Sample(draw))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.MustBuild()
}

// communityGraph samples an undirected community-structured graph (the
// DBLP analogue): nodes are partitioned into small commSize communities
// (co-author groups), and each edge is intra-community with probability
// pIntra, otherwise a uniform random long-range link. Both directions are
// added, per the paper ("we direct all edges in both directions").
//
// The small, dense communities give the graph the high clustering of real
// co-authorship networks. This matters for the Weighted-Cascade
// experiments: WC is branching-critical on any graph (each node expects
// exactly one incoming activation), and what keeps real-graph spreads
// small — the paper's ~21 expected clicks per seed on DBLP — is clustering:
// overlapping neighborhoods burn out cascades. A globally-mixed generator
// produces a percolating core whose single-node spread exceeds the scaled
// budgets (making the empty allocation optimal, the §4.1 pathology), so
// community structure here is a behavioural requirement, not cosmetics.
func communityGraph(n, targetUndirected, commSize int, pIntra float64, r *xrand.Rand) *graph.Graph {
	if commSize < 2 {
		commSize = 2
	}
	b := graph.NewBuilderHint(n, 2*targetUndirected)
	draw := r.Split(5)
	attempts := targetUndirected + targetUndirected/8
	numComm := (n + commSize - 1) / commSize
	for i := 0; i < attempts; i++ {
		var u, v int32
		if draw.Bernoulli(pIntra) {
			c := draw.IntN(numComm)
			lo := c * commSize
			hi := lo + commSize
			if hi > n {
				hi = n
			}
			u = int32(lo + draw.IntN(hi-lo))
			v = int32(lo + draw.IntN(hi-lo))
		} else {
			u = int32(draw.IntN(n))
			v = int32(draw.IntN(n))
		}
		if u != v {
			b.AddUndirected(u, v)
		}
	}
	return b.MustBuild()
}

// communityDigraph is the directed analogue used for LIVEJOURNAL: small
// communities with directed intra-community follow edges plus a mild
// power-law tail of long-range follows. The tail exponent is kept high
// (3.0) deliberately: heavy out-degree hubs would make a single seed's
// Weighted-Cascade spread comparable to the scaled budgets, recreating the
// §4.1 pathology where the empty allocation is optimal (see communityGraph).
func communityDigraph(n, targetM, commSize int, pIntra float64, r *xrand.Rand) *graph.Graph {
	if commSize < 2 {
		commSize = 2
	}
	wOut := permuteWeights(xrand.PowerLawWeights(n, 3.0), r.Split(6))
	aOut := xrand.NewAlias(wOut)
	b := graph.NewBuilderHint(n, targetM)
	draw := r.Split(7)
	attempts := targetM + targetM/8
	numComm := (n + commSize - 1) / commSize
	for i := 0; i < attempts; i++ {
		var u, v int32
		if draw.Bernoulli(pIntra) {
			c := draw.IntN(numComm)
			lo := c * commSize
			hi := lo + commSize
			if hi > n {
				hi = n
			}
			u = int32(lo + draw.IntN(hi-lo))
			v = int32(lo + draw.IntN(hi-lo))
		} else {
			u = int32(aOut.Sample(draw))
			v = int32(draw.IntN(n))
		}
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.MustBuild()
}

func permuteWeights(w []float64, r *xrand.Rand) []float64 {
	out := make([]float64, len(w))
	perm := r.Perm(len(w))
	for i, p := range perm {
		out[p] = w[i]
	}
	return out
}

// weightedCascade returns the Weighted-Cascade probabilities of Chen et
// al. [7] used by the scalability datasets: p_{u,v} = 1/indeg(v) for every
// ad.
func weightedCascade(g *graph.Graph) []float32 {
	probs := make([]float32, g.M())
	for v := int32(0); v < int32(g.N()); v++ {
		sources, eids := g.InEdges(v)
		if len(sources) == 0 {
			continue
		}
		p := float32(1) / float32(len(sources))
		for _, e := range eids {
			probs[e] = p
		}
	}
	return probs
}

// uniformCTPs draws per-user CTPs from U[lo, hi) ("in keeping with
// real-life CTPs", §6: [0.01, 0.03]).
func uniformCTPs(n int, lo, hi float64, r *xrand.Rand) topic.VecCTP {
	c := make([]float32, n)
	for u := range c {
		c[u] = float32(r.Uniform(lo, hi))
	}
	v, err := topic.NewVecCTP(c)
	if err != nil {
		panic(err)
	}
	return v
}

// makeAds assembles h ads with concentrated topic distributions
// (mass 0.91 on topic i mod K), randomized budgets/CPEs, and per-ad CTPs.
func makeAds(g *graph.Graph, model *topic.Model, h int, o Options,
	budgetLo, budgetHi, cpeLo, cpeHi float64, ctp func(i int) topic.CTP, r *xrand.Rand) []core.Ad {
	ads := make([]core.Ad, h)
	for i := 0; i < h; i++ {
		gamma := topic.Concentrated(model.K(), i%model.K(), 0.91)
		budget := r.Uniform(budgetLo, budgetHi) * o.Scale
		if o.BudgetOverride > 0 {
			budget = o.BudgetOverride * o.Scale
		}
		if budget < 1 {
			budget = 1
		}
		ads[i] = core.Ad{
			Name:   fmt.Sprintf("ad%02d", i),
			Budget: budget,
			CPE:    r.Uniform(cpeLo, cpeHi),
			Params: topic.ItemParams{Probs: model.MustMix(gamma), CTPs: ctp(i)},
		}
	}
	return ads
}
